// Ablations of the design choices called out in DESIGN.md, plus the
// paper's §7 off-chip projection ("significantly larger savings in
// energy are expected when this network flow technique is applied to
// offchip memory").
//
//   A. on-chip vs off-chip memory energies: improvement factor of the
//      simultaneous flow over the two-phase baseline per memory class;
//   B. graph style: density-region vs all-pairs — solution quality,
//      memory locations, and graph size;
//   C. splitting lifetimes at allowed access times vs not, under a
//      half-rate memory;
//   D. cost-quantisation resolution: how coarse the fixed point may get
//      before solutions degrade;
//   E. measured (trace) switching activities vs the 0.5 default.

#include <cmath>
#include <iostream>

#include "alloc/allocator.hpp"
#include "alloc/two_phase.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

std::vector<ir::BasicBlock> suite() {
  return {workloads::make_fir(8), workloads::make_elliptic_wave_filter(),
          workloads::make_fft_butterfly(), workloads::make_rsp(4)};
}

void ablation_memory_class() {
  std::cout << "\n--- A: on-chip vs off-chip memory (paper §7) ---\n";
  report::Table table({"kernel", "improvement on-chip",
                       "improvement off-chip"});
  double log_on = 0;
  double log_off = 0;
  int n = 0;
  for (const ir::BasicBlock& bb : suite()) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    const auto inputs = workloads::random_inputs(bb, 48, 5);
    double improvement[2] = {0, 0};
    for (int off = 0; off < 2; ++off) {
      energy::EnergyParams params;
      params.register_model = energy::RegisterModel::kActivity;
      if (off) {
        // Off-chip transfers: the paper's [14] ratios put one transfer
        // at 11 adds; a write-allocate round trip is about double.
        params.mem_read = 11;
        params.mem_write = 22;
      }
      alloc::AllocationProblem p =
          alloc::make_problem_from_block(bb, s, 1, params, inputs);
      p.num_registers = std::max(1, p.max_density() / 3);
      const alloc::AllocationResult ours = alloc::allocate(p);
      const alloc::AllocationResult base = alloc::two_phase_allocate(p);
      if (ours.feasible && base.feasible) {
        improvement[off] =
            base.activity_energy.total() / ours.activity_energy.total();
      }
    }
    table.add_row({bb.name(), report::Table::num(improvement[0]),
                   report::Table::num(improvement[1])});
    if (improvement[0] > 0 && improvement[1] > 0) {
      log_on += std::log(improvement[0]);
      log_off += std::log(improvement[1]);
      ++n;
    }
  }
  table.print(std::cout);
  if (n) {
    std::cout << "geomean: on-chip "
              << report::Table::num(std::exp(log_on / n)) << "x, off-chip "
              << report::Table::num(std::exp(log_off / n))
              << "x  [paper expects larger off-chip savings]\n";
  }
}

void ablation_graph_style() {
  std::cout << "\n--- B: density-region vs all-pairs graph ---\n";
  report::Table table({"instance", "graph", "arcs", "energy",
                       "mem locations"});
  for (std::uint64_t seed : {3ull, 7ull, 11ull}) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 24;
    lopts.num_steps = 16;
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    const alloc::AllocationProblem p = alloc::make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 4,
        params, workloads::random_activity(seed, 24));
    for (auto style :
         {alloc::GraphStyle::kDensityRegions, alloc::GraphStyle::kAllPairs}) {
      const alloc::FlowGraphSpec spec = alloc::build_flow_graph(p, style);
      alloc::AllocatorOptions opts;
      opts.style = style;
      const alloc::AllocationResult r = alloc::allocate(p, opts);
      table.add_row({"seed " + std::to_string(seed),
                     style == alloc::GraphStyle::kDensityRegions
                         ? "density"
                         : "all-pairs",
                     report::Table::num(spec.graph.num_arcs()),
                     r.feasible ? report::Table::num(r.energy(p)) : "-",
                     r.feasible ? report::Table::num(r.stats.mem_locations)
                                : "-"});
    }
  }
  table.print(std::cout);
  std::cout << "the density graph is smaller and pins memory locations to "
               "the minimum; all-pairs may trade locations for energy.\n";
}

void ablation_splitting() {
  std::cout << "\n--- C: splitting at access times (memory at f/2) ---\n";
  report::Table table({"kernel", "no splits: energy", "splits: energy",
                       "no splits: forced", "splits: forced"});
  for (const ir::BasicBlock& bb : suite()) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    const auto inputs = workloads::random_inputs(bb, 48, 5);
    double e[2] = {-1, -1};
    int forced[2] = {0, 0};
    for (int split_on = 0; split_on < 2; ++split_on) {
      energy::EnergyParams params;
      params.register_model = energy::RegisterModel::kActivity;
      params.v_mem = 3.0;
      lifetime::SplitOptions split;
      split.access.period = 2;
      if (!split_on) {
        // Disable boundary splitting by hand: rebuild with period 2 but
        // without the implied cuts (only read cuts remain).
        split.access.period = 1;
      }
      alloc::AllocationProblem p = alloc::make_problem_from_block(
          bb, s, 8, params, inputs, split);
      if (!split_on) {
        // Re-impose the f/2 legality: mark segments that start/end off
        // the access grid as forced, without having split them.
        lifetime::AccessModel access;
        access.period = 2;
        for (auto& seg : p.segments) {
          seg.forced_register = !access.allowed(seg.start, p.num_steps) ||
                                !access.allowed(seg.end, p.num_steps);
        }
      }
      for (const auto& seg : p.segments) {
        forced[split_on] += seg.forced_register ? 1 : 0;
      }
      const alloc::AllocationResult r = alloc::allocate(p);
      if (r.feasible) e[split_on] = r.energy(p);
    }
    table.add_row({bb.name(),
                   e[0] < 0 ? "infeasible" : report::Table::num(e[0]),
                   e[1] < 0 ? "infeasible" : report::Table::num(e[1]),
                   report::Table::num(forced[0]),
                   report::Table::num(forced[1])});
  }
  table.print(std::cout);
  std::cout << "splitting at access boundaries frees mid-lifetime spills, "
               "reducing forced residency and energy (paper §5.2).\n";
}

void ablation_quantizer() {
  std::cout << "\n--- D: cost quantisation resolution ---\n";
  const ir::BasicBlock bb = workloads::make_rsp(4);
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, s, 6, params, workloads::random_inputs(bb, 48, 9));
  report::Table table({"resolution", "replayed energy", "loss vs finest"});
  double best = -1;
  for (double res : {1e-6, 1e-3, 0.1, 1.0, 5.0}) {
    alloc::AllocatorOptions opts;
    opts.quantizer = energy::Quantizer(res);
    const alloc::AllocationResult r = alloc::allocate(p, opts);
    if (!r.feasible) continue;
    const double e = r.energy(p);
    if (best < 0) best = e;
    table.add_row({report::Table::num(res, 6), report::Table::num(e),
                   report::Table::num(100.0 * (e - best) / best, 3) + "%"});
  }
  table.print(std::cout);
}

void ablation_activity_source() {
  std::cout << "\n--- E: measured vs default switching activities ---\n";
  report::Table table({"kernel", "default-H allocation",
                       "trace-H allocation", "gain", "regfile-only gain"});
  for (const ir::BasicBlock& bb : suite()) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    // Correlated (speech-like AR(1)) stimuli: real signals keep
    // successive values close in Hamming distance, which is exactly
    // when measuring H beats assuming 0.5.
    const auto inputs =
        workloads::correlated_inputs(bb, 64, workloads::Stimulus::kAr1, 13);
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    // Make register switching a first-order effect so the value of
    // *measuring* H (rather than assuming 0.5) is visible.
    params.reg_full_swing = 6.0;

    // Ground truth: activities measured from the trace.
    const alloc::AllocationProblem truth =
        alloc::make_problem_from_block(bb, s, 3, params, inputs);
    // Blind: allocate assuming uniform 0.5, then price under the truth.
    alloc::AllocationProblem blind = truth;
    blind.activity = energy::ActivityMatrix(truth.lifetimes.size());

    const alloc::AllocationResult informed = alloc::allocate(truth);
    const alloc::AllocationResult naive = alloc::allocate(blind);
    if (!informed.feasible || !naive.feasible) continue;
    const auto naive_truth = evaluate_energy(
        truth, naive.assignment, energy::RegisterModel::kActivity);
    const double e_informed = informed.activity_energy.total();
    const double e_naive = naive_truth.total();
    // Memory traffic dominates the total; the measured H matters most
    // for *which values share a register* — isolate that part too.
    const double reg_gain =
        naive_truth.register_file /
        std::max(1e-9, informed.activity_energy.register_file);
    table.add_row({bb.name(), report::Table::num(e_naive),
                   report::Table::num(e_informed),
                   report::Table::num(e_naive / e_informed) + "x",
                   report::Table::num(reg_gain) + "x"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== ABLATIONS (DESIGN.md design choices) ===\n";
  ablation_memory_class();
  ablation_graph_style();
  ablation_splitting();
  ablation_quantizer();
  ablation_activity_source();
  return 0;
}
