// Experiment FIG4 (DESIGN.md): reproduces the paper's Figure 4 — the
// graph of [8] (all non-overlapping lifetimes connected) versus the
// density-region graph, and the effect of splitting the long-lived f.
//
// Paper-reported observations:
//  (a) partitioning after register allocation on the [8] graph;
//  (b) simultaneous allocation on the [8] graph reaches the minimum
//      number of memory accesses but may use extra storage locations
//      (no minimum-address guarantee);
//  (c) the density-region graph with f split achieves minimum accesses
//      AND minimum locations, 1.35x better energy than (a).

#include <iostream>

#include "alloc/allocator.hpp"
#include "alloc/two_phase.hpp"
#include "report/table.hpp"
#include "workloads/paper_examples.hpp"

using namespace lera;

namespace {

void emit(report::Table& table, const std::string& name,
          const alloc::AllocationProblem& p,
          const alloc::AllocationResult& r) {
  table.add_row({name, report::Table::num(r.stats.mem_accesses()),
                 report::Table::num(r.stats.reg_accesses()),
                 report::Table::num(r.stats.mem_locations),
                 report::Table::num(r.static_energy.total()),
                 report::Table::num(r.activity_energy.total()),
                 report::Table::num(r.energy(p))});
}

void run_configuration(const char* title,
                       const energy::EnergyParams& params) {
  std::cout << "\n--- " << title << " ---\n";
  workloads::Figure4Options opts;
  opts.params = params;
  const alloc::AllocationProblem p = workloads::figure4_problem(opts);
  opts.split_f = true;
  const alloc::AllocationProblem p_split = workloads::figure4_problem(opts);

  alloc::TwoPhaseOptions twopc;
  const alloc::AllocationResult fig4a = alloc::two_phase_allocate(p, twopc);

  alloc::AllocatorOptions allpairs;
  allpairs.style = alloc::GraphStyle::kAllPairs;
  const alloc::AllocationResult fig4b = alloc::allocate(p, allpairs);

  alloc::AllocatorOptions density;
  density.style = alloc::GraphStyle::kDensityRegions;
  const alloc::AllocationResult fig4c = alloc::allocate(p_split, density);

  if (!fig4a.feasible || !fig4b.feasible || !fig4c.feasible) {
    std::cerr << "infeasible configuration: " << fig4a.message << "/"
              << fig4b.message << "/" << fig4c.message << "\n";
    return;
  }

  report::Table table({"solution", "mem accesses", "reg accesses",
                       "mem locations", "E(static)", "E(activity)",
                       "E(model)"});
  emit(table, "(a) two-phase, graph of [8]", p, fig4a);
  emit(table, "(b) simultaneous, graph of [8]", p, fig4b);
  emit(table, "(c) simultaneous, density graph + split f", p_split, fig4c);
  table.print(std::cout);

  std::cout << "energy improvement (a)/(c): "
            << report::Table::num(fig4a.energy(p) / fig4c.energy(p_split))
            << "x   [paper: 1.35x]\n";
  std::cout << "accesses: (b) <= (a): "
            << (fig4b.stats.mem_accesses() <= fig4a.stats.mem_accesses()
                    ? "yes"
                    : "NO")
            << ", locations: (c) <= (b): "
            << (fig4c.stats.mem_locations <= fig4b.stats.mem_locations
                    ? "yes"
                    : "NO")
            << "\n";
}

}  // namespace

/// The §7 minimum-storage argument, checked structurally: in the
/// density-region graph no transition/source/sink arc lets a register
/// idle across a boundary of maximum lifetime density, so every register
/// provably covers every peak and memory needs exactly
/// max_density - R locations. The [8] graph contains such arcs, which is
/// why it carries no minimum-location guarantee (Figure 4b).
void structural_comparison(const energy::EnergyParams& params) {
  std::cout << "\n--- structural comparison of the two graphs ---\n";
  workloads::Figure4Options opts;
  opts.params = params;
  const alloc::AllocationProblem p = workloads::figure4_problem(opts);

  report::Table table({"graph", "transition arcs", "peak-idling arcs"});
  for (auto style :
       {alloc::GraphStyle::kDensityRegions, alloc::GraphStyle::kAllPairs}) {
    const alloc::FlowGraphSpec spec = alloc::build_flow_graph(p, style);
    int transitions = 0;
    int idling = 0;
    for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
      const auto& info = spec.arc_info[a];
      int idle_from = -1;
      int idle_to = -1;
      switch (info.kind) {
        case alloc::ArcKind::kTransition:
          ++transitions;
          idle_from = p.segments[static_cast<std::size_t>(info.from_seg)].end;
          idle_to = p.segments[static_cast<std::size_t>(info.to_seg)].start;
          break;
        case alloc::ArcKind::kFromSource:
          idle_from = 0;
          idle_to = p.segments[static_cast<std::size_t>(info.to_seg)].start;
          break;
        case alloc::ArcKind::kToSink:
          idle_from = p.segments[static_cast<std::size_t>(info.from_seg)].end;
          idle_to = p.num_steps + 1;
          break;
        default:
          continue;
      }
      for (int b = idle_from; b < idle_to && b <= p.num_steps; ++b) {
        if (b >= 0 && p.is_max_density[static_cast<std::size_t>(b)]) {
          ++idling;
          break;
        }
      }
    }
    table.add_row({style == alloc::GraphStyle::kDensityRegions
                       ? "density regions (this paper)"
                       : "all pairs [8]",
                   report::Table::num(transitions),
                   report::Table::num(idling)});
  }
  table.print(std::cout);
  std::cout << "peak-idling arcs admit solutions that leave a register "
               "empty across a maximum-density boundary, costing an extra "
               "memory location; the density graph has none by "
               "construction (see test DensityGraphPinsMemoryToMinimum).\n";
}

int main() {
  std::cout << "=== FIG4: graph styles and split lifetimes (Figure 4, "
               "R = 1) ===\n";

  energy::EnergyParams base;
  base.register_model = energy::RegisterModel::kActivity;
  run_configuration("default energy parameters", base);
  structural_comparison(base);
  return 0;
}
