// bench_server: load generator + chaos harness for the allocation
// server (src/server/). Not a microbenchmark — it drives a real Server
// over in-memory channels through three phases and checks the
// robustness contract after each:
//
//   1. capacity  — closed-loop single client; baseline service latency
//                  (p50/p95/p99) and throughput.
//   2. overload  — 4x the admission capacity of open-loop pipelined
//                  traffic, mixed small-interactive and large-batch.
//                  Every request must come back as exactly one typed
//                  response (result or LERA_REJECT ...) — zero silent
//                  drops — and the server's own accounting identity
//                  must hold.
//   3. chaos     — N seeded runs injecting solver faults (via the
//                  post-solve hook and netflow::FaultInjector), client
//                  disconnects mid-request, and deadline storms, each
//                  ending in a graceful drain. Every admitted request
//                  must land in exactly one terminal state.
//   4. crash-chaos — N seeded runs against the isolated-worker mode
//                  (--workers 2): every third solve is killed inside
//                  the worker by a seeded CrashFailpoint (SIGSEGV /
//                  SIGKILL / abort / _exit), one live worker is
//                  kill -9'd externally mid-run, and a poison payload
//                  is submitted three times. The daemon must survive
//                  it all: every request gets exactly one typed
//                  verdict, the poison fingerprint is quarantined
//                  after the threshold, its crash-corpus reproducer is
//                  byte-identical and parseable, and the accounting
//                  identity holds. Skipped under TSan (fork from a
//                  threaded process is unsupported there).
//   5. cache     — repetitive traffic against the allocation cache
//                  (--cache-entries equivalent): a Zipf-weighted pool
//                  of medium kernels re-submitted verbatim, permuted
//                  (must still hit: the fingerprint is canonical),
//                  cost-jittered (must miss: never serve a stale
//                  answer), and cold. Reports cache_hit_ratio and
//                  hit vs miss latency percentiles; the hit path must
//                  be an order of magnitude faster than a solve.
//   6. footprint — memory-predictor calibration: per request class,
//                  the admission-time predicted footprint
//                  (alloc::estimate_problem_footprint) vs the engine
//                  budget's measured peak, as an error ratio. The
//                  predictor must stay conservative (ratio >= 1) or
//                  footprint-based shedding would admit work it cannot
//                  afford. Also reports the process-wide
//                  `LERA_METRIC peak_rss_bytes`.
//
// Output: grep-friendly "LERA_METRIC bench_server_* ..." lines plus a
// BENCH_server.json artifact. Exit 0 when every contract held, 1
// otherwise.
//
//   ./build/bench/bench_server [--smoke] [--chaos-seeds N]
//                              [--crash-seeds N] [--out FILE]
//
// --smoke shrinks every phase for CI.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

// fork() from a process with running threads is unsupported under TSan;
// the crash-chaos phase must skip itself there rather than hang.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LERA_BENCH_UNDER_TSAN 1
#endif
#endif
#if !defined(LERA_BENCH_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define LERA_BENCH_UNDER_TSAN 1
#endif

#include "alloc/flow_graph.hpp"
#include "netflow/fault_injection.hpp"
#include "server/server.hpp"
#include "workloads/problem_io.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using lera::server::Frame;
using lera::server::FrameVerb;
using lera::server::MemoryChannel;
using lera::server::Server;
using lera::server::ServerOptions;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Random feasible-looking .lt problem text. Write/read steps are kept
/// inside [1, steps] with read strictly after write, which the parser
/// requires; whether the allocation itself is feasible is the server's
/// problem, not ours.
std::string make_lt(std::mt19937_64& rng, int vars, int steps, int regs) {
  std::ostringstream os;
  os << "steps " << steps << "\nregisters " << regs << "\n";
  for (int v = 0; v < vars; ++v) {
    const int write = 1 + static_cast<int>(rng() % (steps - 1));
    const int read =
        write + 1 + static_cast<int>(rng() % (steps - write));
    os << "var v" << v << " write " << write << " reads "
       << std::min(read, steps) << "\n";
  }
  return os.str();
}

/// One response line, reduced to what accounting needs.
struct Response {
  std::string type;  ///< LERA_RESULT, LERA_REJECT, ...
  std::string rest;
  Clock::time_point at;
};

/// One client connection: a MemoryChannel, the server thread serving
/// its far end, and a reader thread collecting response lines by id.
class Client {
 public:
  explicit Client(Server& server)
      : server_thread_([this, &server] {
          server.serve(channel_.server_end());
        }),
        reader_thread_([this] { read_loop(); }) {}

  bool send(const Frame& frame) {
    return channel_.client_end().write(lera::server::encode_frame(frame));
  }

  bool send_solve(const std::string& id, const std::string& payload,
                  long long deadline_ms = -1,
                  const std::string& tenant = "") {
    Frame f;
    f.verb = FrameVerb::kSolve;
    f.id = id;
    f.tenant = tenant;
    f.deadline_ms = deadline_ms;
    f.payload = payload;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sent_[id] = Clock::now();
    }
    return send(f);
  }

  void finish_sending() { channel_.close_client_writes(); }

  /// Abrupt mid-request death (chaos): both directions fail fast.
  void disconnect() { channel_.disconnect_client(); }

  /// Joins the server thread, closes the response direction so the
  /// reader drains to EOF, and joins it.
  void join() {
    if (server_thread_.joinable()) server_thread_.join();
    channel_.close_server_writes();
    if (reader_thread_.joinable()) reader_thread_.join();
  }

  /// Blocks until \p id has a response or \p timeout_s elapses.
  bool wait_for(const std::string& id, double timeout_s) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(
        lock, std::chrono::duration<double>(timeout_s),
        [&] { return responses_.count(id) > 0; });
  }

  std::map<std::string, Response> responses() {
    std::lock_guard<std::mutex> lock(mutex_);
    return responses_;
  }

  std::map<std::string, Clock::time_point> sent() {
    std::lock_guard<std::mutex> lock(mutex_);
    return sent_;
  }

 private:
  void read_loop() {
    char buffer[4096];
    std::string acc;
    for (;;) {
      const std::ptrdiff_t n =
          channel_.client_end().read(buffer, sizeof buffer);
      if (n == lera::server::ByteStream::kReadAgain) continue;
      if (n <= 0) break;
      acc.append(buffer, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = acc.find('\n')) != std::string::npos) {
        record_line(acc.substr(0, nl));
        acc.erase(0, nl + 1);
      }
    }
  }

  void record_line(const std::string& line) {
    std::istringstream is(line);
    std::string type, id;
    is >> type >> id;
    // Only per-request verdicts feed accounting; metric/drain lines
    // pass through.
    if (type != "LERA_RESULT" && type != "LERA_ERROR" &&
        type != "LERA_TIMEOUT" && type != "LERA_CANCELLED" &&
        type != "LERA_REJECT") {
      return;
    }
    std::string rest;
    std::getline(is, rest);
    std::lock_guard<std::mutex> lock(mutex_);
    responses_[id] = Response{type, rest, Clock::now()};
    cv_.notify_all();
  }

  MemoryChannel channel_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, Clock::time_point> sent_;
  std::map<std::string, Response> responses_;
  std::thread server_thread_;
  std::thread reader_thread_;
};

double quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

struct PhaseReport {
  std::string name;
  std::int64_t requests = 0;
  std::int64_t results = 0;
  std::int64_t degraded = 0;
  std::int64_t rejects = 0;
  std::int64_t timeouts = 0;
  std::int64_t cancelled = 0;
  std::int64_t errors = 0;
  std::int64_t unanswered = 0;  ///< Silent drops: must stay 0.
  double seconds = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  bool accounting_ok = true;
};

/// Tallies client-side responses against what was sent; latency
/// percentiles cover accepted-and-served requests only.
PhaseReport tally(const std::string& name, Client& client,
                  double seconds) {
  PhaseReport r;
  r.name = name;
  r.seconds = seconds;
  const auto sent = client.sent();
  const auto responses = client.responses();
  std::vector<double> latencies;
  r.requests = static_cast<std::int64_t>(sent.size());
  for (const auto& [id, at] : sent) {
    const auto it = responses.find(id);
    if (it == responses.end()) {
      ++r.unanswered;
      continue;
    }
    const Response& resp = it->second;
    if (resp.type == "LERA_RESULT") {
      ++r.results;
      if (resp.rest.find("status=degraded") != std::string::npos) {
        ++r.degraded;
      }
      latencies.push_back(ms_between(at, resp.at));
    } else if (resp.type == "LERA_REJECT") {
      ++r.rejects;
    } else if (resp.type == "LERA_TIMEOUT") {
      ++r.timeouts;
    } else if (resp.type == "LERA_CANCELLED") {
      ++r.cancelled;
    } else {
      ++r.errors;
    }
  }
  r.p50_ms = quantile(latencies, 0.50);
  r.p95_ms = quantile(latencies, 0.95);
  r.p99_ms = quantile(latencies, 0.99);
  return r;
}

void emit(const PhaseReport& r) {
  const auto line = [&](const std::string& key, double value) {
    std::cout << "LERA_METRIC bench_server_" << r.name << "_" << key
              << " " << value << "\n";
  };
  line("requests", static_cast<double>(r.requests));
  line("results", static_cast<double>(r.results));
  line("degraded", static_cast<double>(r.degraded));
  line("rejects", static_cast<double>(r.rejects));
  line("timeouts", static_cast<double>(r.timeouts));
  line("cancelled", static_cast<double>(r.cancelled));
  line("errors", static_cast<double>(r.errors));
  line("unanswered", static_cast<double>(r.unanswered));
  if (r.seconds > 0) {
    line("throughput_rps", static_cast<double>(r.results) / r.seconds);
  }
  line("latency_p50_ms", r.p50_ms);
  line("latency_p95_ms", r.p95_ms);
  line("latency_p99_ms", r.p99_ms);
  line("accounting_ok", r.accounting_ok ? 1 : 0);
}

std::string json_of(const PhaseReport& r) {
  std::ostringstream os;
  os << "{\"requests\":" << r.requests << ",\"results\":" << r.results
     << ",\"degraded\":" << r.degraded << ",\"rejects\":" << r.rejects
     << ",\"timeouts\":" << r.timeouts << ",\"cancelled\":" << r.cancelled
     << ",\"errors\":" << r.errors << ",\"unanswered\":" << r.unanswered
     << ",\"seconds\":" << r.seconds << ",\"p50_ms\":" << r.p50_ms
     << ",\"p95_ms\":" << r.p95_ms << ",\"p99_ms\":" << r.p99_ms
     << ",\"accounting_ok\":" << (r.accounting_ok ? "true" : "false")
     << "}";
  return os.str();
}

/// Server-side accounting identity: every SOLVE frame reached exactly
/// one terminal state or typed rejection.
bool accounting_holds(const Server& server) {
  const lera::server::MetricsSnapshot s = server.metrics();
  return s.accounted_requests() == s.solve_requests;
}

ServerOptions base_options() {
  ServerOptions opts;
  opts.engine.threads = 2;
  opts.engine.params.register_model =
      lera::energy::RegisterModel::kActivity;
  opts.echo_assignment = false;  // Response size, not protocol, here.
  return opts;
}

// --- Phase 1: closed-loop capacity probe --------------------------------

PhaseReport run_capacity(int requests) {
  Server server(base_options());
  Client client(server);
  std::mt19937_64 rng(11);
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    const std::string id = "cap" + std::to_string(i);
    client.send_solve(id, make_lt(rng, 6, 10, 3));
    if (!client.wait_for(id, 30.0)) break;
  }
  const double seconds =
      ms_between(start, Clock::now()) / 1000.0;
  client.finish_sending();
  client.join();
  PhaseReport r = tally("capacity", client, seconds);
  r.accounting_ok = accounting_holds(server);
  return r;
}

// --- Phase 2: 4x overload with mixed traffic ----------------------------

PhaseReport run_overload(int per_client_requests) {
  ServerOptions opts = base_options();
  opts.admission.max_queue = 8;
  opts.admission.per_tenant_queue = 8;
  Server server(opts);

  // 4 open-loop clients against a queue of 8: sustained 4x overload.
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<Client>(server));
  }
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> senders;
  for (int c = 0; c < kClients; ++c) {
    senders.emplace_back([&, c] {
      std::mt19937_64 rng(100 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < per_client_requests; ++i) {
        const std::string id =
            "ov" + std::to_string(c) + "_" + std::to_string(i);
        // Mixed traffic: mostly small interactive problems, every
        // fourth a large batch one.
        const std::string payload = (i % 4 == 3)
                                        ? make_lt(rng, 40, 60, 4)
                                        : make_lt(rng, 6, 10, 3);
        clients[static_cast<std::size_t>(c)]->send_solve(
            id, payload, /*deadline_ms=*/2000,
            "tenant" + std::to_string(c));
      }
      clients[static_cast<std::size_t>(c)]->finish_sending();
    });
  }
  for (std::thread& t : senders) t.join();
  for (auto& c : clients) c->join();
  const double seconds = ms_between(start, Clock::now()) / 1000.0;

  PhaseReport total = tally("overload", *clients[0], seconds);
  for (int c = 1; c < kClients; ++c) {
    const PhaseReport r =
        tally("overload", *clients[static_cast<std::size_t>(c)], 0);
    total.requests += r.requests;
    total.results += r.results;
    total.degraded += r.degraded;
    total.rejects += r.rejects;
    total.timeouts += r.timeouts;
    total.cancelled += r.cancelled;
    total.errors += r.errors;
    total.unanswered += r.unanswered;
  }
  total.accounting_ok = accounting_holds(server);
  return total;
}

// --- Phase 3: seeded chaos ----------------------------------------------

/// Thread-safe seeded fault source for the engine's post-solve hook:
/// roughly every fourth solve attempt gets a corrupted solution, which
/// certification + retries must heal or surface typed.
struct ChaosHook {
  std::mutex mutex;
  std::mt19937_64 rng;

  explicit ChaosHook(std::uint64_t seed) : rng(seed) {}

  void operator()(const lera::netflow::Graph& g,
                  lera::netflow::FlowSolution& sol) {
    std::lock_guard<std::mutex> lock(mutex);
    if (rng() % 4 == 0) {
      lera::netflow::FaultInjector injector(rng());
      injector.perturb(g, sol);
    }
  }
};

/// One chaos run: faulty solver, one client that disconnects
/// mid-request, one deadline storm, then a graceful drain. True when
/// the accounting identity held.
bool run_chaos_seed(std::uint64_t seed, PhaseReport& agg) {
  ServerOptions opts = base_options();
  opts.engine.threads = 2;
  opts.engine.solver_retries = 2;
  opts.drain_grace_seconds = 0.25;
  auto hook = std::make_shared<ChaosHook>(seed);
  opts.engine.alloc.solve.post_solve_hook =
      [hook](const lera::netflow::Graph& g,
             lera::netflow::FlowSolution& sol) { (*hook)(g, sol); };
  Server server(opts);

  std::mt19937_64 rng(seed * 7919 + 1);
  Client steady(server);
  Client doomed(server);
  Client storm(server);

  for (int i = 0; i < 5; ++i) {
    steady.send_solve("st" + std::to_string(i),
                      make_lt(rng, 6, 10, 3));
  }
  for (int i = 0; i < 4; ++i) {
    doomed.send_solve("dm" + std::to_string(i),
                      make_lt(rng, 20, 30, 3));
  }
  // Deadline storm: budgets from infeasible (0) to barely-there.
  for (int i = 0; i < 6; ++i) {
    storm.send_solve("dl" + std::to_string(i), make_lt(rng, 6, 10, 3),
                     /*deadline_ms=*/i);
  }

  doomed.disconnect();  // Mid-request: some responses are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(
      static_cast<int>(rng() % 30)));
  server.begin_drain();
  steady.finish_sending();
  storm.finish_sending();
  steady.join();
  doomed.join();
  storm.join();

  for (Client* c : {&steady, &storm}) {
    const PhaseReport r = tally("chaos", *c, 0);
    agg.requests += r.requests;
    agg.results += r.results;
    agg.degraded += r.degraded;
    agg.rejects += r.rejects;
    agg.timeouts += r.timeouts;
    agg.cancelled += r.cancelled;
    agg.errors += r.errors;
    // The doomed client's unanswered requests are legitimate (it
    // vanished); for surviving clients the server must still have
    // answered or rejected everything it read before the drain cut.
    agg.unanswered += r.unanswered;
  }
  agg.requests += 4;  // The doomed client's sends, accounted server-side.
  return accounting_holds(server);
}

// --- Phase 4: crash-chaos against the isolated-worker mode --------------

/// Supervisor-level counters and contract checks aggregated across the
/// crash-chaos seeds.
struct CrashChaosTotals {
  std::int64_t worker_crashes = 0;
  std::int64_t worker_restarts = 0;
  std::int64_t hung_kills = 0;
  std::int64_t quarantined_fingerprints = 0;
  std::int64_t quarantine_rejects = 0;
  std::int64_t corpus_files = 0;
  int accounting_failures = 0;
  int quarantine_misses = 0;  ///< Seeds where the 3rd poison send ran.
  int corpus_mismatches = 0;  ///< Reproducer missing / not byte-identical.
};

/// One crash-chaos run. Mixed load with every ~3rd solve dying inside
/// the worker, an external kill -9 of a live worker mid-run, then a
/// sequential poison drill (same payload three times: crash, crash,
/// quarantine) whose corpus reproducer is checked byte-for-byte.
void run_crash_chaos_seed(std::uint64_t seed,
                          const std::string& corpus_root,
                          PhaseReport& agg, CrashChaosTotals& totals) {
  namespace fs = std::filesystem;
  const std::string crash_dir =
      corpus_root + "/seed" + std::to_string(seed);

  ServerOptions opts = base_options();
  opts.drain_grace_seconds = 1.0;
  opts.isolation.workers = 2;
  opts.isolation.crash_dir = crash_dir;
  opts.isolation.poison_threshold = 2;
  opts.isolation.restart_backoff_seconds = 0.005;
  opts.isolation.restart_backoff_cap_seconds = 0.05;
  opts.isolation.backoff_seed = seed;
  opts.isolation.hang_grace_seconds = 2.0;
  opts.isolation.worker.crash.seed = seed;
  opts.isolation.worker.crash.crash_one_in = 3;
  opts.isolation.worker.crash.marker = "poisonpill";

  // A valid, parseable .lt carrying the crash marker in a var name: the
  // corpus reproducer it produces must itself load cleanly.
  const std::string poison = "steps 6\nregisters 2\nvar poisonpill" +
                             std::to_string(seed) +
                             " write 1 reads 4\nvar b write 2 reads 5\n";

  {
    Server server(opts);
    Client client(server);
    std::mt19937_64 rng(seed * 6271 + 3);

    // Mixed load; roughly a third of these die inside the worker.
    constexpr int kLoad = 10;
    for (int i = 0; i < kLoad; ++i) {
      const std::string id = "cx" + std::to_string(i);
      const std::string payload = (i % 4 == 3) ? make_lt(rng, 20, 30, 3)
                                               : make_lt(rng, 6, 10, 3);
      client.send_solve(id, payload, /*deadline_ms=*/20000);
      if (i == kLoad / 2) {
        // External chaos: kill -9 a live worker mid-stream. Idle-killed
        // workers must be replaced transparently; a mid-solve kill must
        // surface as one typed worker_crashed verdict.
        const std::vector<int> pids = server.supervisor()->worker_pids();
        if (!pids.empty()) {
          ::kill(pids[static_cast<std::size_t>(seed) % pids.size()],
                 SIGKILL);
        }
      }
    }
    for (int i = 0; i < kLoad; ++i) {
      client.wait_for("cx" + std::to_string(i), 60.0);
    }

    // Poison drill, strictly sequential so the crash counts are
    // deterministic: crash 1/2, crash 2/2 (quarantines), then the
    // byte-identical resubmission must be refused without a dispatch.
    for (int i = 0; i < 3; ++i) {
      const std::string id = "px" + std::to_string(i);
      client.send_solve(id, poison);
      client.wait_for(id, 60.0);
    }
    const auto responses = client.responses();
    const auto p2 = responses.find("px2");
    const bool quarantined =
        p2 != responses.end() && p2->second.type == "LERA_REJECT" &&
        p2->second.rest.find("reason=quarantined") != std::string::npos;
    if (!quarantined) ++totals.quarantine_misses;

    server.begin_drain();
    client.finish_sending();
    client.join();

    const lera::server::SupervisorStats stats =
        server.supervisor()->stats();
    totals.worker_crashes += stats.crashes;
    totals.worker_restarts += stats.restarts;
    totals.hung_kills += stats.hung_kills;
    totals.quarantined_fingerprints += stats.quarantined_fingerprints;
    totals.quarantine_rejects += stats.quarantine_rejects;
    totals.corpus_files += stats.corpus_files;
    if (!accounting_holds(server)) ++totals.accounting_failures;

    const PhaseReport r = tally("crash_chaos", client, 0);
    agg.requests += r.requests;
    agg.results += r.results;
    agg.degraded += r.degraded;
    agg.rejects += r.rejects;
    agg.timeouts += r.timeouts;
    agg.cancelled += r.cancelled;
    agg.errors += r.errors;
    agg.unanswered += r.unanswered;
    // Worst per-seed percentile: a conservative "no hidden hang" bound.
    agg.p50_ms = std::max(agg.p50_ms, r.p50_ms);
    agg.p95_ms = std::max(agg.p95_ms, r.p95_ms);
    agg.p99_ms = std::max(agg.p99_ms, r.p99_ms);
  }

  // Corpus reproducer: byte-identical to the poison payload and
  // parseable (a triage tool must be able to load it as-is).
  const std::string repro =
      crash_dir + "/crash-" +
      lera::server::fingerprint_hex(
          lera::server::payload_fingerprint(poison)) +
      "-1.lt";
  std::ifstream in(repro, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const bool corpus_ok =
      in.good() && bytes.str() == poison &&
      lera::workloads::parse_problem(bytes.str()).ok();
  if (!corpus_ok) ++totals.corpus_mismatches;

  std::error_code ec;
  fs::remove_all(crash_dir, ec);  // Best-effort scratch cleanup.
}

// --- Phase 5: repetitive traffic against the allocation cache -----------

/// What the cache phase measures: hit ratio per class plus hit-path vs
/// miss-path latency percentiles (client-observed, same channel).
struct CachePhaseReport {
  std::int64_t requests = 0;
  std::int64_t repeat_requests = 0;  ///< exact + permuted class sends.
  std::int64_t hits = 0;
  std::int64_t repeat_hits = 0;
  /// Hits on a payload no prior request ever submitted (in any class):
  /// must stay 0 — the cache cannot know an answer it was never given,
  /// so such a hit would mean a jittered or cold instance was served a
  /// stale entry.
  std::int64_t first_occurrence_hits = 0;
  std::int64_t unanswered = 0;
  double hit_ratio = 0;
  double repeat_hit_ratio = 0;
  /// Client-observed round-trip percentiles: include the channel and
  /// reader-thread floor, so they understate the speedup on fast solves.
  double hit_p50_ms = 0, hit_p99_ms = 0;
  double miss_p50_ms = 0, miss_p99_ms = 0;
  /// Server-side percentiles: the hit path (parse + lookup + remap,
  /// from the cache_hit_latency window) against the cold-solve path
  /// (admission -> result, from the latency window — in this phase
  /// every sample in it is a solved miss). This is the pair the <10%
  /// acceptance gate runs on: it compares the two code paths without
  /// the in-memory channel's fixed round-trip cost contaminating both.
  double server_hit_p50_ms = 0, server_hit_p99_ms = 0;
  double server_miss_p50_ms = 0, server_miss_p99_ms = 0;
  std::int64_t cache_entries = 0;
  std::int64_t cache_bytes = 0;
  double seconds = 0;
  bool accounting_ok = true;
};

/// Shuffles the var lines of an .lt text: a semantically identical
/// problem whose variables arrive in a different declaration order.
/// The canonical fingerprint must see through this.
std::string permute_lt(const std::string& lt, std::mt19937_64& rng) {
  std::istringstream is(lt);
  std::string line, header;
  std::vector<std::string> vars;
  while (std::getline(is, line)) {
    if (line.rfind("var ", 0) == 0) {
      vars.push_back(line);
    } else if (!line.empty()) {
      header += line + "\n";
    }
  }
  std::shuffle(vars.begin(), vars.end(), rng);
  std::string out = header;
  for (const std::string& v : vars) out += v + "\n";
  return out;
}

/// Cost jitter: same variables and lifetimes under one more register —
/// a near-identical instance whose optimal answer can differ, so a
/// correct cache must treat it as new (the register budget is part of
/// the fingerprint).
std::string jitter_lt(const std::string& lt) {
  const std::size_t pos = lt.find("registers ");
  if (pos == std::string::npos) return lt;
  const std::size_t num = pos + 10;
  const int regs = std::atoi(lt.c_str() + num);
  std::size_t end = num;
  while (end < lt.size() && lt[end] != '\n') ++end;
  return lt.substr(0, num) + std::to_string(regs + 1) + lt.substr(end);
}

/// Closed-loop repetitive traffic: Zipf-popular kernels re-submitted
/// exactly, permuted, jittered, and cold, against a cache-enabled
/// server. Closed loop on purpose — each insert must land before the
/// next repeat, so the measured ratios are about the cache, not about
/// pipelining races.
CachePhaseReport run_cache_phase(int requests) {
  ServerOptions opts = base_options();
  opts.engine.cache_entries = 512;
  // The all-pairs baseline graph makes the cold solve do real work
  // (quadratic transition arcs) while the hit path — parse, canonical
  // fingerprint, remap — stays linear in the instance text. That is
  // exactly the traffic a cache earns its keep on.
  opts.engine.alloc.style = lera::alloc::GraphStyle::kAllPairs;
  Server server(opts);
  Client client(server);
  std::mt19937_64 rng(4242);

  constexpr int kPool = 8;
  std::vector<std::string> pool;
  pool.reserve(kPool);
  for (int k = 0; k < kPool; ++k) {
    pool.push_back(make_lt(rng, 150, 200, 3));
  }
  // Zipf-ish popularity: kernel k drawn with weight 1/(k+1).
  std::vector<double> cdf;
  double z = 0;
  for (int k = 0; k < kPool; ++k) {
    z += 1.0 / (k + 1);
    cdf.push_back(z);
  }
  const auto pick = [&]() -> int {
    const double r =
        static_cast<double>(rng() % 100000) / 100000.0 * z;
    for (int k = 0; k < kPool; ++k) {
      if (r <= cdf[k]) return k;
    }
    return kPool - 1;
  };

  // Class per request: 40% exact repeat, 20% permuted repeat (both must
  // hit once warm), 20% cost-jittered, 20% cold. A permuted payload is
  // textually new but semantically seen, so first-occurrence tracking
  // uses the canonical var-line multiset, not the raw bytes.
  std::vector<char> cls(static_cast<std::size_t>(requests));
  std::vector<bool> first(static_cast<std::size_t>(requests));
  std::set<std::string> seen;
  const auto canonical_key = [](const std::string& lt) {
    std::istringstream is(lt);
    std::string line, header;
    std::vector<std::string> vars;
    while (std::getline(is, line)) {
      if (line.rfind("var ", 0) == 0) {
        vars.push_back(line);
      } else if (!line.empty()) {
        header += line + ";";
      }
    }
    std::sort(vars.begin(), vars.end());
    for (const std::string& v : vars) header += v + ";";
    return header;
  };
  CachePhaseReport r;
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    const std::uint64_t roll = rng() % 100;
    const int k = pick();
    std::string payload;
    char c;
    if (roll < 40) {
      c = 'e';
      payload = pool[static_cast<std::size_t>(k)];
    } else if (roll < 60) {
      c = 'p';
      payload = permute_lt(pool[static_cast<std::size_t>(k)], rng);
    } else if (roll < 80) {
      c = 'j';
      payload = jitter_lt(pool[static_cast<std::size_t>(k)]);
    } else {
      c = 'c';
      payload = make_lt(rng, 150, 200, 3);
    }
    cls[static_cast<std::size_t>(i)] = c;
    first[static_cast<std::size_t>(i)] =
        seen.insert(canonical_key(payload)).second;
    const std::string id = "cache" + std::to_string(i);
    client.send_solve(id, payload);
    client.wait_for(id, 30.0);
  }
  r.seconds = ms_between(start, Clock::now()) / 1000.0;
  client.finish_sending();
  client.join();

  const auto sent = client.sent();
  const auto responses = client.responses();
  std::vector<double> hit_lat, miss_lat;
  r.requests = requests;
  for (int i = 0; i < requests; ++i) {
    const std::string id = "cache" + std::to_string(i);
    const char c = cls[static_cast<std::size_t>(i)];
    const bool repeat_class = c == 'e' || c == 'p';
    if (repeat_class) ++r.repeat_requests;
    const auto resp = responses.find(id);
    if (resp == responses.end()) {
      ++r.unanswered;
      continue;
    }
    if (resp->second.type != "LERA_RESULT") continue;
    const bool hit =
        resp->second.rest.find(" cached=1") != std::string::npos;
    const double ms = ms_between(sent.at(id), resp->second.at);
    if (hit) {
      ++r.hits;
      if (repeat_class) ++r.repeat_hits;
      if (first[static_cast<std::size_t>(i)]) ++r.first_occurrence_hits;
      hit_lat.push_back(ms);
    } else {
      miss_lat.push_back(ms);
    }
  }
  r.hit_ratio = r.requests > 0
                    ? static_cast<double>(r.hits) /
                          static_cast<double>(r.requests)
                    : 0;
  r.repeat_hit_ratio =
      r.repeat_requests > 0
          ? static_cast<double>(r.repeat_hits) /
                static_cast<double>(r.repeat_requests)
          : 0;
  r.hit_p50_ms = quantile(hit_lat, 0.50);
  r.hit_p99_ms = quantile(hit_lat, 0.99);
  r.miss_p50_ms = quantile(miss_lat, 0.50);
  r.miss_p99_ms = quantile(miss_lat, 0.99);
  const lera::server::MetricsSnapshot snap = server.metrics();
  r.server_hit_p50_ms = snap.cache_hit_latency.p50_ms;
  r.server_hit_p99_ms = snap.cache_hit_latency.p99_ms;
  r.server_miss_p50_ms = snap.latency.p50_ms;
  r.server_miss_p99_ms = snap.latency.p99_ms;
  const lera::server::HealthStatus h = server.health();
  r.cache_entries = h.cache_entries;
  r.cache_bytes = h.cache_bytes;
  r.accounting_ok = accounting_holds(server);
  return r;
}

// --- Phase 6: memory footprint calibration ------------------------------

/// Predicted-vs-actual memory for one request class.
struct FootprintClass {
  std::string name;
  std::int64_t predicted_bytes = 0;    ///< Worst instance's admission predictor.
  std::int64_t actual_peak_bytes = 0;  ///< Engine budget high-water mark.
  double error_ratio = 0;              ///< predicted / actual; >= 1 = conservative.
};

/// Serves \p per_class instances of each traffic class through a fresh
/// single-threaded server (so the budget peak is a per-request figure,
/// not a concurrency artifact) and compares the admission predictor
/// against the bytes the engine actually charged.
std::vector<FootprintClass> run_footprint_calibration(int per_class) {
  const struct {
    const char* name;
    int vars, steps, regs;
  } classes[] = {{"small", 6, 10, 3},
                 {"medium", 40, 60, 4},
                 {"large", 120, 160, 6}};
  std::vector<FootprintClass> out;
  for (const auto& cl : classes) {
    ServerOptions opts = base_options();
    opts.engine.threads = 1;
    Server server(opts);
    Client client(server);
    std::mt19937_64 rng(777);
    FootprintClass fc;
    fc.name = cl.name;
    for (int i = 0; i < per_class; ++i) {
      const std::string lt = make_lt(rng, cl.vars, cl.steps, cl.regs);
      const auto parsed = lera::workloads::parse_problem(lt);
      if (parsed.ok()) {
        fc.predicted_bytes = std::max(
            fc.predicted_bytes,
            lera::alloc::estimate_problem_footprint(*parsed.problem));
      }
      const std::string id = std::string(cl.name) + std::to_string(i);
      client.send_solve(id, lt);
      client.wait_for(id, 30.0);
    }
    client.finish_sending();
    client.join();
    fc.actual_peak_bytes = server.health().memory_peak_bytes;
    fc.error_ratio = fc.actual_peak_bytes > 0
                         ? static_cast<double>(fc.predicted_bytes) /
                               static_cast<double>(fc.actual_peak_bytes)
                         : 0;
    out.push_back(fc);
  }
  return out;
}

/// Process-wide peak resident set in bytes (ru_maxrss is KiB on Linux).
std::int64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int chaos_seeds = 200;
  int crash_seeds = 200;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--chaos-seeds" && i + 1 < argc) {
      chaos_seeds = std::stoi(argv[++i]);
    } else if (arg == "--crash-seeds" && i + 1 < argc) {
      crash_seeds = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_server [--smoke] [--chaos-seeds N] "
                   "[--crash-seeds N] [--out FILE]\n";
      return 1;
    }
  }
  if (smoke) {
    chaos_seeds = std::min(chaos_seeds, 10);
    crash_seeds = std::min(crash_seeds, 8);
  }
#ifdef LERA_BENCH_UNDER_TSAN
  crash_seeds = 0;  // fork() from threaded process: unsupported there.
#endif

  const PhaseReport capacity = run_capacity(smoke ? 30 : 150);
  emit(capacity);
  const PhaseReport overload = run_overload(smoke ? 20 : 60);
  emit(overload);

  PhaseReport chaos;
  chaos.name = "chaos";
  int accounting_failures = 0;
  const Clock::time_point chaos_start = Clock::now();
  for (int s = 0; s < chaos_seeds; ++s) {
    if (!run_chaos_seed(static_cast<std::uint64_t>(s) + 1, chaos)) {
      ++accounting_failures;
    }
  }
  chaos.seconds = ms_between(chaos_start, Clock::now()) / 1000.0;
  chaos.accounting_ok = accounting_failures == 0;
  emit(chaos);
  std::cout << "LERA_METRIC bench_server_chaos_seeds " << chaos_seeds
            << "\n"
            << "LERA_METRIC bench_server_chaos_accounting_failures "
            << accounting_failures << "\n";

  PhaseReport crash_chaos;
  crash_chaos.name = "crash_chaos";
  CrashChaosTotals crash_totals;
  const Clock::time_point crash_start = Clock::now();
  for (int s = 0; s < crash_seeds; ++s) {
    run_crash_chaos_seed(static_cast<std::uint64_t>(s) + 1,
                         "bench_crash_corpus", crash_chaos, crash_totals);
  }
  crash_chaos.seconds = ms_between(crash_start, Clock::now()) / 1000.0;
  crash_chaos.accounting_ok = crash_totals.accounting_failures == 0;
  emit(crash_chaos);
  const auto crash_line = [](const std::string& key, std::int64_t v) {
    std::cout << "LERA_METRIC bench_server_crash_chaos_" << key << " "
              << v << "\n";
  };
  crash_line("seeds", crash_seeds);
  crash_line("worker_crashes", crash_totals.worker_crashes);
  crash_line("worker_restarts", crash_totals.worker_restarts);
  crash_line("hung_kills", crash_totals.hung_kills);
  crash_line("quarantined_fingerprints",
             crash_totals.quarantined_fingerprints);
  crash_line("quarantine_rejects", crash_totals.quarantine_rejects);
  crash_line("corpus_files", crash_totals.corpus_files);
  crash_line("quarantine_misses", crash_totals.quarantine_misses);
  crash_line("corpus_mismatches", crash_totals.corpus_mismatches);
  crash_line("accounting_failures", crash_totals.accounting_failures);

  const CachePhaseReport cache = run_cache_phase(smoke ? 80 : 300);
  const auto cache_line = [](const std::string& key, double v) {
    std::cout << "LERA_METRIC bench_server_cache_" << key << " " << v
              << "\n";
  };
  cache_line("requests", static_cast<double>(cache.requests));
  cache_line("repeat_requests",
             static_cast<double>(cache.repeat_requests));
  cache_line("hits", static_cast<double>(cache.hits));
  cache_line("hit_ratio", cache.hit_ratio);
  cache_line("repeat_hit_ratio", cache.repeat_hit_ratio);
  cache_line("first_occurrence_hits",
             static_cast<double>(cache.first_occurrence_hits));
  cache_line("hit_p50_ms", cache.hit_p50_ms);
  cache_line("hit_p99_ms", cache.hit_p99_ms);
  cache_line("miss_p50_ms", cache.miss_p50_ms);
  cache_line("miss_p99_ms", cache.miss_p99_ms);
  cache_line("server_hit_p50_ms", cache.server_hit_p50_ms);
  cache_line("server_hit_p99_ms", cache.server_hit_p99_ms);
  cache_line("server_miss_p50_ms", cache.server_miss_p50_ms);
  cache_line("server_miss_p99_ms", cache.server_miss_p99_ms);
  cache_line("entries", static_cast<double>(cache.cache_entries));
  cache_line("bytes", static_cast<double>(cache.cache_bytes));
  cache_line("unanswered", static_cast<double>(cache.unanswered));
  cache_line("accounting_ok", cache.accounting_ok ? 1 : 0);

  const std::vector<FootprintClass> footprint =
      run_footprint_calibration(smoke ? 3 : 10);
  for (const FootprintClass& fc : footprint) {
    std::cout << "LERA_METRIC bench_server_footprint_" << fc.name
              << "_predicted_bytes " << fc.predicted_bytes << "\n"
              << "LERA_METRIC bench_server_footprint_" << fc.name
              << "_actual_peak_bytes " << fc.actual_peak_bytes << "\n"
              << "LERA_METRIC bench_server_footprint_" << fc.name
              << "_error_ratio " << fc.error_ratio << "\n";
  }
  const std::int64_t rss = peak_rss_bytes();
  std::cout << "LERA_METRIC peak_rss_bytes " << rss << "\n";

  std::ofstream out(out_path);
  out << "{\n  \"capacity\": " << json_of(capacity)
      << ",\n  \"overload\": " << json_of(overload)
      << ",\n  \"chaos\": " << json_of(chaos)
      << ",\n  \"chaos_seeds\": " << chaos_seeds
      << ",\n  \"chaos_accounting_failures\": " << accounting_failures
      << ",\n  \"crash_chaos\": " << json_of(crash_chaos)
      << ",\n  \"crash_chaos_seeds\": " << crash_seeds
      << ",\n  \"crash_chaos_worker_crashes\": "
      << crash_totals.worker_crashes
      << ",\n  \"crash_chaos_worker_restarts\": "
      << crash_totals.worker_restarts
      << ",\n  \"crash_chaos_hung_kills\": " << crash_totals.hung_kills
      << ",\n  \"crash_chaos_quarantined_fingerprints\": "
      << crash_totals.quarantined_fingerprints
      << ",\n  \"crash_chaos_quarantine_rejects\": "
      << crash_totals.quarantine_rejects
      << ",\n  \"crash_chaos_corpus_files\": "
      << crash_totals.corpus_files
      << ",\n  \"crash_chaos_quarantine_misses\": "
      << crash_totals.quarantine_misses
      << ",\n  \"crash_chaos_corpus_mismatches\": "
      << crash_totals.corpus_mismatches
      << ",\n  \"crash_chaos_accounting_failures\": "
      << crash_totals.accounting_failures
      << ",\n  \"cache\": {\"requests\": " << cache.requests
      << ", \"repeat_requests\": " << cache.repeat_requests
      << ", \"hits\": " << cache.hits
      << ", \"hit_ratio\": " << cache.hit_ratio
      << ", \"repeat_hit_ratio\": " << cache.repeat_hit_ratio
      << ", \"first_occurrence_hits\": " << cache.first_occurrence_hits
      << ", \"hit_p50_ms\": " << cache.hit_p50_ms
      << ", \"hit_p99_ms\": " << cache.hit_p99_ms
      << ", \"miss_p50_ms\": " << cache.miss_p50_ms
      << ", \"miss_p99_ms\": " << cache.miss_p99_ms
      << ", \"server_hit_p50_ms\": " << cache.server_hit_p50_ms
      << ", \"server_hit_p99_ms\": " << cache.server_hit_p99_ms
      << ", \"server_miss_p50_ms\": " << cache.server_miss_p50_ms
      << ", \"server_miss_p99_ms\": " << cache.server_miss_p99_ms
      << ", \"entries\": " << cache.cache_entries
      << ", \"bytes\": " << cache.cache_bytes
      << ", \"unanswered\": " << cache.unanswered
      << ", \"seconds\": " << cache.seconds
      << ", \"accounting_ok\": "
      << (cache.accounting_ok ? "true" : "false") << "}"
      << ",\n  \"footprint\": [";
  for (std::size_t i = 0; i < footprint.size(); ++i) {
    const FootprintClass& fc = footprint[i];
    out << (i ? ", " : "") << "{\"class\": \"" << fc.name
        << "\", \"predicted_bytes\": " << fc.predicted_bytes
        << ", \"actual_peak_bytes\": " << fc.actual_peak_bytes
        << ", \"error_ratio\": " << fc.error_ratio << "}";
  }
  out << "]"
      << ",\n  \"peak_rss_bytes\": " << rss << "\n}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  // Contract: zero silent drops anywhere, typed sheds under overload,
  // and every chaos seed's accounting identity intact.
  bool ok = true;
  if (capacity.unanswered > 0 || overload.unanswered > 0 ||
      chaos.unanswered > 0) {
    std::cout << "BENCH_FAIL silent drops detected\n";
    ok = false;
  }
  if (overload.rejects == 0) {
    std::cout << "BENCH_FAIL overload produced no typed rejections\n";
    ok = false;
  }
  if (!capacity.accounting_ok || !overload.accounting_ok ||
      accounting_failures > 0) {
    std::cout << "BENCH_FAIL accounting identity violated\n";
    ok = false;
  }
  if (crash_seeds > 0) {
    if (crash_chaos.unanswered > 0) {
      std::cout << "BENCH_FAIL crash-chaos silent drops detected\n";
      ok = false;
    }
    if (crash_totals.accounting_failures > 0) {
      std::cout << "BENCH_FAIL crash-chaos accounting identity violated\n";
      ok = false;
    }
    if (crash_totals.quarantine_misses > 0) {
      std::cout << "BENCH_FAIL poison fingerprint escaped quarantine\n";
      ok = false;
    }
    if (crash_totals.corpus_mismatches > 0) {
      std::cout << "BENCH_FAIL crash corpus reproducer missing or "
                   "not byte-identical\n";
      ok = false;
    }
    if (crash_chaos.p99_ms >= 10000.0) {
      std::cout << "BENCH_FAIL crash-chaos p99 unbounded ("
                << crash_chaos.p99_ms << " ms)\n";
      ok = false;
    }
  }
  // Cache contract: repeats hit at least half the time (first touches
  // and evictions allowed for), jittered instances never hit, the hit
  // path is an order of magnitude under the solve path, and a cache
  // hit still lands in exactly one terminal state.
  if (cache.unanswered > 0) {
    std::cout << "BENCH_FAIL cache phase silent drops detected\n";
    ok = false;
  }
  if (cache.repeat_hit_ratio < 0.5) {
    std::cout << "BENCH_FAIL cache repeat hit ratio "
              << cache.repeat_hit_ratio << " below 0.5\n";
    ok = false;
  }
  if (cache.first_occurrence_hits > 0) {
    std::cout << "BENCH_FAIL cache served " << cache.first_occurrence_hits
              << " never-before-seen instances from stale entries\n";
    ok = false;
  }
  // The <10% latency gate runs on the server-side windows: hit path
  // (parse + lookup + remap) against the cold-solve path. The
  // client-observed round trips are reported alongside but not gated —
  // they add the in-memory channel's fixed cost to both sides, which
  // flattens the ratio without saying anything about the cache.
  if (cache.hits > 0 &&
      cache.server_hit_p50_ms >= 0.10 * cache.server_miss_p50_ms) {
    std::cout << "BENCH_FAIL cache hit p50 " << cache.server_hit_p50_ms
              << " ms not under 10% of cold-solve p50 "
              << cache.server_miss_p50_ms << " ms\n";
    ok = false;
  }
  if (!cache.accounting_ok) {
    std::cout << "BENCH_FAIL cache phase accounting identity violated\n";
    ok = false;
  }
  for (const FootprintClass& fc : footprint) {
    // An under-predicting footprint model would make admission admit
    // solves the memory cap cannot actually cover.
    if (fc.actual_peak_bytes <= 0 || fc.error_ratio < 1.0) {
      std::cout << "BENCH_FAIL footprint predictor not conservative for "
                << fc.name << " (ratio " << fc.error_ratio << ")\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
