// Experiment SOLVERS (DESIGN.md): §4's remark that min-cost flow "can be
// solved ... more commonly by using faster and more efficient network
// algorithms". Compares the three implemented algorithms on identical
// random instances and on real allocation flow graphs.
//
// Besides the google-benchmark suites, `bench_solvers --smoke [out.json]`
// runs a fixed CI smoke: cold-vs-workspace solver throughput, ns per
// augmentation, and a warm-start cost-perturbation sweep, printed as
// grep-able "LERA_METRIC bench=solvers ..." lines and optionally written
// as JSON for artifact upload.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "alloc/flow_graph.hpp"
#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

netflow::Graph make_random(int nodes, std::uint64_t seed) {
  workloads::RandomFlowOptions opts;
  opts.num_nodes = nodes;
  opts.num_arcs = nodes * 4;
  opts.supply = nodes / 4;
  opts.min_cost = -10;
  return workloads::random_flow_problem(seed, opts);
}

template <netflow::SolverKind Kind>
void BM_RandomInstance(benchmark::State& state) {
  const netflow::Graph g = make_random(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    netflow::FlowSolution sol = netflow::solve(g, Kind);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RandomInstance<netflow::SolverKind::kSuccessiveShortestPaths>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kNetworkSimplex>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kCostScaling>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kCycleCanceling>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

template <netflow::SolverKind Kind>
void BM_AllocationGraph(benchmark::State& state) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = static_cast<int>(state.range(0));
  lopts.num_steps = std::max(10, lopts.num_vars / 2);
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = alloc::make_problem(
      workloads::random_lifetimes(11, lopts), lopts.num_steps,
      std::max(2, lopts.num_vars / 8), params,
      workloads::random_activity(12,
                                 static_cast<std::size_t>(lopts.num_vars)));
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  for (auto _ : state) {
    netflow::FlowSolution sol = netflow::solve_st_flow(
        spec.graph, spec.s, spec.t, p.num_registers, Kind);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kSuccessiveShortestPaths>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kNetworkSimplex>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kCostScaling>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

// --- CI smoke mode ------------------------------------------------------

using SmokeClock = std::chrono::steady_clock;

double ns_between(SmokeClock::time_point a, SmokeClock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct SmokeMetric {
  std::string name;
  double value = 0;
  std::string extra;  ///< Additional key=value pairs for the METRIC line.
};

/// Fixed-instance CI smoke. Everything is best-of-3 and deterministic;
/// wall times vary with the machine but the metric *names* and solution
/// checks are stable, so CI can both grep the numbers and fail on any
/// cross-check mismatch (non-zero return).
int run_smoke(const char* json_path) {
  std::vector<SmokeMetric> metrics;

  // Large-instance solver throughput, cold (fresh allocations per
  // solve) vs through one reused workspace. Same instances, same
  // solver; flows must match exactly.
  std::vector<netflow::Graph> instances;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    instances.push_back(make_random(512, seed));
  }
  double cold_ns = 0;
  double ws_ns = 0;
  netflow::SolverWorkspace ws;
  std::vector<netflow::FlowSolution> cold_sols;
  for (int rep = 0; rep < 3; ++rep) {
    cold_sols.clear();
    const auto t0 = SmokeClock::now();
    for (const netflow::Graph& g : instances) {
      cold_sols.push_back(
          netflow::solve(g, netflow::SolverKind::kSuccessiveShortestPaths));
    }
    const double ns = ns_between(t0, SmokeClock::now());
    if (rep == 0 || ns < cold_ns) cold_ns = ns;
  }
  const netflow::PerfCounters before_ws = ws.counters;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = SmokeClock::now();
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const netflow::FlowSolution sol =
          netflow::solve(instances[i],
                         netflow::SolverKind::kSuccessiveShortestPaths,
                         nullptr, &ws);
      if (sol.status != cold_sols[i].status ||
          sol.arc_flow != cold_sols[i].arc_flow) {
        std::fprintf(stderr,
                     "smoke: workspace solve diverged on instance %zu\n", i);
        return 1;
      }
    }
    const double ns = ns_between(t0, SmokeClock::now());
    if (rep == 0 || ns < ws_ns) ws_ns = ns;
  }
  const netflow::PerfCounters ws_delta = ws.counters.delta_since(before_ws);
  const double per_aug =
      ws_delta.augmentations > 0
          ? ws_ns / static_cast<double>(ws_delta.augmentations / 3)
          : 0;
  metrics.push_back({"solver_ns_per_augmentation", per_aug,
                     "augmentations=" +
                         std::to_string(ws_delta.augmentations / 3)});
  metrics.push_back(
      {"workspace_speedup", ws_ns > 0 ? cold_ns / ws_ns : 0,
       "cold_ms=" + std::to_string(cold_ns / 1e6) +
           " ws_ms=" + std::to_string(ws_ns / 1e6)});

  // Warm-start cost-perturbation sweep: one 256-node base instance,
  // 32 small cost perturbations, each solved cold and via warm resolve
  // from the base optimum. Objectives must agree.
  const netflow::Graph base = make_random(256, 42);
  const netflow::FlowSolution base_sol =
      netflow::solve(base, netflow::SolverKind::kSuccessiveShortestPaths);
  if (!base_sol.optimal()) {
    std::fprintf(stderr, "smoke: base instance unexpectedly not optimal\n");
    return 1;
  }
  netflow::WarmStartCache cache;
  cache.store(base, base_sol.arc_flow);
  std::vector<netflow::Graph> sweep;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<netflow::Cost> dcost(-2, 2);
  for (int k = 0; k < 32; ++k) {
    netflow::Graph g = base;
    for (netflow::ArcId a = 0; a < g.num_arcs(); ++a) {
      g.set_arc_cost(a, g.arc(a).cost + dcost(rng));
    }
    sweep.push_back(std::move(g));
  }
  double sweep_cold_ns = 0;
  double sweep_warm_ns = 0;
  netflow::SolverWorkspace warm_ws;
  for (int rep = 0; rep < 3; ++rep) {
    double cold = 0;
    double warm = 0;
    for (const netflow::Graph& g : sweep) {
      const auto t0 = SmokeClock::now();
      const netflow::FlowSolution c =
          netflow::solve(g, netflow::SolverKind::kSuccessiveShortestPaths);
      const auto t1 = SmokeClock::now();
      const netflow::FlowSolution w =
          netflow::resolve_warm(g, cache, nullptr, &warm_ws);
      const auto t2 = SmokeClock::now();
      cold += ns_between(t0, t1);
      warm += ns_between(t1, t2);
      if (!c.optimal() || !w.optimal() || c.cost != w.cost) {
        std::fprintf(stderr, "smoke: warm resolve diverged from cold\n");
        return 1;
      }
    }
    if (rep == 0 || cold < sweep_cold_ns) sweep_cold_ns = cold;
    if (rep == 0 || warm < sweep_warm_ns) sweep_warm_ns = warm;
  }
  metrics.push_back(
      {"warm_start_speedup",
       sweep_warm_ns > 0 ? sweep_cold_ns / sweep_warm_ns : 0,
       "cold_ms=" + std::to_string(sweep_cold_ns / 1e6) +
           " warm_ms=" + std::to_string(sweep_warm_ns / 1e6) +
           " sweep=" + std::to_string(sweep.size())});

  for (const SmokeMetric& m : metrics) {
    std::printf("LERA_METRIC bench=solvers metric=%s value=%.3f %s\n",
                m.name.c_str(), m.value, m.extra.c_str());
  }

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << "{\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      out << "  \"" << metrics[i].name << "\": " << metrics[i].value
          << (i + 1 < metrics.size() ? "," : "") << "\n";
    }
    out << "}\n";
    if (!out) {
      std::fprintf(stderr, "smoke: cannot write %s\n", json_path);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return run_smoke(i + 1 < argc ? argv[i + 1] : nullptr);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
