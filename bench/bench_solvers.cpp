// Experiment SOLVERS (DESIGN.md): §4's remark that min-cost flow "can be
// solved ... more commonly by using faster and more efficient network
// algorithms". Compares the three implemented algorithms on identical
// random instances and on real allocation flow graphs.

#include <benchmark/benchmark.h>

#include "alloc/flow_graph.hpp"
#include "netflow/solution.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

netflow::Graph make_random(int nodes, std::uint64_t seed) {
  workloads::RandomFlowOptions opts;
  opts.num_nodes = nodes;
  opts.num_arcs = nodes * 4;
  opts.supply = nodes / 4;
  opts.min_cost = -10;
  return workloads::random_flow_problem(seed, opts);
}

template <netflow::SolverKind Kind>
void BM_RandomInstance(benchmark::State& state) {
  const netflow::Graph g = make_random(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    netflow::FlowSolution sol = netflow::solve(g, Kind);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RandomInstance<netflow::SolverKind::kSuccessiveShortestPaths>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kNetworkSimplex>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kCostScaling>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kCycleCanceling>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

template <netflow::SolverKind Kind>
void BM_AllocationGraph(benchmark::State& state) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = static_cast<int>(state.range(0));
  lopts.num_steps = std::max(10, lopts.num_vars / 2);
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = alloc::make_problem(
      workloads::random_lifetimes(11, lopts), lopts.num_steps,
      std::max(2, lopts.num_vars / 8), params,
      workloads::random_activity(12,
                                 static_cast<std::size_t>(lopts.num_vars)));
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  for (auto _ : state) {
    netflow::FlowSolution sol = netflow::solve_st_flow(
        spec.graph, spec.s, spec.t, p.num_registers, Kind);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kSuccessiveShortestPaths>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kNetworkSimplex>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kCostScaling>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
