// Experiment SOLVERS (DESIGN.md): §4's remark that min-cost flow "can be
// solved ... more commonly by using faster and more efficient network
// algorithms". Compares the three implemented algorithms on identical
// random instances and on real allocation flow graphs.
//
// Besides the google-benchmark suites, `bench_solvers --smoke [out.json]`
// runs a fixed CI smoke: cold-vs-workspace solver throughput, ns per
// augmentation, and a warm-start cost-perturbation sweep, printed as
// grep-able "LERA_METRIC bench=solvers ..." lines and optionally written
// as JSON for artifact upload.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "alloc/flow_graph.hpp"
#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

netflow::Graph make_random(int nodes, std::uint64_t seed) {
  workloads::RandomFlowOptions opts;
  opts.num_nodes = nodes;
  opts.num_arcs = nodes * 4;
  opts.supply = nodes / 4;
  opts.min_cost = -10;
  return workloads::random_flow_problem(seed, opts);
}

template <netflow::SolverKind Kind>
void BM_RandomInstance(benchmark::State& state) {
  const netflow::Graph g = make_random(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    netflow::FlowSolution sol = netflow::solve(g, Kind);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RandomInstance<netflow::SolverKind::kSuccessiveShortestPaths>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kNetworkSimplex>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kCostScaling>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_RandomInstance<netflow::SolverKind::kCycleCanceling>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

template <netflow::SolverKind Kind>
void BM_AllocationGraph(benchmark::State& state) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = static_cast<int>(state.range(0));
  lopts.num_steps = std::max(10, lopts.num_vars / 2);
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = alloc::make_problem(
      workloads::random_lifetimes(11, lopts), lopts.num_steps,
      std::max(2, lopts.num_vars / 8), params,
      workloads::random_activity(12,
                                 static_cast<std::size_t>(lopts.num_vars)));
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  for (auto _ : state) {
    netflow::FlowSolution sol = netflow::solve_st_flow(
        spec.graph, spec.s, spec.t, p.num_registers, Kind);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kSuccessiveShortestPaths>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kNetworkSimplex>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_AllocationGraph<netflow::SolverKind::kCostScaling>)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

// --- CI smoke mode ------------------------------------------------------

using SmokeClock = std::chrono::steady_clock;

double ns_between(SmokeClock::time_point a, SmokeClock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct SmokeMetric {
  std::string name;
  double value = 0;
  std::string extra;  ///< Additional key=value pairs for the METRIC line.
};

/// Fixed-instance CI smoke. Everything is best-of-3 and deterministic;
/// wall times vary with the machine but the metric *names* and solution
/// checks are stable, so CI can both grep the numbers and fail on any
/// cross-check mismatch (non-zero return).
int run_smoke(const char* json_path) {
  std::vector<SmokeMetric> metrics;

  // Large-instance solver throughput, cold (fresh allocations per
  // solve) vs through one reused workspace. Same instances, same
  // solver; flows must match exactly.
  std::vector<netflow::Graph> instances;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    instances.push_back(make_random(512, seed));
  }
  double cold_ns = 0;
  double ws_ns = 0;
  netflow::SolverWorkspace ws;
  std::vector<netflow::FlowSolution> cold_sols;
  for (int rep = 0; rep < 3; ++rep) {
    cold_sols.clear();
    const auto t0 = SmokeClock::now();
    for (const netflow::Graph& g : instances) {
      cold_sols.push_back(
          netflow::solve(g, netflow::SolverKind::kSuccessiveShortestPaths));
    }
    const double ns = ns_between(t0, SmokeClock::now());
    if (rep == 0 || ns < cold_ns) cold_ns = ns;
  }
  const netflow::PerfCounters before_ws = ws.counters;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = SmokeClock::now();
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const netflow::FlowSolution sol =
          netflow::solve(instances[i],
                         netflow::SolverKind::kSuccessiveShortestPaths,
                         nullptr, &ws);
      if (sol.status != cold_sols[i].status ||
          sol.arc_flow != cold_sols[i].arc_flow) {
        std::fprintf(stderr,
                     "smoke: workspace solve diverged on instance %zu\n", i);
        return 1;
      }
    }
    const double ns = ns_between(t0, SmokeClock::now());
    if (rep == 0 || ns < ws_ns) ws_ns = ns;
  }
  const netflow::PerfCounters ws_delta = ws.counters.delta_since(before_ws);
  const double per_aug =
      ws_delta.augmentations > 0
          ? ws_ns / static_cast<double>(ws_delta.augmentations / 3)
          : 0;
  metrics.push_back({"solver_ns_per_augmentation", per_aug,
                     "augmentations=" +
                         std::to_string(ws_delta.augmentations / 3)});
  metrics.push_back(
      {"workspace_speedup", ws_ns > 0 ? cold_ns / ws_ns : 0,
       "cold_ms=" + std::to_string(cold_ns / 1e6) +
           " ws_ms=" + std::to_string(ws_ns / 1e6)});

  // Cold-vs-workspace flow equality gate for the other two production
  // backends on the same instances: a workspace must never change what
  // the simplex or the cost-scaling solver answers, bit for bit.
  for (const netflow::SolverKind kind : {netflow::SolverKind::kNetworkSimplex,
                                         netflow::SolverKind::kCostScaling}) {
    const auto t0 = SmokeClock::now();
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const netflow::FlowSolution cold = netflow::solve(instances[i], kind);
      const netflow::FlowSolution through_ws =
          netflow::solve(instances[i], kind, nullptr, &ws);
      if (cold.status != through_ws.status ||
          cold.arc_flow != through_ws.arc_flow) {
        std::fprintf(stderr,
                     "smoke: %s workspace solve diverged on instance %zu\n",
                     netflow::to_string(kind).c_str(), i);
        return 1;
      }
      if (cold.optimal() && cold.cost != cold_sols[i].cost) {
        std::fprintf(stderr,
                     "smoke: %s objective differs from SSP on instance %zu\n",
                     netflow::to_string(kind).c_str(), i);
        return 1;
      }
    }
    metrics.push_back(
        {"workspace_equality_" +
             std::string(kind == netflow::SolverKind::kNetworkSimplex
                             ? "simplex"
                             : "cost_scaling"),
         1.0, "pair_ms=" + std::to_string(
                  ns_between(t0, SmokeClock::now()) / 1e6)});
  }

  // Warm-start cost-perturbation sweep: one 256-node base instance,
  // 32 small cost perturbations, each solved cold and via warm resolve
  // from the base optimum. Objectives must agree.
  const netflow::Graph base = make_random(256, 42);
  const netflow::FlowSolution base_sol =
      netflow::solve(base, netflow::SolverKind::kSuccessiveShortestPaths);
  if (!base_sol.optimal()) {
    std::fprintf(stderr, "smoke: base instance unexpectedly not optimal\n");
    return 1;
  }
  netflow::WarmStartCache cache;
  cache.store(base, base_sol.arc_flow);
  std::vector<netflow::Graph> sweep;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<netflow::Cost> dcost(-2, 2);
  for (int k = 0; k < 32; ++k) {
    netflow::Graph g = base;
    for (netflow::ArcId a = 0; a < g.num_arcs(); ++a) {
      g.set_arc_cost(a, g.arc(a).cost + dcost(rng));
    }
    sweep.push_back(std::move(g));
  }
  double sweep_cold_ns = 0;
  double sweep_warm_ns = 0;
  netflow::SolverWorkspace warm_ws;
  for (int rep = 0; rep < 3; ++rep) {
    double cold = 0;
    double warm = 0;
    for (const netflow::Graph& g : sweep) {
      const auto t0 = SmokeClock::now();
      const netflow::FlowSolution c =
          netflow::solve(g, netflow::SolverKind::kSuccessiveShortestPaths);
      const auto t1 = SmokeClock::now();
      const netflow::FlowSolution w =
          netflow::resolve_warm(g, cache, nullptr, &warm_ws);
      const auto t2 = SmokeClock::now();
      cold += ns_between(t0, t1);
      warm += ns_between(t1, t2);
      if (!c.optimal() || !w.optimal() || c.cost != w.cost) {
        std::fprintf(stderr, "smoke: warm resolve diverged from cold\n");
        return 1;
      }
    }
    if (rep == 0 || cold < sweep_cold_ns) sweep_cold_ns = cold;
    if (rep == 0 || warm < sweep_warm_ns) sweep_warm_ns = warm;
  }
  metrics.push_back(
      {"warm_start_speedup",
       sweep_warm_ns > 0 ? sweep_cold_ns / sweep_warm_ns : 0,
       "cold_ms=" + std::to_string(sweep_cold_ns / 1e6) +
           " warm_ms=" + std::to_string(sweep_warm_ns / 1e6) +
           " sweep=" + std::to_string(sweep.size())});

  // Large-instance family (40k .. 330k arcs incl. feasibility chain):
  // per-backend wall times, the
  // upgraded backends' speedup over SSP, and kAuto's regret against the
  // best fixed backend. These calibrate netflow/select.cpp's thresholds.
  // Every solve is capped so a mis-fit backend costs kCapSeconds, not
  // the whole CI budget; completed backends must agree on the objective
  // (differential gate at scale). Timings are reported, not gated.
  struct LargeClass {
    const char* name;
    int nodes;
    int arcs;
    netflow::Flow supply;
  };
  constexpr LargeClass kClasses[] = {
      // 128k arcs, few units to route: cost scaling's regime (measured
      // 2.2 s vs simplex 3.5 s; SSP caps out on the Bellman-Ford
      // prologue these negative-cost instances force).
      {"large_low_supply", 32768, 131072, 32},
      // Dense supply on a mid-size graph: simplex's pivot stream wins
      // (1.4 s vs cost scaling 3.6 s) and SSP completes (11.5 s), so
      // this class yields a true, uncapped speedup_vs_ssp ratio.
      {"large_high_supply", 8192, 32768, 2048},
      // A third of a million arcs, sparse, few units: cost scaling's
      // best case, sized so it clears the cap with ~4x headroom even on
      // a slow CI runner (at 655k arcs it needed 12-20 s of the 20 s
      // budget — too thin a margin to gate on).
      {"xl_sparse_low_supply", 65536, 262144, 48},
  };
  constexpr double kCapSeconds = 20.0;
  struct BackendRun {
    const char* name;
    netflow::SolverKind kind;
  };
  constexpr BackendRun kRuns[] = {
      {"ssp", netflow::SolverKind::kSuccessiveShortestPaths},
      {"simplex", netflow::SolverKind::kNetworkSimplex},
      {"cost_scaling", netflow::SolverKind::kCostScaling},
      {"auto", netflow::SolverKind::kAuto},
  };
  netflow::SolverWorkspace large_ws;
  for (const LargeClass& cls : kClasses) {
    workloads::RandomFlowOptions lopts;
    lopts.num_nodes = cls.nodes;
    lopts.num_arcs = cls.arcs;
    lopts.supply = cls.supply;
    lopts.min_cost = -10;
    const netflow::Graph g = workloads::random_flow_problem(17, lopts);
    const netflow::SolverKind auto_pick =
        netflow::select_solver(netflow::measure_shape(g));

    double ms[4] = {0, 0, 0, 0};
    bool completed[4] = {false, false, false, false};
    netflow::Cost objective = 0;
    bool have_objective = false;
    for (int r = 0; r < 4; ++r) {
      netflow::SolveGuard guard;
      guard.max_seconds = kCapSeconds;
      const auto t0 = SmokeClock::now();
      const netflow::FlowSolution sol =
          netflow::solve(g, kRuns[r].kind, &guard, &large_ws);
      ms[r] = ns_between(t0, SmokeClock::now()) / 1e6;
      completed[r] = sol.optimal();
      if (completed[r]) {
        if (have_objective && sol.cost != objective) {
          std::fprintf(stderr, "smoke: %s objective mismatch on %s\n",
                       kRuns[r].name, cls.name);
          return 1;
        }
        objective = sol.cost;
        have_objective = true;
      }
      metrics.push_back(
          {std::string(cls.name) + "_" + kRuns[r].name + "_ms", ms[r],
           "completed=" + std::to_string(completed[r] ? 1 : 0) +
               " arcs=" + std::to_string(g.num_arcs()) +
               " supply=" + std::to_string(cls.supply) +
               (kRuns[r].kind == netflow::SolverKind::kAuto
                    ? " choice=" + netflow::to_string(auto_pick)
                    : std::string())});
    }
    if (!have_objective) {
      std::fprintf(stderr, "smoke: no backend completed %s\n", cls.name);
      return 1;
    }
    // Speedup of the best upgraded backend over SSP. A capped SSP run
    // makes this a lower bound (SSP's true time is >= the cap).
    double best_upgraded = 0;
    for (int r = 1; r <= 2; ++r) {
      if (completed[r] && (best_upgraded == 0 || ms[r] < best_upgraded)) {
        best_upgraded = ms[r];
      }
    }
    if (best_upgraded > 0) {
      metrics.push_back(
          {std::string(cls.name) + "_speedup_vs_ssp", ms[0] / best_upgraded,
           std::string("ssp_completed=") +
               std::to_string(completed[0] ? 1 : 0)});
    }
    // kAuto's regret against the best *fixed* backend on this class
    // (1.0 = matched the winner; the acceptance target is <= 1.10).
    double best_fixed = 0;
    for (int r = 0; r <= 2; ++r) {
      if (completed[r] && (best_fixed == 0 || ms[r] < best_fixed)) {
        best_fixed = ms[r];
      }
    }
    if (completed[3] && best_fixed > 0) {
      metrics.push_back({std::string(cls.name) + "_auto_regret",
                         ms[3] / best_fixed,
                         "choice=" + netflow::to_string(auto_pick)});
    }
  }

  for (const SmokeMetric& m : metrics) {
    std::printf("LERA_METRIC bench=solvers metric=%s value=%.3f %s\n",
                m.name.c_str(), m.value, m.extra.c_str());
  }

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << "{\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      out << "  \"" << metrics[i].name << "\": " << metrics[i].value
          << (i + 1 < metrics.size() ? "," : "") << "\n";
    }
    out << "}\n";
    if (!out) {
      std::fprintf(stderr, "smoke: cannot write %s\n", json_path);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return run_smoke(i + 1 < argc ? argv[i + 1] : nullptr);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
