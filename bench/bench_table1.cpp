// Experiment TAB1 (DESIGN.md): reproduces the paper's Table 1 — the
// radar-signal-processing application with the memory module running at
// f, f/2 and f/4 under supply-voltage scaling (5 V towards 2 V).
//
// Paper-reported rows (relative energy normalised to the f/4 row):
//   f    : mem 6, reg 12, E 4.9, aE 2.8
//   f/2  : mem 7, reg 11, E 2.0, aE 1.6
//   f/4  : mem 8, reg 10, E 1.0, aE 1.0
// The absolute counts depend on the proprietary workload; the
// reproduction targets the shape: slower/lower-voltage memory gives a
// several-fold drop in storage energy at unchanged datapath speed, with
// slightly more memory traffic as memory gets cheaper and split
// lifetimes pin more segments in registers.

#include <iostream>

#include "alloc/allocator.hpp"
#include "energy/voltage.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

using namespace lera;

namespace {

struct RowResult {
  int period;
  double v_mem;
  alloc::AllocationResult result;
};

}  // namespace

int main() {
  std::cout << "=== TAB1: RSP application, memory frequency vs energy ===\n";

  const ir::BasicBlock bb = workloads::make_rsp(6);
  const sched::Schedule sched = sched::list_schedule(bb, {2, 2});
  const auto inputs = workloads::random_inputs(bb, 64, 2026);
  const energy::VoltageModel vmodel;
  // Smallest register file that stays feasible at f/4 (the f/4 solution
  // in the paper likewise needed the most forced register residency).
  const int registers = 8;

  std::vector<RowResult> rows;
  for (int period : {1, 2, 4}) {
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    params.v_mem = energy::voltage_for_slowdown(period, vmodel);

    lifetime::SplitOptions split;
    split.access.period = period;

    const alloc::AllocationProblem p = alloc::make_problem_from_block(
        bb, sched, registers, params, inputs, split);
    if (period == 1) {
      std::cout << "workload: " << bb.name() << ", " << bb.num_values()
                << " values, schedule length " << sched.length(bb)
                << " steps, max lifetime density " << p.max_density()
                << " (paper: 26), R = " << registers << "\n\n";
    }

    RowResult row;
    row.period = period;
    row.v_mem = params.v_mem;
    row.result = alloc::allocate(p);
    if (!row.result.feasible) {
      std::cerr << "period " << period << " infeasible: "
                << row.result.message << "\n";
      return 1;
    }
    rows.push_back(std::move(row));
  }

  const double e_base = rows.back().result.static_energy.total();
  const double ae_base = rows.back().result.activity_energy.total();
  const double em_base = rows.back().result.static_energy.memory;

  report::Table table({"Memory Frequency", "Vmem", "# Mem", "# Reg",
                       "Relative E(mem)", "Relative E", "Relative aE",
                       "mem ports (R/W)"});
  for (const RowResult& row : rows) {
    const std::string freq =
        row.period == 1 ? "f" : "f/" + std::to_string(row.period);
    table.add_row(
        {freq, report::Table::num(row.v_mem),
         report::Table::num(row.result.stats.mem_accesses()),
         report::Table::num(row.result.stats.reg_accesses()),
         report::Table::num(row.result.static_energy.memory / em_base, 1),
         report::Table::num(row.result.static_energy.total() / e_base, 1),
         report::Table::num(row.result.activity_energy.total() / ae_base, 1),
         report::Table::num(row.result.stats.mem_read_ports) + "/" +
             report::Table::num(row.result.stats.mem_write_ports)});
  }
  table.print(std::cout);
  std::cout
      << "[paper: E 4.9 / 2.0 / 1.0, aE 2.8 / 1.6 / 1.0, mem 6 / 7 / 8, "
         "reg 12 / 11 / 10]\n"
         "[shape: the memory-module energy ratio tracks the paper's E "
         "column (the voltage-scaled component), the total activity-model "
         "ratio tracks its aE column; absolute access counts differ with "
         "the proprietary workload]\n";
  return 0;
}
