// Experiment FIG3 (DESIGN.md): reproduces the paper's Figure 3 —
// memory partition *after* register allocation (previous research [8])
// versus the paper's simultaneous partition + allocation, on the
// six-variable example with the listed switching activities and R = 1.
//
// Paper-reported values: the two-phase binding has total switching 2.4;
// the simultaneous solution has 1.5x lower memory switching, fewer
// memory accesses, and 1.4x (static) / 1.3x (activity) lower energy.

#include <iostream>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/two_phase.hpp"
#include "report/table.hpp"
#include "workloads/paper_examples.hpp"

using namespace lera;

namespace {

struct Row {
  std::string name;
  alloc::AllocationResult result;
  double mem_switching = 0;
};

Row run(const std::string& name, const alloc::AllocationProblem& p,
        bool simultaneous) {
  Row row;
  row.name = name;
  row.result = simultaneous ? alloc::allocate(p)
                            : alloc::two_phase_allocate(p);
  if (row.result.feasible) {
    const alloc::MemoryLayout layout =
        alloc::optimize_memory_layout(p, row.result.assignment);
    row.mem_switching = layout.optimized_activity;
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== FIG3: simultaneous vs two-phase (Figure 3, R = 1) ===\n";

  for (auto model : {energy::RegisterModel::kStatic,
                     energy::RegisterModel::kActivity}) {
    energy::EnergyParams params;
    params.register_model = model;
    const alloc::AllocationProblem p = workloads::figure3_problem(params);

    const Row baseline = run("two-phase [8] (fig 3a)", p, false);
    const Row ours = run("simultaneous (fig 3b)", p, true);
    if (!baseline.result.feasible || !ours.result.feasible) {
      std::cerr << "infeasible: " << baseline.result.message << " / "
                << ours.result.message << "\n";
      return 1;
    }

    std::cout << "\n--- register model: "
              << (model == energy::RegisterModel::kStatic ? "static (eq.1)"
                                                          : "activity (eq.2)")
              << " ---\n";
    report::Table table({"approach", "mem accesses", "reg accesses",
                         "mem locations", "mem switching", "E(static)",
                         "E(activity)"});
    for (const Row* row : {&baseline, &ours}) {
      table.add_row({row->name,
                     report::Table::num(row->result.stats.mem_accesses()),
                     report::Table::num(row->result.stats.reg_accesses()),
                     report::Table::num(row->result.stats.mem_locations),
                     report::Table::num(row->mem_switching),
                     report::Table::num(row->result.static_energy.total()),
                     report::Table::num(row->result.activity_energy.total())});
    }
    table.print(std::cout);

    const double improvement =
        baseline.result.energy(p) / ours.result.energy(p);
    std::cout << "energy improvement (two-phase / simultaneous): "
              << report::Table::num(improvement) << "x   [paper: "
              << (model == energy::RegisterModel::kStatic ? "1.4x" : "1.3x")
              << "]\n";
    if (baseline.mem_switching > 0 && ours.mem_switching > 0) {
      std::cout << "memory switching ratio: "
                << report::Table::num(baseline.mem_switching /
                                      ours.mem_switching)
                << "x   [paper: 1.5x]\n";
    }
  }
  return 0;
}
