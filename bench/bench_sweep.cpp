// Experiment SWEEP (DESIGN.md): the paper's §7 claim that simultaneous
// memory partitioning + register allocation improves energy "1.4 to 2.5
// times" over the previous two-phase techniques. We sweep the DSP kernel
// suite and random DFGs across register budgets and report the
// improvement factor of the simultaneous flow over the two-phase [8]
// baseline under both energy models.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "alloc/allocator.hpp"
#include "alloc/coloring.hpp"
#include "alloc/flow_graph.hpp"
#include "alloc/two_phase.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

struct Sample {
  std::string name;
  int registers;
  double static_improvement = 0;
  double activity_improvement = 0;
  double coloring_improvement = 0;
};

/// Best-of-3 wall time for solving \p problems on \p threads threads
/// through the engine, in milliseconds.
double time_batch_ms(const std::vector<alloc::AllocationProblem>& problems,
                     int threads,
                     audit::AuditLevel audit = audit::AuditLevel::kOff,
                     double task_deadline_seconds = 0) {
  lera::engine::EngineOptions eopts;
  eopts.threads = threads;
  eopts.audit_level = audit;
  eopts.task_deadline_seconds = task_deadline_seconds;
  const lera::engine::Engine engine(eopts);
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = engine.allocate_batch(problems);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
    if (results.size() != problems.size()) std::abort();
  }
  return best;
}

Sample measure(const std::string& name, const alloc::AllocationProblem& p) {
  Sample s;
  s.name = name;
  s.registers = p.num_registers;
  const alloc::AllocationResult ours = alloc::allocate(p);
  const alloc::AllocationResult baseline = alloc::two_phase_allocate(p);
  const alloc::AllocationResult coloring = alloc::coloring_allocate(p);
  if (ours.feasible && baseline.feasible) {
    s.static_improvement =
        baseline.static_energy.total() / ours.static_energy.total();
    s.activity_improvement =
        baseline.activity_energy.total() / ours.activity_energy.total();
  }
  if (ours.feasible && coloring.feasible) {
    s.coloring_improvement =
        coloring.activity_energy.total() / ours.activity_energy.total();
  }
  return s;
}

}  // namespace

int main() {
  std::cout << "=== SWEEP: simultaneous vs two-phase across workloads ===\n";
  std::cout << "[paper: improvements of 1.4x to 2.5x over previous "
               "research]\n\n";

  std::vector<Sample> samples;
  // Every measured instance also joins the parallel-speedup batch below.
  std::vector<alloc::AllocationProblem> batch;

  const std::vector<ir::BasicBlock> kernels = {
      workloads::make_fir(8),
      workloads::make_iir_biquad(),
      workloads::make_elliptic_wave_filter(),
      workloads::make_fft_butterfly(),
      workloads::make_fft(8),
      workloads::make_dct4(),
      workloads::make_matmul(3),
      workloads::make_conv3x3(),
      workloads::make_lattice(4),
      workloads::make_rsp(4),
  };
  for (const ir::BasicBlock& bb : kernels) {
    const sched::Schedule sched = sched::list_schedule(bb, {2, 1});
    const auto inputs = workloads::random_inputs(bb, 48, 7);
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    const alloc::AllocationProblem probe = alloc::make_problem_from_block(
        bb, sched, 1, params, inputs);
    const int peak = probe.max_density();
    for (int r : {peak / 4, peak / 2}) {
      if (r < 1) continue;
      alloc::AllocationProblem p = probe;
      p.num_registers = r;
      samples.push_back(measure(bb.name(), p));
      batch.push_back(std::move(p));
    }
  }

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workloads::RandomDfgOptions dopts;
    dopts.num_ops = 30;
    const ir::BasicBlock bb = workloads::random_dfg(seed, dopts);
    const sched::Schedule sched = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    const alloc::AllocationProblem probe = alloc::make_problem_from_block(
        bb, sched, 1, params, workloads::random_inputs(bb, 48, seed));
    alloc::AllocationProblem p = probe;
    p.num_registers = std::max(1, probe.max_density() / 3);
    samples.push_back(measure(bb.name(), p));
    batch.push_back(std::move(p));
  }

  report::Table table({"workload", "R", "improvement E(static)",
                       "improvement E(activity)", "vs coloring [6,7]"});
  double log_static = 0;
  double log_activity = 0;
  double log_coloring = 0;
  int n = 0;
  int n_coloring = 0;
  for (const Sample& s : samples) {
    if (s.static_improvement <= 0) continue;
    table.add_row({s.name, report::Table::num(s.registers),
                   report::Table::num(s.static_improvement),
                   report::Table::num(s.activity_improvement),
                   s.coloring_improvement > 0
                       ? report::Table::num(s.coloring_improvement)
                       : "-"});
    log_static += std::log(s.static_improvement);
    log_activity += std::log(s.activity_improvement);
    ++n;
    if (s.coloring_improvement > 0) {
      log_coloring += std::log(s.coloring_improvement);
      ++n_coloring;
    }
  }
  table.print(std::cout);
  if (n > 0) {
    std::cout << "geometric mean improvement: static "
              << report::Table::num(std::exp(log_static / n)) << "x, activity "
              << report::Table::num(std::exp(log_activity / n))
              << "x   [paper: 1.4x - 2.5x]\n";
    if (n_coloring > 0) {
      std::cout << "vs performance-oriented coloring [6,7]: "
                << report::Table::num(std::exp(log_coloring / n_coloring))
                << "x geomean\n";
    }
  }

  // Parallel engine: the same batch of independent solves, single-thread
  // vs multi-thread, plus a machine-readable line so the speedup
  // trajectory can be tracked across PRs.
  const int threads = 4;
  const double t1_ms = time_batch_ms(batch, 1);
  const double tn_ms = time_batch_ms(batch, threads);
  const double speedup = tn_ms > 0 ? t1_ms / tn_ms : 0;
  std::cout << "\n=== parallel engine: " << batch.size()
            << " batched solves ===\n"
            << "1 thread:  " << report::Table::num(t1_ms) << " ms\n"
            << threads << " threads: " << report::Table::num(tn_ms)
            << " ms  (speedup " << report::Table::num(speedup) << "x, "
            << std::thread::hardware_concurrency() << " hardware threads)\n";
  std::cout << "LERA_METRIC bench=sweep metric=parallel_speedup threads="
            << threads << " batch=" << batch.size() << " t1_ms=" << t1_ms
            << " tn_ms=" << tn_ms << " speedup=" << speedup << "\n";

  // Audit overhead: the same batch with the full-cost independent audit
  // on every result vs audit off. The audit re-derives legality and the
  // complete energy accounting per solve, so this prices the "trust but
  // verify" mode for production batches.
  const double off_ms = time_batch_ms(batch, threads);
  const double full_ms =
      time_batch_ms(batch, threads, audit::AuditLevel::kFullCost);
  const double overhead = off_ms > 0 ? full_ms / off_ms : 0;
  std::cout << "\n=== audit overhead: full-cost audit vs off ===\n"
            << "audit off:  " << report::Table::num(off_ms) << " ms\n"
            << "audit full: " << report::Table::num(full_ms) << " ms  ("
            << report::Table::num(overhead) << "x)\n";
  std::cout << "LERA_METRIC bench=sweep metric=audit_overhead threads="
            << threads << " batch=" << batch.size() << " off_ms=" << off_ms
            << " full_ms=" << full_ms << " overhead=" << overhead << "\n";

  // Deadline supervision overhead: the same batch with a generous
  // per-solve deadline (nothing actually times out) vs none. This
  // prices the supervision machinery itself — deadline arithmetic plus
  // the guards' adaptive clock polling — which should stay within noise
  // of the unsupervised run.
  const double plain_ms = time_batch_ms(batch, threads);
  const double deadline_ms =
      time_batch_ms(batch, threads, audit::AuditLevel::kOff, 60.0);
  const double deadline_overhead = plain_ms > 0 ? deadline_ms / plain_ms : 0;
  std::cout << "\n=== deadline overhead: 60 s per-solve deadline vs none ===\n"
            << "no deadline:   " << report::Table::num(plain_ms) << " ms\n"
            << "with deadline: " << report::Table::num(deadline_ms)
            << " ms  (" << report::Table::num(deadline_overhead) << "x)\n";
  std::cout << "LERA_METRIC bench=sweep metric=deadline_overhead threads="
            << threads << " batch=" << batch.size()
            << " plain_ms=" << plain_ms << " deadline_ms=" << deadline_ms
            << " overhead=" << deadline_overhead << "\n";

  // Warm-start resubmission: the same problem submitted repeatedly (the
  // explore / design-sweep pattern) with the engine's warm-start cache
  // on vs off. Warm resolves repair the previous optimal flow instead of
  // solving from scratch; hits is how many resubmissions the cache
  // actually served (forced-register instances carry lower bounds and
  // never warm-start).
  {
    // Prefer a problem whose flow graph is warm-startable (no lower
    // bounds); fall back to the first one.
    std::size_t pick = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!alloc::build_flow_graph(batch[i], alloc::GraphStyle::kDensityRegions)
               .graph.has_lower_bounds()) {
        pick = i;
        break;
      }
    }
    const std::vector<alloc::AllocationProblem> resubmits(8, batch[pick]);
    std::int64_t warm_hits = 0;
    const auto time_resubmit_ms = [&](bool warm_start) {
      lera::engine::EngineOptions eopts;
      eopts.threads = 1;
      eopts.warm_start = warm_start;
      const lera::engine::Engine engine(eopts);
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto results = engine.allocate_batch(resubmits);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < best) best = ms;
        if (results.size() != resubmits.size()) std::abort();
      }
      if (warm_start) warm_hits = engine.stats().perf.warm_start_hits;
      return best;
    };
    const double cold_resubmit_ms = time_resubmit_ms(false);
    const double warm_resubmit_ms = time_resubmit_ms(true);
    const double warm_speedup =
        warm_resubmit_ms > 0 ? cold_resubmit_ms / warm_resubmit_ms : 0;
    std::cout << "\n=== warm-start resubmission: " << resubmits.size()
              << " identical solves, cache on vs off ===\n"
              << "cold: " << report::Table::num(cold_resubmit_ms) << " ms\n"
              << "warm: " << report::Table::num(warm_resubmit_ms) << " ms  ("
              << report::Table::num(warm_speedup) << "x, " << warm_hits
              << " cache hits)\n";
    std::cout << "LERA_METRIC bench=sweep metric=warm_resubmission threads=1"
              << " batch=" << resubmits.size()
              << " cold_ms=" << cold_resubmit_ms
              << " warm_ms=" << warm_resubmit_ms << " hits=" << warm_hits
              << " speedup=" << warm_speedup << "\n";
  }
  return 0;
}
