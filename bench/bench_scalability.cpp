// Experiment SCALE (DESIGN.md): the paper's polynomial-time claim
// ("globally optimal solution ... in polynomial time using very
// efficient algorithms"). Google-benchmark sweep of the full allocation
// pipeline (graph construction + min-cost flow + extraction) over
// growing random lifetime sets; complexity is reported against the
// instance's variable count.

#include <benchmark/benchmark.h>

#include "alloc/allocator.hpp"
#include "engine/engine.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

alloc::AllocationProblem make_instance(int num_vars, std::uint64_t seed,
                                       energy::RegisterModel model) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = num_vars;
  // Keep density proportional to size: time axis grows with the count.
  lopts.num_steps = std::max(10, num_vars / 2);
  lopts.max_reads = 2;
  energy::EnergyParams params;
  params.register_model = model;
  return alloc::make_problem(
      workloads::random_lifetimes(seed, lopts), lopts.num_steps,
      std::max(2, num_vars / 8), params,
      workloads::random_activity(seed + 1,
                                 static_cast<std::size_t>(num_vars)));
}

void BM_AllocateDensityGraph(benchmark::State& state) {
  const alloc::AllocationProblem p = make_instance(
      static_cast<int>(state.range(0)), 42,
      energy::RegisterModel::kActivity);
  for (auto _ : state) {
    alloc::AllocationResult r = alloc::allocate(p);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllocateDensityGraph)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_AllocateAllPairsGraph(benchmark::State& state) {
  const alloc::AllocationProblem p = make_instance(
      static_cast<int>(state.range(0)), 43,
      energy::RegisterModel::kActivity);
  alloc::AllocatorOptions opts;
  opts.style = alloc::GraphStyle::kAllPairs;
  for (auto _ : state) {
    alloc::AllocationResult r = alloc::allocate(p, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllocateAllPairsGraph)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_BuildFlowGraphOnly(benchmark::State& state) {
  const alloc::AllocationProblem p = make_instance(
      static_cast<int>(state.range(0)), 44, energy::RegisterModel::kStatic);
  for (auto _ : state) {
    alloc::FlowGraphSpec spec =
        alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
    benchmark::DoNotOptimize(spec);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildFlowGraphOnly)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

// Parallel engine scalability: a fixed batch of independent instances
// through engine::Engine::allocate_batch, swept over the thread count.
// Real time is what parallelism buys, so measure wall clock.
void BM_EngineAllocateBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<alloc::AllocationProblem> batch;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    batch.push_back(
        make_instance(64, 1000 + seed, energy::RegisterModel::kActivity));
  }
  engine::EngineOptions eopts;
  eopts.threads = threads;
  const engine::Engine eng(eopts);
  for (auto _ : state) {
    std::vector<alloc::AllocationResult> r = eng.allocate_batch(batch);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = threads;
  state.counters["solves_per_s"] = benchmark::Counter(
      static_cast<double>(batch.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineAllocateBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The whole-application driver at 1 vs N threads (bit-identical
// reports; only the wall clock moves).
void BM_EngineRunTaskGraph(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ir::TaskGraph tg;
  workloads::RandomDfgOptions dopts;
  dopts.num_ops = 24;
  for (int i = 0; i < 12; ++i) {
    tg.add_task("t" + std::to_string(i),
                workloads::random_dfg(static_cast<std::uint64_t>(i), dopts));
  }
  engine::EngineOptions eopts;
  eopts.threads = threads;
  const engine::Engine eng(eopts);
  for (auto _ : state) {
    engine::PipelineReport r = eng.run(tg);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_EngineRunTaskGraph)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
