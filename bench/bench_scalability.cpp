// Experiment SCALE (DESIGN.md): the paper's polynomial-time claim
// ("globally optimal solution ... in polynomial time using very
// efficient algorithms"). Google-benchmark sweep of the full allocation
// pipeline (graph construction + min-cost flow + extraction) over
// growing random lifetime sets; complexity is reported against the
// instance's variable count.

#include <benchmark/benchmark.h>

#include "alloc/allocator.hpp"
#include "workloads/random_gen.hpp"

using namespace lera;

namespace {

alloc::AllocationProblem make_instance(int num_vars, std::uint64_t seed,
                                       energy::RegisterModel model) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = num_vars;
  // Keep density proportional to size: time axis grows with the count.
  lopts.num_steps = std::max(10, num_vars / 2);
  lopts.max_reads = 2;
  energy::EnergyParams params;
  params.register_model = model;
  return alloc::make_problem(
      workloads::random_lifetimes(seed, lopts), lopts.num_steps,
      std::max(2, num_vars / 8), params,
      workloads::random_activity(seed + 1,
                                 static_cast<std::size_t>(num_vars)));
}

void BM_AllocateDensityGraph(benchmark::State& state) {
  const alloc::AllocationProblem p = make_instance(
      static_cast<int>(state.range(0)), 42,
      energy::RegisterModel::kActivity);
  for (auto _ : state) {
    alloc::AllocationResult r = alloc::allocate(p);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllocateDensityGraph)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_AllocateAllPairsGraph(benchmark::State& state) {
  const alloc::AllocationProblem p = make_instance(
      static_cast<int>(state.range(0)), 43,
      energy::RegisterModel::kActivity);
  alloc::AllocatorOptions opts;
  opts.style = alloc::GraphStyle::kAllPairs;
  for (auto _ : state) {
    alloc::AllocationResult r = alloc::allocate(p, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllocateAllPairsGraph)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_BuildFlowGraphOnly(benchmark::State& state) {
  const alloc::AllocationProblem p = make_instance(
      static_cast<int>(state.range(0)), 44, energy::RegisterModel::kStatic);
  for (auto _ : state) {
    alloc::FlowGraphSpec spec =
        alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
    benchmark::DoNotOptimize(spec);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildFlowGraphOnly)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
