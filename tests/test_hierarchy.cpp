#include <gtest/gtest.h>

#include "alloc/hierarchy.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, int r) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = {r};
  return out;
}

/// Three overlapping memory-bound variables (R = 0 forces all into
/// memory), traffic 2 accesses each.
AllocationProblem memory_bound() {
  energy::EnergyParams params;
  return make_problem(
      {lt("u", 1, 5), lt("v", 2, 6), lt("w", 3, 7)}, 8, 0, params,
      energy::ActivityMatrix(3));
}

TEST(Hierarchy, ZeroCapacityMeansAllOffchip) {
  const AllocationProblem p = memory_bound();
  HierarchyParams h;
  h.onchip_capacity = 0;
  const HierarchicalResult r = allocate_hierarchical(p, h);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.onchip_runs, 0);
  EXPECT_EQ(r.offchip_runs, 3);
  EXPECT_DOUBLE_EQ(r.total_static_energy, r.all_offchip_static_energy);
  for (StorageLevel level : r.level) {
    EXPECT_EQ(level, StorageLevel::kOffchip);
  }
}

TEST(Hierarchy, AmpleCapacityMeansAllOnchip) {
  const AllocationProblem p = memory_bound();
  HierarchyParams h;
  h.onchip_capacity = 10;
  const HierarchicalResult r = allocate_hierarchical(p, h);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.onchip_runs, 3);
  EXPECT_EQ(r.offchip_runs, 0);
  // On-chip accesses cost 5/10, off-chip 11/22: big difference.
  EXPECT_LT(r.total_static_energy, r.all_offchip_static_energy);
}

TEST(Hierarchy, TightCapacityKeepsHottestRunOnchip) {
  // Two variables; one with far more reads (split lifetime traffic).
  energy::EnergyParams params;
  Lifetime hot;
  hot.value = 0;
  hot.name = "hot";
  hot.write_time = 1;
  hot.read_times = {2, 3, 4, 5};  // 1 write + 4 reads in memory.
  const AllocationProblem p = make_problem(
      {hot, lt("cold", 1, 5)}, 6, 0, params, energy::ActivityMatrix(2));
  HierarchyParams h;
  h.onchip_capacity = 1;  // Both runs overlap: only one fits.
  const HierarchicalResult r = allocate_hierarchical(p, h);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.onchip_runs, 1);
  EXPECT_EQ(r.offchip_runs, 1);
  // The hot variable's segments must be the on-chip ones.
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    if (p.segments[s].var == 0) {
      EXPECT_EQ(r.level[s], StorageLevel::kOnchip);
    } else {
      EXPECT_EQ(r.level[s], StorageLevel::kOffchip);
    }
  }
}

TEST(Hierarchy, SequentialRunsShareTheScratchpadWord) {
  // Two non-overlapping memory variables: capacity 1 hosts both.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, 3), lt("v", 3, 5)}, 6, 0, params,
      energy::ActivityMatrix(2));
  HierarchyParams h;
  h.onchip_capacity = 1;
  const HierarchicalResult r = allocate_hierarchical(p, h);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.onchip_runs, 2);
  EXPECT_EQ(r.offchip_runs, 0);
}

TEST(Hierarchy, EnergyMonotoneInCapacity) {
  const ir::BasicBlock bb = workloads::make_rsp(4);
  const sched::Schedule s = sched::list_schedule(bb, {2, 2});
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const AllocationProblem p = make_problem_from_block(bb, s, 4, params);
  double prev = std::numeric_limits<double>::infinity();
  for (int capacity : {0, 1, 2, 4, 8, 16, 64}) {
    HierarchyParams h;
    h.onchip_capacity = capacity;
    const HierarchicalResult r = allocate_hierarchical(p, h);
    ASSERT_TRUE(r.feasible) << r.message;
    EXPECT_LE(r.total_static_energy, prev + 1e-9) << "capacity " << capacity;
    prev = r.total_static_energy;
  }
}

TEST(Hierarchy, MatchesGreedyOnNonOverlappingRuns) {
  // When no runs overlap, capacity >= 1 should host every run with
  // positive savings: equivalent to taking all of them.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("a", 1, 2), lt("b", 2, 3), lt("c", 3, 4), lt("d", 4, 5)}, 6, 0,
      params, energy::ActivityMatrix(4));
  HierarchyParams h;
  h.onchip_capacity = 1;
  const HierarchicalResult r = allocate_hierarchical(p, h);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.onchip_runs, 4);
}

TEST(Hierarchy, ScratchpadCapacityRespectedOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 12;
    energy::EnergyParams params;
    const AllocationProblem p = make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 2,
        params, workloads::random_activity(seed, 12));
    HierarchyParams h;
    h.onchip_capacity = 2;
    const HierarchicalResult r = allocate_hierarchical(p, h);
    ASSERT_TRUE(r.feasible) << "seed " << seed;
    // At every boundary at most `capacity` on-chip segments are live.
    for (int b = 0; b <= p.num_steps; ++b) {
      int live = 0;
      for (std::size_t s = 0; s < p.segments.size(); ++s) {
        if (r.level[s] != StorageLevel::kOnchip) continue;
        if (p.segments[s].start <= b && b < p.segments[s].end) ++live;
      }
      EXPECT_LE(live, h.onchip_capacity) << "seed " << seed << " b " << b;
    }
    // Registers match stage 1.
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      EXPECT_EQ(r.level[s] == StorageLevel::kRegister,
                r.stage1.assignment.in_register(s));
    }
  }
}

TEST(Hierarchy, OffchipPressureIncreasesRegisterValue) {
  // With off-chip-only memory, register savings are bigger: the same
  // problem solved hierarchically must show a larger gap between R = 0
  // and R = 4 than the on-chip-only configuration.
  const ir::BasicBlock bb = workloads::make_fir(8);
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  HierarchyParams h;
  h.onchip_capacity = 0;  // Off-chip only.

  AllocationProblem p0 = make_problem_from_block(bb, s, 0, params);
  AllocationProblem p4 = make_problem_from_block(bb, s, 4, params);
  const HierarchicalResult r0 = allocate_hierarchical(p0, h);
  const HierarchicalResult r4 = allocate_hierarchical(p4, h);
  ASSERT_TRUE(r0.feasible && r4.feasible);
  const double gap_off = r0.total_static_energy - r4.total_static_energy;

  const AllocationResult on0 = allocate(p0);
  const AllocationResult on4 = allocate(p4);
  const double gap_on =
      on0.static_energy.total() - on4.static_energy.total();
  EXPECT_GT(gap_off, gap_on);
}

}  // namespace
}  // namespace lera::alloc
