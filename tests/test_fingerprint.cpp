#include "alloc/fingerprint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>
#include <vector>

#include "alloc/problem.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/random_gen.hpp"

// Canonical-form fingerprinting, the allocation cache's key space.
// The contract under test:
//  * permutation invariance — shuffling variable declarations (and the
//    matching activity rows) never changes the canonical hash, across a
//    200-seed sweep;
//  * sensitivity — every semantic mutation (registers, read times,
//    widths, liveness, activities, energy params) changes it;
//  * the exact hash distinguishes declaration orders, the structural
//    hash ignores costs but not topology;
//  * names/ValueIds are not hashed (renames collide on purpose);
//  * problem_io round trips preserve all three hashes, since the wire
//    format is how cached traffic actually arrives.

namespace lera::alloc {
namespace {

lifetime::SplitOptions split_of(const AllocationProblem& p) {
  lifetime::SplitOptions split;
  split.access = p.access;
  return split;
}

AllocationProblem random_problem(std::uint64_t seed, int num_vars,
                                 int registers, bool random_act) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = num_vars;
  lopts.num_steps = 12;
  lopts.max_reads = 3;
  std::vector<lifetime::Lifetime> lts =
      workloads::random_lifetimes(seed, lopts);
  energy::ActivityMatrix act =
      random_act
          ? workloads::random_activity(seed + 999, lts.size())
          : energy::ActivityMatrix(lts.size());
  return make_problem(std::move(lts), lopts.num_steps, registers,
                      energy::EnergyParams{}, std::move(act));
}

/// The same problem with variable declarations shuffled: perm[c] is the
/// original index of the variable now declared at position c. The
/// activity matrix rows/columns are permuted to match.
AllocationProblem permuted(const AllocationProblem& p,
                           const std::vector<std::size_t>& perm) {
  std::vector<lifetime::Lifetime> lts;
  lts.reserve(perm.size());
  for (const std::size_t o : perm) lts.push_back(p.lifetimes[o]);
  energy::ActivityMatrix act(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    act.set_initial(i, p.activity.initial(perm[i]));
    for (std::size_t j = i + 1; j < perm.size(); ++j) {
      act.set(i, j, p.activity.hamming(perm[i], perm[j]));
    }
  }
  return make_problem(std::move(lts), p.num_steps, p.num_registers,
                      p.params, std::move(act), split_of(p));
}

TEST(Fingerprint, PermutationInvarianceSweep) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const int nvars = 2 + static_cast<int>(seed % 9);
    const AllocationProblem p =
        random_problem(seed, nvars, 2, /*random_act=*/true);
    const FingerprintResult base = fingerprint_problem(p);

    std::vector<std::size_t> perm(p.lifetimes.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::mt19937_64 rng(seed * 7919 + 1);
    std::shuffle(perm.begin(), perm.end(), rng);

    const AllocationProblem q = permuted(p, perm);
    const FingerprintResult other = fingerprint_problem(q);
    EXPECT_EQ(base.canonical, other.canonical) << "seed " << seed;
    // The canonical permutations must be permutations.
    std::vector<int> sorted = other.var_order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i], static_cast<int>(i)) << "seed " << seed;
    }
    if (!std::is_sorted(perm.begin(), perm.end())) {
      // A genuinely different declaration order: the exact hash, which
      // is declaration-order-sensitive by design, must differ.
      EXPECT_NE(base.exact, other.exact) << "seed " << seed;
    }
  }
}

TEST(Fingerprint, UniformActivityMatchesAcrossPermutation) {
  // Default-activity problems take the summarized (linear-time) absorb
  // path; invariance must hold there too.
  const AllocationProblem p =
      random_problem(42, 6, 2, /*random_act=*/false);
  ASSERT_TRUE(p.activity.is_uniform());
  std::vector<std::size_t> perm = {3, 0, 5, 1, 4, 2};
  const AllocationProblem q = permuted(p, perm);
  // permuted() rebuilds the matrix through set() calls, which drops the
  // uniform flag even though every value is still the default...
  const FingerprintResult a = fingerprint_problem(p);
  const FingerprintResult b = fingerprint_problem(q);
  // ...so equality here is only required when both sides took the same
  // absorb path. When they did not, the miss is the allowed (safe)
  // direction; assert the stronger property on a same-path pair.
  const AllocationProblem p2 =
      random_problem(43, 6, 2, /*random_act=*/false);
  const FingerprintResult c = fingerprint_problem(p2);
  EXPECT_NE(a.canonical, c.canonical);  // Different lifetimes differ.
  if (q.activity.is_uniform()) {
    EXPECT_EQ(a.canonical, b.canonical);
  }
}

TEST(Fingerprint, SemanticMutationsChangeCanonicalHash) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const AllocationProblem p =
        random_problem(seed, 5, 2, /*random_act=*/true);
    const Fingerprint base = fingerprint_problem(p).canonical;

    {
      AllocationProblem m = p;
      m.num_registers += 1;
      EXPECT_NE(fingerprint_problem(m).canonical, base) << "seed " << seed;
    }
    {
      AllocationProblem m = p;
      m.params.mem_read *= 1.5;
      EXPECT_NE(fingerprint_problem(m).canonical, base) << "seed " << seed;
    }
    {
      std::vector<lifetime::Lifetime> lts = p.lifetimes;
      lts[0].width += 8;
      AllocationProblem m =
          make_problem(std::move(lts), p.num_steps, p.num_registers,
                       p.params, p.activity, split_of(p));
      EXPECT_NE(fingerprint_problem(m).canonical, base) << "seed " << seed;
    }
    {
      energy::ActivityMatrix act = p.activity;
      act.set(0, 1, p.activity.hamming(0, 1) == 0.25 ? 0.75 : 0.25);
      AllocationProblem m =
          make_problem(p.lifetimes, p.num_steps, p.num_registers,
                       p.params, std::move(act), split_of(p));
      EXPECT_NE(fingerprint_problem(m).canonical, base) << "seed " << seed;
    }
  }
}

TEST(Fingerprint, StructuralHashIgnoresCostsButNotTopology) {
  const AllocationProblem p =
      random_problem(7, 5, 2, /*random_act=*/true);
  const FingerprintResult base = fingerprint_problem(p);

  // Cost-only mutations: same flow topology, same structural hash.
  AllocationProblem costs = p;
  costs.params.mem_read *= 2;
  costs.params.reg_write *= 3;
  const FingerprintResult jittered = fingerprint_problem(costs);
  EXPECT_EQ(base.structural, jittered.structural);
  EXPECT_NE(base.canonical, jittered.canonical);

  energy::ActivityMatrix act = p.activity;
  act.set(1, 2, 0.125);
  const AllocationProblem act_jittered =
      make_problem(p.lifetimes, p.num_steps, p.num_registers, p.params,
                   std::move(act), split_of(p));
  EXPECT_EQ(fingerprint_problem(act_jittered).structural, base.structural);

  // A register-count change alters the flow value: structural differs.
  AllocationProblem regs = p;
  regs.num_registers += 1;
  EXPECT_NE(fingerprint_problem(regs).structural, base.structural);
}

TEST(Fingerprint, NamesAndValueIdsAreNotHashed) {
  const AllocationProblem p =
      random_problem(11, 4, 2, /*random_act=*/true);
  std::vector<lifetime::Lifetime> renamed = p.lifetimes;
  for (std::size_t v = 0; v < renamed.size(); ++v) {
    renamed[v].name = "renamed_" + std::to_string(v * 17);
    renamed[v].value = static_cast<ir::ValueId>(v + 1000);
  }
  const AllocationProblem q =
      make_problem(std::move(renamed), p.num_steps, p.num_registers,
                   p.params, p.activity, split_of(p));
  const FingerprintResult a = fingerprint_problem(p);
  const FingerprintResult b = fingerprint_problem(q);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.structural, b.structural);
}

TEST(Fingerprint, ProblemIoRoundTripPreservesAllHashes) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const AllocationProblem p =
        random_problem(seed, 2 + static_cast<int>(seed % 6), 2,
                       /*random_act=*/true);
    std::ostringstream os;
    workloads::write_problem(os, p);
    const workloads::ProblemParseResult back =
        workloads::parse_problem(os.str(), p.params);
    ASSERT_TRUE(back.ok()) << back.error << "\n" << os.str();
    const FingerprintResult a = fingerprint_problem(p);
    const FingerprintResult b = fingerprint_problem(*back.problem);
    EXPECT_EQ(a.canonical, b.canonical) << "seed " << seed;
    EXPECT_EQ(a.exact, b.exact) << "seed " << seed;
    EXPECT_EQ(a.structural, b.structural) << "seed " << seed;
  }
}

TEST(Fingerprint, HexIsStableAndDistinct) {
  const Fingerprint f{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(f.hex(), "0123456789abcdeffedcba9876543210");
  const AllocationProblem p = random_problem(3, 4, 2, true);
  const AllocationProblem q = random_problem(4, 4, 2, true);
  EXPECT_NE(fingerprint_problem(p).canonical.hex(),
            fingerprint_problem(q).canonical.hex());
}

}  // namespace
}  // namespace lera::alloc
