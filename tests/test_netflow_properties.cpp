#include <gtest/gtest.h>

#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

/// Property-based cross-checks: on random instances all three solvers
/// must agree on feasibility and optimal cost, every returned flow must
/// be feasible, and every returned flow must pass the residual-cycle
/// optimality certificate.

namespace lera::netflow {
namespace {

using workloads::RandomFlowOptions;
using workloads::random_flow_problem;

struct PropertyCase {
  std::uint64_t seed;
  RandomFlowOptions opts;
};

class RandomInstanceTest : public ::testing::TestWithParam<std::uint64_t> {};

void check_all_solvers_agree(const Graph& g) {
  const FlowSolution ssp = solve(g, SolverKind::kSuccessiveShortestPaths);
  const FlowSolution cc = solve(g, SolverKind::kCycleCanceling);
  const FlowSolution ns = solve(g, SolverKind::kNetworkSimplex);
  const FlowSolution cs = solve(g, SolverKind::kCostScaling);

  ASSERT_EQ(ssp.status, cc.status);
  ASSERT_EQ(ssp.status, ns.status);
  ASSERT_EQ(ssp.status, cs.status);
  if (!ssp.optimal()) return;

  EXPECT_EQ(ssp.cost, cc.cost);
  EXPECT_EQ(ssp.cost, ns.cost);
  EXPECT_EQ(ssp.cost, cs.cost);
  for (const FlowSolution* sol : {&ssp, &cc, &ns, &cs}) {
    const CheckResult feasible = check_feasible(g, sol->arc_flow);
    EXPECT_TRUE(feasible.ok) << feasible.message;
    EXPECT_TRUE(certify_optimal(g, sol->arc_flow));
    EXPECT_EQ(flow_cost(g, sol->arc_flow), sol->cost);
  }
}

TEST_P(RandomInstanceTest, PlainTransportProblems) {
  RandomFlowOptions opts;
  opts.min_cost = 0;  // Non-negative costs.
  check_all_solvers_agree(random_flow_problem(GetParam(), opts));
}

TEST_P(RandomInstanceTest, NegativeCosts) {
  RandomFlowOptions opts;
  opts.min_cost = -30;
  check_all_solvers_agree(random_flow_problem(GetParam(), opts));
}

TEST_P(RandomInstanceTest, PureCirculations) {
  RandomFlowOptions opts;
  opts.supply = 0;
  opts.min_cost = -30;
  check_all_solvers_agree(random_flow_problem(GetParam(), opts));
}

TEST_P(RandomInstanceTest, WithLowerBounds) {
  RandomFlowOptions opts;
  opts.lower_bound_prob = 0.4;
  opts.min_cost = -15;
  check_all_solvers_agree(random_flow_problem(GetParam(), opts));
}

TEST_P(RandomInstanceTest, DenseSmallGraphs) {
  RandomFlowOptions opts;
  opts.num_nodes = 6;
  opts.num_arcs = 40;
  opts.min_cost = -25;
  opts.lower_bound_prob = 0.2;
  check_all_solvers_agree(random_flow_problem(GetParam(), opts));
}

TEST_P(RandomInstanceTest, LargerSparseGraphs) {
  RandomFlowOptions opts;
  opts.num_nodes = 40;
  opts.num_arcs = 120;
  opts.supply = 9;
  opts.min_cost = -10;
  check_all_solvers_agree(random_flow_problem(GetParam(), opts));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range<std::uint64_t>(1, 26));

// Larger stress sweep for the two fast solvers only (cycle canceling is
// O(instance) slower; the suite above already pins it to the others).
TEST(RandomInstanceStress, SspMatchesNetworkSimplex) {
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    RandomFlowOptions opts;
    opts.num_nodes = 60;
    opts.num_arcs = 240;
    opts.min_cost = -20;
    opts.supply = 12;
    opts.lower_bound_prob = 0.1;
    const Graph g = random_flow_problem(seed, opts);
    const FlowSolution ssp = solve(g, SolverKind::kSuccessiveShortestPaths);
    const FlowSolution ns = solve(g, SolverKind::kNetworkSimplex);
    ASSERT_EQ(ssp.status, ns.status) << "seed " << seed;
    if (ssp.optimal()) {
      EXPECT_EQ(ssp.cost, ns.cost) << "seed " << seed;
      EXPECT_TRUE(certify_optimal(g, ssp.arc_flow)) << "seed " << seed;
      EXPECT_TRUE(certify_optimal(g, ns.arc_flow)) << "seed " << seed;
    }
  }
}

// Fault-injection sweep: corrupt solver outputs on seeded random
// instances and require that the robust path either corrects the answer
// through its fallback chain (same optimal cost as the un-corrupted
// reference) or surfaces the failure as kUncertified — a corrupted flow
// must never come back labelled optimal.
class FaultInjectionSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make_instance(std::uint64_t seed) const {
    RandomFlowOptions opts;
    opts.num_nodes = 8 + static_cast<int>(seed % 6);
    opts.num_arcs = 18 + static_cast<int>(seed % 12);
    opts.min_cost = -15;
    opts.supply = 2 + static_cast<Flow>(seed % 5);
    opts.lower_bound_prob = seed % 3 == 0 ? 0.3 : 0.0;
    return random_flow_problem(seed, opts);
  }
};

TEST_P(FaultInjectionSweep, SingleFaultIsCorrectedByTheFallbackChain) {
  const std::uint64_t seed = GetParam();
  const Graph g = make_instance(seed);
  const FlowSolution reference = solve(g);

  FaultInjector injector(seed * 2654435761u + 1);
  SolveOptions options;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);

  if (!reference.optimal()) {
    EXPECT_EQ(sol.status, reference.status) << "seed " << seed;
    return;
  }
  ASSERT_TRUE(sol.optimal()) << "seed " << seed << ": " << diag.summary();
  EXPECT_EQ(sol.cost, reference.cost) << "seed " << seed;
  EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
  if (injector.faults_injected() > 0) {
    EXPECT_GE(diag.fallbacks_taken, 1) << "seed " << seed;
  }
  const CheckResult feasible = check_feasible(g, sol.arc_flow);
  EXPECT_TRUE(feasible.ok) << "seed " << seed << ": " << feasible.message;
}

TEST_P(FaultInjectionSweep, PersistentFaultsAreSurfacedNotReturned) {
  const std::uint64_t seed = GetParam();
  const Graph g = make_instance(seed);
  const FlowSolution reference = solve(g);

  FaultInjectorOptions fopts;
  fopts.max_faulty_attempts = 1 << 20;  // Corrupt every attempt.
  FaultInjector injector(seed * 0x9e3779b97f4a7c15ull + 3, fopts);
  SolveOptions options;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);

  if (!reference.optimal()) {
    EXPECT_EQ(sol.status, reference.status) << "seed " << seed;
    return;
  }
  // Every solver's answer was corrupted, so nothing may certify: the
  // robust path must refuse to bless any of them.
  EXPECT_EQ(sol.status, SolveStatus::kUncertified)
      << "seed " << seed << ": " << diag.summary();
  EXPECT_EQ(diag.certification, CertificationVerdict::kFailed);
  EXPECT_EQ(injector.faults_injected(),
            static_cast<int>(diag.attempts.size()))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjectionSweep,
                         ::testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace lera::netflow
