#include <gtest/gtest.h>

#include "pipeline/explore.hpp"
#include "workloads/kernels.hpp"

namespace lera::pipeline {
namespace {

TEST(Explore, EvaluatesAllCandidates) {
  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  ExploreOptions opts;
  const ExploreResult out = explore_schedules(bb, opts);
  EXPECT_EQ(out.candidates.size(),
            opts.resource_options.size() + opts.slack_options.size());
  ASSERT_GE(out.best, 0);
  const ScheduleCandidate& best =
      out.candidates[static_cast<std::size_t>(out.best)];
  EXPECT_TRUE(best.feasible);
  for (const ScheduleCandidate& c : out.candidates) {
    if (c.feasible) {
      EXPECT_LE(best.energy, c.energy + 1e-9);
      EXPECT_TRUE(c.schedule.verify(bb).empty()) << c.label;
    }
  }
}

TEST(Explore, DeadlineFiltersSlowSchedules) {
  const ir::BasicBlock bb = workloads::make_fir(8);
  ExploreOptions strict;
  strict.deadline = sched::asap(bb).length(bb);  // Only critical path.
  const ExploreResult out = explore_schedules(bb, strict);
  for (const ScheduleCandidate& c : out.candidates) {
    if (c.feasible) {
      EXPECT_LE(c.length, strict.deadline) << c.label;
    }
  }
}

TEST(Explore, TighterResourcesStretchSchedulesAndLowerDensity) {
  const ir::BasicBlock bb = workloads::make_rsp(4);
  ExploreOptions opts;
  opts.resource_options = {{1, 1}, {4, 4}};
  opts.slack_options = {};
  const ExploreResult out = explore_schedules(bb, opts);
  ASSERT_EQ(out.candidates.size(), 2u);
  const auto& tight = out.candidates[0];
  const auto& loose = out.candidates[1];
  EXPECT_GT(tight.length, loose.length);
  // A stretched schedule spreads lifetimes: density cannot grow.
  EXPECT_LE(tight.max_density, loose.max_density + 2);
}

TEST(Explore, BestBeatsDefaultChoice) {
  // The winner can only improve on blindly taking the first candidate.
  const ir::BasicBlock bb = workloads::make_fft_butterfly();
  ExploreOptions opts;
  opts.num_registers = 3;
  const ExploreResult out = explore_schedules(bb, opts);
  ASSERT_GE(out.best, 0);
  const auto& first = out.candidates[0];
  const auto& best = out.candidates[static_cast<std::size_t>(out.best)];
  if (first.feasible) {
    EXPECT_LE(best.energy, first.energy + 1e-9);
  }
}

TEST(SizeRegisterFile, FindsTheKnee) {
  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  const alloc::AllocationProblem p =
      alloc::make_problem_from_block(bb, s, 1, params);
  const RegisterFileSizing sizing = size_register_file(p, 0.05);
  ASSERT_GT(sizing.registers, 0);
  EXPECT_LE(sizing.registers, p.max_density());
  EXPECT_LE(sizing.energy, sizing.asymptote * 1.05 + 1e-9);

  // One register fewer must violate the tolerance (it is the knee).
  if (sizing.registers > 0) {
    alloc::AllocationProblem smaller = p;
    smaller.num_registers = sizing.registers - 1;
    const alloc::AllocationResult r = alloc::allocate(smaller);
    if (r.feasible) {
      EXPECT_GT(r.energy(smaller), sizing.asymptote * 1.05);
    }
  }
}

TEST(SizeRegisterFile, ZeroToleranceNeedsNearFullFile) {
  const ir::BasicBlock bb = workloads::make_fir(6);
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  const alloc::AllocationProblem p =
      alloc::make_problem_from_block(bb, s, 1, params);
  const RegisterFileSizing strict = size_register_file(p, 0.0);
  const RegisterFileSizing loose = size_register_file(p, 0.5);
  EXPECT_GE(strict.registers, loose.registers);
}

}  // namespace
}  // namespace lera::pipeline
