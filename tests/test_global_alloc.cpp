#include <gtest/gtest.h>

#include "alloc/coloring.hpp"
#include "pipeline/global_alloc.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

namespace lera::pipeline {
namespace {

/// producer computes "mid" (live-out); consumer inputs "mid".
ir::TaskGraph two_stage_chain() {
  ir::TaskGraph tg;
  ir::BasicBlock producer("producer");
  {
    const ir::ValueId a = producer.input("a");
    const ir::ValueId b = producer.input("b");
    const ir::ValueId mid = producer.emit(ir::Opcode::kAdd, {a, b}, "mid");
    producer.output(mid);
  }
  ir::BasicBlock consumer("consumer");
  {
    const ir::ValueId mid = consumer.input("mid");
    const ir::ValueId c = consumer.input("c");
    const ir::ValueId out = consumer.emit(ir::Opcode::kMul, {mid, c}, "out");
    consumer.output(out);
  }
  const ir::TaskId p = tg.add_task("producer", std::move(producer));
  tg.add_task("consumer", std::move(consumer), {p});
  return tg;
}

TEST(GlobalAlloc, StitchesNamedValuesAcrossTasks) {
  const ir::TaskGraph tg = two_stage_chain();
  PipelineOptions opts;
  opts.num_registers = 4;
  const GlobalReport report = global_allocate(tg, opts);
  ASSERT_TRUE(report.feasible) << report.message;
  EXPECT_EQ(report.stitched_values, 1);

  // "mid" is one lifetime spanning both tasks.
  bool found = false;
  for (const lifetime::Lifetime& lt : report.problem.lifetimes) {
    if (lt.name == "mid") {
      found = true;
      EXPECT_FALSE(lt.live_out);
      // Written at the producer's step 1, read at the consumer's mul
      // (global step 2): one continuous lifetime, not two plus a
      // provisional end-of-block read.
      EXPECT_EQ(lt.write_time, 1);
      EXPECT_EQ(lt.last_read(), 2);
      EXPECT_EQ(lt.read_times.size(), 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(GlobalAlloc, IntermediateRidesARegisterAcrossTheBoundary) {
  const ir::TaskGraph tg = two_stage_chain();
  PipelineOptions opts;
  opts.num_registers = 4;

  const GlobalReport global = global_allocate(tg, opts);
  ASSERT_TRUE(global.feasible);
  // With 4 registers everything fits: no memory traffic at all, the
  // intermediate included.
  EXPECT_EQ(global.result.stats.mem_accesses(), 0);

  // Per-block allocation cannot express that: "mid" is charged its base
  // memory write+read as a live-out/live-in pair.
  const PipelineReport per_block = run_pipeline(tg, opts);
  ASSERT_TRUE(per_block.all_feasible);
  EXPECT_LT(global.result.static_energy.total(),
            per_block.total_static_energy);
}

TEST(GlobalAlloc, TimelineConcatenatesSchedules) {
  const ir::TaskGraph tg = two_stage_chain();
  PipelineOptions opts;
  const GlobalReport report = global_allocate(tg, opts);
  ASSERT_TRUE(report.feasible);
  EXPECT_EQ(report.total_steps, 3);  // add (1 step) + mul (2 steps).
  EXPECT_EQ(report.problem.num_steps, 3);
}

TEST(GlobalAlloc, UnmatchedInputsStayIndependent) {
  ir::TaskGraph tg;
  ir::BasicBlock a("a");
  a.output(a.emit(ir::Opcode::kAdd, {a.input("x"), a.input("y")}, "u"));
  ir::BasicBlock b("b");
  b.output(b.emit(ir::Opcode::kAdd, {b.input("p"), b.input("q")}, "v"));
  const ir::TaskId ta = tg.add_task("a", std::move(a));
  tg.add_task("b", std::move(b), {ta});

  PipelineOptions opts;
  const GlobalReport report = global_allocate(tg, opts);
  ASSERT_TRUE(report.feasible);
  EXPECT_EQ(report.stitched_values, 0);
  EXPECT_EQ(report.problem.lifetimes.size(), 6u);  // x,y,u,p,q,v.
}

TEST(GlobalAlloc, ChainedKernelsStayValid) {
  ir::TaskGraph tg;
  const ir::TaskId f = tg.add_task("fir", workloads::make_fir(6));
  const ir::TaskId g =
      tg.add_task("biquad", workloads::make_iir_biquad(), {f});
  tg.add_task("detect", workloads::make_rsp(3), {g});

  PipelineOptions opts;
  opts.num_registers = 8;
  const GlobalReport report = global_allocate(tg, opts);
  ASSERT_TRUE(report.feasible) << report.message;
  EXPECT_TRUE(
      alloc::validate_assignment(report.problem, report.result.assignment)
          .empty());
  // Merged timeline is the sum of the individual schedules.
  EXPECT_GT(report.total_steps, 20);
}

TEST(GlobalAlloc, RestrictedAccessAppliesGlobally) {
  const ir::TaskGraph tg = two_stage_chain();
  PipelineOptions opts;
  opts.num_registers = 4;
  opts.split.access.period = 2;
  const GlobalReport report = global_allocate(tg, opts);
  ASSERT_TRUE(report.feasible) << report.message;
  bool any_forced = false;
  for (const auto& seg : report.problem.segments) {
    any_forced |= seg.forced_register;
  }
  EXPECT_TRUE(any_forced);
}

TEST(ColoringBaseline, SimultaneousBeatsColoring) {
  // The energy-blind priority-coloring baseline ([6,7]) never beats the
  // optimal flow under either model.
  for (const ir::BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_elliptic_wave_filter(),
        workloads::make_rsp(4)}) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    alloc::AllocationProblem p = alloc::make_problem_from_block(
        bb, s, 1, params, workloads::random_inputs(bb, 16, 9));
    p.num_registers = std::max(1, p.max_density() / 3);

    const alloc::AllocationResult flow = alloc::allocate(p);
    const alloc::AllocationResult coloring = alloc::coloring_allocate(p);
    ASSERT_TRUE(flow.feasible);
    ASSERT_TRUE(coloring.feasible) << coloring.message;
    EXPECT_TRUE(
        alloc::validate_assignment(p, coloring.assignment).empty());
    EXPECT_LE(flow.activity_energy.total(),
              coloring.activity_energy.total() + 1e-9)
        << bb.name();
    EXPECT_LE(flow.static_energy.total(),
              coloring.static_energy.total() + 1e-9)
        << bb.name();
  }
}

TEST(ColoringBaseline, PriorityVariantsDiffer) {
  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  alloc::AllocationProblem p =
      alloc::make_problem_from_block(bb, s, 4, params);
  alloc::ColoringOptions by_count;
  alloc::ColoringOptions by_density;
  by_density.priority_per_step = true;
  const alloc::AllocationResult a = alloc::coloring_allocate(p, by_count);
  const alloc::AllocationResult b =
      alloc::coloring_allocate(p, by_density);
  ASSERT_TRUE(a.feasible && b.feasible);
  // Both valid; they need not agree, but both must respect R.
  EXPECT_LE(a.registers_used, p.num_registers);
  EXPECT_LE(b.registers_used, p.num_registers);
}

}  // namespace
}  // namespace lera::pipeline
