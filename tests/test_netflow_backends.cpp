#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

// PR 7 backend suite: the upgraded cost-scaling (push-relabel with
// partial augment-relabel + price refinement) and network simplex
// (candidate-list pivoting + incremental tree maintenance) are
// differential-tested against SSP over 200 random seeds, checked for
// cold-vs-shared-workspace bit-identity, and the SolverKind::kAuto
// shape-based selection policy is pinned on canonical shapes and
// exercised end-to-end through solve() and solve_robust().

namespace lera::netflow {
namespace {

/// Same three-size instance mix the CSR differential suite uses, so the
/// backends face the exact instances the SSP reference is known-good on.
workloads::RandomFlowOptions options_for(std::uint64_t seed) {
  workloads::RandomFlowOptions opts;
  switch (seed % 3) {
    case 0:
      break;  // Defaults: 12 nodes / 30 arcs.
    case 1:
      opts.num_nodes = 20;
      opts.num_arcs = 60;
      opts.supply = 6;
      break;
    default:
      opts.num_nodes = 40;
      opts.num_arcs = 120;
      opts.supply = 10;
      break;
  }
  return opts;
}

// Every backend must agree with SSP on feasibility and on the optimal
// objective (equal-cost optima may differ arc-by-arc), and every optimal
// answer must carry a certificate: feasible b-flow, exact cost, no
// negative residual cycle. Zero tolerated mismatches across 200 seeds.
TEST(BackendDifferential, TwoHundredSeedsMatchSspObjective) {
  SolverWorkspace shared;
  int optimal = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Graph g = workloads::random_flow_problem(seed, options_for(seed));
    const FlowSolution ssp =
        solve(g, SolverKind::kSuccessiveShortestPaths, nullptr, &shared);
    const FlowSolution simplex =
        solve(g, SolverKind::kNetworkSimplex, nullptr, &shared);
    const FlowSolution scaling =
        solve(g, SolverKind::kCostScaling, nullptr, &shared);

    ASSERT_EQ(simplex.status, ssp.status) << "seed " << seed;
    ASSERT_EQ(scaling.status, ssp.status) << "seed " << seed;
    if (ssp.status != SolveStatus::kOptimal) continue;
    ++optimal;
    EXPECT_EQ(simplex.cost, ssp.cost) << "seed " << seed;
    EXPECT_EQ(scaling.cost, ssp.cost) << "seed " << seed;
    for (const FlowSolution* sol : {&ssp, &simplex, &scaling}) {
      ASSERT_TRUE(check_feasible(g, sol->arc_flow).ok) << "seed " << seed;
      ASSERT_TRUE(certify_optimal(g, sol->arc_flow)) << "seed " << seed;
      Cost recomputed = 0;
      ASSERT_TRUE(checked_flow_cost(g, sol->arc_flow, recomputed));
      EXPECT_EQ(recomputed, sol->cost) << "seed " << seed;
    }
  }
  // The mix is built to be mostly feasible; an all-infeasible run would
  // mean the sweep tested nothing.
  EXPECT_GT(optimal, 150);
}

// Both upgraded backends are deterministic scratch-arena algorithms: a
// cold solve (fresh allocations) and a shared-workspace solve must pick
// the SAME equal-cost optimum, bit for bit, even after the workspace
// has been dirtied by other backends and other instances.
TEST(BackendDeterminism, ColdAndSharedWorkspaceBitIdentical) {
  for (const SolverKind kind :
       {SolverKind::kNetworkSimplex, SolverKind::kCostScaling}) {
    SolverWorkspace shared;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      const Graph g =
          workloads::random_flow_problem(seed, options_for(seed));
      // Dirty the arena with a different backend first.
      (void)solve(g, SolverKind::kSuccessiveShortestPaths, nullptr, &shared);
      const FlowSolution cold = solve(g, kind);
      const FlowSolution warm = solve(g, kind, nullptr, &shared);
      ASSERT_EQ(cold.status, warm.status)
          << to_string(kind) << " seed " << seed;
      ASSERT_EQ(cold.cost, warm.cost) << to_string(kind) << " seed " << seed;
      ASSERT_EQ(cold.arc_flow, warm.arc_flow)
          << to_string(kind) << " seed " << seed;
    }
    EXPECT_GT(shared.counters.solves, 0);
  }
}

// The selection policy is part of the public contract: pin it on
// canonical shapes so a recalibration shows up as an explicit test edit,
// not a silent behavior change.
TEST(AutoSelection, PolicyPinsOnCanonicalShapes) {
  InstanceShape shape;

  // Small instance (the allocator's own graphs live here): simplex.
  shape.nodes = 64;
  shape.arcs = 200;
  shape.supply_volume = 8;
  EXPECT_EQ(select_solver(shape), SolverKind::kNetworkSimplex);

  // Large + sparse + negative costs + low supply volume: cost scaling.
  shape.nodes = 40000;
  shape.arcs = 160000;
  shape.supply_volume = 100;  // well under nodes/16
  shape.negative_costs = true;
  EXPECT_EQ(select_solver(shape), SolverKind::kCostScaling);

  // Same shape, high supply volume: simplex's pivot stream wins again.
  shape.supply_volume = 40000;
  EXPECT_EQ(select_solver(shape), SolverKind::kNetworkSimplex);

  // Without negative costs SSP has no Bellman-Ford prologue to lose,
  // but simplex still measured fastest: cost scaling needs the
  // negative-cost regime to earn the large-sparse classes.
  shape.supply_volume = 100;
  shape.negative_costs = false;
  EXPECT_EQ(select_solver(shape), SolverKind::kNetworkSimplex);
  shape.negative_costs = true;

  // A matching warm cache overrides everything: stay on SSP machinery.
  shape.warm_cache_match = true;
  EXPECT_EQ(select_solver(shape), SolverKind::kSuccessiveShortestPaths);
  shape.warm_cache_match = false;

  // The selector never returns kAuto, whatever the shape.
  for (std::int64_t arcs : {0, 10, 4096, 4097, 1000000}) {
    shape.arcs = arcs;
    EXPECT_NE(select_solver(shape), SolverKind::kAuto);
  }
}

TEST(AutoSelection, MeasureShapeReadsTheInstance) {
  Graph g;
  g.add_nodes(4);
  g.add_arc(0, 1, 5, -3);
  g.add_arc(1, 2, 5, 2);
  g.add_arc(2, 3, 5, 2);
  g.set_supply(0, 4);
  g.set_supply(3, -4);
  const InstanceShape shape = measure_shape(g);
  EXPECT_EQ(shape.nodes, 4);
  EXPECT_EQ(shape.arcs, 3);
  EXPECT_DOUBLE_EQ(shape.arcs_per_node, 0.75);
  EXPECT_EQ(shape.supply_volume, 4);
  EXPECT_EQ(shape.supply_nodes, 2);
  EXPECT_TRUE(shape.negative_costs);
  EXPECT_FALSE(shape.warm_cache_match);  // Callers opt in.
  EXPECT_NE(shape.summary().find("nodes=4"), std::string::npos);
  EXPECT_NE(shape.summary().find("supply_volume=4"), std::string::npos);
}

/// First seed at/after \p start whose instance is feasible (the random
/// mix is mostly feasible, so this terminates almost immediately).
Graph solvable_instance(std::uint64_t start) {
  for (std::uint64_t seed = start;; ++seed) {
    Graph g = workloads::random_flow_problem(seed, options_for(seed));
    if (solve(g, SolverKind::kSuccessiveShortestPaths).optimal()) return g;
  }
}

// kAuto through the plain solve() entry: resolves to a concrete backend,
// returns the same objective as that backend, and counts the selection.
TEST(AutoSelection, SolveResolvesAutoToConcreteBackend) {
  const Graph g = solvable_instance(11);
  SolverWorkspace ws;
  const FlowSolution direct = solve(g, SolverKind::kAuto, nullptr, &ws);
  const SolverKind expected = select_solver(measure_shape(g));
  const FlowSolution fixed = solve(g, expected);
  ASSERT_EQ(direct.status, fixed.status);
  EXPECT_EQ(direct.cost, fixed.cost);
  EXPECT_EQ(direct.arc_flow, fixed.arc_flow);
  EXPECT_EQ(ws.counters.auto_selections, 1);
}

// kAuto through solve_robust: the chain entry is expanded before any
// attempt runs, the decision lands in the diagnostics (chosen backend +
// driving features), and the answer is certified as usual.
TEST(AutoSelection, SolveRobustExpandsAutoAndRecordsWhy) {
  const Graph g = solvable_instance(5);
  SolverWorkspace ws;
  SolveOptions options;
  options.chain = {SolverKind::kAuto, SolverKind::kCycleCanceling};
  options.workspace = &ws;
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal) << diag.summary();

  EXPECT_TRUE(diag.auto_selected);
  EXPECT_NE(diag.auto_choice, SolverKind::kAuto);
  EXPECT_EQ(diag.auto_choice, select_solver(measure_shape(g)));
  EXPECT_EQ(diag.solver_used, diag.auto_choice);
  EXPECT_NE(diag.auto_features.find("nodes="), std::string::npos);
  EXPECT_NE(diag.summary().find("[auto: "), std::string::npos);
  EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
  EXPECT_EQ(diag.perf.auto_selections, 1);
}

// A fixed chain without kAuto must not report or count any selection —
// the feature is strictly opt-in and defaults are unchanged.
TEST(AutoSelection, FixedChainsNeverAutoSelect) {
  const Graph g = solvable_instance(5);
  SolverWorkspace ws;
  SolveOptions options;
  options.workspace = &ws;  // Default chain.
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_FALSE(diag.auto_selected);
  EXPECT_TRUE(diag.auto_features.empty());
  EXPECT_EQ(diag.perf.auto_selections, 0);
  EXPECT_EQ(diag.summary().find("[auto:"), std::string::npos);
}

// A matching warm cache flips the shape's warm_cache_match bit, so a
// kAuto chain re-solve sticks to SSP even on shapes that would
// otherwise route elsewhere (here: small => simplex without the cache).
TEST(AutoSelection, WarmCacheBiasesSelectionTowardSsp) {
  const Graph g = solvable_instance(9);
  WarmStartCache cache;
  SolveOptions options;
  options.chain = {SolverKind::kAuto};
  options.warm_cache = &cache;

  SolveDiagnostics first;
  const FlowSolution cold = solve_robust(g, options, &first);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_TRUE(first.auto_selected);
  EXPECT_EQ(first.auto_choice, SolverKind::kNetworkSimplex);
  EXPECT_NE(first.auto_features.find("warm_cache_match=0"),
            std::string::npos);

  // Cache now primed for this topology: the warm resolve path answers,
  // and the selector (consulted while expanding the chain) leans SSP.
  SolveDiagnostics second;
  const FlowSolution warm = solve_robust(g, options, &second);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_TRUE(second.warm_start_attempted);
  ASSERT_TRUE(second.auto_selected);
  EXPECT_EQ(second.auto_choice, SolverKind::kSuccessiveShortestPaths);
  EXPECT_NE(second.auto_features.find("warm_cache_match=1"),
            std::string::npos);
}

// The registry is the single dispatch point: every concrete kind
// resolves to a backend whose kind matches, kAuto resolves to none
// (it is expanded before dispatch), and the legacy wrappers still run.
TEST(BackendRegistry, FindsEveryConcreteKindAndNoAuto) {
  for (const SolverKind kind :
       {SolverKind::kSuccessiveShortestPaths, SolverKind::kCycleCanceling,
        SolverKind::kNetworkSimplex, SolverKind::kCostScaling}) {
    const internal::SolverBackend* backend = internal::find_backend(kind);
    ASSERT_NE(backend, nullptr) << to_string(kind);
    EXPECT_EQ(backend->kind, kind);
    EXPECT_NE(backend->fn, nullptr);
  }
  EXPECT_EQ(internal::find_backend(SolverKind::kAuto), nullptr);
  EXPECT_EQ(internal::solver_backends().size(), 4u);

  const Graph g = workloads::random_flow_problem(3, options_for(3));
  const FlowSolution via_solve = solve(g, SolverKind::kNetworkSimplex);
  const FlowSolution via_legacy = internal::solve_network_simplex(g);
  EXPECT_EQ(via_legacy.status, via_solve.status);
  EXPECT_EQ(via_legacy.arc_flow, via_solve.arc_flow);
}

// The new counters must flow: cost-scaling fills its phase/push/relabel
// counters, simplex still counts pivots, and both survive delta_since.
TEST(BackendCounters, CostScalingAndSimplexCountWork) {
  const Graph g = solvable_instance(2);
  SolverWorkspace ws;
  const PerfCounters base = ws.counters;
  const FlowSolution scaling =
      solve(g, SolverKind::kCostScaling, nullptr, &ws);
  ASSERT_EQ(scaling.status, SolveStatus::kOptimal);
  const PerfCounters after_scaling = ws.counters.delta_since(base);
  EXPECT_GT(after_scaling.cs_phases, 0);
  EXPECT_GT(after_scaling.cs_pushes, 0);
  EXPECT_GT(after_scaling.cs_relabels, 0);

  const PerfCounters mid = ws.counters;
  const FlowSolution simplex =
      solve(g, SolverKind::kNetworkSimplex, nullptr, &ws);
  ASSERT_EQ(simplex.status, SolveStatus::kOptimal);
  const PerfCounters after_simplex = ws.counters.delta_since(mid);
  EXPECT_GT(after_simplex.simplex_pivots, 0);
  EXPECT_EQ(after_simplex.cs_pushes, 0);

  const std::string line = ws.counters.summary();
  EXPECT_NE(line.find("cs_phases="), std::string::npos);
  EXPECT_NE(line.find("price_refinements="), std::string::npos);
  EXPECT_NE(line.find("auto_selections="), std::string::npos);
}

}  // namespace
}  // namespace lera::netflow
