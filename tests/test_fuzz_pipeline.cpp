#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/banking.hpp"
#include "alloc/coloring.hpp"
#include "alloc/hierarchy.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/offset_assignment.hpp"
#include "alloc/two_phase.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

/// Whole-stack randomized battery: random DFGs through scheduling,
/// allocation (every style/model), both baselines and every memory
/// post-pass, checking the full invariant set on each. One test per
/// seed so failures bisect instantly.

namespace lera {
namespace {

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, EndToEndInvariants) {
  const std::uint64_t seed = GetParam();

  workloads::RandomDfgOptions dopts;
  dopts.num_ops = 20 + static_cast<int>(seed % 30);
  dopts.num_inputs = 3 + static_cast<int>(seed % 5);
  const ir::BasicBlock bb = workloads::random_dfg(seed, dopts);
  ASSERT_TRUE(bb.verify().empty());

  const sched::Resources res{1 + static_cast<int>(seed % 3),
                             1 + static_cast<int>(seed % 2)};
  const sched::Schedule s = sched::list_schedule(bb, res);
  ASSERT_TRUE(s.verify(bb).empty());

  energy::EnergyParams params;
  params.register_model = seed % 2 == 0
                              ? energy::RegisterModel::kStatic
                              : energy::RegisterModel::kActivity;
  lifetime::SplitOptions split;
  split.access.period = 1 + static_cast<int>(seed % 3);

  alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, s, 1, params, workloads::random_inputs(bb, 8, seed), split);
  p.num_registers = std::max(1, p.max_density() / 2 +
                                    static_cast<int>(seed % 3) - 1);

  alloc::AllocatorOptions opts;
  opts.style = seed % 3 == 0 ? alloc::GraphStyle::kAllPairs
                             : alloc::GraphStyle::kDensityRegions;
  opts.certify = true;
  const alloc::AllocationResult r = alloc::allocate(p, opts);
  if (!r.feasible) {
    // Only legitimate cause: forced segments exceeding R.
    EXPECT_NE(r.message.find("forced"), std::string::npos) << r.message;
    return;
  }

  // Invariant battery on the optimal result.
  EXPECT_TRUE(alloc::validate_assignment(p, r.assignment).empty());
  const double replayed = r.energy(p);
  EXPECT_NEAR(r.model_energy, replayed, 1e-3 + 1e-9 * std::abs(replayed));

  // Baselines are valid and never beat the optimum.
  const alloc::AllocationResult coloring = alloc::coloring_allocate(p);
  if (coloring.feasible) {
    EXPECT_TRUE(alloc::validate_assignment(p, coloring.assignment).empty());
    EXPECT_LE(r.energy(p), coloring.energy(p) + 1e-9);
  }
  if (split.access.period == 1) {  // Two-phase needs unforced segments.
    const alloc::AllocationResult two = alloc::two_phase_allocate(p);
    if (two.feasible && opts.style == alloc::GraphStyle::kAllPairs) {
      EXPECT_LE(r.energy(p), two.energy(p) + 1e-9);
    }
  }

  // Memory post-passes.
  const alloc::MemoryLayout layout =
      alloc::optimize_memory_layout(p, r.assignment);
  ASSERT_TRUE(layout.feasible);
  EXPECT_EQ(layout.locations, r.stats.mem_locations);
  EXPECT_LE(layout.optimized_activity, layout.naive_activity + 1e-9);

  const alloc::OffsetAssignment offsets =
      alloc::assign_offsets(p, r.assignment, layout.address);
  ASSERT_TRUE(offsets.feasible);
  EXPECT_LE(offsets.reloads, offsets.naive_reloads);

  const alloc::BankAssignment banks =
      alloc::assign_banks(p, r.assignment, layout.address, 2);
  ASSERT_TRUE(banks.feasible);
  EXPECT_LE(banks.conflicts, banks.naive_conflicts);

  alloc::HierarchyParams h;
  h.onchip_capacity = 1 + static_cast<int>(seed % 4);
  const alloc::HierarchicalResult hier = alloc::allocate_hierarchical(p, h);
  ASSERT_TRUE(hier.feasible) << hier.message;
  EXPECT_LE(hier.total_static_energy,
            hier.all_offchip_static_energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(100, 160));

}  // namespace
}  // namespace lera
