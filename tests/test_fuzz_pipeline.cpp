#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/banking.hpp"
#include "alloc/coloring.hpp"
#include "alloc/hierarchy.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/offset_assignment.hpp"
#include "alloc/two_phase.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/random_gen.hpp"

/// Whole-stack randomized battery: random DFGs through scheduling,
/// allocation (every style/model), both baselines and every memory
/// post-pass, checking the full invariant set on each. One test per
/// seed so failures bisect instantly.

namespace lera {
namespace {

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, EndToEndInvariants) {
  const std::uint64_t seed = GetParam();

  workloads::RandomDfgOptions dopts;
  dopts.num_ops = 20 + static_cast<int>(seed % 30);
  dopts.num_inputs = 3 + static_cast<int>(seed % 5);
  const ir::BasicBlock bb = workloads::random_dfg(seed, dopts);
  ASSERT_TRUE(bb.verify().empty());

  const sched::Resources res{1 + static_cast<int>(seed % 3),
                             1 + static_cast<int>(seed % 2)};
  const sched::Schedule s = sched::list_schedule(bb, res);
  ASSERT_TRUE(s.verify(bb).empty());

  energy::EnergyParams params;
  params.register_model = seed % 2 == 0
                              ? energy::RegisterModel::kStatic
                              : energy::RegisterModel::kActivity;
  lifetime::SplitOptions split;
  split.access.period = 1 + static_cast<int>(seed % 3);

  alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, s, 1, params, workloads::random_inputs(bb, 8, seed), split);
  p.num_registers = std::max(1, p.max_density() / 2 +
                                    static_cast<int>(seed % 3) - 1);

  alloc::AllocatorOptions opts;
  opts.style = seed % 3 == 0 ? alloc::GraphStyle::kAllPairs
                             : alloc::GraphStyle::kDensityRegions;
  opts.certify = true;
  const alloc::AllocationResult r = alloc::allocate(p, opts);
  if (!r.feasible) {
    // Only legitimate cause: forced segments exceeding R.
    EXPECT_NE(r.message.find("forced"), std::string::npos) << r.message;
    return;
  }

  // Invariant battery on the optimal result.
  EXPECT_TRUE(alloc::validate_assignment(p, r.assignment).empty());
  const double replayed = r.energy(p);
  EXPECT_NEAR(r.model_energy, replayed, 1e-3 + 1e-9 * std::abs(replayed));

  // Baselines are valid and never beat the optimum.
  const alloc::AllocationResult coloring = alloc::coloring_allocate(p);
  if (coloring.feasible) {
    EXPECT_TRUE(alloc::validate_assignment(p, coloring.assignment).empty());
    EXPECT_LE(r.energy(p), coloring.energy(p) + 1e-9);
  }
  if (split.access.period == 1) {  // Two-phase needs unforced segments.
    const alloc::AllocationResult two = alloc::two_phase_allocate(p);
    if (two.feasible && opts.style == alloc::GraphStyle::kAllPairs) {
      EXPECT_LE(r.energy(p), two.energy(p) + 1e-9);
    }
  }

  // Memory post-passes.
  const alloc::MemoryLayout layout =
      alloc::optimize_memory_layout(p, r.assignment);
  ASSERT_TRUE(layout.feasible);
  EXPECT_EQ(layout.locations, r.stats.mem_locations);
  EXPECT_LE(layout.optimized_activity, layout.naive_activity + 1e-9);

  const alloc::OffsetAssignment offsets =
      alloc::assign_offsets(p, r.assignment, layout.address);
  ASSERT_TRUE(offsets.feasible);
  EXPECT_LE(offsets.reloads, offsets.naive_reloads);

  const alloc::BankAssignment banks =
      alloc::assign_banks(p, r.assignment, layout.address, 2);
  ASSERT_TRUE(banks.feasible);
  EXPECT_LE(banks.conflicts, banks.naive_conflicts);

  alloc::HierarchyParams h;
  h.onchip_capacity = 1 + static_cast<int>(seed % 4);
  const alloc::HierarchicalResult hier = alloc::allocate_hierarchical(p, h);
  ASSERT_TRUE(hier.feasible) << hier.message;
  EXPECT_LE(hier.total_static_energy,
            hier.all_offchip_static_energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(100, 160));

TEST(FuzzPipeline, MalformedProblemCorpusFailsStructured) {
  // Hardening corpus for the .lt problem reader: truncated directives,
  // out-of-range numbers, duplicates. Every entry must produce a
  // structured parse error — no crash, no assert, no bogus problem.
  const char* corpus[] = {
      "steps",                                         // Truncated steps.
      "steps zero",                                    // Non-numeric.
      "steps 0",                                       // Below minimum.
      "steps -3",                                      // Negative.
      "steps 99999999999999999999",                    // Overflow.
      "registers -1\nsteps 4",                         // Negative registers.
      "steps 4\naccess period 0",                      // Bad period.
      "steps 4\naccess period 2 phase 2",              // Phase >= period.
      "steps 4\naccess period 2 phase -1",             // Negative phase.
      "steps 4\naccess period 2 banana",               // Trailing garbage.
      "steps 4\nvar a",                                // Truncated var.
      "steps 4\nvar a width",                          // Width value missing.
      "steps 4\nvar a width 0 write 0 reads 1",        // Width too small.
      "steps 4\nvar a width 65 write 0 reads 1",       // Width too large.
      "steps 4\nvar a write -1 reads 1",               // Negative write.
      "steps 4\nvar a write 0 reads -2",               // Negative read.
      "steps 4\nvar a write 0 reads",                  // No read steps.
      "steps 4\nvar a write 9 reads 10",               // Beyond last step.
      "steps 4\nvar a write 0 reads 9",                // Read after end.
      "steps 4\nvar a write 2 reads 1",                // Read before write.
      "steps 4\nvar a write 0 reads 1\nvar a write 1 reads 2",  // Duplicate.
      "steps 4\nvar a write 0 reads 1\nactivity a ghost 0.5",   // Unknown.
      "steps 4\nvar a write 0 reads 1\nactivity a a 2.0",  // Out of [0,1].
      "steps 4\nvar a write 0 reads 1\ninitial ghost 0.5",  // Unknown var.
      "steps 4\nfrobnicate 1",                         // Unknown directive.
      "var a write 0 reads 1",                         // Missing steps.
      // Adversarial headers: counts far beyond what the input's bytes
      // could describe must be refused before any step-proportional
      // work, not allocated/walked to death.
      "steps 2000000000",                              // Hostile step count.
      "steps 100000000\nregisters 1\n"
      "var a write 0 reads 1 liveout",                 // Hostile + liveout.
      "steps 50000000\naccess period 2\n"
      "var a write 0 reads 1 liveout",                 // Hostile + splitting.
  };
  const energy::EnergyParams params;
  for (const char* text : corpus) {
    const workloads::ProblemParseResult r =
        workloads::parse_problem(text, params);
    EXPECT_FALSE(r.ok()) << "accepted malformed problem: " << text;
    EXPECT_FALSE(r.error.empty()) << text;
  }
}

}  // namespace
}  // namespace lera
