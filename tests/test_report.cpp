#include <gtest/gtest.h>

#include <sstream>

#include "report/ascii_chart.hpp"
#include "report/dot.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_examples.hpp"
#include "alloc/allocator.hpp"

namespace lera::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.5), "1.50");
  EXPECT_EQ(Table::num(1.234, 1), "1.2");
  EXPECT_EQ(Table::num(7), "7");
}

TEST(Dot, EmitsAllNodesAndArcs) {
  const alloc::AllocationProblem p = workloads::figure3_problem();
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  std::ostringstream os;
  write_dot(os, spec);
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph flow"), std::string::npos);
  EXPECT_NE(out.find("\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"t\""), std::string::npos);
  EXPECT_NE(out.find("w0(a)"), std::string::npos);
  // One edge line per arc.
  std::size_t edges = 0;
  for (std::size_t pos = out.find(" -> "); pos != std::string::npos;
       pos = out.find(" -> ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, static_cast<std::size_t>(spec.graph.num_arcs()));
}

TEST(Dot, HighlightsFlow) {
  const alloc::AllocationProblem p = workloads::figure3_problem();
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  const netflow::FlowSolution sol = netflow::solve_st_flow(
      spec.graph, spec.s, spec.t, p.num_registers);
  ASSERT_TRUE(sol.optimal());
  std::ostringstream os;
  write_dot(os, spec, &sol);
  EXPECT_NE(os.str().find("color=red"), std::string::npos);
}

TEST(AsciiChart, PlainLifetimes) {
  const alloc::AllocationProblem p = workloads::figure3_problem();
  std::ostringstream os;
  draw_lifetimes(os, p);
  const std::string out = os.str();
  EXPECT_NE(out.find("boundary a b c d e f"), std::string::npos);
  EXPECT_NE(out.find("<- peak"), std::string::npos);
  // Figure 3 has max density everywhere from boundary 1 to 6.
  std::size_t peaks = 0;
  for (std::size_t pos = out.find("<- peak"); pos != std::string::npos;
       pos = out.find("<- peak", pos + 1)) {
    ++peaks;
  }
  EXPECT_EQ(peaks, 6u);
}

TEST(AsciiChart, ShowsPlacements) {
  const alloc::AllocationProblem p = workloads::figure3_problem();
  const alloc::AllocationResult r = alloc::allocate(p);
  ASSERT_TRUE(r.feasible);
  std::ostringstream os;
  draw_lifetimes(os, p, &r.assignment);
  const std::string out = os.str();
  EXPECT_NE(out.find('0'), std::string::npos);   // Register 0 used.
  EXPECT_NE(out.find('*'), std::string::npos);   // Memory used.
  EXPECT_NE(out.find("digits = register index"), std::string::npos);
}

TEST(Gantt, ShowsEveryRealOperation) {
  const ir::BasicBlock bb = workloads::make_fft_butterfly();
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  std::ostringstream os;
  draw_schedule(os, bb, s);
  const std::string out = os.str();
  EXPECT_NE(out.find("alu0"), std::string::npos);
  EXPECT_NE(out.find("mul0"), std::string::npos);
  // Every computing op's result appears somewhere in the chart.
  for (const ir::Operation& op : bb.ops()) {
    if (ir::is_source(op.opcode) || op.opcode == ir::Opcode::kOutput) {
      continue;
    }
    EXPECT_NE(out.find(bb.value(op.result).name), std::string::npos)
        << bb.value(op.result).name;
  }
  // One row per control step (right-aligned step numbers).
  EXPECT_NE(out.find("   1 |"), std::string::npos);
  EXPECT_NE(out.find(std::to_string(s.length(bb)) + " |"),
            std::string::npos);
}

TEST(Gantt, MultiCycleOpsSpanRows) {
  ir::BasicBlock bb("t");
  const ir::ValueId a = bb.input("a");
  const ir::ValueId m = bb.emit(ir::Opcode::kMul, {a, a}, "m");
  bb.output(m);
  const sched::Schedule s = sched::asap(bb);
  std::ostringstream os;
  draw_schedule(os, bb, s);
  const std::string out = os.str();
  // The 2-cycle multiply occupies both step rows.
  std::size_t hits = 0;
  for (std::size_t pos = out.find("mul m"); pos != std::string::npos;
       pos = out.find("mul m", pos + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 2u);
}

TEST(AsciiChart, EmptyProblem) {
  alloc::AllocationProblem p;
  std::ostringstream os;
  draw_lifetimes(os, p);
  EXPECT_NE(os.str().find("no lifetimes"), std::string::npos);
}

}  // namespace
}  // namespace lera::report
