#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/two_phase.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_gen.hpp"

namespace lera::alloc {
namespace {

TEST(TwoPhase, Figure3BindsThePaperChains) {
  // Phase 1 must find the chains {a,b,c} and {d,e,f} with total
  // switching 2.4 (the paper's "optimal solution for register
  // allocation previously researched").
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const AllocationProblem p = workloads::figure3_problem(params);
  const AllocationResult r = two_phase_allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;

  // R = 1: the higher-activity chain {a,b,c} stays in the register.
  // Segment order is a,b,c,d,e,f (one segment each).
  EXPECT_TRUE(r.assignment.in_register(0));   // a
  EXPECT_TRUE(r.assignment.in_register(1));   // b
  EXPECT_TRUE(r.assignment.in_register(2));   // c
  EXPECT_FALSE(r.assignment.in_register(3));  // d
  EXPECT_FALSE(r.assignment.in_register(4));  // e
  EXPECT_FALSE(r.assignment.in_register(5));  // f
  EXPECT_EQ(r.stats.mem_accesses(), 6);       // d, e, f: write + read each.
}

TEST(TwoPhase, SimultaneousBeatsTwoPhaseOnFigure3) {
  for (auto model : {energy::RegisterModel::kStatic,
                     energy::RegisterModel::kActivity}) {
    energy::EnergyParams params;
    params.register_model = model;
    const AllocationProblem p = workloads::figure3_problem(params);
    const AllocationResult simultaneous = allocate(p);
    const AllocationResult baseline = two_phase_allocate(p);
    ASSERT_TRUE(simultaneous.feasible) << simultaneous.message;
    ASSERT_TRUE(baseline.feasible) << baseline.message;
    EXPECT_LT(simultaneous.energy(p), baseline.energy(p));
  }
}

TEST(TwoPhase, NeverBeatsSimultaneousOnRandomInstances) {
  // The simultaneous flow is optimal over a superset of the two-phase
  // decisions (under the all-pairs graph), so it can never lose.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 10;
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    const AllocationProblem p = make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 2,
        params, workloads::random_activity(seed + 7, 10));
    AllocatorOptions opts;
    opts.style = GraphStyle::kAllPairs;
    const AllocationResult simultaneous = allocate(p, opts);
    const AllocationResult baseline = two_phase_allocate(p);
    ASSERT_TRUE(simultaneous.feasible);
    ASSERT_TRUE(baseline.feasible) << baseline.message;
    EXPECT_LE(simultaneous.activity_energy.total(),
              baseline.activity_energy.total() + 1e-9)
        << "seed " << seed;
  }
}

TEST(TwoPhase, UsesAllChainsWhenRegistersAbound) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 6;
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      workloads::random_lifetimes(3, lopts), lopts.num_steps, 6, params,
      workloads::random_activity(4, 6));
  const AllocationResult r = two_phase_allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  // Enough registers for every chain: nothing is demoted to memory.
  EXPECT_EQ(r.stats.mem_accesses(), 0);
}

TEST(MemoryLayout, EmptyWhenEverythingInRegisters) {
  energy::EnergyParams params;
  lifetime::Lifetime v;
  v.value = 0;
  v.name = "v";
  v.write_time = 1;
  v.read_times = {3};
  const AllocationProblem p =
      make_problem({v}, 4, 1, params, energy::ActivityMatrix(1));
  Assignment a(1);
  a.assign_register(0, 0);
  const MemoryLayout layout = optimize_memory_layout(p, a);
  EXPECT_TRUE(layout.feasible);
  EXPECT_EQ(layout.locations, 0);
}

TEST(MemoryLayout, PacksSequentialRunsIntoOneAddress) {
  energy::EnergyParams params;
  auto mk = [](const char* name, int w, int r) {
    lifetime::Lifetime lt;
    lt.value = 0;
    lt.name = name;
    lt.write_time = w;
    lt.read_times = {r};
    return lt;
  };
  const AllocationProblem p = make_problem(
      {mk("u", 1, 3), mk("w", 3, 5), mk("z", 5, 7)}, 8, 0, params,
      energy::ActivityMatrix(3, 0.5, 0.5));
  Assignment a(3);  // All memory.
  const MemoryLayout layout = optimize_memory_layout(p, a);
  ASSERT_TRUE(layout.feasible);
  EXPECT_EQ(layout.locations, 1);
  EXPECT_EQ(layout.address[0], 0);
  EXPECT_EQ(layout.address[1], 0);
  EXPECT_EQ(layout.address[2], 0);
}

TEST(MemoryLayout, MinimisesOccupantSwitching) {
  // Four variables, two addresses. Pairings differ in activity; the
  // flow must pick the cheap pairing, the naive left-edge the ordered
  // one.
  energy::EnergyParams params;
  auto mk = [](const char* name, int w, int r) {
    lifetime::Lifetime lt;
    lt.value = 0;
    lt.name = name;
    lt.write_time = w;
    lt.read_times = {r};
    return lt;
  };
  // u,v overlap; then x,y overlap. Chains: u->(x or y), v->(the other).
  energy::ActivityMatrix act(4, 0.5, 0.0);  // Zero initial activity.
  act.set(0, 2, 0.9);  // u -> x dear
  act.set(0, 3, 0.1);  // u -> y cheap
  act.set(1, 2, 0.1);  // v -> x cheap
  act.set(1, 3, 0.9);  // v -> y dear
  const AllocationProblem p = make_problem(
      {mk("u", 1, 3), mk("v", 1, 3), mk("x", 3, 5), mk("y", 3, 5)}, 6, 0,
      params, std::move(act));
  Assignment a(4);
  const MemoryLayout layout = optimize_memory_layout(p, a);
  ASSERT_TRUE(layout.feasible);
  EXPECT_EQ(layout.locations, 2);
  EXPECT_NEAR(layout.optimized_activity, 0.2, 1e-9);
  EXPECT_LE(layout.optimized_activity, layout.naive_activity + 1e-9);
  // u/y and v/x share addresses.
  EXPECT_EQ(layout.address[0], layout.address[3]);
  EXPECT_EQ(layout.address[1], layout.address[2]);
}

TEST(MemoryLayout, OptimizedNeverWorseThanNaive) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 12;
    energy::EnergyParams params;
    const AllocationProblem p = make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 3,
        params, workloads::random_activity(seed, 12));
    const AllocationResult r = allocate(p);
    ASSERT_TRUE(r.feasible);
    const MemoryLayout layout = optimize_memory_layout(p, r.assignment);
    ASSERT_TRUE(layout.feasible);
    EXPECT_LE(layout.optimized_activity, layout.naive_activity + 1e-6)
        << "seed " << seed;
    EXPECT_EQ(layout.locations, r.stats.mem_locations) << "seed " << seed;
    // Every memory segment got an address; register segments none.
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      EXPECT_EQ(layout.address[s] >= 0, !r.assignment.in_register(s));
    }
  }
}

}  // namespace
}  // namespace lera::alloc
