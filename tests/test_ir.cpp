#include <gtest/gtest.h>

#include "ir/basic_block.hpp"
#include "ir/eval.hpp"
#include "ir/task_graph.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

namespace lera::ir {
namespace {

TEST(Opcode, Arity) {
  EXPECT_EQ(arity(Opcode::kInput), 0);
  EXPECT_EQ(arity(Opcode::kConst), 0);
  EXPECT_EQ(arity(Opcode::kNeg), 1);
  EXPECT_EQ(arity(Opcode::kAdd), 2);
  EXPECT_EQ(arity(Opcode::kMac), 3);
  EXPECT_EQ(arity(Opcode::kOutput), 1);
}

TEST(Opcode, LatencyModel) {
  EXPECT_EQ(default_latency(Opcode::kAdd), 1);
  EXPECT_EQ(default_latency(Opcode::kMul), 2);
  EXPECT_EQ(default_latency(Opcode::kDiv), 4);
  EXPECT_EQ(default_latency(Opcode::kInput), 0);
  EXPECT_EQ(default_latency(Opcode::kOutput), 0);
}

TEST(Opcode, SourceClassification) {
  EXPECT_TRUE(is_source(Opcode::kInput));
  EXPECT_TRUE(is_source(Opcode::kConst));
  EXPECT_FALSE(is_source(Opcode::kAdd));
  EXPECT_FALSE(is_source(Opcode::kOutput));
}

TEST(BasicBlock, BuildsSsaForm) {
  BasicBlock bb("t");
  const ValueId x = bb.input("x");
  const ValueId y = bb.input("y");
  const ValueId sum = bb.emit(Opcode::kAdd, {x, y}, "sum");
  bb.output(sum);

  EXPECT_EQ(bb.num_values(), 3u);
  EXPECT_EQ(bb.num_ops(), 4u);  // 2 inputs + add + output
  EXPECT_EQ(bb.value(sum).name, "sum");
  EXPECT_EQ(bb.value(sum).def, 2);
  EXPECT_EQ(bb.value(x).uses.size(), 1u);
  EXPECT_EQ(bb.value(sum).uses.size(), 1u);  // Used by the output op.
  EXPECT_TRUE(bb.verify().empty()) << bb.verify();
}

TEST(BasicBlock, ConstantsCarryLiterals) {
  BasicBlock bb("t");
  const ValueId c = bb.constant(42);
  EXPECT_EQ(bb.value(c).literal, 42);
  EXPECT_EQ(bb.value(c).name, "c42");
}

TEST(BasicBlock, PredecessorsSkipSources) {
  BasicBlock bb("t");
  const ValueId x = bb.input("x");
  const ValueId c = bb.constant(3);
  const ValueId a = bb.emit(Opcode::kAdd, {x, c}, "a");
  const ValueId b = bb.emit(Opcode::kMul, {a, a}, "b");
  (void)b;
  const OpId mul_op = bb.value(b).def;
  EXPECT_EQ(bb.predecessors(mul_op), (std::vector<OpId>{bb.value(a).def}));
  EXPECT_TRUE(bb.predecessors(bb.value(a).def).empty());
}

TEST(Eval, ArithmeticSemantics) {
  BasicBlock bb("t");
  const ValueId x = bb.input("x");
  const ValueId y = bb.input("y");
  const ValueId s = bb.emit(Opcode::kAdd, {x, y}, "s");
  const ValueId d = bb.emit(Opcode::kSub, {x, y}, "d");
  const ValueId m = bb.emit(Opcode::kMul, {s, d}, "m");
  bb.output(m);

  const auto env = evaluate(bb, {7, 3});
  EXPECT_EQ(env[static_cast<std::size_t>(s)], 10);
  EXPECT_EQ(env[static_cast<std::size_t>(d)], 4);
  EXPECT_EQ(env[static_cast<std::size_t>(m)], 40);
}

TEST(Eval, SixteenBitWraparound) {
  BasicBlock bb("t");
  const ValueId x = bb.input("x");
  const ValueId y = bb.input("y");
  const ValueId s = bb.emit(Opcode::kAdd, {x, y}, "s");
  bb.output(s);
  // 0x7fff + 1 wraps to -0x8000 in 16-bit two's complement.
  const auto env = evaluate(bb, {0x7fff, 1});
  EXPECT_EQ(env[static_cast<std::size_t>(s)], -0x8000);
}

TEST(Eval, DivByZeroYieldsZero) {
  BasicBlock bb("t");
  const ValueId x = bb.input("x");
  const ValueId y = bb.input("y");
  const ValueId q = bb.emit(Opcode::kDiv, {x, y}, "q");
  bb.output(q);
  EXPECT_EQ(evaluate(bb, {5, 0})[static_cast<std::size_t>(q)], 0);
}

TEST(Eval, MacAndMinMax) {
  BasicBlock bb("t");
  const ValueId a = bb.input("a");
  const ValueId b = bb.input("b");
  const ValueId c = bb.input("c");
  const ValueId mac = bb.emit(Opcode::kMac, {a, b, c}, "mac");
  const ValueId mn = bb.emit(Opcode::kMin, {mac, a}, "mn");
  const ValueId mx = bb.emit(Opcode::kMax, {mac, a}, "mx");
  bb.output(mn);
  bb.output(mx);
  const auto env = evaluate(bb, {3, 4, 5});
  EXPECT_EQ(env[static_cast<std::size_t>(mac)], 17);
  EXPECT_EQ(env[static_cast<std::size_t>(mn)], 3);
  EXPECT_EQ(env[static_cast<std::size_t>(mx)], 17);
}

TEST(Eval, TraceShapeMatchesSamples) {
  const BasicBlock bb = workloads::make_fir(4);
  const auto inputs = workloads::random_inputs(bb, 10, 7);
  const auto trace = evaluate_trace(bb, inputs);
  EXPECT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace[0].size(), bb.num_values());
}

TEST(Eval, DeterministicForSameInputs) {
  const BasicBlock bb = workloads::make_rsp(3);
  const auto inputs = workloads::random_inputs(bb, 4, 99);
  EXPECT_EQ(evaluate_trace(bb, inputs), evaluate_trace(bb, inputs));
}

TEST(TaskGraph, OrderAndDeps) {
  TaskGraph tg;
  const TaskId t0 = tg.add_task("filter", workloads::make_fir(4));
  const TaskId t1 = tg.add_task("detect", workloads::make_fft_butterfly(),
                                {t0});
  EXPECT_EQ(tg.num_tasks(), 2u);
  EXPECT_EQ(tg.task(t1).deps, (std::vector<TaskId>{t0}));
  EXPECT_EQ(tg.topological_order(), (std::vector<TaskId>{0, 1}));
}

TEST(Kernels, AllVerifyStructurally) {
  for (const BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_iir_biquad(),
        workloads::make_elliptic_wave_filter(),
        workloads::make_fft_butterfly(), workloads::make_dct4(),
        workloads::make_rsp(6)}) {
    EXPECT_TRUE(bb.verify().empty()) << bb.name() << ": " << bb.verify();
  }
}

TEST(Kernels, RandomDfgVerifies) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const BasicBlock bb = workloads::random_dfg(seed);
    EXPECT_TRUE(bb.verify().empty()) << "seed " << seed;
  }
}

TEST(Kernels, FirComputesDotProduct) {
  const BasicBlock bb = workloads::make_fir(3);
  // Coefficients are 1, 4, 7 (3k+1).
  const auto env = evaluate(bb, {2, 3, 5});
  std::int64_t result = 0;
  for (const Value& v : bb.values()) {
    if (v.name == "acc2") result = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(result, 2 * 1 + 3 * 4 + 5 * 7);
}

}  // namespace
}  // namespace lera::ir
