#include <gtest/gtest.h>

#include <sstream>

#include "alloc/allocator.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_gen.hpp"

namespace lera::workloads {
namespace {

constexpr const char* kFigure3Text = R"(
# figure 3 of the paper
steps 7
registers 1
var a write 1 reads 3
var b write 3 reads 5
var c write 5 reads 7
var d write 1 reads 2
var e write 2 reads 3
var f write 3 reads 7
activity a b 0.2
activity a f 0.5
activity e b 0.6
activity e f 0.3
activity b c 0.8
activity d e 0.1
)";

TEST(ProblemIo, ParsesFigure3) {
  const ProblemParseResult r = parse_problem(kFigure3Text);
  ASSERT_TRUE(r.ok()) << r.error;
  const alloc::AllocationProblem& p = *r.problem;
  EXPECT_EQ(p.lifetimes.size(), 6u);
  EXPECT_EQ(p.num_steps, 7);
  EXPECT_EQ(p.num_registers, 1);
  EXPECT_EQ(p.max_density(), 2);
  EXPECT_DOUBLE_EQ(p.activity.hamming(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(p.activity.hamming(3, 4), 0.1);  // d, e
  EXPECT_DOUBLE_EQ(p.activity.hamming(0, 2), 0.5);  // default
}

TEST(ProblemIo, ParsedFigure3MatchesBuiltIn) {
  // The text instance must produce identical allocation results to the
  // programmatic workloads::figure3_problem().
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const ProblemParseResult parsed = parse_problem(kFigure3Text, params);
  ASSERT_TRUE(parsed.ok());
  const alloc::AllocationProblem builtin = figure3_problem(params);

  const alloc::AllocationResult a = alloc::allocate(*parsed.problem);
  const alloc::AllocationResult b = alloc::allocate(builtin);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(a.activity_energy.total(), b.activity_energy.total(), 1e-9);
  EXPECT_EQ(a.stats.mem_accesses(), b.stats.mem_accesses());
}

TEST(ProblemIo, LiveoutAndAccessDirectives) {
  const ProblemParseResult r = parse_problem(R"(
    steps 7
    registers 3
    access period 2 phase 1
    var c write 2 reads liveout
    var e write 4 reads 6
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  const alloc::AllocationProblem& p = *r.problem;
  EXPECT_TRUE(p.lifetimes[0].live_out);
  EXPECT_EQ(p.lifetimes[0].last_read(), 8);
  // Splitting at the odd access times applies (c spans 3,5,7).
  EXPECT_GT(p.segments.size(), 2u);
  bool any_forced = false;
  for (const auto& seg : p.segments) any_forced |= seg.forced_register;
  EXPECT_TRUE(any_forced);  // e = [4,6] starts and ends off-grid.
}

TEST(ProblemIo, WidthAndInitial) {
  const ProblemParseResult r = parse_problem(R"(
    steps 5
    registers 1
    var w width 24 write 1 reads 4
    initial w 0.125
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.problem->lifetimes[0].width, 24);
  EXPECT_DOUBLE_EQ(r.problem->activity.initial(0), 0.125);
}

TEST(ProblemIo, Errors) {
  EXPECT_FALSE(parse_problem("registers 1").ok());         // No steps.
  EXPECT_FALSE(parse_problem("steps 5\nbogus 1").ok());    // Directive.
  EXPECT_FALSE(parse_problem("steps 5\nvar a write 3 reads 2").ok());
  EXPECT_FALSE(
      parse_problem("steps 5\nvar a write 1 reads 3\n"
                    "activity a ghost 0.5").ok());
  EXPECT_FALSE(
      parse_problem("steps 5\nvar a write 1 reads 3\n"
                    "activity a a 7.0").ok());              // H > 1.
  EXPECT_FALSE(parse_problem("steps 5\nvar a write 1 reads 3\n"
                             "var a write 2 reads 4").ok());  // Dup.
  const ProblemParseResult r = parse_problem("steps x");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

TEST(ProblemIo, RoundTrip) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomLifetimeOptions lopts;
    lopts.num_vars = 8;
    energy::EnergyParams params;
    const alloc::AllocationProblem original = alloc::make_problem(
        random_lifetimes(seed, lopts), lopts.num_steps, 3, params,
        random_activity(seed, 8));

    std::ostringstream os;
    write_problem(os, original);
    const ProblemParseResult reparsed = parse_problem(os.str(), params);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error;

    const alloc::AllocationProblem& p = *reparsed.problem;
    ASSERT_EQ(p.lifetimes.size(), original.lifetimes.size());
    for (std::size_t v = 0; v < p.lifetimes.size(); ++v) {
      EXPECT_EQ(p.lifetimes[v].name, original.lifetimes[v].name);
      EXPECT_EQ(p.lifetimes[v].write_time,
                original.lifetimes[v].write_time);
      EXPECT_EQ(p.lifetimes[v].read_times,
                original.lifetimes[v].read_times);
      EXPECT_EQ(p.lifetimes[v].live_out, original.lifetimes[v].live_out);
    }
    // Same optimal energy through the solver.
    const alloc::AllocationResult a = alloc::allocate(original);
    const alloc::AllocationResult b = alloc::allocate(p);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_NEAR(a.model_energy, b.model_energy, 1e-6) << "seed " << seed;
  }
}

TEST(ProblemIo, RoundTripPreservesAccessModel) {
  const ProblemParseResult first = parse_problem(R"(
    steps 8
    registers 2
    access period 2 phase 1
    var u write 2 reads 6
    var v write 1 reads 5
  )");
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_EQ(first.problem->access.period, 2);

  std::ostringstream os;
  write_problem(os, *first.problem);
  const ProblemParseResult second = parse_problem(os.str());
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_EQ(second.problem->access.period, 2);
  EXPECT_EQ(second.problem->access.phase, 1);
  EXPECT_EQ(second.problem->segments.size(),
            first.problem->segments.size());
  for (std::size_t i = 0; i < first.problem->segments.size(); ++i) {
    EXPECT_EQ(second.problem->segments[i].forced_register,
              first.problem->segments[i].forced_register);
  }
}

}  // namespace
}  // namespace lera::workloads
