#include <gtest/gtest.h>

#include <sstream>

#include "alloc/allocator.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_gen.hpp"

namespace lera::workloads {
namespace {

constexpr const char* kFigure3Text = R"(
# figure 3 of the paper
steps 7
registers 1
var a write 1 reads 3
var b write 3 reads 5
var c write 5 reads 7
var d write 1 reads 2
var e write 2 reads 3
var f write 3 reads 7
activity a b 0.2
activity a f 0.5
activity e b 0.6
activity e f 0.3
activity b c 0.8
activity d e 0.1
)";

TEST(ProblemIo, ParsesFigure3) {
  const ProblemParseResult r = parse_problem(kFigure3Text);
  ASSERT_TRUE(r.ok()) << r.error;
  const alloc::AllocationProblem& p = *r.problem;
  EXPECT_EQ(p.lifetimes.size(), 6u);
  EXPECT_EQ(p.num_steps, 7);
  EXPECT_EQ(p.num_registers, 1);
  EXPECT_EQ(p.max_density(), 2);
  EXPECT_DOUBLE_EQ(p.activity.hamming(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(p.activity.hamming(3, 4), 0.1);  // d, e
  EXPECT_DOUBLE_EQ(p.activity.hamming(0, 2), 0.5);  // default
}

TEST(ProblemIo, ParsedFigure3MatchesBuiltIn) {
  // The text instance must produce identical allocation results to the
  // programmatic workloads::figure3_problem().
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const ProblemParseResult parsed = parse_problem(kFigure3Text, params);
  ASSERT_TRUE(parsed.ok());
  const alloc::AllocationProblem builtin = figure3_problem(params);

  const alloc::AllocationResult a = alloc::allocate(*parsed.problem);
  const alloc::AllocationResult b = alloc::allocate(builtin);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(a.activity_energy.total(), b.activity_energy.total(), 1e-9);
  EXPECT_EQ(a.stats.mem_accesses(), b.stats.mem_accesses());
}

TEST(ProblemIo, LiveoutAndAccessDirectives) {
  const ProblemParseResult r = parse_problem(R"(
    steps 7
    registers 3
    access period 2 phase 1
    var c write 2 reads liveout
    var e write 4 reads 6
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  const alloc::AllocationProblem& p = *r.problem;
  EXPECT_TRUE(p.lifetimes[0].live_out);
  EXPECT_EQ(p.lifetimes[0].last_read(), 8);
  // Splitting at the odd access times applies (c spans 3,5,7).
  EXPECT_GT(p.segments.size(), 2u);
  bool any_forced = false;
  for (const auto& seg : p.segments) any_forced |= seg.forced_register;
  EXPECT_TRUE(any_forced);  // e = [4,6] starts and ends off-grid.
}

TEST(ProblemIo, WidthAndInitial) {
  const ProblemParseResult r = parse_problem(R"(
    steps 5
    registers 1
    var w width 24 write 1 reads 4
    initial w 0.125
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.problem->lifetimes[0].width, 24);
  EXPECT_DOUBLE_EQ(r.problem->activity.initial(0), 0.125);
}

TEST(ProblemIo, Errors) {
  EXPECT_FALSE(parse_problem("registers 1").ok());         // No steps.
  EXPECT_FALSE(parse_problem("steps 5\nbogus 1").ok());    // Directive.
  EXPECT_FALSE(parse_problem("steps 5\nvar a write 3 reads 2").ok());
  EXPECT_FALSE(
      parse_problem("steps 5\nvar a write 1 reads 3\n"
                    "activity a ghost 0.5").ok());
  EXPECT_FALSE(
      parse_problem("steps 5\nvar a write 1 reads 3\n"
                    "activity a a 7.0").ok());              // H > 1.
  EXPECT_FALSE(parse_problem("steps 5\nvar a write 1 reads 3\n"
                             "var a write 2 reads 4").ok());  // Dup.
  const ProblemParseResult r = parse_problem("steps x");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

// A hostile header may declare step counts no input of its size could
// plausibly describe; downstream segment splitting walks declared step
// ranges, so these must be rejected at parse time, before any
// step-proportional allocation or work.
TEST(ProblemIo, RejectsImplausiblyLargeDeclaredSteps) {
  const ProblemParseResult hostile = parse_problem(
      "steps 2000000000\nregisters 1\nvar a write 0 reads 1 liveout");
  EXPECT_FALSE(hostile.ok());
  EXPECT_NE(hostile.error.find("implausibly large"), std::string::npos)
      << hostile.error;

  // The worst case pairs a huge range with access-period splitting,
  // which cuts at every allowed step a lifetime spans.
  const ProblemParseResult splitting = parse_problem(
      "steps 1000000000\nregisters 1\naccess period 2\n"
      "var a write 0 reads 1 liveout");
  EXPECT_FALSE(splitting.ok());

  // Legitimate sparse instances stay well inside the bound: a few
  // thousand steps from a small file parses fine.
  const ProblemParseResult sparse = parse_problem(
      "steps 4000\nregisters 1\nvar a write 1 reads 3999");
  EXPECT_TRUE(sparse.ok()) << sparse.error;
}

TEST(ProblemIo, RoundTrip) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomLifetimeOptions lopts;
    lopts.num_vars = 8;
    energy::EnergyParams params;
    const alloc::AllocationProblem original = alloc::make_problem(
        random_lifetimes(seed, lopts), lopts.num_steps, 3, params,
        random_activity(seed, 8));

    std::ostringstream os;
    write_problem(os, original);
    const ProblemParseResult reparsed = parse_problem(os.str(), params);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error;

    const alloc::AllocationProblem& p = *reparsed.problem;
    ASSERT_EQ(p.lifetimes.size(), original.lifetimes.size());
    for (std::size_t v = 0; v < p.lifetimes.size(); ++v) {
      EXPECT_EQ(p.lifetimes[v].name, original.lifetimes[v].name);
      EXPECT_EQ(p.lifetimes[v].write_time,
                original.lifetimes[v].write_time);
      EXPECT_EQ(p.lifetimes[v].read_times,
                original.lifetimes[v].read_times);
      EXPECT_EQ(p.lifetimes[v].live_out, original.lifetimes[v].live_out);
    }
    // Same optimal energy through the solver.
    const alloc::AllocationResult a = alloc::allocate(original);
    const alloc::AllocationResult b = alloc::allocate(p);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_NEAR(a.model_energy, b.model_energy, 1e-6) << "seed " << seed;
  }
}

// write -> parse -> write must be a fixed point at the byte level: the
// fuzzer's reproducer files are only trustworthy if reloading one and
// re-serialising it reproduces the artifact exactly.
TEST(ProblemIo, RoundTripIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    RandomLifetimeOptions lopts;
    lopts.num_vars = 2 + static_cast<int>(seed % 7);
    energy::EnergyParams params;
    const alloc::AllocationProblem original = alloc::make_problem(
        random_lifetimes(seed, lopts), lopts.num_steps,
        1 + static_cast<int>(seed % 4), params,
        random_activity(seed, static_cast<std::size_t>(lopts.num_vars)));

    std::ostringstream first;
    write_problem(first, original);
    const ProblemParseResult reparsed = parse_problem(first.str(), params);
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": " << reparsed.error;

    std::ostringstream second;
    write_problem(second, *reparsed.problem);
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;

    // And the reloaded doubles are the originals, not 6-digit survivors.
    for (std::size_t a = 0; a < original.lifetimes.size(); ++a) {
      EXPECT_EQ(reparsed.problem->activity.initial(a),
                original.activity.initial(a));
      for (std::size_t b = a + 1; b < original.lifetimes.size(); ++b) {
        EXPECT_EQ(reparsed.problem->activity.hamming(a, b),
                  original.activity.hamming(a, b));
      }
    }
  }
}

TEST(ProblemIo, WriteRestoresStreamPrecision) {
  energy::EnergyParams params;
  const alloc::AllocationProblem p = alloc::make_problem(
      random_lifetimes(3), 10, 2, params, random_activity(3, 8));
  std::ostringstream os;
  os.precision(4);
  write_problem(os, p);
  EXPECT_EQ(os.precision(), 4);
}

// Degenerate shapes the shrinker routinely produces must survive the
// trip: no variables at all, a single control step, and liveout-only
// variables with no interior reads.
TEST(ProblemIo, RoundTripDegenerateShapes) {
  energy::EnergyParams params;

  {  // Zero variables.
    const alloc::AllocationProblem empty = alloc::make_problem(
        {}, 3, 2, params, energy::ActivityMatrix(0));
    std::ostringstream os;
    write_problem(os, empty);
    const ProblemParseResult r = parse_problem(os.str(), params);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.problem->lifetimes.size(), 0u);
    EXPECT_EQ(r.problem->num_steps, 3);
    std::ostringstream again;
    write_problem(again, *r.problem);
    EXPECT_EQ(os.str(), again.str());
  }

  {  // Single control step.
    lifetime::Lifetime lt;
    lt.value = 0;
    lt.name = "only";
    lt.write_time = 0;
    lt.read_times = {1};
    const alloc::AllocationProblem tiny = alloc::make_problem(
        {lt}, 1, 1, params, energy::ActivityMatrix(1));
    std::ostringstream os;
    write_problem(os, tiny);
    const ProblemParseResult r = parse_problem(os.str(), params);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.problem->num_steps, 1);
    ASSERT_EQ(r.problem->lifetimes.size(), 1u);
    EXPECT_EQ(r.problem->lifetimes[0].read_times, std::vector<int>{1});
    std::ostringstream again;
    write_problem(again, *r.problem);
    EXPECT_EQ(os.str(), again.str());
  }

  {  // Liveout-only: the sole read is the live-out sentinel at x + 1.
    lifetime::Lifetime lt;
    lt.value = 0;
    lt.name = "exported";
    lt.write_time = 2;
    lt.live_out = true;
    lt.read_times = {6};  // num_steps + 1 sentinel.
    const alloc::AllocationProblem liveout = alloc::make_problem(
        {lt}, 5, 1, params, energy::ActivityMatrix(1));
    std::ostringstream os;
    write_problem(os, liveout);
    const ProblemParseResult r = parse_problem(os.str(), params);
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.problem->lifetimes.size(), 1u);
    EXPECT_TRUE(r.problem->lifetimes[0].live_out);
    EXPECT_EQ(r.problem->lifetimes[0].read_times, std::vector<int>{6});
    std::ostringstream again;
    write_problem(again, *r.problem);
    EXPECT_EQ(os.str(), again.str());
  }
}

TEST(ProblemIo, RoundTripPreservesAccessModel) {
  const ProblemParseResult first = parse_problem(R"(
    steps 8
    registers 2
    access period 2 phase 1
    var u write 2 reads 6
    var v write 1 reads 5
  )");
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_EQ(first.problem->access.period, 2);

  std::ostringstream os;
  write_problem(os, *first.problem);
  const ProblemParseResult second = parse_problem(os.str());
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_EQ(second.problem->access.period, 2);
  EXPECT_EQ(second.problem->access.phase, 1);
  EXPECT_EQ(second.problem->segments.size(),
            first.problem->segments.size());
  for (std::size_t i = 0; i < first.problem->segments.size(); ++i) {
    EXPECT_EQ(second.problem->segments[i].forced_register,
              first.problem->segments[i].forced_register);
  }
}

}  // namespace
}  // namespace lera::workloads
