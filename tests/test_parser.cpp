#include <gtest/gtest.h>

#include "ir/eval.hpp"
#include "ir/parser.hpp"
#include "workloads/kernels.hpp"

namespace lera::ir {
namespace {

TEST(Parser, InfixExpressions) {
  const ParseResult r = parse_block(R"(
    in a, b
    t = a + b
    u = t * a
    out u
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  const auto env = evaluate(*r.block, {3, 4});
  // u = (3+4)*3 = 21; u is the last defined value.
  std::int64_t u = 0;
  for (const Value& v : r.block->values()) {
    if (v.name == "u") u = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(u, 21);
}

TEST(Parser, MnemonicAndConst) {
  const ParseResult r = parse_block(R"(
    in x
    const k = 7
    p = mul x, k
    q = mac x, k, p   # x*k + p
    n = neg q
    out n
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  const auto env = evaluate(*r.block, {2});
  std::int64_t n = 0;
  for (const Value& v : r.block->values()) {
    if (v.name == "n") n = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(n, -(2 * 7 + 14));
}

TEST(Parser, AllInfixOperators) {
  const ParseResult r = parse_block(R"(
    in a, b
    t0 = a + b
    t1 = a - b
    t2 = a * b
    t3 = a / b
    t4 = a << b
    t5 = a >> b
    t6 = a & b
    t7 = a | b
    t8 = a ^ b
    out t8
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.block->num_ops(), 2u + 9u + 1u);
}

TEST(Parser, CommentsAndBlankLines) {
  const ParseResult r = parse_block(R"(
    # a comment-only line

    in a   # trailing comment
    out a
  )");
  ASSERT_TRUE(r.ok()) << r.error;
}

TEST(Parser, NegativeConstants) {
  const ParseResult r = parse_block("const k = -12\nin a\ns = a + k\nout s");
  ASSERT_TRUE(r.ok()) << r.error;
  for (const Value& v : r.block->values()) {
    if (v.name == "k") {
      EXPECT_EQ(v.literal, -12);
    }
  }
}

TEST(Parser, ErrorUnknownValue) {
  const ParseResult r = parse_block("in a\nt = a + missing\nout t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
  EXPECT_NE(r.error.find("missing"), std::string::npos);
}

TEST(Parser, ErrorRedefinition) {
  const ParseResult r = parse_block("in a\na = a + a");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("redefinition"), std::string::npos);
}

TEST(Parser, ErrorWrongArity) {
  const ParseResult r = parse_block("in a\nt = mac a, a\nout t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("expects 3 operands"), std::string::npos);
}

TEST(Parser, ErrorUnknownOpcode) {
  const ParseResult r = parse_block("in a\nt = frobnicate a, a");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown operation"), std::string::npos);
}

TEST(Parser, ErrorBadOutTarget) {
  const ParseResult r = parse_block("out nothing");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, ErrorGarbageLine) {
  const ParseResult r = parse_block("in a\n???");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

TEST(Parser, ParsedBlockSchedulesAndAllocates) {
  // End-to-end: text -> block -> verification.
  const ParseResult r = parse_block(R"(
    in x0, x1, x2
    const c0 = 3
    const c1 = 5
    p0 = x0 * c0
    p1 = x1 * c1
    s0 = p0 + p1
    s1 = s0 + x2
    out s1
  )");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.block->verify().empty());
  EXPECT_EQ(r.block->name(), "bb");
}

TEST(ToText, RoundTripsKernels) {
  for (const BasicBlock& original :
       {workloads::make_fir(6), workloads::make_iir_biquad(),
        workloads::make_dct4(), workloads::make_viterbi_acs()}) {
    const std::string text = to_text(original);
    const ParseResult reparsed = parse_block(text, original.name());
    ASSERT_TRUE(reparsed.ok()) << original.name() << ": " << reparsed.error
                               << "\n" << text;
    EXPECT_EQ(reparsed.block->num_ops(), original.num_ops());
    EXPECT_EQ(reparsed.block->num_values(), original.num_values());
    // Semantics survive the round trip.
    const auto inputs = workloads::random_inputs(original, 4, 5);
    for (const auto& row : inputs) {
      EXPECT_EQ(evaluate(original, row), evaluate(*reparsed.block, row))
          << original.name();
    }
  }
}

TEST(Parser, MalformedInputCorpusNeverCrashes) {
  // Hardening corpus: every entry must come back as a structured error
  // (never a crash, assert, or silently wrong block).
  const char* corpus[] = {
      "t =",                              // Truncated assignment.
      "t = a +",                          // Truncated infix.
      "const k =",                        // Truncated constant.
      "const k = 99999999999999999999",   // Literal overflows int64.
      "const k = banana",                 // Non-numeric literal.
      "in a\nout",                        // Truncated out.
      "in a\nout a b",                    // Extra token after out.
      "in a\nin a",                       // Duplicate input.
      "in a\nt = a + a\nt = a + a",       // SSA redefinition.
      "in a\nt = mac a",                  // Arity too low.
      "in a\nt = neg a, a",               // Arity too high.
      "in a\nt = a ? a",                  // Unknown operator.
      "in a\nt = frobnicate a",           // Unknown mnemonic.
      "in a\nt = a + ghost",              // Unknown operand.
      "out ghost",                        // Output of unknown value.
      "in 5",                             // Number where a name must be.
      "= a + a",                          // Missing destination.
      "\x01\x02\x03",                     // Binary garbage.
  };
  for (const char* text : corpus) {
    const ParseResult r = parse_block(text);
    EXPECT_FALSE(r.ok()) << "accepted malformed input: " << text;
    EXPECT_FALSE(r.error.empty()) << text;
  }
}

TEST(ToText, SanitisesAwkwardNames) {
  BasicBlock bb("t");
  const ValueId x = bb.input("x@0");  // Loop-unroll style name.
  bb.output(bb.emit(Opcode::kNeg, {x}, "1bad"));
  const std::string text = to_text(bb);
  const ParseResult r = parse_block(text);
  ASSERT_TRUE(r.ok()) << r.error << "\n" << text;
  EXPECT_EQ(r.block->num_ops(), bb.num_ops());
}

}  // namespace
}  // namespace lera::ir
