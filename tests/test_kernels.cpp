#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "alloc/allocator.hpp"
#include "energy/activity.hpp"
#include "ir/eval.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

namespace lera::workloads {
namespace {

TEST(Kernels, NewKernelsVerify) {
  for (const ir::BasicBlock& bb :
       {make_fft(8), make_matmul(3), make_conv3x3(), make_lattice(4)}) {
    EXPECT_TRUE(bb.verify().empty()) << bb.name() << ": " << bb.verify();
  }
}

TEST(Kernels, FftSizesScale) {
  EXPECT_LT(make_fft(4).num_ops(), make_fft(8).num_ops());
  EXPECT_LT(make_fft(8).num_ops(), make_fft(16).num_ops());
}

TEST(Kernels, FftDcInputGivesFlatSpectrumBins) {
  // All-ones real input with unit twiddles (wr = 1, wi = 0): bin 0
  // accumulates the sum (8), and with w = 1 everywhere the other
  // "bins" of this untwiddled transform collapse to 0.
  const ir::BasicBlock bb = make_fft(8);
  std::vector<std::int64_t> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(1);  // xr
    inputs.push_back(0);  // xi
  }
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(1);  // wr
    inputs.push_back(0);  // wi
  }
  const auto env = ir::evaluate(bb, inputs);
  // The first output op reads bin 0's real part.
  std::int64_t bin0 = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == ir::Opcode::kOutput) {
      bin0 = env[static_cast<std::size_t>(op.operands[0])];
      break;
    }
  }
  EXPECT_EQ(bin0, 8);
}

TEST(Kernels, MatmulComputesProduct) {
  const ir::BasicBlock bb = make_matmul(2);
  // A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50]. Inputs are
  // emitted interleaved: a0,b0,a1,b1,...
  const auto env = ir::evaluate(bb, {1, 5, 2, 6, 3, 7, 4, 8});
  std::vector<std::int64_t> c;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == ir::Opcode::kOutput) {
      c.push_back(env[static_cast<std::size_t>(op.operands[0])]);
    }
  }
  EXPECT_EQ(c, (std::vector<std::int64_t>{19, 22, 43, 50}));
}

TEST(Kernels, Conv3x3ClampsToByteRange) {
  const ir::BasicBlock bb = make_conv3x3();
  {
    // All-zero pixels -> zero.
    const auto env = ir::evaluate(bb, std::vector<std::int64_t>(9, 0));
    std::int64_t out = -1;
    for (const ir::Operation& op : bb.ops()) {
      if (op.opcode == ir::Opcode::kOutput) {
        out = env[static_cast<std::size_t>(op.operands[0])];
      }
    }
    EXPECT_EQ(out, 0);
  }
  {
    // Large positive pixels saturate at 255 after the >>4 and clamp.
    const auto env = ir::evaluate(bb, std::vector<std::int64_t>(9, 4000));
    std::int64_t out = -1;
    for (const ir::Operation& op : bb.ops()) {
      if (op.opcode == ir::Opcode::kOutput) {
        out = env[static_cast<std::size_t>(op.operands[0])];
      }
    }
    EXPECT_LE(out, 255);
    EXPECT_GE(out, 0);
  }
}

TEST(Kernels, LatticeSectionRecursion) {
  const ir::BasicBlock bb = make_lattice(1);
  // f' = x - k*g ; g' = g - k*x  with x=10, g=4, k=2.
  const auto env = ir::evaluate(bb, {10, 4, 2});
  std::int64_t f1 = 0;
  std::int64_t g1 = 0;
  for (const ir::Value& v : bb.values()) {
    if (v.name == "f1") f1 = env[static_cast<std::size_t>(v.id)];
    if (v.name == "gq1") g1 = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(f1, 10 - 2 * 4);
  EXPECT_EQ(g1, 4 - 2 * 10);
}

TEST(Kernels, WholeSuiteSchedulesAndAllocates) {
  for (const ir::BasicBlock& bb :
       {make_fft(8), make_matmul(3), make_conv3x3(), make_lattice(4)}) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 2});
    ASSERT_TRUE(s.verify(bb).empty()) << bb.name();
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    alloc::AllocationProblem p = alloc::make_problem_from_block(
        bb, s, 1, params, random_inputs(bb, 16, 3));
    p.num_registers = std::max(1, p.max_density() / 2);
    const alloc::AllocationResult r = alloc::allocate(p);
    ASSERT_TRUE(r.feasible) << bb.name() << ": " << r.message;
    EXPECT_TRUE(alloc::validate_assignment(p, r.assignment).empty())
        << bb.name();
  }
}

TEST(Kernels, Fft8IsLargeEnoughToStressTheFlow) {
  const ir::BasicBlock bb = make_fft(8);
  const sched::Schedule s = sched::list_schedule(bb, {4, 4});
  energy::EnergyParams params;
  const alloc::AllocationProblem p =
      alloc::make_problem_from_block(bb, s, 8, params);
  EXPECT_GT(p.lifetimes.size(), 80u);
  EXPECT_GT(p.max_density(), 16);
  const alloc::AllocationResult r = alloc::allocate(p);
  ASSERT_TRUE(r.feasible);
  // With R = 8 and that density, memory is provably at its minimum.
  EXPECT_EQ(r.stats.mem_locations, p.max_density() - 8);
}

TEST(Kernels, LmsUpdateSemantics) {
  const ir::BasicBlock bb = make_lms(2);
  // Inputs interleaved: x0,w0,x1,w1 then d, mu.
  // x = (2, 3), w = (10, 20), d = 100, mu = 256.
  // y = 2*10 + 3*20 = 80; e = 20; step = (256*20)>>8 = 20.
  // w0' = 10 + 20*2 = 50; w1' = 20 + 20*3 = 80.
  const auto env = ir::evaluate(bb, {2, 10, 3, 20, 100, 256});
  std::map<std::string, std::int64_t> named;
  for (const ir::Value& v : bb.values()) {
    named[v.name] = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(named.at("y1"), 80);
  EXPECT_EQ(named.at("e"), 20);
  EXPECT_EQ(named.at("step"), 20);
  EXPECT_EQ(named.at("wn0"), 50);
  EXPECT_EQ(named.at("wn1"), 80);
}

TEST(Kernels, ViterbiAcsPicksSurvivors) {
  const ir::BasicBlock bb = make_viterbi_acs();
  // pm = (5, 9); bm00=1 bm01=7 bm10=2 bm11=0.
  // a0 = 6, a1 = 11 -> new0 = 6; b0 = 12, b1 = 9 -> new1 = 9.
  const auto env = ir::evaluate(bb, {5, 9, 1, 7, 2, 0});
  std::map<std::string, std::int64_t> named;
  for (const ir::Value& v : bb.values()) {
    named[v.name] = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(named.at("new0"), 6);
  EXPECT_EQ(named.at("new1"), 9);
  EXPECT_LT(named.at("d0"), 0);  // a0 won.
  EXPECT_GT(named.at("d1"), 0);  // b1 won.
}

TEST(Kernels, GoertzelRecurrence) {
  const ir::BasicBlock bb = make_goertzel(1);
  // s1=4, s2=1, coeff=512 (2.0 in Q8): s = ((512*4)>>8) - 1 + x.
  const auto env = ir::evaluate(bb, {4, 1, 512, 10});
  std::map<std::string, std::int64_t> named;
  for (const ir::Value& v : bb.values()) {
    named[v.name] = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(named.at("s0"), 8 - 1 + 10);
}

TEST(Kernels, NewDspKernelsAllocate) {
  for (const ir::BasicBlock& bb :
       {make_lms(4), make_viterbi_acs(), make_goertzel(4)}) {
    EXPECT_TRUE(bb.verify().empty()) << bb.name();
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    alloc::AllocationProblem p = alloc::make_problem_from_block(
        bb, s, 1, params, random_inputs(bb, 16, 3));
    p.num_registers = std::max(1, p.max_density() / 2);
    const alloc::AllocationResult r = alloc::allocate(p);
    ASSERT_TRUE(r.feasible) << bb.name() << ": " << r.message;
  }
}

TEST(Stimuli, ShapesAreDistinctAndDeterministic) {
  const ir::BasicBlock bb = make_fir(4);
  for (auto kind : {Stimulus::kUniform, Stimulus::kSine, Stimulus::kAr1,
                    Stimulus::kRamp}) {
    const auto a = correlated_inputs(bb, 32, kind, 7);
    const auto b = correlated_inputs(bb, 32, kind, 7);
    EXPECT_EQ(a, b);  // Deterministic in the seed.
    ASSERT_EQ(a.size(), 32u);
    ASSERT_EQ(a[0].size(), 4u);  // One column per kInput.
  }
}

TEST(Stimuli, CorrelatedSignalsSwitchLessThanUniform) {
  // Mean successive-sample Hamming distance: AR(1) and ramps toggle far
  // fewer bits than uniform noise. (This is why ablation E measures H
  // with correlated stimuli.)
  const ir::BasicBlock bb = make_fir(2);
  auto mean_successive_h = [&](Stimulus kind) {
    const auto rows = correlated_inputs(bb, 256, kind, 3);
    double acc = 0;
    int n = 0;
    for (std::size_t s = 1; s < rows.size(); ++s) {
      for (std::size_t c = 0; c < rows[s].size(); ++c) {
        acc += energy::hamming_fraction(rows[s - 1][c], rows[s][c], 16);
        ++n;
      }
    }
    return acc / n;
  };
  const double uniform = mean_successive_h(Stimulus::kUniform);
  const double ramp = mean_successive_h(Stimulus::kRamp);
  const double ar1 = mean_successive_h(Stimulus::kAr1);
  EXPECT_NEAR(uniform, 0.5, 0.05);
  EXPECT_LT(ramp, uniform);
  EXPECT_LT(ar1, uniform);
}

TEST(Stimuli, SineStaysInSixteenBitRange) {
  const ir::BasicBlock bb = make_fir(3);
  for (const auto& row : correlated_inputs(bb, 64, Stimulus::kSine, 9)) {
    for (std::int64_t v : row) {
      EXPECT_LE(v, 32767);
      EXPECT_GE(v, -32768);
    }
  }
}

}  // namespace
}  // namespace lera::workloads
