#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "netflow/netflow.hpp"

/// Tests of the cooperative-cancellation primitives (CancelToken,
/// Deadline) and of SolveGuard's adaptive wall-clock polling — the
/// foundation the engine's deadline/cancellation supervision stands on.

namespace lera::netflow {
namespace {

Graph diamond(Flow supply = 6) {
  Graph g(4);
  g.add_arc(0, 1, 4, 1);
  g.add_arc(0, 2, 4, 2);
  g.add_arc(1, 3, 4, 1);
  g.add_arc(2, 3, 4, 2);
  g.add_arc(1, 2, 2, 1);
  g.set_supply(0, supply);
  g.set_supply(3, -supply);
  return g;
}

// ---------------------------------------------------------------------
// CancelToken

TEST(CancelToken, DefaultTokenIsInert) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
  t.request_cancel();  // No-op, no crash.
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, MakeRequestCancelIsStickyAndShared) {
  CancelToken t = CancelToken::make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.cancelled());
  CancelToken copy = t;  // Copies share the flag.
  t.request_cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(copy.cancelled());
  t.request_cancel();  // Idempotent.
  EXPECT_TRUE(t.cancelled());
}

TEST(CancelToken, ChildInheritsAncestorCancellation) {
  CancelToken root = CancelToken::make();
  CancelToken mid = root.child();
  CancelToken leaf = mid.child();
  EXPECT_FALSE(leaf.cancelled());
  root.request_cancel();
  EXPECT_TRUE(mid.cancelled());
  EXPECT_TRUE(leaf.cancelled());
}

TEST(CancelToken, ChildCancellationDoesNotPropagateUp) {
  CancelToken root = CancelToken::make();
  CancelToken child = root.child();
  CancelToken sibling = root.child();
  child.request_cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(root.cancelled());
  EXPECT_FALSE(sibling.cancelled());
}

TEST(CancelToken, ChildOfInertTokenIsIndependentlyCancellable) {
  CancelToken child = CancelToken{}.child();
  EXPECT_TRUE(child.valid());
  EXPECT_FALSE(child.cancelled());
  child.request_cancel();
  EXPECT_TRUE(child.cancelled());
}

// ---------------------------------------------------------------------
// Deadline

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(DeadlineTest, AfterZeroOrNegativeIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(0).expired());
  EXPECT_TRUE(Deadline::after(-1).expired());
  EXPECT_LE(Deadline::after(-1).remaining_seconds(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineHasPositiveRemaining) {
  const Deadline d = Deadline::after(60);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 30.0);
  EXPECT_LE(d.remaining_seconds(), 60.0);
}

TEST(DeadlineTest, EarlierPicksTheTighterDeadline) {
  const Deadline none;
  const Deadline soon = Deadline::after(1);
  const Deadline late = Deadline::after(100);
  EXPECT_TRUE(Deadline::earlier(none, none).unlimited());
  EXPECT_FALSE(Deadline::earlier(none, soon).unlimited());
  EXPECT_LE(Deadline::earlier(soon, late).remaining_seconds(), 1.0);
  EXPECT_LE(Deadline::earlier(late, soon).remaining_seconds(), 1.0);
}

// ---------------------------------------------------------------------
// SolveGuard: cancellation + adaptive wall-clock polling

TEST(SolveGuard, TokenStopsTickingAndSetsCancelled) {
  SolveGuard guard;
  guard.cancel = CancelToken::make();
  guard.start();
  EXPECT_TRUE(guard.tick());
  guard.cancel.request_cancel();
  // The adaptive stride may defer the poll a few ticks; it must fire
  // well before the old fixed 256-tick stride would have.
  bool stopped = false;
  for (int i = 0; i < 512 && !stopped; ++i) stopped = !guard.tick();
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(guard.cancelled);
  EXPECT_TRUE(guard.exceeded);
  EXPECT_FALSE(guard.time_exceeded);
  EXPECT_FALSE(guard.tick());  // Stays stopped.
}

TEST(SolveGuard, IterationBudgetStillExactAndUnpolled) {
  SolveGuard guard;
  guard.max_iterations = 5;
  guard.start();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(guard.tick());
  EXPECT_FALSE(guard.tick());
  EXPECT_TRUE(guard.exceeded);
  EXPECT_FALSE(guard.cancelled);
  EXPECT_FALSE(guard.time_exceeded);
  EXPECT_EQ(guard.iterations, 6);
}

TEST(SolveGuard, WallClockGranularityStopsNearTheBudget) {
  // Regression for the fixed every-256-ticks poll: with ~1 ms
  // iterations, a 10 ms budget used to run for ~256 ms before the
  // first clock check. The adaptive stride must stop within a small
  // multiple of the budget even with slow iterations.
  SolveGuard guard;
  guard.max_seconds = 0.010;
  guard.start();
  const auto t0 = std::chrono::steady_clock::now();
  bool stopped = false;
  for (int i = 0; i < 1000 && !stopped; ++i) {
    stopped = !guard.tick();
    if (!stopped) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(guard.time_exceeded);
  EXPECT_TRUE(guard.exceeded);
  // Generous CI margin, still far below the ~256 ms the old fixed
  // stride needed for this iteration cost.
  EXPECT_LT(elapsed_ms, 100.0);
}

TEST(SolveGuard, FastIterationsAmortiseThePolling) {
  // With no time budget and no token there is nothing to poll; a tight
  // tick loop must not be re-reading the clock.
  SolveGuard guard;
  guard.start();
  for (int i = 0; i < 1 << 20; ++i) ASSERT_TRUE(guard.tick());
  EXPECT_EQ(guard.iterations, 1 << 20);
  EXPECT_FALSE(guard.exceeded);
}

// ---------------------------------------------------------------------
// Cancellation through the solve stack

TEST(SolveCancel, PreCancelledTokenNeverReachesASolver) {
  SolveGuard guard;
  guard.cancel = CancelToken::make();
  guard.cancel.request_cancel();
  const FlowSolution sol = solve(diamond(), SolverKind::kNetworkSimplex,
                                 &guard);
  EXPECT_EQ(sol.status, SolveStatus::kCancelled);
  EXPECT_NE(sol.message.find("cancelled"), std::string::npos);
  EXPECT_TRUE(guard.cancelled);
  EXPECT_EQ(guard.iterations, 0);
}

TEST(SolveCancel, CancelledStatusHasAName) {
  EXPECT_EQ(to_string(SolveStatus::kCancelled), "cancelled");
}

TEST(SolveRobustCancel, PreCancelledTokenShortCircuits) {
  SolveOptions options;
  options.cancel = CancelToken::make();
  options.cancel.request_cancel();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(diamond(), options, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kCancelled);
  EXPECT_TRUE(diag.cancelled);
  EXPECT_TRUE(diag.attempts.empty());
  EXPECT_NE(diag.message.find("cancelled"), std::string::npos);
}

TEST(SolveRobustCancel, CancellationIsNotABudgetVerdict) {
  // The same configuration without cancellation solves fine; with a
  // fired token the verdict must be kCancelled, never a masquerading
  // kBudgetExceeded (callers treat the two very differently).
  SolveOptions options;
  options.max_seconds_total = 60;  // Roomy budget: not the cause.
  options.cancel = CancelToken::make();
  options.cancel.request_cancel();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(diamond(), options, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kCancelled);
  EXPECT_FALSE(diag.deadline_hit);
}

TEST(SolveRobustCancel, ExpiredDeadlineSurfacesAsBudgetWithDeadlineHit) {
  SolveOptions options;
  options.deadline = Deadline::after(0);
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(diamond(), options, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kBudgetExceeded);
  EXPECT_TRUE(diag.deadline_hit);
  EXPECT_FALSE(diag.cancelled);
  EXPECT_TRUE(diag.attempts.empty());
}

TEST(SolveRobustCancel, DeadlineCombinesWithMaxSecondsTotal) {
  // A generous max_seconds_total must not mask a tight deadline.
  SolveOptions options;
  options.max_seconds_total = 3600;
  options.deadline = Deadline::after(-1);
  const FlowSolution sol = solve_robust(diamond(), options);
  EXPECT_EQ(sol.status, SolveStatus::kBudgetExceeded);
}

TEST(SolveRobustCancel, UnlimitedDeadlineChangesNothing) {
  // The supervision fields at their defaults are bit-identical to the
  // pre-supervision solve path: same attempts, same summary string.
  SolveDiagnostics plain;
  const FlowSolution a = solve_robust(diamond(), {}, &plain);
  SolveOptions with_fields;
  with_fields.deadline = Deadline();  // Explicit default.
  with_fields.cancel = CancelToken();
  SolveDiagnostics supervised;
  const FlowSolution b = solve_robust(diamond(), with_fields, &supervised);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.arc_flow, b.arc_flow);
  EXPECT_EQ(plain.summary(), supervised.summary());
}

}  // namespace
}  // namespace lera::netflow
