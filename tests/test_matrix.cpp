#include <gtest/gtest.h>

#include <tuple>

#include "alloc/allocator.hpp"
#include "energy/voltage.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

/// Cross-configuration matrix: every solver x graph style x register
/// model x memory-access period must produce a feasible, structurally
/// valid, model-consistent allocation on a representative kernel, and
/// all solvers must agree on the optimal objective for each remaining
/// configuration.

namespace lera::alloc {
namespace {

using Config = std::tuple<netflow::SolverKind, GraphStyle,
                          energy::RegisterModel, int /*access period*/>;

class MatrixTest : public ::testing::TestWithParam<Config> {};

TEST_P(MatrixTest, EllipticWaveFilterEndToEnd) {
  const auto [solver, style, model, period] = GetParam();

  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  params.register_model = model;
  if (period > 1) {
    params.v_mem = energy::voltage_for_slowdown(period);
  }
  lifetime::SplitOptions split;
  split.access.period = period;

  AllocationProblem p = make_problem_from_block(
      bb, s, 1, params, workloads::random_inputs(bb, 16, 5), split);
  p.num_registers = std::max(2, p.max_density() / 2);

  AllocatorOptions opts;
  opts.solver = solver;
  opts.style = style;
  opts.certify = true;
  const AllocationResult r = allocate(p, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(validate_assignment(p, r.assignment).empty())
      << validate_assignment(p, r.assignment);

  const double replayed = r.energy(p);
  EXPECT_NEAR(r.model_energy, replayed, 1e-3 + 1e-9 * std::abs(replayed));

  // Reference objective from the default solver must agree.
  AllocatorOptions ref = opts;
  ref.solver = netflow::SolverKind::kSuccessiveShortestPaths;
  const AllocationResult reference = allocate(p, ref);
  ASSERT_TRUE(reference.feasible);
  EXPECT_NEAR(r.model_energy, reference.model_energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, MatrixTest,
    ::testing::Combine(
        ::testing::Values(netflow::SolverKind::kSuccessiveShortestPaths,
                          netflow::SolverKind::kNetworkSimplex,
                          netflow::SolverKind::kCostScaling),
        ::testing::Values(GraphStyle::kDensityRegions,
                          GraphStyle::kAllPairs),
        ::testing::Values(energy::RegisterModel::kStatic,
                          energy::RegisterModel::kActivity),
        ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case netflow::SolverKind::kSuccessiveShortestPaths:
          name += "Ssp";
          break;
        case netflow::SolverKind::kNetworkSimplex:
          name += "NetSimplex";
          break;
        case netflow::SolverKind::kCostScaling:
          name += "CostScaling";
          break;
        default:
          name += "Other";
          break;
      }
      name += std::get<1>(info.param) == GraphStyle::kDensityRegions
                  ? "Density"
                  : "AllPairs";
      name += std::get<2>(info.param) == energy::RegisterModel::kStatic
                  ? "Static"
                  : "Activity";
      name += "Period" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace lera::alloc
