#include "engine/alloc_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/fingerprint.hpp"
#include "netflow/membudget.hpp"
#include "workloads/random_gen.hpp"

// The certified allocation cache: hit/remap correctness (including
// permuted resubmissions), the certification gate on insert, first-write
// -wins semantics, LRU entry-cap and byte-budget eviction, the sampled
// re-audit, and the default-off contract.

namespace lera::engine {
namespace {

alloc::AllocationProblem random_problem(std::uint64_t seed, int num_vars,
                                        int registers) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = num_vars;
  lopts.num_steps = 12;
  lopts.max_reads = 2;
  std::vector<lifetime::Lifetime> lts =
      workloads::random_lifetimes(seed, lopts);
  energy::ActivityMatrix act(lts.size());
  return alloc::make_problem(std::move(lts), lopts.num_steps, registers,
                             energy::EnergyParams{}, std::move(act));
}

alloc::AllocationResult certified_solve(const alloc::AllocationProblem& p) {
  alloc::AllocatorOptions opts;
  opts.certify = true;
  return alloc::allocate(p, opts);
}

/// The problem with variable declarations shuffled by \p perm (new
/// position -> old index).
alloc::AllocationProblem permuted(const alloc::AllocationProblem& p,
                                  const std::vector<std::size_t>& perm) {
  std::vector<lifetime::Lifetime> lts;
  lts.reserve(perm.size());
  for (const std::size_t o : perm) lts.push_back(p.lifetimes[o]);
  return alloc::make_problem(std::move(lts), p.num_steps,
                             p.num_registers, p.params,
                             energy::ActivityMatrix(perm.size()));
}

TEST(AllocCache, DefaultOffServesNothing) {
  AllocCache cache(AllocCacheOptions{}, netflow::MemoryBudget());
  EXPECT_FALSE(cache.enabled());
  const alloc::AllocationProblem p = random_problem(1, 4, 2);
  const alloc::FingerprintResult fp = alloc::fingerprint_problem(p);
  const alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(r.feasible);
  cache.insert(fp, r);
  EXPECT_FALSE(cache.lookup(p, fp).has_value());
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().insertions, 0);
}

TEST(AllocCache, ExactRepeatHitIsBitIdentical) {
  AllocCacheOptions opts;
  opts.max_entries = 8;
  AllocCache cache(opts, netflow::MemoryBudget());
  const alloc::AllocationProblem p = random_problem(2, 5, 2);
  const alloc::FingerprintResult fp = alloc::fingerprint_problem(p);
  EXPECT_FALSE(cache.lookup(p, fp).has_value());
  EXPECT_EQ(cache.stats().misses, 1);

  const alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(r.feasible);
  cache.insert(fp, r);
  EXPECT_EQ(cache.stats().insertions, 1);

  const std::optional<alloc::AllocationResult> hit = cache.lookup(p, fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().hits, 1);
  ASSERT_EQ(hit->assignment.size(), r.assignment.size());
  for (std::size_t s = 0; s < r.assignment.size(); ++s) {
    EXPECT_EQ(hit->assignment.in_register(s), r.assignment.in_register(s));
    EXPECT_EQ(hit->assignment.location(s), r.assignment.location(s));
  }
  EXPECT_EQ(hit->model_energy, r.model_energy);
}

TEST(AllocCache, PermutedRepeatIsRemappedAndValid) {
  AllocCacheOptions opts;
  opts.max_entries = 8;
  AllocCache cache(opts, netflow::MemoryBudget());
  const alloc::AllocationProblem p = random_problem(3, 6, 2);
  const alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(r.feasible);
  cache.insert(alloc::fingerprint_problem(p), r);

  const std::vector<std::size_t> perm = {4, 2, 0, 5, 1, 3};
  const alloc::AllocationProblem q = permuted(p, perm);
  const alloc::FingerprintResult qfp = alloc::fingerprint_problem(q);
  const std::optional<alloc::AllocationResult> hit = cache.lookup(q, qfp);
  ASSERT_TRUE(hit.has_value());
  // The remapped assignment must be a valid assignment OF Q, with the
  // same optimal objective the cold solve of Q reaches.
  EXPECT_TRUE(alloc::validate_assignment(q, hit->assignment).empty())
      << alloc::validate_assignment(q, hit->assignment);
  const alloc::AllocationResult cold = certified_solve(q);
  EXPECT_DOUBLE_EQ(hit->energy(q), cold.energy(q));
}

TEST(AllocCache, UncertifiedResultsAreRefused) {
  AllocCacheOptions opts;
  opts.max_entries = 8;
  AllocCache cache(opts, netflow::MemoryBudget());
  const alloc::AllocationProblem p = random_problem(4, 4, 2);
  const alloc::FingerprintResult fp = alloc::fingerprint_problem(p);

  alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(AllocCache::cacheable(r));
  alloc::AllocationResult degraded = r;
  degraded.degraded = true;
  EXPECT_FALSE(AllocCache::cacheable(degraded));
  alloc::AllocationResult timed = r;
  timed.timed_out = true;
  EXPECT_FALSE(AllocCache::cacheable(timed));
  alloc::AllocationResult oom = r;
  oom.memory_exceeded = true;
  EXPECT_FALSE(AllocCache::cacheable(oom));
  alloc::AllocationResult uncertified = r;
  uncertified.solve_diagnostics.certification =
      netflow::CertificationVerdict::kNotRun;
  EXPECT_FALSE(AllocCache::cacheable(uncertified));

  cache.insert(fp, degraded);
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_FALSE(cache.lookup(p, fp).has_value());
}

TEST(AllocCache, FirstWriteWins) {
  AllocCacheOptions opts;
  opts.max_entries = 8;
  AllocCache cache(opts, netflow::MemoryBudget());
  const alloc::AllocationProblem p = random_problem(5, 4, 2);
  const alloc::FingerprintResult fp = alloc::fingerprint_problem(p);
  const alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(r.feasible);
  cache.insert(fp, r);
  alloc::AllocationResult tampered = r;
  tampered.model_energy += 100;
  cache.insert(fp, tampered);
  EXPECT_EQ(cache.stats().insertions, 1);
  const std::optional<alloc::AllocationResult> hit = cache.lookup(p, fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->model_energy, r.model_energy);
}

TEST(AllocCache, EntryCapEvictsLeastRecentlyUsed) {
  AllocCacheOptions opts;
  opts.max_entries = 4;  // Single shard below 8.
  AllocCache cache(opts, netflow::MemoryBudget());
  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t s = 0; s < 6; ++s) {
    problems.push_back(random_problem(100 + s, 4, 2));
    const alloc::AllocationResult r = certified_solve(problems.back());
    ASSERT_TRUE(r.feasible) << s;
    cache.insert(alloc::fingerprint_problem(problems.back()), r);
  }
  const AllocCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 4);
  EXPECT_GE(stats.evictions, 2);
  // The newest entries survived.
  EXPECT_TRUE(cache
                  .lookup(problems.back(),
                          alloc::fingerprint_problem(problems.back()))
                  .has_value());
}

TEST(AllocCache, ByteBudgetBoundsUsage) {
  AllocCacheOptions opts;
  opts.max_entries = 64;
  opts.max_bytes = 4096;
  netflow::MemoryBudget budget = netflow::MemoryBudget::make(1 << 20);
  AllocCache cache(opts, budget.child(0));
  for (std::uint64_t s = 0; s < 24; ++s) {
    const alloc::AllocationProblem p = random_problem(200 + s, 8, 2);
    const alloc::AllocationResult r = certified_solve(p);
    ASSERT_TRUE(r.feasible) << s;
    cache.insert(alloc::fingerprint_problem(p), r);
  }
  const AllocCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes_in_use, 4096);
  EXPECT_GT(stats.bytes_in_use, 0);
  // Entry bytes are visible on the budget chain.
  EXPECT_EQ(budget.used(), stats.bytes_in_use);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes_in_use, 0);
  EXPECT_EQ(budget.used(), 0);
}

TEST(AllocCache, SampledReauditRunsAndServesCleanEntries) {
  AllocCacheOptions opts;
  opts.max_entries = 8;
  opts.audit_rate = 1;  // Audit every hit.
  AllocCache cache(opts, netflow::MemoryBudget());
  const alloc::AllocationProblem p = random_problem(7, 5, 2);
  const alloc::FingerprintResult fp = alloc::fingerprint_problem(p);
  const alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(r.feasible);
  cache.insert(fp, r);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cache.lookup(p, fp).has_value()) << i;
  }
  const AllocCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.audit_samples, 3);
  EXPECT_EQ(stats.audit_evictions, 0);
}

TEST(AllocCache, SegmentCountMismatchIsAMissNotAWrongAnswer) {
  AllocCacheOptions opts;
  opts.max_entries = 8;
  AllocCache cache(opts, netflow::MemoryBudget());
  const alloc::AllocationProblem p = random_problem(8, 5, 2);
  const alloc::FingerprintResult fp = alloc::fingerprint_problem(p);
  const alloc::AllocationResult r = certified_solve(p);
  ASSERT_TRUE(r.feasible);
  cache.insert(fp, r);

  // A different problem presented under the stored key (a synthetic
  // collision): the stored segment count no longer matches, so the
  // lookup must refuse to serve rather than remap garbage.
  const alloc::AllocationProblem other = random_problem(9, 3, 2);
  ASSERT_NE(other.segments.size(), p.segments.size());
  alloc::FingerprintResult forged = alloc::fingerprint_problem(other);
  forged.canonical = fp.canonical;
  EXPECT_FALSE(cache.lookup(other, forged).has_value());
}

}  // namespace
}  // namespace lera::engine
