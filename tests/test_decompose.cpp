#include <gtest/gtest.h>

#include "alloc/flow_graph.hpp"
#include "netflow/decompose.hpp"
#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

namespace lera::netflow {
namespace {

/// Recomposing the components must reproduce the arc flows exactly.
void expect_recomposition(const Graph& g, const std::vector<Flow>& flow,
                          const std::vector<FlowComponent>& components) {
  std::vector<Flow> rebuilt(flow.size(), 0);
  for (const FlowComponent& comp : components) {
    EXPECT_GT(comp.amount, 0);
    for (ArcId a : comp.arcs) {
      rebuilt[static_cast<std::size_t>(a)] += comp.amount;
    }
    // Arcs must chain head-to-tail.
    for (std::size_t i = 0; i + 1 < comp.arcs.size(); ++i) {
      EXPECT_EQ(g.arc(comp.arcs[i]).head, g.arc(comp.arcs[i + 1]).tail);
    }
    if (comp.is_cycle) {
      EXPECT_EQ(g.arc(comp.arcs.back()).head, g.arc(comp.arcs.front()).tail);
    }
  }
  EXPECT_EQ(rebuilt, flow);
  EXPECT_LE(components.size(), flow.size());  // At most m components.
}

TEST(Decompose, EmptyFlow) {
  Graph g(3);
  g.add_arc(0, 1, 5, 1);
  EXPECT_TRUE(decompose_flow(g, {0}).empty());
}

TEST(Decompose, SinglePath) {
  Graph g(3);
  g.add_arc(0, 1, 5, 1);
  g.add_arc(1, 2, 5, 1);
  const std::vector<Flow> flow = {3, 3};
  const auto comps = decompose_flow(g, flow);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_FALSE(comps[0].is_cycle);
  EXPECT_EQ(comps[0].amount, 3);
  EXPECT_EQ(comps[0].arcs, (std::vector<ArcId>{0, 1}));
  expect_recomposition(g, flow, comps);
}

TEST(Decompose, PureCycle) {
  Graph g(3);
  g.add_arc(0, 1, 5, 0);
  g.add_arc(1, 2, 5, 0);
  g.add_arc(2, 0, 5, 0);
  const std::vector<Flow> flow = {2, 2, 2};
  const auto comps = decompose_flow(g, flow);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_TRUE(comps[0].is_cycle);
  EXPECT_EQ(comps[0].amount, 2);
  expect_recomposition(g, flow, comps);
}

TEST(Decompose, PathPlusCycle) {
  Graph g(4);
  g.add_arc(0, 1, 5, 0);  // path
  g.add_arc(1, 3, 5, 0);  // path
  g.add_arc(1, 2, 5, 0);  // cycle
  g.add_arc(2, 1, 5, 0);  // cycle
  const std::vector<Flow> flow = {2, 2, 1, 1};
  const auto comps = decompose_flow(g, flow);
  expect_recomposition(g, flow, comps);
  int cycles = 0;
  int paths = 0;
  for (const auto& c : comps) (c.is_cycle ? cycles : paths)++;
  EXPECT_EQ(cycles, 1);
  EXPECT_EQ(paths, 1);
}

TEST(Decompose, UnevenParallelPaths) {
  Graph g(4);
  g.add_arc(0, 1, 9, 0);
  g.add_arc(0, 2, 9, 0);
  g.add_arc(1, 3, 9, 0);
  g.add_arc(2, 3, 9, 0);
  const std::vector<Flow> flow = {5, 2, 5, 2};
  const auto comps = decompose_flow(g, flow);
  expect_recomposition(g, flow, comps);
  EXPECT_EQ(comps.size(), 2u);
}

TEST(Decompose, SolverOutputsOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    workloads::RandomFlowOptions opts;
    opts.min_cost = -20;
    opts.supply = 6;
    opts.lower_bound_prob = 0.2;
    const Graph g = workloads::random_flow_problem(seed, opts);
    const FlowSolution sol = solve(g);
    if (!sol.optimal()) continue;
    expect_recomposition(g, sol.arc_flow, decompose_flow(g, sol.arc_flow));
  }
}

TEST(Decompose, AllocationFlowsAreRegisterChains) {
  // On an allocation graph every path component carries one unit (the
  // capacity-1 arcs) from s to t: exactly the register chains the
  // allocator extracts.
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 10;
  energy::EnergyParams params;
  const alloc::AllocationProblem p = alloc::make_problem(
      workloads::random_lifetimes(5, lopts), lopts.num_steps, 3, params,
      workloads::random_activity(5, 10));
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  const FlowSolution sol =
      solve_st_flow(spec.graph, spec.s, spec.t, p.num_registers);
  ASSERT_TRUE(sol.optimal());
  const auto comps = decompose_flow(spec.graph, sol.arc_flow);
  expect_recomposition(spec.graph, sol.arc_flow, comps);
  Flow total = 0;
  for (const auto& c : comps) {
    EXPECT_FALSE(c.is_cycle);
    EXPECT_EQ(spec.graph.arc(c.arcs.front()).tail, spec.s);
    EXPECT_EQ(spec.graph.arc(c.arcs.back()).head, spec.t);
    total += c.amount;
  }
  EXPECT_EQ(total, p.num_registers);
}

}  // namespace
}  // namespace lera::netflow
