#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "alloc/allocator.hpp"
#include "alloc/two_phase.hpp"
#include "audit/audit.hpp"
#include "audit/fuzz.hpp"
#include "audit/shrink.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/random_gen.hpp"

namespace lera::audit {
namespace {

alloc::AllocationProblem sweep_problem(std::uint64_t seed) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 5 + static_cast<int>(seed % 4);
  lopts.num_steps = 10;
  energy::EnergyParams params;
  params.register_model = seed % 2 == 0 ? energy::RegisterModel::kStatic
                                        : energy::RegisterModel::kActivity;
  const std::size_t n = static_cast<std::size_t>(lopts.num_vars);
  alloc::AllocationProblem p = alloc::make_problem(
      workloads::random_lifetimes(seed, lopts), lopts.num_steps, 2, params,
      workloads::random_activity(seed + 1, n));
  return p;
}

AuditOptions fast_audit() {
  AuditOptions opts;
  opts.check_optimality = false;  // Detection sweep, not optimality.
  return opts;
}

// --- The auditor passes honest allocations ------------------------------

TEST(Audit, CleanOnOptimalAllocations) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const alloc::AllocationProblem p = sweep_problem(seed);
    const alloc::AllocationResult r = alloc::allocate(p);
    ASSERT_TRUE(r.feasible) << "seed " << seed;
    const AuditReport report = audit_result(p, r);
    EXPECT_TRUE(report.audited);
    EXPECT_TRUE(report.clean())
        << "seed " << seed << ": " << report.summary();
  }
}

TEST(Audit, CleanOnTwoPhaseBaseline) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const alloc::AllocationProblem p = sweep_problem(seed);
    const alloc::AllocationResult r = alloc::two_phase_allocate(p);
    if (!r.feasible) continue;
    AuditOptions opts;
    opts.check_optimality = false;  // The baseline never claims it.
    const AuditReport report = audit_result(p, r, opts);
    EXPECT_TRUE(report.clean())
        << "seed " << seed << ": " << report.summary();
  }
}

TEST(Audit, CleanOnPaperFigure3) {
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = workloads::figure3_problem(params);
  const alloc::AllocationResult r = alloc::allocate(p);
  ASSERT_TRUE(r.feasible);
  const AuditReport report = audit_result(p, r);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(Audit, OffLevelReportsNothing) {
  const alloc::AllocationProblem p = sweep_problem(1);
  const alloc::AllocationResult r = alloc::allocate(p);
  AuditOptions opts;
  opts.level = AuditLevel::kOff;
  const AuditReport report = audit_result(p, r, opts);
  EXPECT_FALSE(report.audited);
  EXPECT_TRUE(report.clean());
}

// --- Seeded corruption sweep: zero escapes ------------------------------
//
// Three corruption classes, each applied to an honestly-solved result:
//  * flip a register assignment (into an occupied register, or out of
//    the register file's range) — must surface as a legality finding;
//  * drop a spill (silently promote a memory segment to a register,
//    leaving the claimed stats/energies stale) — must surface as a
//    stats/energy mismatch or a legality finding;
//  * perturb a cost (model_energy, a claimed energy total, or a claimed
//    access count) — must surface as the matching mismatch kind.
// Every corruption across every seed must be caught: zero escapes.

/// Flips a register-resident segment to collide with another variable's
/// register at an overlapping boundary; when no collision target exists,
/// pushes it out of range. Returns false when the assignment has no
/// register-resident segment at all.
bool corrupt_flip_register(const alloc::AllocationProblem& p,
                           alloc::Assignment& a) {
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    if (!a.in_register(s)) continue;
    for (std::size_t t = 0; t < p.segments.size(); ++t) {
      if (t == s || !a.in_register(t)) continue;
      if (p.segments[t].var == p.segments[s].var) continue;
      if (a.location(t) == a.location(s)) continue;
      const bool overlap = p.segments[s].start < p.segments[t].end &&
                           p.segments[t].start < p.segments[s].end;
      if (overlap) {
        a.assign_register(s, a.location(t));
        return true;
      }
    }
  }
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    if (a.in_register(s)) {
      a.assign_register(s, p.num_registers);  // Out of range.
      return true;
    }
  }
  return false;
}

/// Promotes the first memory-resident segment to register 0 without
/// updating any of the result's claimed numbers.
bool corrupt_drop_spill(const alloc::AllocationProblem& p,
                        alloc::Assignment& a) {
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    if (!a.in_register(s)) {
      a.assign_register(s, 0);
      return true;
    }
  }
  (void)p;
  return false;
}

TEST(Audit, CorruptionSweepHasZeroEscapes) {
  int flip_applied = 0;
  int spill_applied = 0;
  int cost_applied = 0;

  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const alloc::AllocationProblem p = sweep_problem(seed);
    const alloc::AllocationResult honest = alloc::allocate(p);
    ASSERT_TRUE(honest.feasible) << "seed " << seed;
    ASSERT_TRUE(audit_result(p, honest, fast_audit()).clean())
        << "seed " << seed << " (honest result must audit clean)";

    {  // Class 1: flip a register assignment.
      alloc::AllocationResult r = honest;
      if (corrupt_flip_register(p, r.assignment)) {
        ++flip_applied;
        const AuditReport report = audit_result(p, r, fast_audit());
        EXPECT_FALSE(report.clean())
            << "seed " << seed << ": register flip escaped the audit";
        EXPECT_TRUE(report.has(FindingKind::kRegisterOverlap) ||
                    report.has(FindingKind::kRegisterRange))
            << "seed " << seed << ": " << report.summary();
      }
    }

    {  // Class 2: drop a spill.
      alloc::AllocationResult r = honest;
      if (corrupt_drop_spill(p, r.assignment)) {
        ++spill_applied;
        const AuditReport report = audit_result(p, r, fast_audit());
        EXPECT_FALSE(report.clean())
            << "seed " << seed << ": dropped spill escaped the audit";
      }
    }

    {  // Class 3a: perturb the flow objective.
      alloc::AllocationResult r = honest;
      r.model_energy += 1.0;
      ++cost_applied;
      const AuditReport report = audit_result(p, r, fast_audit());
      EXPECT_TRUE(report.has(FindingKind::kCostInconsistent))
          << "seed " << seed << ": " << report.summary();
    }
    {  // Class 3b: perturb a claimed energy total.
      alloc::AllocationResult r = honest;
      r.static_energy.memory += 0.5;
      r.activity_energy.register_file += 0.5;
      const AuditReport report = audit_result(p, r, fast_audit());
      EXPECT_TRUE(report.has(FindingKind::kEnergyMismatch))
          << "seed " << seed << ": " << report.summary();
    }
    {  // Class 3c: perturb a claimed access count.
      alloc::AllocationResult r = honest;
      ++r.stats.mem_reads;
      const AuditReport report = audit_result(p, r, fast_audit());
      EXPECT_TRUE(report.has(FindingKind::kStatsMismatch))
          << "seed " << seed << ": " << report.summary();
    }
  }

  // The sweep only proves something if every class actually ran >= 100
  // times over the >= 100 seeds.
  EXPECT_GE(flip_applied, 100);
  EXPECT_GE(spill_applied, 100);
  EXPECT_GE(cost_applied, 100);
}

TEST(Audit, LegalityLevelCatchesStructuralCorruptionOnly) {
  const alloc::AllocationProblem p = sweep_problem(2);
  const alloc::AllocationResult honest = alloc::allocate(p);
  ASSERT_TRUE(honest.feasible);

  AuditOptions legality;
  legality.level = AuditLevel::kLegality;

  // A cost perturbation is invisible at legality level...
  alloc::AllocationResult priced = honest;
  priced.model_energy += 5.0;
  EXPECT_TRUE(audit_result(p, priced, legality).clean());
  // ...but a register flip is not.
  alloc::AllocationResult flipped = honest;
  ASSERT_TRUE(corrupt_flip_register(p, flipped.assignment));
  EXPECT_FALSE(audit_result(p, flipped, legality).clean());
}

TEST(Audit, DetectsForcedSegmentInMemory) {
  // Period-2 access grid forces off-grid segments into registers; move
  // one to memory and the audit must object.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 5;
    lopts.num_steps = 9;
    energy::EnergyParams params;
    lifetime::SplitOptions split;
    split.access.period = 2;
    const alloc::AllocationProblem p = alloc::make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 3,
        params, workloads::random_activity(seed, 5), split);
    const alloc::AllocationResult r = alloc::allocate(p);
    if (!r.feasible) continue;

    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (!p.segments[s].forced_register) continue;
      alloc::AllocationResult bad = r;
      bad.assignment.assign_memory(s);
      const AuditReport report = audit_result(p, bad, fast_audit());
      EXPECT_TRUE(report.has(FindingKind::kForcedInMemory))
          << "seed " << seed << " seg " << s << ": " << report.summary();
      break;
    }
  }
}

TEST(Audit, DetectsFalseInfeasibilityClaim) {
  // Tiny instance the exhaustive search settles instantly.
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 3;
  lopts.num_steps = 6;
  energy::EnergyParams params;  // Static model: exhaustive applies.
  const alloc::AllocationProblem p = alloc::make_problem(
      workloads::random_lifetimes(9, lopts), lopts.num_steps, 2, params,
      workloads::random_activity(9, 3));
  ASSERT_LE(p.segments.size(), 14u);

  alloc::AllocationResult lie;  // Claims infeasible; the instance isn't.
  lie.feasible = false;
  lie.message = "fabricated";
  const AuditReport report = audit_result(p, lie);
  ASSERT_TRUE(report.audited);
  EXPECT_TRUE(report.has(FindingKind::kFalseInfeasible))
      << report.summary();

  // An honest infeasibility claim is not flagged: forcing more register
  // residents than R makes the instance genuinely unsolvable.
  lifetime::SplitOptions split;
  split.access.period = 4;  // Coarse grid: many forced segments.
  const alloc::AllocationProblem hard = alloc::make_problem(
      workloads::random_lifetimes(9, lopts), lopts.num_steps, 0, params,
      workloads::random_activity(9, 3), split);
  const alloc::AllocationResult honest_claim = alloc::allocate(hard);
  if (!honest_claim.feasible) {
    EXPECT_TRUE(audit_result(hard, honest_claim).clean());
  }
}

TEST(Audit, PortBudgetViolationsAreFindings) {
  const alloc::AllocationProblem p = sweep_problem(3);
  const alloc::AllocationResult r = alloc::allocate(p);
  ASSERT_TRUE(r.feasible);
  ASSERT_GT(r.stats.mem_accesses(), 0) << "need memory traffic to test";

  AuditOptions opts = fast_audit();
  opts.ports = alloc::PortLimits{};
  opts.ports->mem_read_ports = 0;
  opts.ports->mem_write_ports = 0;
  const AuditReport report = audit_result(p, r, opts);
  EXPECT_TRUE(report.has(FindingKind::kPortOverload)) << report.summary();
  EXPECT_FALSE(report.legal());
}

// --- Recount vs evaluate.hpp --------------------------------------------

TEST(Audit, RecountMatchesEvaluatorOnRandomAssignments) {
  // Not just optimal assignments: arbitrary legal placements must agree
  // between the two independent derivations.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const alloc::AllocationProblem p = sweep_problem(seed);
    const alloc::AllocationResult honest = alloc::allocate(p);
    ASSERT_TRUE(honest.feasible) << "seed " << seed;
    // Perturb the optimum by demoting every other register segment:
    // extra spilling is always legal here (period 1, nothing forced), so
    // this yields a valid but decidedly non-optimal placement.
    alloc::Assignment a = honest.assignment;
    bool demote = true;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (a.in_register(s)) {
        if (demote) a.assign_memory(s);
        demote = !demote;
      }
    }
    ASSERT_TRUE(alloc::validate_assignment(p, a).empty()) << "seed " << seed;

    const Recount rc = recount_allocation(p, a);
    ASSERT_TRUE(rc.ok);
    const alloc::AccessStats ev = alloc::count_accesses(p, a);
    EXPECT_EQ(rc.stats.mem_reads, ev.mem_reads) << "seed " << seed;
    EXPECT_EQ(rc.stats.mem_writes, ev.mem_writes) << "seed " << seed;
    EXPECT_EQ(rc.stats.reg_reads, ev.reg_reads) << "seed " << seed;
    EXPECT_EQ(rc.stats.reg_writes, ev.reg_writes) << "seed " << seed;
    EXPECT_EQ(rc.stats.mem_locations, ev.mem_locations) << "seed " << seed;
    EXPECT_NEAR(
        rc.static_total(),
        alloc::evaluate_energy(p, a, energy::RegisterModel::kStatic)
            .total(),
        1e-9)
        << "seed " << seed;
    EXPECT_NEAR(
        rc.activity_total(),
        alloc::evaluate_energy(p, a, energy::RegisterModel::kActivity)
            .total(),
        1e-9)
        << "seed " << seed;
  }
}

// --- Shrinker ------------------------------------------------------------

TEST(Shrink, ReducesPlantedFailureToQuarterSize) {
  // A planted failure on a deliberately oversized instance: the flow
  // allocator solves it, we flip the first register-resident segment out
  // of range, and the audit objects. Minimal reproducer: one variable.
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 30;
  lopts.num_steps = 24;
  energy::EnergyParams params;
  const alloc::AllocationProblem big = alloc::make_problem(
      workloads::random_lifetimes(11, lopts), lopts.num_steps, 3, params,
      workloads::random_activity(11, 30));

  const ReproPredicate planted = [](const alloc::AllocationProblem& q) {
    alloc::AllocationResult r = alloc::allocate(q);
    if (!r.feasible) return false;
    for (std::size_t s = 0; s < q.segments.size(); ++s) {
      if (r.assignment.in_register(s)) {
        r.assignment.assign_register(s, q.num_registers);
        break;
      }
    }
    AuditOptions opts;
    opts.check_optimality = false;
    return !audit_result(q, r, opts).clean();
  };

  ASSERT_TRUE(planted(big)) << "the planted failure must reproduce";
  const ShrinkResult shrunk = shrink_problem(big, planted);
  EXPECT_EQ(shrunk.original_size, 30 + 24);
  EXPECT_TRUE(planted(shrunk.problem))
      << "shrinking must preserve the failure";
  EXPECT_LE(shrunk.shrunk_size, shrunk.original_size / 4)
      << "shrunk to " << shrunk.shrunk_size << " (vars="
      << shrunk.problem.lifetimes.size()
      << " steps=" << shrunk.problem.num_steps << ") after "
      << shrunk.reductions << " reductions";
  EXPECT_GT(shrunk.reductions, 0);
}

TEST(Shrink, ReturnsInputWhenFailureDoesNotReproduce) {
  const alloc::AllocationProblem p = sweep_problem(5);
  const ShrinkResult r = shrink_problem(
      p, [](const alloc::AllocationProblem&) { return false; });
  EXPECT_EQ(r.shrunk_size, r.original_size);
  EXPECT_EQ(r.reductions, 0);
}

TEST(Shrink, ShrunkProblemsRoundTripThroughProblemIo) {
  // The minimised instance is what gets committed as a reproducer, so
  // it must survive serialisation.
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 12;
  lopts.num_steps = 14;
  energy::EnergyParams params;
  const alloc::AllocationProblem big = alloc::make_problem(
      workloads::random_lifetimes(7, lopts), lopts.num_steps, 2, params,
      workloads::random_activity(7, 12));
  const ShrinkResult shrunk = shrink_problem(
      big, [](const alloc::AllocationProblem& q) {
        return !q.lifetimes.empty();  // Shrinks to one variable.
      });
  ASSERT_LE(shrunk.problem.lifetimes.size(), 2u);

  std::ostringstream os;
  workloads::write_problem(os, shrunk.problem);
  const workloads::ProblemParseResult back =
      workloads::parse_problem(os.str(), params);
  ASSERT_TRUE(back.ok()) << back.error;
  std::ostringstream again;
  workloads::write_problem(again, *back.problem);
  EXPECT_EQ(os.str(), again.str());
}

// --- Differential fuzzing ------------------------------------------------

TEST(DiffFuzz, TwoHundredSeedsProduceZeroFindings) {
  DiffFuzzOptions opts;  // Defaults: seeds [1, 201).
  const DiffFuzzReport report = run_differential_fuzz(opts);
  EXPECT_EQ(report.problems, 200);
  std::string failures;
  for (const DiffFuzzFailure& f : report.failures) {
    failures += "seed " + std::to_string(f.seed) + ":";
    for (const std::string& d : f.diffs) failures += " [" + d + "]";
    failures += "\n";
  }
  EXPECT_TRUE(report.clean()) << failures;
}

TEST(DiffFuzz, SeedsAreDeterministic) {
  const alloc::AllocationProblem a = fuzz_problem(42);
  const alloc::AllocationProblem b = fuzz_problem(42);
  ASSERT_EQ(a.lifetimes.size(), b.lifetimes.size());
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.num_registers, b.num_registers);
  EXPECT_EQ(a.segments.size(), b.segments.size());
  std::ostringstream wa, wb;
  workloads::write_problem(wa, a);
  workloads::write_problem(wb, b);
  EXPECT_EQ(wa.str(), wb.str());
}

TEST(DiffFuzz, CapturesAndShrinksInjectedFailures) {
  // Force findings deterministically: a zero-port budget makes any
  // memory traffic an audit violation, exercising the capture + shrink
  // + serialisation path end to end exactly as a real bug would.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lera_fuzz_artifacts_test")
          .string();
  std::filesystem::remove_all(dir);

  DiffFuzzOptions opts;
  opts.seed_begin = 1;
  opts.seed_end = 6;
  opts.artifact_dir = dir;
  opts.audit.ports = alloc::PortLimits{};
  opts.audit.ports->mem_read_ports = 0;
  opts.audit.ports->mem_write_ports = 0;
  opts.audit.ports->reg_read_ports = 0;
  opts.audit.ports->reg_write_ports = 0;

  const DiffFuzzReport report = run_differential_fuzz(opts);
  ASSERT_FALSE(report.clean())
      << "zero-port budget must produce findings";

  for (const DiffFuzzFailure& f : report.failures) {
    EXPECT_FALSE(f.diffs.empty());
    ASSERT_FALSE(f.artifact_path.empty());
    EXPECT_TRUE(std::filesystem::exists(f.artifact_path));
    ASSERT_FALSE(f.shrunk_path.empty());
    EXPECT_TRUE(std::filesystem::exists(f.shrunk_path));
    EXPECT_LE(f.shrunk_size, f.original_size);

    // The shrunk reproducer reloads and still fails the same checks.
    std::ifstream in(f.shrunk_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const workloads::ProblemParseResult back =
        workloads::parse_problem(buffer.str());
    ASSERT_TRUE(back.ok()) << f.shrunk_path << ": " << back.error;
    EXPECT_FALSE(differential_check(*back.problem, opts.audit).empty())
        << f.shrunk_path << " no longer reproduces";
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lera::audit
