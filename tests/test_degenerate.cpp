#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/banking.hpp"
#include "alloc/coloring.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/offset_assignment.hpp"
#include "alloc/two_phase.hpp"
#include "pipeline/pipeline.hpp"
#include "report/ascii_chart.hpp"
#include "sched/schedule.hpp"

#include <sstream>

/// Degenerate and boundary inputs: empty problems, empty blocks,
/// single-variable blocks, zero registers. Nothing here should crash
/// or produce an invalid result.

namespace lera::alloc {
namespace {

AllocationProblem empty_problem() {
  energy::EnergyParams params;
  return make_problem({}, 0, 2, params, energy::ActivityMatrix(0));
}

TEST(Degenerate, EmptyProblemAllocates) {
  const AllocationProblem p = empty_problem();
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.stats.mem_accesses(), 0);
  EXPECT_EQ(r.stats.reg_accesses(), 0);
  EXPECT_DOUBLE_EQ(r.static_energy.total(), 0);
}

TEST(Degenerate, EmptyProblemBaselinesAndStages) {
  const AllocationProblem p = empty_problem();
  EXPECT_TRUE(two_phase_allocate(p).feasible);
  EXPECT_TRUE(coloring_allocate(p).feasible);
  const Assignment a(0);
  EXPECT_TRUE(optimize_memory_layout(p, a).feasible);
  EXPECT_TRUE(assign_offsets(p, a, {}).feasible);
  EXPECT_TRUE(assign_banks(p, a, {}, 2).feasible);
}

TEST(Degenerate, EmptyBlockThroughThePipeline) {
  ir::BasicBlock bb("empty");
  EXPECT_TRUE(bb.verify().empty());
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  EXPECT_EQ(s.length(bb), 0);
  energy::EnergyParams params;
  const AllocationProblem p = make_problem_from_block(bb, s, 3, params);
  EXPECT_TRUE(p.lifetimes.empty());
  EXPECT_TRUE(allocate(p).feasible);
}

TEST(Degenerate, InputOnlyBlock) {
  // A block that only forwards a value: input -> output.
  ir::BasicBlock bb("forward");
  const ir::ValueId x = bb.input("x");
  bb.output(x);
  const sched::Schedule s = sched::asap(bb);
  energy::EnergyParams params;
  const AllocationProblem p = make_problem_from_block(bb, s, 1, params);
  ASSERT_EQ(p.lifetimes.size(), 1u);
  EXPECT_EQ(p.lifetimes[0].write_time, 0);
  EXPECT_TRUE(p.lifetimes[0].live_out);
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible);
}

TEST(Degenerate, DrawingEmptyProblemsIsSafe) {
  const AllocationProblem p = empty_problem();
  std::ostringstream os;
  report::draw_lifetimes(os, p);
  EXPECT_FALSE(os.str().empty());
}

TEST(Degenerate, ZeroStepProblemWithLiveInOut) {
  // A value that is live-in and live-out of a block with no real ops.
  lifetime::Lifetime lt;
  lt.value = 0;
  lt.name = "pass";
  lt.write_time = 0;
  lt.read_times = {1};  // x + 1 with x = 0.
  lt.live_out = true;
  energy::EnergyParams params;
  const AllocationProblem p =
      make_problem({lt}, 0, 1, params, energy::ActivityMatrix(1));
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(validate_assignment(p, r.assignment).empty());
}

}  // namespace
}  // namespace lera::alloc
