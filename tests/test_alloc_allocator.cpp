#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/exhaustive.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_gen.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, std::vector<int> reads) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = std::move(reads);
  return out;
}

/// The flow objective must equal the replayed energy of the returned
/// assignment (up to cost quantisation): this certifies eqs. (3)-(10)
/// against the independent event-level evaluator.
void expect_model_consistency(const AllocationProblem& p,
                              const AllocationResult& r) {
  ASSERT_TRUE(r.feasible) << r.message;
  const double replayed = r.energy(p);
  EXPECT_NEAR(r.model_energy, replayed, 1e-3 + 1e-9 * std::abs(replayed));
  EXPECT_TRUE(validate_assignment(p, r.assignment).empty())
      << validate_assignment(p, r.assignment);
}

AllocationProblem random_problem(std::uint64_t seed, int num_vars, int R,
                                 energy::RegisterModel model,
                                 int access_period = 1) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = num_vars;
  lopts.num_steps = 10;
  lopts.max_reads = 2;
  energy::EnergyParams params;
  params.register_model = model;
  lifetime::SplitOptions split;
  split.access.period = access_period;
  return make_problem(workloads::random_lifetimes(seed, lopts),
                      lopts.num_steps, R, params,
                      workloads::random_activity(seed + 999,
                          static_cast<std::size_t>(num_vars)),
                      split);
}

TEST(Allocator, ZeroRegistersMeansAllMemory) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {4}), lt("w", 2, {5})}, 6, 0, params,
      energy::ActivityMatrix(2));
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.registers_used, 0);
  EXPECT_EQ(r.stats.mem_accesses(), 4);
  EXPECT_EQ(r.stats.reg_accesses(), 0);
  expect_model_consistency(p, r);
}

TEST(Allocator, SingleVariablePrefersRegister) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem({lt("u", 1, {4})}, 5, 1, params,
                                           energy::ActivityMatrix(1));
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(r.assignment.in_register(0));
  EXPECT_EQ(r.stats.mem_accesses(), 0);
  EXPECT_DOUBLE_EQ(r.static_energy.total(),
                   params.e_reg_write() + params.e_reg_read());
  expect_model_consistency(p, r);
}

TEST(Allocator, RegisterAvoidedWhenDearerThanMemory) {
  energy::EnergyParams params;
  params.reg_read = 50;  // Pathological: register dearer than memory.
  params.reg_write = 50;
  const AllocationProblem p = make_problem({lt("u", 1, {4})}, 5, 1, params,
                                           energy::ActivityMatrix(1));
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_FALSE(r.assignment.in_register(0));  // Bypass carries the flow.
  expect_model_consistency(p, r);
}

TEST(Allocator, InfeasibleWhenForcedSegmentsExceedRegisters) {
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  split.access.period = 4;
  // Two overlapping variables that both begin off the access grid.
  const AllocationProblem p = make_problem(
      {lt("u", 1, {3}), lt("w", 1, {3})}, 8, 1, params,
      energy::ActivityMatrix(2), split);
  const AllocationResult r = allocate(p);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.message.find("forced"), std::string::npos);
}

TEST(Allocator, ForcedSegmentsHonouredWhenFeasible) {
  energy::EnergyParams params;
  params.reg_read = 100;  // Even with dire register costs...
  params.reg_write = 100;
  lifetime::SplitOptions split;
  split.access.period = 4;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {3})}, 8, 1, params, energy::ActivityMatrix(1), split);
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  // ... the forced segment must sit in a register.
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    if (p.segments[s].forced_register) {
      EXPECT_TRUE(r.assignment.in_register(s));
    }
  }
  expect_model_consistency(p, r);
}

TEST(Allocator, MatchesExhaustiveStatic) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const AllocationProblem p = random_problem(
        seed, 5, 1 + static_cast<int>(seed % 3),
        energy::RegisterModel::kStatic);
    AllocatorOptions opts;
    opts.style = GraphStyle::kAllPairs;  // Same space as exhaustive.
    opts.certify = true;
    const AllocationResult r = allocate(p, opts);
    const auto best =
        exhaustive_allocate(p, energy::RegisterModel::kStatic);
    ASSERT_TRUE(r.feasible) << "seed " << seed << ": " << r.message;
    ASSERT_TRUE(best.has_value()) << "seed " << seed;
    EXPECT_NEAR(r.static_energy.total(), best->energy, 1e-6)
        << "seed " << seed;
  }
}

TEST(Allocator, MatchesExhaustiveActivitySingleRegister) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const AllocationProblem p =
        random_problem(seed, 5, 1, energy::RegisterModel::kActivity);
    AllocatorOptions opts;
    opts.style = GraphStyle::kAllPairs;
    const AllocationResult r = allocate(p, opts);
    const auto best =
        exhaustive_allocate(p, energy::RegisterModel::kActivity);
    ASSERT_TRUE(r.feasible) << "seed " << seed << ": " << r.message;
    ASSERT_TRUE(best.has_value()) << "seed " << seed;
    EXPECT_NEAR(r.activity_energy.total(), best->energy, 1e-6)
        << "seed " << seed;
  }
}

TEST(Allocator, MatchesExhaustiveWithRestrictedAccess) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const AllocationProblem p = random_problem(
        seed, 5, 2, energy::RegisterModel::kStatic, /*access_period=*/3);
    if (p.segments.size() > 18) continue;
    AllocatorOptions opts;
    opts.style = GraphStyle::kAllPairs;
    const AllocationResult r = allocate(p, opts);
    const auto best =
        exhaustive_allocate(p, energy::RegisterModel::kStatic);
    ASSERT_EQ(r.feasible, best.has_value()) << "seed " << seed;
    if (r.feasible) {
      EXPECT_NEAR(r.static_energy.total(), best->energy, 1e-6)
          << "seed " << seed;
    }
  }
}

TEST(Allocator, SolverChoiceDoesNotChangeEnergy) {
  for (std::uint64_t seed = 40; seed <= 50; ++seed) {
    const AllocationProblem p =
        random_problem(seed, 10, 3, energy::RegisterModel::kActivity);
    double first = -1;
    for (auto solver : {netflow::SolverKind::kSuccessiveShortestPaths,
                        netflow::SolverKind::kCycleCanceling,
                        netflow::SolverKind::kNetworkSimplex}) {
      AllocatorOptions opts;
      opts.solver = solver;
      const AllocationResult r = allocate(p, opts);
      ASSERT_TRUE(r.feasible) << r.message;
      if (first < 0) {
        first = r.model_energy;
      } else {
        EXPECT_NEAR(r.model_energy, first, 1e-9);
      }
    }
  }
}

TEST(Allocator, ModelConsistencyOnRandomInstances) {
  for (std::uint64_t seed = 60; seed <= 90; ++seed) {
    for (auto model : {energy::RegisterModel::kStatic,
                       energy::RegisterModel::kActivity}) {
      for (auto style :
           {GraphStyle::kDensityRegions, GraphStyle::kAllPairs}) {
        const AllocationProblem p = random_problem(
            seed, 10, 2 + static_cast<int>(seed % 4), model,
            seed % 2 == 0 ? 1 : 2);
        AllocatorOptions opts;
        opts.style = style;
        const AllocationResult r = allocate(p, opts);
        if (!r.feasible) continue;  // Forced overload: fine.
        expect_model_consistency(p, r);
      }
    }
  }
}

TEST(Allocator, DensityGraphPinsMemoryToMinimum) {
  // The §7 guarantee: with the density-region graph (and registers
  // clearly cheaper than memory) exactly R variables cross every peak in
  // registers, so the memory needs exactly maxdensity - R locations.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const AllocationProblem p =
        random_problem(seed, 12, 2, energy::RegisterModel::kStatic);
    const int peak = p.max_density();
    if (peak <= p.num_registers) continue;
    const AllocationResult r = allocate(p);
    ASSERT_TRUE(r.feasible) << r.message;
    EXPECT_EQ(r.stats.mem_locations, peak - p.num_registers)
        << "seed " << seed;
  }
}

TEST(Allocator, AllPairsNeverWorseThanDensityGraph) {
  // The all-pairs graph explores a superset of assignments, so its
  // optimum can only be at least as good.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const AllocationProblem p =
        random_problem(seed, 9, 2, energy::RegisterModel::kActivity);
    AllocatorOptions dens;
    dens.style = GraphStyle::kDensityRegions;
    AllocatorOptions pairs;
    pairs.style = GraphStyle::kAllPairs;
    const AllocationResult rd = allocate(p, dens);
    const AllocationResult rp = allocate(p, pairs);
    ASSERT_TRUE(rd.feasible && rp.feasible);
    EXPECT_LE(rp.model_energy, rd.model_energy + 1e-9) << "seed " << seed;
  }
}

TEST(Allocator, MoreRegistersNeverHurt) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    double prev = std::numeric_limits<double>::infinity();
    for (int R = 0; R <= 5; ++R) {
      AllocationProblem p =
          random_problem(seed, 8, R, energy::RegisterModel::kStatic);
      const AllocationResult r = allocate(p);
      ASSERT_TRUE(r.feasible) << r.message;
      EXPECT_LE(r.static_energy.total(), prev + 1e-9)
          << "seed " << seed << " R " << R;
      prev = r.static_energy.total();
    }
  }
}

TEST(Allocator, KernelBlocksEndToEnd) {
  for (const ir::BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_iir_biquad(),
        workloads::make_elliptic_wave_filter(),
        workloads::make_fft_butterfly(), workloads::make_dct4()}) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    const AllocationProblem p = make_problem_from_block(
        bb, s, 4, params, workloads::random_inputs(bb, 32, 11));
    const AllocationResult r = allocate(p);
    ASSERT_TRUE(r.feasible) << bb.name() << ": " << r.message;
    expect_model_consistency(p, r);
    // With registers available some traffic must leave memory.
    const AllocationProblem p0 = make_problem_from_block(
        bb, s, 0, params, {});
    const AllocationResult r0 = allocate(p0);
    ASSERT_TRUE(r0.feasible);
    EXPECT_LT(r.stats.mem_accesses(), r0.stats.mem_accesses())
        << bb.name();
  }
}

TEST(Allocator, RspDensityMatchesPaperScale) {
  const ir::BasicBlock bb = workloads::make_rsp(6);
  const sched::Schedule s = sched::list_schedule(bb, {2, 2});
  energy::EnergyParams params;
  const AllocationProblem p = make_problem_from_block(bb, s, 16, params);
  // The paper's RSP instance reports a maximum lifetime density of 26;
  // the proxy should be in that neighbourhood.
  EXPECT_GE(p.max_density(), 20);
  EXPECT_LE(p.max_density(), 40);
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  expect_model_consistency(p, r);
}

TEST(AllocateSweep, MatchesIndividualSolves) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    AllocationProblem p =
        random_problem(seed, 10, 1, energy::RegisterModel::kActivity);
    const std::vector<int> counts = {0, 1, 2, 4, 8};
    const std::vector<AllocationResult> sweep = allocate_sweep(p, counts);
    ASSERT_EQ(sweep.size(), counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      p.num_registers = counts[i];
      const AllocationResult single = allocate(p);
      ASSERT_EQ(sweep[i].feasible, single.feasible)
          << "seed " << seed << " R " << counts[i];
      if (single.feasible) {
        EXPECT_NEAR(sweep[i].model_energy, single.model_energy, 1e-9)
            << "seed " << seed << " R " << counts[i];
        EXPECT_TRUE(validate_assignment(p, sweep[i].assignment).empty());
      }
    }
  }
}

TEST(AllocateSweep, EmptyCountsAndInvalidProblems) {
  const AllocationProblem p =
      random_problem(3, 5, 2, energy::RegisterModel::kStatic);
  EXPECT_TRUE(allocate_sweep(p, {}).empty());
}

}  // namespace
}  // namespace lera::alloc
