#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace lera::pipeline {
namespace {

ir::TaskGraph radar_app() {
  ir::TaskGraph tg;
  const ir::TaskId filter = tg.add_task("filter", workloads::make_fir(6));
  const ir::TaskId mix =
      tg.add_task("mix", workloads::make_fft_butterfly(), {filter});
  tg.add_task("detect", workloads::make_rsp(3), {mix});
  return tg;
}

TEST(Pipeline, RunsAllTasks) {
  const ir::TaskGraph tg = radar_app();
  PipelineOptions opts;
  opts.num_registers = 6;
  const PipelineReport report = run_pipeline(tg, opts);
  ASSERT_EQ(report.tasks.size(), 3u);
  EXPECT_TRUE(report.all_feasible);
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.result.feasible) << tr.name << ": " << tr.result.message;
    EXPECT_GT(tr.schedule_length, 0);
    EXPECT_GT(tr.max_density, 0);
  }
  EXPECT_EQ(report.tasks[0].name, "filter");
  EXPECT_EQ(report.tasks[2].name, "detect");
}

TEST(Pipeline, AggregatesMatchPerTaskNumbers) {
  const ir::TaskGraph tg = radar_app();
  PipelineOptions opts;
  opts.num_registers = 4;
  const PipelineReport report = run_pipeline(tg, opts);
  ASSERT_TRUE(report.all_feasible);
  double stat = 0;
  double act = 0;
  int mem = 0;
  int reg = 0;
  int peak_locs = 0;
  for (const TaskReport& tr : report.tasks) {
    stat += tr.result.static_energy.total();
    act += tr.result.activity_energy.total();
    mem += tr.result.stats.mem_accesses();
    reg += tr.result.stats.reg_accesses();
    peak_locs = std::max(peak_locs, tr.result.stats.mem_locations);
  }
  EXPECT_DOUBLE_EQ(report.total_static_energy, stat);
  EXPECT_DOUBLE_EQ(report.total_activity_energy, act);
  EXPECT_EQ(report.total_mem_accesses, mem);
  EXPECT_EQ(report.total_reg_accesses, reg);
  EXPECT_EQ(report.peak_mem_locations, peak_locs);
}

TEST(Pipeline, MemoryRelayoutOptional) {
  const ir::TaskGraph tg = radar_app();
  PipelineOptions with;
  with.num_registers = 2;  // Keep some traffic in memory.
  with.relayout_memory = true;
  PipelineOptions without = with;
  without.relayout_memory = false;

  const PipelineReport a = run_pipeline(tg, with);
  const PipelineReport b = run_pipeline(tg, without);
  ASSERT_TRUE(a.all_feasible && b.all_feasible);
  bool any_layout = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].result.stats.mem_locations > 0) {
      EXPECT_TRUE(a.tasks[i].layout.feasible);
      EXPECT_LE(a.tasks[i].layout.optimized_activity,
                a.tasks[i].layout.naive_activity + 1e-9);
      any_layout = true;
    }
    EXPECT_FALSE(b.tasks[i].layout.feasible &&
                 b.tasks[i].layout.locations > 0);
  }
  EXPECT_TRUE(any_layout);
}

TEST(Pipeline, MoreRegistersReduceMemoryTraffic) {
  const ir::TaskGraph tg = radar_app();
  PipelineOptions small;
  small.num_registers = 1;
  PipelineOptions large;
  large.num_registers = 12;
  const PipelineReport rs = run_pipeline(tg, small);
  const PipelineReport rl = run_pipeline(tg, large);
  ASSERT_TRUE(rs.all_feasible && rl.all_feasible);
  EXPECT_LT(rl.total_mem_accesses, rs.total_mem_accesses);
  EXPECT_LE(rl.total_static_energy, rs.total_static_energy);
}

TEST(Pipeline, RestrictedMemorySupported) {
  const ir::TaskGraph tg = radar_app();
  PipelineOptions opts;
  opts.num_registers = 10;
  opts.split.access.period = 2;
  opts.params.v_mem = 3.0;
  const PipelineReport report = run_pipeline(tg, opts);
  EXPECT_TRUE(report.all_feasible);
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.result.feasible) << tr.name;
  }
}

TEST(Pipeline, DefaultActivityWhenNoTrace) {
  const ir::TaskGraph tg = radar_app();
  PipelineOptions opts;
  opts.trace_samples = 0;
  const PipelineReport report = run_pipeline(tg, opts);
  EXPECT_TRUE(report.all_feasible);
}

}  // namespace
}  // namespace lera::pipeline
