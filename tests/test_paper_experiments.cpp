#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/two_phase.hpp"
#include "energy/voltage.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_examples.hpp"

/// Integration tests pinning the *qualitative* outcomes of the paper's
/// evaluation (who wins, monotonicities, structural guarantees). The
/// bench binaries print the full tables; these tests keep the shapes
/// from regressing.

namespace lera {
namespace {

TEST(Figure3, SimultaneousImprovementInPaperRange) {
  for (auto model : {energy::RegisterModel::kStatic,
                     energy::RegisterModel::kActivity}) {
    energy::EnergyParams params;
    params.register_model = model;
    const alloc::AllocationProblem p = workloads::figure3_problem(params);
    const alloc::AllocationResult ours = alloc::allocate(p);
    const alloc::AllocationResult baseline = alloc::two_phase_allocate(p);
    ASSERT_TRUE(ours.feasible && baseline.feasible);
    const double improvement = baseline.energy(p) / ours.energy(p);
    // Paper: 1.4x (static) / 1.3x (activity). Accept the neighbourhood.
    EXPECT_GT(improvement, 1.2);
    EXPECT_LT(improvement, 1.7);
    // "fewer memory accesses as well".
    EXPECT_LT(ours.stats.mem_accesses(), baseline.stats.mem_accesses());
  }
}

TEST(Figure3, TwoPhaseSwitchingIs2Point4) {
  // The paper's stated optimum of previous research: chains {a,b,c} and
  // {d,e,f} with total switching activity 2.4 (0.5 assumed at time 0).
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  alloc::AllocationProblem p = workloads::figure3_problem(params);
  p.num_registers = 2;  // Keep both chains in registers.
  const alloc::AllocationResult r = alloc::two_phase_allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.stats.mem_accesses(), 0);
  // Total switching = activity energy / full swing.
  EXPECT_NEAR(r.activity_energy.total() / p.params.reg_full_swing, 2.4,
              1e-9);
}

TEST(Figure4, SimultaneousReachesMinimumAccesses) {
  workloads::Figure4Options opts;
  opts.params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = workloads::figure4_problem(opts);

  alloc::AllocatorOptions allpairs;
  allpairs.style = alloc::GraphStyle::kAllPairs;
  const alloc::AllocationResult fig4b = alloc::allocate(p, allpairs);
  const alloc::AllocationResult fig4a = alloc::two_phase_allocate(p);
  ASSERT_TRUE(fig4a.feasible && fig4b.feasible);
  EXPECT_LE(fig4b.stats.mem_accesses(), fig4a.stats.mem_accesses());
  EXPECT_LT(fig4b.energy(p), fig4a.energy(p));
  const double improvement = fig4a.energy(p) / fig4b.energy(p);
  EXPECT_GT(improvement, 1.2);  // Paper: 1.35x.
}

TEST(Figure4, SplitKeepsMinimumLocations) {
  workloads::Figure4Options opts;
  opts.params.register_model = energy::RegisterModel::kActivity;
  opts.split_f = true;
  const alloc::AllocationProblem p = workloads::figure4_problem(opts);
  const alloc::AllocationResult fig4c = alloc::allocate(p);
  ASSERT_TRUE(fig4c.feasible);
  // max density 2, R = 1 -> exactly one memory location.
  EXPECT_EQ(fig4c.stats.mem_locations, 1);
}

TEST(Figure4, DensityGraphHasNoPeakIdlingArcs) {
  workloads::Figure4Options opts;
  const alloc::AllocationProblem p = workloads::figure4_problem(opts);
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
    const auto& info = spec.arc_info[a];
    int from = -1;
    int to = -1;
    if (info.kind == alloc::ArcKind::kTransition) {
      from = p.segments[static_cast<std::size_t>(info.from_seg)].end;
      to = p.segments[static_cast<std::size_t>(info.to_seg)].start;
    } else if (info.kind == alloc::ArcKind::kFromSource) {
      from = 0;
      to = p.segments[static_cast<std::size_t>(info.to_seg)].start;
    } else if (info.kind == alloc::ArcKind::kToSink) {
      from = p.segments[static_cast<std::size_t>(info.from_seg)].end;
      to = p.num_steps + 1;
    } else {
      continue;
    }
    for (int b = from; b < to && b <= p.num_steps; ++b) {
      EXPECT_FALSE(p.is_max_density[static_cast<std::size_t>(b)])
          << "arc " << a << " idles across max-density boundary " << b;
    }
  }
}

class Table1Test : public ::testing::Test {
 protected:
  struct Row {
    double e_total;
    double ae_total;
    double e_mem;
    int mem_accesses;
  };

  Row run(int period) {
    const ir::BasicBlock bb = workloads::make_rsp(6);
    const sched::Schedule sched = sched::list_schedule(bb, {2, 2});
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    params.v_mem = energy::voltage_for_slowdown(period);
    lifetime::SplitOptions split;
    split.access.period = period;
    const alloc::AllocationProblem p = alloc::make_problem_from_block(
        bb, sched, 8, params, workloads::random_inputs(bb, 64, 2026),
        split);
    const alloc::AllocationResult r = alloc::allocate(p);
    EXPECT_TRUE(r.feasible) << r.message;
    return {r.static_energy.total(), r.activity_energy.total(),
            r.static_energy.memory, r.stats.mem_accesses()};
  }
};

TEST_F(Table1Test, EnergyFallsMonotonicallyWithMemoryFrequency) {
  const Row f = run(1);
  const Row f2 = run(2);
  const Row f4 = run(4);
  // Both energy models improve monotonically as the memory slows down
  // and its supply scales towards 2 V.
  EXPECT_GT(f.e_total, f2.e_total);
  EXPECT_GT(f2.e_total, f4.e_total);
  EXPECT_GT(f.ae_total, f2.ae_total);
  EXPECT_GT(f2.ae_total, f4.ae_total);
}

TEST_F(Table1Test, MemoryEnergyRatioTracksPaper) {
  const Row f = run(1);
  const Row f4 = run(4);
  // Paper's E column: 4.9x between the f and f/4 rows. The
  // voltage-scaled component is the memory module.
  const double ratio = f.e_mem / f4.e_mem;
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 7.0);
  // Activity-model total: paper reports 2.8x.
  const double ae_ratio = f.ae_total / f4.ae_total;
  EXPECT_GT(ae_ratio, 2.0);
  EXPECT_LT(ae_ratio, 4.0);
}

TEST(Sweep, KernelImprovementsInPaperBallpark) {
  // §7: "improvement of 1.4 to 2.5 times ... over previously researched
  // techniques". Require every kernel to improve and the suite to land
  // in a sensible band.
  double worst = 1e9;
  double geo = 0;
  int n = 0;
  for (const ir::BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_elliptic_wave_filter(),
        workloads::make_rsp(4)}) {
    const sched::Schedule sched = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    alloc::AllocationProblem p = alloc::make_problem_from_block(
        bb, sched, 1, params, workloads::random_inputs(bb, 48, 7));
    p.num_registers = std::max(1, p.max_density() / 4);
    const alloc::AllocationResult ours = alloc::allocate(p);
    const alloc::AllocationResult baseline = alloc::two_phase_allocate(p);
    ASSERT_TRUE(ours.feasible && baseline.feasible) << bb.name();
    const double improvement =
        baseline.activity_energy.total() / ours.activity_energy.total();
    worst = std::min(worst, improvement);
    geo += std::log(improvement);
    ++n;
  }
  EXPECT_GE(worst, 1.0);
  const double geomean = std::exp(geo / n);
  EXPECT_GT(geomean, 1.15);
  EXPECT_LT(geomean, 3.0);
}

}  // namespace
}  // namespace lera
