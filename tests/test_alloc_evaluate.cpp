#include <gtest/gtest.h>

#include "alloc/evaluate.hpp"
#include "alloc/problem.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, std::vector<int> reads) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = std::move(reads);
  return out;
}

AllocationProblem one_var(std::vector<int> reads, int R = 1,
                          lifetime::SplitOptions split = {}) {
  energy::EnergyParams params;
  return make_problem({lt("v", 1, std::move(reads))}, 8, R, params,
                      energy::ActivityMatrix(1, 0.5, 0.5), split);
}

int count(const std::vector<StorageEvent>& events, EventType type) {
  int n = 0;
  for (const auto& ev : events) n += ev.type == type ? 1 : 0;
  return n;
}

TEST(Evaluate, AllMemorySingleRead) {
  const AllocationProblem p = one_var({5});
  Assignment a(p.segments.size());  // Default: memory.
  const auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);
  EXPECT_EQ(count(events, EventType::kMemRead), 1);
  EXPECT_EQ(count(events, EventType::kRegRead), 0);

  const auto e = evaluate_energy(p, a, energy::RegisterModel::kStatic);
  EXPECT_DOUBLE_EQ(e.memory, p.params.e_mem_write() + p.params.e_mem_read());
  EXPECT_DOUBLE_EQ(e.register_file, 0);
}

TEST(Evaluate, AllRegisterSingleRead) {
  const AllocationProblem p = one_var({5});
  Assignment a(p.segments.size());
  a.assign_register(0, 0);
  const auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kRegWrite), 1);
  EXPECT_EQ(count(events, EventType::kRegRead), 1);
  EXPECT_EQ(count(events, EventType::kMemRead), 0);
  EXPECT_EQ(count(events, EventType::kMemWrite), 0);

  const auto stat = evaluate_energy(p, a, energy::RegisterModel::kStatic);
  EXPECT_DOUBLE_EQ(stat.register_file,
                   p.params.e_reg_write() + p.params.e_reg_read());
  const auto act = evaluate_energy(p, a, energy::RegisterModel::kActivity);
  EXPECT_DOUBLE_EQ(act.register_file, p.params.e_reg_transition(0.5));
}

TEST(Evaluate, SpillAfterInteriorRead) {
  // Two reads; first segment in a register, second in memory: the
  // interior read comes from the register, then a write-back, then the
  // final read from memory.
  const AllocationProblem p = one_var({3, 6});
  ASSERT_EQ(p.segments.size(), 2u);
  Assignment a(2);
  a.assign_register(0, 0);
  const auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kRegWrite), 1);   // def
  EXPECT_EQ(count(events, EventType::kRegRead), 1);    // read@3
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);   // write-back@3
  EXPECT_EQ(count(events, EventType::kMemRead), 1);    // death@6
}

TEST(Evaluate, ReloadAfterMemoryStart) {
  // First segment memory, second register: the interior read doubles as
  // the load (one memory read only).
  const AllocationProblem p = one_var({3, 6});
  Assignment a(2);
  a.assign_register(1, 0);
  const auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);  // def
  EXPECT_EQ(count(events, EventType::kMemRead), 1);   // read@3 (=load)
  EXPECT_EQ(count(events, EventType::kRegWrite), 1);  // load target
  EXPECT_EQ(count(events, EventType::kRegRead), 1);   // death@6
}

TEST(Evaluate, ChainedRegisterSegmentsHaveNoMemoryTraffic) {
  const AllocationProblem p = one_var({3, 6});
  Assignment a(2);
  a.assign_register(0, 0);
  a.assign_register(1, 0);  // Same register: stays put.
  const auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kMemRead), 0);
  EXPECT_EQ(count(events, EventType::kMemWrite), 0);
  EXPECT_EQ(count(events, EventType::kRegRead), 2);
  EXPECT_EQ(count(events, EventType::kRegWrite), 1);
}

TEST(Evaluate, BoundaryCutLoadAndSpill) {
  lifetime::SplitOptions split;
  split.access.period = 4;  // Allowed at steps 4, 8.
  const AllocationProblem p = one_var({7}, 1, split);
  // v = [1,7] cut at 4: [1,4)(forced? starts at 1: (1-0)%4 != 0 ->
  // not allowed -> forced) and [4,7) (7 not allowed -> forced).
  ASSERT_EQ(p.segments.size(), 2u);

  // Memory then register: explicit load at the boundary.
  Assignment a(2);
  a.assign_register(1, 0);
  auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);  // def
  EXPECT_EQ(count(events, EventType::kMemRead), 1);   // load@4
  EXPECT_EQ(count(events, EventType::kRegWrite), 1);
  EXPECT_EQ(count(events, EventType::kRegRead), 1);   // death@7

  // Register then memory: spill at the boundary, no read there.
  Assignment b(2);
  b.assign_register(0, 0);
  events = enumerate_events(p, b);
  EXPECT_EQ(count(events, EventType::kRegWrite), 1);
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);  // spill@4
  EXPECT_EQ(count(events, EventType::kMemRead), 1);   // death@7
  EXPECT_EQ(count(events, EventType::kRegRead), 0);
}

TEST(Evaluate, ActivityTracksRegisterOccupants) {
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  energy::ActivityMatrix act(2, 0.5, 0.5);
  act.set(0, 1, 0.125);
  act.set_initial(0, 0.25);
  AllocationProblem p =
      make_problem({lt("u", 1, {3}), lt("w", 3, {5})}, 6, 1, params,
                   std::move(act));
  Assignment a(2);
  a.assign_register(0, 0);
  a.assign_register(1, 0);  // w replaces u in register 0.
  const auto e = evaluate_energy(p, a, energy::RegisterModel::kActivity);
  EXPECT_DOUBLE_EQ(e.register_file,
                   p.params.e_reg_transition(0.25) +    // initial u
                       p.params.e_reg_transition(0.125));  // u -> w
}

TEST(Evaluate, AccessStatsAndPorts) {
  // Two variables written at the same step, read at the same step, all
  // in memory: 2 write ports and 2 read ports needed.
  energy::EnergyParams params;
  AllocationProblem p =
      make_problem({lt("u", 1, {4}), lt("w", 1, {4})}, 5, 0, params,
                   energy::ActivityMatrix(2));
  Assignment a(2);
  const AccessStats stats = count_accesses(p, a);
  EXPECT_EQ(stats.mem_reads, 2);
  EXPECT_EQ(stats.mem_writes, 2);
  EXPECT_EQ(stats.mem_read_ports, 2);
  EXPECT_EQ(stats.mem_write_ports, 2);
  EXPECT_EQ(stats.mem_accesses(), 4);
  EXPECT_EQ(stats.mem_locations, 2);
}

TEST(Evaluate, MemoryLocationsCountsPeakResidency) {
  energy::EnergyParams params;
  AllocationProblem p = make_problem(
      {lt("u", 1, {3}), lt("w", 3, {6}), lt("z", 2, {5})}, 7, 1, params,
      energy::ActivityMatrix(3));
  Assignment a(3);
  // u,w sequential share; z overlaps both.
  EXPECT_EQ(memory_locations(p, a), 2);
  a.assign_register(2, 0);  // z to a register.
  EXPECT_EQ(memory_locations(p, a), 1);
}

TEST(Evaluate, ValidationCatchesOverlapAndCapacity) {
  energy::EnergyParams params;
  AllocationProblem p = make_problem(
      {lt("u", 1, {4}), lt("w", 2, {5})}, 6, 1, params,
      energy::ActivityMatrix(2));
  Assignment a(2);
  a.assign_register(0, 0);
  a.assign_register(1, 0);  // Overlapping segments in the same register.
  EXPECT_FALSE(validate_assignment(p, a).empty());

  Assignment b(2);
  b.assign_register(0, 0);
  b.assign_register(1, 5);  // Register index out of range (R = 1).
  EXPECT_FALSE(validate_assignment(p, b).empty());

  Assignment c(2);
  c.assign_register(0, 0);
  EXPECT_TRUE(validate_assignment(p, c).empty());
}

TEST(Evaluate, ForcedSegmentInMemoryIsInvalid) {
  lifetime::SplitOptions split;
  split.access.period = 4;
  const AllocationProblem p = one_var({7}, 1, split);
  Assignment a(p.segments.size());  // All memory, but segments forced.
  EXPECT_FALSE(validate_assignment(p, a).empty());
}

TEST(Evaluate, RegisterToRegisterMoveAtReadCut) {
  // v's first segment in r0, second in r1 (a different register): the
  // model charges the write-back (memory copies are not kept) but the
  // move itself is free of memory reads (documented semantics).
  const AllocationProblem p = one_var({3, 6});
  Assignment a(2);
  a.assign_register(0, 0);
  a.assign_register(1, 1);
  const auto events = enumerate_events(p, a);
  EXPECT_EQ(count(events, EventType::kRegWrite), 2);  // Enter r0, r1.
  EXPECT_EQ(count(events, EventType::kRegRead), 2);   // read@3, death@6.
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);  // Write-back@3.
  EXPECT_EQ(count(events, EventType::kMemRead), 0);   // Move is free.
}

TEST(Evaluate, RegisterToRegisterMoveAtBoundaryCut) {
  lifetime::SplitOptions split;
  split.access.period = 4;
  const AllocationProblem p = one_var({7}, 2, split);
  ASSERT_EQ(p.segments.size(), 2u);
  Assignment a(2);
  a.assign_register(0, 0);
  a.assign_register(1, 1);
  const auto events = enumerate_events(p, a);
  // At an access-boundary cut a cross-register move costs a write-back
  // AND an explicit reload (no consumer read doubles as the load).
  EXPECT_EQ(count(events, EventType::kMemWrite), 1);
  EXPECT_EQ(count(events, EventType::kMemRead), 1);
  EXPECT_EQ(count(events, EventType::kRegWrite), 2);
}

TEST(Evaluate, EventsSortedByStep) {
  const AllocationProblem p = one_var({3, 6});
  Assignment a(2);
  a.assign_register(0, 0);
  const auto events = enumerate_events(p, a);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].step, events[i].step);
  }
}

TEST(Evaluate, SegFieldPointsAtResponsibleSegment) {
  const AllocationProblem p = one_var({3, 6});
  Assignment a(2);  // All memory.
  for (const StorageEvent& ev : enumerate_events(p, a)) {
    ASSERT_GE(ev.seg, 0);
    ASSERT_LT(ev.seg, 2);
    // The event's step lies on the segment's boundary (its start cut,
    // end cut, or the death read).
    const auto& seg = p.segments[static_cast<std::size_t>(ev.seg)];
    EXPECT_TRUE(ev.step == seg.start || ev.step == seg.end)
        << "step " << ev.step << " seg [" << seg.start << "," << seg.end
        << ")";
  }
}

}  // namespace
}  // namespace lera::alloc
