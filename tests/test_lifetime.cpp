#include <gtest/gtest.h>

#include "lifetime/lifetime.hpp"
#include "lifetime/segment.hpp"
#include "sched/schedule.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_gen.hpp"

namespace lera::lifetime {
namespace {

TEST(Analyze, SimpleChain) {
  ir::BasicBlock bb("t");
  const ir::ValueId x = bb.input("x");
  const ir::ValueId y = bb.input("y");
  const ir::ValueId a = bb.emit(ir::Opcode::kAdd, {x, y}, "a");
  const ir::ValueId b = bb.emit(ir::Opcode::kAdd, {a, x}, "b");
  bb.output(b);
  const sched::Schedule s = sched::asap(bb);

  const auto lifetimes = analyze(bb, s);
  ASSERT_EQ(lifetimes.size(), 4u);  // x, y, a, b

  // x: written at 0 (input), read at steps of both adds.
  const Lifetime& lx = lifetimes[0];
  EXPECT_EQ(lx.name, "x");
  EXPECT_EQ(lx.write_time, 0);
  EXPECT_EQ(lx.read_times, (std::vector<int>{1, 2}));

  // b: defined at step 2, live-out -> read at x+1 = 3.
  const Lifetime& lb = lifetimes[3];
  EXPECT_EQ(lb.name, "b");
  EXPECT_TRUE(lb.live_out);
  EXPECT_EQ(lb.write_time, 2);
  EXPECT_EQ(lb.read_times, (std::vector<int>{3}));
}

TEST(Analyze, ConstantsExcludedByDefault) {
  ir::BasicBlock bb("t");
  const ir::ValueId x = bb.input("x");
  const ir::ValueId c = bb.constant(3);
  bb.output(bb.emit(ir::Opcode::kAdd, {x, c}, "a"));
  const sched::Schedule s = sched::asap(bb);
  EXPECT_EQ(analyze(bb, s).size(), 2u);  // x and a, not c.
  LifetimeOptions opts;
  opts.include_constants = true;
  EXPECT_EQ(analyze(bb, s, opts).size(), 3u);
}

TEST(Analyze, DeadValuesSkipped) {
  ir::BasicBlock bb("t");
  const ir::ValueId x = bb.input("x");
  const ir::ValueId y = bb.input("y");
  bb.emit(ir::Opcode::kAdd, {x, y}, "dead");
  bb.output(bb.emit(ir::Opcode::kSub, {x, y}, "live"));
  const sched::Schedule s = sched::asap(bb);
  for (const Lifetime& lt : analyze(bb, s)) {
    EXPECT_NE(lt.name, "dead");
  }
}

TEST(Density, Figure1Profile) {
  // The paper's Figure 1: peaks of density 3 around boundaries 2 and
  // 4-5, dipping to 2 at boundary 3 where a and b die and d, e begin.
  const auto lifetimes = workloads::figure1_lifetimes();
  const auto profile = density_profile(lifetimes, 7);
  ASSERT_EQ(profile.size(), 8u);
  EXPECT_EQ(profile[0], 0);
  EXPECT_EQ(profile[1], 1);
  EXPECT_EQ(profile[2], 3);
  EXPECT_EQ(profile[3], 2);
  EXPECT_EQ(profile[4], 3);
  EXPECT_EQ(profile[5], 3);
  EXPECT_EQ(profile[6], 2);
  EXPECT_EQ(profile[7], 2);
  EXPECT_EQ(max_density(profile), 3);

  const auto is_max = max_density_boundaries(profile);
  EXPECT_TRUE(is_max[2]);
  EXPECT_FALSE(is_max[3]);
  EXPECT_TRUE(is_max[4]);
  EXPECT_TRUE(is_max[5]);
}

TEST(Density, CrossesSemantics) {
  Lifetime lt;
  lt.write_time = 2;
  lt.read_times = {5};
  EXPECT_FALSE(lt.crosses(1));
  EXPECT_TRUE(lt.crosses(2));
  EXPECT_TRUE(lt.crosses(4));
  EXPECT_FALSE(lt.crosses(5));
}

TEST(Segments, SingleReadIsOneSegment) {
  Lifetime lt;
  lt.value = 0;
  lt.name = "v";
  lt.write_time = 1;
  lt.read_times = {4};
  const auto segs = build_segments({lt}, 6, {});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].start, 1);
  EXPECT_EQ(segs[0].end, 4);
  EXPECT_EQ(segs[0].start_kind, CutKind::kDef);
  EXPECT_EQ(segs[0].end_kind, CutKind::kDeath);
  EXPECT_FALSE(segs[0].forced_register);
}

TEST(Segments, MultipleReadsSplit) {
  Lifetime lt;
  lt.value = 0;
  lt.name = "v";
  lt.write_time = 1;
  lt.read_times = {3, 5, 7};
  const auto segs = build_segments({lt}, 8, {});
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].end, 3);
  EXPECT_EQ(segs[0].end_kind, CutKind::kRead);
  EXPECT_EQ(segs[1].start, 3);
  EXPECT_EQ(segs[1].end, 5);
  EXPECT_EQ(segs[2].end, 7);
  EXPECT_EQ(segs[2].end_kind, CutKind::kDeath);
  EXPECT_EQ(segs[2].index, 2);
}

TEST(Segments, RestrictedAccessTimesForceRegisters) {
  // Access allowed at odd steps (1,3,5,...) as in the paper's Fig. 1c.
  SplitOptions opts;
  opts.access.period = 2;
  opts.access.phase = 1;

  // Variable e of Fig. 1c: lives entirely between allowed times 3 and 5?
  // e = [4,6]: starts at 4 (not allowed) -> forced into a register.
  Lifetime e;
  e.value = 0;
  e.name = "e";
  e.write_time = 4;
  e.read_times = {6};
  {
    const auto segs = build_segments({e}, 7, opts);
    // Cut at allowed time 5 inside [4,6]: two segments.
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_TRUE(segs[0].forced_register);  // [4,5): begins at 4 (even).
    EXPECT_TRUE(segs[1].forced_register);  // [5,6): read at 6 (even).
  }
}

TEST(Segments, AccessBoundaryCutKinds) {
  SplitOptions opts;
  opts.access.period = 2;
  opts.access.phase = 1;
  Lifetime c;
  c.value = 0;
  c.name = "c";
  c.write_time = 2;
  c.read_times = {8};  // x = 7 -> 8 means live-out, always accessible.
  const auto segs = build_segments({c}, 7, opts);
  // Allowed interior times 3, 5, 7 cut [2,8] into 4 segments.
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0].start, 2);
  EXPECT_EQ(segs[0].end, 3);
  EXPECT_EQ(segs[0].end_kind, CutKind::kBoundary);
  EXPECT_TRUE(segs[0].forced_register);  // Starts at even step 2.
  EXPECT_FALSE(segs[1].forced_register);
  EXPECT_EQ(segs[3].end, 8);
  EXPECT_EQ(segs[3].end_kind, CutKind::kDeath);
}

TEST(Segments, ManualCuts) {
  Lifetime f;
  f.value = 0;
  f.name = "f";
  f.write_time = 3;
  f.read_times = {6};
  SplitOptions opts;
  opts.manual_cuts.push_back({0, 4});
  const auto segs = build_segments({f}, 9, opts);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].end, 4);
  EXPECT_EQ(segs[0].end_kind, CutKind::kBoundary);
}

TEST(Segments, ManualCutOutsideLifetimeIgnored) {
  Lifetime f;
  f.value = 0;
  f.name = "f";
  f.write_time = 3;
  f.read_times = {6};
  SplitOptions opts;
  opts.manual_cuts.push_back({0, 3});   // At the write: no cut.
  opts.manual_cuts.push_back({0, 6});   // At the death: no cut.
  opts.manual_cuts.push_back({0, 9});   // Beyond: no cut.
  EXPECT_EQ(build_segments({f}, 9, opts).size(), 1u);
}

TEST(Segments, ReadCutWinsOverBoundaryCut) {
  SplitOptions opts;
  opts.access.period = 2;
  opts.access.phase = 1;
  Lifetime v;
  v.value = 0;
  v.name = "v";
  v.write_time = 1;
  v.read_times = {3, 7};  // Read at 3 coincides with an allowed time.
  const auto segs = build_segments({v}, 7, opts);
  // Cuts: read@3 (kRead, not kBoundary), boundary@5.
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].end_kind, CutKind::kRead);
  EXPECT_EQ(segs[1].end, 5);
  EXPECT_EQ(segs[1].end_kind, CutKind::kBoundary);
}

TEST(Segments, SegmentsPerVarCounts) {
  const auto lifetimes = workloads::figure1_lifetimes();
  const auto segs = build_segments(lifetimes, 7, {});
  const auto counts = segments_per_var(segs, lifetimes.size());
  for (int c : counts) EXPECT_EQ(c, 1);  // Single-read variables.
}

TEST(Segments, RandomLifetimesAreContiguous) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 12;
    lopts.max_reads = 3;
    const auto lifetimes = workloads::random_lifetimes(seed, lopts);
    SplitOptions sopts;
    sopts.access.period = (seed % 3 == 0) ? 2 : 1;
    const auto segs = build_segments(lifetimes, lopts.num_steps, sopts);
    for (std::size_t i = 0; i < segs.size(); ++i) {
      EXPECT_LT(segs[i].start, segs[i].end);
      if (i > 0 && segs[i].var == segs[i - 1].var) {
        EXPECT_EQ(segs[i].start, segs[i - 1].end);
        EXPECT_EQ(segs[i].index, segs[i - 1].index + 1);
      }
    }
    // The segments of each variable must tile its lifetime exactly.
    const auto counts = segments_per_var(segs, lifetimes.size());
    std::size_t seg_idx = 0;
    for (std::size_t v = 0; v < lifetimes.size(); ++v) {
      EXPECT_EQ(segs[seg_idx].start, lifetimes[v].write_time);
      seg_idx += static_cast<std::size_t>(counts[v]);
      EXPECT_EQ(segs[seg_idx - 1].end, lifetimes[v].last_read());
    }
  }
}

}  // namespace
}  // namespace lera::lifetime
