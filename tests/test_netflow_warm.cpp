#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

// Warm-start resolve: re-solving a same-topology instance from the
// previous optimal flow must reach the same objective as a cold solve —
// always certified — and fall back to the cold chain the moment the
// topology changes or the repair gives up. The warm path may pick a
// different equal-cost optimum than the cold path, so these tests
// compare objectives and certificates, never raw flow vectors.

namespace lera::netflow {
namespace {

/// A same-topology cost/capacity perturbation, deterministic in seed.
Graph perturb(const Graph& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Cost> dcost(-5, 5);
  std::uniform_int_distribution<int> dcap(0, 4);
  Graph out = g;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    Cost cost = arc.cost + dcost(rng);
    Flow cap = arc.upper;
    if (dcap(rng) == 0 && cap > 1) cap -= 1;  // Occasionally tighten.
    out.set_arc_cost(a, cost);
    out.set_arc_capacity(a, cap);
  }
  return out;
}

workloads::RandomFlowOptions warm_options() {
  workloads::RandomFlowOptions opts;
  opts.num_nodes = 16;
  opts.num_arcs = 48;
  opts.supply = 6;
  return opts;
}

TEST(WarmStart, CacheMatchesTopologyNotCosts) {
  const Graph g = workloads::random_flow_problem(1, warm_options());
  const FlowSolution cold = solve(g);
  ASSERT_TRUE(cold.optimal());

  WarmStartCache cache;
  EXPECT_FALSE(cache.has_entry());
  EXPECT_FALSE(cache.matches(g));
  cache.store(g, cold.arc_flow);
  EXPECT_TRUE(cache.has_entry());
  EXPECT_TRUE(cache.matches(g));
  EXPECT_TRUE(cache.matches(perturb(g, 99)));  // Same topology.

  Graph grown = g;
  grown.add_arc(0, 1, 1, 0);
  EXPECT_FALSE(cache.matches(grown));  // Arc count changed.

  Graph resupplied = g;
  resupplied.add_supply(0, 1);
  resupplied.add_supply(1, -1);
  EXPECT_FALSE(cache.matches(resupplied));  // Supplies changed.
}

TEST(WarmStart, FiftySeedPerturbationSweepMatchesColdObjective) {
  int warm_optimal = 0;
  SolverWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Graph base = workloads::random_flow_problem(seed, warm_options());
    const FlowSolution cold_base = solve(base);
    if (!cold_base.optimal()) continue;  // Rare; nothing to warm from.

    WarmStartCache cache;
    cache.store(base, cold_base.arc_flow);

    const Graph next = perturb(base, seed * 7919);
    ASSERT_TRUE(cache.matches(next)) << "seed " << seed;
    const FlowSolution cold = solve(next);
    const FlowSolution warm = resolve_warm(next, cache, nullptr, &ws);

    if (!warm.optimal()) {
      // The repair bailed (kMaxCancellations, infeasible after a
      // capacity cut, ...): the contract is only that the caller falls
      // back to cold, which must agree with the cold verdict.
      EXPECT_EQ(warm.status == SolveStatus::kInfeasible,
                cold.status == SolveStatus::kInfeasible)
          << "seed " << seed;
      continue;
    }
    ++warm_optimal;
    ASSERT_TRUE(cold.optimal()) << "seed " << seed;
    // Equal objective, both independently certified.
    EXPECT_EQ(warm.cost, cold.cost) << "seed " << seed;
    EXPECT_TRUE(check_feasible(next, warm.arc_flow).ok) << "seed " << seed;
    EXPECT_TRUE(check_feasible(next, cold.arc_flow).ok) << "seed " << seed;
    EXPECT_TRUE(certify_optimal(next, warm.arc_flow)) << "seed " << seed;
    EXPECT_TRUE(certify_optimal(next, cold.arc_flow)) << "seed " << seed;
  }
  // The sweep must exercise the warm path for real, not fall back on
  // every seed.
  EXPECT_GT(warm_optimal, 30);
}

TEST(WarmStart, RobustSolveUsesAndRefreshesTheCache) {
  const Graph base = workloads::random_flow_problem(11, warm_options());

  SolverWorkspace ws;
  WarmStartCache cache;
  SolveOptions opts;
  opts.workspace = &ws;
  opts.warm_cache = &cache;

  // First solve: cold (cache empty), but it must seed the cache.
  SolveDiagnostics d1;
  const FlowSolution first = solve_robust(base, opts, &d1);
  ASSERT_TRUE(first.optimal());
  EXPECT_FALSE(d1.warm_start_attempted);
  EXPECT_FALSE(d1.warm_start_hit);
  EXPECT_TRUE(cache.has_entry());
  EXPECT_EQ(ws.counters.warm_start_misses, 1);

  // Same-topology resubmission: warm path, still certified optimal.
  const Graph next = perturb(base, 1234);
  SolveDiagnostics d2;
  const FlowSolution second = solve_robust(next, opts, &d2);
  ASSERT_TRUE(second.optimal());
  EXPECT_TRUE(d2.warm_start_attempted);
  EXPECT_TRUE(d2.warm_start_hit);
  EXPECT_EQ(d2.certification, CertificationVerdict::kPassed);
  EXPECT_TRUE(certify_optimal(next, second.arc_flow));
  const FlowSolution cold = solve(next);
  ASSERT_TRUE(cold.optimal());
  EXPECT_EQ(second.cost, cold.cost);
  EXPECT_EQ(ws.counters.warm_start_hits, 1);

  // Topology change: the cache must not match; solve falls back cold
  // and re-seeds the cache for the new topology.
  Graph grown = next;
  grown.add_arc(2, 3, 2, 1);
  SolveDiagnostics d3;
  const FlowSolution third = solve_robust(grown, opts, &d3);
  ASSERT_TRUE(third.optimal());
  EXPECT_FALSE(d3.warm_start_attempted);
  EXPECT_FALSE(d3.warm_start_hit);
  EXPECT_TRUE(cache.matches(grown));  // Refreshed by the cold optimum.

  // Workspace reuse is counted across all three solves.
  EXPECT_GE(ws.counters.workspace_reuse_hits, 2);
}

TEST(WarmStart, WarmAnswersAreCertifiedEvenUnderCertifyNone) {
  const Graph base = workloads::random_flow_problem(21, warm_options());

  WarmStartCache cache;
  SolveOptions opts;
  opts.warm_cache = &cache;
  opts.certify = CertifyLevel::kNone;

  SolveDiagnostics d1;
  ASSERT_TRUE(solve_robust(base, opts, &d1).optimal());
  ASSERT_TRUE(cache.has_entry());

  // Corrupt every warm answer through the test seam: certification must
  // catch it (despite kNone) and fall back to the cold chain.
  const Graph next = perturb(base, 777);
  SolveOptions bad = opts;
  bad.post_solve_hook = [](const Graph&, FlowSolution& s) {
    if (!s.arc_flow.empty()) s.arc_flow[0] += 1;
  };
  SolveDiagnostics d2;
  const FlowSolution out = solve_robust(next, bad, &d2);
  EXPECT_TRUE(d2.warm_start_attempted);
  EXPECT_FALSE(d2.warm_start_hit);
  // The cold chain's answer is corrupted by the hook too, and with
  // certify=kNone it is accepted blind — the point here is only that
  // the *warm* path never bypasses certification.
  ASSERT_FALSE(d2.attempts.empty());
  EXPECT_NE(d2.attempts.front().note.find("warm-start"), std::string::npos);
  (void)out;
}

TEST(WarmStart, BudgetExceededSurfacesFromWarmPath) {
  const Graph base = workloads::random_flow_problem(31, warm_options());
  const FlowSolution cold = solve(base);
  ASSERT_TRUE(cold.optimal());
  WarmStartCache cache;
  cache.store(base, cold.arc_flow);

  const Graph next = perturb(base, 4242);
  SolveGuard guard;
  guard.max_iterations = 1;
  guard.start();
  const FlowSolution warm = resolve_warm(next, cache, &guard, nullptr);
  EXPECT_TRUE(warm.status == SolveStatus::kBudgetExceeded ||
              warm.optimal());
}

}  // namespace
}  // namespace lera::netflow
