#include <gtest/gtest.h>

#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

namespace lera::netflow {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_EQ(g.total_supply(), 0);
  EXPECT_FALSE(g.has_lower_bounds());
  EXPECT_FALSE(g.has_negative_costs());
}

TEST(Graph, AddNodesAndArcs) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.node_name(a), "a");

  const ArcId arc = g.add_arc(a, b, 5, 7);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.arc(arc).tail, a);
  EXPECT_EQ(g.arc(arc).head, b);
  EXPECT_EQ(g.arc(arc).upper, 5);
  EXPECT_EQ(g.arc(arc).cost, 7);
  EXPECT_EQ(g.arc(arc).lower, 0);
}

TEST(Graph, BulkNodeCreation) {
  Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4);
  const NodeId first = g.add_nodes(3);
  EXPECT_EQ(first, 4);
  EXPECT_EQ(g.num_nodes(), 7);
}

TEST(Graph, TracksLowerBoundsAndNegativeCosts) {
  Graph g(3);
  g.add_arc(0, 1, 4, 2);
  EXPECT_FALSE(g.has_lower_bounds());
  EXPECT_FALSE(g.has_negative_costs());
  g.add_arc(1, 2, 4, -3, 1);
  EXPECT_TRUE(g.has_lower_bounds());
  EXPECT_TRUE(g.has_negative_costs());
}

TEST(Graph, SupplyBookkeeping) {
  Graph g(3);
  g.set_supply(0, 5);
  g.set_supply(2, -5);
  EXPECT_EQ(g.supply(0), 5);
  EXPECT_EQ(g.total_supply(), 0);
  g.add_supply(1, 2);
  EXPECT_EQ(g.total_supply(), 2);
}

TEST(Graph, AdjacencyLists) {
  Graph g(3);
  const ArcId a01 = g.add_arc(0, 1, 1, 0);
  const ArcId a02 = g.add_arc(0, 2, 1, 0);
  const ArcId a12 = g.add_arc(1, 2, 1, 0);
  EXPECT_EQ(g.out_arcs(0).to_vector(), (std::vector<ArcId>{a01, a02}));
  EXPECT_EQ(g.in_arcs(2).to_vector(), (std::vector<ArcId>{a02, a12}));
  EXPECT_TRUE(g.out_arcs(2).empty());

  // Adjacency refreshes after mutation.
  const ArcId a20 = g.add_arc(2, 0, 1, 0);
  EXPECT_EQ(g.out_arcs(2).to_vector(), (std::vector<ArcId>{a20}));
  EXPECT_EQ(g.out_arcs(0).size(), 2u);
  EXPECT_EQ(g.out_arcs(0)[1], a02);

  // Nodes added after the adjacency is built start with no arcs, and
  // arcs touching them are visible without a full rebuild.
  const NodeId v3 = g.add_nodes(1);
  EXPECT_TRUE(g.out_arcs(v3).empty());
  const ArcId a30 = g.add_arc(v3, 0, 1, 0);
  EXPECT_EQ(g.out_arcs(v3).to_vector(), (std::vector<ArcId>{a30}));
  EXPECT_EQ(g.in_arcs(0).to_vector(), (std::vector<ArcId>{a20, a30}));
}

TEST(Residual, MirrorsArcsWithTwins) {
  Graph g(2);
  g.add_arc(0, 1, 5, 3);
  Residual res(g);
  EXPECT_EQ(res.num_edges(), 2);
  EXPECT_EQ(res.edge(0).head, 1);
  EXPECT_EQ(res.edge(0).cap, 5);
  EXPECT_EQ(res.edge(0).cost, 3);
  EXPECT_EQ(res.edge(1).head, 0);
  EXPECT_EQ(res.edge(1).cap, 0);
  EXPECT_EQ(res.edge(1).cost, -3);
  EXPECT_EQ(res.tail(0), 0);
  EXPECT_EQ(res.tail(1), 1);
}

TEST(Residual, PushMovesCapacityToTwin) {
  Graph g(2);
  g.add_arc(0, 1, 5, 3);
  Residual res(g);
  res.push(0, 2);
  EXPECT_EQ(res.edge(0).cap, 3);
  EXPECT_EQ(res.edge(1).cap, 2);
  EXPECT_EQ(res.flow_of(0), 2);
  res.push(1, 1);  // Cancel one unit.
  EXPECT_EQ(res.flow_of(0), 1);
  EXPECT_EQ(res.arc_flows(), (std::vector<Flow>{1}));
}

TEST(LowerBounds, ReductionShiftsSuppliesAndCost) {
  Graph g(2);
  g.add_arc(0, 1, 5, 4, 2);  // lower bound 2, cost 4
  const LowerBoundReduction red = remove_lower_bounds(g);
  EXPECT_FALSE(red.reduced.has_lower_bounds());
  EXPECT_EQ(red.reduced.arc(0).upper, 3);
  EXPECT_EQ(red.reduced.supply(0), -2);
  EXPECT_EQ(red.reduced.supply(1), 2);
  EXPECT_EQ(red.fixed_cost, 8);

  const std::vector<Flow> restored = restore_lower_bounds(red, {1});
  EXPECT_EQ(restored, (std::vector<Flow>{3}));
}

TEST(Validate, DetectsBoundViolation) {
  Graph g(2);
  g.add_arc(0, 1, 2, 1);
  const CheckResult bad = check_feasible(g, {3});
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.message.find("outside"), std::string::npos);
}

TEST(Validate, DetectsImbalance) {
  Graph g(2);
  g.add_arc(0, 1, 2, 1);
  // No supplies set, yet one unit flows: node 0 pushes out 1.
  const CheckResult bad = check_feasible(g, {1});
  EXPECT_FALSE(bad.ok);
}

TEST(Validate, AcceptsBalancedFlow) {
  Graph g(2);
  g.set_supply(0, 2);
  g.set_supply(1, -2);
  g.add_arc(0, 1, 3, 1);
  EXPECT_TRUE(check_feasible(g, {2}).ok);
  EXPECT_EQ(flow_cost(g, {2}), 2);
}

TEST(Validate, CertifiesOptimalityViaResidualCycles) {
  // Two parallel arcs: cheap (cost 1) and dear (cost 5). Routing on the
  // dear one leaves a negative residual cycle; routing cheap does not.
  Graph g(2);
  g.add_arc(0, 1, 2, 1);
  g.add_arc(0, 1, 2, 5);
  g.set_supply(0, 2);
  g.set_supply(1, -2);
  EXPECT_TRUE(certify_optimal(g, {2, 0}));
  EXPECT_FALSE(certify_optimal(g, {0, 2}));
}

TEST(MaxFlow, SimpleBottleneck) {
  Graph g(4);
  g.add_arc(0, 1, 3, 0);
  g.add_arc(0, 2, 2, 0);
  g.add_arc(1, 3, 2, 0);
  g.add_arc(2, 3, 3, 0);
  Residual res(g);
  EXPECT_EQ(dinic_max_flow(res, 0, 3), 4);
}

TEST(MaxFlow, DisconnectedIsZero) {
  Graph g(3);
  g.add_arc(0, 1, 3, 0);
  Residual res(g);
  EXPECT_EQ(dinic_max_flow(res, 0, 2), 0);
}

TEST(MaxFlow, RespectsBackEdges) {
  // Classic case where augmenting must undo a greedy path.
  Graph g(4);
  g.add_arc(0, 1, 1, 0);
  g.add_arc(0, 2, 1, 0);
  g.add_arc(1, 2, 1, 0);
  g.add_arc(1, 3, 1, 0);
  g.add_arc(2, 3, 1, 0);
  Residual res(g);
  EXPECT_EQ(dinic_max_flow(res, 0, 3), 2);
}

TEST(MinCut, MatchesMaxFlowValue) {
  Graph g(4);
  g.add_arc(0, 1, 3, 0);
  g.add_arc(0, 2, 2, 0);
  g.add_arc(1, 3, 2, 0);
  g.add_arc(2, 3, 3, 0);
  Residual res(g);
  const Flow value = dinic_max_flow(res, 0, 3);
  const std::vector<bool> side = min_cut_side(res, 0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
  // Capacity of the arcs crossing s-side -> t-side equals the flow.
  Flow cut = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    if (side[static_cast<std::size_t>(arc.tail)] &&
        !side[static_cast<std::size_t>(arc.head)]) {
      cut += arc.upper;
    }
  }
  EXPECT_EQ(cut, value);
}

TEST(MinCut, RandomInstancesSatisfyTheTheorem) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    workloads::RandomFlowOptions opts;
    opts.num_nodes = 14;
    opts.num_arcs = 40;
    opts.min_cost = 0;
    opts.supply = 0;
    const Graph g = workloads::random_flow_problem(seed, opts);
    Residual res(g);
    const NodeId s = 0;
    const NodeId t = g.num_nodes() - 1;
    const Flow value = dinic_max_flow(res, s, t);
    const std::vector<bool> side = min_cut_side(res, s);
    ASSERT_TRUE(side[static_cast<std::size_t>(s)]);
    ASSERT_FALSE(side[static_cast<std::size_t>(t)]) << "seed " << seed;
    Flow cut = 0;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      if (side[static_cast<std::size_t>(arc.tail)] &&
          !side[static_cast<std::size_t>(arc.head)]) {
        cut += arc.upper;
      }
    }
    EXPECT_EQ(cut, value) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lera::netflow
