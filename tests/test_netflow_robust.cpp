#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "energy/quantize.hpp"
#include "netflow/netflow.hpp"

/// Behavioural tests of the hardened solve path: instance validation,
/// iteration/time budgets, the solver fallback chain, certification of
/// every accepted answer, and the deterministic fault-injection harness
/// that proves the certification layer catches corrupted solutions.

namespace lera::netflow {
namespace {

/// Small transport instance with a unique optimum (cost 12).
Graph simple_transport() {
  Graph g(2);
  g.add_arc(0, 1, 5, 3);
  g.set_supply(0, 4);
  g.set_supply(1, -4);
  return g;
}

/// Multi-path instance that needs several augmentations / pivots.
Graph diamond(Flow supply = 6) {
  Graph g(4);
  g.add_arc(0, 1, 4, 1);
  g.add_arc(0, 2, 4, 2);
  g.add_arc(1, 3, 4, 1);
  g.add_arc(2, 3, 4, 2);
  g.add_arc(1, 2, 2, 1);
  g.set_supply(0, supply);
  g.set_supply(3, -supply);
  return g;
}

// ---------------------------------------------------------------------
// validate_instance

TEST(ValidateInstance, AcceptsWellFormedInstances) {
  const InstanceReport report = validate_instance(diamond());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.warnings.empty());
}

TEST(ValidateInstance, RejectsUnbalancedSupply) {
  Graph g = simple_transport();
  g.add_supply(0, 1);  // Total supply now +1.
  const InstanceReport report = validate_instance(g);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors.front().find("unbalanced"), std::string::npos);
}

TEST(ValidateInstance, RejectsOversizedSupplyAndCapacityAndCost) {
  Graph g(2);
  g.add_arc(0, 1, kInfFlow + 1, kInfCost + 1);
  g.set_supply(0, kInfFlow + 1);
  g.set_supply(1, -(kInfFlow + 1));
  const InstanceReport report = validate_instance(g);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.errors.size(), 3u);  // Supply, capacity, cost.
}

TEST(ValidateInstance, WarnsWhenWorstCaseObjectiveOverflows) {
  // Each arc is individually in range but |cost|*capacity overflows.
  Graph g(2);
  g.add_arc(0, 1, kInfFlow, kInfCost);
  g.set_supply(0, 1);
  g.set_supply(1, -1);
  const InstanceReport report = validate_instance(g);
  EXPECT_TRUE(report.ok());  // A warning, not a rejection.
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings.front().find("overflow"), std::string::npos);
}

// ---------------------------------------------------------------------
// solve_robust basics

TEST(SolveRobust, OptimalWithCleanDiagnostics) {
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(diamond(), {}, &diag);
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, solve(diamond()).cost);
  EXPECT_EQ(diag.attempts.size(), 1u);
  EXPECT_EQ(diag.fallbacks_taken, 0);
  EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
  EXPECT_TRUE(diag.instance_errors.empty());
  EXPECT_FALSE(diag.message.empty());
  EXPECT_GE(diag.wall_seconds, 0.0);
  EXPECT_FALSE(diag.summary().empty());
}

TEST(SolveRobust, BadInstanceNeverReachesASolver) {
  Graph g = simple_transport();
  g.add_supply(0, 3);  // Unbalanced.
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, {}, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kBadInstance);
  EXPECT_FALSE(sol.message.empty());
  EXPECT_TRUE(diag.attempts.empty());
  ASSERT_FALSE(diag.instance_errors.empty());
  EXPECT_EQ(diag.certification, CertificationVerdict::kNotRun);
}

TEST(SolveRobust, InfeasibleCrossCheckedByASecondSolver) {
  Graph g(3);  // Demand 3 through capacity-2 arcs: infeasible.
  g.add_arc(0, 1, 2, 1);
  g.add_arc(1, 2, 2, 1);
  g.set_supply(0, 3);
  g.set_supply(2, -3);
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, {}, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
  EXPECT_GE(diag.attempts.size(), 2u);  // Verdict confirmed, not trusted.

  SolveOptions trusting;
  trusting.cross_check_infeasible = false;
  SolveDiagnostics diag_single;
  const FlowSolution sol_single = solve_robust(g, trusting, &diag_single);
  EXPECT_EQ(sol_single.status, SolveStatus::kInfeasible);
  EXPECT_EQ(diag_single.attempts.size(), 1u);
}

TEST(SolveRobust, IterationBudgetSurfacesAsBudgetExceeded) {
  SolveOptions options;
  options.chain = {SolverKind::kSuccessiveShortestPaths};
  options.max_iterations_per_solver = 1;  // Diamond needs more than one.
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(diamond(), options, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kBudgetExceeded);
  EXPECT_FALSE(sol.message.empty());
  ASSERT_EQ(diag.attempts.size(), 1u);
  EXPECT_EQ(diag.attempts[0].status, SolveStatus::kBudgetExceeded);
}

TEST(SolveRobust, BudgetExhaustionFallsThroughTheChain) {
  // The budget is per attempt: when the primary runs out, the chain
  // moves on instead of aborting the whole solve. The diamond needs
  // several SSP augmentations, so the primary must trip; whether a
  // one-iteration fallback can still finish is solver-dependent, but
  // either way the exhaustion is recorded and nothing uncertified leaks.
  SolveOptions options;
  options.chain = {SolverKind::kSuccessiveShortestPaths,
                   SolverKind::kNetworkSimplex,
                   SolverKind::kCycleCanceling};
  options.max_iterations_per_solver = 1;
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(diamond(), options, &diag);
  ASSERT_FALSE(diag.attempts.empty());
  EXPECT_EQ(diag.attempts.front().status, SolveStatus::kBudgetExceeded);
  if (sol.optimal()) {
    EXPECT_EQ(sol.cost, solve(diamond()).cost);
    EXPECT_GE(diag.fallbacks_taken, 1);
    EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
  } else {
    EXPECT_EQ(sol.status, SolveStatus::kBudgetExceeded);
    EXPECT_EQ(diag.attempts.size(), 3u);
  }
}

TEST(SolveRobust, WallClockBudgetIsHonoured) {
  SolveOptions options;
  options.max_seconds_total = 1e-12;  // Validation alone exceeds this.
  const FlowSolution sol = solve_robust(diamond(), options);
  EXPECT_EQ(sol.status, SolveStatus::kBudgetExceeded);
}

TEST(SolveRobust, StFlowVariantMatchesPlainStFlow) {
  // The allocator's entry point: fixed-value s-t flow.
  Graph g(4);
  g.add_arc(0, 1, 2, 5);
  g.add_arc(0, 2, 2, 1);
  g.add_arc(1, 3, 2, 1);
  g.add_arc(2, 3, 2, 4);
  SolveDiagnostics diag;
  const FlowSolution robust = solve_st_flow_robust(g, 0, 3, 2, {}, &diag);
  const FlowSolution plain = solve_st_flow(g, 0, 3, 2);
  ASSERT_TRUE(robust.optimal());
  ASSERT_TRUE(plain.optimal());
  EXPECT_EQ(robust.cost, plain.cost);
  EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
}

// ---------------------------------------------------------------------
// Fault injection and certification

TEST(SolveRobust, CorruptedFirstAttemptIsCaughtAndCorrected) {
  const Graph g = diamond();
  const Cost reference = solve(g).cost;

  FaultInjector injector(7);  // Corrupts the first optimal answer only.
  SolveOptions options;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);

  ASSERT_EQ(injector.faults_injected(), 1) << "fault did not apply";
  ASSERT_TRUE(sol.optimal()) << diag.summary();
  EXPECT_EQ(sol.cost, reference);
  EXPECT_GE(diag.fallbacks_taken, 1);
  EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
  ASSERT_GE(diag.attempts.size(), 2u);
  EXPECT_FALSE(diag.attempts[0].certified);
  EXPECT_NE(diag.attempts[0].note.find("certification failed"),
            std::string::npos);
}

TEST(SolveRobust, AllAttemptsCorruptedSurfacesAsUncertified) {
  const Graph g = diamond();
  FaultInjectorOptions fopts;
  fopts.max_faulty_attempts = 1000;  // Corrupt every answer in the chain.
  FaultInjector injector(11, fopts);
  SolveOptions options;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);

  EXPECT_EQ(sol.status, SolveStatus::kUncertified);
  EXPECT_FALSE(sol.message.empty());
  EXPECT_EQ(diag.certification, CertificationVerdict::kFailed);
  EXPECT_EQ(injector.faults_injected(),
            static_cast<int>(diag.attempts.size()));
  for (const SolveAttempt& attempt : diag.attempts) {
    EXPECT_FALSE(attempt.certified);
  }
}

TEST(SolveRobust, CertifyNoneTrustsTheSolverOutput) {
  // kNone exists for benchmarks; it must pass corrupted answers through
  // untouched — which is exactly why production callers never use it.
  const Graph g = diamond();
  FaultInjector injector(13);
  SolveOptions options;
  options.certify = CertifyLevel::kNone;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  EXPECT_EQ(injector.faults_injected(), 1);
  EXPECT_TRUE(sol.optimal());  // The corruption went undetected by design.
  EXPECT_EQ(diag.certification, CertificationVerdict::kNotRun);
}

// ---------------------------------------------------------------------
// Retry: transient faults healed by re-running the same solver

TEST(SolveRobust, RetryHealsTransientFaultsAcrossSeeds) {
  // Seeded sweep: every seed injects one transient fault into the only
  // solver in the chain. With no fallback available, only the retry can
  // heal it — and it must, with zero escapes (a corrupted answer
  // returned as optimal) across the whole sweep.
  const Graph g = diamond();
  const Cost reference = solve(g).cost;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    FaultInjector injector(seed);  // Corrupts the first optimal answer.
    SolveOptions options;
    options.chain = {SolverKind::kNetworkSimplex};
    options.max_retries_per_solver = 2;
    options.post_solve_hook = injector.hook();
    SolveDiagnostics diag;
    const FlowSolution sol = solve_robust(g, options, &diag);
    ASSERT_EQ(injector.faults_injected(), 1) << "seed " << seed;
    ASSERT_TRUE(sol.optimal()) << "seed " << seed << ": " << diag.summary();
    EXPECT_EQ(sol.cost, reference) << "seed " << seed;
    EXPECT_EQ(diag.certification, CertificationVerdict::kPassed);
    EXPECT_EQ(diag.retries, 1) << "seed " << seed;
    ASSERT_EQ(diag.attempts.size(), 2u);
    EXPECT_EQ(diag.attempts[0].retry, 0);
    EXPECT_FALSE(diag.attempts[0].certified);
    EXPECT_EQ(diag.attempts[1].retry, 1);
    EXPECT_TRUE(diag.attempts[1].certified);
    EXPECT_EQ(diag.attempts[1].solver, SolverKind::kNetworkSimplex);
    EXPECT_NE(diag.summary().find("retries=1"), std::string::npos);
  }
}

TEST(SolveRobust, PersistentFaultExhaustsRetriesThenFallsThrough) {
  // The fault outlives the retry budget of the first solver; the chain
  // must still recover via the next solver, and the retry accounting
  // must show the exhausted attempts.
  const Graph g = diamond();
  const Cost reference = solve(g).cost;
  FaultInjectorOptions fopts;
  fopts.max_faulty_attempts = 3;  // Primary + both retries corrupted.
  FaultInjector injector(9, fopts);
  SolveOptions options;
  options.chain = {SolverKind::kNetworkSimplex,
                   SolverKind::kSuccessiveShortestPaths};
  options.max_retries_per_solver = 2;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  ASSERT_TRUE(sol.optimal()) << diag.summary();
  EXPECT_EQ(sol.cost, reference);
  EXPECT_EQ(diag.retries, 2);
  ASSERT_EQ(diag.attempts.size(), 4u);  // 3 corrupted + 1 clean.
  EXPECT_EQ(diag.attempts[2].retry, 2);
  EXPECT_EQ(diag.attempts[3].solver,
            SolverKind::kSuccessiveShortestPaths);
  EXPECT_TRUE(diag.attempts[3].certified);
}

TEST(SolveRobust, RetryBackoffStaysDeterministicAndBounded) {
  // A nonzero backoff must not change the verdict, and the whole solve
  // must respect the total budget even while sleeping between retries.
  const Graph g = diamond();
  FaultInjector injector(3);
  SolveOptions options;
  options.chain = {SolverKind::kNetworkSimplex};
  options.max_retries_per_solver = 1;
  options.retry_backoff_seconds = 1e-4;
  options.retry_seed = 42;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  ASSERT_TRUE(sol.optimal()) << diag.summary();
  EXPECT_EQ(diag.retries, 1);
}

// ---------------------------------------------------------------------
// Circuit breaker: persistent faults stop burning solves

TEST(CircuitBreakerTest, OpensAtThresholdAndResets) {
  CircuitBreaker breaker(2);
  EXPECT_TRUE(breaker.allow(SolverKind::kNetworkSimplex));
  breaker.record_failure(SolverKind::kNetworkSimplex);
  EXPECT_TRUE(breaker.allow(SolverKind::kNetworkSimplex));
  breaker.record_failure(SolverKind::kNetworkSimplex);
  EXPECT_FALSE(breaker.allow(SolverKind::kNetworkSimplex));
  EXPECT_TRUE(breaker.allow(SolverKind::kSuccessiveShortestPaths));
  ASSERT_EQ(breaker.open_solvers().size(), 1u);
  EXPECT_EQ(breaker.open_solvers()[0],
            to_string(SolverKind::kNetworkSimplex));
  breaker.record_success(SolverKind::kNetworkSimplex);
  EXPECT_TRUE(breaker.allow(SolverKind::kNetworkSimplex));
  breaker.record_failure(SolverKind::kCycleCanceling);
  breaker.record_failure(SolverKind::kCycleCanceling);
  breaker.reset();
  EXPECT_TRUE(breaker.allow(SolverKind::kCycleCanceling));
  EXPECT_TRUE(breaker.open_solvers().empty());
}

TEST(SolveRobust, PersistentFaultTripsBreakerAndIsSkippedInSameRun) {
  // One solve under a persistently-faulty primary trips its breaker
  // (threshold consecutive certification failures); the next solve of
  // the same run skips that solver outright instead of rediscovering
  // the fault, and records the skip in the diagnostics.
  const Graph g = diamond();
  CircuitBreaker breaker(2);
  FaultInjectorOptions fopts;
  fopts.max_faulty_attempts = 2;  // Primary + its retry, both corrupted.
  FaultInjector injector(5, fopts);
  SolveOptions options;
  options.chain = {SolverKind::kNetworkSimplex,
                   SolverKind::kSuccessiveShortestPaths};
  options.max_retries_per_solver = 1;
  options.breaker = &breaker;
  options.post_solve_hook = injector.hook();
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  ASSERT_TRUE(sol.optimal()) << diag.summary();
  EXPECT_TRUE(breaker.open(SolverKind::kNetworkSimplex));
  EXPECT_FALSE(breaker.open(SolverKind::kSuccessiveShortestPaths));

  SolveOptions clean = options;
  clean.post_solve_hook = SolveOptions::SolutionHook{};
  SolveDiagnostics diag2;
  const FlowSolution sol2 = solve_robust(g, clean, &diag2);
  ASSERT_TRUE(sol2.optimal()) << diag2.summary();
  EXPECT_EQ(diag2.solver_used, SolverKind::kSuccessiveShortestPaths);
  ASSERT_EQ(diag2.breaker_skips.size(), 1u);
  EXPECT_EQ(diag2.breaker_skips[0],
            to_string(SolverKind::kNetworkSimplex));
  EXPECT_EQ(diag2.attempts.size(), 1u);
  EXPECT_NE(diag2.summary().find("breaker-skipped"), std::string::npos);
}

TEST(SolveRobust, EveryBreakerOpenSurfacesLoudly) {
  // A chain whose every entry is circuit-broken must fail loud: no
  // solver ran, so nothing can be certified or trusted.
  const Graph g = diamond();
  CircuitBreaker breaker(1);
  for (SolverKind kind :
       {SolverKind::kSuccessiveShortestPaths, SolverKind::kCycleCanceling,
        SolverKind::kNetworkSimplex, SolverKind::kCostScaling}) {
    breaker.record_failure(kind);
  }
  SolveOptions options;
  options.breaker = &breaker;
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, options, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kUncertified);
  EXPECT_NE(sol.message.find("circuit-broken"), std::string::npos);
  EXPECT_TRUE(diag.attempts.empty());
  EXPECT_EQ(diag.breaker_skips.size(), 3u);  // The default chain.
  EXPECT_EQ(diag.certification, CertificationVerdict::kNotRun);
}

TEST(FaultInjection, DeterministicInTheSeed) {
  const Graph g = diamond();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FlowSolution a = solve(g);
    FlowSolution b = solve(g);
    FaultInjector ia(seed);
    FaultInjector ib(seed);
    ia.perturb(g, a);
    ib.perturb(g, b);
    ASSERT_EQ(ia.log(), ib.log()) << "seed " << seed;
    EXPECT_EQ(a.arc_flow, b.arc_flow) << "seed " << seed;
    EXPECT_EQ(a.cost, b.cost) << "seed " << seed;
  }
}

TEST(FaultInjection, EveryFaultBreaksCertification) {
  const Graph g = diamond();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    FlowSolution sol = solve(g);
    ASSERT_TRUE(sol.optimal());
    FaultInjector injector(seed);
    injector.perturb(g, sol);
    ASSERT_EQ(injector.faults_injected(), 1) << "seed " << seed;
    // The perturbed answer must flunk the feasibility-level checks:
    // either the flow itself is invalid or the reported cost lies.
    const CheckResult feasible = check_feasible(g, sol.arc_flow);
    Cost actual = 0;
    const bool cost_ok = checked_flow_cost(g, sol.arc_flow, actual) &&
                         actual == sol.cost;
    EXPECT_FALSE(feasible.ok && cost_ok)
        << "seed " << seed << ": undetectable fault "
        << (injector.log().empty() ? "?" : injector.log().front());
  }
}

// ---------------------------------------------------------------------
// Overflow-checked arithmetic (satellite: checked_add / checked_mul)

TEST(CheckedArithmetic, AddAndMulDetectOverflow) {
  const Cost max = std::numeric_limits<Cost>::max();
  Cost out = 0;
  EXPECT_TRUE(checked_add(max - 1, 1, out));
  EXPECT_EQ(out, max);
  EXPECT_FALSE(checked_add(max, 1, out));
  EXPECT_FALSE(checked_add(-max, -2, out));
  EXPECT_TRUE(checked_mul(max / 2, 2, out));
  EXPECT_FALSE(checked_mul(max / 2, 3, out));
  EXPECT_FALSE(checked_mul(max, max, out));
  EXPECT_TRUE(checked_mul(0, max, out));
  EXPECT_EQ(out, 0);
}

TEST(CheckedArithmetic, SaturateCostClampsToTheSafeRange) {
  EXPECT_EQ(saturate_cost(0), 0);
  EXPECT_EQ(saturate_cost(kInfCost), kInfCost);
  EXPECT_EQ(saturate_cost(kInfCost + 1), kInfCost);
  EXPECT_EQ(saturate_cost(std::numeric_limits<Cost>::max()), kInfCost);
  EXPECT_EQ(saturate_cost(-kInfCost - 1), -kInfCost);
  EXPECT_EQ(saturate_cost(std::numeric_limits<Cost>::min()), -kInfCost);
}

TEST(CheckedArithmetic, FlowCostSaturatesNearInt64Max) {
  // Two arcs whose exact cost sum would overflow int64.
  Graph g(2);
  const Cost huge = std::numeric_limits<Cost>::max() / 2;
  g.add_arc(0, 1, 2, huge);
  g.add_arc(0, 1, 2, huge);
  const std::vector<Flow> flow = {2, 2};  // 2*huge + 2*huge overflows.
  Cost total = 0;
  EXPECT_FALSE(checked_flow_cost(g, flow, total));
  EXPECT_EQ(flow_cost(g, flow), kInfCost);  // Saturates, no UB.

  const std::vector<Flow> negative = {-2, -2};
  EXPECT_EQ(flow_cost(g, negative), -kInfCost);

  const std::vector<Flow> wrong_size = {1};
  EXPECT_FALSE(checked_flow_cost(g, wrong_size, total));
  EXPECT_EQ(flow_cost(g, wrong_size), 0);

  const std::vector<Flow> fits = {1, 0};
  EXPECT_TRUE(checked_flow_cost(g, fits, total));
  EXPECT_EQ(total, huge);
  EXPECT_EQ(flow_cost(g, fits), huge);
}

TEST(CheckedArithmetic, QuantizerSaturatesOutOfRangeEnergies) {
  const energy::Quantizer q(1e-6);
  EXPECT_EQ(q.quantize(1e60), kInfCost);
  EXPECT_EQ(q.quantize(-1e60), -kInfCost);
  EXPECT_EQ(q.quantize(std::numeric_limits<double>::infinity()), kInfCost);
  EXPECT_EQ(q.quantize(-std::numeric_limits<double>::infinity()),
            -kInfCost);
  EXPECT_EQ(q.quantize(std::numeric_limits<double>::quiet_NaN()), kInfCost);
  EXPECT_EQ(q.quantize(2.0), 2000000);  // Ordinary values unaffected.
}

}  // namespace
}  // namespace lera::netflow
