#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "alloc/allocator.hpp"
#include "ir/parser.hpp"
#include "sched/schedule.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/problem_io.hpp"

/// The data/ corpus: every shipped .lt instance must parse, allocate
/// and reproduce the behaviour of its programmatic twin (where one
/// exists). Failing here means the on-disk examples drifted from the
/// library.

namespace lera::workloads {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path
                         << " (run tests from the repo root's build dir)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string corpus(const std::string& name) {
  // CTest runs with CWD = build/tests; the corpus sits at the repo root.
  for (const char* prefix : {"../../data/", "../data/", "data/"}) {
    std::ifstream probe(prefix + name);
    if (probe.good()) return read_file(prefix + name);
  }
  ADD_FAILURE() << "cannot locate data/" << name;
  return {};
}

TEST(Corpus, AllInstancesParseAndAllocate) {
  for (const char* name :
       {"figure3.lt", "figure4.lt", "figure1c.lt", "spill_demo.lt"}) {
    const std::string text = corpus(name);
    if (text.empty()) continue;
    const ProblemParseResult parsed = parse_problem(text);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.error;
    const alloc::AllocationResult r = alloc::allocate(*parsed.problem);
    EXPECT_TRUE(r.feasible) << name << ": " << r.message;
    EXPECT_TRUE(
        alloc::validate_assignment(*parsed.problem, r.assignment).empty())
        << name;
  }
}

TEST(Corpus, Figure3FileMatchesProgrammaticInstance) {
  const std::string text = corpus("figure3.lt");
  if (text.empty()) return;
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const ProblemParseResult parsed = parse_problem(text, params);
  ASSERT_TRUE(parsed.ok());
  const alloc::AllocationResult from_file = alloc::allocate(*parsed.problem);
  const alloc::AllocationResult programmatic =
      alloc::allocate(figure3_problem(params));
  ASSERT_TRUE(from_file.feasible && programmatic.feasible);
  EXPECT_NEAR(from_file.activity_energy.total(),
              programmatic.activity_energy.total(), 1e-9);
}

TEST(Corpus, Figure1cFileHasForcedSegments) {
  const std::string text = corpus("figure1c.lt");
  if (text.empty()) return;
  const ProblemParseResult parsed = parse_problem(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  int forced = 0;
  for (const auto& seg : parsed.problem->segments) {
    forced += seg.forced_register ? 1 : 0;
  }
  // b, e (both halves) and c's first segment — as in the paper's figure.
  EXPECT_GE(forced, 3);
}

TEST(Corpus, KernelFileParsesSchedulesAndAllocates) {
  const std::string text = corpus("complex_mac.lera");
  if (text.empty()) return;
  const ir::ParseResult parsed = ir::parse_block(text, "complex_mac");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ir::BasicBlock& bb = *parsed.block;
  EXPECT_TRUE(bb.verify().empty());
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  const alloc::AllocationProblem p =
      alloc::make_problem_from_block(bb, s, 4, params);
  const alloc::AllocationResult r = alloc::allocate(p);
  EXPECT_TRUE(r.feasible) << r.message;
}

}  // namespace
}  // namespace lera::workloads
