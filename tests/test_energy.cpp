#include <gtest/gtest.h>

#include "energy/activity.hpp"
#include "energy/params.hpp"
#include "energy/quantize.hpp"
#include "energy/voltage.hpp"

namespace lera::energy {
namespace {

TEST(Params, NominalVoltageNoScaling) {
  EnergyParams p;
  EXPECT_DOUBLE_EQ(p.e_mem_read(), p.mem_read);
  EXPECT_DOUBLE_EQ(p.e_mem_write(), p.mem_write);
  EXPECT_DOUBLE_EQ(p.e_reg_read(), p.reg_read);
  EXPECT_DOUBLE_EQ(p.e_reg_write(), p.reg_write);
}

TEST(Params, QuadraticVoltageScaling) {
  EnergyParams p;
  p.v_mem = 2.5;  // Half of the 5 V nominal -> quarter energy.
  EXPECT_DOUBLE_EQ(p.e_mem_read(), p.mem_read * 0.25);
  EXPECT_DOUBLE_EQ(p.e_mem_write(), p.mem_write * 0.25);
  // Register file unaffected by the memory supply.
  EXPECT_DOUBLE_EQ(p.e_reg_read(), p.reg_read);
}

TEST(Params, TransitionEnergies) {
  EnergyParams p;
  EXPECT_DOUBLE_EQ(p.e_reg_transition(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.e_reg_transition(0.5), 0.5 * p.reg_full_swing);
  EXPECT_DOUBLE_EQ(p.e_mem_transition(1.0), p.mem_full_swing);
}

TEST(Params, PaperEnergyRatios) {
  // The defaults encode the ratios the paper quotes from [14]: memory
  // read 5x, write 10x a 16-bit add, registers about 1x.
  EnergyParams p;
  EXPECT_DOUBLE_EQ(p.mem_read / p.reg_read, 5.0);
  EXPECT_DOUBLE_EQ(p.mem_write / p.reg_write, 10.0);
}

TEST(Quantize, RoundTripsWithinResolution) {
  Quantizer q(1e-6);
  for (double e : {0.0, 1.0, -3.75, 12.345678, 1e6}) {
    EXPECT_NEAR(q.dequantize(q.quantize(e)), e, 1e-6);
  }
}

TEST(Quantize, PreservesOrderingOfDistinctEnergies) {
  Quantizer q(1e-6);
  EXPECT_LT(q.quantize(1.0), q.quantize(1.000002));
  EXPECT_EQ(q.quantize(-2.0), -q.quantize(2.0));
}

TEST(Voltage, NominalDelayIsOne) {
  VoltageModel m;
  EXPECT_NEAR(m.relative_delay(m.v_nominal), 1.0, 1e-12);
}

TEST(Voltage, DelayGrowsAsVoltageDrops) {
  VoltageModel m;
  EXPECT_GT(m.relative_delay(3.0), m.relative_delay(4.0));
  EXPECT_GT(m.relative_delay(2.0), m.relative_delay(3.0));
}

TEST(Voltage, SlowdownInversion) {
  VoltageModel m;
  EXPECT_DOUBLE_EQ(voltage_for_slowdown(1.0, m), m.v_nominal);
  for (double slowdown : {1.5, 2.0, 4.0}) {
    const double v = voltage_for_slowdown(slowdown, m);
    EXPECT_LT(v, m.v_nominal);
    EXPECT_GE(v, m.v_min - 1e-9);
    if (v > m.v_min + 1e-9) {
      EXPECT_NEAR(m.relative_delay(v), slowdown, 1e-6);
    }
  }
}

TEST(Voltage, PaperTable1Range) {
  // The paper scales the memory supply from 5 V towards 2 V between full
  // speed and f/4; the alpha-power model should land in that range.
  VoltageModel m;
  const double v_half = voltage_for_slowdown(2.0, m);
  const double v_quarter = voltage_for_slowdown(4.0, m);
  EXPECT_LT(v_quarter, v_half);
  EXPECT_GT(v_half, 2.0);
  EXPECT_LE(v_quarter, 2.6);
  EXPECT_GE(v_quarter, 1.2);
}

TEST(Voltage, EnergyScaleQuadratic) {
  EXPECT_DOUBLE_EQ(energy_scale(2.5, 5.0), 0.25);
  EXPECT_DOUBLE_EQ(energy_scale(5.0, 5.0), 1.0);
}

TEST(Hamming, FractionBasics) {
  EXPECT_DOUBLE_EQ(hamming_fraction(0, 0, 16), 0.0);
  EXPECT_DOUBLE_EQ(hamming_fraction(0, 0xffff, 16), 1.0);
  EXPECT_DOUBLE_EQ(hamming_fraction(0b1010, 0b0101, 4), 1.0);
  EXPECT_DOUBLE_EQ(hamming_fraction(0b1010, 0b1000, 4), 0.25);
  // Only the low `width` bits matter.
  EXPECT_DOUBLE_EQ(hamming_fraction(0x10000, 0, 16), 0.0);
}

TEST(ActivityMatrix, DefaultsAndSymmetry) {
  ActivityMatrix m(3, 0.4, 0.6);
  EXPECT_DOUBLE_EQ(m.hamming(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(m.hamming(0, 0), 0.0);  // Same variable: no switch.
  EXPECT_DOUBLE_EQ(m.initial(2), 0.6);
  m.set(0, 2, 0.9);
  EXPECT_DOUBLE_EQ(m.hamming(0, 2), 0.9);
  EXPECT_DOUBLE_EQ(m.hamming(2, 0), 0.9);
}

TEST(ActivityMatrix, FromTraceMeasuresMeanHamming) {
  // Two variables over two samples with known bit patterns.
  const std::vector<std::vector<std::int64_t>> trace = {
      {0x0f, 0x0e},  // differ in 1 of 16 bits
      {0x00, 0x03},  // differ in 2 of 16 bits
  };
  const ActivityMatrix m = ActivityMatrix::from_trace(trace, {16, 16});
  EXPECT_NEAR(m.hamming(0, 1), (1.0 / 16 + 2.0 / 16) / 2, 1e-12);
  // initial = mean weight of own bits: v0 has 4 then 0 set bits.
  EXPECT_NEAR(m.initial(0), (4.0 / 16 + 0.0) / 2, 1e-12);
}

TEST(ActivityMatrix, EmptyTraceFallsBackToDefaults) {
  const ActivityMatrix m = ActivityMatrix::from_trace({}, {16, 16});
  EXPECT_DOUBLE_EQ(m.hamming(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.initial(0), 0.5);
}

}  // namespace
}  // namespace lera::energy
