#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "codegen/codegen.hpp"
#include "ir/eval.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

/// The §5 instruction-mapping stage, proven end to end: for every
/// kernel and random block, the emitted load/store/compute sequence is
/// *executed* on the register+memory machine and must produce exactly
/// the outputs of the IR interpreter, while its memory traffic must
/// equal the energy model's access counts.

namespace lera::codegen {
namespace {

struct Lowered {
  alloc::AllocationProblem problem;
  alloc::AllocationResult result;
  alloc::MemoryLayout layout;
  Program program;
};

Lowered lower(const ir::BasicBlock& bb, const sched::Schedule& s, int R,
              int access_period = 1) {
  Lowered out;
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  split.access.period = access_period;
  out.problem = alloc::make_problem_from_block(bb, s, R, params, {}, split);
  out.result = alloc::allocate(out.problem);
  EXPECT_TRUE(out.result.feasible) << out.result.message;
  out.layout =
      alloc::optimize_memory_layout(out.problem, out.result.assignment);
  EXPECT_TRUE(out.layout.feasible);
  out.program =
      emit(bb, s, out.problem, out.result.assignment, out.layout);
  return out;
}

void expect_executes_like_ir(const ir::BasicBlock& bb,
                             const Lowered& lowered, std::uint64_t seed) {
  const auto inputs = workloads::random_inputs(bb, 6, seed);
  for (const auto& row : inputs) {
    const auto env = ir::evaluate(bb, row);
    std::vector<std::int64_t> expected;
    for (const ir::Operation& op : bb.ops()) {
      if (op.opcode == ir::Opcode::kOutput) {
        expected.push_back(env[static_cast<std::size_t>(op.operands[0])]);
      }
    }
    EXPECT_EQ(run(lowered.program, row), expected)
        << bb.name() << "\n" << lowered.program.to_string();
  }
}

TEST(Codegen, AllRegisterProgramHasNoMemoryTraffic) {
  const ir::BasicBlock bb = workloads::make_fft_butterfly();
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  alloc::AllocationProblem p = alloc::make_problem_from_block(bb, s, 1,
                                                              params);
  p.num_registers = p.max_density();
  const alloc::AllocationResult r = alloc::allocate(p);
  ASSERT_TRUE(r.feasible);
  const alloc::MemoryLayout layout =
      alloc::optimize_memory_layout(p, r.assignment);
  const Program program = emit(bb, s, p, r.assignment, layout);
  EXPECT_EQ(program.loads, 0);
  EXPECT_EQ(program.stores, 0);
  Lowered lowered{p, r, layout, program};
  expect_executes_like_ir(bb, lowered, 3);
}

TEST(Codegen, KernelsExecuteCorrectlyUnderPressure) {
  int checked = 0;
  for (const ir::BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_iir_biquad(),
        workloads::make_elliptic_wave_filter(),
        workloads::make_fft_butterfly(), workloads::make_dct4(),
        workloads::make_lms(3), workloads::make_viterbi_acs(),
        workloads::make_goertzel(3), workloads::make_conv3x3()}) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    alloc::AllocationProblem probe =
        alloc::make_problem_from_block(bb, s, 1, params);
    for (int r :
         {1, std::max(1, probe.max_density() / 2), probe.max_density()}) {
      const Lowered lowered = lower(bb, s, r);
      expect_executes_like_ir(bb, lowered, 7 + r);
      ++checked;
    }
  }
  EXPECT_GE(checked, 27);
}

TEST(Codegen, TrafficMatchesEnergyModelCounts) {
  for (const ir::BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_elliptic_wave_filter(),
        workloads::make_rsp(3)}) {
    const sched::Schedule s = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    alloc::AllocationProblem probe =
        alloc::make_problem_from_block(bb, s, 1, params);
    for (int r : {1, 2, std::max(1, probe.max_density() / 2)}) {
      const Lowered lowered = lower(bb, s, r);
      EXPECT_EQ(lowered.program.loads, lowered.result.stats.mem_reads)
          << bb.name() << " R=" << r;
      EXPECT_EQ(lowered.program.stores, lowered.result.stats.mem_writes)
          << bb.name() << " R=" << r;
    }
  }
}

TEST(Codegen, RestrictedAccessEmitsReloads) {
  const ir::BasicBlock bb = workloads::make_fir(6);
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  split.access.period = 2;
  alloc::AllocationProblem probe =
      alloc::make_problem_from_block(bb, s, 1, params, {}, split);
  probe.num_registers = std::max(2, probe.max_density() / 2);
  const alloc::AllocationResult r = alloc::allocate(probe);
  if (!r.feasible) GTEST_SKIP() << r.message;
  const alloc::MemoryLayout layout =
      alloc::optimize_memory_layout(probe, r.assignment);
  const Program program = emit(bb, s, probe, r.assignment, layout);
  Lowered lowered{probe, r, layout, program};
  expect_executes_like_ir(bb, lowered, 11);
  EXPECT_EQ(program.loads, r.stats.mem_reads);
  EXPECT_EQ(program.stores, r.stats.mem_writes);
}

TEST(Codegen, RandomBlocksFuzz) {
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    workloads::RandomDfgOptions dopts;
    dopts.num_ops = 15 + static_cast<int>(seed % 20);
    const ir::BasicBlock bb = workloads::random_dfg(seed, dopts);
    const sched::Schedule s = sched::list_schedule(
        bb, {1 + static_cast<int>(seed % 3), 1});
    energy::EnergyParams params;
    lifetime::SplitOptions split;
    split.access.period = 1 + static_cast<int>(seed % 2);
    alloc::AllocationProblem p =
        alloc::make_problem_from_block(bb, s, 1, params, {}, split);
    p.num_registers = std::max(1, p.max_density() / 2);
    const alloc::AllocationResult r = alloc::allocate(p);
    if (!r.feasible) continue;
    const alloc::MemoryLayout layout =
        alloc::optimize_memory_layout(p, r.assignment);
    ASSERT_TRUE(layout.feasible);
    const Program program = emit(bb, s, p, r.assignment, layout);
    const Lowered lowered{p, r, layout, program};
    expect_executes_like_ir(bb, lowered, seed);
    EXPECT_EQ(program.loads, r.stats.mem_reads) << "seed " << seed;
    EXPECT_EQ(program.stores, r.stats.mem_writes) << "seed " << seed;
  }
}

TEST(Codegen, ListingMentionsEveryInstructionKind) {
  const ir::BasicBlock bb = workloads::make_fir(8);
  const sched::Schedule s = sched::list_schedule(bb, {2, 1});
  const Lowered lowered = lower(bb, s, 2);
  const std::string listing = lowered.program.to_string();
  EXPECT_NE(listing.find("mac"), std::string::npos);
  int computes = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (!ir::is_source(op.opcode) && op.opcode != ir::Opcode::kOutput) {
      ++computes;
    }
  }
  // Every real operation becomes an instruction; spills add more.
  EXPECT_GE(lowered.program.code_size(), computes);
}

}  // namespace
}  // namespace lera::codegen
