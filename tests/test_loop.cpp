#include <gtest/gtest.h>

#include <map>

#include "alloc/allocator.hpp"
#include "ir/eval.hpp"
#include "ir/loop.hpp"
#include "sched/schedule.hpp"

namespace lera::ir {
namespace {

/// acc' = acc + x*c : a one-tap MAC loop with a carried accumulator.
LoopKernel mac_loop() {
  LoopKernel kernel;
  BasicBlock& bb = kernel.body;
  const ValueId acc = bb.input("acc");
  const ValueId x = bb.input("x");
  const ValueId c = bb.constant(3, "c");
  const ValueId next = bb.emit(Opcode::kMac, {x, c, acc}, "acc_next");
  bb.output(next);
  kernel.carried.push_back({next, acc});
  return kernel;
}

/// Two-tap sliding-window filter: carried delay element plus streaming
/// input; y = x*2 + z1*5, z1' = x.
LoopKernel fir2_loop() {
  LoopKernel kernel;
  BasicBlock& bb = kernel.body;
  const ValueId z1 = bb.input("z1");
  const ValueId x = bb.input("x");
  const ValueId c0 = bb.constant(2, "c0");
  const ValueId c1 = bb.constant(5, "c1");
  const ValueId p0 = bb.emit(Opcode::kMul, {x, c0}, "p0");
  const ValueId y = bb.emit(Opcode::kMac, {z1, c1, p0}, "y");
  bb.output(y);
  kernel.carried.push_back({x, z1});
  return kernel;
}

TEST(Loop, VerifyAcceptsWellFormedKernels) {
  EXPECT_TRUE(mac_loop().verify().empty()) << mac_loop().verify();
  EXPECT_TRUE(fir2_loop().verify().empty()) << fir2_loop().verify();
}

TEST(Loop, VerifyRejectsBadCarried) {
  LoopKernel kernel = mac_loop();
  kernel.carried.push_back({0, 99});  // Unknown target.
  EXPECT_FALSE(kernel.verify().empty());

  LoopKernel dup = mac_loop();
  dup.carried.push_back(dup.carried[0]);  // Same target twice.
  EXPECT_FALSE(dup.verify().empty());
}

TEST(Loop, VerifyRejectsCarriedInvariantClash) {
  LoopKernel kernel = mac_loop();
  kernel.invariant_inputs.push_back(kernel.carried[0].second);
  EXPECT_FALSE(kernel.verify().empty());
}

TEST(Loop, UnrollFactorOneMatchesBodyShape) {
  const LoopKernel kernel = mac_loop();
  const BasicBlock unrolled = unroll(kernel, 1);
  EXPECT_TRUE(unrolled.verify().empty());
  // Same compute ops, one extra output for the carried value.
  EXPECT_EQ(unrolled.num_ops(), kernel.body.num_ops() + 1);
}

TEST(Loop, UnrolledMacMatchesIteratedSemantics) {
  const LoopKernel kernel = mac_loop();
  const BasicBlock unrolled = unroll(kernel, 4);
  // Inputs in emission order: acc (initial), x, then x@1, x@2, x@3.
  const auto env = evaluate(unrolled, {10, 1, 2, 3, 4});
  // acc = 10 + 3*(1+2+3+4) = 40.
  std::int64_t final_acc = 0;
  for (const Value& v : unrolled.values()) {
    if (v.name == "acc_next@3") final_acc = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(final_acc, 40);
}

TEST(Loop, UnrolledFirMatchesManualIteration) {
  const LoopKernel kernel = fir2_loop();
  const BasicBlock unrolled = unroll(kernel, 3);
  // Inputs: z1 (initial delay), x, x@1, x@2.
  const auto env = evaluate(unrolled, {7, 1, 2, 3});
  // y0 = 1*2 + 7*5 = 37; y1 = 2*2 + 1*5 = 9; y2 = 3*2 + 2*5 = 16.
  std::map<std::string, std::int64_t> named;
  for (const Value& v : unrolled.values()) {
    named[v.name] = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(named.at("y@0"), 37);
  EXPECT_EQ(named.at("y@1"), 9);
  EXPECT_EQ(named.at("y@2"), 16);
}

TEST(Loop, InvariantInputsShared) {
  // Coefficient passed as a data input (tracking loops update it), but
  // invariant across the unrolled iterations.
  LoopKernel kernel;
  BasicBlock& bb = kernel.body;
  const ValueId acc = bb.input("acc");
  const ValueId x = bb.input("x");
  const ValueId c = bb.input("c");
  const ValueId next = bb.emit(Opcode::kMac, {x, c, acc}, "acc_next");
  bb.output(next);
  kernel.carried.push_back({next, acc});
  kernel.invariant_inputs.push_back(c);

  const BasicBlock unrolled = unroll(kernel, 3);
  int c_inputs = 0;
  for (const Value& v : unrolled.values()) {
    if (v.name.rfind("c", 0) == 0) ++c_inputs;
  }
  EXPECT_EQ(c_inputs, 1);  // One shared coefficient input.
  // Inputs: acc, x, c, x@1, x@2.
  const auto env = evaluate(unrolled, {0, 1, 10, 2, 3});
  std::int64_t final_acc = 0;
  for (const Value& v : unrolled.values()) {
    if (v.name == "acc_next@2") final_acc = env[static_cast<std::size_t>(v.id)];
  }
  EXPECT_EQ(final_acc, 10 * (1 + 2 + 3));
}

TEST(Loop, CarriedValuesAreLiveOut) {
  const BasicBlock unrolled = unroll(mac_loop(), 2);
  // acc_next@1 must have a kOutput use (it seeds the next execution).
  for (const Value& v : unrolled.values()) {
    if (v.name == "acc_next@1") {
      bool live_out = false;
      for (OpId use : v.uses) {
        live_out |= unrolled.op(use).opcode == Opcode::kOutput;
      }
      EXPECT_TRUE(live_out);
    }
  }
}

TEST(Loop, UnrolledLoopAllocates) {
  const BasicBlock unrolled = unroll(fir2_loop(), 6);
  const sched::Schedule s = sched::list_schedule(unrolled, {2, 1});
  energy::EnergyParams params;
  const alloc::AllocationProblem p =
      alloc::make_problem_from_block(unrolled, s, 3, params);
  const alloc::AllocationResult r = alloc::allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(alloc::validate_assignment(p, r.assignment).empty());
}

TEST(Loop, CarriedChainStaysInRegistersGivenCapacity) {
  // With a register budget matching the peak density, the allocator
  // keeps the whole unrolled computation — in particular the carried
  // accumulator chain — out of memory entirely, at any unroll factor.
  energy::EnergyParams params;
  for (int factor : {1, 2, 4, 8}) {
    const BasicBlock unrolled = unroll(mac_loop(), factor);
    const sched::Schedule s = sched::list_schedule(unrolled, {2, 1});
    alloc::AllocationProblem p =
        alloc::make_problem_from_block(unrolled, s, 1, params);
    p.num_registers = p.max_density();
    const alloc::AllocationResult r = alloc::allocate(p);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.stats.mem_accesses(), 0) << "factor " << factor;
  }
}

}  // namespace
}  // namespace lera::ir
