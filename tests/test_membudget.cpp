#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/flow_graph.hpp"
#include "engine/engine.hpp"
#include "netflow/fault_injection.hpp"
#include "netflow/membudget.hpp"
#include "netflow/netflow.hpp"
#include "server/server.hpp"
#include "server/stream.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/random_gen.hpp"

/// Memory-budgeted solving, end to end: the MemoryBudget ledger
/// (chaining, all-or-nothing charges, peak tracking), the charge/release
/// identity across the robust solve path, the O(1) footprint estimator's
/// calibration against measured workspace bytes, the seeded OOM
/// failpoint (every allocation-failure path must unwind into a typed
/// kMemoryExceeded verdict with balanced accounting), and the
/// degradation contract through the Engine and the server's typed
/// memory_infeasible shed.

namespace lera::netflow {
namespace {

using workloads::RandomFlowOptions;
using workloads::random_flow_problem;

// ---------------------------------------------------------------------
// MemoryBudget ledger mechanics

TEST(MemoryBudget, InertDefaultChargesFreely) {
  MemoryBudget b;
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(b.try_charge(1 << 30));
  EXPECT_EQ(b.used(), 0);
  EXPECT_EQ(b.peak(), 0);
  EXPECT_FALSE(b.would_deny(1 << 30));
}

TEST(MemoryBudget, ChargeReleasePeakAndDenials) {
  MemoryBudget b = MemoryBudget::make(1000);
  ASSERT_TRUE(b.valid());
  EXPECT_TRUE(b.try_charge(400));
  EXPECT_EQ(b.used(), 400);
  EXPECT_EQ(b.peak(), 400);
  EXPECT_EQ(b.remaining(), 600);
  EXPECT_TRUE(b.would_deny(700));
  EXPECT_FALSE(b.try_charge(700));  // 400 + 700 > 1000.
  EXPECT_EQ(b.used(), 400);        // Refused charge fully rolled back.
  EXPECT_EQ(b.denials(), 1);
  EXPECT_TRUE(b.try_charge(600));
  EXPECT_EQ(b.used(), 1000);
  b.release(1000);
  EXPECT_EQ(b.used(), 0);
  EXPECT_EQ(b.peak(), 1000);  // High-water mark survives the release.
}

TEST(MemoryBudget, TrackOnlyNeverRefuses) {
  MemoryBudget b = MemoryBudget::make(0);
  EXPECT_TRUE(b.try_charge(1 << 30));
  EXPECT_TRUE(b.try_charge(1 << 30));
  EXPECT_EQ(b.used(), std::int64_t{2} << 30);
  EXPECT_EQ(b.denials(), 0);
  EXPECT_FALSE(b.would_deny(1 << 30));
  b.release(std::int64_t{2} << 30);
  EXPECT_EQ(b.used(), 0);
}

TEST(MemoryBudget, ChildChargesChainAllOrNothing) {
  MemoryBudget parent = MemoryBudget::make(1000);
  MemoryBudget tight = parent.child(500);

  // Refused at the child level: nothing sticks anywhere.
  EXPECT_FALSE(tight.try_charge(600));
  EXPECT_EQ(tight.used(), 0);
  EXPECT_EQ(parent.used(), 0);
  EXPECT_EQ(tight.denials(), 1);
  EXPECT_EQ(parent.denials(), 0);

  // Accepted charges show up at every level.
  EXPECT_TRUE(tight.try_charge(400));
  EXPECT_EQ(tight.used(), 400);
  EXPECT_EQ(parent.used(), 400);

  // Refused at the *parent* level: the child's provisional charge is
  // rolled back and the refusing level's denial counter ticks.
  MemoryBudget sibling = parent.child(0);
  EXPECT_FALSE(sibling.try_charge(700));  // 400 + 700 > 1000 at parent.
  EXPECT_EQ(sibling.used(), 0);
  EXPECT_EQ(parent.used(), 400);
  EXPECT_EQ(parent.denials(), 1);

  // remaining() reports the tightest headroom across the chain.
  EXPECT_EQ(tight.remaining(), 100);    // min(500-400, 1000-400).
  EXPECT_EQ(sibling.remaining(), 600);  // Only the parent caps it.

  tight.release(400);
  EXPECT_EQ(parent.used(), 0);
}

TEST(MemoryBudget, BudgetChargeIsRaii) {
  MemoryBudget b = MemoryBudget::make(1000);
  {
    BudgetCharge c(b, 800);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.bytes(), 800);
    EXPECT_EQ(b.used(), 800);

    BudgetCharge denied(b, 800);
    EXPECT_FALSE(denied.ok());
    EXPECT_EQ(denied.bytes(), 0);
    EXPECT_EQ(b.used(), 800);

    BudgetCharge moved = std::move(c);
    EXPECT_TRUE(moved.ok());
    EXPECT_FALSE(c.ok());  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(b.used(), 800);
  }
  EXPECT_EQ(b.used(), 0);  // Scope exit released exactly once.
  EXPECT_EQ(b.peak(), 800);
}

// ---------------------------------------------------------------------
// Charge/release identity across the robust solve path

// Budgeted solves must leave no residual charge behind: every byte
// charged before an attempt is released when the attempt ends, success
// or failure, and the high-water mark only ever rises.
TEST(MemBudgetSolve, TwoHundredSeedSweepBalancesTheLedger) {
  MemoryBudget root = MemoryBudget::make(0);  // Track-only: never denies.
  std::int64_t last_peak = 0;
  int optimal = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    RandomFlowOptions opts;
    opts.min_cost = -20;
    opts.lower_bound_prob = seed % 3 == 0 ? 0.3 : 0.0;
    const Graph g = random_flow_problem(seed, opts);

    SolveOptions solve_opts;
    solve_opts.memory_budget = root;
    SolveDiagnostics diag;
    const FlowSolution sol = solve_robust(g, solve_opts, &diag);
    if (sol.optimal()) ++optimal;

    ASSERT_EQ(root.used(), 0) << "seed " << seed
                              << ": residual bytes after the solve";
    ASSERT_GE(root.peak(), last_peak) << "seed " << seed;
    last_peak = root.peak();
    ASSERT_EQ(root.denials(), 0) << "seed " << seed;
    ASSERT_GT(diag.memory_estimated_bytes, 0) << "seed " << seed;
    ASSERT_FALSE(diag.memory_hit) << "seed " << seed;
  }
  EXPECT_GT(optimal, 100);  // The family is mostly feasible.
  EXPECT_GT(last_peak, 0);
}

// ---------------------------------------------------------------------
// Footprint estimator calibration

// The O(1) estimate must stay within 2x of the bytes a solve actually
// retains (workspace scratch + residual), per backend, across the
// bench_solvers instance family shapes.
TEST(MemBudgetEstimate, WithinTwoXOfMeasuredWorkspaceBytes) {
  const SolverKind kinds[] = {
      SolverKind::kSuccessiveShortestPaths, SolverKind::kNetworkSimplex,
      SolverKind::kCostScaling, SolverKind::kCycleCanceling};
  for (const int nodes : {12, 32, 64}) {
    RandomFlowOptions opts;
    opts.num_nodes = nodes;
    opts.num_arcs = nodes * 4;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      for (const SolverKind kind : kinds) {
        const Graph g = random_flow_problem(seed, opts);
        const std::int64_t estimate =
            estimate_solver_bytes(measure_shape(g), kind);
        SolverWorkspace ws;
        const FlowSolution sol = solve(g, kind, nullptr, &ws);
        ASSERT_NE(sol.status, SolveStatus::kMemoryExceeded);
        // The estimate covers the graph's lazily built CSR adjacency
        // too; the workspace footprint does not (the cache lives on
        // the Graph), so count it with the same formula the graph's
        // alloc_tick charge uses.
        const std::int64_t csr_bytes = static_cast<std::int64_t>(
            (2 * (static_cast<std::size_t>(g.num_nodes()) + 1) +
             4 * static_cast<std::size_t>(g.num_arcs())) *
            sizeof(ArcId));
        const std::int64_t measured = ws.footprint_bytes() + csr_bytes;
        ASSERT_GT(measured, 0)
            << to_string(kind) << " nodes=" << nodes << " seed=" << seed;
        // Within 2x either way, with a small additive cushion for the
        // estimator's fixed slack on tiny instances.
        EXPECT_LE(measured, 2 * estimate + 8192)
            << to_string(kind) << " nodes=" << nodes << " seed=" << seed;
        EXPECT_LE(estimate, 2 * measured + 8192)
            << to_string(kind) << " nodes=" << nodes << " seed=" << seed;
      }
    }
  }
}

TEST(MemBudgetEstimate, FootprintIsTheWorstBackend) {
  const Graph g = random_flow_problem(7);
  const InstanceShape shape = measure_shape(g);
  const std::int64_t footprint = estimate_footprint(shape);
  for (const SolverKind kind :
       {SolverKind::kSuccessiveShortestPaths, SolverKind::kNetworkSimplex,
        SolverKind::kCostScaling, SolverKind::kCycleCanceling,
        SolverKind::kAuto}) {
    EXPECT_GE(footprint, estimate_solver_bytes(shape, kind))
        << to_string(kind);
  }
}

// ---------------------------------------------------------------------
// Budget-refused attempts surface as kMemoryExceeded

TEST(MemBudgetSolve, TinyCapRefusesEveryAttemptTyped) {
  const Graph g = random_flow_problem(3);
  SolveOptions opts;
  opts.memory_budget = MemoryBudget::make(64);  // Below any estimate.
  SolverWorkspace ws;
  opts.workspace = &ws;
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, opts, &diag);
  EXPECT_EQ(sol.status, SolveStatus::kMemoryExceeded);
  EXPECT_FALSE(sol.message.empty());
  EXPECT_TRUE(diag.memory_hit);
  ASSERT_FALSE(diag.attempts.empty());
  for (const SolveAttempt& a : diag.attempts) {
    EXPECT_EQ(a.status, SolveStatus::kMemoryExceeded);
  }
  EXPECT_GE(ws.counters.mem_denials, 1);
  EXPECT_EQ(ws.counters.mem_charged_bytes, 0);
  EXPECT_EQ(opts.memory_budget.used(), 0);
  EXPECT_GE(opts.memory_budget.denials(), 1);
}

// ---------------------------------------------------------------------
// OOM failpoint: every allocation-failure path unwinds typed

// Sweep every allocation site each backend visits: a bad_alloc thrown
// at any of them must surface as kMemoryExceeded — never a crash, and
// never a silently wrong answer.
TEST(OomFailpoint, SiteSweepOverAllBackendsUnwindsTyped) {
  const SolverKind kinds[] = {
      SolverKind::kSuccessiveShortestPaths, SolverKind::kNetworkSimplex,
      SolverKind::kCostScaling, SolverKind::kCycleCanceling};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RandomFlowOptions opts;
    opts.min_cost = -15;
    for (const SolverKind kind : kinds) {
      // Dry run: count the sites this exact solve visits. A fresh graph
      // per solve keeps CSR-build sites in the count.
      std::int64_t sites = 0;
      {
        const Graph g = random_flow_problem(seed, opts);
        OomFailpoint dry({});
        const FlowSolution sol = solve(g, kind);
        ASSERT_NE(sol.status, SolveStatus::kMemoryExceeded);
        sites = dry.sites_seen();
      }
      ASSERT_GT(sites, 0) << to_string(kind);

      for (std::int64_t site = 1; site <= sites; ++site) {
        const Graph g = random_flow_problem(seed, opts);
        OomFailpoint::Options fp_opts;
        fp_opts.fail_at_site = site;
        OomFailpoint fp(fp_opts);
        const FlowSolution sol = solve(g, kind);
        EXPECT_EQ(sol.status, SolveStatus::kMemoryExceeded)
            << to_string(kind) << " seed=" << seed << " site=" << site;
        EXPECT_EQ(fp.failures_injected(), 1)
            << to_string(kind) << " seed=" << seed << " site=" << site;
        EXPECT_NE(sol.message.find("out of memory"), std::string::npos);
      }
    }
  }
}

TEST(OomFailpoint, ByteThresholdModeFiresTyped) {
  const Graph g = random_flow_problem(11);
  OomFailpoint::Options opts;
  opts.fail_above_bytes = 1;  // First site to announce any bytes fires.
  OomFailpoint fp(opts);
  const FlowSolution sol = solve(g, SolverKind::kNetworkSimplex);
  EXPECT_EQ(sol.status, SolveStatus::kMemoryExceeded);
  EXPECT_EQ(fp.failures_injected(), 1);
  EXPECT_GT(fp.bytes_seen(), 0);
}

// The robust chain treats an injected OOM like any environmental
// failure: the next backend picks the instance up and the final answer
// is still optimal, with the incident recorded in the diagnostics.
TEST(OomFailpoint, RobustChainRecoversAcrossBackends) {
  const Graph g = random_flow_problem(5);
  const FlowSolution expected = solve_robust(g);
  ASSERT_TRUE(expected.optimal());

  OomFailpoint::Options opts;
  opts.fail_at_site = 1;  // Kill the first attempt's first allocation.
  OomFailpoint fp(opts);
  SolveDiagnostics diag;
  const FlowSolution sol = solve_robust(g, {}, &diag);
  ASSERT_TRUE(sol.optimal()) << sol.message;
  EXPECT_EQ(sol.cost, expected.cost);
  EXPECT_EQ(fp.failures_injected(), 1);
  EXPECT_TRUE(diag.memory_hit);
  EXPECT_GE(diag.attempts.size(), 2u);
  EXPECT_EQ(diag.attempts.front().status, SolveStatus::kMemoryExceeded);
}

// Budgets stay balanced even when the failure happens mid-attempt: the
// RAII charge unwinds with the exception.
TEST(OomFailpoint, BudgetLedgerBalancedAfterInjectedFailure) {
  MemoryBudget root = MemoryBudget::make(0);
  for (std::int64_t site = 1; site <= 3; ++site) {
    const Graph g = random_flow_problem(9);
    OomFailpoint::Options fp_opts;
    fp_opts.fail_at_site = site;
    // Sites are numbered across the failpoint's whole lifetime (they
    // never reset per solve attempt), so this fires exactly once no
    // matter how generous max_failures is.
    fp_opts.max_failures = 1000;
    OomFailpoint fp(fp_opts);
    SolveOptions opts;
    opts.memory_budget = root;
    const FlowSolution sol = solve_robust(g, opts);
    (void)sol;  // Any typed status is fine; the ledger is the point.
    EXPECT_EQ(root.used(), 0) << "site " << site;
  }
}

}  // namespace
}  // namespace lera::netflow

// =====================================================================
// Engine + server degradation contract

namespace lera {
namespace {

constexpr const char* kTinyProblem =
    "steps 7\nregisters 3\n"
    "var a write 1 reads 3\nvar b write 2 reads 4\n"
    "var c write 3 reads 6\n";

alloc::AllocationProblem tiny_problem() {
  const workloads::ProblemParseResult parsed =
      workloads::parse_problem(kTinyProblem);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  return *parsed.problem;
}

// A per-solve cap too small for any flow-solve attempt must degrade to
// the two-phase baseline — flagged, never a crash or a silent failure.
TEST(EngineMemBudget, PerSolveCapDegradesToBaseline) {
  engine::EngineOptions opts;
  opts.threads = 1;
  opts.max_bytes_per_solve = 64;
  opts.alloc.fallback_to_baseline = true;
  const engine::Engine engine(opts);
  const alloc::AllocationResult r =
      engine.allocate_batch({tiny_problem()}).front();
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.memory_exceeded);
  EXPECT_NE(r.message.find("memory"), std::string::npos) << r.message;

  const engine::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.solves_memory_exceeded, 1);
  EXPECT_GE(stats.perf.mem_denials, 1);
  EXPECT_EQ(stats.memory_bytes_in_use, 0);  // Ledger balanced.
}

TEST(EngineMemBudget, PerSolveCapWithoutFallbackIsTypedInfeasible) {
  engine::EngineOptions opts;
  opts.threads = 1;
  opts.max_bytes_per_solve = 64;
  opts.alloc.fallback_to_baseline = false;
  const engine::Engine engine(opts);
  const alloc::AllocationResult r =
      engine.allocate_batch({tiny_problem()}).front();
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.memory_exceeded);
  EXPECT_FALSE(r.message.empty());
}

TEST(EngineMemBudget, UncappedEngineStillTracksPeak) {
  engine::EngineOptions opts;
  opts.threads = 1;
  const engine::Engine engine(opts);
  const alloc::AllocationResult r =
      engine.allocate_batch({tiny_problem()}).front();
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_FALSE(r.memory_exceeded);
  const engine::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.solves_memory_exceeded, 0);
  EXPECT_GT(stats.memory_peak_bytes, 0);  // Track-only budget observed.
  EXPECT_GT(stats.perf.mem_charged_bytes, 0);
  EXPECT_EQ(stats.perf.mem_denials, 0);
}

}  // namespace
}  // namespace lera

namespace lera::server {
namespace {

std::string solve_frame(const std::string& id, const std::string& payload) {
  Frame f;
  f.verb = FrameVerb::kSolve;
  f.id = id;
  f.deadline_ms = -1;
  f.payload = payload;
  return encode_frame(f);
}

/// One scripted conversation against serve() over an in-memory channel
/// (same harness as test_server.cpp).
std::vector<std::string> converse(Server& server,
                                  const std::vector<std::string>& chunks) {
  MemoryChannel chan;
  std::thread serving([&] { server.serve(chan.server_end()); });
  for (const std::string& c : chunks) {
    if (!chan.client_end().write(c)) break;
  }
  chan.close_client_writes();
  serving.join();
  chan.close_server_writes();

  char buffer[4096];
  std::string acc;
  for (;;) {
    const std::ptrdiff_t n = chan.client_end().read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    acc.append(buffer, static_cast<std::size_t>(n));
  }
  std::vector<std::string> lines;
  std::size_t nl;
  while ((nl = acc.find('\n')) != std::string::npos) {
    lines.push_back(acc.substr(0, nl));
    acc.erase(0, nl + 1);
  }
  return lines;
}

/// A problem large enough that its predicted footprint clearly
/// separates from the tiny one's: many overlapping variables.
std::string big_problem_text(int vars) {
  std::ostringstream os;
  os << "steps " << vars + 2 << "\nregisters 4\n";
  for (int v = 0; v < vars; ++v) {
    os << "var v" << v << " write " << v % (vars / 2) << " reads "
       << v % (vars / 2) + 2 << "\n";
  }
  return os.str();
}

TEST(ServerMemBudget, OversizedRequestShedsTypedWhileSmallOnesServe) {
  const std::string small_text = lera::kTinyProblem;
  const std::string big_text = big_problem_text(160);

  // Pick the cap between the two predicted footprints, so the test
  // stays valid if the estimator is recalibrated.
  const workloads::ProblemParseResult small_parsed =
      workloads::parse_problem(small_text);
  const workloads::ProblemParseResult big_parsed =
      workloads::parse_problem(big_text);
  ASSERT_TRUE(small_parsed.ok()) << small_parsed.error;
  ASSERT_TRUE(big_parsed.ok()) << big_parsed.error;
  const std::int64_t small_fp =
      alloc::estimate_problem_footprint(*small_parsed.problem);
  const std::int64_t big_fp =
      alloc::estimate_problem_footprint(*big_parsed.problem);
  ASSERT_GT(big_fp, 2 * small_fp);

  ServerOptions opts;
  opts.engine.threads = 1;
  opts.engine.max_bytes_per_solve = (small_fp + big_fp) / 2;
  Server server(opts);
  const std::vector<std::string> lines = converse(
      server, {solve_frame("ok1", small_text),
               solve_frame("toobig", big_text),
               solve_frame("ok2", small_text)});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("LERA_RESULT ok1 status=ok", 0), 0u)
      << lines[0];
  EXPECT_EQ(
      lines[1].rfind("LERA_REJECT toobig reason=memory_infeasible", 0),
      0u)
      << lines[1];
  EXPECT_NE(lines[1].find("detail=predicted solve footprint"),
            std::string::npos)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_RESULT ok2 status=ok", 0), 0u)
      << lines[2];

  // Typed accounting: the shed request is a memory_infeasible reject,
  // and every admitted slot was returned.
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.rejected_by_reason[static_cast<int>(
                RejectReason::kMemoryInfeasible)],
            1);
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

TEST(ServerMemBudget, HealthAndStatsExposeMemoryCounters) {
  ServerOptions opts;
  opts.engine.threads = 1;
  opts.engine.max_bytes_total = 64 << 20;
  Server server(opts);
  const std::vector<std::string> lines = converse(
      server, {solve_frame("s", lera::kTinyProblem), "HEALTH 0 id=h\n",
               "STATS 0 id=st\n"});
  ASSERT_GE(lines.size(), 3u);
  const std::string* health = nullptr;
  bool saw_peak_metric = false;
  bool saw_denials_metric = false;
  for (const std::string& line : lines) {
    if (line.rfind("LERA_HEALTH h ", 0) == 0) health = &line;
    if (line.rfind("LERA_METRIC server_memory_peak_bytes ", 0) == 0) {
      saw_peak_metric = true;
    }
    if (line.rfind("LERA_METRIC server_memory_denials ", 0) == 0) {
      saw_denials_metric = true;
    }
  }
  ASSERT_NE(health, nullptr);
  EXPECT_NE(health->find(" mem_bytes="), std::string::npos) << *health;
  EXPECT_NE(health->find(" mem_peak_bytes="), std::string::npos)
      << *health;
  EXPECT_NE(health->find(" mem_cap_bytes=67108864"), std::string::npos)
      << *health;
  EXPECT_TRUE(saw_peak_metric);
  EXPECT_TRUE(saw_denials_metric);

  const HealthStatus h = server.health();
  EXPECT_EQ(h.memory_cap_bytes, 64 << 20);
  EXPECT_GE(h.memory_peak_bytes, 0);
  EXPECT_EQ(h.memory_bytes_in_use, server.engine().memory_budget().used());
}

}  // namespace
}  // namespace lera::server
