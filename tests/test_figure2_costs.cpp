#include <gtest/gtest.h>

#include "alloc/flow_graph.hpp"

/// The paper's Figure 2 catalogues the transition-arc costs between
/// split lifetimes, eqs. (6)-(10). This suite pins our implementation of
/// each case to its hand-derived value. One deliberate deviation is
/// documented in DESIGN.md: eq. (7) as printed omits the -E_r^m(v1)
/// read saving on a mid-lifetime *read* cut, which contradicts both
/// eq. (6) and the paper's own accounting narrative; we keep the term.
/// A true access-boundary cut (no read at the cut) does match the
/// printed eq. (7): no read saving, only the write-back.

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, std::vector<int> reads) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = std::move(reads);
  return out;
}

netflow::Cost arc_cost(const FlowGraphSpec& spec, int from_seg,
                       int to_seg) {
  for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
    const auto& info = spec.arc_info[a];
    if (info.kind == ArcKind::kTransition && info.from_seg == from_seg &&
        info.to_seg == to_seg) {
      return spec.graph.arc(static_cast<netflow::ArcId>(a)).cost;
    }
  }
  return netflow::kInfCost;
}

class Figure2 : public ::testing::Test {
 protected:
  // v1 has reads at 3 and 8 (split at 3); v2 has reads at 5 and 9
  // (split at 5, written at 4). Segment ids: v1 -> 0 [1,3), 1 [3,8);
  // v2 -> 2 [4,5), 3 [5,9).
  Figure2() {
    params_.register_model = energy::RegisterModel::kActivity;
    energy::ActivityMatrix act(2, 0.5, 0.5);
    act.set(0, 1, 0.25);
    p_ = make_problem({lt("v1", 1, {3, 8}), lt("v2", 4, {5, 9})}, 10, 1,
                      params_, std::move(act));
    spec_ = build_flow_graph(p_, GraphStyle::kAllPairs, quantizer_);
  }

  double h_term() const { return params_.e_reg_transition(0.25); }
  double er() const { return params_.e_mem_read(); }
  double ew() const { return params_.e_mem_write(); }

  energy::EnergyParams params_;
  energy::Quantizer quantizer_;
  AllocationProblem p_;
  FlowGraphSpec spec_;
};

TEST_F(Figure2, CaseA_LastReadToFirstWrite_Eq10) {
  // r_last(v1) -> w_1(v2): impossible here (v1's last read at 8 is
  // after v2's write at 4); use the reverse direction instead:
  // r_last(v2)=9 -> nothing. Build a separate simple instance.
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  energy::ActivityMatrix act(2, 0.5, 0.5);
  act.set(0, 1, 0.25);
  const AllocationProblem p = make_problem(
      {lt("v1", 1, {3}), lt("v2", 4, {6})}, 7, 1, params, std::move(act));
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kAllPairs, quantizer_);
  // eq. (10): -E_w^m(v2) - E_r^m(v1) + H*C.
  EXPECT_EQ(arc_cost(spec, 0, 1),
            quantizer_.quantize(-params.e_mem_write() -
                                params.e_mem_read() +
                                params.e_reg_transition(0.25)));
}

TEST_F(Figure2, CaseB_InteriorReadToFirstWrite_Eq6) {
  // r_1(v1) (read at 3, not last) -> w_1(v2) (definition at 4).
  // eq. (6): -E_r^m(v1) - E_w^m(v2) + E_w^m(v1) + H*C.
  EXPECT_EQ(arc_cost(spec_, 0, 2),
            quantizer_.quantize(-er() - ew() + ew() + h_term()));
}

TEST_F(Figure2, CaseC_InteriorReadToInteriorWrite_Eq7Corrected) {
  // r_1(v1) (read at 3, not last) -> w_2(v2) (interior read cut at 5).
  // Printed eq. (7): E_w^m(v1) + H*C. Corrected (DESIGN.md): the read
  // at 3 is served from the register, so -E_r^m(v1) applies too.
  EXPECT_EQ(arc_cost(spec_, 0, 3),
            quantizer_.quantize(-er() + ew() + h_term()));
}

TEST_F(Figure2, CaseD_LastReadToInteriorWrite_Eq8) {
  // r_last(v1) (read at 8) -> w_2(v2)? v2's interior cut is at 5 < 8:
  // not compatible. Use v2's last segment end 9 -> nothing. Instead
  // check r_last(v2) -> nothing exists and test eq. (8) on a fresh
  // instance: v1 dies at 3, v2 is split with an interior cut at 5.
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  energy::ActivityMatrix act(2, 0.5, 0.5);
  act.set(0, 1, 0.25);
  const AllocationProblem p = make_problem(
      {lt("v1", 1, {3}), lt("v2", 2, {5, 8})}, 9, 1, params,
      std::move(act));
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kAllPairs, quantizer_);
  // v1 -> segment 0; v2 -> segments 1 [2,5), 2 [5,8).
  // r_last(v1)=3 -> w_2(v2)=5: eq. (8): -E_r^m(v1) + H*C (the entering
  // read at 5 doubles as the load, no write saving).
  EXPECT_EQ(arc_cost(spec, 0, 2),
            quantizer_.quantize(-params.e_mem_read() +
                                params.e_reg_transition(0.25)));
}

TEST_F(Figure2, ChainArc_Eq9) {
  // r_1(v) -> w_2(v) of the same variable: eq. (9): -E_r^m(v).
  for (std::size_t a = 0; a < spec_.arc_info.size(); ++a) {
    const auto& info = spec_.arc_info[a];
    if (info.kind == ArcKind::kChain && info.from_seg == 0) {
      EXPECT_EQ(spec_.graph.arc(static_cast<netflow::ArcId>(a)).cost,
                quantizer_.quantize(-er()));
    }
  }
}

TEST_F(Figure2, BoundaryCutLeaveMatchesPrintedEq7) {
  // With restricted access times the cut is *not* a read: leaving the
  // register there costs only the write-back — the printed eq. (7).
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  lifetime::SplitOptions split;
  split.access.period = 3;  // Allowed at 3, 6, 9.
  energy::ActivityMatrix act(2, 0.5, 0.5);
  act.set(0, 1, 0.25);
  const AllocationProblem p = make_problem(
      {lt("v1", 1, {7}), lt("v2", 4, {8})}, 9, 1, params, std::move(act),
      split);
  // v1: [1,3) boundary [3,6) boundary [6,7); v2: [4,6) boundary [6,8).
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kAllPairs, quantizer_);
  // r of v1's first segment (boundary cut at 3) -> w of v2's first
  // segment (definition at 4): +E_w^m(v1) - E_w^m(v2) + H*C.
  EXPECT_EQ(arc_cost(spec, 0, 3),
            quantizer_.quantize(params.e_mem_write() -
                                params.e_mem_write() +
                                params.e_reg_transition(0.25)));
  // Boundary-cut entry (v2's segment at 6) from v1's boundary cut at 3:
  // +E_w^m(v1) + E_r^m(v2) + H*C (write-back plus explicit reload).
  EXPECT_EQ(arc_cost(spec, 0, 4),
            quantizer_.quantize(params.e_mem_write() +
                                params.e_mem_read() +
                                params.e_reg_transition(0.25)));
}

}  // namespace
}  // namespace lera::alloc
