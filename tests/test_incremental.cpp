#include "alloc/incremental.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "workloads/random_gen.hpp"

// Incremental-edit repair: re-solving an edited instance from the
// previous optimal flow must be indistinguishable from a cold solve —
// the 100-seed differential sweep asserts the repaired objective is
// bit-equal to the cold solve's for every edit class (add a variable,
// remove a variable, shift a lifetime), and that repairs actually
// happen (the machinery is exercised, not silently falling back).

namespace lera::alloc {
namespace {

AllocationProblem random_problem(std::uint64_t seed, int num_vars,
                                 int registers) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = num_vars;
  lopts.num_steps = 14;
  lopts.max_reads = 2;
  std::vector<lifetime::Lifetime> lts =
      workloads::random_lifetimes(seed, lopts);
  // Stable unique names so the repair can match variables by name.
  for (std::size_t v = 0; v < lts.size(); ++v) {
    lts[v].name = "v" + std::to_string(v);
  }
  energy::ActivityMatrix act(lts.size());
  return make_problem(std::move(lts), lopts.num_steps, registers,
                      energy::EnergyParams{}, std::move(act));
}

AllocationProblem rebuild(const AllocationProblem& p,
                          std::vector<lifetime::Lifetime> lts) {
  energy::ActivityMatrix act(lts.size());
  return make_problem(std::move(lts), p.num_steps, p.num_registers,
                      p.params, std::move(act));
}

/// One of three edit classes, chosen by seed: add a variable, remove
/// one, or shift one lifetime a step later.
AllocationProblem edited(const AllocationProblem& p, std::uint64_t seed) {
  std::vector<lifetime::Lifetime> lts = p.lifetimes;
  switch (seed % 3) {
    case 0: {  // Add a short-lived variable.
      lifetime::Lifetime extra;
      extra.name = "added";
      extra.write_time = 1 + static_cast<int>(seed % 5);
      extra.read_times = {extra.write_time + 2};
      lts.push_back(extra);
      break;
    }
    case 1: {  // Remove the last variable.
      if (lts.size() > 2) lts.pop_back();
      break;
    }
    default: {  // Shift one variable's lifetime a step later.
      lifetime::Lifetime& lt = lts[seed % lts.size()];
      if (lt.read_times.back() < p.num_steps) {
        lt.write_time += 1;
        for (int& r : lt.read_times) r += 1;
      }
      break;
    }
  }
  return rebuild(p, std::move(lts));
}

TEST(Incremental, DifferentialSweepMatchesColdSolve) {
  AllocatorOptions cold_opts;
  cold_opts.certify = true;
  IncrementalStats totals;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    IncrementalAllocator inc;
    const AllocationProblem base =
        random_problem(seed, 4 + static_cast<int>(seed % 5), 2);
    const AllocationResult first = inc.solve(base);
    const AllocationResult cold_first = allocate(base, cold_opts);
    ASSERT_EQ(first.feasible, cold_first.feasible) << "seed " << seed;
    if (first.feasible) {
      EXPECT_EQ(first.model_energy, cold_first.model_energy)
          << "seed " << seed;
    }

    const AllocationProblem next = edited(base, seed);
    const AllocationResult repaired = inc.solve(next);
    const AllocationResult cold = allocate(next, cold_opts);
    ASSERT_EQ(repaired.feasible, cold.feasible) << "seed " << seed;
    if (cold.feasible) {
      // Bit-equal objective: a repair that cannot prove optimality must
      // have fallen back to a cold solve, so there is no tolerance.
      EXPECT_EQ(repaired.model_energy, cold.model_energy)
          << "seed " << seed;
      EXPECT_TRUE(validate_assignment(next, repaired.assignment).empty())
          << "seed " << seed;
    }
    const IncrementalStats& s = inc.stats();
    totals.cold_solves += s.cold_solves;
    totals.repairs_attempted += s.repairs_attempted;
    totals.repairs_succeeded += s.repairs_succeeded;
    totals.repair_fallbacks += s.repair_fallbacks;
  }
  // The sweep must exercise the repair path for real: most edits are
  // small, so certified repairs should dominate fallbacks.
  EXPECT_GT(totals.repairs_attempted, 0);
  EXPECT_GT(totals.repairs_succeeded, 0);
  EXPECT_EQ(totals.repairs_succeeded + totals.repair_fallbacks,
            totals.repairs_attempted);
}

TEST(Incremental, ResetForcesColdSolve) {
  IncrementalAllocator inc;
  const AllocationProblem p = random_problem(1, 5, 2);
  ASSERT_TRUE(inc.solve(p).feasible);
  EXPECT_EQ(inc.stats().cold_solves, 1);
  inc.reset();
  ASSERT_TRUE(inc.solve(p).feasible);
  EXPECT_EQ(inc.stats().cold_solves, 2);
  EXPECT_EQ(inc.stats().repairs_attempted, 0);
}

TEST(Incremental, IdenticalResubmissionRepairsInstantly) {
  IncrementalAllocator inc;
  const AllocationProblem p = random_problem(2, 6, 2);
  const AllocationResult first = inc.solve(p);
  ASSERT_TRUE(first.feasible);
  const AllocationResult again = inc.solve(p);
  ASSERT_TRUE(again.feasible);
  EXPECT_EQ(again.model_energy, first.model_energy);
  EXPECT_GE(inc.stats().repairs_succeeded, 1);
}

}  // namespace
}  // namespace lera::alloc
