#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/banking.hpp"
#include "alloc/memory_layout.hpp"
#include "workloads/random_gen.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, std::vector<int> reads) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = std::move(reads);
  return out;
}

TEST(Banking, RejectsBadArguments) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {3})}, 4, 0, params, energy::ActivityMatrix(1));
  Assignment a(1);
  EXPECT_FALSE(assign_banks(p, a, {0}, 0).feasible);
  EXPECT_FALSE(assign_banks(p, a, {}, 2).feasible);
}

TEST(Banking, SplitsSimultaneousAccessesAcrossBanks) {
  // u and v written at step 1 and read at step 4, both in memory at
  // different addresses: two banks must separate them.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {4}), lt("v", 1, {4})}, 5, 0, params,
      energy::ActivityMatrix(2));
  Assignment a(2);
  const std::vector<int> address = {0, 1};
  const BankAssignment out = assign_banks(p, a, address, 2);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.conflicts, 0);
  EXPECT_NE(out.bank[0], out.bank[1]);
  EXPECT_EQ(out.parallel_pairs, 2);  // Write pair + read pair.
}

TEST(Banking, OneBankMeansAllConflicts) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {4}), lt("v", 1, {4})}, 5, 0, params,
      energy::ActivityMatrix(2));
  Assignment a(2);
  const BankAssignment out = assign_banks(p, a, {0, 1}, 1);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.conflicts, 2);
  EXPECT_EQ(out.parallel_pairs, 0);
}

TEST(Banking, BeatsInterleavingWhenAccessPatternIsStructured) {
  // Four locations; 0+1 and 2+3 are accessed together. Interleaved
  // (mod-2) banking puts 0,2 and 1,3 together: zero conflicts too.
  // Make the hot pairs 0+2 and 1+3 instead so interleaving collides.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("a", 1, {4}), lt("b", 2, {5}), lt("c", 1, {4}),
       lt("d", 2, {5})},
      6, 0, params, energy::ActivityMatrix(4));
  Assignment all_mem(4);
  // a@0 with c@2 (steps 1,4); b@1 with d@3 (steps 2,5).
  const std::vector<int> address = {0, 1, 2, 3};
  const BankAssignment out = assign_banks(p, all_mem, address, 2);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.conflicts, 0);
  EXPECT_GT(out.naive_conflicts, 0);  // addr%2 pairs 0 with 2, 1 with 3.
}

TEST(Banking, IdleStepsEnableSleepModes) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {2}), lt("v", 7, {8})}, 9, 0, params,
      energy::ActivityMatrix(2));
  Assignment a(2);
  const BankAssignment out = assign_banks(p, a, {0, 1}, 2);
  ASSERT_TRUE(out.feasible);
  // Each bank is touched in exactly 2 of the 10 observable steps.
  for (int idle : out.idle_steps) {
    EXPECT_EQ(idle, 8);
  }
}

TEST(Banking, NeverWorseThanInterleavedOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 12;
    lopts.max_reads = 2;
    energy::EnergyParams params;
    const AllocationProblem p = make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 2,
        params, workloads::random_activity(seed, 12));
    const AllocationResult r = allocate(p);
    ASSERT_TRUE(r.feasible);
    const MemoryLayout layout = optimize_memory_layout(p, r.assignment);
    for (int banks : {2, 4}) {
      const BankAssignment out =
          assign_banks(p, r.assignment, layout.address, banks);
      ASSERT_TRUE(out.feasible) << "seed " << seed;
      EXPECT_LE(out.conflicts, out.naive_conflicts)
          << "seed " << seed << " banks " << banks;
      for (int b : out.bank) {
        EXPECT_GE(b, 0);
        EXPECT_LT(b, banks);
      }
    }
  }
}

}  // namespace
}  // namespace lera::alloc
