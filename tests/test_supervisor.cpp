#include "server/supervisor.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/framing.hpp"
#include "server/stream.hpp"
#include "server/worker.hpp"
#include "workloads/problem_io.hpp"

// The crash-isolation layer in isolation: the worker child's request
// loop driven over an in-memory channel (no fork), and the supervisor's
// full contract — typed crash verdicts, poison quarantine, byte-exact
// crash-corpus reproducers, respawn after an external kill -9, and the
// hang watchdog — against real forked workers.
//
// The fork-based tests skip themselves under TSan: fork() from a
// process with running threads is unsupported there.

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LERA_TEST_UNDER_TSAN 1
#endif
#endif
#if !defined(LERA_TEST_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define LERA_TEST_UNDER_TSAN 1
#endif

#ifdef LERA_TEST_UNDER_TSAN
#define LERA_SKIP_IF_TSAN() \
  GTEST_SKIP() << "fork-based worker isolation is unsupported under TSan"
#else
#define LERA_SKIP_IF_TSAN() (void)0
#endif

namespace lera::server {
namespace {

constexpr const char* kTinyProblem =
    "steps 7\nregisters 3\n"
    "var a write 1 reads 3\nvar b write 2 reads 4\n"
    "var c write 3 reads 6\n";

std::string solve_frame(const std::string& id, const std::string& payload,
                        long long deadline_ms = -1) {
  Frame f;
  f.verb = FrameVerb::kSolve;
  f.id = id;
  f.deadline_ms = deadline_ms;
  f.payload = payload;
  return encode_frame(f);
}

/// Feeds \p chunks to a worker_loop running over an in-memory channel
/// and returns its response lines in order.
std::vector<std::string> worker_converse(
    const WorkerConfig& config, const std::vector<std::string>& chunks) {
  MemoryChannel chan;
  std::thread worker(
      [&] { worker_loop(chan.server_end(), config); });
  for (const std::string& c : chunks) {
    if (!chan.client_end().write(c)) break;
  }
  chan.close_client_writes();
  worker.join();
  chan.close_server_writes();

  char buffer[4096];
  std::string acc;
  for (;;) {
    const std::ptrdiff_t n = chan.client_end().read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    acc.append(buffer, static_cast<std::size_t>(n));
  }
  std::vector<std::string> lines;
  std::size_t nl;
  while ((nl = acc.find('\n')) != std::string::npos) {
    lines.push_back(acc.substr(0, nl));
    acc.erase(0, nl + 1);
  }
  return lines;
}

std::string scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Supervisor, WorkerLoopAnswersSolvesAndPingsInOrder) {
  WorkerConfig config;
  config.engine.threads = 1;
  const std::vector<std::string> lines = worker_converse(
      config, {"PING 0 id=p1\n", solve_frame("s1", kTinyProblem),
               solve_frame("s2", kTinyProblem)});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "LERA_PONG p1");
  EXPECT_EQ(lines[1].rfind("LERA_RESULT s1 status=ok", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_RESULT s2 status=ok", 0), 0u) << lines[2];
  EXPECT_NE(lines[1].find(" assign="), std::string::npos) << lines[1];
}

TEST(Supervisor, WorkerLoopRejectsUnparseablePayloadTyped) {
  WorkerConfig config;
  config.engine.threads = 1;
  const std::vector<std::string> lines = worker_converse(
      config, {solve_frame("bad", "steps 3\nwat is this\n"),
               solve_frame("ok", kTinyProblem)});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("LERA_REJECT bad reason=bad_request", 0), 0u)
      << lines[0];
  EXPECT_NE(lines[0].find("detail=line 2"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[1].rfind("LERA_RESULT ok", 0), 0u) << lines[1];
}

TEST(Supervisor, CrashesAreTypedPoisonQuarantinesAndCorpusIsByteExact) {
  LERA_SKIP_IF_TSAN();
  const std::string dir = scratch_dir("lera_supervisor_corpus_test");
  SupervisorOptions opts;
  opts.workers = 1;
  opts.worker.engine.threads = 1;
  opts.worker.crash.marker = "poisonpill";
  opts.crash_dir = dir;
  opts.poison_threshold = 2;
  opts.restart_backoff_seconds = 0.005;
  opts.restart_backoff_cap_seconds = 0.02;
  Supervisor supervisor(opts);

  const std::string poison =
      "steps 6\nregisters 2\n"
      "var poisonpill write 1 reads 4\nvar b write 2 reads 5\n";

  // Two crashes on the same payload fingerprint, each typed...
  for (int i = 0; i < 2; ++i) {
    auto pending = supervisor.dispatch("p" + std::to_string(i), poison, -1);
    ASSERT_TRUE(pending->wait_for(30.0));
    EXPECT_EQ(pending->verdict().kind, WorkerVerdictKind::kWorkerCrashed)
        << pending->verdict().detail;
    EXPECT_NE(pending->verdict().detail.find("worker died"),
              std::string::npos)
        << pending->verdict().detail;
  }
  // ...then the byte-identical resubmission is refused up front.
  auto quarantined = supervisor.dispatch("p2", poison, -1);
  ASSERT_TRUE(quarantined->wait_for(30.0));
  EXPECT_EQ(quarantined->verdict().kind, WorkerVerdictKind::kQuarantined)
      << quarantined->verdict().detail;
  EXPECT_NE(quarantined->verdict().detail.find("quarantined"),
            std::string::npos);

  // A healthy request still gets served by the respawned worker.
  auto healthy = supervisor.dispatch("h", kTinyProblem, -1);
  ASSERT_TRUE(healthy->wait_for(30.0));
  ASSERT_EQ(healthy->verdict().kind, WorkerVerdictKind::kLine)
      << healthy->verdict().detail;
  EXPECT_EQ(healthy->verdict().line.rfind("LERA_RESULT h status=ok", 0),
            0u)
      << healthy->verdict().line;

  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.crashes, 2);
  EXPECT_EQ(stats.quarantined_fingerprints, 1);
  EXPECT_EQ(stats.quarantine_rejects, 1);
  EXPECT_EQ(stats.corpus_files, 2);

  // The reproducer is the payload, byte for byte, and loads cleanly.
  const std::string repro =
      dir + "/crash-" + fingerprint_hex(payload_fingerprint(poison)) +
      "-1.lt";
  std::ifstream in(repro, std::ios::binary);
  ASSERT_TRUE(in.good()) << repro;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str(), poison);
  EXPECT_TRUE(workloads::parse_problem(bytes.str()).ok());

  std::filesystem::remove_all(dir);
}

TEST(Supervisor, ExternalKillIsAbsorbedByRespawn) {
  LERA_SKIP_IF_TSAN();
  SupervisorOptions opts;
  opts.workers = 1;
  opts.worker.engine.threads = 1;
  opts.restart_backoff_seconds = 0.005;
  Supervisor supervisor(opts);

  auto first = supervisor.dispatch("a", kTinyProblem, -1);
  ASSERT_TRUE(first->wait_for(30.0));
  ASSERT_EQ(first->verdict().kind, WorkerVerdictKind::kLine);

  const std::vector<int> pids = supervisor.worker_pids();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
  // Let the corpse settle: once its socket end is gone the next frame
  // write fails up front, which is the idle-death (not mid-solve) case
  // this test pins down.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The idle-killed worker is replaced transparently: the next request
  // is served, not blamed on the kill.
  auto second = supervisor.dispatch("b", kTinyProblem, -1);
  ASSERT_TRUE(second->wait_for(30.0));
  ASSERT_EQ(second->verdict().kind, WorkerVerdictKind::kLine)
      << second->verdict().detail;
  EXPECT_EQ(second->verdict().line.rfind("LERA_RESULT b status=ok", 0), 0u)
      << second->verdict().line;
  EXPECT_GE(supervisor.stats().restarts, 1);
}

TEST(Supervisor, HangWatchdogKillsAndTypesTheStall) {
  LERA_SKIP_IF_TSAN();
  SupervisorOptions opts;
  opts.workers = 1;
  opts.worker.engine.threads = 1;
  opts.worker.crash.marker = "poisonpill";
  opts.worker.crash.marker_mode = netflow::CrashFailpoint::Mode::kHang;
  opts.poison_threshold = 1000;  // The stall itself is under test here.
  opts.restart_backoff_seconds = 0.005;
  opts.hang_grace_seconds = 0.3;
  Supervisor supervisor(opts);

  const std::string hanging =
      "steps 6\nregisters 2\n"
      "var poisonpill write 1 reads 4\nvar b write 2 reads 5\n";
  auto pending = supervisor.dispatch("h", hanging, /*deadline_ms=*/100);
  ASSERT_TRUE(pending->wait_for(30.0));
  EXPECT_EQ(pending->verdict().kind, WorkerVerdictKind::kWorkerCrashed)
      << pending->verdict().detail;
  EXPECT_NE(pending->verdict().detail.find("hung"), std::string::npos)
      << pending->verdict().detail;
  EXPECT_EQ(supervisor.stats().hung_kills, 1);

  // The pool recovered: a healthy request is served afterwards.
  auto healthy = supervisor.dispatch("ok", kTinyProblem, -1);
  ASSERT_TRUE(healthy->wait_for(30.0));
  EXPECT_EQ(healthy->verdict().kind, WorkerVerdictKind::kLine)
      << healthy->verdict().detail;
}

TEST(Supervisor, ShutdownResolvesQueuedRequestsAsCancelled) {
  LERA_SKIP_IF_TSAN();
  std::shared_ptr<PendingSolve> leftover;
  {
    SupervisorOptions opts;
    opts.workers = 1;
    opts.worker.engine.threads = 1;
    opts.worker.crash.marker = "poisonpill";
    opts.worker.crash.marker_mode = netflow::CrashFailpoint::Mode::kHang;
    opts.hang_grace_seconds = 30.0;  // Watchdog must not fire first.
    Supervisor supervisor(opts);
    // Wedge the only worker, then queue a request behind it: the
    // supervisor's destructor must resolve it rather than leak it.
    auto wedge = supervisor.dispatch(
        "w",
        "steps 6\nregisters 2\n"
        "var poisonpill write 1 reads 4\nvar b write 2 reads 5\n",
        /*deadline_ms=*/60000);
    leftover = supervisor.dispatch("q", kTinyProblem, -1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(leftover->done());
  EXPECT_EQ(leftover->verdict().kind, WorkerVerdictKind::kCancelled)
      << leftover->verdict().detail;
}

}  // namespace
}  // namespace lera::server
