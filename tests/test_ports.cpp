#include <gtest/gtest.h>

#include "alloc/ports.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"
#include "sched/schedule.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, int r) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = {r};
  return out;
}

TEST(Ports, AlreadyWithinBudgetNeedsOneRound) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, 4)}, 5, 1, params, energy::ActivityMatrix(1));
  const PortConstrainedResult r =
      allocate_with_port_limits(p, PortLimits{1, 1});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.forced_segments, 0);
}

TEST(Ports, ForcesTrafficIntoRegisters) {
  // Three variables written at step 1 and read at step 4, R = 3 but
  // registers made so dear the unconstrained optimum keeps everything
  // in memory (3 same-step writes). A 1-write-port budget must push two
  // of them into registers anyway.
  energy::EnergyParams params;
  params.reg_read = 50;
  params.reg_write = 50;
  const AllocationProblem p = make_problem(
      {lt("u", 1, 4), lt("v", 1, 4), lt("w", 1, 4)}, 5, 3, params,
      energy::ActivityMatrix(3));

  const AllocationResult unconstrained = allocate(p);
  ASSERT_TRUE(unconstrained.feasible);
  EXPECT_EQ(unconstrained.stats.mem_write_ports, 3);

  const PortConstrainedResult r =
      allocate_with_port_limits(p, PortLimits{1, 1});
  ASSERT_TRUE(r.result.feasible) << r.result.message;
  EXPECT_TRUE(r.met);
  EXPECT_LE(r.result.stats.mem_write_ports, 1);
  EXPECT_LE(r.result.stats.mem_read_ports, 1);
  EXPECT_GE(r.forced_segments, 2);
  EXPECT_GT(r.rounds, 1);
}

TEST(Ports, ImpossibleBudgetReportsFailure) {
  // Four overlapping same-step variables but only 1 register: at least
  // three must hit memory in the same steps; a 1-port budget is
  // unreachable.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("a", 1, 4), lt("b", 1, 4), lt("c", 1, 4), lt("d", 1, 4)}, 5, 1,
      params, energy::ActivityMatrix(4));
  const PortConstrainedResult r =
      allocate_with_port_limits(p, PortLimits{1, 1});
  EXPECT_FALSE(r.met);
}

TEST(Ports, BudgetTwoIsEasierThanOne) {
  energy::EnergyParams params;
  params.reg_read = 50;
  params.reg_write = 50;
  const AllocationProblem p = make_problem(
      {lt("u", 1, 4), lt("v", 1, 4), lt("w", 2, 5)}, 6, 3, params,
      energy::ActivityMatrix(3));
  const PortConstrainedResult two =
      allocate_with_port_limits(p, PortLimits{2, 2});
  const PortConstrainedResult one =
      allocate_with_port_limits(p, PortLimits{1, 1});
  ASSERT_TRUE(two.met);
  ASSERT_TRUE(one.met);
  // A looser budget never needs more forcing or more energy.
  EXPECT_LE(two.forced_segments, one.forced_segments);
  EXPECT_LE(two.result.energy(p), one.result.energy(p) + 1e-9);
}

TEST(Ports, RspUnderPortBudget) {
  const ir::BasicBlock bb = workloads::make_rsp(4);
  const sched::Schedule s = sched::list_schedule(bb, {2, 2});
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const AllocationProblem p =
      make_problem_from_block(bb, s, 12, params);
  const PortConstrainedResult r =
      allocate_with_port_limits(p, PortLimits{2, 2});
  if (r.met) {
    EXPECT_LE(r.result.stats.mem_read_ports, 2);
    EXPECT_LE(r.result.stats.mem_write_ports, 2);
    EXPECT_TRUE(validate_assignment(p, r.result.assignment).empty());
  }
  // Whether met or not, the loop must terminate and report coherently.
  EXPECT_GE(r.rounds, 1);
}

TEST(Ports, RandomInstancesTerminateAndValidate) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 10;
    energy::EnergyParams params;
    const AllocationProblem p = make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 4,
        params, workloads::random_activity(seed, 10));
    const PortConstrainedResult r =
        allocate_with_port_limits(p, PortLimits{1, 1});
    if (r.met) {
      EXPECT_LE(r.result.stats.mem_read_ports, 1) << "seed " << seed;
      EXPECT_LE(r.result.stats.mem_write_ports, 1) << "seed " << seed;
    }
    if (r.result.feasible) {
      EXPECT_TRUE(validate_assignment(p, r.result.assignment).empty())
          << "seed " << seed;
    }
  }
}

TEST(Ports, RegisterPortBudgetBarsSegments) {
  // Three same-step variables, plenty of registers and cheap registers:
  // unconstrained optimum writes all three to the register file in the
  // same step. A 1-write-port register file cannot do that.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, 4), lt("v", 1, 4), lt("w", 1, 4)}, 5, 3, params,
      energy::ActivityMatrix(3));
  const AllocationResult unconstrained = allocate(p);
  ASSERT_TRUE(unconstrained.feasible);
  EXPECT_EQ(unconstrained.stats.reg_write_ports, 3);

  PortLimits limits;
  limits.mem_read_ports = PortLimits::kUnlimited;
  limits.mem_write_ports = PortLimits::kUnlimited;
  limits.reg_write_ports = 1;
  const PortConstrainedResult r = allocate_with_port_limits(p, limits);
  ASSERT_TRUE(r.result.feasible) << r.result.message;
  EXPECT_TRUE(r.met);
  EXPECT_LE(r.result.stats.reg_write_ports, 1);
  EXPECT_TRUE(validate_assignment(p, r.result.assignment).empty());
}

TEST(Ports, ForbiddenRegisterSegmentsStayInMemory) {
  energy::EnergyParams params;
  AllocationProblem p = make_problem(
      {lt("u", 1, 4), lt("v", 2, 5)}, 6, 2, params,
      energy::ActivityMatrix(2));
  p.segments[0].forbidden_register = true;
  const AllocationResult r = allocate(p);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_FALSE(r.assignment.in_register(0));
  EXPECT_TRUE(r.assignment.in_register(1));  // Registers still cheap.
  EXPECT_TRUE(validate_assignment(p, r.assignment).empty());
}

TEST(Ports, ForbiddenAndForcedConflictIsInfeasibleByConstruction) {
  // A forced segment (restricted access times) that a register port
  // budget would need to bar cannot be pinned twice; the loop reports
  // the budget as unmet instead of producing an invalid assignment.
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  split.access.period = 4;
  const AllocationProblem p = make_problem(
      {lt("u", 1, 3), lt("v", 1, 3)}, 8, 2, params,
      energy::ActivityMatrix(2), split);
  PortLimits limits;
  limits.mem_read_ports = PortLimits::kUnlimited;
  limits.mem_write_ports = PortLimits::kUnlimited;
  limits.reg_write_ports = 1;
  const PortConstrainedResult r = allocate_with_port_limits(p, limits);
  // Both variables are written at step 1 and both are forced into
  // registers: the 1-write-port budget is unreachable.
  EXPECT_FALSE(r.met);
  EXPECT_TRUE(r.result.feasible);  // But the allocation itself stands.
}

}  // namespace
}  // namespace lera::alloc
