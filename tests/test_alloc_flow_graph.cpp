#include <gtest/gtest.h>

#include <map>
#include <set>

#include "alloc/flow_graph.hpp"
#include "workloads/paper_examples.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, int r) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = {r};
  return out;
}

AllocationProblem tiny_problem(energy::RegisterModel model =
                                   energy::RegisterModel::kStatic) {
  energy::EnergyParams params;
  params.register_model = model;
  // v0 = [1,3], v1 = [3,5]: sequential, max density 1 everywhere.
  return make_problem({lt("v0", 1, 3), lt("v1", 3, 5)}, 5, 1, params,
                      energy::ActivityMatrix(2, 0.25, 0.5));
}

std::map<ArcKind, int> count_kinds(const FlowGraphSpec& spec) {
  std::map<ArcKind, int> counts;
  for (const auto& info : spec.arc_info) ++counts[info.kind];
  return counts;
}

netflow::ArcId find_arc(const FlowGraphSpec& spec, ArcKind kind, int from,
                        int to) {
  for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
    const auto& info = spec.arc_info[a];
    if (info.kind == kind && info.from_seg == from && info.to_seg == to) {
      return static_cast<netflow::ArcId>(a);
    }
  }
  return netflow::kInvalidArc;
}

TEST(FlowGraph, TinyStructure) {
  const AllocationProblem p = tiny_problem();
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions);
  // Nodes: s, t + 2 per segment.
  EXPECT_EQ(spec.graph.num_nodes(), 2 + 2 * 2);
  const auto kinds = count_kinds(spec);
  EXPECT_EQ(kinds.at(ArcKind::kSegment), 2);
  EXPECT_EQ(kinds.at(ArcKind::kTransition), 1);  // r(v0) -> w(v1) only.
  EXPECT_EQ(kinds.at(ArcKind::kBypass), 1);
  // v1 cannot start a register (idle would cross the peak at boundary 1
  // ... actually max density 1 holds everywhere alive; s->w(v1) idles
  // across boundaries 0..2 which include max-density boundaries 1,2.
  EXPECT_EQ(kinds.at(ArcKind::kFromSource), 1);
  EXPECT_EQ(kinds.at(ArcKind::kToSink), 1);
}

TEST(FlowGraph, AllPairsAddsIdleArcs) {
  const AllocationProblem p = tiny_problem();
  const FlowGraphSpec spec = build_flow_graph(p, GraphStyle::kAllPairs);
  const auto kinds = count_kinds(spec);
  // All-pairs: both variables reachable from s, both reach t.
  EXPECT_EQ(kinds.at(ArcKind::kFromSource), 2);
  EXPECT_EQ(kinds.at(ArcKind::kToSink), 2);
}

TEST(FlowGraph, StaticCostAlgebra) {
  const AllocationProblem p = tiny_problem(energy::RegisterModel::kStatic);
  const energy::EnergyParams& e = p.params;
  const energy::Quantizer q;
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions, q);

  // Segment arcs are free (eq. 3).
  const netflow::ArcId seg = find_arc(spec, ArcKind::kSegment, 0, 0);
  EXPECT_EQ(spec.graph.arc(seg).cost, 0);

  // s -> w(v0): enter at a definition = -E_w^m + E_w^r (eq. 4 terms).
  const netflow::ArcId src = find_arc(spec, ArcKind::kFromSource, -1, 0);
  ASSERT_NE(src, netflow::kInvalidArc);
  EXPECT_EQ(spec.graph.arc(src).cost,
            q.quantize(-e.e_mem_write() + e.e_reg_write()));

  // r(v0) -> w(v1): death-read leave + def enter (eq. 4).
  const netflow::ArcId trans = find_arc(spec, ArcKind::kTransition, 0, 1);
  ASSERT_NE(trans, netflow::kInvalidArc);
  EXPECT_EQ(spec.graph.arc(trans).cost,
            q.quantize(-e.e_mem_read() + e.e_reg_read() - e.e_mem_write() +
                       e.e_reg_write()));

  // r(v1) -> t: death-read leave only.
  const netflow::ArcId sink = find_arc(spec, ArcKind::kToSink, 1, -1);
  ASSERT_NE(sink, netflow::kInvalidArc);
  EXPECT_EQ(spec.graph.arc(sink).cost,
            q.quantize(-e.e_mem_read() + e.e_reg_read()));

  // Base: both variables charged one write + one read to memory.
  EXPECT_DOUBLE_EQ(spec.base_energy,
                   2 * (e.e_mem_write() + e.e_mem_read()));
}

TEST(FlowGraph, ActivityCostUsesHamming) {
  const AllocationProblem p =
      tiny_problem(energy::RegisterModel::kActivity);
  const energy::EnergyParams& e = p.params;
  const energy::Quantizer q;
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions, q);

  // Transition carries H(v0,v1) * swing = 0.25 * 2.0 (eq. 5).
  const netflow::ArcId trans = find_arc(spec, ArcKind::kTransition, 0, 1);
  EXPECT_EQ(spec.graph.arc(trans).cost,
            q.quantize(-e.e_mem_read() - e.e_mem_write() +
                       e.e_reg_transition(0.25)));
  // Source arc charges the initial write activity (0.5).
  const netflow::ArcId src = find_arc(spec, ArcKind::kFromSource, -1, 0);
  EXPECT_EQ(spec.graph.arc(src).cost,
            q.quantize(-e.e_mem_write() + e.e_reg_transition(0.5)));
}

TEST(FlowGraph, Figure3DensityGraphMatchesPaperArcList) {
  // The reconstruction's whole point: the six listed transitions are
  // exactly the arcs of the density-region construction.
  const AllocationProblem p = workloads::figure3_problem();
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions);

  std::set<std::pair<std::string, std::string>> transitions;
  for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
    const auto& info = spec.arc_info[a];
    if (info.kind != ArcKind::kTransition) continue;
    transitions.insert(
        {p.lifetimes[static_cast<std::size_t>(
             p.segments[static_cast<std::size_t>(info.from_seg)].var)].name,
         p.lifetimes[static_cast<std::size_t>(
             p.segments[static_cast<std::size_t>(info.to_seg)].var)].name});
  }
  const std::set<std::pair<std::string, std::string>> expected = {
      {"a", "b"}, {"a", "f"}, {"e", "b"},
      {"e", "f"}, {"b", "c"}, {"d", "e"},
  };
  EXPECT_EQ(transitions, expected);
}

TEST(FlowGraph, ForcedSegmentsGetLowerBounds) {
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  split.access.period = 2;
  split.access.phase = 1;
  // v = [2,4]: starts and ends at even (disallowed) steps -> forced.
  AllocationProblem p =
      make_problem({lt("v", 2, 4)}, 6, 1, params,
                   energy::ActivityMatrix(1), split);
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions);
  int forced_arcs = 0;
  for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
    if (spec.arc_info[a].kind == ArcKind::kSegment &&
        spec.graph.arc(static_cast<netflow::ArcId>(a)).lower == 1) {
      ++forced_arcs;
    }
  }
  EXPECT_GT(forced_arcs, 0);
  EXPECT_TRUE(spec.graph.has_lower_bounds());
}

TEST(FlowGraph, ChainArcsConnectSplitLifetimes) {
  energy::EnergyParams params;
  Lifetime v;
  v.value = 0;
  v.name = "v";
  v.write_time = 1;
  v.read_times = {3, 6};
  AllocationProblem p = make_problem({v}, 7, 1, params,
                                     energy::ActivityMatrix(1));
  ASSERT_EQ(p.segments.size(), 2u);
  const energy::Quantizer q;
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions, q);
  const netflow::ArcId chain = find_arc(spec, ArcKind::kChain, 0, 1);
  ASSERT_NE(chain, netflow::kInvalidArc);
  // Eq. (9): staying in the register saves the interior memory read
  // (plus the static register read for serving the consumer).
  EXPECT_EQ(spec.graph.arc(chain).cost,
            q.quantize(-p.params.e_mem_read() + p.params.e_reg_read()));
  // Base charges one write + two reads.
  EXPECT_DOUBLE_EQ(spec.base_energy,
                   p.params.e_mem_write() + 2 * p.params.e_mem_read());
}

TEST(FlowGraph, BypassCapacityEqualsRegisters) {
  AllocationProblem p = tiny_problem();
  p.num_registers = 7;
  const FlowGraphSpec spec =
      build_flow_graph(p, GraphStyle::kDensityRegions);
  for (std::size_t a = 0; a < spec.arc_info.size(); ++a) {
    if (spec.arc_info[a].kind == ArcKind::kBypass) {
      EXPECT_EQ(spec.graph.arc(static_cast<netflow::ArcId>(a)).upper, 7);
    }
  }
}

}  // namespace
}  // namespace lera::alloc
