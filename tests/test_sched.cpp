#include <gtest/gtest.h>

#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

namespace lera::sched {
namespace {

ir::BasicBlock two_level_block() {
  ir::BasicBlock bb("t");
  const ir::ValueId x = bb.input("x");
  const ir::ValueId y = bb.input("y");
  const ir::ValueId a = bb.emit(ir::Opcode::kAdd, {x, y}, "a");
  const ir::ValueId b = bb.emit(ir::Opcode::kMul, {a, x}, "b");
  bb.output(b);
  return bb;
}

TEST(Asap, RespectsDependenciesAndLatencies) {
  const ir::BasicBlock bb = two_level_block();
  const Schedule s = asap(bb);
  // add at step 1; mul (2-cycle) can start at 2, finishing at 3.
  const ir::OpId add = bb.value(2).def;
  const ir::OpId mul = bb.value(3).def;
  EXPECT_EQ(s.start(add), 1);
  EXPECT_EQ(s.start(mul), 2);
  EXPECT_EQ(s.finish(bb, mul), 3);
  EXPECT_EQ(s.length(bb), 3);
  EXPECT_TRUE(s.verify(bb).empty()) << s.verify(bb);
}

TEST(Asap, PseudoOpPlacement) {
  const ir::BasicBlock bb = two_level_block();
  const Schedule s = asap(bb);
  EXPECT_EQ(s.start(0), 0);                  // input x
  EXPECT_EQ(s.start(1), 0);                  // input y
  EXPECT_EQ(s.start(static_cast<ir::OpId>(bb.num_ops() - 1)),
            s.length(bb) + 1);               // output
}

TEST(Alap, PushesOpsLate) {
  const ir::BasicBlock bb = two_level_block();
  const Schedule s = alap(bb, 5);
  const ir::OpId add = bb.value(2).def;
  const ir::OpId mul = bb.value(3).def;
  // mul must finish by 5 -> start 4; add must finish before 4 -> start 3.
  EXPECT_EQ(s.start(mul), 4);
  EXPECT_EQ(s.start(add), 3);
  EXPECT_TRUE(s.verify(bb).empty()) << s.verify(bb);
}

TEST(Alap, TightDeadlineEqualsAsapForChains) {
  const ir::BasicBlock bb = two_level_block();
  const Schedule a = asap(bb);
  const Schedule l = alap(bb, a.length(bb));
  for (const ir::Operation& op : bb.ops()) {
    if (ir::is_source(op.opcode) || op.opcode == ir::Opcode::kOutput) {
      continue;
    }
    EXPECT_EQ(a.start(op.id), l.start(op.id));
  }
}

TEST(FuClass, Partition) {
  EXPECT_EQ(fu_class(ir::Opcode::kAdd), FuClass::kAlu);
  EXPECT_EQ(fu_class(ir::Opcode::kXor), FuClass::kAlu);
  EXPECT_EQ(fu_class(ir::Opcode::kMul), FuClass::kMul);
  EXPECT_EQ(fu_class(ir::Opcode::kMac), FuClass::kMul);
  EXPECT_EQ(fu_class(ir::Opcode::kDiv), FuClass::kMul);
}

TEST(ListSchedule, RespectsResourceLimits) {
  const ir::BasicBlock bb = workloads::make_fir(8);
  Resources res;
  res.alus = 1;
  res.muls = 1;
  const Schedule s = list_schedule(bb, res);
  EXPECT_TRUE(s.verify(bb).empty()) << s.verify(bb);

  // Count per-step FU occupancy (multi-cycle ops occupy all their steps).
  for (int step = 1; step <= s.length(bb); ++step) {
    int alu = 0;
    int mul = 0;
    for (const ir::Operation& op : bb.ops()) {
      if (ir::is_source(op.opcode) || op.opcode == ir::Opcode::kOutput) {
        continue;
      }
      if (s.start(op.id) <= step && step <= s.finish(bb, op.id)) {
        (fu_class(op.opcode) == FuClass::kAlu ? alu : mul)++;
      }
    }
    EXPECT_LE(alu, res.alus) << "step " << step;
    EXPECT_LE(mul, res.muls) << "step " << step;
  }
}

TEST(ListSchedule, MoreResourcesNeverSlower) {
  const ir::BasicBlock bb = workloads::make_rsp(4);
  Resources tight{1, 1};
  Resources loose{4, 4};
  const int t = list_schedule(bb, tight).length(bb);
  const int l = list_schedule(bb, loose).length(bb);
  EXPECT_LE(l, t);
  // Unconstrained ASAP is a lower bound on any list schedule.
  EXPECT_LE(asap(bb).length(bb), l);
}

TEST(ListSchedule, ValidOnRandomBlocks) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const ir::BasicBlock bb = workloads::random_dfg(seed);
    const Schedule s = list_schedule(bb, Resources{2, 1});
    EXPECT_TRUE(s.verify(bb).empty()) << "seed " << seed << ": "
                                      << s.verify(bb);
  }
}

TEST(ListSchedule, AllKernelsSchedule) {
  for (const ir::BasicBlock& bb :
       {workloads::make_fir(8), workloads::make_iir_biquad(),
        workloads::make_elliptic_wave_filter(),
        workloads::make_fft_butterfly(), workloads::make_dct4(),
        workloads::make_rsp(6)}) {
    const Schedule s = list_schedule(bb, Resources{2, 2});
    EXPECT_TRUE(s.verify(bb).empty()) << bb.name() << ": " << s.verify(bb);
    EXPECT_GT(s.length(bb), 0) << bb.name();
  }
}

}  // namespace
}  // namespace lera::sched
