#include <gtest/gtest.h>

#include "netflow/netflow.hpp"

/// Deterministic behavioural tests of the three min-cost flow solvers.
/// Every test runs against all solver kinds via the parameterised suite.

namespace lera::netflow {
namespace {

class SolverTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverTest, TrivialEmptyInstance) {
  Graph g(2);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, 0);
}

TEST_P(SolverTest, SingleArcTransport) {
  Graph g(2);
  g.add_arc(0, 1, 5, 3);
  g.set_supply(0, 4);
  g.set_supply(1, -4);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.arc_flow, (std::vector<Flow>{4}));
  EXPECT_EQ(sol.cost, 12);
}

TEST_P(SolverTest, PrefersCheaperParallelArc) {
  Graph g(2);
  g.add_arc(0, 1, 3, 10);
  g.add_arc(0, 1, 3, 1);
  g.set_supply(0, 4);
  g.set_supply(1, -4);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.arc_flow[1], 3);  // Cheap arc saturated first.
  EXPECT_EQ(sol.arc_flow[0], 1);
  EXPECT_EQ(sol.cost, 13);
}

TEST_P(SolverTest, RoutesAroundSaturatedPath) {
  // 0 -> 1 -> 3 cheap but thin; 0 -> 2 -> 3 dear but wide.
  Graph g(4);
  g.add_arc(0, 1, 2, 1);
  g.add_arc(1, 3, 2, 1);
  g.add_arc(0, 2, 5, 3);
  g.add_arc(2, 3, 5, 3);
  g.set_supply(0, 5);
  g.set_supply(3, -5);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, 2 * 2 + 3 * 6);
  EXPECT_TRUE(check_feasible(g, sol.arc_flow).ok);
  EXPECT_TRUE(certify_optimal(g, sol.arc_flow));
}

TEST_P(SolverTest, ExploitsNegativeArcEvenWithZeroSupply) {
  // A negative-cost cycle must be saturated in the optimal circulation.
  Graph g(3);
  g.add_arc(0, 1, 2, -5);
  g.add_arc(1, 2, 2, 1);
  g.add_arc(2, 0, 2, 1);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, 2 * (-5 + 1 + 1));
  EXPECT_EQ(sol.arc_flow, (std::vector<Flow>{2, 2, 2}));
}

TEST_P(SolverTest, IgnoresUnprofitableCycle) {
  Graph g(3);
  g.add_arc(0, 1, 2, -1);
  g.add_arc(1, 2, 2, 1);
  g.add_arc(2, 0, 2, 1);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, 0);
  EXPECT_EQ(sol.arc_flow, (std::vector<Flow>{0, 0, 0}));
}

TEST_P(SolverTest, NegativeArcsOnPath) {
  Graph g(3);
  g.add_arc(0, 1, 4, -7);
  g.add_arc(1, 2, 4, 2);
  g.set_supply(0, 3);
  g.set_supply(2, -3);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, 3 * -5);
  EXPECT_TRUE(check_feasible(g, sol.arc_flow).ok);
}

TEST_P(SolverTest, InfeasibleWhenCutTooSmall) {
  Graph g(3);
  g.add_arc(0, 1, 2, 1);
  g.add_arc(1, 2, 2, 1);
  g.set_supply(0, 3);
  g.set_supply(2, -3);
  const FlowSolution sol = solve(g, GetParam());
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST_P(SolverTest, BadInstanceWhenSuppliesDoNotBalance) {
  // No b-flow exists when supplies do not sum to zero; the instance is
  // rejected up front (kBadInstance) instead of reaching a solver that
  // might assert or loop on it.
  Graph g(2);
  g.add_arc(0, 1, 5, 1);
  g.set_supply(0, 2);
  const FlowSolution sol = solve(g, GetParam());
  EXPECT_EQ(sol.status, SolveStatus::kBadInstance);
  EXPECT_FALSE(sol.message.empty());
  EXPECT_NE(sol.message.find("supply"), std::string::npos);
}

TEST_P(SolverTest, HonoursLowerBounds) {
  // Forcing one unit through the dear arc despite a cheap alternative.
  Graph g(2);
  g.add_arc(0, 1, 3, 100, 1);
  g.add_arc(0, 1, 3, 1);
  g.set_supply(0, 2);
  g.set_supply(1, -2);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.arc_flow[0], 1);
  EXPECT_EQ(sol.arc_flow[1], 1);
  EXPECT_EQ(sol.cost, 101);
}

TEST_P(SolverTest, LowerBoundsCanBeInfeasible) {
  Graph g(2);
  g.add_arc(0, 1, 2, 1, 2);  // Must carry 2 ...
  // ... but nothing brings the units back to balance node supplies of 0.
  const FlowSolution sol = solve(g, GetParam());
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST_P(SolverTest, LowerBoundCirculationWithReturnPath) {
  Graph g(2);
  g.add_arc(0, 1, 2, 5, 2);
  g.add_arc(1, 0, 4, 1);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.arc_flow, (std::vector<Flow>{2, 2}));
  EXPECT_EQ(sol.cost, 12);
}

TEST_P(SolverTest, StFlowWrapper) {
  Graph g(3);
  g.add_arc(0, 1, 5, 2);
  g.add_arc(1, 2, 5, 2);
  const FlowSolution sol = solve_st_flow(g, 0, 2, 3, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.cost, 12);
  // The wrapper must not mutate the caller's graph.
  EXPECT_EQ(g.supply(0), 0);
}

TEST_P(SolverTest, DiamondWithMixedSigns) {
  Graph g(4);
  g.add_arc(0, 1, 3, 4);
  g.add_arc(0, 2, 3, -2);
  g.add_arc(1, 3, 3, 1);
  g.add_arc(2, 3, 3, 3);
  g.add_arc(1, 2, 2, -4);
  g.set_supply(0, 4);
  g.set_supply(3, -4);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_TRUE(check_feasible(g, sol.arc_flow).ok);
  EXPECT_TRUE(certify_optimal(g, sol.arc_flow));
}

TEST_P(SolverTest, MultipleSourcesAndSinks) {
  Graph g(5);
  g.add_arc(0, 2, 4, 1);
  g.add_arc(1, 2, 4, 2);
  g.add_arc(2, 3, 4, 1);
  g.add_arc(2, 4, 4, 5);
  g.set_supply(0, 2);
  g.set_supply(1, 2);
  g.set_supply(3, -3);
  g.set_supply(4, -1);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_TRUE(check_feasible(g, sol.arc_flow).ok);
  EXPECT_TRUE(certify_optimal(g, sol.arc_flow));
  EXPECT_EQ(sol.cost, 2 * 1 + 2 * 2 + 3 * 1 + 1 * 5);
}

TEST_P(SolverTest, ZeroCapacityArcsAreInert) {
  Graph g(2);
  g.add_arc(0, 1, 0, -100);
  g.add_arc(0, 1, 5, 2);
  g.set_supply(0, 1);
  g.set_supply(1, -1);
  const FlowSolution sol = solve(g, GetParam());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.arc_flow[0], 0);
  EXPECT_EQ(sol.cost, 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, SolverTest,
    ::testing::Values(SolverKind::kSuccessiveShortestPaths,
                      SolverKind::kCycleCanceling,
                      SolverKind::kNetworkSimplex,
                      SolverKind::kCostScaling, SolverKind::kAuto),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      switch (info.param) {
        case SolverKind::kSuccessiveShortestPaths: return std::string("Ssp");
        case SolverKind::kCycleCanceling: return std::string("CycleCancel");
        case SolverKind::kNetworkSimplex: return std::string("NetSimplex");
        case SolverKind::kCostScaling: return std::string("CostScaling");
        case SolverKind::kAuto: return std::string("Auto");
      }
      return std::string("Unknown");
    });

TEST(SolverNames, RoundTrip) {
  EXPECT_EQ(to_string(SolverKind::kNetworkSimplex), "network-simplex");
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
}

}  // namespace
}  // namespace lera::netflow
