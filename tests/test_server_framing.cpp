#include "server/framing.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

// Decoder corpus: the malformed-input catalogue the server's framing
// layer must survive with typed events and bounded memory — truncated
// frames, oversized declarations, garbage and overlong headers,
// interleaved frames in one chunk, and byte-dribbled (slowloris)
// delivery of all of the above.

namespace lera::server {
namespace {

std::vector<FrameEvent> feed_all(FrameDecoder& dec,
                                 const std::string& bytes) {
  return dec.feed(bytes);
}

/// Feeds one byte at a time — every event must come out identical to
/// bulk delivery.
std::vector<FrameEvent> dribble(FrameDecoder& dec,
                                const std::string& bytes) {
  std::vector<FrameEvent> out;
  for (const char c : bytes) {
    for (FrameEvent& ev : dec.feed({&c, 1})) out.push_back(std::move(ev));
  }
  return out;
}

TEST(ServerFraming, RoundTripsOneSolveFrame) {
  Frame f;
  f.verb = FrameVerb::kSolve;
  f.id = "req1";
  f.tenant = "teamA";
  f.deadline_ms = 250;
  f.payload = "steps 3\nregisters 1\nvar a write 1 reads 2\n";

  FrameDecoder dec;
  const std::vector<FrameEvent> events = feed_all(dec, encode_frame(f));
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].frame.verb, FrameVerb::kSolve);
  EXPECT_EQ(events[0].frame.id, "req1");
  EXPECT_EQ(events[0].frame.tenant, "teamA");
  EXPECT_EQ(events[0].frame.deadline_ms, 250);
  EXPECT_EQ(events[0].frame.payload, f.payload);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  EXPECT_FALSE(dec.finish().has_value());
}

TEST(ServerFraming, ByteDribbleMatchesBulkDelivery) {
  Frame f;
  f.verb = FrameVerb::kSolve;
  f.id = "slow";
  f.payload = "steps 2\nregisters 1\nvar a write 1 reads 2\n";
  const std::string wire =
      encode_frame(f) + "PING 0 id=p\n" + encode_frame(f);

  FrameDecoder bulk_dec;
  FrameDecoder drip_dec;
  const std::vector<FrameEvent> bulk = feed_all(bulk_dec, wire);
  const std::vector<FrameEvent> drip = dribble(drip_dec, wire);
  ASSERT_EQ(bulk.size(), 3u);
  ASSERT_EQ(drip.size(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(drip[i].ok, bulk[i].ok) << "event " << i;
    EXPECT_EQ(to_string(drip[i].frame.verb), to_string(bulk[i].frame.verb));
    EXPECT_EQ(drip[i].frame.payload, bulk[i].frame.payload);
    EXPECT_EQ(drip[i].frame.id, bulk[i].frame.id);
  }
}

TEST(ServerFraming, InterleavedFramesInOneChunkComeOutInOrder) {
  std::string wire;
  for (int i = 0; i < 4; ++i) {
    Frame f;
    f.verb = FrameVerb::kSolve;
    f.id = "q" + std::to_string(i);
    f.payload = "payload-" + std::to_string(i);
    wire += encode_frame(f);
  }
  wire += "HEALTH 0 id=h\n";

  FrameDecoder dec;
  const std::vector<FrameEvent> events = feed_all(dec, wire);
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(events[static_cast<std::size_t>(i)].ok);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].frame.id,
              "q" + std::to_string(i));
  }
  EXPECT_EQ(events[4].frame.verb, FrameVerb::kHealth);
}

TEST(ServerFraming, TruncatedPayloadIsTypedAtEndOfStream) {
  FrameDecoder dec;
  const std::vector<FrameEvent> events =
      feed_all(dec, "SOLVE 100 id=cut\nonly a few bytes");
  EXPECT_TRUE(events.empty());
  const std::optional<FrameEvent> ev = dec.finish();
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->ok);
  EXPECT_EQ(ev->error, FrameError::kBadFrame);
  EXPECT_EQ(ev->id, "cut");  // Rejection stays correlatable.
  EXPECT_NE(ev->detail.find("bytes short"), std::string::npos);
}

TEST(ServerFraming, TruncatedHeaderIsTypedAtEndOfStream) {
  FrameDecoder dec;
  EXPECT_TRUE(feed_all(dec, "SOLVE 12 id=onl").empty());
  const std::optional<FrameEvent> ev = dec.finish();
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->ok);
  EXPECT_NE(ev->detail.find("header"), std::string::npos);
}

TEST(ServerFraming, OversizedFrameIsRejectedSkippedAndUnbuffered) {
  FrameDecoder::Options opts;
  opts.max_frame_bytes = 32;
  FrameDecoder dec(opts);

  const std::string big(100, 'x');
  std::vector<FrameEvent> events =
      feed_all(dec, "SOLVE 100 id=huge\n" + big);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].ok);
  EXPECT_EQ(events[0].error, FrameError::kFrameTooLarge);
  EXPECT_EQ(events[0].id, "huge");
  // The skipped payload was never buffered.
  EXPECT_EQ(dec.buffered_bytes(), 0u);

  // The connection survives: the next frame parses normally.
  events = feed_all(dec, "PING 0 id=alive\n");
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].frame.verb, FrameVerb::kPing);
}

TEST(ServerFraming, OversizedSkipNeverBuffersEvenWhenDribbled) {
  FrameDecoder::Options opts;
  opts.max_frame_bytes = 16;
  opts.max_header_bytes = 64;
  FrameDecoder dec(opts);

  std::string wire = "SOLVE 5000 id=drip\n" + std::string(5000, 'y') +
                     "PING 0 id=after\n";
  std::size_t events_seen = 0;
  for (const char c : wire) {
    for (const FrameEvent& ev : dec.feed({&c, 1})) {
      (void)ev;
      ++events_seen;
    }
    // The memory bound the decoder promises, asserted byte by byte.
    ASSERT_LE(dec.buffered_bytes(),
              opts.max_header_bytes + opts.max_frame_bytes);
  }
  EXPECT_EQ(events_seen, 2u);  // frame_too_large + the PING after it.
}

TEST(ServerFraming, TruncatedOversizedSkipIsTypedAtEndOfStream) {
  FrameDecoder::Options opts;
  opts.max_frame_bytes = 8;
  FrameDecoder dec(opts);
  const std::vector<FrameEvent> events =
      feed_all(dec, "SOLVE 100 id=gone\npartial");
  ASSERT_EQ(events.size(), 1u);  // The too-large rejection, up front.
  const std::optional<FrameEvent> ev = dec.finish();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->id, "gone");
  EXPECT_NE(ev->detail.find("oversized"), std::string::npos);
}

TEST(ServerFraming, GarbageHeaderIsTypedAndResyncs) {
  FrameDecoder dec;
  std::vector<FrameEvent> events =
      feed_all(dec, "GET / HTTP/1.1\nPING 0 id=ok\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].ok);
  EXPECT_EQ(events[0].error, FrameError::kBadFrame);
  ASSERT_TRUE(events[1].ok);
  EXPECT_EQ(events[1].frame.verb, FrameVerb::kPing);
}

TEST(ServerFraming, BadPayloadLengthIsTypedWithRecoveredId) {
  FrameDecoder dec;
  const std::vector<FrameEvent> events =
      feed_all(dec, "SOLVE -3 id=neg\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].ok);
  // Best-effort id recovery: the reject can still be correlated.
  EXPECT_EQ(events[0].id, "neg");
}

TEST(ServerFraming, OverlongHeaderIsBoundedTypedAndResyncs) {
  FrameDecoder::Options opts;
  opts.max_header_bytes = 32;
  FrameDecoder dec(opts);

  const std::string long_header(500, 'A');
  std::size_t bad = 0;
  for (const char c : long_header) {
    for (const FrameEvent& ev : dec.feed({&c, 1})) {
      EXPECT_FALSE(ev.ok);
      ++bad;
    }
    ASSERT_LE(dec.buffered_bytes(), opts.max_header_bytes);
  }
  EXPECT_EQ(bad, 1u);  // One typed event, not one per byte.

  // Resync: everything to the next newline is discarded, then normal
  // service resumes.
  const std::vector<FrameEvent> events =
      feed_all(dec, "tail\nPING 0 id=back\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].frame.id, "back");
}

TEST(ServerFraming, ControlFrameWithPayloadIsRejected) {
  FrameDecoder dec;
  const std::vector<FrameEvent> events =
      feed_all(dec, "PING 4 id=p\nwhat");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].ok);
  EXPECT_NE(events[0].detail.find("zero-length"), std::string::npos);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(ServerFraming, ControlFrameWithPayloadSkipsToNextHeader) {
  // The declared payload must be skipped — not misparsed as frame
  // headers — so the valid frame that follows still decodes.
  FrameDecoder dec;
  const std::vector<FrameEvent> events = feed_all(
      dec, "HEALTH 10 id=bad\nSOLVE 999\nPING 0 id=after\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].ok);
  EXPECT_EQ(events[0].id, "bad");
  ASSERT_TRUE(events[1].ok);
  EXPECT_EQ(events[1].frame.verb, FrameVerb::kPing);
  EXPECT_EQ(events[1].frame.id, "after");
}

TEST(ServerFraming, TruncationWhileSkippingControlPayloadIsTyped) {
  FrameDecoder dec;
  const std::vector<FrameEvent> events =
      feed_all(dec, "STATS 8 id=cut\nonly");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].ok);
  const std::optional<FrameEvent> tail = dec.finish();
  ASSERT_TRUE(tail.has_value());
  EXPECT_FALSE(tail->ok);
  EXPECT_EQ(tail->id, "cut");
}

TEST(ServerFraming, BlankLinesAndCarriageReturnsAreTolerated) {
  FrameDecoder dec;
  const std::vector<FrameEvent> events =
      feed_all(dec, "\n\r\nPING 0 id=crlf\r\n\n");
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].frame.id, "crlf");
}

TEST(ServerFraming, UnknownHeaderKeysAreIgnored) {
  FrameDecoder dec;
  const std::vector<FrameEvent> events =
      feed_all(dec, "PING 0 id=fwd future_knob=7\n");
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].frame.id, "fwd");
}

TEST(ServerFraming, InvalidIdAndTenantTokensAreRejected) {
  FrameDecoder dec;
  std::vector<FrameEvent> events =
      feed_all(dec, "PING 0 id=has\"quote\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].ok);

  const std::string long_tenant(100, 't');
  events = feed_all(dec, "PING 0 tenant=" + long_tenant + "\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].ok);
}

}  // namespace
}  // namespace lera::server
