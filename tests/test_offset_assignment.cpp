#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/offset_assignment.hpp"
#include "workloads/random_gen.hpp"

namespace lera::alloc {
namespace {

using lifetime::Lifetime;

Lifetime lt(const char* name, int w, std::vector<int> reads) {
  Lifetime out;
  out.value = 0;
  out.name = name;
  out.write_time = w;
  out.read_times = std::move(reads);
  return out;
}

TEST(OffsetAssignment, EmptyWhenNoMemoryTraffic) {
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("u", 1, {3})}, 4, 1, params, energy::ActivityMatrix(1));
  Assignment a(1);
  a.assign_register(0, 0);
  const OffsetAssignment out =
      assign_offsets(p, a, std::vector<int>(1, -1));
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.total_transitions, 0);
  EXPECT_EQ(out.reloads, 0);
}

TEST(OffsetAssignment, AlternatingPairBecomesAdjacent) {
  // Access sequence alternates u,v,u,v...: SOA must place them next to
  // each other so every transition is a free +-1 step.
  energy::EnergyParams params;
  // u written 1 read 4,6; v written 2 read 5,7 -> interleaved accesses.
  const AllocationProblem p = make_problem(
      {lt("u", 1, {4, 6}), lt("v", 2, {5, 7})}, 8, 0, params,
      energy::ActivityMatrix(2));
  Assignment a(p.segments.size());  // All memory.
  // Distinct addresses far apart to make the naive layout pay.
  std::vector<int> address(p.segments.size());
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    address[s] = p.segments[s].var == 0 ? 0 : 3;
  }
  const OffsetAssignment out = assign_offsets(p, a, address);
  ASSERT_TRUE(out.feasible);
  EXPECT_GT(out.total_transitions, 0);
  // Locations 0 and 3 end up adjacent, so no reloads at all.
  EXPECT_EQ(out.reloads, 0);
  EXPECT_EQ(out.free_transitions, out.total_transitions);
  EXPECT_EQ(std::abs(out.offset[0] - out.offset[3]), 1);
  // The naive identity layout pays for every 0 <-> 3 hop.
  EXPECT_GT(out.naive_reloads, 0);
}

TEST(OffsetAssignment, NeverWorseThanNaiveOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    workloads::RandomLifetimeOptions lopts;
    lopts.num_vars = 12;
    lopts.max_reads = 3;
    energy::EnergyParams params;
    const AllocationProblem p = make_problem(
        workloads::random_lifetimes(seed, lopts), lopts.num_steps, 2,
        params, workloads::random_activity(seed, 12));
    const AllocationResult r = allocate(p);
    ASSERT_TRUE(r.feasible);
    const MemoryLayout layout = optimize_memory_layout(p, r.assignment);
    ASSERT_TRUE(layout.feasible);
    const OffsetAssignment out =
        assign_offsets(p, r.assignment, layout.address);
    ASSERT_TRUE(out.feasible);
    EXPECT_LE(out.reloads, out.naive_reloads) << "seed " << seed;
    EXPECT_EQ(out.free_transitions + out.reloads, out.total_transitions)
        << "seed " << seed;
    // Offsets form a permutation of the used locations.
    std::vector<int> seen(out.offset.size(), 0);
    for (int o : out.offset) {
      ASSERT_GE(o, 0);
      ASSERT_LT(o, static_cast<int>(out.offset.size()));
      ++seen[static_cast<std::size_t>(o)];
    }
    for (int c : seen) EXPECT_EQ(c, 1);
  }
}

TEST(OffsetAssignment, ChainOfThreeLocations) {
  // Sequence touches a,b,a,b,c,b: SOA should chain b between a and c.
  energy::EnergyParams params;
  const AllocationProblem p = make_problem(
      {lt("a", 1, {3, 5}), lt("b", 2, {4, 6, 8}), lt("c", 6, {9})}, 10, 0,
      params, energy::ActivityMatrix(3));
  Assignment all_mem(p.segments.size());
  std::vector<int> address(p.segments.size());
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    address[s] = p.segments[s].var;  // One address per variable.
  }
  const OffsetAssignment out = assign_offsets(p, all_mem, address);
  ASSERT_TRUE(out.feasible);
  // b must sit next to a (their transition weight dominates).
  EXPECT_EQ(std::abs(out.offset[0] - out.offset[1]), 1);
  EXPECT_LE(out.reloads, out.naive_reloads);
}

}  // namespace
}  // namespace lera::alloc
