#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "netflow/netflow.hpp"
#include "workloads/random_gen.hpp"

// Differential test for the CSR solver core: the production SSP (CSR
// residual, lazy 4-ary heap, round-stamped workspace) must return
// BIT-IDENTICAL arc flows to a deliberately naive reference solver built
// on adjacency lists and a lazy-deletion binary priority queue. Both
// order the Dijkstra settle sequence by (distance, then HIGHER node id),
// both relax residual edges in the same per-node order (forward edge
// before twin, arcs in insertion order), and both update parents only on
// strict improvement — so they agree not just on the optimal cost but on
// which equal-cost optimum they pick, on every instance.

namespace lera::netflow {
namespace {

/// Reference residual edge; edge ids mirror the production layout
/// (forward 2a, twin 2a+1, twin(e) = e^1).
struct RefEdge {
  NodeId head = 0;
  Flow cap = 0;
  Cost cost = 0;
};

struct RefSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<Flow> arc_flow;
  Cost cost = 0;
};

/// Textbook successive-shortest-paths on vector-of-vectors adjacency.
/// Kept intentionally simple and allocation-happy: it re-fills every
/// per-round array and pushes duplicate heap entries, trusting the
/// (dist, node) key and a settled check to discard stale ones.
RefSolution reference_ssp(const Graph& g) {
  RefSolution out;
  if (g.total_supply() != 0) return out;
  const NodeId n = g.num_nodes();
  const auto un = static_cast<std::size_t>(n);

  std::vector<RefEdge> edges;
  std::vector<NodeId> tails;
  std::vector<std::vector<int>> adj(un);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    adj[static_cast<std::size_t>(arc.tail)].push_back(
        static_cast<int>(edges.size()));
    edges.push_back({arc.head, arc.upper, arc.cost});
    tails.push_back(arc.tail);
    adj[static_cast<std::size_t>(arc.head)].push_back(
        static_cast<int>(edges.size()));
    edges.push_back({arc.tail, 0, -arc.cost});
    tails.push_back(arc.head);
  }
  const auto push = [&](int e, Flow amount) {
    edges[static_cast<std::size_t>(e)].cap -= amount;
    edges[static_cast<std::size_t>(e ^ 1)].cap += amount;
  };

  std::vector<Flow> excess(un, 0);
  for (NodeId v = 0; v < n; ++v) {
    excess[static_cast<std::size_t>(v)] = g.supply(v);
  }

  // Same negative-cost strategy as the production solver: exact initial
  // potentials when the positive-capacity arcs form no negative cycle,
  // otherwise saturate every negative arc.
  std::vector<Cost> pi(un, 0);
  if (g.has_negative_costs()) {
    bool has_negative_cycle = false;
    for (NodeId round = 0; round <= n; ++round) {
      bool changed = false;
      for (ArcId a = 0; a < g.num_arcs(); ++a) {
        const Arc& arc = g.arc(a);
        if (arc.upper <= 0) continue;
        if (pi[static_cast<std::size_t>(arc.tail)] + arc.cost <
            pi[static_cast<std::size_t>(arc.head)]) {
          if (round == n) {
            has_negative_cycle = true;
            break;
          }
          pi[static_cast<std::size_t>(arc.head)] =
              pi[static_cast<std::size_t>(arc.tail)] + arc.cost;
          changed = true;
        }
      }
      if (has_negative_cycle || !changed) break;
    }
    if (has_negative_cycle) {
      std::fill(pi.begin(), pi.end(), 0);
      for (ArcId a = 0; a < g.num_arcs(); ++a) {
        const Arc& arc = g.arc(a);
        if (arc.cost < 0 && arc.upper > 0) {
          push(2 * static_cast<int>(a), arc.upper);
          excess[static_cast<std::size_t>(arc.tail)] -= arc.upper;
          excess[static_cast<std::size_t>(arc.head)] += arc.upper;
        }
      }
    }
  }

  for (;;) {
    bool any_excess = false;
    for (NodeId v = 0; v < n; ++v) {
      if (excess[static_cast<std::size_t>(v)] > 0) {
        any_excess = true;
        break;
      }
    }
    if (!any_excess) break;

    // Multi-source Dijkstra on reduced costs, (dist, node) keyed lazy
    // PQ, early exit at the first settled deficit. Distance ties pop the
    // higher node id first, matching the production heap order.
    std::vector<Cost> dist(un, kInfCost);
    std::vector<int> parent(un, -1);
    std::vector<bool> settled(un, false);
    using Entry = std::pair<Cost, NodeId>;
    struct EntryAfter {
      bool operator()(const Entry& a, const Entry& b) const {
        return a.first > b.first ||
               (a.first == b.first && a.second < b.second);
      }
    };
    std::priority_queue<Entry, std::vector<Entry>, EntryAfter> pq;
    for (NodeId v = 0; v < n; ++v) {
      if (excess[static_cast<std::size_t>(v)] > 0) {
        dist[static_cast<std::size_t>(v)] = 0;
        pq.push({0, v});
      }
    }
    NodeId sink = kInvalidNode;
    while (!pq.empty()) {
      const auto [du, u] = pq.top();
      pq.pop();
      const auto su = static_cast<std::size_t>(u);
      if (settled[su] || du != dist[su]) continue;  // Stale entry.
      settled[su] = true;
      if (excess[su] < 0) {
        sink = u;
        break;
      }
      for (int e : adj[su]) {
        const RefEdge& edge = edges[static_cast<std::size_t>(e)];
        if (edge.cap <= 0) continue;
        const Cost rc =
            edge.cost + pi[su] - pi[static_cast<std::size_t>(edge.head)];
        const Cost nd = du + rc;
        const auto h = static_cast<std::size_t>(edge.head);
        if (nd < dist[h]) {
          dist[h] = nd;
          parent[h] = e;
          pq.push({nd, edge.head});
        }
      }
    }
    if (sink == kInvalidNode) return out;  // kInfeasible.

    const Cost dt = dist[static_cast<std::size_t>(sink)];
    for (NodeId v = 0; v < n; ++v) {
      pi[static_cast<std::size_t>(v)] +=
          std::min(dist[static_cast<std::size_t>(v)], dt);
    }

    Flow delta = -excess[static_cast<std::size_t>(sink)];
    NodeId v = sink;
    while (parent[static_cast<std::size_t>(v)] >= 0) {
      const int e = parent[static_cast<std::size_t>(v)];
      delta = std::min(delta, edges[static_cast<std::size_t>(e)].cap);
      v = tails[static_cast<std::size_t>(e)];
    }
    delta = std::min(delta, excess[static_cast<std::size_t>(v)]);
    excess[static_cast<std::size_t>(v)] -= delta;
    excess[static_cast<std::size_t>(sink)] += delta;
    v = sink;
    while (parent[static_cast<std::size_t>(v)] >= 0) {
      const int e = parent[static_cast<std::size_t>(v)];
      push(e, delta);
      v = tails[static_cast<std::size_t>(e)];
    }
  }

  out.status = SolveStatus::kOptimal;
  out.arc_flow.resize(static_cast<std::size_t>(g.num_arcs()));
  out.cost = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Flow f = edges[static_cast<std::size_t>(2 * a + 1)].cap;
    out.arc_flow[static_cast<std::size_t>(a)] = f;
    out.cost += g.arc(a).cost * f;
  }
  return out;
}

/// Instance mix: cycles through three sizes so the 200 seeds cover
/// small/medium/denser graphs, all with negative costs in play.
workloads::RandomFlowOptions options_for(std::uint64_t seed) {
  workloads::RandomFlowOptions opts;
  switch (seed % 3) {
    case 0:
      break;  // Defaults: 12 nodes / 30 arcs.
    case 1:
      opts.num_nodes = 20;
      opts.num_arcs = 60;
      opts.supply = 6;
      break;
    default:
      opts.num_nodes = 40;
      opts.num_arcs = 120;
      opts.supply = 10;
      break;
  }
  return opts;
}

TEST(CsrAdjacency, MatchesHandBuiltLists) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = workloads::random_flow_problem(seed, options_for(seed));
    std::vector<std::vector<ArcId>> out_ref(
        static_cast<std::size_t>(g.num_nodes()));
    std::vector<std::vector<ArcId>> in_ref(
        static_cast<std::size_t>(g.num_nodes()));
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      out_ref[static_cast<std::size_t>(g.arc(a).tail)].push_back(a);
      in_ref[static_cast<std::size_t>(g.arc(a).head)].push_back(a);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(g.out_arcs(v).to_vector(),
                out_ref[static_cast<std::size_t>(v)])
          << "seed " << seed << " node " << v;
      EXPECT_EQ(g.in_arcs(v).to_vector(), in_ref[static_cast<std::size_t>(v)])
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(CsrAdjacency, IncrementalAdditionsMatchFreshRebuild) {
  // Build, force the CSR cache, then keep mutating: every add must be
  // visible without invalidating unrelated nodes, and the result must
  // equal a from-scratch graph's adjacency.
  const Graph base = workloads::random_flow_problem(7, options_for(7));
  Graph g = base;
  (void)g.out_arcs(0);  // Materialise the CSR cache.
  Graph fresh = base;
  for (int i = 0; i < 200; ++i) {
    const NodeId tail = static_cast<NodeId>((i * 7) % g.num_nodes());
    const NodeId head = static_cast<NodeId>((i * 11 + 3) % g.num_nodes());
    g.add_arc(tail, head, 1 + i % 4, i % 9 - 4);
    fresh.add_arc(tail, head, 1 + i % 4, i % 9 - 4);
    if (i % 50 == 25) {
      const NodeId v = g.add_nodes(1);
      const NodeId fv = fresh.add_nodes(1);
      ASSERT_EQ(v, fv);
      g.add_arc(v, 0, 2, 1);
      fresh.add_arc(fv, 0, 2, 1);
    }
    if (i % 17 == 0) {
      // Interleave reads so the overflow path (not just the rebuild
      // path) is exercised.
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(g.out_arcs(v).to_vector(), fresh.out_arcs(v).to_vector())
            << "iteration " << i << " node " << v;
        ASSERT_EQ(g.in_arcs(v).to_vector(), fresh.in_arcs(v).to_vector())
            << "iteration " << i << " node " << v;
      }
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.out_arcs(v).to_vector(), fresh.out_arcs(v).to_vector());
    EXPECT_EQ(g.in_arcs(v).to_vector(), fresh.in_arcs(v).to_vector());
  }
}

TEST(CsrSolver, TwoHundredSeedsBitIdenticalToReference) {
  SolverWorkspace shared;  // Reused across every seed, like the Engine.
  int optimal = 0;
  int infeasible = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Graph g = workloads::random_flow_problem(seed, options_for(seed));
    const RefSolution ref = reference_ssp(g);

    // Once cold (fresh allocations), once through the shared workspace:
    // both must match the reference exactly.
    const FlowSolution cold = solve(g, SolverKind::kSuccessiveShortestPaths);
    const FlowSolution warm =
        solve(g, SolverKind::kSuccessiveShortestPaths, nullptr, &shared);

    ASSERT_EQ(cold.status, ref.status) << "seed " << seed;
    ASSERT_EQ(warm.status, ref.status) << "seed " << seed;
    if (ref.status != SolveStatus::kOptimal) {
      ++infeasible;
      continue;
    }
    ++optimal;
    EXPECT_EQ(cold.cost, ref.cost) << "seed " << seed;
    EXPECT_EQ(warm.cost, ref.cost) << "seed " << seed;
    ASSERT_EQ(cold.arc_flow, ref.arc_flow) << "seed " << seed;
    ASSERT_EQ(warm.arc_flow, ref.arc_flow) << "seed " << seed;

    // Certification verdicts must agree too: both flows are feasible
    // and leave no negative residual cycle.
    EXPECT_TRUE(check_feasible(g, ref.arc_flow).ok) << "seed " << seed;
    EXPECT_TRUE(check_feasible(g, cold.arc_flow).ok) << "seed " << seed;
    EXPECT_TRUE(certify_optimal(g, ref.arc_flow)) << "seed " << seed;
    EXPECT_TRUE(certify_optimal(g, cold.arc_flow)) << "seed " << seed;
    Cost cold_total = 0;
    Cost ref_total = 0;
    ASSERT_TRUE(checked_flow_cost(g, cold.arc_flow, cold_total));
    ASSERT_TRUE(checked_flow_cost(g, ref.arc_flow, ref_total));
    EXPECT_EQ(cold_total, ref_total) << "seed " << seed;
  }
  // The generator keeps most instances feasible; make sure the run
  // actually exercised the solver rather than short-circuiting.
  EXPECT_GT(optimal, 150);
  EXPECT_EQ(optimal + infeasible, 200);
  EXPECT_EQ(shared.counters.solves, 200);
  EXPECT_GT(shared.counters.augmentations, 0);
  EXPECT_GT(shared.counters.heap_pushes, 0);
  EXPECT_GE(shared.counters.heap_pushes, shared.counters.heap_pops);
}

TEST(CsrSolver, PerfCountersAccumulateAcrossSolves) {
  SolverWorkspace ws;
  const Graph g = workloads::random_flow_problem(3, options_for(3));
  (void)solve(g, SolverKind::kSuccessiveShortestPaths, nullptr, &ws);
  const PerfCounters first = ws.counters;
  ASSERT_EQ(first.solves, 1);
  (void)solve(g, SolverKind::kSuccessiveShortestPaths, nullptr, &ws);
  EXPECT_EQ(ws.counters.solves, 2);
  const PerfCounters delta = ws.counters.delta_since(first);
  EXPECT_EQ(delta.solves, 1);
  // The same instance through the same (deterministic) solver does the
  // same work both times.
  EXPECT_EQ(delta.augmentations, first.augmentations);
  EXPECT_EQ(delta.heap_pops, first.heap_pops);
  EXPECT_NE(ws.counters.summary().find("augmentations="), std::string::npos);
}

TEST(CsrSolver, NetworkSimplexSharesTheWorkspace) {
  SolverWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = workloads::random_flow_problem(seed, options_for(seed));
    const FlowSolution a = solve(g, SolverKind::kNetworkSimplex);
    const FlowSolution b =
        solve(g, SolverKind::kNetworkSimplex, nullptr, &ws);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    EXPECT_EQ(a.cost, b.cost) << "seed " << seed;
    EXPECT_EQ(a.arc_flow, b.arc_flow) << "seed " << seed;
  }
  EXPECT_EQ(ws.counters.solves, 20);
  EXPECT_GT(ws.counters.simplex_pivots, 0);
}

}  // namespace
}  // namespace lera::netflow
