#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "pipeline/explore.hpp"
#include "pipeline/pipeline.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

namespace lera::engine {
namespace {

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(4, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i % 7 == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
}

// ---------------------------------------------------------------------
// Helpers

ir::TaskGraph paper_example_app() {
  // Paper-flavoured application: the elliptic wave filter (the paper's
  // benchmark kernel) feeding an FFT stage and an RSP detector.
  ir::TaskGraph tg;
  const ir::TaskId ewf =
      tg.add_task("ewf", workloads::make_elliptic_wave_filter());
  const ir::TaskId fft =
      tg.add_task("fft", workloads::make_fft_butterfly(), {ewf});
  tg.add_task("detect", workloads::make_rsp(3), {fft});
  tg.add_task("filter", workloads::make_fir(6), {ewf});
  return tg;
}

ir::TaskGraph random_app(std::uint64_t seed, int num_tasks) {
  ir::TaskGraph tg;
  workloads::RandomDfgOptions dopts;
  dopts.num_ops = 18;
  for (int i = 0; i < num_tasks; ++i) {
    std::vector<ir::TaskId> deps;
    if (i > 0) deps.push_back(static_cast<ir::TaskId>(i - 1));
    tg.add_task("t" + std::to_string(i),
                workloads::random_dfg(seed + static_cast<std::uint64_t>(i),
                                      dopts),
                std::move(deps));
  }
  return tg;
}

alloc::AllocationProblem random_problem(std::uint64_t seed) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 24;
  lopts.num_steps = 16;
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  return alloc::make_problem(
      workloads::random_lifetimes(seed, lopts), lopts.num_steps, 4, params,
      workloads::random_activity(seed + 1,
                                 static_cast<std::size_t>(lopts.num_vars)));
}

void expect_same_result(const alloc::AllocationResult& a,
                        const alloc::AllocationResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.degraded, b.degraded) << what;
  EXPECT_EQ(a.flow_cost, b.flow_cost) << what;
  EXPECT_EQ(a.model_energy, b.model_energy) << what;
  EXPECT_EQ(a.registers_used, b.registers_used) << what;
  EXPECT_EQ(a.static_energy.total(), b.static_energy.total()) << what;
  EXPECT_EQ(a.activity_energy.total(), b.activity_energy.total()) << what;
  EXPECT_EQ(a.stats.mem_accesses(), b.stats.mem_accesses()) << what;
  EXPECT_EQ(a.stats.reg_accesses(), b.stats.reg_accesses()) << what;
  EXPECT_EQ(a.stats.mem_locations, b.stats.mem_locations) << what;
  ASSERT_EQ(a.assignment.size(), b.assignment.size()) << what;
  for (std::size_t s = 0; s < a.assignment.size(); ++s) {
    EXPECT_EQ(a.assignment.location(s), b.assignment.location(s))
        << what << " segment " << s;
  }
}

/// Field-for-field equality of two pipeline reports — the determinism
/// guarantee is *bit-identical*, so doubles compare with ==.
void expect_same_report(const PipelineReport& a, const PipelineReport& b) {
  EXPECT_EQ(a.all_feasible, b.all_feasible);
  EXPECT_EQ(a.infeasible_tasks, b.infeasible_tasks);
  EXPECT_EQ(a.tasks_degraded, b.tasks_degraded);
  EXPECT_EQ(a.total_solver_fallbacks, b.total_solver_fallbacks);
  EXPECT_EQ(a.total_static_energy, b.total_static_energy);
  EXPECT_EQ(a.total_activity_energy, b.total_activity_energy);
  EXPECT_EQ(a.total_mem_accesses, b.total_mem_accesses);
  EXPECT_EQ(a.total_reg_accesses, b.total_reg_accesses);
  EXPECT_EQ(a.peak_mem_locations, b.peak_mem_locations);
  EXPECT_EQ(a.peak_mem_read_ports, b.peak_mem_read_ports);
  EXPECT_EQ(a.peak_mem_write_ports, b.peak_mem_write_ports);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const TaskReport& ta = a.tasks[i];
    const TaskReport& tb = b.tasks[i];
    EXPECT_EQ(ta.task, tb.task);
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.feasible, tb.feasible);
    EXPECT_EQ(ta.failure_reason, tb.failure_reason);
    EXPECT_EQ(ta.schedule_length, tb.schedule_length);
    EXPECT_EQ(ta.max_density, tb.max_density);
    EXPECT_EQ(ta.solve_summary, tb.solve_summary);
    expect_same_result(ta.result, tb.result, ta.name);
    EXPECT_EQ(ta.layout.feasible, tb.layout.feasible);
    EXPECT_EQ(ta.layout.locations, tb.layout.locations);
    EXPECT_EQ(ta.layout.address, tb.layout.address);
    EXPECT_EQ(ta.layout.optimized_energy, tb.layout.optimized_energy);
    EXPECT_EQ(ta.layout.naive_energy, tb.layout.naive_energy);
  }
}

// ---------------------------------------------------------------------
// Determinism: parallel == sequential, bit for bit.

TEST(Engine, RunDeterministicAcrossThreadCountsPaperExample) {
  const ir::TaskGraph tg = paper_example_app();
  EngineOptions opts;
  opts.num_registers = 5;

  opts.threads = 1;
  const PipelineReport sequential = Engine(opts).run(tg);
  for (int threads : {2, 4, 8}) {
    opts.threads = threads;
    expect_same_report(sequential, Engine(opts).run(tg));
  }
  // The legacy free function is a wrapper over the same engine.
  opts.threads = 0;
  expect_same_report(sequential, pipeline::run_pipeline(tg, opts));
}

TEST(Engine, RunDeterministicAcrossThreadCountsRandomGraphs) {
  for (std::uint64_t seed : {11u, 23u}) {
    const ir::TaskGraph tg = random_app(seed, 6);
    EngineOptions opts;
    opts.num_registers = 4;
    opts.trace_seed = seed;

    opts.threads = 1;
    const PipelineReport sequential = Engine(opts).run(tg);
    opts.threads = 8;
    expect_same_report(sequential, Engine(opts).run(tg));
  }
}

TEST(Engine, ExploreDeterministicAcrossThreadCounts) {
  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  EngineOptions opts;
  opts.threads = 1;
  const ExploreResult sequential = Engine(opts).explore(bb);
  opts.threads = 8;
  const ExploreResult parallel = Engine(opts).explore(bb);

  EXPECT_EQ(sequential.best, parallel.best);
  ASSERT_EQ(sequential.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < sequential.candidates.size(); ++i) {
    const ScheduleCandidate& a = sequential.candidates[i];
    const ScheduleCandidate& b = parallel.candidates[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.max_density, b.max_density);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.energy, b.energy);
  }
  // And the legacy wrapper agrees on the winner.
  const pipeline::ExploreResult legacy = pipeline::explore_schedules(bb);
  EXPECT_EQ(legacy.best, sequential.best);
}

// ---------------------------------------------------------------------
// Batched solving

TEST(Engine, AllocateBatchMatchesSequentialSolves) {
  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    problems.push_back(random_problem(seed));
  }
  EngineOptions opts;
  opts.threads = 4;
  const std::vector<alloc::AllocationResult> batch =
      Engine(opts).allocate_batch(problems);
  ASSERT_EQ(batch.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const alloc::AllocationResult lone = alloc::allocate(problems[i]);
    expect_same_result(lone, batch[i], "problem " + std::to_string(i));
  }
}

TEST(Engine, ConcurrencyStress64SolvesAcross8Threads) {
  // >= 64 batched solves across 8 threads; every result must be
  // feasible, optimal and land in its submission slot.
  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 100; seed < 164; ++seed) {
    problems.push_back(random_problem(seed));
  }
  EngineOptions opts;
  opts.threads = 8;
  const Engine engine(opts);
  EXPECT_EQ(engine.threads(), 8);
  const std::vector<alloc::AllocationResult> batch =
      engine.allocate_batch(problems);
  ASSERT_EQ(batch.size(), 64u);
  // Spot-check slot placement against fresh sequential solves.
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
    expect_same_result(alloc::allocate(problems[i]), batch[i],
                       "slot " + std::to_string(i));
  }
  for (const alloc::AllocationResult& r : batch) {
    EXPECT_TRUE(r.feasible);
    EXPECT_FALSE(r.degraded);
  }
}

TEST(Engine, SessionDeliversResultsByTicket) {
  EngineOptions opts;
  opts.threads = 8;
  const Engine engine(opts);
  Session session = engine.open_session();

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 200; seed < 264; ++seed) {
    problems.push_back(random_problem(seed));
  }
  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_EQ(session.submit(problems[i]), i);
  }
  EXPECT_EQ(session.submitted(), problems.size());

  // Tickets resolve out of submission order without deadlock.
  expect_same_result(alloc::allocate(problems[63]), session.result(63),
                     "ticket 63");
  expect_same_result(alloc::allocate(problems[0]), session.result(0),
                     "ticket 0");

  const std::vector<alloc::AllocationResult> all = session.collect();
  ASSERT_EQ(all.size(), problems.size());
  expect_same_result(alloc::allocate(problems[31]), all[31], "collected 31");
}

// ---------------------------------------------------------------------
// Per-task failure visibility

TEST(Engine, InfeasibleTasksAreNamedInTheReport) {
  // Force infeasibility: a memory access period > 1 creates forced
  // (register-only) segments, and R=1 cannot cover the butterfly's
  // parallel lifetimes. Degradation off so the failure surfaces.
  ir::TaskGraph tg;
  tg.add_task("tiny", workloads::make_fir(2));
  tg.add_task("wide", workloads::make_fft_butterfly());

  EngineOptions opts;
  opts.num_registers = 1;
  opts.split.access.period = 3;
  opts.degrade_on_solver_failure = false;
  opts.alloc.fallback_to_baseline = false;
  const PipelineReport report = Engine(opts).run(tg);

  ASSERT_EQ(report.tasks.size(), 2u);
  bool any_infeasible = false;
  for (const TaskReport& tr : report.tasks) {
    EXPECT_EQ(tr.feasible, tr.result.feasible) << tr.name;
    if (!tr.feasible) {
      any_infeasible = true;
      EXPECT_FALSE(tr.failure_reason.empty()) << tr.name;
      EXPECT_NE(tr.solve_summary.find("infeasible"), std::string::npos)
          << tr.name << ": " << tr.solve_summary;
      EXPECT_NE(std::find(report.infeasible_tasks.begin(),
                          report.infeasible_tasks.end(), tr.task),
                report.infeasible_tasks.end())
          << tr.name;
    } else {
      EXPECT_TRUE(tr.failure_reason.empty()) << tr.name;
    }
  }
  ASSERT_TRUE(any_infeasible)
      << "expected at least one infeasible task in this configuration";
  EXPECT_FALSE(report.all_feasible);
  EXPECT_EQ(report.infeasible_tasks.empty(), report.all_feasible);
}

TEST(Engine, FeasibleRunHasNoInfeasibleTasks) {
  EngineOptions opts;
  opts.num_registers = 6;
  const PipelineReport report = Engine(opts).run(paper_example_app());
  EXPECT_TRUE(report.all_feasible);
  EXPECT_TRUE(report.infeasible_tasks.empty());
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.feasible) << tr.name;
    EXPECT_TRUE(tr.failure_reason.empty()) << tr.name;
  }
}

// ---------------------------------------------------------------------
// Auditing

TEST(Engine, AuditOffIsBitIdenticalToPreAuditReports) {
  // audit_level = kOff must not perturb a single byte of the report:
  // same graph, same options, audit off vs on, non-audit fields equal.
  const ir::TaskGraph tg = paper_example_app();
  EngineOptions off;
  off.threads = 2;
  EngineOptions on = off;
  on.audit_level = audit::AuditLevel::kFullCost;

  const PipelineReport a = Engine(off).run(tg);
  const PipelineReport b = Engine(on).run(tg);
  expect_same_report(a, b);  // Compares every non-audit field.

  EXPECT_EQ(a.tasks_with_audit_findings, 0);
  for (const TaskReport& tr : a.tasks) {
    EXPECT_FALSE(tr.audit.audited) << tr.name;
    EXPECT_FALSE(tr.result.audit.audited) << tr.name;
  }
  for (const TaskReport& tr : b.tasks) {
    EXPECT_TRUE(tr.audit.audited) << tr.name;
    EXPECT_TRUE(tr.audit.clean()) << tr.name << ": "
                                  << tr.audit.summary();
  }
}

TEST(Engine, AuditFindingsPropagateThroughRunWithoutTeardown) {
  // An impossible port budget turns every task with storage traffic
  // into an audited failure — but the solves themselves must all still
  // complete and the report must stay fully populated.
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  opts.audit_ports = alloc::PortLimits{};
  opts.audit_ports->mem_read_ports = 0;
  opts.audit_ports->mem_write_ports = 0;
  opts.audit_ports->reg_read_ports = 0;
  opts.audit_ports->reg_write_ports = 0;

  const PipelineReport report = Engine(opts).run(paper_example_app());
  EXPECT_TRUE(report.all_feasible);
  EXPECT_GT(report.tasks_with_audit_findings, 0);
  int with_findings = 0;
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.feasible) << tr.name;  // Audit never kills a solve.
    EXPECT_TRUE(tr.audit.audited) << tr.name;
    if (!tr.audit.clean()) {
      ++with_findings;
      EXPECT_TRUE(tr.audit.has(audit::FindingKind::kPortOverload))
          << tr.name << ": " << tr.audit.summary();
    }
  }
  EXPECT_EQ(with_findings, report.tasks_with_audit_findings);
}

TEST(Engine, AllocateBatchAuditsEveryResultWithoutTeardown) {
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  opts.audit_ports = alloc::PortLimits{};
  opts.audit_ports->mem_read_ports = 0;
  opts.audit_ports->mem_write_ports = 0;
  opts.audit_ports->reg_read_ports = 0;
  opts.audit_ports->reg_write_ports = 0;
  const Engine engine(opts);

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    problems.push_back(random_problem(seed));
  }
  const std::vector<alloc::AllocationResult> results =
      engine.allocate_batch(problems);
  ASSERT_EQ(results.size(), problems.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].feasible) << "problem " << i;
    EXPECT_TRUE(results[i].audit.audited) << "problem " << i;
    // Every one of these problems has storage traffic, so the zero-port
    // budget must flag every single slot — siblings never mask findings.
    EXPECT_TRUE(results[i].audit.has(audit::FindingKind::kPortOverload))
        << "problem " << i << ": " << results[i].audit.summary();
  }
}

TEST(Engine, AllocateBatchAuditOffLeavesResultsUntouched) {
  EngineOptions off;
  off.threads = 2;
  EngineOptions on = off;
  on.audit_level = audit::AuditLevel::kLegality;

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    problems.push_back(random_problem(seed));
  }
  const auto a = Engine(off).allocate_batch(problems);
  const auto b = Engine(on).allocate_batch(problems);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_result(a[i], b[i], "problem " + std::to_string(i));
    EXPECT_FALSE(a[i].audit.audited);
    EXPECT_TRUE(b[i].audit.audited);
    EXPECT_TRUE(b[i].audit.clean()) << b[i].audit.summary();
  }
}

TEST(Engine, SessionCarriesAuditVerdicts) {
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  const Engine engine(opts);
  Session session = engine.open_session();

  std::vector<std::size_t> tickets;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    tickets.push_back(session.submit(random_problem(seed)));
  }
  const std::vector<alloc::AllocationResult> results = session.collect();
  ASSERT_EQ(results.size(), tickets.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].feasible) << "ticket " << i;
    EXPECT_TRUE(results[i].audit.audited) << "ticket " << i;
    EXPECT_TRUE(results[i].audit.clean())
        << "ticket " << i << ": " << results[i].audit.summary();
  }
}

TEST(Engine, SessionAuditFindingsDoNotBlockSiblingTickets) {
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  opts.audit_ports = alloc::PortLimits{};
  opts.audit_ports->mem_read_ports = 0;
  const Engine engine(opts);
  Session session = engine.open_session();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    session.submit(random_problem(seed));
  }
  const std::vector<alloc::AllocationResult> results = session.collect();
  int flagged = 0;
  for (const alloc::AllocationResult& r : results) {
    EXPECT_TRUE(r.feasible);
    if (!r.audit.clean()) ++flagged;
  }
  // Memory-heavy random problems with 4 registers always read memory
  // somewhere, so the zero-read-port budget flags them all — and every
  // sibling solve still delivered a result.
  EXPECT_EQ(flagged, static_cast<int>(results.size()));
}

// ---------------------------------------------------------------------
// Deadlines: the anytime contract

TEST(Engine, RunDeadlineReturnsPartialReportPromptly) {
  // A 1 ms run deadline on a 24-task graph: most tasks cannot even
  // start. run() must come back promptly with every task accounted for,
  // the curtailed ones flagged — and no task may carry an unflagged
  // (silently uncertified) flow answer.
  const ir::TaskGraph tg = random_app(7, 24);
  EngineOptions opts;
  opts.threads = 4;
  opts.num_registers = 4;
  opts.run_deadline_seconds = 0.001;
  const Engine engine(opts);

  const auto t0 = std::chrono::steady_clock::now();
  const PipelineReport report = engine.run(tg);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ASSERT_EQ(report.tasks.size(), 24u);
  EXPECT_GT(report.tasks_timed_out, 0);
  EXPECT_EQ(report.timed_out_tasks.size(),
            static_cast<std::size_t>(report.tasks_timed_out));
  for (const TaskReport& tr : report.tasks) {
    if (tr.timed_out) {
      // Anytime answers only: when the *solve itself* ran out of time,
      // the answer is either degraded to the certified-by-construction
      // baseline or honestly infeasible — never an unflagged,
      // uncertified flow. (A task may also be flagged because only its
      // relayout was skipped; its completed flow answer stands.)
      if (tr.result.timed_out) {
        EXPECT_TRUE(tr.result.degraded || !tr.feasible) << tr.name;
      }
      EXPECT_NE(std::find(report.timed_out_tasks.begin(),
                          report.timed_out_tasks.end(), tr.task),
                report.timed_out_tasks.end())
          << tr.name;
      if (!tr.feasible) {
        EXPECT_FALSE(tr.failure_reason.empty()) << tr.name;
      }
    }
  }
  // "Deadline + small epsilon": in-flight solves wind down at their
  // next guard poll. Generous bound so sanitizer builds pass, still
  // orders of magnitude below running the whole graph.
  EXPECT_LT(elapsed, 10.0);

  const EngineStats stats = engine.stats();
  // Skipped-outright tasks never count as started solves.
  EXPECT_LT(stats.solves_started, 24);
  EXPECT_EQ(stats.solves_completed, stats.solves_started);
}

TEST(Engine, TaskDeadlineDegradesToAnytimeBaseline) {
  // A per-task deadline that has already expired when each solve
  // starts: the flow phase is cancelled immediately and every task
  // falls back to the two-phase baseline, flagged timed_out — an
  // anytime answer instead of a silent hang or a silent lie.
  EngineOptions opts;
  opts.threads = 2;
  opts.num_registers = 6;
  opts.task_deadline_seconds = 1e-9;
  const Engine engine(opts);
  const PipelineReport report = engine.run(paper_example_app());

  ASSERT_EQ(report.tasks.size(), 4u);
  EXPECT_EQ(report.tasks_timed_out, 4);
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.timed_out) << tr.name;
    EXPECT_TRUE(tr.result.degraded || !tr.feasible) << tr.name;
    EXPECT_NE(tr.solve_summary.find("[timed out]"), std::string::npos)
        << tr.name << ": " << tr.solve_summary;
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.solves_started, 4);
  EXPECT_EQ(stats.solves_completed, 4);
  EXPECT_EQ(stats.solves_timed_out, 4);
  EXPECT_EQ(stats.solves_cancelled, 0);
}

TEST(Engine, StatsCountCleanWork) {
  EngineOptions opts;
  opts.threads = 2;
  opts.breaker_threshold = 3;
  const Engine engine(opts);

  const EngineStats fresh = engine.stats();
  EXPECT_EQ(fresh.solves_started, 0);
  EXPECT_EQ(fresh.solves_completed, 0);
  EXPECT_EQ(fresh.breaker_threshold, 3);
  EXPECT_TRUE(fresh.open_breakers.empty());

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    problems.push_back(random_problem(seed));
  }
  const auto results = engine.allocate_batch(problems);
  ASSERT_EQ(results.size(), 8u);

  const EngineStats after = engine.stats();
  EXPECT_EQ(after.solves_started, 8);
  EXPECT_EQ(after.solves_completed, 8);
  EXPECT_EQ(after.solves_cancelled, 0);
  EXPECT_EQ(after.solves_timed_out, 0);
  EXPECT_EQ(after.solves_degraded, 0);
  EXPECT_EQ(after.solves_retried, 0);
  // Healthy solves never open a breaker.
  EXPECT_TRUE(after.open_breakers.empty());
}

// ---------------------------------------------------------------------
// Session: non-blocking APIs and cancellation

TEST(Engine, SessionNonBlockingApis) {
  EngineOptions opts;
  opts.threads = 2;
  const Engine engine(opts);
  Session session = engine.open_session();

  // Unknown tickets: peek says nothing yet, nothing blocks.
  EXPECT_EQ(session.try_result(0), nullptr);
  EXPECT_EQ(session.status(99), TicketStatus::kPending);
  EXPECT_FALSE(session.wait_for(99, 0.0));

  const alloc::AllocationProblem p = random_problem(5);
  const std::size_t ticket = session.submit(p);
  EXPECT_TRUE(session.wait_for(ticket, 60.0));
  EXPECT_EQ(session.status(ticket), TicketStatus::kDone);
  const alloc::AllocationResult* r = session.try_result(ticket);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->feasible);
  EXPECT_FALSE(r->cancelled);
  EXPECT_FALSE(r->timed_out);
  expect_same_result(alloc::allocate(p), *r, "non-blocking ticket");

  EXPECT_EQ(to_string(TicketStatus::kPending), "pending");
  EXPECT_EQ(to_string(TicketStatus::kRunning), "running");
  EXPECT_EQ(to_string(TicketStatus::kDone), "done");
  EXPECT_EQ(to_string(TicketStatus::kCancelled), "cancelled");
  session.collect();
}

TEST(Engine, SessionPerRequestDeadlineArmsAtSubmission) {
  EngineOptions opts;
  opts.threads = 2;
  const Engine engine(opts);
  Session session = engine.open_session();

  // Ticket 0: a deadline that expired before any worker could pick the
  // job up — queue wait counts, so the solve must surface timed_out
  // with at most a baseline (degraded) answer.
  const std::size_t rushed = session.submit(random_problem(3), 1e-9);
  // Ticket 1: the same engine, no deadline — completely unaffected.
  const alloc::AllocationProblem p = random_problem(4);
  const std::size_t calm = session.submit(p);

  const alloc::AllocationResult& r0 = session.result(rushed);
  EXPECT_TRUE(r0.timed_out);
  EXPECT_TRUE(r0.degraded || !r0.feasible);
  const alloc::AllocationResult& r1 = session.result(calm);
  EXPECT_FALSE(r1.timed_out);
  EXPECT_FALSE(r1.degraded);
  expect_same_result(alloc::allocate(p), r1, "calm ticket");
  session.collect();
}

TEST(Engine, SessionCancelSingleTicketLeavesSiblingsAlone) {
  EngineOptions opts;
  opts.threads = 2;
  const Engine engine(opts);
  Session session = engine.open_session();

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 50; seed < 66; ++seed) {
    problems.push_back(random_problem(seed));
  }
  for (const alloc::AllocationProblem& p : problems) session.submit(p);
  const std::size_t last = problems.size() - 1;
  session.cancel(last);
  session.cancel(last);   // Idempotent.
  session.cancel(9999);   // Unknown ticket: harmless no-op.

  const std::vector<alloc::AllocationResult> results = session.collect();
  ASSERT_EQ(results.size(), problems.size());
  // The cancelled ticket raced the workers: it either got withdrawn or
  // had already finished — both are terminal, neither hangs.
  EXPECT_TRUE(results[last].cancelled || results[last].feasible);
  // Its siblings must be entirely untouched by the cancellation.
  for (std::size_t i = 0; i < last; ++i) {
    EXPECT_FALSE(results[i].cancelled) << "ticket " << i;
    expect_same_result(alloc::allocate(problems[i]), results[i],
                       "ticket " + std::to_string(i));
  }
}

TEST(Engine, SessionCancelAllWindsDownEveryTicket) {
  EngineOptions opts;
  opts.threads = 4;
  const Engine engine(opts);
  Session session = engine.open_session();
  constexpr std::size_t kN = 32;
  for (std::uint64_t seed = 1; seed <= kN; ++seed) {
    session.submit(random_problem(seed));
  }
  session.cancel_all();

  // collect() must not hang: cancelled jobs still run and fast-exit.
  const std::vector<alloc::AllocationResult> results = session.collect();
  ASSERT_EQ(results.size(), kN);
  std::int64_t cancelled = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TicketStatus st = session.status(i);
    EXPECT_TRUE(st == TicketStatus::kDone || st == TicketStatus::kCancelled)
        << "ticket " << i << " ended " << to_string(st);
    if (results[i].cancelled) {
      ++cancelled;
      EXPECT_FALSE(results[i].feasible) << "ticket " << i;
    }
  }
  // With 32 solves on 4 threads and an immediate cancel_all, the queue
  // depth guarantees most tickets get withdrawn before a worker starts.
  EXPECT_GT(cancelled, 0);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.solves_started, static_cast<std::int64_t>(kN));
  EXPECT_EQ(stats.solves_completed, static_cast<std::int64_t>(kN));
  EXPECT_EQ(stats.solves_cancelled, cancelled);

  // Cancellation is sticky: later submissions on this session are
  // born-cancelled and still reach a terminal state.
  const std::size_t late = session.submit(random_problem(99));
  const alloc::AllocationResult& r = session.result(late);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(session.status(late), TicketStatus::kCancelled);
}

TEST(Engine, SessionCancelAllStressUnderContention) {
  // TSan target: hammer cancellation and status polling against an
  // 8-thread session mid-flight. The invariants under fire: no data
  // race, no hang, and every ticket reaches a terminal state.
  EngineOptions opts;
  opts.threads = 8;
  const Engine engine(opts);
  Session session = engine.open_session();
  constexpr std::size_t kN = 64;

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    problems.push_back(random_problem(300 + seed));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    session.submit(problems[i % problems.size()]);
  }

  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    std::size_t t = 0;
    while (!stop.load()) {
      session.cancel(t % kN);
      t += 7;  // Visit tickets in a scrambled order.
      std::this_thread::yield();
    }
  });
  std::thread poller([&] {
    std::size_t t = 0;
    while (!stop.load()) {
      (void)session.status(t % kN);
      (void)session.try_result(t % kN);
      (void)session.submitted();
      ++t;
      std::this_thread::yield();
    }
  });

  for (std::size_t i = 16; i < kN; ++i) {
    session.submit(problems[i % problems.size()]);
    if (i == kN / 2) session.cancel_all();
  }
  session.cancel_all();

  const std::vector<alloc::AllocationResult> results = session.collect();
  stop.store(true);
  canceller.join();
  poller.join();

  ASSERT_EQ(results.size(), kN);
  std::int64_t cancelled = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const TicketStatus st = session.status(i);
    EXPECT_TRUE(st == TicketStatus::kDone || st == TicketStatus::kCancelled)
        << "ticket " << i << " ended " << to_string(st);
    if (results[i].cancelled) ++cancelled;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.solves_started, static_cast<std::int64_t>(kN));
  EXPECT_EQ(stats.solves_completed, static_cast<std::int64_t>(kN));
  EXPECT_EQ(stats.solves_cancelled, cancelled);
}

TEST(Engine, SessionWaitForCancelAllRaceStress) {
  // TSan target for the wait_for / cancel_all ordering: 8 threads park
  // inside wait_for with finite timeouts while cancel_all fires
  // repeatedly mid-submission. The contract under fire: wait_for must
  // never miss the terminal-state wakeup (no waiter hangs past the
  // collect()), every blocked waiter eventually sees its ticket done,
  // and no access to the shared session state races.
  EngineOptions opts;
  opts.threads = 4;
  const Engine engine(opts);
  Session session = engine.open_session();
  constexpr std::size_t kN = 48;

  for (std::size_t i = 0; i < kN / 2; ++i) {
    session.submit(random_problem(500 + i));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> observed{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < 8; ++w) {
    waiters.emplace_back([&, w] {
      std::size_t t = static_cast<std::size_t>(w);
      while (!stop.load()) {
        // Mix of instant polls and real blocking waits, across tickets
        // both existing and not-yet-submitted.
        if (session.wait_for(t % kN, (w % 2) == 0 ? 0.0 : 0.005)) {
          observed.fetch_add(1, std::memory_order_relaxed);
        }
        t += 13;
      }
    });
  }
  std::thread canceller([&] {
    while (!stop.load()) {
      session.cancel_all();
      std::this_thread::yield();
    }
  });

  for (std::size_t i = kN / 2; i < kN; ++i) {
    session.submit(random_problem(600 + i));
  }

  // Every ticket must reach a terminal state despite the storm; a hang
  // here is the bug this test exists to catch.
  const std::vector<alloc::AllocationResult> results = session.collect();
  // And a waiter blocked on any ticket must now return promptly.
  for (std::size_t t = 0; t < kN; ++t) {
    EXPECT_TRUE(session.wait_for(t, 5.0)) << "ticket " << t;
  }
  stop.store(true);
  for (std::thread& w : waiters) w.join();
  canceller.join();

  ASSERT_EQ(results.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const TicketStatus st = session.status(i);
    EXPECT_TRUE(st == TicketStatus::kDone || st == TicketStatus::kCancelled)
        << "ticket " << i << " ended " << to_string(st);
  }
  EXPECT_GT(observed.load(), 0);
}

TEST(Engine, DestructionDrainsOutstandingSessionWork) {
  // Destroying the Engine mid-flight fires the shutdown token: queued
  // session jobs still run (the pool drains), but they fast-exit, so
  // teardown is prompt and every slot is written before the pool joins.
  auto engine = std::make_unique<Engine>([] {
    EngineOptions opts;
    opts.threads = 4;
    return opts;
  }());
  Session session = engine->open_session();
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    session.submit(random_problem(seed));
  }
  const auto t0 = std::chrono::steady_clock::now();
  engine.reset();  // Graceful drain.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 10.0);
  // The pool is gone, so every ticket is terminal by construction.
  const std::vector<alloc::AllocationResult> results = session.collect();
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].cancelled || results[i].feasible)
        << "ticket " << i;
  }
}

TEST(Engine, ShutdownTokenIsExposedForChaining) {
  netflow::CancelToken chained;
  {
    const Engine engine;
    chained = engine.shutdown_token().child();
    EXPECT_FALSE(chained.cancelled());
  }
  EXPECT_TRUE(chained.cancelled());  // ~Engine fired the parent.
}

// ---------------------------------------------------------------------
// Unified options

TEST(Engine, LegacyOptionStructsAreTheEngineOptionCore) {
  // PipelineOptions / ExploreOptions are deprecated aliases: one struct,
  // one place to set num_registers.
  static_assert(std::is_same_v<pipeline::PipelineOptions, EngineOptions>);
  static_assert(std::is_same_v<pipeline::ExploreOptions, EngineOptions>);
  pipeline::PipelineOptions opts;
  opts.num_registers = 7;
  opts.threads = 2;
  const Engine engine(opts);
  EXPECT_EQ(engine.options().num_registers, 7);
  EXPECT_EQ(engine.threads(), 2);
}

}  // namespace
}  // namespace lera::engine
