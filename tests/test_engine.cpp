#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "pipeline/explore.hpp"
#include "pipeline/pipeline.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

namespace lera::engine {
namespace {

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(4, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i % 7 == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
}

// ---------------------------------------------------------------------
// Helpers

ir::TaskGraph paper_example_app() {
  // Paper-flavoured application: the elliptic wave filter (the paper's
  // benchmark kernel) feeding an FFT stage and an RSP detector.
  ir::TaskGraph tg;
  const ir::TaskId ewf =
      tg.add_task("ewf", workloads::make_elliptic_wave_filter());
  const ir::TaskId fft =
      tg.add_task("fft", workloads::make_fft_butterfly(), {ewf});
  tg.add_task("detect", workloads::make_rsp(3), {fft});
  tg.add_task("filter", workloads::make_fir(6), {ewf});
  return tg;
}

ir::TaskGraph random_app(std::uint64_t seed, int num_tasks) {
  ir::TaskGraph tg;
  workloads::RandomDfgOptions dopts;
  dopts.num_ops = 18;
  for (int i = 0; i < num_tasks; ++i) {
    std::vector<ir::TaskId> deps;
    if (i > 0) deps.push_back(static_cast<ir::TaskId>(i - 1));
    tg.add_task("t" + std::to_string(i),
                workloads::random_dfg(seed + static_cast<std::uint64_t>(i),
                                      dopts),
                std::move(deps));
  }
  return tg;
}

alloc::AllocationProblem random_problem(std::uint64_t seed) {
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars = 24;
  lopts.num_steps = 16;
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  return alloc::make_problem(
      workloads::random_lifetimes(seed, lopts), lopts.num_steps, 4, params,
      workloads::random_activity(seed + 1,
                                 static_cast<std::size_t>(lopts.num_vars)));
}

void expect_same_result(const alloc::AllocationResult& a,
                        const alloc::AllocationResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.degraded, b.degraded) << what;
  EXPECT_EQ(a.flow_cost, b.flow_cost) << what;
  EXPECT_EQ(a.model_energy, b.model_energy) << what;
  EXPECT_EQ(a.registers_used, b.registers_used) << what;
  EXPECT_EQ(a.static_energy.total(), b.static_energy.total()) << what;
  EXPECT_EQ(a.activity_energy.total(), b.activity_energy.total()) << what;
  EXPECT_EQ(a.stats.mem_accesses(), b.stats.mem_accesses()) << what;
  EXPECT_EQ(a.stats.reg_accesses(), b.stats.reg_accesses()) << what;
  EXPECT_EQ(a.stats.mem_locations, b.stats.mem_locations) << what;
  ASSERT_EQ(a.assignment.size(), b.assignment.size()) << what;
  for (std::size_t s = 0; s < a.assignment.size(); ++s) {
    EXPECT_EQ(a.assignment.location(s), b.assignment.location(s))
        << what << " segment " << s;
  }
}

/// Field-for-field equality of two pipeline reports — the determinism
/// guarantee is *bit-identical*, so doubles compare with ==.
void expect_same_report(const PipelineReport& a, const PipelineReport& b) {
  EXPECT_EQ(a.all_feasible, b.all_feasible);
  EXPECT_EQ(a.infeasible_tasks, b.infeasible_tasks);
  EXPECT_EQ(a.tasks_degraded, b.tasks_degraded);
  EXPECT_EQ(a.total_solver_fallbacks, b.total_solver_fallbacks);
  EXPECT_EQ(a.total_static_energy, b.total_static_energy);
  EXPECT_EQ(a.total_activity_energy, b.total_activity_energy);
  EXPECT_EQ(a.total_mem_accesses, b.total_mem_accesses);
  EXPECT_EQ(a.total_reg_accesses, b.total_reg_accesses);
  EXPECT_EQ(a.peak_mem_locations, b.peak_mem_locations);
  EXPECT_EQ(a.peak_mem_read_ports, b.peak_mem_read_ports);
  EXPECT_EQ(a.peak_mem_write_ports, b.peak_mem_write_ports);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const TaskReport& ta = a.tasks[i];
    const TaskReport& tb = b.tasks[i];
    EXPECT_EQ(ta.task, tb.task);
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.feasible, tb.feasible);
    EXPECT_EQ(ta.failure_reason, tb.failure_reason);
    EXPECT_EQ(ta.schedule_length, tb.schedule_length);
    EXPECT_EQ(ta.max_density, tb.max_density);
    EXPECT_EQ(ta.solve_summary, tb.solve_summary);
    expect_same_result(ta.result, tb.result, ta.name);
    EXPECT_EQ(ta.layout.feasible, tb.layout.feasible);
    EXPECT_EQ(ta.layout.locations, tb.layout.locations);
    EXPECT_EQ(ta.layout.address, tb.layout.address);
    EXPECT_EQ(ta.layout.optimized_energy, tb.layout.optimized_energy);
    EXPECT_EQ(ta.layout.naive_energy, tb.layout.naive_energy);
  }
}

// ---------------------------------------------------------------------
// Determinism: parallel == sequential, bit for bit.

TEST(Engine, RunDeterministicAcrossThreadCountsPaperExample) {
  const ir::TaskGraph tg = paper_example_app();
  EngineOptions opts;
  opts.num_registers = 5;

  opts.threads = 1;
  const PipelineReport sequential = Engine(opts).run(tg);
  for (int threads : {2, 4, 8}) {
    opts.threads = threads;
    expect_same_report(sequential, Engine(opts).run(tg));
  }
  // The legacy free function is a wrapper over the same engine.
  opts.threads = 0;
  expect_same_report(sequential, pipeline::run_pipeline(tg, opts));
}

TEST(Engine, RunDeterministicAcrossThreadCountsRandomGraphs) {
  for (std::uint64_t seed : {11u, 23u}) {
    const ir::TaskGraph tg = random_app(seed, 6);
    EngineOptions opts;
    opts.num_registers = 4;
    opts.trace_seed = seed;

    opts.threads = 1;
    const PipelineReport sequential = Engine(opts).run(tg);
    opts.threads = 8;
    expect_same_report(sequential, Engine(opts).run(tg));
  }
}

TEST(Engine, ExploreDeterministicAcrossThreadCounts) {
  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  EngineOptions opts;
  opts.threads = 1;
  const ExploreResult sequential = Engine(opts).explore(bb);
  opts.threads = 8;
  const ExploreResult parallel = Engine(opts).explore(bb);

  EXPECT_EQ(sequential.best, parallel.best);
  ASSERT_EQ(sequential.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < sequential.candidates.size(); ++i) {
    const ScheduleCandidate& a = sequential.candidates[i];
    const ScheduleCandidate& b = parallel.candidates[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.max_density, b.max_density);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.energy, b.energy);
  }
  // And the legacy wrapper agrees on the winner.
  const pipeline::ExploreResult legacy = pipeline::explore_schedules(bb);
  EXPECT_EQ(legacy.best, sequential.best);
}

// ---------------------------------------------------------------------
// Batched solving

TEST(Engine, AllocateBatchMatchesSequentialSolves) {
  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    problems.push_back(random_problem(seed));
  }
  EngineOptions opts;
  opts.threads = 4;
  const std::vector<alloc::AllocationResult> batch =
      Engine(opts).allocate_batch(problems);
  ASSERT_EQ(batch.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const alloc::AllocationResult lone = alloc::allocate(problems[i]);
    expect_same_result(lone, batch[i], "problem " + std::to_string(i));
  }
}

TEST(Engine, ConcurrencyStress64SolvesAcross8Threads) {
  // >= 64 batched solves across 8 threads; every result must be
  // feasible, optimal and land in its submission slot.
  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 100; seed < 164; ++seed) {
    problems.push_back(random_problem(seed));
  }
  EngineOptions opts;
  opts.threads = 8;
  const Engine engine(opts);
  EXPECT_EQ(engine.threads(), 8);
  const std::vector<alloc::AllocationResult> batch =
      engine.allocate_batch(problems);
  ASSERT_EQ(batch.size(), 64u);
  // Spot-check slot placement against fresh sequential solves.
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
    expect_same_result(alloc::allocate(problems[i]), batch[i],
                       "slot " + std::to_string(i));
  }
  for (const alloc::AllocationResult& r : batch) {
    EXPECT_TRUE(r.feasible);
    EXPECT_FALSE(r.degraded);
  }
}

TEST(Engine, SessionDeliversResultsByTicket) {
  EngineOptions opts;
  opts.threads = 8;
  const Engine engine(opts);
  Session session = engine.open_session();

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 200; seed < 264; ++seed) {
    problems.push_back(random_problem(seed));
  }
  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_EQ(session.submit(problems[i]), i);
  }
  EXPECT_EQ(session.submitted(), problems.size());

  // Tickets resolve out of submission order without deadlock.
  expect_same_result(alloc::allocate(problems[63]), session.result(63),
                     "ticket 63");
  expect_same_result(alloc::allocate(problems[0]), session.result(0),
                     "ticket 0");

  const std::vector<alloc::AllocationResult> all = session.collect();
  ASSERT_EQ(all.size(), problems.size());
  expect_same_result(alloc::allocate(problems[31]), all[31], "collected 31");
}

// ---------------------------------------------------------------------
// Per-task failure visibility

TEST(Engine, InfeasibleTasksAreNamedInTheReport) {
  // Force infeasibility: a memory access period > 1 creates forced
  // (register-only) segments, and R=1 cannot cover the butterfly's
  // parallel lifetimes. Degradation off so the failure surfaces.
  ir::TaskGraph tg;
  tg.add_task("tiny", workloads::make_fir(2));
  tg.add_task("wide", workloads::make_fft_butterfly());

  EngineOptions opts;
  opts.num_registers = 1;
  opts.split.access.period = 3;
  opts.degrade_on_solver_failure = false;
  opts.alloc.fallback_to_baseline = false;
  const PipelineReport report = Engine(opts).run(tg);

  ASSERT_EQ(report.tasks.size(), 2u);
  bool any_infeasible = false;
  for (const TaskReport& tr : report.tasks) {
    EXPECT_EQ(tr.feasible, tr.result.feasible) << tr.name;
    if (!tr.feasible) {
      any_infeasible = true;
      EXPECT_FALSE(tr.failure_reason.empty()) << tr.name;
      EXPECT_NE(tr.solve_summary.find("infeasible"), std::string::npos)
          << tr.name << ": " << tr.solve_summary;
      EXPECT_NE(std::find(report.infeasible_tasks.begin(),
                          report.infeasible_tasks.end(), tr.task),
                report.infeasible_tasks.end())
          << tr.name;
    } else {
      EXPECT_TRUE(tr.failure_reason.empty()) << tr.name;
    }
  }
  ASSERT_TRUE(any_infeasible)
      << "expected at least one infeasible task in this configuration";
  EXPECT_FALSE(report.all_feasible);
  EXPECT_EQ(report.infeasible_tasks.empty(), report.all_feasible);
}

TEST(Engine, FeasibleRunHasNoInfeasibleTasks) {
  EngineOptions opts;
  opts.num_registers = 6;
  const PipelineReport report = Engine(opts).run(paper_example_app());
  EXPECT_TRUE(report.all_feasible);
  EXPECT_TRUE(report.infeasible_tasks.empty());
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.feasible) << tr.name;
    EXPECT_TRUE(tr.failure_reason.empty()) << tr.name;
  }
}

// ---------------------------------------------------------------------
// Auditing

TEST(Engine, AuditOffIsBitIdenticalToPreAuditReports) {
  // audit_level = kOff must not perturb a single byte of the report:
  // same graph, same options, audit off vs on, non-audit fields equal.
  const ir::TaskGraph tg = paper_example_app();
  EngineOptions off;
  off.threads = 2;
  EngineOptions on = off;
  on.audit_level = audit::AuditLevel::kFullCost;

  const PipelineReport a = Engine(off).run(tg);
  const PipelineReport b = Engine(on).run(tg);
  expect_same_report(a, b);  // Compares every non-audit field.

  EXPECT_EQ(a.tasks_with_audit_findings, 0);
  for (const TaskReport& tr : a.tasks) {
    EXPECT_FALSE(tr.audit.audited) << tr.name;
    EXPECT_FALSE(tr.result.audit.audited) << tr.name;
  }
  for (const TaskReport& tr : b.tasks) {
    EXPECT_TRUE(tr.audit.audited) << tr.name;
    EXPECT_TRUE(tr.audit.clean()) << tr.name << ": "
                                  << tr.audit.summary();
  }
}

TEST(Engine, AuditFindingsPropagateThroughRunWithoutTeardown) {
  // An impossible port budget turns every task with storage traffic
  // into an audited failure — but the solves themselves must all still
  // complete and the report must stay fully populated.
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  opts.audit_ports = alloc::PortLimits{};
  opts.audit_ports->mem_read_ports = 0;
  opts.audit_ports->mem_write_ports = 0;
  opts.audit_ports->reg_read_ports = 0;
  opts.audit_ports->reg_write_ports = 0;

  const PipelineReport report = Engine(opts).run(paper_example_app());
  EXPECT_TRUE(report.all_feasible);
  EXPECT_GT(report.tasks_with_audit_findings, 0);
  int with_findings = 0;
  for (const TaskReport& tr : report.tasks) {
    EXPECT_TRUE(tr.feasible) << tr.name;  // Audit never kills a solve.
    EXPECT_TRUE(tr.audit.audited) << tr.name;
    if (!tr.audit.clean()) {
      ++with_findings;
      EXPECT_TRUE(tr.audit.has(audit::FindingKind::kPortOverload))
          << tr.name << ": " << tr.audit.summary();
    }
  }
  EXPECT_EQ(with_findings, report.tasks_with_audit_findings);
}

TEST(Engine, AllocateBatchAuditsEveryResultWithoutTeardown) {
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  opts.audit_ports = alloc::PortLimits{};
  opts.audit_ports->mem_read_ports = 0;
  opts.audit_ports->mem_write_ports = 0;
  opts.audit_ports->reg_read_ports = 0;
  opts.audit_ports->reg_write_ports = 0;
  const Engine engine(opts);

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    problems.push_back(random_problem(seed));
  }
  const std::vector<alloc::AllocationResult> results =
      engine.allocate_batch(problems);
  ASSERT_EQ(results.size(), problems.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].feasible) << "problem " << i;
    EXPECT_TRUE(results[i].audit.audited) << "problem " << i;
    // Every one of these problems has storage traffic, so the zero-port
    // budget must flag every single slot — siblings never mask findings.
    EXPECT_TRUE(results[i].audit.has(audit::FindingKind::kPortOverload))
        << "problem " << i << ": " << results[i].audit.summary();
  }
}

TEST(Engine, AllocateBatchAuditOffLeavesResultsUntouched) {
  EngineOptions off;
  off.threads = 2;
  EngineOptions on = off;
  on.audit_level = audit::AuditLevel::kLegality;

  std::vector<alloc::AllocationProblem> problems;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    problems.push_back(random_problem(seed));
  }
  const auto a = Engine(off).allocate_batch(problems);
  const auto b = Engine(on).allocate_batch(problems);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_result(a[i], b[i], "problem " + std::to_string(i));
    EXPECT_FALSE(a[i].audit.audited);
    EXPECT_TRUE(b[i].audit.audited);
    EXPECT_TRUE(b[i].audit.clean()) << b[i].audit.summary();
  }
}

TEST(Engine, SessionCarriesAuditVerdicts) {
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  const Engine engine(opts);
  Session session = engine.open_session();

  std::vector<std::size_t> tickets;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    tickets.push_back(session.submit(random_problem(seed)));
  }
  const std::vector<alloc::AllocationResult> results = session.collect();
  ASSERT_EQ(results.size(), tickets.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].feasible) << "ticket " << i;
    EXPECT_TRUE(results[i].audit.audited) << "ticket " << i;
    EXPECT_TRUE(results[i].audit.clean())
        << "ticket " << i << ": " << results[i].audit.summary();
  }
}

TEST(Engine, SessionAuditFindingsDoNotBlockSiblingTickets) {
  EngineOptions opts;
  opts.threads = 4;
  opts.audit_level = audit::AuditLevel::kFullCost;
  opts.audit_ports = alloc::PortLimits{};
  opts.audit_ports->mem_read_ports = 0;
  const Engine engine(opts);
  Session session = engine.open_session();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    session.submit(random_problem(seed));
  }
  const std::vector<alloc::AllocationResult> results = session.collect();
  int flagged = 0;
  for (const alloc::AllocationResult& r : results) {
    EXPECT_TRUE(r.feasible);
    if (!r.audit.clean()) ++flagged;
  }
  // Memory-heavy random problems with 4 registers always read memory
  // somewhere, so the zero-read-port budget flags them all — and every
  // sibling solve still delivered a result.
  EXPECT_EQ(flagged, static_cast<int>(results.size()));
}

// ---------------------------------------------------------------------
// Unified options

TEST(Engine, LegacyOptionStructsAreTheEngineOptionCore) {
  // PipelineOptions / ExploreOptions are deprecated aliases: one struct,
  // one place to set num_registers.
  static_assert(std::is_same_v<pipeline::PipelineOptions, EngineOptions>);
  static_assert(std::is_same_v<pipeline::ExploreOptions, EngineOptions>);
  pipeline::PipelineOptions opts;
  opts.num_registers = 7;
  opts.threads = 2;
  const Engine engine(opts);
  EXPECT_EQ(engine.options().num_registers, 7);
  EXPECT_EQ(engine.threads(), 2);
}

}  // namespace
}  // namespace lera::engine
