#include "server/server.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/stream.hpp"

// fork()-based isolation tests skip themselves under TSan (fork from a
// threaded process is unsupported there); everything else runs.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LERA_TEST_UNDER_TSAN 1
#endif
#endif
#if !defined(LERA_TEST_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define LERA_TEST_UNDER_TSAN 1
#endif

#ifdef LERA_TEST_UNDER_TSAN
#define LERA_SKIP_IF_TSAN() \
  GTEST_SKIP() << "fork-based worker isolation is unsupported under TSan"
#else
#define LERA_SKIP_IF_TSAN() (void)0
#endif

// End-to-end tests of the allocation service over in-memory channels:
// the same Server::serve() path pipe mode and the socket listener use,
// driven deterministically. Covers the typed-rejection contract
// (bad_request with the parser diagnostic, queue_full, tenant_quota,
// deadline_infeasible, draining), response ordering, graceful drain,
// health, and the accounting identity under a client disconnect.

namespace lera::server {
namespace {

constexpr const char* kTinyProblem =
    "steps 7\nregisters 3\n"
    "var a write 1 reads 3\nvar b write 2 reads 4\n"
    "var c write 3 reads 6\n";

std::string solve_frame(const std::string& id, const std::string& payload,
                        long long deadline_ms = -1,
                        const std::string& tenant = "") {
  Frame f;
  f.verb = FrameVerb::kSolve;
  f.id = id;
  f.tenant = tenant;
  f.deadline_ms = deadline_ms;
  f.payload = payload;
  return encode_frame(f);
}

/// Runs one scripted conversation: writes every chunk, closes the
/// request direction, serves to completion, and returns the response
/// lines in order.
std::vector<std::string> converse(Server& server,
                                  const std::vector<std::string>& chunks) {
  MemoryChannel chan;
  std::thread serving([&] { server.serve(chan.server_end()); });
  for (const std::string& c : chunks) {
    if (!chan.client_end().write(c)) break;
  }
  chan.close_client_writes();
  serving.join();
  chan.close_server_writes();

  char buffer[4096];
  std::string acc;
  for (;;) {
    const std::ptrdiff_t n =
        chan.client_end().read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    acc.append(buffer, static_cast<std::size_t>(n));
  }
  std::vector<std::string> lines;
  std::size_t nl;
  while ((nl = acc.find('\n')) != std::string::npos) {
    lines.push_back(acc.substr(0, nl));
    acc.erase(0, nl + 1);
  }
  return lines;
}

ServerOptions deterministic_options() {
  ServerOptions opts;
  opts.engine.threads = 1;
  return opts;
}

TEST(Server, AnswersSolvesInFrameOrderDeterministically) {
  ServerOptions opts = deterministic_options();
  Server server(opts);
  const std::vector<std::string> lines = converse(
      server, {"PING 0 id=p1\n", solve_frame("s1", kTinyProblem),
               solve_frame("s2", kTinyProblem), "PING 0 id=p2\n"});
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "LERA_PONG p1");
  EXPECT_EQ(lines[1].rfind("LERA_RESULT s1 status=ok", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_RESULT s2 status=ok", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3], "LERA_PONG p2");
  // Identical segments, identical engine: identical result lines
  // except the id and latency.
  EXPECT_NE(lines[1].find("energy="), std::string::npos);
  EXPECT_NE(lines[1].find("assign="), std::string::npos);

  // Byte-determinism across runs (threads=1): a second identical
  // conversation produces the same result line modulo latency.
  Server server2(deterministic_options());
  const std::vector<std::string> again =
      converse(server2, {solve_frame("s1", kTinyProblem)});
  ASSERT_EQ(again.size(), 1u);
  const auto strip_latency = [](const std::string& line) {
    const std::size_t at = line.find(" latency_ms=");
    const std::size_t end = line.find(' ', at + 1);
    return line.substr(0, at) +
           (end == std::string::npos ? "" : line.substr(end));
  };
  EXPECT_EQ(strip_latency(again[0]), strip_latency(lines[1]));
}

TEST(Server, ParseErrorBecomesTypedBadRequestAndConnectionSurvives) {
  Server server(deterministic_options());
  const std::vector<std::string> lines = converse(
      server, {solve_frame("broken", "steps 3\nwat is this\n"),
               solve_frame("fine", kTinyProblem)});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("LERA_REJECT broken reason=bad_request", 0), 0u)
      << lines[0];
  // The parser's diagnostic (with its line number) rides along.
  EXPECT_NE(lines[0].find("detail=line 2"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[1].rfind("LERA_RESULT fine", 0), 0u) << lines[1];

  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.rejected_by_reason[static_cast<int>(
                RejectReason::kBadRequest)],
            1);
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

TEST(Server, MalformedAndOversizedFramesGetTypedRejects) {
  ServerOptions opts = deterministic_options();
  opts.framing.max_frame_bytes = 64;
  Server server(opts);
  const std::vector<std::string> lines = converse(
      server,
      {"GET / HTTP/1.1\n",
       "SOLVE 5000 id=big\n" + std::string(5000, 'z'),
       "PING 0 id=alive\n"});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("reason=bad_frame"), std::string::npos);
  EXPECT_EQ(lines[1].rfind("LERA_REJECT big reason=frame_too_large", 0),
            0u)
      << lines[1];
  EXPECT_EQ(lines[2], "LERA_PONG alive");
}

/// Gate the engine's solve path: the post-solve hook blocks until
/// release(), pinning requests in flight so admission decisions become
/// deterministic.
struct SolveGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
};

TEST(Server, OverloadShedsWithTypedQueueFullNeverSilently) {
  ServerOptions opts;
  // Pool threads, not inline solving: with threads=1 the engine solves
  // on the submitting (reader) thread, and a gated solve would block
  // frame processing instead of pinning work in flight.
  opts.engine.threads = 2;
  opts.admission.max_queue = 2;
  auto gate = std::make_shared<SolveGate>();
  opts.engine.alloc.solve.post_solve_hook =
      [gate](const netflow::Graph&, netflow::FlowSolution&) {
        gate->wait();
      };
  Server server(opts);

  MemoryChannel chan;
  std::thread serving([&] { server.serve(chan.server_end()); });
  chan.client_end().write(solve_frame("s1", kTinyProblem));
  chan.client_end().write(solve_frame("s2", kTinyProblem));
  chan.client_end().write(solve_frame("s3", kTinyProblem));
  // s1/s2 fill the queue (the gate pins them in flight); s3 must be
  // shed. Wait for the shed to be booked, then open the gate.
  for (int spin = 0; spin < 500; ++spin) {
    if (server.metrics().rejected_total >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.metrics().rejected_by_reason[static_cast<int>(
                RejectReason::kQueueFull)],
            1);
  gate->release();
  chan.close_client_writes();
  serving.join();
  chan.close_server_writes();

  char buffer[4096];
  std::string acc;
  for (;;) {
    const std::ptrdiff_t n =
        chan.client_end().read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    acc.append(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_NE(acc.find("LERA_RESULT s1"), std::string::npos) << acc;
  EXPECT_NE(acc.find("LERA_RESULT s2"), std::string::npos) << acc;
  EXPECT_NE(acc.find("LERA_REJECT s3 reason=queue_full"),
            std::string::npos)
      << acc;
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

TEST(Server, TenantQuotaIsEnforcedPerTenant) {
  ServerOptions opts;
  opts.engine.threads = 2;  // See OverloadSheds... for why not 1.
  opts.admission.max_queue = 16;
  opts.admission.per_tenant_queue = 1;
  auto gate = std::make_shared<SolveGate>();
  opts.engine.alloc.solve.post_solve_hook =
      [gate](const netflow::Graph&, netflow::FlowSolution&) {
        gate->wait();
      };
  Server server(opts);

  MemoryChannel chan;
  std::thread serving([&] { server.serve(chan.server_end()); });
  chan.client_end().write(solve_frame("a1", kTinyProblem, -1, "alpha"));
  chan.client_end().write(solve_frame("a2", kTinyProblem, -1, "alpha"));
  chan.client_end().write(solve_frame("b1", kTinyProblem, -1, "beta"));
  for (int spin = 0; spin < 500; ++spin) {
    if (server.metrics().rejected_total >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  gate->release();
  chan.close_client_writes();
  serving.join();
  chan.close_server_writes();

  char buffer[4096];
  std::string acc;
  for (;;) {
    const std::ptrdiff_t n =
        chan.client_end().read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    acc.append(buffer, static_cast<std::size_t>(n));
  }
  // alpha's second request is shed; beta, a different tenant, rides on.
  EXPECT_NE(acc.find("LERA_REJECT a2 reason=tenant_quota"),
            std::string::npos)
      << acc;
  EXPECT_NE(acc.find("LERA_RESULT b1"), std::string::npos) << acc;
}

TEST(Server, InfeasibleDeadlinesAreShedUpFront) {
  ServerOptions opts = deterministic_options();
  opts.admission.min_feasible_deadline_ms = 100;
  Server server(opts);
  const std::vector<std::string> lines = converse(
      server, {solve_frame("zero", kTinyProblem, 0),
               solve_frame("tight", kTinyProblem, 5),
               solve_frame("fine", kTinyProblem, 5000)});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(
      lines[0].rfind("LERA_REJECT zero reason=deadline_infeasible", 0),
      0u)
      << lines[0];
  EXPECT_EQ(
      lines[1].rfind("LERA_REJECT tight reason=deadline_infeasible", 0),
      0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_RESULT fine", 0), 0u) << lines[2];
}

TEST(Server, DrainStopsAdmissionFlushesAndReportsCompletion) {
  ServerOptions opts = deterministic_options();
  opts.drain_grace_seconds = 2;
  Server server(opts);
  const std::vector<std::string> lines = converse(
      server, {solve_frame("before", kTinyProblem), "DRAIN 0 id=d\n",
               solve_frame("after", kTinyProblem)});
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("LERA_RESULT before", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("LERA_DRAIN d state=started", 0), 0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_REJECT after reason=draining", 0), 0u)
      << lines[2];
  // Connection close under drain ends with the completion report plus
  // the metric block — the supervisor's proof nothing was dropped.
  EXPECT_EQ(lines[3].rfind("LERA_DRAIN - state=complete", 0), 0u)
      << lines[3];
  EXPECT_NE(lines[3].find("served=1"), std::string::npos) << lines[3];
  bool saw_metric = false;
  for (const std::string& l : lines) {
    if (l.rfind("LERA_METRIC server_", 0) == 0) saw_metric = true;
  }
  EXPECT_TRUE(saw_metric);
  EXPECT_TRUE(server.draining());
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

TEST(Server, HealthReportsStateAndStatusWord) {
  Server server(deterministic_options());
  const std::vector<std::string> lines =
      converse(server, {"HEALTH 0 id=h\n"});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("LERA_HEALTH h status=ok", 0), 0u) << lines[0];

  const HealthStatus before = server.health();
  EXPECT_FALSE(before.draining);
  EXPECT_FALSE(before.overloaded);
  server.begin_drain();
  const HealthStatus after = server.health();
  EXPECT_TRUE(after.draining);
  EXPECT_EQ(after.status_word(), "draining");
}

TEST(Server, ClientDisconnectMidRequestStillAccountsEverything) {
  ServerOptions opts;
  opts.engine.threads = 2;  // See OverloadSheds... for why not 1.
  auto gate = std::make_shared<SolveGate>();
  opts.engine.alloc.solve.post_solve_hook =
      [gate](const netflow::Graph&, netflow::FlowSolution&) {
        gate->wait();
      };
  Server server(opts);

  MemoryChannel chan;
  std::thread serving([&] { server.serve(chan.server_end()); });
  chan.client_end().write(solve_frame("gone1", kTinyProblem));
  chan.client_end().write(solve_frame("gone2", kTinyProblem));
  // Wait until both solves are admitted and in flight (a hard
  // disconnect drops bytes the server has not read yet — that would be
  // a client that died before the request ever arrived).
  for (int spin = 0; spin < 500; ++spin) {
    if (server.metrics().solve_requests == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.metrics().solve_requests, 2);
  // The client dies mid-conversation with solves in flight.
  chan.disconnect_client();
  gate->release();
  serving.join();  // Must return: no hang on a vanished peer.

  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.solve_requests, 2);
  // Every admitted request reached a terminal state even though nobody
  // is listening for the answers.
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

TEST(Server, TruncatedStreamYieldsTypedRejectNotSilence) {
  Server server(deterministic_options());
  const std::vector<std::string> lines = converse(
      server, {"SOLVE 100 id=cut\nonly part of the payload"});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("LERA_REJECT cut reason=bad_frame", 0), 0u)
      << lines[0];
  EXPECT_NE(lines[0].find("bytes short"), std::string::npos) << lines[0];
}

TEST(Server, IsolatedModeMatchesInProcessVerdictBytes) {
  LERA_SKIP_IF_TSAN();
  // Same conversation through both execution modes: the worker child
  // uses the very formatting helpers the in-process path uses, so the
  // verdict lines must match byte for byte modulo the latency figure.
  Server in_process(deterministic_options());
  const std::vector<std::string> direct = converse(
      in_process, {solve_frame("s1", kTinyProblem), "PING 0 id=p\n"});

  ServerOptions opts = deterministic_options();
  opts.isolation.workers = 1;
  Server isolated(opts);
  const std::vector<std::string> via_worker = converse(
      isolated, {solve_frame("s1", kTinyProblem), "PING 0 id=p\n"});

  const auto strip_latency = [](const std::string& line) {
    const std::size_t at = line.find(" latency_ms=");
    if (at == std::string::npos) return line;
    const std::size_t end = line.find(' ', at + 1);
    return line.substr(0, at) +
           (end == std::string::npos ? "" : line.substr(end));
  };
  ASSERT_EQ(direct.size(), via_worker.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(strip_latency(direct[i]), strip_latency(via_worker[i]))
        << "line " << i;
  }
}

TEST(Server, WorkerCrashAndQuarantineAreTypedAndAccounted) {
  LERA_SKIP_IF_TSAN();
  ServerOptions opts = deterministic_options();
  opts.isolation.workers = 1;
  opts.isolation.poison_threshold = 1;
  opts.isolation.restart_backoff_seconds = 0.005;
  opts.isolation.worker.crash.marker = "poisonpill";
  Server server(opts);

  const std::string poison =
      "steps 6\nregisters 2\n"
      "var poisonpill write 1 reads 4\nvar b write 2 reads 5\n";
  const std::vector<std::string> lines = converse(
      server, {solve_frame("c1", poison), solve_frame("c2", poison),
               solve_frame("ok", kTinyProblem)});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("LERA_REJECT c1 reason=worker_crashed", 0), 0u)
      << lines[0];
  EXPECT_NE(lines[0].find("worker died"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[1].rfind("LERA_REJECT c2 reason=quarantined", 0), 0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_RESULT ok status=ok", 0), 0u) << lines[2];

  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.rejected_by_reason[static_cast<int>(
                RejectReason::kWorkerCrashed)],
            1);
  EXPECT_EQ(s.rejected_by_reason[static_cast<int>(
                RejectReason::kQuarantined)],
            1);
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);

  const HealthStatus health = server.health();
  EXPECT_TRUE(health.isolation_enabled);
  EXPECT_GE(health.worker_crashes, 1);
  EXPECT_EQ(health.quarantined_fingerprints, 1);
}

TEST(Server, DrainDuringWorkerRestartYieldsOneTypedVerdictEach) {
  LERA_SKIP_IF_TSAN();
  // The nasty interleaving: a crash puts the only worker slot into its
  // respawn backoff, a drain lands while the next request is waiting on
  // that backoff, and the backoff (5 s) far outlasts the drain grace
  // (0.3 s). The queued request must still resolve to exactly one
  // typed verdict — withdrawn, not stuck, not dropped.
  ServerOptions opts = deterministic_options();
  opts.drain_grace_seconds = 0.3;
  opts.isolation.workers = 1;
  opts.isolation.poison_threshold = 100;  // Quarantine stays out of play.
  opts.isolation.restart_backoff_seconds = 5.0;
  opts.isolation.restart_backoff_cap_seconds = 10.0;
  opts.isolation.worker.crash.marker = "poisonpill";
  Server server(opts);

  const std::string poison =
      "steps 6\nregisters 2\n"
      "var poisonpill write 1 reads 4\nvar b write 2 reads 5\n";
  const std::vector<std::string> lines = converse(
      server, {solve_frame("crash", poison),
               solve_frame("queued", kTinyProblem), "DRAIN 0 id=d\n"});
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("LERA_REJECT crash reason=worker_crashed", 0),
            0u)
      << lines[0];
  EXPECT_EQ(lines[1].rfind("LERA_CANCELLED queued", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("LERA_DRAIN d state=started", 0), 0u)
      << lines[2];
  EXPECT_EQ(lines[3].rfind("LERA_DRAIN - state=complete", 0), 0u)
      << lines[3];
  // The drain ledger carries the supervisor's counters.
  bool saw_worker_metric = false;
  for (const std::string& l : lines) {
    if (l.rfind("LERA_METRIC server_worker_crashes", 0) == 0) {
      saw_worker_metric = true;
    }
  }
  EXPECT_TRUE(saw_worker_metric);

  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
  EXPECT_EQ(s.solve_requests, 2);
}

TEST(Server, AbruptPeerDeathOnFdStreamIsCleanEndOfStreamNotError) {
  // satellite: a TCP client that vanishes (RST) must account exactly
  // like the in-memory chaos harness's disconnects — write() returns
  // false, read() reports end-of-stream — never a generic error.
  ::signal(SIGPIPE, SIG_IGN);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  FdStream stream(sv[0], sv[0], /*owns_fds=*/true);
  ASSERT_TRUE(stream.write("hello"));
  // Peer dies abruptly with our bytes unread: the kernel turns further
  // traffic into EPIPE/ECONNRESET.
  ::close(sv[1]);
  EXPECT_FALSE(stream.write(std::string(1 << 16, 'x')));
  EXPECT_TRUE(stream.peer_reset());
  char buffer[64];
  std::ptrdiff_t n;
  do {
    n = stream.read(buffer, sizeof buffer);
  } while (n == ByteStream::kReadAgain);
  EXPECT_EQ(n, 0) << "peer reset must read as clean end-of-stream";
}

TEST(Server, WatchdogTripsOnQueueWaitAndRecovers) {
  // Unit-level: drive the metrics watchdog directly through its
  // recording path (the server wires the same calls).
  ServerMetrics::Options mo;
  mo.queue_budget_ms = 50;
  mo.watchdog_min_samples = 4;
  ServerMetrics metrics(mo);
  EXPECT_FALSE(metrics.watchdog_tripped());
  for (int i = 0; i < 16; ++i) {
    metrics.on_terminal(Terminal::kServed, 200, 150);
  }
  EXPECT_TRUE(metrics.watchdog_tripped());
  // Hysteresis: recovery needs the p95 under half the budget.
  for (int i = 0; i < 600; ++i) {
    metrics.on_terminal(Terminal::kServed, 5, 1);
  }
  EXPECT_FALSE(metrics.watchdog_tripped());
}

// --- Allocation cache ------------------------------------------------

ServerOptions cached_options(std::size_t entries = 64) {
  ServerOptions opts = deterministic_options();
  opts.engine.cache_entries = entries;
  return opts;
}

/// Strips the one volatile token (latency_ms=...) so identical answers
/// compare equal across runs.
std::string without_latency(std::string line) {
  const std::size_t pos = line.find(" latency_ms=");
  if (pos == std::string::npos) return line;
  std::size_t end = line.find(' ', pos + 1);
  if (end == std::string::npos) end = line.size();
  return line.erase(pos, end - pos);
}

TEST(ServerCache, RepeatIsServedFromCacheWithIdenticalAnswer) {
  Server server(cached_options());
  // Connection 1 solves (and the writer inserts); connections 2 and 3
  // repeat the exact bytes. Separate connections make the insert-before
  // -lookup ordering deterministic.
  const std::vector<std::string> first =
      converse(server, {solve_frame("a", kTinyProblem)});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(first[0].rfind("LERA_RESULT a status=ok", 0), 0u) << first[0];
  EXPECT_EQ(first[0].find(" cached=1"), std::string::npos);

  const std::vector<std::string> second =
      converse(server, {solve_frame("b", kTinyProblem)});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].find(" cached=1"), std::string::npos) << second[0];

  // Third repeat exercises the tier-0 exact-text path (populated by the
  // canonical hit above); the answer must still be identical.
  const std::vector<std::string> third =
      converse(server, {solve_frame("c", kTinyProblem)});
  ASSERT_EQ(third.size(), 1u);
  EXPECT_NE(third[0].find(" cached=1"), std::string::npos) << third[0];

  // Same energy and assignment tokens on all three.
  const auto tail_of = [](const std::string& line) {
    const std::size_t at = line.find(" energy=");
    return line.substr(at);
  };
  const auto strip_cached = [](std::string s) {
    const std::size_t at = s.find(" cached=1");
    if (at != std::string::npos) s.erase(at, std::string(" cached=1").size());
    return s;
  };
  EXPECT_EQ(without_latency(tail_of(first[0])),
            strip_cached(without_latency(tail_of(second[0]))));
  EXPECT_EQ(without_latency(tail_of(first[0])),
            strip_cached(without_latency(tail_of(third[0]))));

  const HealthStatus h = server.health();
  EXPECT_TRUE(h.cache_enabled);
  EXPECT_EQ(h.cache_entries, 1);
  // Canonical-cache hits; the tier-0 text hit is counted separately in
  // the metrics but still lands in the cache_hits terminal.
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.cache_hits, 2);
  EXPECT_EQ(s.served, 1);
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

TEST(ServerCache, PermutedRepeatHitsThroughCanonicalFingerprint) {
  Server server(cached_options());
  const char* permuted_problem =
      "steps 7\nregisters 3\n"
      "var c write 3 reads 6\nvar a write 1 reads 3\n"
      "var b write 2 reads 4\n";
  const std::vector<std::string> first =
      converse(server, {solve_frame("a", kTinyProblem)});
  ASSERT_EQ(first.size(), 1u);
  const std::vector<std::string> second =
      converse(server, {solve_frame("b", permuted_problem)});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].find(" cached=1"), std::string::npos) << second[0];
  // Remapped onto the permuted declaration order: same energy.
  const auto token_of = [](const std::string& line, const char* key) {
    const std::size_t at = line.find(key);
    const std::size_t end = line.find(' ', at + 1);
    return line.substr(at, end - at);
  };
  EXPECT_EQ(token_of(first[0], " energy="),
            token_of(second[0], " energy="));
}

TEST(ServerCache, CacheOffOutputIsBitIdenticalToDefault) {
  // --cache-entries 0 (the default) must not change a byte of output.
  Server plain(deterministic_options());
  Server cached_off(deterministic_options());
  const std::vector<std::string> chunks = {
      solve_frame("x", kTinyProblem), solve_frame("y", kTinyProblem),
      "HEALTH 0 id=h\n"};
  std::vector<std::string> a = converse(plain, chunks);
  std::vector<std::string> b = converse(cached_off, chunks);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rfind("LERA_RESULT", 0) != 0) continue;
    // HEALTH carries genuinely volatile load fields (in_flight, queue
    // timings) that differ run to run even on one server; the contract
    // under test is the answer bytes, compared below, plus the absence
    // of cache tokens anywhere, checked for both servers after.
    EXPECT_EQ(without_latency(a[i]), without_latency(b[i])) << i;
  }
  for (const std::vector<std::string>* lines : {&a, &b}) {
    for (const std::string& line : *lines) {
      EXPECT_EQ(line.find("cache"), std::string::npos) << line;
    }
  }
  EXPECT_FALSE(plain.health().cache_enabled);
}

TEST(ServerCache, HealthAndStatsExposeCacheFieldsOnlyWhenEnabled) {
  Server server(cached_options());
  // STATS answers with a multi-line LERA_METRIC block terminated by
  // LERA_STATS_END, so scan the whole transcript rather than indexing.
  const auto transcript_of = [](const std::vector<std::string>& lines) {
    std::string joined;
    for (const std::string& line : lines) joined += line + "\n";
    return joined;
  };
  const std::vector<std::string> lines = converse(
      server, {solve_frame("a", kTinyProblem),
               "HEALTH 0 id=h1\n", "STATS 0 id=s1\n"});
  const std::string on = transcript_of(lines);
  EXPECT_NE(on.find("LERA_HEALTH h1"), std::string::npos) << on;
  EXPECT_NE(on.find("cache_hits="), std::string::npos) << on;
  EXPECT_NE(on.find("LERA_METRIC server_cache_entries"),
            std::string::npos) << on;
  EXPECT_NE(on.find("LERA_METRIC server_cache_text_hits"),
            std::string::npos) << on;
  EXPECT_NE(on.find("LERA_STATS_END s1"), std::string::npos) << on;

  Server off(deterministic_options());
  const std::string off_transcript = transcript_of(
      converse(off, {"HEALTH 0 id=h\n", "STATS 0 id=s\n"}));
  EXPECT_NE(off_transcript.find("LERA_HEALTH h"), std::string::npos);
  EXPECT_NE(off_transcript.find("LERA_STATS_END s"), std::string::npos);
  EXPECT_EQ(off_transcript.find("server_cache_"), std::string::npos)
      << off_transcript;
  EXPECT_EQ(off_transcript.find("cache_hits="), std::string::npos)
      << off_transcript;
}

TEST(ServerCache, JitteredInstanceMissesAndIsSolvedFresh) {
  Server server(cached_options());
  const char* jittered =
      "steps 7\nregisters 2\n"  // One fewer register: a new instance.
      "var a write 1 reads 3\nvar b write 2 reads 4\n"
      "var c write 3 reads 6\n";
  converse(server, {solve_frame("a", kTinyProblem)});
  const std::vector<std::string> second =
      converse(server, {solve_frame("b", jittered)});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].find(" cached=1"), std::string::npos) << second[0];
  EXPECT_EQ(server.metrics().cache_hits, 0);
}

TEST(ServerCache, IsolatedModeCachesInParentAndSkipsWorkerOnHit) {
  LERA_SKIP_IF_TSAN();
  ServerOptions opts = cached_options();
  opts.isolation.workers = 1;
  Server server(opts);
  const std::vector<std::string> first =
      converse(server, {solve_frame("a", kTinyProblem)});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(first[0].rfind("LERA_RESULT a status=ok", 0), 0u) << first[0];
  const std::vector<std::string> second =
      converse(server, {solve_frame("b", kTinyProblem)});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].find(" cached=1"), std::string::npos) << second[0];
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.served, 1);
  EXPECT_EQ(s.accounted_requests(), s.solve_requests);
}

}  // namespace
}  // namespace lera::server
