#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "sched/force_directed.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_gen.hpp"

namespace lera::sched {
namespace {

TEST(ForceDirected, ValidAtTightestLatency) {
  const ir::BasicBlock bb = workloads::make_elliptic_wave_filter();
  const int bound = asap(bb).length(bb);
  const Schedule s = force_directed_schedule(bb, bound);
  EXPECT_TRUE(s.verify(bb).empty()) << s.verify(bb);
  EXPECT_LE(s.length(bb), bound);
}

TEST(ForceDirected, ValidWithSlack) {
  const ir::BasicBlock bb = workloads::make_fir(8);
  const int bound = asap(bb).length(bb) + 6;
  const Schedule s = force_directed_schedule(bb, bound);
  EXPECT_TRUE(s.verify(bb).empty()) << s.verify(bb);
  EXPECT_LE(s.length(bb), bound);
}

TEST(ForceDirected, BalancesFunctionalUnits) {
  // With slack, force-directed spreading must not exceed ASAP's peaks,
  // and usually improves the multiplier peak on MUL-heavy kernels.
  const ir::BasicBlock bb = workloads::make_rsp(4);
  const Schedule greedy = asap(bb);
  const FuUsage asap_usage = measure_fu_usage(bb, greedy);
  const Schedule fd =
      force_directed_schedule(bb, greedy.length(bb) + 4);
  const FuUsage fd_usage = measure_fu_usage(bb, fd);
  EXPECT_TRUE(fd.verify(bb).empty()) << fd.verify(bb);
  EXPECT_LE(fd_usage.peak_muls, asap_usage.peak_muls);
  EXPECT_LE(fd_usage.peak_alus, asap_usage.peak_alus);
  EXPECT_LT(fd_usage.peak_muls + fd_usage.peak_alus,
            asap_usage.peak_muls + asap_usage.peak_alus);
}

TEST(ForceDirected, DeterministicAcrossRuns) {
  const ir::BasicBlock bb = workloads::make_dct4();
  const int bound = asap(bb).length(bb) + 2;
  const Schedule a = force_directed_schedule(bb, bound);
  const Schedule b = force_directed_schedule(bb, bound);
  for (const ir::Operation& op : bb.ops()) {
    EXPECT_EQ(a.start(op.id), b.start(op.id));
  }
}

TEST(ForceDirected, RandomBlocksStayValid) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ir::BasicBlock bb = workloads::random_dfg(seed);
    const int bound = asap(bb).length(bb) + static_cast<int>(seed % 5);
    const Schedule s = force_directed_schedule(bb, bound);
    EXPECT_TRUE(s.verify(bb).empty())
        << "seed " << seed << ": " << s.verify(bb);
    EXPECT_LE(s.length(bb), bound) << "seed " << seed;
  }
}

TEST(ForceDirected, FeedsTheAllocator) {
  const ir::BasicBlock bb = workloads::make_fft_butterfly();
  const Schedule s =
      force_directed_schedule(bb, asap(bb).length(bb) + 3);
  energy::EnergyParams params;
  const alloc::AllocationProblem p =
      alloc::make_problem_from_block(bb, s, 4, params);
  const alloc::AllocationResult r = alloc::allocate(p);
  EXPECT_TRUE(r.feasible) << r.message;
}

TEST(MeasureFuUsage, CountsMultiCycleOccupancy) {
  ir::BasicBlock bb("t");
  const ir::ValueId a = bb.input("a");
  const ir::ValueId b = bb.input("b");
  const ir::ValueId m1 = bb.emit(ir::Opcode::kMul, {a, b}, "m1");
  const ir::ValueId m2 = bb.emit(ir::Opcode::kMul, {a, b}, "m2");
  bb.output(m1);
  bb.output(m2);
  const Schedule s = asap(bb);  // Both muls start at step 1.
  const FuUsage usage = measure_fu_usage(bb, s);
  EXPECT_EQ(usage.peak_muls, 2);
  EXPECT_EQ(usage.peak_alus, 0);
}

}  // namespace
}  // namespace lera::sched
