#pragma once

#include <string>
#include <vector>

/// \file report.hpp
/// Typed audit findings. These are the *output* types of the allocation
/// auditor (audit/audit.hpp) and deliberately depend on nothing but the
/// standard library, so any layer — including alloc::AllocationResult,
/// which the auditor itself inspects — can carry an AuditReport without
/// a dependency cycle.
///
/// A finding is a structured fact (kind + value/step/location + the
/// expected-vs-actual numbers), not a string: callers dispatch on
/// FindingKind, the fuzz shrinker matches findings across problem
/// reductions, and summary() exists only for humans.

namespace lera::audit {

/// How much checking the auditor performs (Engine/Session option).
enum class AuditLevel {
  kOff,       ///< No auditing; results pass through untouched.
  kLegality,  ///< Structural legality only (capacity, overlap, pins).
  kFullCost,  ///< Legality + independent energy/stats recount +
              ///< exhaustive-optimum cross-check on small instances.
};

enum class FindingKind {
  /// Problem/assignment structure is broken (segment coverage, size
  /// mismatch) — the remaining checks may be meaningless.
  kStructure,
  /// A segment uses a register index outside [0, R).
  kRegisterRange,
  /// One register holds two different live values at some boundary.
  kRegisterOverlap,
  /// More than R register-resident segments at some boundary.
  kCapacityExceeded,
  /// A forced_register segment (§5.2 lower bound 1) placed in memory.
  kForcedInMemory,
  /// A forbidden_register segment (§7 capacity 0) placed in a register.
  kForbiddenInRegister,
  /// Per-step storage traffic exceeds a port budget (§7).
  kPortOverload,
  /// The result's claimed access counts differ from the recount.
  kStatsMismatch,
  /// The result's claimed energy differs from the independent replay.
  kEnergyMismatch,
  /// model_energy (base + flow cost) disagrees with the replayed energy
  /// under the configured register model — the eqs. (3)-(10) arc-cost
  /// algebra and the replay no longer tell the same story.
  kCostInconsistent,
  /// The result's energy exceeds the exhaustive optimum.
  kNotOptimal,
  /// The result claims infeasibility that first principles refute.
  kFalseInfeasible,
};

inline const char* to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kStructure: return "structure";
    case FindingKind::kRegisterRange: return "register-range";
    case FindingKind::kRegisterOverlap: return "register-overlap";
    case FindingKind::kCapacityExceeded: return "capacity-exceeded";
    case FindingKind::kForcedInMemory: return "forced-in-memory";
    case FindingKind::kForbiddenInRegister: return "forbidden-in-register";
    case FindingKind::kPortOverload: return "port-overload";
    case FindingKind::kStatsMismatch: return "stats-mismatch";
    case FindingKind::kEnergyMismatch: return "energy-mismatch";
    case FindingKind::kCostInconsistent: return "cost-inconsistent";
    case FindingKind::kNotOptimal: return "not-optimal";
    case FindingKind::kFalseInfeasible: return "false-infeasible";
  }
  return "unknown";
}

inline const char* to_string(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kLegality: return "legality";
    case AuditLevel::kFullCost: return "full-cost";
  }
  return "unknown";
}

struct AuditFinding {
  FindingKind kind = FindingKind::kStructure;
  int var = -1;       ///< Variable involved (index into lifetimes), or -1.
  int seg = -1;       ///< Segment involved, or -1.
  int step = -1;      ///< Control step / boundary involved, or -1.
  int location = -1;  ///< Register index involved, or -1 (memory / n/a).
  double expected = 0;  ///< For numeric mismatches: the recomputed truth.
  double actual = 0;    ///< For numeric mismatches: the claimed value.
  std::string detail;   ///< Human-readable elaboration.

  std::string to_string() const {
    std::string s = audit::to_string(kind);
    if (var >= 0) s += " var=" + std::to_string(var);
    if (seg >= 0) s += " seg=" + std::to_string(seg);
    if (step >= 0) s += " step=" + std::to_string(step);
    if (location >= 0) s += " reg=" + std::to_string(location);
    if (expected != 0 || actual != 0) {
      s += " expected=" + std::to_string(expected) +
           " actual=" + std::to_string(actual);
    }
    if (!detail.empty()) s += " (" + detail + ")";
    return s;
  }
};

struct AuditReport {
  AuditLevel level = AuditLevel::kOff;
  /// True when the auditor actually ran (level != off).
  bool audited = false;
  std::vector<AuditFinding> findings;

  bool clean() const { return findings.empty(); }
  bool has(FindingKind kind) const {
    for (const AuditFinding& f : findings) {
      if (f.kind == kind) return true;
    }
    return false;
  }
  /// Findings that make the allocation *illegal* (as opposed to merely
  /// mis-priced): structure, range, overlap, capacity, pins, ports.
  bool legal() const {
    for (const AuditFinding& f : findings) {
      switch (f.kind) {
        case FindingKind::kStructure:
        case FindingKind::kRegisterRange:
        case FindingKind::kRegisterOverlap:
        case FindingKind::kCapacityExceeded:
        case FindingKind::kForcedInMemory:
        case FindingKind::kForbiddenInRegister:
        case FindingKind::kPortOverload:
          return false;
        default:
          break;
      }
    }
    return true;
  }

  std::string summary() const {
    if (!audited) return "audit: off";
    std::string s = "audit(";
    s += audit::to_string(level);
    s += "): ";
    if (clean()) return s + "clean";
    s += std::to_string(findings.size()) + " finding(s): ";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (i) s += "; ";
      s += findings[i].to_string();
    }
    return s;
  }
};

}  // namespace lera::audit
