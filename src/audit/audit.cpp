#include "audit/audit.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "alloc/evaluate.hpp"
#include "alloc/exhaustive.hpp"

namespace lera::audit {

namespace {

using alloc::AllocationProblem;
using alloc::AllocationResult;
using alloc::Assignment;
using lifetime::CutKind;
using lifetime::Segment;

/// Finding collector with a cap, so one corruption that violates every
/// boundary it crosses cannot balloon the report.
class Findings {
 public:
  Findings(AuditReport& report, std::size_t cap)
      : report_(report), cap_(cap) {}

  void add(AuditFinding f) {
    if (report_.findings.size() < cap_) {
      report_.findings.push_back(std::move(f));
    }
  }

  AuditFinding& make(FindingKind kind) {
    scratch_ = AuditFinding{};
    scratch_.kind = kind;
    return scratch_;
  }

  void commit() { add(scratch_); }

 private:
  AuditReport& report_;
  std::size_t cap_;
  AuditFinding scratch_;
};

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Structural soundness: the segments must tile every lifetime exactly
/// (start at the write, chain contiguously, die at the last read) and
/// the assignment must cover them one-to-one. Nothing downstream is
/// trustworthy when this fails.
bool check_structure(const AllocationProblem& p, const Assignment& a,
                     Findings& out) {
  bool ok = true;
  if (a.size() != p.segments.size()) {
    auto& f = out.make(FindingKind::kStructure);
    f.expected = static_cast<double>(p.segments.size());
    f.actual = static_cast<double>(a.size());
    f.detail = "assignment size != segment count";
    out.commit();
    return false;
  }
  if (p.activity.size() != p.lifetimes.size()) {
    auto& f = out.make(FindingKind::kStructure);
    f.detail = "activity matrix size != variable count";
    out.commit();
    ok = false;
  }

  std::vector<bool> seen(p.lifetimes.size(), false);
  std::size_t i = 0;
  while (i < p.segments.size()) {
    const int var = p.segments[i].var;
    if (var < 0 || static_cast<std::size_t>(var) >= p.lifetimes.size()) {
      auto& f = out.make(FindingKind::kStructure);
      f.seg = static_cast<int>(i);
      f.detail = "segment references unknown variable";
      out.commit();
      return false;
    }
    if (seen[static_cast<std::size_t>(var)]) {
      auto& f = out.make(FindingKind::kStructure);
      f.var = var;
      f.detail = "variable's segments are not contiguous in the array";
      out.commit();
      return false;
    }
    seen[static_cast<std::size_t>(var)] = true;

    const lifetime::Lifetime& lt =
        p.lifetimes[static_cast<std::size_t>(var)];
    if (lt.read_times.empty()) {
      auto& f = out.make(FindingKind::kStructure);
      f.var = var;
      f.detail = "variable has no reads";
      out.commit();
      return false;
    }
    std::size_t last = i;
    while (last + 1 < p.segments.size() &&
           p.segments[last + 1].var == var) {
      ++last;
    }
    if (p.segments[i].start != lt.write_time) {
      auto& f = out.make(FindingKind::kStructure);
      f.var = var;
      f.seg = static_cast<int>(i);
      f.detail = "first segment does not start at the write time";
      out.commit();
      ok = false;
    }
    for (std::size_t s = i; s < last; ++s) {
      if (p.segments[s + 1].start != p.segments[s].end) {
        auto& f = out.make(FindingKind::kStructure);
        f.var = var;
        f.seg = static_cast<int>(s + 1);
        f.detail = "segment chain has a gap or overlap";
        out.commit();
        ok = false;
      }
    }
    if (p.segments[last].end != lt.last_read() ||
        p.segments[last].end_kind != CutKind::kDeath) {
      auto& f = out.make(FindingKind::kStructure);
      f.var = var;
      f.seg = static_cast<int>(last);
      f.detail = "last segment does not die at the final read";
      out.commit();
      ok = false;
    }
    i = last + 1;
  }
  for (std::size_t v = 0; v < p.lifetimes.size(); ++v) {
    if (!seen[v]) {
      auto& f = out.make(FindingKind::kStructure);
      f.var = static_cast<int>(v);
      f.detail = "variable has no segments (value stored nowhere)";
      out.commit();
      ok = false;
    }
  }
  return ok;
}

/// First-principles legality: pins, register range, and a fresh
/// boundary sweep for exclusivity and the R capacity.
void check_legality(const AllocationProblem& p, const Assignment& a,
                    Findings& out) {
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const Segment& seg = p.segments[s];
    if (seg.forced_register && !a.in_register(s)) {
      auto& f = out.make(FindingKind::kForcedInMemory);
      f.var = seg.var;
      f.seg = static_cast<int>(s);
      f.step = seg.start;
      f.detail = "segment starts/ends off the memory-access grid";
      out.commit();
    }
    if (seg.forbidden_register && a.in_register(s)) {
      auto& f = out.make(FindingKind::kForbiddenInRegister);
      f.var = seg.var;
      f.seg = static_cast<int>(s);
      f.step = seg.start;
      f.location = a.location(s);
      out.commit();
    }
    if (a.in_register(s) && a.location(s) >= p.num_registers) {
      auto& f = out.make(FindingKind::kRegisterRange);
      f.var = seg.var;
      f.seg = static_cast<int>(s);
      f.location = a.location(s);
      f.expected = p.num_registers;
      f.actual = a.location(s);
      out.commit();
    }
  }

  // Segment [start, end) occupies its register at boundaries
  // start..end-1, so chained same-variable segments never collide here.
  for (int b = 0; b <= p.num_steps; ++b) {
    std::map<int, int> holder;  // register -> segment seen at b
    int resident = 0;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (!a.in_register(s)) continue;
      const Segment& seg = p.segments[s];
      if (!(seg.start <= b && b < seg.end)) continue;
      ++resident;
      const auto [it, fresh] =
          holder.emplace(a.location(s), static_cast<int>(s));
      if (!fresh) {
        auto& f = out.make(FindingKind::kRegisterOverlap);
        f.var = seg.var;
        f.seg = static_cast<int>(s);
        f.step = b;
        f.location = a.location(s);
        f.detail = "also held by segment " + std::to_string(it->second);
        out.commit();
      }
    }
    if (resident > p.num_registers) {
      auto& f = out.make(FindingKind::kCapacityExceeded);
      f.step = b;
      f.expected = p.num_registers;
      f.actual = resident;
      out.commit();
    }
  }
}

/// Per-step traffic tallies feeding the port audit.
struct StepTraffic {
  int mem_reads = 0;
  int mem_writes = 0;
  int reg_reads = 0;
  int reg_writes = 0;
};

}  // namespace

Recount recount_allocation(const AllocationProblem& p, const Assignment& a) {
  Recount rc;
  if (a.size() != p.segments.size()) return rc;

  const energy::EnergyParams& e = p.params;
  std::map<int, StepTraffic> per_step;
  // Register writes in generation order; the activity replay below
  // re-sorts them by (step, generation) so concurrent writes to
  // different registers transition in a deterministic order.
  struct RegWrite {
    int step;
    int order;
    int var;
    int reg;
  };
  std::vector<RegWrite> reg_writes;
  std::set<int> regs_touched;
  int order = 0;

  auto mem_read = [&](int t) {
    ++rc.stats.mem_reads;
    ++per_step[t].mem_reads;
    rc.static_memory += e.e_mem_read();
  };
  auto mem_write = [&](int t) {
    ++rc.stats.mem_writes;
    ++per_step[t].mem_writes;
    rc.static_memory += e.e_mem_write();
  };
  auto reg_read = [&](int t) {
    ++rc.stats.reg_reads;
    ++per_step[t].reg_reads;
    rc.static_register += e.e_reg_read();
  };
  auto reg_write = [&](int t, int var, int reg) {
    ++rc.stats.reg_writes;
    ++per_step[t].reg_writes;
    rc.static_register += e.e_reg_write();
    reg_writes.push_back({t, order++, var, reg});
    regs_touched.insert(reg);
  };

  // Per-variable walk over its segment chain. The semantics re-derived
  // here (independently of evaluate.cpp's event enumeration) are the
  // ones DESIGN.md fixes for the flow model: a definition writes to
  // wherever the first segment lives; at an interior read the value is
  // fetched from wherever it lives; a value leaving a register before
  // its death is written back to memory; entering a register costs an
  // explicit memory read only at a pure access-boundary cut (at a read
  // cut the consumer's fetch doubles as the load, and register-to-
  // register moves carry no memory read); the death is a final fetch.
  std::size_t i = 0;
  while (i < p.segments.size()) {
    const int var = p.segments[i].var;
    std::size_t last = i;
    while (last + 1 < p.segments.size() &&
           p.segments[last + 1].var == var) {
      ++last;
    }

    if (a.in_register(i)) {
      reg_write(p.segments[i].start, var, a.location(i));
    } else {
      mem_write(p.segments[i].start);
    }

    for (std::size_t s = i; s < last; ++s) {
      const Segment& cur = p.segments[s];
      const int loc_cur = a.location(s);
      const int loc_next = a.location(s + 1);
      if (cur.end_kind == CutKind::kRead) {
        loc_cur >= 0 ? reg_read(cur.end) : mem_read(cur.end);
      }
      if (loc_cur >= 0 && loc_next != loc_cur) mem_write(cur.end);
      if (loc_next >= 0 && loc_next != loc_cur) {
        if (cur.end_kind == CutKind::kBoundary) mem_read(cur.end);
        reg_write(cur.end, var, loc_next);
      }
    }

    const Segment& end_seg = p.segments[last];
    a.in_register(last) ? reg_read(end_seg.end) : mem_read(end_seg.end);
    i = last + 1;
  }

  // Activity model: replay the register writes chronologically, pricing
  // each by the Hamming activity against the register's previous
  // occupant (initial activity for a cold register).
  std::stable_sort(reg_writes.begin(), reg_writes.end(),
                   [](const RegWrite& x, const RegWrite& y) {
                     return x.step != y.step ? x.step < y.step
                                             : x.order < y.order;
                   });
  std::map<int, int> occupant;
  for (const RegWrite& w : reg_writes) {
    const auto it = occupant.find(w.reg);
    const double h =
        it == occupant.end()
            ? p.activity.initial(static_cast<std::size_t>(w.var))
            : p.activity.hamming(static_cast<std::size_t>(it->second),
                                 static_cast<std::size_t>(w.var));
    rc.activity_register += e.e_reg_transition(h);
    occupant[w.reg] = w.var;
  }

  for (const auto& [step, t] : per_step) {
    rc.stats.mem_read_ports = std::max(rc.stats.mem_read_ports, t.mem_reads);
    rc.stats.mem_write_ports =
        std::max(rc.stats.mem_write_ports, t.mem_writes);
    rc.stats.reg_read_ports = std::max(rc.stats.reg_read_ports, t.reg_reads);
    rc.stats.reg_write_ports =
        std::max(rc.stats.reg_write_ports, t.reg_writes);
  }

  // Peak simultaneous memory residency, by a fresh boundary sweep.
  for (int b = 0; b <= p.num_steps; ++b) {
    int resident = 0;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (a.in_register(s)) continue;
      if (p.segments[s].start <= b && b < p.segments[s].end) ++resident;
    }
    rc.stats.mem_locations = std::max(rc.stats.mem_locations, resident);
  }

  rc.registers_used = static_cast<int>(regs_touched.size());
  rc.ok = true;
  return rc;
}

namespace {

/// Port budgets (§7): re-tally per-step traffic and compare each
/// channel against its limit.
void check_ports(const AllocationProblem& p, const Assignment& a,
                 const alloc::PortLimits& limits, Findings& out) {
  std::map<int, StepTraffic> per_step;
  // Reuse the recount's walk indirectly: recount_allocation already
  // tallied peaks, but the port audit needs the offending *steps*, so
  // tally again here from the event set evaluate.hpp exposes — this
  // intentionally uses the enumerate_events path, making the port audit
  // sensitive to disagreements between the two derivations as well.
  for (const alloc::StorageEvent& ev : alloc::enumerate_events(p, a)) {
    StepTraffic& t = per_step[ev.step];
    switch (ev.type) {
      case alloc::EventType::kMemRead: ++t.mem_reads; break;
      case alloc::EventType::kMemWrite: ++t.mem_writes; break;
      case alloc::EventType::kRegRead: ++t.reg_reads; break;
      case alloc::EventType::kRegWrite: ++t.reg_writes; break;
    }
  }
  for (const auto& [step, t] : per_step) {
    const std::pair<int, std::pair<int, const char*>> channels[] = {
        {t.mem_reads, {limits.mem_read_ports, "memory read"}},
        {t.mem_writes, {limits.mem_write_ports, "memory write"}},
        {t.reg_reads, {limits.reg_read_ports, "register read"}},
        {t.reg_writes, {limits.reg_write_ports, "register write"}},
    };
    for (const auto& [count, budget] : channels) {
      if (count > budget.first) {
        auto& f = out.make(FindingKind::kPortOverload);
        f.step = step;
        f.expected = budget.first;
        f.actual = count;
        f.detail = std::string(budget.second) + " ports";
        out.commit();
      }
    }
  }
}

/// Cross-checks the independent recount against evaluate.hpp — the two
/// derivations must tell the same story for this assignment.
void check_evaluator_agreement(const AllocationProblem& p,
                               const Assignment& a, const Recount& rc,
                               double tol, Findings& out) {
  const alloc::AccessStats ev = alloc::count_accesses(p, a);
  if (ev.mem_reads != rc.stats.mem_reads ||
      ev.mem_writes != rc.stats.mem_writes ||
      ev.reg_reads != rc.stats.reg_reads ||
      ev.reg_writes != rc.stats.reg_writes ||
      ev.mem_locations != rc.stats.mem_locations) {
    auto& f = out.make(FindingKind::kStatsMismatch);
    f.expected = rc.stats.mem_accesses() + rc.stats.reg_accesses();
    f.actual = ev.mem_accesses() + ev.reg_accesses();
    f.detail = "evaluate.hpp access counts disagree with the recount";
    out.commit();
  }
  const double ev_static =
      alloc::evaluate_energy(p, a, energy::RegisterModel::kStatic).total();
  const double ev_activity =
      alloc::evaluate_energy(p, a, energy::RegisterModel::kActivity)
          .total();
  if (!close(ev_static, rc.static_total(), tol)) {
    auto& f = out.make(FindingKind::kEnergyMismatch);
    f.expected = rc.static_total();
    f.actual = ev_static;
    f.detail = "evaluate.hpp static energy disagrees with the recount";
    out.commit();
  }
  if (!close(ev_activity, rc.activity_total(), tol)) {
    auto& f = out.make(FindingKind::kEnergyMismatch);
    f.expected = rc.activity_total();
    f.actual = ev_activity;
    f.detail = "evaluate.hpp activity energy disagrees with the recount";
    out.commit();
  }
}

bool exhaustive_applicable(const AllocationProblem& p,
                           const AuditOptions& opts) {
  if (static_cast<int>(p.segments.size()) > opts.exhaustive_max_segments) {
    return false;
  }
  if (p.params.register_model == energy::RegisterModel::kActivity &&
      p.num_registers > 1) {
    return false;
  }
  // exhaustive_allocate honours forced pins but not forbidden ones; a
  // problem with forbidden segments would yield bogus "optima".
  for (const Segment& s : p.segments) {
    if (s.forbidden_register) return false;
  }
  return true;
}

}  // namespace

AuditReport audit_allocation(const AllocationProblem& p, const Assignment& a,
                             const AuditOptions& opts) {
  AuditReport report;
  report.level = opts.level;
  if (opts.level == AuditLevel::kOff) return report;
  report.audited = true;

  Findings out(report, opts.max_findings);
  if (!check_structure(p, a, out)) return report;
  check_legality(p, a, out);
  if (opts.ports) check_ports(p, a, *opts.ports, out);

  if (opts.level == AuditLevel::kFullCost) {
    const Recount rc = recount_allocation(p, a);
    if (rc.ok) {
      check_evaluator_agreement(p, a, rc, opts.tolerance, out);
    }
  }
  return report;
}

AuditReport audit_result(const AllocationProblem& p,
                         const AllocationResult& r,
                         const AuditOptions& opts) {
  AuditReport report;
  report.level = opts.level;
  if (opts.level == AuditLevel::kOff) return report;
  report.audited = true;
  Findings out(report, opts.max_findings);

  if (!r.feasible) {
    // Audit the infeasibility claim itself. The only legitimate
    // *instance* cause is the forced segments not fitting in R; solver
    // failures (budget, certification) are honest too and are visible
    // in the diagnostics. When the exhaustive search is in reach it
    // settles the question outright.
    if (opts.level == AuditLevel::kFullCost && opts.check_optimality &&
        exhaustive_applicable(p, opts)) {
      const auto truth =
          alloc::exhaustive_allocate(p, p.params.register_model);
      if (truth.has_value()) {
        auto& f = out.make(FindingKind::kFalseInfeasible);
        f.expected = truth->energy;
        f.detail =
            "exhaustive search found a valid assignment: " + r.message;
        out.commit();
      }
    }
    return report;
  }

  const AuditReport base = audit_allocation(p, r.assignment, opts);
  report.findings.insert(report.findings.end(), base.findings.begin(),
                         base.findings.end());
  if (report.findings.size() > opts.max_findings) {
    report.findings.resize(opts.max_findings);
  }
  if (!base.clean() && !base.legal()) {
    // The assignment itself is broken; comparing its claimed prices
    // against a recount of an illegal placement adds noise, not signal.
    return report;
  }

  if (opts.level != AuditLevel::kFullCost) return report;

  const Recount rc = recount_allocation(p, r.assignment);
  if (!rc.ok) return report;
  const double tol = opts.tolerance;

  // The result's claimed access statistics.
  const struct {
    const char* name;
    int claimed;
    int recounted;
  } counts[] = {
      {"mem_reads", r.stats.mem_reads, rc.stats.mem_reads},
      {"mem_writes", r.stats.mem_writes, rc.stats.mem_writes},
      {"reg_reads", r.stats.reg_reads, rc.stats.reg_reads},
      {"reg_writes", r.stats.reg_writes, rc.stats.reg_writes},
      {"mem_read_ports", r.stats.mem_read_ports, rc.stats.mem_read_ports},
      {"mem_write_ports", r.stats.mem_write_ports,
       rc.stats.mem_write_ports},
      {"reg_read_ports", r.stats.reg_read_ports, rc.stats.reg_read_ports},
      {"reg_write_ports", r.stats.reg_write_ports,
       rc.stats.reg_write_ports},
      {"mem_locations", r.stats.mem_locations, rc.stats.mem_locations},
      {"registers_used", r.registers_used, rc.registers_used},
  };
  for (const auto& c : counts) {
    if (c.claimed != c.recounted) {
      auto& f = out.make(FindingKind::kStatsMismatch);
      f.expected = c.recounted;
      f.actual = c.claimed;
      f.detail = c.name;
      out.commit();
    }
  }

  // The result's claimed energies, under both models.
  if (!close(r.static_energy.total(), rc.static_total(), tol)) {
    auto& f = out.make(FindingKind::kEnergyMismatch);
    f.expected = rc.static_total();
    f.actual = r.static_energy.total();
    f.detail = "static energy";
    out.commit();
  }
  if (!close(r.activity_energy.total(), rc.activity_total(), tol)) {
    auto& f = out.make(FindingKind::kEnergyMismatch);
    f.expected = rc.activity_total();
    f.actual = r.activity_energy.total();
    f.detail = "activity energy";
    out.commit();
  }

  // model_energy is base + dequantised flow cost — the objective the
  // flow minimised. It must equal the replay under the configured model
  // up to quantisation slack (resolution 1e-6 per arc; 1e-3 absolute
  // covers any realistic arc count). Baselines and degraded results are
  // not flow-derived and leave it 0 (two_phase.cpp), so skip them.
  const double replayed = rc.total(p.params.register_model);
  const bool flow_derived =
      !r.degraded && (r.model_energy != 0 || r.flow_cost != 0);
  if (flow_derived &&
      std::abs(r.model_energy - replayed) >
          1e-3 + std::max(tol, 1e-9) * std::abs(replayed)) {
    auto& f = out.make(FindingKind::kCostInconsistent);
    f.expected = replayed;
    f.actual = r.model_energy;
    f.detail = "base + flow cost vs independent replay";
    out.commit();
  }

  // Ground truth on small instances: the flow result claims optimality
  // unless it was degraded to the two-phase baseline.
  if (opts.check_optimality && !r.degraded && exhaustive_applicable(p, opts)) {
    const auto truth =
        alloc::exhaustive_allocate(p, p.params.register_model);
    if (truth.has_value()) {
      const double claimed = rc.total(p.params.register_model);
      if (claimed > truth->energy &&
          !close(claimed, truth->energy, std::max(tol, 1e-6))) {
        auto& f = out.make(FindingKind::kNotOptimal);
        f.expected = truth->energy;
        f.actual = claimed;
        f.detail = "exhaustive optimum is cheaper";
        out.commit();
      }
    }
  }
  return report;
}

}  // namespace lera::audit
