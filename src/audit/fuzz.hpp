#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/shrink.hpp"

/// \file fuzz.hpp
/// Differential fuzzing of the whole allocation stack. Each seed
/// deterministically generates a random problem (workloads/random_gen),
/// pushes it through the flow allocator, the two-phase baseline and —
/// when the instance is small — the exhaustive optimum, audits every
/// result with audit_allocation/audit_result, and cross-checks the
/// solvers against each other (flow <= baseline, flow == optimum).
/// Any finding is serialised through workloads/problem_io into an
/// artifact directory and delta-debug-shrunk to a minimal reproducer
/// that replays with `allocate_tool -l <artifact> --audit full`.

namespace lera::audit {

struct DiffFuzzOptions {
  /// Seed range [seed_begin, seed_end); each seed is one problem.
  std::uint64_t seed_begin = 1;
  std::uint64_t seed_end = 201;
  /// Where reproducers are written ("" = keep findings in memory only).
  std::string artifact_dir;
  /// Delta-debug failing instances down to minimal reproducers.
  bool shrink = true;
  /// Instance size caps (the differential value is in *coverage*, not
  /// in individual instance size; small instances keep the exhaustive
  /// ground truth in play).
  int max_vars = 9;
  int max_steps = 12;
  AuditOptions audit;
};

struct DiffFuzzFailure {
  std::uint64_t seed = 0;
  /// What went wrong, one line per independent check that failed.
  std::vector<std::string> diffs;
  /// Serialised artifact paths (empty when artifact_dir is unset).
  std::string artifact_path;
  std::string shrunk_path;
  int original_size = 0;
  int shrunk_size = 0;
};

struct DiffFuzzReport {
  int problems = 0;
  std::vector<DiffFuzzFailure> failures;
  bool clean() const { return failures.empty(); }
};

/// The deterministic per-seed instance (exposed so tests and the CI
/// driver agree on what a seed means).
alloc::AllocationProblem fuzz_problem(std::uint64_t seed,
                                      const DiffFuzzOptions& opts = {});

/// Runs the full differential check battery on one problem; returns one
/// line per failed check (empty = all solvers agree and audit clean).
std::vector<std::string> differential_check(
    const alloc::AllocationProblem& p, const AuditOptions& audit = {});

/// The fuzz loop: generate, check, capture, shrink.
DiffFuzzReport run_differential_fuzz(const DiffFuzzOptions& opts = {});

}  // namespace lera::audit
