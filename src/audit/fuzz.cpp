#include "audit/fuzz.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "alloc/exhaustive.hpp"
#include "alloc/two_phase.hpp"
#include "workloads/problem_io.hpp"
#include "workloads/random_gen.hpp"

namespace lera::audit {

namespace {

using alloc::AllocationProblem;
using alloc::AllocationResult;

bool has_forced(const AllocationProblem& p) {
  for (const lifetime::Segment& s : p.segments) {
    if (s.forced_register) return true;
  }
  return false;
}

bool has_forbidden(const AllocationProblem& p) {
  for (const lifetime::Segment& s : p.segments) {
    if (s.forbidden_register) return true;
  }
  return false;
}

bool exhaustive_in_reach(const AllocationProblem& p,
                         const AuditOptions& audit) {
  return static_cast<int>(p.segments.size()) <=
             audit.exhaustive_max_segments &&
         (p.params.register_model == energy::RegisterModel::kStatic ||
          p.num_registers <= 1) &&
         !has_forbidden(p);
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

AllocationProblem fuzz_problem(std::uint64_t seed,
                               const DiffFuzzOptions& opts) {
  // Shape parameters come from their own stream so they never correlate
  // with the lifetime generator's draws.
  std::mt19937_64 shape(seed * 0x9e3779b97f4a7c15ull + 1);
  workloads::RandomLifetimeOptions lopts;
  lopts.num_vars =
      2 + static_cast<int>(shape() % static_cast<std::uint64_t>(
                                         std::max(1, opts.max_vars - 1)));
  lopts.num_steps =
      4 + static_cast<int>(shape() % static_cast<std::uint64_t>(
                                         std::max(1, opts.max_steps - 3)));
  lopts.max_reads = 1 + static_cast<int>(shape() % 2);
  lopts.live_out_prob = 0.2;

  energy::EnergyParams params;
  params.register_model = shape() % 2 == 0
                              ? energy::RegisterModel::kStatic
                              : energy::RegisterModel::kActivity;
  lifetime::SplitOptions split;
  split.access.period = shape() % 3 == 0 ? 2 : 1;
  if (split.access.period > 1) {
    split.access.phase =
        static_cast<int>(shape() % static_cast<std::uint64_t>(
                                       split.access.period));
  }

  std::vector<lifetime::Lifetime> lifetimes =
      workloads::random_lifetimes(seed, lopts);
  const std::size_t n = lifetimes.size();
  AllocationProblem p = alloc::make_problem(
      std::move(lifetimes), lopts.num_steps, 1, params,
      workloads::random_activity(seed + 1, n), split);
  // Register budget relative to the instance's actual pressure, from
  // starved to roomy.
  const int peak = std::max(1, p.max_density());
  p.num_registers =
      1 + static_cast<int>(shape() % static_cast<std::uint64_t>(peak + 1));
  return p;
}

std::vector<std::string> differential_check(const AllocationProblem& p,
                                            const AuditOptions& audit) {
  std::vector<std::string> diffs;
  auto fail = [&](std::string line) { diffs.push_back(std::move(line)); };

  // LERA, the paper's simultaneous allocator. kAllPairs keeps the
  // search space identical to the two-phase baseline's phase 1, so the
  // energies below are directly comparable.
  alloc::AllocatorOptions flow_opts;
  flow_opts.style = alloc::GraphStyle::kAllPairs;
  flow_opts.certify = true;
  const AllocationResult flow = alloc::allocate(p, flow_opts);

  const AuditReport flow_audit = audit_result(p, flow, audit);
  for (const AuditFinding& f : flow_audit.findings) {
    fail("flow: " + f.to_string());
  }

  // The two-phase baseline [8] (legal but not optimal). Its phase 2
  // ignores §5.2 pins, so only unforced instances are in its domain.
  if (!has_forced(p)) {
    const AllocationResult two = alloc::two_phase_allocate(p);
    if (two.feasible) {
      AuditOptions baseline_audit = audit;
      baseline_audit.check_optimality = false;
      const AuditReport rep = audit_result(p, two, baseline_audit);
      for (const AuditFinding& f : rep.findings) {
        fail("two-phase: " + f.to_string());
      }
      if (flow.feasible) {
        const double ours = flow.energy(p);
        const double theirs = two.energy(p);
        if (ours > theirs + 1e-6 * std::max(1.0, std::abs(theirs))) {
          fail("differential: flow energy " + num(ours) +
               " exceeds two-phase baseline " + num(theirs));
        }
      }
    }
  }

  // Exhaustive ground truth on small instances: the flow optimum must
  // match it exactly (above = not optimal, below = illegal/mispriced).
  if (flow.feasible && exhaustive_in_reach(p, audit)) {
    const auto truth =
        alloc::exhaustive_allocate(p, p.params.register_model);
    if (!truth.has_value()) {
      fail("differential: flow feasible but exhaustive found no valid "
           "assignment");
    } else {
      const double ours = flow.energy(p);
      if (std::abs(ours - truth->energy) >
          1e-3 + 1e-6 * std::abs(truth->energy)) {
        fail("differential: flow energy " + num(ours) +
             " != exhaustive optimum " + num(truth->energy));
      }
    }
  }
  return diffs;
}

DiffFuzzReport run_differential_fuzz(const DiffFuzzOptions& opts) {
  DiffFuzzReport report;
  const bool capture = !opts.artifact_dir.empty();
  if (capture) {
    std::filesystem::create_directories(opts.artifact_dir);
  }

  for (std::uint64_t seed = opts.seed_begin; seed < opts.seed_end; ++seed) {
    const AllocationProblem p = fuzz_problem(seed, opts);
    ++report.problems;
    std::vector<std::string> diffs = differential_check(p, opts.audit);
    if (diffs.empty()) continue;

    DiffFuzzFailure failure;
    failure.seed = seed;
    failure.diffs = std::move(diffs);
    failure.original_size = problem_size(p);
    failure.shrunk_size = failure.original_size;

    AllocationProblem minimal = p;
    if (opts.shrink) {
      const ShrinkResult shrunk = shrink_problem(
          p, [&](const AllocationProblem& candidate) {
            return !differential_check(candidate, opts.audit).empty();
          });
      minimal = shrunk.problem;
      failure.shrunk_size = shrunk.shrunk_size;
    }

    if (capture) {
      auto write_artifact = [&](const std::string& path,
                                const AllocationProblem& instance,
                                const std::vector<std::string>& lines) {
        std::ofstream out(path);
        out << "# lera differential-fuzz reproducer\n"
            << "# seed " << seed << "\n"
            << "# replay: allocate_tool -l " << path << " --audit full\n";
        for (const std::string& line : lines) {
          out << "# check failed: " << line << "\n";
        }
        workloads::write_problem(out, instance);
      };
      failure.artifact_path = opts.artifact_dir + "/repro_seed" +
                              std::to_string(seed) + ".lt";
      write_artifact(failure.artifact_path, p, failure.diffs);
      if (opts.shrink) {
        failure.shrunk_path = opts.artifact_dir + "/repro_seed" +
                              std::to_string(seed) + ".min.lt";
        write_artifact(failure.shrunk_path, minimal,
                       differential_check(minimal, opts.audit));
      }
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace lera::audit
