#pragma once

#include <functional>

#include "alloc/problem.hpp"

/// \file shrink.hpp
/// Delta-debugging for allocation problems: given a failing instance
/// and a predicate that re-checks the failure, greedily remove
/// variables, interior reads and control steps while the failure keeps
/// reproducing. Fuzz findings shrink from dozens of variables to the
/// two or three that actually interact, which is what gets committed as
/// a reproducer.

namespace lera::audit {

/// Returns true when the (rebuilt) candidate problem still exhibits the
/// failure being minimised. The predicate must be deterministic.
using ReproPredicate =
    std::function<bool(const alloc::AllocationProblem&)>;

struct ShrinkOptions {
  /// Upper bound on full passes over the reduction operators; each
  /// accepted reduction strictly shrinks the problem, so this is a
  /// safety net, not a tuning knob.
  int max_passes = 64;
};

struct ShrinkResult {
  alloc::AllocationProblem problem;  ///< The minimised instance.
  int original_size = 0;             ///< problem_size() before.
  int shrunk_size = 0;               ///< problem_size() after.
  int reductions = 0;                ///< Accepted reduction steps.
  int predicate_calls = 0;
};

/// Size metric used for the shrink goal: variables + control steps.
int problem_size(const alloc::AllocationProblem& p);

/// Greedily minimises \p p under \p reproduces. The input problem must
/// itself reproduce (if not, it is returned unchanged). Reductions
/// tried, to fixpoint: drop a variable, drop an interior read, clear a
/// live-out flag, and compress away control steps no lifetime event
/// uses. Every candidate is rebuilt through make_problem with the
/// problem's own access model, so segment splitting and forced flags
/// stay faithful to the original semantics.
ShrinkResult shrink_problem(const alloc::AllocationProblem& p,
                            const ReproPredicate& reproduces,
                            const ShrinkOptions& opts = {});

}  // namespace lera::audit
