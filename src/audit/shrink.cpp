#include "audit/shrink.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace lera::audit {

namespace {

using alloc::AllocationProblem;
using lifetime::Lifetime;

/// Rebuilds a candidate problem from edited lifetimes, re-deriving
/// segments/density through make_problem so split cuts and forced flags
/// stay faithful to the original access model.
AllocationProblem rebuild(const AllocationProblem& base,
                          std::vector<Lifetime> lifetimes, int num_steps,
                          energy::ActivityMatrix activity) {
  for (std::size_t v = 0; v < lifetimes.size(); ++v) {
    lifetimes[v].value = static_cast<ir::ValueId>(v);
  }
  lifetime::SplitOptions split;
  split.access = base.access;
  return alloc::make_problem(std::move(lifetimes), num_steps,
                             base.num_registers, base.params,
                             std::move(activity), split);
}

energy::ActivityMatrix drop_var_activity(const energy::ActivityMatrix& m,
                                         std::size_t dropped) {
  energy::ActivityMatrix out(m.size() - 1);
  auto old_index = [&](std::size_t i) { return i < dropped ? i : i + 1; };
  for (std::size_t i = 0; i + 1 < m.size(); ++i) {
    out.set_initial(i, m.initial(old_index(i)));
    for (std::size_t j = i + 1; j + 1 < m.size(); ++j) {
      out.set(i, j, m.hamming(old_index(i), old_index(j)));
    }
  }
  return out;
}

/// Remaps every lifetime onto a dense time axis containing only the
/// steps some write or (interior) read actually uses. Returns false
/// when no step can be removed.
bool compress_time(const AllocationProblem& p,
                   std::vector<Lifetime>& lifetimes, int& num_steps) {
  std::vector<int> used;
  for (const Lifetime& lt : p.lifetimes) {
    used.push_back(lt.write_time);
    for (int t : lt.read_times) {
      if (t <= p.num_steps) used.push_back(t);
    }
  }
  if (used.empty()) return false;
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());

  std::map<int, int> rank;
  for (std::size_t i = 0; i < used.size(); ++i) {
    rank[used[i]] = static_cast<int>(i);
  }
  int new_steps = 0;
  lifetimes = p.lifetimes;
  for (Lifetime& lt : lifetimes) {
    lt.write_time = rank[lt.write_time];
    bool had_liveout_read = false;
    std::vector<int> reads;
    for (int t : lt.read_times) {
      if (t > p.num_steps) {
        had_liveout_read = true;
      } else {
        reads.push_back(rank[t]);
        new_steps = std::max(new_steps, rank[t]);
      }
    }
    lt.read_times = std::move(reads);
    // Re-append the live-out sentinel once the new x is known (below).
    lt.live_out = lt.live_out || had_liveout_read;
  }
  new_steps = std::max(new_steps, 1);
  for (Lifetime& lt : lifetimes) {
    new_steps = std::max(new_steps, lt.write_time);
  }
  if (new_steps >= p.num_steps) return false;
  for (Lifetime& lt : lifetimes) {
    if (lt.live_out) lt.read_times.push_back(new_steps + 1);
    if (lt.read_times.empty()) return false;  // Liveout-less dead value.
  }
  num_steps = new_steps;
  return true;
}

}  // namespace

int problem_size(const AllocationProblem& p) {
  return static_cast<int>(p.lifetimes.size()) + p.num_steps;
}

ShrinkResult shrink_problem(const AllocationProblem& p,
                            const ReproPredicate& reproduces,
                            const ShrinkOptions& opts) {
  ShrinkResult out;
  out.problem = p;
  out.original_size = problem_size(p);
  out.shrunk_size = out.original_size;

  auto try_candidate = [&](AllocationProblem candidate) {
    ++out.predicate_calls;
    if (!reproduces(candidate)) return false;
    out.problem = std::move(candidate);
    out.shrunk_size = problem_size(out.problem);
    ++out.reductions;
    return true;
  };

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    bool reduced = false;
    const AllocationProblem& cur = out.problem;

    // Drop whole variables, most-recently-indexed first (random
    // generators append the least structured variables last).
    for (std::size_t v = cur.lifetimes.size(); v-- > 0;) {
      const AllocationProblem& now = out.problem;
      if (v >= now.lifetimes.size() || now.lifetimes.size() <= 1) continue;
      std::vector<Lifetime> fewer = now.lifetimes;
      fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(v));
      reduced |= try_candidate(rebuild(now, std::move(fewer),
                                       now.num_steps,
                                       drop_var_activity(now.activity, v)));
    }

    // Drop individual reads (keeping at least one per variable). A
    // removed live-out sentinel also clears the flag.
    for (std::size_t v = 0; v < out.problem.lifetimes.size(); ++v) {
      for (std::size_t ri = out.problem.lifetimes[v].read_times.size();
           ri-- > 0;) {
        const AllocationProblem& now = out.problem;
        if (v >= now.lifetimes.size() ||
            ri >= now.lifetimes[v].read_times.size() ||
            now.lifetimes[v].read_times.size() <= 1) {
          continue;
        }
        std::vector<Lifetime> edited = now.lifetimes;
        Lifetime& lt = edited[v];
        const int removed = lt.read_times[ri];
        lt.read_times.erase(lt.read_times.begin() +
                            static_cast<std::ptrdiff_t>(ri));
        if (removed > now.num_steps) lt.live_out = false;
        reduced |= try_candidate(rebuild(now, std::move(edited),
                                         now.num_steps, now.activity));
      }
    }

    // Compress unused control steps away.
    {
      const AllocationProblem& now = out.problem;
      std::vector<Lifetime> remapped;
      int new_steps = now.num_steps;
      if (compress_time(now, remapped, new_steps)) {
        reduced |= try_candidate(
            rebuild(now, std::move(remapped), new_steps, now.activity));
      }
    }

    if (!reduced) break;
  }
  return out;
}

}  // namespace lera::audit
