#pragma once

#include <optional>

#include "alloc/allocator.hpp"
#include "alloc/ports.hpp"
#include "audit/report.hpp"

/// \file audit.hpp
/// The independent allocation auditor. Everything above the flow solver
/// — flow decomposition into register/memory assignments, lifetime
/// overlap and pin legality, the energy accounting — is re-derived here
/// from first principles, with code that shares *nothing* with the
/// solve path: its own boundary sweeps for capacity/overlap, its own
/// per-variable storage-event recount for access counts and energies,
/// and (on small instances) the brute-force optimum as ground truth.
///
/// A clean report certifies that the allocation is legal under the
/// paper's §5-§6 semantics (one live value per register per boundary,
/// register budget R, §5.2/§7 pins, optional port budgets) and — at
/// full-cost level — that every number the result claims (stats,
/// static/activity energies, model_energy) matches the independent
/// recount and that evaluate.hpp agrees with it.

namespace lera::audit {

struct AuditOptions {
  AuditLevel level = AuditLevel::kFullCost;
  /// Relative tolerance for energy comparisons.
  double tolerance = 1e-6;
  /// Port budgets to enforce (§7). Unset = ports unconstrained.
  std::optional<alloc::PortLimits> ports;
  /// Cross-check the result against the exhaustive optimum when the
  /// instance is small enough (audit_result only; skipped for degraded
  /// results, which never claim optimality).
  bool check_optimality = true;
  /// Exhaustive search is 2^segments; keep this modest.
  int exhaustive_max_segments = 14;
  /// Stop collecting findings beyond this many (a single corruption can
  /// violate every boundary it crosses).
  std::size_t max_findings = 100;
};

/// Audits a bare assignment: structure, legality and — at full-cost
/// level — agreement between the independent recount and evaluate.hpp.
AuditReport audit_allocation(const alloc::AllocationProblem& p,
                             const alloc::Assignment& a,
                             const AuditOptions& opts = {});

/// Audits a complete allocator result: everything audit_allocation
/// checks, plus the result's claimed stats/energies/model_energy against
/// the recount, and the exhaustive optimum on small instances. An
/// infeasibility claim is itself audited: if first principles (forced
/// density, or the exhaustive search) prove a valid assignment exists,
/// the claim is flagged kFalseInfeasible.
AuditReport audit_result(const alloc::AllocationProblem& p,
                         const alloc::AllocationResult& r,
                         const AuditOptions& opts = {});

/// The auditor's independent recount of an assignment's storage
/// behaviour (exposed for tests and the fuzz driver).
struct Recount {
  bool ok = false;  ///< False when structure findings aborted the count.
  alloc::AccessStats stats;
  double static_memory = 0;
  double static_register = 0;
  double activity_register = 0;  ///< Memory term is always static.
  int registers_used = 0;

  double static_total() const { return static_memory + static_register; }
  double activity_total() const {
    return static_memory + activity_register;
  }
  double total(energy::RegisterModel model) const {
    return model == energy::RegisterModel::kStatic ? static_total()
                                                   : activity_total();
  }
};

/// Recounts accesses/energies for \p a without touching evaluate.hpp.
Recount recount_allocation(const alloc::AllocationProblem& p,
                           const alloc::Assignment& a);

}  // namespace lera::audit
