#include "alloc/coloring.hpp"

#include <algorithm>
#include <numeric>

namespace lera::alloc {

AllocationResult coloring_allocate(const AllocationProblem& p,
                                   const ColoringOptions& options) {
  AllocationResult result;
  const std::size_t n = p.lifetimes.size();

  // Priority: forced variables first (they have no choice), then by
  // spill cost — accesses, optionally normalised by lifetime length.
  std::vector<char> has_forced(n, 0);
  for (const lifetime::Segment& seg : p.segments) {
    if (seg.forced_register) {
      has_forced[static_cast<std::size_t>(seg.var)] = 1;
    }
  }
  std::vector<double> priority(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const lifetime::Lifetime& lt = p.lifetimes[v];
    const double accesses = 1.0 + static_cast<double>(lt.read_times.size());
    const double span =
        std::max(1, lt.last_read() - lt.write_time);
    priority[v] = options.priority_per_step ? accesses / span : accesses;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (has_forced[a] != has_forced[b]) {
                       return has_forced[a] > has_forced[b];
                     }
                     return priority[a] > priority[b];
                   });

  // Greedy whole-variable left edge over full lifetimes.
  result.assignment = Assignment(p.segments.size());
  std::vector<int> reg_free_at;  // Per register: step it frees up.
  const std::vector<int> first_seg = p.first_segment_of_var();
  for (std::size_t v : order) {
    const lifetime::Lifetime& lt = p.lifetimes[v];
    int chosen = -1;
    for (std::size_t r = 0; r < reg_free_at.size(); ++r) {
      if (reg_free_at[r] <= lt.write_time) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen < 0) {
      if (static_cast<int>(reg_free_at.size()) >= p.num_registers) {
        continue;  // Spilled: stays in memory.
      }
      chosen = static_cast<int>(reg_free_at.size());
      reg_free_at.push_back(0);
    }
    reg_free_at[static_cast<std::size_t>(chosen)] = lt.last_read();
    for (std::size_t s = static_cast<std::size_t>(
             first_seg[v]);
         s < p.segments.size() &&
         p.segments[s].var == static_cast<int>(v);
         ++s) {
      result.assignment.assign_register(s, chosen);
    }
  }

  const std::string issues = validate_assignment(p, result.assignment);
  if (!issues.empty()) {
    // Forced variables may not all have fit: the energy-blind baseline
    // simply fails on such instances.
    result.message = "coloring baseline could not honour constraints: " +
                     issues;
    return result;
  }
  result.feasible = true;
  finish_result(p, result);
  return result;
}

}  // namespace lera::alloc
