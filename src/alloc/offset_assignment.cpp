#include "alloc/offset_assignment.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>

#include "alloc/evaluate.hpp"

namespace lera::alloc {

namespace {

/// Union-find for the Kruskal-style path cover.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

int count_reloads(const std::vector<int>& sequence,
                  const std::vector<int>& offset) {
  int reloads = 0;
  for (std::size_t i = 1; i < sequence.size(); ++i) {
    const int prev = offset[static_cast<std::size_t>(sequence[i - 1])];
    const int cur = offset[static_cast<std::size_t>(sequence[i])];
    if (std::abs(cur - prev) > 1) ++reloads;
  }
  return reloads;
}

}  // namespace

OffsetAssignment assign_offsets(const AllocationProblem& p,
                                const Assignment& a,
                                const std::vector<int>& address) {
  OffsetAssignment out;
  if (address.size() != p.segments.size()) return out;

  // Temporal sequence of touched memory locations.
  std::vector<int> sequence;
  int num_locations = 0;
  for (const StorageEvent& ev : enumerate_events(p, a)) {
    if (ev.type != EventType::kMemRead && ev.type != EventType::kMemWrite) {
      continue;
    }
    if (ev.seg < 0) continue;
    const int loc = address[static_cast<std::size_t>(ev.seg)];
    if (loc < 0) continue;  // Register-to-register corner: no address.
    sequence.push_back(loc);
    num_locations = std::max(num_locations, loc + 1);
  }
  out.feasible = true;
  if (num_locations == 0) return out;

  // Access-transition weights between distinct locations.
  std::map<std::pair<int, int>, int> weight;
  for (std::size_t i = 1; i < sequence.size(); ++i) {
    const int u = std::min(sequence[i - 1], sequence[i]);
    const int v = std::max(sequence[i - 1], sequence[i]);
    if (u == v) continue;
    ++weight[{u, v}];
    ++out.total_transitions;
  }

  // Greedy max-weight path cover (Liao's SOA heuristic).
  struct Edge {
    int u;
    int v;
    int w;
  };
  std::vector<Edge> edges;
  edges.reserve(weight.size());
  for (const auto& [uv, w] : weight) {
    edges.push_back({uv.first, uv.second, w});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a_, const Edge& b_) { return a_.w > b_.w; });

  std::vector<int> degree(static_cast<std::size_t>(num_locations), 0);
  std::vector<std::vector<int>> adjacent(
      static_cast<std::size_t>(num_locations));
  DisjointSets sets(static_cast<std::size_t>(num_locations));
  for (const Edge& e : edges) {
    const auto u = static_cast<std::size_t>(e.u);
    const auto v = static_cast<std::size_t>(e.v);
    if (degree[u] >= 2 || degree[v] >= 2) continue;
    if (sets.find(u) == sets.find(v)) continue;  // Would close a cycle.
    sets.unite(u, v);
    ++degree[u];
    ++degree[v];
    adjacent[u].push_back(e.v);
    adjacent[v].push_back(e.u);
  }

  // Lay the resulting paths out contiguously.
  out.offset.assign(static_cast<std::size_t>(num_locations), -1);
  int next_offset = 0;
  for (int start = 0; start < num_locations; ++start) {
    const auto s = static_cast<std::size_t>(start);
    if (out.offset[s] >= 0 || degree[s] > 1) continue;  // Path ends only.
    int prev = -1;
    int cur = start;
    while (cur >= 0 && out.offset[static_cast<std::size_t>(cur)] < 0) {
      out.offset[static_cast<std::size_t>(cur)] = next_offset++;
      int next = -1;
      for (int n : adjacent[static_cast<std::size_t>(cur)]) {
        if (n != prev) next = n;
      }
      prev = cur;
      cur = next;
    }
  }

  out.reloads = count_reloads(sequence, out.offset);
  std::vector<int> identity(static_cast<std::size_t>(num_locations));
  std::iota(identity.begin(), identity.end(), 0);
  out.naive_reloads = count_reloads(sequence, identity);
  if (out.reloads > out.naive_reloads) {
    // The path-cover heuristic maximises covered transition weight, but
    // the identity layout's chains of consecutive addresses can cover a
    // better set; keep whichever wins.
    out.offset = identity;
    out.reloads = out.naive_reloads;
  }
  out.free_transitions = out.total_transitions - out.reloads;
  return out;
}

}  // namespace lera::alloc
