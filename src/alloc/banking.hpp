#pragma once

#include <vector>

#include "alloc/assignment.hpp"

/// \file banking.hpp
/// Multi-bank memory partitioning. The paper's related work (§2) cites
/// three reasons to split the memory into modules: parallel access
/// instructions need same-step accesses in *different* banks ([15],
/// [16]), idle banks can enter sleep modes ([4]), and smaller modules
/// switch shorter lines ([19]). Given an allocation and its address
/// layout, this pass distributes the memory locations over a fixed
/// number of banks to minimise same-step same-bank conflicts, and
/// reports the sleep opportunity per bank.

namespace lera::alloc {

struct BankAssignment {
  bool feasible = false;
  /// Bank of every memory location id (size = #locations).
  std::vector<int> bank;
  /// Same-step access pairs that collide in one bank (each costs a
  /// serialisation stall or an extra port).
  int conflicts = 0;
  /// Same metric for the naive interleaved layout (addr mod banks).
  int naive_conflicts = 0;
  /// Same-step pairs landing in different banks (serviceable by one
  /// parallel-access instruction, the energy win of [16]).
  int parallel_pairs = 0;
  /// Steps during which each bank is untouched (sleep-mode opportunity
  /// of [4]), indexed by bank.
  std::vector<int> idle_steps;
};

/// Greedy conflict-aware partitioning of the locations of \p address
/// (per segment; -1 for register segments) into \p num_banks banks.
BankAssignment assign_banks(const AllocationProblem& p, const Assignment& a,
                            const std::vector<int>& address, int num_banks);

}  // namespace lera::alloc
