#include "alloc/assignment.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace lera::alloc {

int Assignment::registers_used() const {
  std::set<int> regs;
  for (int loc : location_) {
    if (loc >= 0) regs.insert(loc);
  }
  return static_cast<int>(regs.size());
}

std::string validate_assignment(const AllocationProblem& p,
                                const Assignment& a) {
  std::ostringstream os;
  if (a.size() != p.segments.size()) {
    return "assignment size does not match segment count";
  }

  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const lifetime::Segment& seg = p.segments[s];
    if (seg.forced_register && !a.in_register(s)) {
      os << "forced segment of " << p.lifetimes[static_cast<std::size_t>(
                seg.var)].name
         << " [" << seg.start << "," << seg.end << "] is in memory; ";
    }
    if (seg.forbidden_register && a.in_register(s)) {
      os << "register-barred segment of "
         << p.lifetimes[static_cast<std::size_t>(seg.var)].name << " ["
         << seg.start << "," << seg.end << "] is in a register; ";
    }
    if (a.in_register(s) && a.location(s) >= p.num_registers) {
      os << "segment uses register " << a.location(s) << " but R="
         << p.num_registers << "; ";
    }
  }

  // Exclusivity: a register holds at most one segment at any boundary.
  // A segment [start, end) occupies its register at boundaries
  // start..end-1. Segments of the same variable chained in one register
  // are contiguous, so the check naturally permits them.
  for (int b = 0; b <= p.num_steps; ++b) {
    std::set<int> occupied;
    int live_in_regs = 0;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (!a.in_register(s)) continue;
      const lifetime::Segment& seg = p.segments[s];
      if (seg.start <= b && b < seg.end) {
        ++live_in_regs;
        if (!occupied.insert(a.location(s)).second) {
          os << "register " << a.location(s)
             << " holds two live segments at boundary " << b << "; ";
        }
      }
    }
    if (live_in_regs > p.num_registers) {
      os << live_in_regs << " register-resident segments at boundary " << b
         << " exceed R=" << p.num_registers << "; ";
    }
  }
  return os.str();
}

}  // namespace lera::alloc
