#include "alloc/memory_layout.hpp"

#include <algorithm>

#include "alloc/evaluate.hpp"
#include "alloc/mem_runs.hpp"
#include "netflow/graph.hpp"

namespace lera::alloc {

namespace {

/// Activity of an address's occupant sequence: initial write plus each
/// occupant replacing the previous one.
double sequence_activity(const AllocationProblem& p,
                         const std::vector<std::vector<int>>& occupants) {
  double activity = 0;
  for (const auto& sequence : occupants) {
    int prev = -1;
    for (int var : sequence) {
      activity += prev < 0
                      ? p.activity.initial(static_cast<std::size_t>(var))
                      : p.activity.hamming(static_cast<std::size_t>(prev),
                                           static_cast<std::size_t>(var));
      prev = var;
    }
  }
  return activity;
}

}  // namespace

MemoryLayout optimize_memory_layout(const AllocationProblem& p,
                                    const Assignment& a,
                                    const energy::Quantizer& quantizer,
                                    netflow::SolverKind solver) {
  MemoryLayout layout;
  layout.address.assign(p.segments.size(), -1);
  const std::vector<MemRun> runs = memory_runs(p, a);
  if (runs.empty()) {
    layout.feasible = true;
    return layout;
  }

  // Minimum address count = peak simultaneous residency.
  layout.locations = memory_locations(p, a);

  // Naive left-edge packing as the comparison point.
  {
    std::vector<int> free_at;
    std::vector<std::vector<int>> occupants;
    for (const MemRun& run : runs) {
      int chosen = -1;
      for (std::size_t loc = 0; loc < free_at.size(); ++loc) {
        if (free_at[loc] <= run.start) {
          chosen = static_cast<int>(loc);
          break;
        }
      }
      if (chosen < 0) {
        chosen = static_cast<int>(free_at.size());
        free_at.push_back(0);
        occupants.emplace_back();
      }
      free_at[static_cast<std::size_t>(chosen)] = run.end;
      occupants[static_cast<std::size_t>(chosen)].push_back(run.var);
    }
    layout.naive_activity = sequence_activity(p, occupants);
  }

  // Min-cost flow: one unit per address, chained through the runs.
  netflow::Graph g;
  const netflow::NodeId s = g.add_node("s");
  const netflow::NodeId t = g.add_node("t");
  std::vector<netflow::NodeId> w_node(runs.size());
  std::vector<netflow::NodeId> r_node(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    w_node[i] = g.add_node();
    r_node[i] = g.add_node();
    g.add_arc(w_node[i], r_node[i], 1, 0, /*lower=*/1);
  }
  struct TransArc {
    netflow::ArcId arc;
    std::size_t from;
    std::size_t to;
  };
  std::vector<TransArc> transitions;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = 0; j < runs.size(); ++j) {
      if (i == j || runs[i].end > runs[j].start) continue;
      const double h = p.activity.hamming(
          static_cast<std::size_t>(runs[i].var),
          static_cast<std::size_t>(runs[j].var));
      transitions.push_back(
          {g.add_arc(r_node[i], w_node[j], 1,
                     quantizer.quantize(p.params.e_mem_transition(h))),
           i, j});
    }
  }
  std::vector<netflow::ArcId> from_source(runs.size());
  for (std::size_t j = 0; j < runs.size(); ++j) {
    from_source[j] =
        g.add_arc(s, w_node[j], 1,
                  quantizer.quantize(p.params.e_mem_transition(
                      p.activity.initial(
                          static_cast<std::size_t>(runs[j].var)))));
    g.add_arc(r_node[j], t, 1, 0);
  }

  const netflow::FlowSolution sol = netflow::solve_st_flow(
      g, s, t, layout.locations, solver);
  if (!sol.optimal()) return layout;  // layout.feasible stays false

  // Extract occupant chains -> addresses.
  std::vector<int> run_address(runs.size(), -1);
  std::vector<int> next_of(runs.size(), -1);
  for (const TransArc& tr : transitions) {
    if (sol.arc_flow[static_cast<std::size_t>(tr.arc)] > 0) {
      next_of[tr.from] = static_cast<int>(tr.to);
    }
  }
  int next_address = 0;
  std::vector<std::vector<int>> occupants;
  for (std::size_t j = 0; j < runs.size(); ++j) {
    if (sol.arc_flow[static_cast<std::size_t>(from_source[j])] == 0) {
      continue;
    }
    const int addr = next_address++;
    occupants.emplace_back();
    for (int cur = static_cast<int>(j); cur >= 0;
         cur = next_of[static_cast<std::size_t>(cur)]) {
      run_address[static_cast<std::size_t>(cur)] = addr;
      occupants.back().push_back(runs[static_cast<std::size_t>(cur)].var);
      for (std::size_t seg = runs[static_cast<std::size_t>(cur)].first_seg;
           seg <= runs[static_cast<std::size_t>(cur)].last_seg; ++seg) {
        layout.address[seg] = addr;
      }
    }
  }

  layout.optimized_activity = sequence_activity(p, occupants);
  layout.optimized_energy =
      layout.optimized_activity * p.params.e_mem_transition(1.0);
  layout.naive_energy =
      layout.naive_activity * p.params.e_mem_transition(1.0);
  layout.feasible = true;
  return layout;
}

}  // namespace lera::alloc
