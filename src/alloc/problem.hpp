#pragma once

#include <vector>

#include "energy/activity.hpp"
#include "energy/params.hpp"
#include "ir/basic_block.hpp"
#include "lifetime/lifetime.hpp"
#include "lifetime/segment.hpp"
#include "sched/schedule.hpp"

/// \file problem.hpp
/// The allocation problem instance (paper's Problem 1): scheduled data
/// variable lifetimes (already split into segments), a register budget R,
/// energy parameters and the pairwise switching activities.

namespace lera::alloc {

struct AllocationProblem {
  std::vector<lifetime::Lifetime> lifetimes;
  std::vector<lifetime::Segment> segments;
  int num_steps = 0;       ///< x: schedule length in control steps.
  int num_registers = 0;   ///< R: register-file capacity.
  energy::EnergyParams params;
  energy::ActivityMatrix activity{0};
  /// The restricted-memory-access model the segments were built with
  /// (period 1 = unrestricted). Retained so problems serialise fully.
  lifetime::AccessModel access;

  // Derived caches (filled by make_problem / refresh_density).
  std::vector<int> density;              ///< Per boundary 0..x.
  std::vector<bool> is_max_density;      ///< Per boundary 0..x.

  int max_density() const;

  /// First segment index of each variable plus segment counts; segments
  /// are stored sorted by (var, index) so a variable's segments are a
  /// contiguous range.
  std::vector<int> first_segment_of_var() const;

  /// Recomputes the density caches from lifetimes/num_steps.
  void refresh_density();

  /// Structural sanity checks (segment ordering, activity size, R >= 0);
  /// empty string when consistent.
  std::string verify() const;
};

/// Builds a problem straight from lifetimes (used by the paper's hand
/// examples, where lifetimes are given rather than derived from code).
AllocationProblem make_problem(std::vector<lifetime::Lifetime> lifetimes,
                               int num_steps, int num_registers,
                               const energy::EnergyParams& params,
                               energy::ActivityMatrix activity,
                               const lifetime::SplitOptions& split = {});

/// Builds a problem from a scheduled basic block; switching activities
/// are measured by evaluating the block on \p trace_inputs (one vector of
/// input samples per trace row), or default to 0.5 if none are given.
AllocationProblem make_problem_from_block(
    const ir::BasicBlock& bb, const sched::Schedule& sched,
    int num_registers, const energy::EnergyParams& params,
    const std::vector<std::vector<std::int64_t>>& trace_inputs = {},
    const lifetime::SplitOptions& split = {},
    const lifetime::LifetimeOptions& lifetime_opts = {});

}  // namespace lera::alloc
