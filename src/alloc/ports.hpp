#pragma once

#include "alloc/allocator.hpp"

/// \file ports.hpp
/// Port-constrained allocation (paper §7): "The number of memory or
/// register file ports is determined from the solution of our network
/// flow problem, however it could be also specified as a constraint ...
/// the technique described in section 5.2 which sets certain arc flows
/// to 1 can be used."
///
/// We implement exactly that: solve, inspect the steps whose memory
/// traffic exceeds the port budget, force the segments responsible into
/// registers (arc lower bound 1 — §5.2's mechanism), and re-solve.
/// Each round strictly reduces attainable memory traffic at the
/// offending steps, so the loop terminates; if the budget is impossible
/// (even an all-register solution violates it, or forcing makes the
/// flow infeasible) the result says so.

namespace lera::alloc {

struct PortLimits {
  static constexpr int kUnlimited = 1 << 28;

  /// Maximum simultaneous memory reads / writes per control step.
  int mem_read_ports = 1;
  int mem_write_ports = 1;
  /// Register-file port budgets (default unlimited). Excess register
  /// traffic is relieved by the dual mechanism: barring the responsible
  /// segments from the register file (arc capacity 0).
  int reg_read_ports = kUnlimited;
  int reg_write_ports = kUnlimited;
};

struct PortConstrainedResult {
  AllocationResult result;
  int rounds = 0;           ///< Re-solve iterations used.
  int forced_segments = 0;  ///< Segments pinned to registers by the loop.
  bool met = false;         ///< Port budget satisfied.
};

PortConstrainedResult allocate_with_port_limits(
    const AllocationProblem& p, const PortLimits& limits,
    const AllocatorOptions& options = {});

}  // namespace lera::alloc
