#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/problem.hpp"

/// \file fingerprint.hpp
/// Canonical-form instance fingerprinting. Production allocation traffic
/// is repetitive — the same kernels resubmitted with renamed variables
/// and jittered costs — so the allocation cache (engine/alloc_cache.hpp)
/// keys on a *canonical form* of the problem: variables are renamed into
/// a deterministic order (lifetime shape first, then access/activity
/// signature, then declaration index as the tiebreak) and every semantic
/// field is hashed in that order. Two instances that differ only by a
/// variable permutation therefore collide on purpose, and the recorded
/// permutations let a cached assignment be remapped onto the new
/// declaration order in O(segments).
///
/// Three hashes are computed in one pass:
///  * `canonical` — 128 bits over the canonical form. The cache key.
///  * `exact`     — 64 bits over the declaration-order form. Two
///                  problems with equal `exact` hashes are byte-level
///                  re-submissions (same order, same costs); used to
///                  distinguish exact repeats from permuted repeats.
///  * `structural` — 64 bits over the declaration-order *topology* only
///                  (steps, registers, access model, lifetimes,
///                  segments — no energies, no activities). Two
///                  problems with equal `structural` hashes build
///                  flow graphs with identical nodes/arcs/supplies, so
///                  this is the warm-start pool key: cost-jittered
///                  resubmissions of one kernel share an entry.
///
/// Everything that can change the optimal allocation is hashed:
/// num_steps, num_registers, the access model, every EnergyParams field
/// (including the register model and supply voltages), lifetime shapes
/// (width, write/read times, live_out), segment structure (boundaries,
/// cut kinds, forced/forbidden pins) and the activity matrix (pairwise
/// Hamming fractions plus initial activities). Names and ValueIds are
/// deliberately NOT hashed — they never reach the solver.
///
/// Ties in the canonical order are broken by declaration index, so two
/// *distinct* variables with identical sort keys may canonicalise
/// differently across permutations. That direction of error is safe: a
/// missed collision is a cache miss, never a wrong answer (and the
/// audit-sampled recheck in the cache guards the other direction).

namespace lera::alloc {

/// 128-bit canonical-form hash, printable and map-keyable.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
  bool operator<(const Fingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex digits (hi then lo), for logs and machine lines.
  std::string hex() const;
};

/// The full fingerprinting outcome: the three hashes plus the canonical
/// permutations needed to remap cached answers.
struct FingerprintResult {
  Fingerprint canonical;        ///< Permutation-invariant cache key.
  std::uint64_t exact = 0;      ///< Declaration-order secondary hash.
  std::uint64_t structural = 0; ///< Topology-only warm-pool key.

  /// var_order[c] = declaration index of the variable at canonical
  /// position c. A permutation of 0..num_vars-1.
  std::vector<int> var_order;
  /// seg_order[c] = declaration index (into problem.segments) of the
  /// segment at canonical position c. A permutation of 0..num_segs-1.
  std::vector<int> seg_order;
};

/// Computes all three hashes and the canonical permutations in one
/// pass. Pure function; O(V log V + S + V^2) for the activity section.
FingerprintResult fingerprint_problem(const AllocationProblem& p);

}  // namespace lera::alloc
