#include "alloc/hierarchy.hpp"

#include <algorithm>

#include "alloc/evaluate.hpp"
#include "alloc/mem_runs.hpp"
#include "energy/voltage.hpp"
#include "netflow/graph.hpp"

namespace lera::alloc {

namespace {

/// Memory traffic of each run (plus the orphan traffic of register-to-
/// register spill corners, which touches memory without a run).
struct RunTraffic {
  std::vector<int> reads;
  std::vector<int> writes;
  int orphan_reads = 0;
  int orphan_writes = 0;
};

RunTraffic count_run_traffic(const AllocationProblem& p,
                             const Assignment& a,
                             const std::vector<MemRun>& runs) {
  const std::vector<int> run_of = run_index_by_segment(p, runs);
  RunTraffic traffic;
  traffic.reads.assign(runs.size(), 0);
  traffic.writes.assign(runs.size(), 0);
  for (const StorageEvent& ev : enumerate_events(p, a)) {
    if (ev.type != EventType::kMemRead && ev.type != EventType::kMemWrite) {
      continue;
    }
    const int run = ev.seg >= 0 ? run_of[static_cast<std::size_t>(ev.seg)]
                                : -1;
    if (ev.type == EventType::kMemRead) {
      if (run >= 0) {
        ++traffic.reads[static_cast<std::size_t>(run)];
      } else {
        ++traffic.orphan_reads;
      }
    } else {
      if (run >= 0) {
        ++traffic.writes[static_cast<std::size_t>(run)];
      } else {
        ++traffic.orphan_writes;
      }
    }
  }
  return traffic;
}

}  // namespace

HierarchicalResult allocate_hierarchical(const AllocationProblem& p,
                                         const HierarchyParams& hierarchy,
                                         const AllocatorOptions& options) {
  HierarchicalResult out;
  out.stage1 = allocate(p, options);
  if (!out.stage1.feasible) {
    out.message = "stage 1 failed: " + out.stage1.message;
    return out;
  }
  const Assignment& a = out.stage1.assignment;
  const std::vector<MemRun> runs = memory_runs(p, a);
  const RunTraffic traffic = count_run_traffic(p, a, runs);

  // Per-access energies of the two memory levels.
  const double on_read = p.params.e_mem_read();
  const double on_write = p.params.e_mem_write();
  const double off_scale = energy::energy_scale(hierarchy.v_offchip,
                                               p.params.v_nominal);
  const double off_read = hierarchy.offchip_read * off_scale;
  const double off_write = hierarchy.offchip_write * off_scale;

  // Stage 2: interval flow with F = scratchpad capacity; a run's arc
  // carries cost -(off-chip cost - on-chip cost), i.e. minus the energy
  // saved by hosting the run on chip.
  std::vector<char> onchip(runs.size(), 0);
  if (hierarchy.onchip_capacity > 0 && !runs.empty()) {
    netflow::Graph g;
    const netflow::NodeId s = g.add_node("s");
    const netflow::NodeId t = g.add_node("t");
    std::vector<netflow::ArcId> run_arc(runs.size());
    std::vector<netflow::NodeId> w_node(runs.size());
    std::vector<netflow::NodeId> r_node(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      w_node[i] = g.add_node();
      r_node[i] = g.add_node();
      const double savings =
          traffic.reads[i] * (off_read - on_read) +
          traffic.writes[i] * (off_write - on_write);
      run_arc[i] = g.add_arc(w_node[i], r_node[i], 1,
                             options.quantizer.quantize(-savings));
      g.add_arc(s, w_node[i], 1, 0);
      g.add_arc(r_node[i], t, 1, 0);
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      for (std::size_t j = 0; j < runs.size(); ++j) {
        if (i == j || runs[i].end > runs[j].start) continue;
        g.add_arc(r_node[i], w_node[j], 1, 0);
      }
    }
    g.add_arc(s, t, hierarchy.onchip_capacity, 0);  // Idle capacity.

    const netflow::FlowSolution sol = netflow::solve_st_flow(
        g, s, t, hierarchy.onchip_capacity, options.solver);
    if (!sol.optimal()) {
      out.message = "stage 2 flow failed unexpectedly";
      return out;
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      onchip[i] = sol.arc_flow[static_cast<std::size_t>(run_arc[i])] > 0;
    }
  }

  // Assemble levels and totals.
  const std::vector<int> run_of = run_index_by_segment(p, runs);
  out.level.assign(p.segments.size(), StorageLevel::kOffchip);
  for (std::size_t seg = 0; seg < p.segments.size(); ++seg) {
    if (a.in_register(seg)) {
      out.level[seg] = StorageLevel::kRegister;
    } else {
      const int run = run_of[seg];
      out.level[seg] = (run >= 0 && onchip[static_cast<std::size_t>(run)])
                           ? StorageLevel::kOnchip
                           : StorageLevel::kOffchip;
    }
  }

  double memory_energy = 0;
  double all_off_memory = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const double off_cost =
        traffic.reads[i] * off_read + traffic.writes[i] * off_write;
    const double on_cost =
        traffic.reads[i] * on_read + traffic.writes[i] * on_write;
    all_off_memory += off_cost;
    if (onchip[i]) {
      ++out.onchip_runs;
      out.onchip_accesses += traffic.reads[i] + traffic.writes[i];
      memory_energy += on_cost;
    } else {
      ++out.offchip_runs;
      out.offchip_accesses += traffic.reads[i] + traffic.writes[i];
      memory_energy += off_cost;
    }
  }
  // Orphan traffic (no run to pin down) is priced off-chip.
  const double orphan = traffic.orphan_reads * off_read +
                        traffic.orphan_writes * off_write;
  memory_energy += orphan;
  all_off_memory += orphan;
  out.offchip_accesses += traffic.orphan_reads + traffic.orphan_writes;

  out.total_static_energy =
      memory_energy + out.stage1.static_energy.register_file;
  out.total_activity_energy =
      memory_energy + out.stage1.activity_energy.register_file;
  out.all_offchip_static_energy =
      all_off_memory + out.stage1.static_energy.register_file;
  out.feasible = true;
  return out;
}

}  // namespace lera::alloc
