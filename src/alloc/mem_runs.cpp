#include "alloc/mem_runs.hpp"

#include <algorithm>

namespace lera::alloc {

std::vector<MemRun> memory_runs(const AllocationProblem& p,
                                const Assignment& a) {
  std::vector<MemRun> runs;
  std::size_t i = 0;
  while (i < p.segments.size()) {
    if (a.in_register(i)) {
      ++i;
      continue;
    }
    std::size_t last = i;
    while (last + 1 < p.segments.size() && !a.in_register(last + 1) &&
           p.segments[last + 1].var == p.segments[i].var) {
      ++last;
    }
    runs.push_back({p.segments[i].var, p.segments[i].start,
                    p.segments[last].end, i, last});
    i = last + 1;
  }
  std::sort(runs.begin(), runs.end(),
            [](const MemRun& x, const MemRun& y) { return x.start < y.start; });
  return runs;
}

std::vector<int> run_index_by_segment(const AllocationProblem& p,
                                      const std::vector<MemRun>& runs) {
  std::vector<int> run_of(p.segments.size(), -1);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (std::size_t s = runs[r].first_seg; s <= runs[r].last_seg; ++s) {
      run_of[s] = static_cast<int>(r);
    }
  }
  return run_of;
}

}  // namespace lera::alloc
