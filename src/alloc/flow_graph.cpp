#include "alloc/flow_graph.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "netflow/membudget.hpp"
#include "netflow/select.hpp"

namespace lera::alloc {

namespace {

using lifetime::CutKind;
using lifetime::Segment;

/// Energy terms charged when a register chain leaves segment \p seg's
/// r-node (the "v1 terms" of eqs. (6)-(10) plus the static-model register
/// read where a real read happens at the cut).
double leave_energy(const AllocationProblem& p, const Segment& seg) {
  const energy::EnergyParams& e = p.params;
  double cost = 0;
  switch (seg.end_kind) {
    case CutKind::kRead:
      // Interior read served from the register (saves the base-charged
      // memory read) but the variable lives on: write it back.
      cost += -e.e_mem_read() + e.e_mem_write();
      if (e.register_model == energy::RegisterModel::kStatic) {
        cost += e.e_reg_read();
      }
      break;
    case CutKind::kDeath:
      // Final read served from the register; no write-back needed.
      cost += -e.e_mem_read();
      if (e.register_model == energy::RegisterModel::kStatic) {
        cost += e.e_reg_read();
      }
      break;
    case CutKind::kBoundary:
      // No read occurs at an access-time cut; only the write-back.
      cost += e.e_mem_write();
      break;
    case CutKind::kDef:
      assert(false && "segment cannot end at a definition");
      break;
  }
  return cost;
}

/// Energy terms charged when a register chain enters segment \p seg's
/// w-node (the "v2 terms": what the register write costs/saves).
double enter_energy(const AllocationProblem& p, const Segment& seg) {
  const energy::EnergyParams& e = p.params;
  double cost = 0;
  switch (seg.start_kind) {
    case CutKind::kDef:
      // The definition is written to the register instead of memory.
      cost += -e.e_mem_write();
      break;
    case CutKind::kRead:
      // The base-charged memory read at this time doubles as the load.
      break;
    case CutKind::kBoundary:
      // Mid-life entry at an access time needs an explicit load.
      cost += e.e_mem_read();
      break;
    case CutKind::kDeath:
      assert(false && "segment cannot start at the final read");
      break;
  }
  if (e.register_model == energy::RegisterModel::kStatic) {
    cost += e.e_reg_write();
  }
  return cost;
}

}  // namespace

FlowGraphSpec build_flow_graph(const AllocationProblem& p, GraphStyle style,
                               const energy::Quantizer& quantizer) {
  assert(p.verify().empty());
  const energy::EnergyParams& e = p.params;
  const bool activity_model =
      e.register_model == energy::RegisterModel::kActivity;
  const std::size_t num_segs = p.segments.size();

  FlowGraphSpec spec;
  // Exactly s, t and a w/r pair per segment — reserve up front so node
  // construction never reallocates.
  spec.graph.reserve_nodes(
      static_cast<netflow::NodeId>(2 + 2 * num_segs));
  spec.s = spec.graph.add_node("s");
  spec.t = spec.graph.add_node("t");
  spec.w_node.resize(num_segs);
  spec.r_node.resize(num_segs);

  for (std::size_t i = 0; i < num_segs; ++i) {
    const Segment& seg = p.segments[i];
    const std::string& var =
        p.lifetimes[static_cast<std::size_t>(seg.var)].name;
    spec.w_node[i] = spec.graph.add_node(
        "w" + std::to_string(seg.index) + "(" + var + ")");
    spec.r_node[i] = spec.graph.add_node(
        "r" + std::to_string(seg.index) + "(" + var + ")");
  }

  auto add = [&](netflow::NodeId tail, netflow::NodeId head, double energy_cost,
                 ArcKind kind, int from_seg, int to_seg,
                 netflow::Flow cap = 1, netflow::Flow lower = 0) {
    spec.graph.add_arc(tail, head, cap, quantizer.quantize(energy_cost),
                       lower);
    spec.arc_info.push_back({kind, from_seg, to_seg});
  };

  // Prefix counts of maximum-density boundaries for O(1) idle checks:
  // a register may not sit idle across a boundary of maximum density in
  // the paper's graph (that is what pins memory usage to its minimum).
  std::vector<int> max_prefix(p.is_max_density.size() + 1, 0);
  for (std::size_t b = 0; b < p.is_max_density.size(); ++b) {
    max_prefix[b + 1] = max_prefix[b] + (p.is_max_density[b] ? 1 : 0);
  }
  // True if any max-density boundary lies in [from, to) (clamped to the
  // valid boundary range 0..num_steps).
  auto idle_crosses_peak = [&](int from, int to) {
    const int lo = std::clamp(from, 0, p.num_steps + 1);
    const int hi = std::clamp(to, 0, p.num_steps + 1);
    if (lo >= hi) return false;
    return max_prefix[static_cast<std::size_t>(hi)] -
               max_prefix[static_cast<std::size_t>(lo)] >
           0;
  };
  auto transition_allowed = [&](int read_time, int write_time) {
    if (read_time > write_time) return false;
    if (style == GraphStyle::kAllPairs) return true;
    return !idle_crosses_peak(read_time, write_time);
  };

  // Counting prepass: reserve the exact arc capacity so the O(n^2)
  // transition fill below never reallocates. Mirrors the emission loops
  // exactly (same transition_allowed predicate).
  {
    std::size_t arcs = num_segs;  // Segment arcs.
    for (std::size_t i = 0; i + 1 < num_segs; ++i) {
      if (p.segments[i].var == p.segments[i + 1].var) ++arcs;  // Chain.
    }
    for (std::size_t i = 0; i < num_segs; ++i) {
      for (std::size_t j = 0; j < num_segs; ++j) {
        if (p.segments[i].var == p.segments[j].var) continue;
        if (transition_allowed(p.segments[i].end, p.segments[j].start)) {
          ++arcs;  // Transition.
        }
      }
    }
    for (std::size_t j = 0; j < num_segs; ++j) {
      if (transition_allowed(0, p.segments[j].start)) ++arcs;  // Source.
    }
    for (std::size_t i = 0; i < num_segs; ++i) {
      if (transition_allowed(p.segments[i].end, p.num_steps + 1)) {
        ++arcs;  // Sink.
      }
    }
    if (p.num_registers > 0) ++arcs;  // Bypass.
    // Announce the arc storage (graph arcs + per-arc metadata) to the
    // budget/failpoint seam before the reserves can allocate.
    netflow::detail::alloc_tick(static_cast<std::int64_t>(arcs) *
                                static_cast<std::int64_t>(
                                    sizeof(netflow::Arc) +
                                    sizeof(FlowGraphSpec::ArcInfo)));
    spec.graph.reserve_arcs(static_cast<netflow::ArcId>(arcs));
    spec.arc_info.reserve(arcs);
  }

  // Segment arcs w_i(v) -> r_i(v): cost 0 (eq. 3), capacity 1, lower
  // bound 1 when the segment must sit in a register (§5.2) and capacity
  // 0 when it is barred from the register file (§7 port constraints).
  for (std::size_t i = 0; i < num_segs; ++i) {
    assert(!(p.segments[i].forced_register &&
             p.segments[i].forbidden_register));
    add(spec.w_node[i], spec.r_node[i], 0.0, ArcKind::kSegment,
        static_cast<int>(i), static_cast<int>(i),
        p.segments[i].forbidden_register ? 0 : 1,
        p.segments[i].forced_register ? 1 : 0);
  }

  // Chain arcs r_i(v) -> w_{i+1}(v) (eq. 9 generalised): the variable
  // keeps its register across the cut.
  for (std::size_t i = 0; i + 1 < num_segs; ++i) {
    const Segment& cur = p.segments[i];
    const Segment& next = p.segments[i + 1];
    if (cur.var != next.var) continue;
    double cost = 0;
    if (cur.end_kind == CutKind::kRead) {
      cost -= e.e_mem_read();  // Interior read served from the register.
      if (!activity_model) cost += e.e_reg_read();
    }
    add(spec.r_node[i], spec.w_node[i + 1], cost, ArcKind::kChain,
        static_cast<int>(i), static_cast<int>(i + 1));
  }

  // Transition arcs r_i(v1) -> w_j(v2), v1 != v2 (eqs. 4-8, 10).
  for (std::size_t i = 0; i < num_segs; ++i) {
    const Segment& from = p.segments[i];
    for (std::size_t j = 0; j < num_segs; ++j) {
      const Segment& to = p.segments[j];
      if (from.var == to.var) continue;
      if (!transition_allowed(from.end, to.start)) continue;
      double cost = leave_energy(p, from) + enter_energy(p, to);
      if (activity_model) {
        cost += e.e_reg_transition(
            p.activity.hamming(static_cast<std::size_t>(from.var),
                               static_cast<std::size_t>(to.var)));
      }
      add(spec.r_node[i], spec.w_node[j], cost, ArcKind::kTransition,
          static_cast<int>(i), static_cast<int>(j));
    }
  }

  // s -> w_j(v): a register that starts the block empty.
  for (std::size_t j = 0; j < num_segs; ++j) {
    const Segment& to = p.segments[j];
    if (!transition_allowed(0, to.start)) continue;
    double cost = enter_energy(p, to);
    if (activity_model) {
      cost += e.e_reg_transition(
          p.activity.initial(static_cast<std::size_t>(to.var)));
    }
    add(spec.s, spec.w_node[j], cost, ArcKind::kFromSource, -1,
        static_cast<int>(j));
  }

  // r_i(v) -> t: a register that idles to the end of the block.
  for (std::size_t i = 0; i < num_segs; ++i) {
    const Segment& from = p.segments[i];
    if (!transition_allowed(from.end, p.num_steps + 1)) continue;
    add(spec.r_node[i], spec.t, leave_energy(p, from), ArcKind::kToSink,
        static_cast<int>(i), -1);
  }

  // s -> t bypass for registers the optimum leaves unused.
  if (p.num_registers > 0) {
    add(spec.s, spec.t, 0.0, ArcKind::kBypass, -1, -1, p.num_registers);
  }

  // Base energy: every variable charged as if it lived in memory.
  for (const lifetime::Lifetime& lt : p.lifetimes) {
    spec.base_energy += e.e_mem_write() +
                        static_cast<double>(lt.read_times.size()) *
                            e.e_mem_read();
  }
  return spec;
}

std::int64_t estimate_problem_footprint(const AllocationProblem& p) {
  const std::int64_t s = static_cast<std::int64_t>(p.segments.size());
  // Worst case over both graph styles: s segment arcs, s-1 chain arcs,
  // s*(s-1) transitions, s source + s sink arcs, one bypass. The closed
  // form below upper-bounds that sum for every s >= 0.
  const std::int64_t nodes = 2 + 2 * s;
  const std::int64_t arcs = s * s + 4 * s + 2;

  netflow::InstanceShape shape;
  shape.nodes = static_cast<netflow::NodeId>(
      std::min<std::int64_t>(nodes, std::numeric_limits<netflow::NodeId>::max()));
  shape.arcs = arcs;
  shape.arcs_per_node =
      nodes > 0 ? static_cast<double>(arcs) / static_cast<double>(nodes) : 0;
  // solve_st_flow adds +/-R at s/t: two supply nodes, volume R.
  shape.supply_volume = p.num_registers;
  shape.supply_nodes = 2;
  shape.negative_costs = true;  // Energy savings quantize negative.

  const std::int64_t spec_bytes =
      arcs * static_cast<std::int64_t>(sizeof(netflow::Arc) +
                                       sizeof(FlowGraphSpec::ArcInfo)) +
      nodes * static_cast<std::int64_t>(2 * sizeof(netflow::NodeId));
  return spec_bytes + netflow::estimate_footprint(shape);
}

}  // namespace lera::alloc
