#pragma once

/// \file alloc.hpp
/// Umbrella header for the allocation library — the paper's core plus
/// every §7-adjacent extension.

#include "alloc/allocator.hpp"           // IWYU pragma: export
#include "alloc/assignment.hpp"          // IWYU pragma: export
#include "alloc/banking.hpp"             // IWYU pragma: export
#include "alloc/coloring.hpp"            // IWYU pragma: export
#include "alloc/evaluate.hpp"            // IWYU pragma: export
#include "alloc/exhaustive.hpp"          // IWYU pragma: export
#include "alloc/flow_graph.hpp"          // IWYU pragma: export
#include "alloc/hierarchy.hpp"           // IWYU pragma: export
#include "alloc/memory_layout.hpp"       // IWYU pragma: export
#include "alloc/offset_assignment.hpp"   // IWYU pragma: export
#include "alloc/ports.hpp"               // IWYU pragma: export
#include "alloc/problem.hpp"             // IWYU pragma: export
#include "alloc/two_phase.hpp"           // IWYU pragma: export
