#pragma once

#include <vector>

#include "alloc/problem.hpp"
#include "energy/quantize.hpp"
#include "netflow/graph.hpp"

/// \file flow_graph.hpp
/// Maps Problem 1 to a minimum-cost network-flow instance (paper §5.1,
/// §5.2). Every lifetime segment contributes a w-node, an r-node and a
/// capacity-1 arc between them (lower bound 1 when the segment is forced
/// into a register by restricted memory access times). Flow value F = R;
/// each unit of s->t flow traces one register's occupancy chain.
///
/// Two transition-arc policies are provided:
///  * kDensityRegions — the paper's graph: a transition r_i(v1)->w_j(v2)
///    exists only if the register would not sit idle across a boundary of
///    maximum lifetime density. This guarantees the allocation uses the
///    minimum number of memory storage locations (§7).
///  * kAllPairs — the graph of Chang/Pedram [8]: every compatible
///    (non-overlapping) pair is connected. Used as the paper's Figure 4
///    baseline; minimum memory size is no longer guaranteed.
///
/// Arc costs implement eqs. (3)-(10) generalised to all cut kinds:
///   leaving a register at an interior read saves the memory read and
///   pays the write-back; at the final read it saves the read only; at a
///   pure access-time boundary it pays the write-back only. Entering a
///   register at the definition saves the memory write; at an interior
///   read the base-charged memory read doubles as the load; at an access
///   boundary an extra memory read pays for the load. Eq. (7) as printed
///   omits the -E_r^m(v1) term; we follow the paper's own accounting
///   narrative (and eq. (6)) and keep the term whenever the cut is a real
///   read — see DESIGN.md.

namespace lera::alloc {

enum class GraphStyle {
  kDensityRegions,  ///< The paper's construction (minimum memory size).
  kAllPairs,        ///< Chang/Pedram-style baseline graph [8].
};

enum class ArcKind {
  kSegment,     ///< w_i(v) -> r_i(v).
  kChain,       ///< r_i(v) -> w_{i+1}(v): same variable stays put.
  kTransition,  ///< r_i(v1) -> w_j(v2): register handed to v2.
  kFromSource,  ///< s -> w_j(v): register initially empty.
  kToSink,      ///< r_i(v) -> t: register idles to the end.
  kBypass,      ///< s -> t: unused registers.
};

struct FlowGraphSpec {
  netflow::Graph graph;
  netflow::NodeId s = netflow::kInvalidNode;
  netflow::NodeId t = netflow::kInvalidNode;
  std::vector<netflow::NodeId> w_node;  ///< Per segment.
  std::vector<netflow::NodeId> r_node;  ///< Per segment.

  struct ArcInfo {
    ArcKind kind = ArcKind::kSegment;
    int from_seg = -1;  ///< Segment whose r-node the arc leaves (-1: s).
    int to_seg = -1;    ///< Segment whose w-node the arc enters (-1: t).
  };
  std::vector<ArcInfo> arc_info;  ///< Indexed by ArcId.

  /// Constant energy charged regardless of the flow: one memory write
  /// plus one memory read per read time, for every variable. The model
  /// energy of a solution is base_energy + dequantised flow cost.
  double base_energy = 0;
};

FlowGraphSpec build_flow_graph(const AllocationProblem& p, GraphStyle style,
                               const energy::Quantizer& quantizer = {});

/// O(1) upper bound on the bytes an allocation of \p p costs end to end:
/// the flow-graph spec itself (nodes, arcs, arc metadata) plus the
/// solver footprint (netflow::estimate_footprint) of the worst-case
/// instance shape — s = |segments| gives 2 + 2s nodes and at most
/// s^2 + 4s + 2 arcs regardless of graph style. This is what admission
/// control (lera_server) compares against a memory cap before any
/// allocation happens.
std::int64_t estimate_problem_footprint(const AllocationProblem& p);

}  // namespace lera::alloc
