#pragma once

#include <vector>

#include "alloc/allocator.hpp"

/// \file hierarchy.hpp
/// Two-level memory hierarchy on top of the register flow — the §7
/// projection ("significantly larger savings are expected when this
/// network flow technique is applied to offchip memory, where energy
/// dissipation is several orders of magnitude higher") and the
/// internal/external access optimisation of the paper's own refs
/// [20, 21].
///
/// Stage 1 is the ordinary simultaneous register/memory flow. Stage 2
/// decides, for every *memory run* (maximal span a variable spends in
/// memory), whether it lives in the on-chip scratchpad or in off-chip
/// memory: runs are intervals, the scratchpad holds at most C of them at
/// once, and placing a run on-chip saves (its accesses) x (off-chip
/// minus on-chip energy). That is again a minimum-cost interval flow —
/// F = C units of "scratchpad residency" flow through run arcs whose
/// cost is minus the run's savings — so stage 2 is optimal for its model
/// just like stage 1.

namespace lera::alloc {

/// Where a lifetime segment ultimately lives.
enum class StorageLevel { kRegister, kOnchip, kOffchip };

struct HierarchyParams {
  /// Scratchpad capacity in words (simultaneously resident runs).
  int onchip_capacity = 8;
  /// Off-chip access energies at nominal voltage (the [14] ratio puts
  /// one off-chip transfer at ~11 adds; writes drive higher-capacitance
  /// I/O and DRAM precharge).
  double offchip_read = 11.0;
  double offchip_write = 22.0;
  /// Off-chip supply; scales the energies by (v/v_nominal)^2.
  double v_offchip = 5.0;
};

struct HierarchicalResult {
  bool feasible = false;
  std::string message;

  /// Stage-1 register/memory decision (energies therein price *all*
  /// memory as on-chip; the hierarchy totals below re-price).
  AllocationResult stage1;

  /// Final level of every segment.
  std::vector<StorageLevel> level;

  int onchip_runs = 0;
  int offchip_runs = 0;
  int onchip_accesses = 0;
  int offchip_accesses = 0;

  /// Storage energy with the memory split applied (register part from
  /// the chosen register model).
  double total_static_energy = 0;
  double total_activity_energy = 0;
  /// Energy if every memory run were off-chip (no scratchpad): the
  /// baseline the scratchpad savings are measured against.
  double all_offchip_static_energy = 0;
};

HierarchicalResult allocate_hierarchical(
    const AllocationProblem& p, const HierarchyParams& hierarchy,
    const AllocatorOptions& options = {});

}  // namespace lera::alloc
