#include "alloc/exhaustive.hpp"

#include <algorithm>
#include <bit>

namespace lera::alloc {

namespace {

/// Merges consecutive register segments of one variable into "runs" and
/// left-edge-binds the runs to concrete registers. Returns false if more
/// than R registers would be needed (cannot happen when the per-boundary
/// capacity check passed, but kept as a belt-and-braces guard).
bool bind_registers(const AllocationProblem& p, std::uint32_t mask,
                    Assignment& a) {
  struct Run {
    int start;
    int end;
    std::size_t first_seg;
    std::size_t last_seg;
  };
  std::vector<Run> runs;
  std::size_t i = 0;
  while (i < p.segments.size()) {
    if (!(mask & (1u << i))) {
      ++i;
      continue;
    }
    std::size_t last = i;
    while (last + 1 < p.segments.size() &&
           (mask & (1u << (last + 1))) != 0 &&
           p.segments[last + 1].var == p.segments[i].var) {
      ++last;
    }
    runs.push_back({p.segments[i].start, p.segments[last].end, i, last});
    i = last + 1;
  }
  std::sort(runs.begin(), runs.end(),
            [](const Run& x, const Run& y) { return x.start < y.start; });

  // Left edge: reuse the register whose occupant died earliest.
  std::vector<int> reg_free_at;  // per register: time it becomes free
  for (const Run& run : runs) {
    int chosen = -1;
    for (std::size_t r = 0; r < reg_free_at.size(); ++r) {
      if (reg_free_at[r] <= run.start) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(reg_free_at.size());
      reg_free_at.push_back(0);
      if (chosen >= p.num_registers) return false;
    }
    reg_free_at[static_cast<std::size_t>(chosen)] = run.end;
    for (std::size_t s = run.first_seg; s <= run.last_seg; ++s) {
      a.assign_register(s, chosen);
    }
  }
  return true;
}

}  // namespace

std::optional<ExhaustiveResult> exhaustive_allocate(
    const AllocationProblem& p, energy::RegisterModel model) {
  const std::size_t n = p.segments.size();
  assert(n <= 24 && "exhaustive search is exponential in segment count");
  assert((model == energy::RegisterModel::kStatic || p.num_registers <= 1) &&
         "activity-model ground truth needs a unique binding (R <= 1)");

  std::uint32_t forced = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (p.segments[s].forced_register) forced |= 1u << s;
  }

  // Per-boundary crossing masks make the R-capacity check a popcount.
  std::vector<std::uint32_t> boundary_mask(
      static_cast<std::size_t>(p.num_steps) + 1, 0);
  for (std::size_t s = 0; s < n; ++s) {
    for (int b = p.segments[s].start; b < p.segments[s].end; ++b) {
      if (b >= 0 && b <= p.num_steps) {
        boundary_mask[static_cast<std::size_t>(b)] |= 1u << s;
      }
    }
  }

  std::optional<ExhaustiveResult> best;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if ((mask & forced) != forced) continue;
    bool fits = true;
    for (const std::uint32_t bm : boundary_mask) {
      if (std::popcount(mask & bm) > p.num_registers) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;

    Assignment a(n);
    if (!bind_registers(p, mask, a)) continue;

    const double e = evaluate_energy(p, a, model).total();
    if (!best || e < best->energy) {
      best = ExhaustiveResult{a, e};
    }
  }
  return best;
}

}  // namespace lera::alloc
