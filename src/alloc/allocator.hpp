#pragma once

#include <string>

#include "alloc/evaluate.hpp"
#include "alloc/flow_graph.hpp"
#include "audit/report.hpp"
#include "netflow/robust.hpp"
#include "netflow/solution.hpp"

/// \file allocator.hpp
/// The paper's simultaneous memory-partitioning + register-allocation
/// solver: build the flow graph, push F = R units of minimum-cost flow,
/// and read the register chains back off the arcs with flow.

namespace lera::alloc {

struct AllocatorOptions {
  GraphStyle style = GraphStyle::kDensityRegions;
  /// Primary min-cost-flow backend; SolverKind::kAuto defers the choice
  /// to the shape-based selector (netflow/select.hpp) per instance.
  netflow::SolverKind solver = netflow::SolverKind::kSuccessiveShortestPaths;
  energy::Quantizer quantizer{};
  /// Certify the flow returned by the solver against the residual-cycle
  /// optimality condition (cheap; catches solver regressions). Even when
  /// off, the robust solve path still validates the instance and checks
  /// feasibility + cost consistency of every accepted flow.
  bool certify = false;
  /// Budgets and fallback chain for the robust solve path. An empty
  /// chain starts with `solver` and falls back through the remaining
  /// algorithms; the certification level is derived from `certify`.
  netflow::SolveOptions solve;
  /// When the flow path fails (bad instance, budget exhausted, chain
  /// uncertified, or infeasible), degrade to the two-phase baseline
  /// instead of failing outright; the downgrade is recorded in
  /// AllocationResult::degraded. Off by default: optimality-sensitive
  /// callers (tests, benchmarks) want failures loud.
  bool fallback_to_baseline = false;
};

struct AllocationResult {
  bool feasible = false;
  std::string message;  ///< Diagnostic when infeasible/invalid/degraded.
  /// True when the optimal flow path failed and the result came from the
  /// two-phase baseline instead (see AllocatorOptions::fallback_to_baseline).
  bool degraded = false;
  /// The wall clock — a per-solve budget or a deadline — stopped the flow
  /// solve (SolveDiagnostics::deadline_hit). Combined with `degraded` this
  /// is the anytime verdict: a usable baseline answer produced because the
  /// optimal one ran out of time.
  bool timed_out = false;
  /// A CancelToken withdrew the request mid-solve. A cancelled result is
  /// never degraded to the baseline — the caller no longer wants any
  /// answer — and carries no assignment.
  bool cancelled = false;
  /// A memory budget refused the solve's predicted footprint, or an
  /// allocation actually failed (netflow kMemoryExceeded). Combined with
  /// `degraded` this mirrors the timed_out contract: a usable baseline
  /// answer produced because the optimal one did not fit in memory.
  bool memory_exceeded = false;
  /// What the robust solve layer observed: validation findings, solver
  /// attempts/fallbacks, certification verdict, wall time.
  netflow::SolveDiagnostics solve_diagnostics;
  /// Independent-auditor verdict (audit/audit.hpp). Empty unless the
  /// caller audits — allocate() itself never does; engine::Engine fills
  /// it when EngineOptions::audit_level is on.
  audit::AuditReport audit;

  Assignment assignment;
  AccessStats stats;
  EnergyBreakdown static_energy;    ///< Replayed under eq. (1).
  EnergyBreakdown activity_energy;  ///< Replayed under eq. (2).

  /// base_energy + dequantised flow cost: the objective the flow
  /// actually minimised (equals the replayed energy under the problem's
  /// configured register model; asserted in tests).
  double model_energy = 0;
  netflow::Cost flow_cost = 0;
  int registers_used = 0;

  /// Energy under the model the problem was configured with.
  double energy(const AllocationProblem& p) const {
    return p.params.register_model == energy::RegisterModel::kStatic
               ? static_energy.total()
               : activity_energy.total();
  }
};

/// Solves Problem 1 to optimality (under the configured register model
/// and graph style). Infeasible only when the forced segments cannot be
/// covered by R registers.
///
/// Thread safety: a pure function of its arguments — no global or
/// function-local mutable state anywhere on the solve path — so
/// concurrent calls on distinct (or shared, since both parameters are
/// read-only) problems are safe. engine::Engine relies on this to fan
/// batched solves across threads.
AllocationResult allocate(const AllocationProblem& p,
                          const AllocatorOptions& options = {});

/// Design-space sweep over register counts: builds the flow graph once
/// (only the flow value F and the bypass capacity depend on R) and
/// re-solves for every entry of \p register_counts. Results are in the
/// same order; p.num_registers is ignored.
std::vector<AllocationResult> allocate_sweep(
    const AllocationProblem& p, const std::vector<int>& register_counts,
    const AllocatorOptions& options = {});

/// Helper shared with the baselines: derives stats and energies for an
/// arbitrary (already validated) assignment.
void finish_result(const AllocationProblem& p, AllocationResult& result);

/// Reads the register chains off an optimal F = R flow of \p spec: each
/// unit of s->t flow traces one register's occupancy chain. \p arc_flow
/// is indexed by ArcId of spec.graph and must be a feasible integral
/// flow of value p.num_registers (anything else trips the chain walk's
/// asserts). Exposed for the incremental-repair path; allocate() uses
/// it internally.
Assignment assignment_from_flow(const AllocationProblem& p,
                                const FlowGraphSpec& spec,
                                const std::vector<netflow::Flow>& arc_flow);

/// The allocator's solve against a prebuilt flow graph (the spec's
/// bypass capacity must be >= p.num_registers). When \p arc_flow_out is
/// non-null and the flow path succeeds, it receives the optimal arc
/// flows — the seed a warm-start baseline needs. Exposed for
/// IncrementalAllocator; allocate() wraps it with problem validation
/// and the degradation contract.
AllocationResult allocate_with_spec(
    const AllocationProblem& p, const FlowGraphSpec& spec,
    const AllocatorOptions& options,
    std::vector<netflow::Flow>* arc_flow_out = nullptr);

}  // namespace lera::alloc
