#pragma once

#include <optional>

#include "alloc/allocator.hpp"

/// \file exhaustive.hpp
/// Brute-force optimal allocator for verification. Enumerates every
/// register/memory placement of the segments (2^S candidates), keeps the
/// valid ones and prices them with the same evaluator as the real
/// allocator. Static-model energies are independent of which register a
/// chain uses, so any R is supported; the activity model depends on the
/// binding, so it is supported for R <= 1 only (where the binding is
/// unique). Tests compare the flow allocator against this ground truth.

namespace lera::alloc {

struct ExhaustiveResult {
  Assignment assignment;
  double energy = 0;
};

/// Returns the minimum-energy valid assignment under \p model, or
/// nullopt if no valid assignment exists (forced segments exceed R).
/// Requires p.segments.size() <= 24 (search is exponential) and, for the
/// activity model, p.num_registers <= 1.
std::optional<ExhaustiveResult> exhaustive_allocate(
    const AllocationProblem& p, energy::RegisterModel model);

}  // namespace lera::alloc
