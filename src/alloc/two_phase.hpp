#pragma once

#include "alloc/allocator.hpp"

/// \file two_phase.hpp
/// The "previous research" baseline the paper compares against (Figures
/// 3a and 4a): first perform register allocation over *all* variables to
/// minimise switched capacitance, as in Chang/Pedram [8]; then partition
/// the resulting symbolic registers, keeping the R chains with the
/// highest switching activity in the physical register file (switching is
/// cheapest there) and demoting the rest wholesale to memory.

namespace lera::alloc {

struct TwoPhaseOptions {
  /// Graph used by phase 1; [8] connects all non-overlapping lifetimes.
  GraphStyle style = GraphStyle::kAllPairs;
  netflow::SolverKind solver = netflow::SolverKind::kSuccessiveShortestPaths;
  energy::Quantizer quantizer{};
};

/// Runs the two-phase baseline on \p p. The result's energies are priced
/// by the same evaluator as the simultaneous allocator, so the two are
/// directly comparable.
AllocationResult two_phase_allocate(const AllocationProblem& p,
                                    const TwoPhaseOptions& options = {});

}  // namespace lera::alloc
