#include "alloc/ports.hpp"

#include <map>
#include <set>

namespace lera::alloc {

namespace {

/// Events grouped per (step, type), with the segments whose re-pinning
/// would remove them: memory traffic is relieved by *forcing* the
/// responsible segment into a register, register traffic by *barring*
/// it from the register file.
struct Overload {
  int step;
  EventType type;
  std::vector<int> candidate_segments;
};

int limit_of(const PortLimits& limits, EventType type) {
  switch (type) {
    case EventType::kMemRead: return limits.mem_read_ports;
    case EventType::kMemWrite: return limits.mem_write_ports;
    case EventType::kRegRead: return limits.reg_read_ports;
    case EventType::kRegWrite: return limits.reg_write_ports;
  }
  return PortLimits::kUnlimited;
}

std::vector<Overload> find_overloads(const AllocationProblem& p,
                                     const Assignment& a,
                                     const PortLimits& limits) {
  std::map<std::pair<int, EventType>, std::vector<int>> traffic;
  for (const StorageEvent& ev : enumerate_events(p, a)) {
    traffic[{ev.step, ev.type}].push_back(ev.seg);
  }
  std::vector<Overload> overloads;
  for (const auto& [key, segs] : traffic) {
    if (static_cast<int>(segs.size()) > limit_of(limits, key.second)) {
      overloads.push_back({key.first, key.second, segs});
    }
  }
  return overloads;
}

}  // namespace

PortConstrainedResult allocate_with_port_limits(
    const AllocationProblem& p, const PortLimits& limits,
    const AllocatorOptions& options) {
  PortConstrainedResult out;
  AllocationProblem working = p;
  std::set<int> forced;

  // Each round forces at least one fresh segment; S rounds bound it.
  const int max_rounds = static_cast<int>(p.segments.size()) + 1;
  for (int round = 0; round < max_rounds; ++round) {
    const AllocationResult result = allocate(working, options);
    if (!result.feasible) {
      // Forcing made the flow infeasible; report the last state.
      if (out.rounds == 0) out.result = result;
      out.met = false;
      return out;
    }
    out.result = result;
    out.rounds = round + 1;

    const std::vector<Overload> overloads =
        find_overloads(working, result.assignment, limits);
    if (overloads.empty()) {
      out.met = true;
      return out;
    }

    // §5.2/§7 mechanism: pin the excess traffic's segments — into
    // registers for memory overloads, out of them for register
    // overloads. Pins are permanent, so the loop cannot oscillate.
    bool progressed = false;
    for (const Overload& ov : overloads) {
      const bool memory_side = ov.type == EventType::kMemRead ||
                               ov.type == EventType::kMemWrite;
      int excess = static_cast<int>(ov.candidate_segments.size()) -
                   limit_of(limits, ov.type);
      for (int seg : ov.candidate_segments) {
        if (excess <= 0) break;
        if (seg < 0 || forced.count(seg) != 0) continue;
        lifetime::Segment& segment =
            working.segments[static_cast<std::size_t>(seg)];
        if (segment.forced_register || segment.forbidden_register) {
          continue;
        }
        (memory_side ? segment.forced_register
                     : segment.forbidden_register) = true;
        forced.insert(seg);
        ++out.forced_segments;
        progressed = true;
        --excess;
      }
    }
    if (!progressed) {
      // Every responsible segment is already forced: the remaining
      // traffic is irreducible under this mechanism.
      out.met = false;
      return out;
    }
  }
  return out;
}

}  // namespace lera::alloc
