#include "alloc/fingerprint.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace lera::alloc {

namespace {

/// 128-bit absorb-mix hasher: two lanes of multiply-xor with cross-lane
/// rotation, finalised with an avalanche mix. Not cryptographic — it
/// only has to keep distinct semantic mutations from colliding, which
/// the 200-seed sweep in test_fingerprint checks.
struct Mix128 {
  std::uint64_t hi = 0x9e3779b97f4a7c15ULL;
  std::uint64_t lo = 0xc2b2ae3d27d4eb4fULL;

  static std::uint64_t rotl(std::uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  }

  void absorb(std::uint64_t x) {
    lo = (lo ^ x) * 0xff51afd7ed558ccdULL;
    hi = (hi ^ rotl(lo, 29)) * 0xc4ceb9fe1a85ec53ULL;
    lo ^= rotl(hi, 41);
  }

  void absorb_i64(std::int64_t x) {
    absorb(static_cast<std::uint64_t>(x));
  }

  void absorb_double(double d) {
    if (d == 0.0) d = 0.0;  // Collapse -0.0 onto +0.0.
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    absorb(bits);
  }

  Fingerprint final128() {
    // One extra avalanche round so short inputs still diffuse.
    absorb(0x2545f4914f6cdd1dULL);
    absorb(0x9e3779b97f4a7c15ULL);
    return Fingerprint{hi, lo};
  }

  std::uint64_t final64() {
    const Fingerprint f = final128();
    return f.hi ^ rotl(f.lo, 32);
  }
};

/// Bit pattern of a double for exact (not tolerant) key comparison.
std::uint64_t double_bits(double d) {
  if (d == 0.0) d = 0.0;
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Canonical sort key of one variable: lifetime shape, then activity
/// signature, with the declaration index as the final tiebreak (applied
/// by the sort itself, not stored here).
struct VarKey {
  int write_time = 0;
  int last_read = 0;
  bool live_out = false;
  int width = 0;
  std::vector<int> read_times;
  std::uint64_t initial_bits = 0;
  /// Sorted multiset of the variable's pairwise activity bit patterns —
  /// permutation-invariant by construction.
  std::vector<std::uint64_t> activity_row;

  bool operator<(const VarKey& o) const {
    if (write_time != o.write_time) return write_time < o.write_time;
    if (last_read != o.last_read) return last_read < o.last_read;
    if (read_times != o.read_times) return read_times < o.read_times;
    if (live_out != o.live_out) return live_out < o.live_out;
    if (width != o.width) return width < o.width;
    if (initial_bits != o.initial_bits) return initial_bits < o.initial_bits;
    return activity_row < o.activity_row;
  }
  bool operator==(const VarKey& o) const {
    return write_time == o.write_time && last_read == o.last_read &&
           read_times == o.read_times && live_out == o.live_out &&
           width == o.width && initial_bits == o.initial_bits &&
           activity_row == o.activity_row;
  }
};

void absorb_params(Mix128& h, const energy::EnergyParams& params) {
  h.absorb_double(params.mem_read);
  h.absorb_double(params.mem_write);
  h.absorb_double(params.reg_read);
  h.absorb_double(params.reg_write);
  h.absorb_double(params.reg_full_swing);
  h.absorb_double(params.mem_full_swing);
  h.absorb_double(params.v_nominal);
  h.absorb_double(params.v_mem);
  h.absorb_double(params.v_reg);
  h.absorb_i64(static_cast<std::int64_t>(params.register_model));
}

/// Hashes the problem in the variable/segment order given by
/// \p var_at (canonical position -> declaration index) and \p seg_at.
/// \p var_pos is the inverse of var_at. \p structural_only drops the
/// energy/activity sections (costs do not change the flow topology).
void absorb_problem(Mix128& h, const AllocationProblem& p,
                    const std::vector<int>& var_at,
                    const std::vector<int>& var_pos,
                    const std::vector<int>& seg_at, bool structural_only) {
  h.absorb(0x4c455241u);  // "LERA", format version guard.
  h.absorb(3);
  h.absorb_i64(p.num_steps);
  h.absorb_i64(p.num_registers);
  h.absorb_i64(p.access.period);
  h.absorb_i64(p.access.phase);
  if (!structural_only) absorb_params(h, p.params);

  h.absorb_i64(static_cast<std::int64_t>(p.lifetimes.size()));
  for (const int v : var_at) {
    const lifetime::Lifetime& lt = p.lifetimes[static_cast<std::size_t>(v)];
    h.absorb_i64(lt.width);
    h.absorb_i64(lt.write_time);
    h.absorb_i64(lt.live_out ? 1 : 0);
    h.absorb_i64(static_cast<std::int64_t>(lt.read_times.size()));
    for (const int t : lt.read_times) h.absorb_i64(t);
  }

  if (!structural_only && p.activity.size() == p.lifetimes.size()) {
    const std::size_t n = p.lifetimes.size();
    if (p.activity.is_uniform()) {
      // Every pair is still the constructor default (the overwhelmingly
      // common case: .lt files without activity lines). The whole
      // matrix is (n, default, initial) — absorbing the summary instead
      // of O(n^2) entries is what keeps fingerprinting linear-time. The
      // leading discriminant keeps the short stream from aliasing a
      // prefix of the long form.
      h.absorb(0x756e6966u);  // "unif"
      h.absorb_double(p.activity.uniform_h());
      h.absorb_double(p.activity.uniform_initial());
    } else {
      h.absorb(0x66756c6cu);  // "full"
      for (const int v : var_at) {
        h.absorb_double(p.activity.initial(static_cast<std::size_t>(v)));
      }
      for (std::size_t c1 = 0; c1 < n; ++c1) {
        for (std::size_t c2 = c1 + 1; c2 < n; ++c2) {
          h.absorb_double(p.activity.hamming(
              static_cast<std::size_t>(var_at[c1]),
              static_cast<std::size_t>(var_at[c2])));
        }
      }
    }
  }

  h.absorb_i64(static_cast<std::int64_t>(p.segments.size()));
  for (const int s : seg_at) {
    const lifetime::Segment& seg = p.segments[static_cast<std::size_t>(s)];
    h.absorb_i64(var_pos[static_cast<std::size_t>(seg.var)]);
    h.absorb_i64(seg.index);
    h.absorb_i64(seg.start);
    h.absorb_i64(seg.end);
    h.absorb_i64(static_cast<std::int64_t>(seg.start_kind));
    h.absorb_i64(static_cast<std::int64_t>(seg.end_kind));
    h.absorb_i64(seg.forced_register ? 1 : 0);
    h.absorb_i64(seg.forbidden_register ? 1 : 0);
  }
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xf];
    out[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

FingerprintResult fingerprint_problem(const AllocationProblem& p) {
  FingerprintResult out;
  const std::size_t nvars = p.lifetimes.size();
  const std::size_t nsegs = p.segments.size();

  // Canonical variable order: sort by lifetime/activity key, declaration
  // index as tiebreak.
  std::vector<VarKey> keys(nvars);
  // A uniform activity matrix contributes nothing to the canonical
  // order (every row is identical), so the O(n^2) per-var sorted rows
  // are only built for genuinely non-uniform matrices.
  const bool has_activity =
      p.activity.size() == nvars && !p.activity.is_uniform();
  for (std::size_t v = 0; v < nvars; ++v) {
    const lifetime::Lifetime& lt = p.lifetimes[v];
    VarKey& k = keys[v];
    k.write_time = lt.write_time;
    k.last_read = lt.read_times.empty() ? lt.write_time : lt.last_read();
    k.live_out = lt.live_out;
    k.width = lt.width;
    k.read_times = lt.read_times;
    if (has_activity) {
      k.initial_bits = double_bits(p.activity.initial(v));
      k.activity_row.reserve(nvars - 1);
      for (std::size_t u = 0; u < nvars; ++u) {
        if (u == v) continue;
        k.activity_row.push_back(double_bits(p.activity.hamming(v, u)));
      }
      std::sort(k.activity_row.begin(), k.activity_row.end());
    }
  }
  out.var_order.resize(nvars);
  std::iota(out.var_order.begin(), out.var_order.end(), 0);
  std::stable_sort(out.var_order.begin(), out.var_order.end(),
                   [&keys](int a, int b) {
                     const VarKey& ka = keys[static_cast<std::size_t>(a)];
                     const VarKey& kb = keys[static_cast<std::size_t>(b)];
                     if (ka < kb) return true;
                     if (kb < ka) return false;
                     return a < b;  // Declaration-index tiebreak.
                   });
  std::vector<int> var_pos(nvars, 0);
  for (std::size_t c = 0; c < nvars; ++c) {
    var_pos[static_cast<std::size_t>(out.var_order[c])] = static_cast<int>(c);
  }

  // Canonical segment order: by (canonical var position, index).
  // Segments are stored sorted by (var, index), so a variable's segments
  // are contiguous and keep their relative order.
  out.seg_order.resize(nsegs);
  std::iota(out.seg_order.begin(), out.seg_order.end(), 0);
  std::stable_sort(out.seg_order.begin(), out.seg_order.end(),
                   [&p, &var_pos](int a, int b) {
                     const lifetime::Segment& sa =
                         p.segments[static_cast<std::size_t>(a)];
                     const lifetime::Segment& sb =
                         p.segments[static_cast<std::size_t>(b)];
                     const int pa = var_pos[static_cast<std::size_t>(sa.var)];
                     const int pb = var_pos[static_cast<std::size_t>(sb.var)];
                     if (pa != pb) return pa < pb;
                     return sa.index < sb.index;
                   });

  std::vector<int> identity_vars(nvars);
  std::iota(identity_vars.begin(), identity_vars.end(), 0);
  std::vector<int> identity_segs(nsegs);
  std::iota(identity_segs.begin(), identity_segs.end(), 0);

  Mix128 canon;
  absorb_problem(canon, p, out.var_order, var_pos, out.seg_order,
                 /*structural_only=*/false);
  out.canonical = canon.final128();

  Mix128 exact;
  absorb_problem(exact, p, identity_vars, identity_vars, identity_segs,
                 /*structural_only=*/false);
  out.exact = exact.final64();

  Mix128 structural;
  absorb_problem(structural, p, identity_vars, identity_vars, identity_segs,
                 /*structural_only=*/true);
  out.structural = structural.final64();

  return out;
}

}  // namespace lera::alloc
