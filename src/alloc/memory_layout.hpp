#pragma once

#include <vector>

#include "alloc/assignment.hpp"
#include "energy/quantize.hpp"
#include "netflow/solution.hpp"

/// \file memory_layout.hpp
/// Second stage of the paper's methodology (§5): "The lifetimes of data
/// variables assigned to memory are then used to form another network
/// flow graph [...] to reallocate memory using an activity based energy
/// model." Memory-resident intervals are packed into the minimum number
/// of addresses while minimising the switching activity between
/// successive occupants of each location (cell rewrite energy, and a
/// proxy for address-circuitry activity, the paper's §7 concern).

namespace lera::alloc {

struct MemoryLayout {
  bool feasible = false;
  int locations = 0;  ///< Number of memory addresses used (the minimum).
  /// Address per segment; Assignment::kMemory-resident segments get an
  /// address >= 0, register segments -1.
  std::vector<int> address;
  /// Total occupant-transition activity (Hamming fractions summed over
  /// every location), priced by EnergyParams::e_mem_transition.
  double optimized_activity = 0;
  double optimized_energy = 0;
  /// Same metrics for a plain left-edge packing (what a non-energy-aware
  /// assigner would produce), for comparison.
  double naive_activity = 0;
  double naive_energy = 0;
};

/// Packs the memory-resident intervals of \p a into addresses via a
/// min-cost flow over occupant transitions.
///
/// Thread safety: like alloc::allocate, a pure function of its
/// arguments; safe to run concurrently (engine::Engine calls it from
/// multiple task-solve threads).
MemoryLayout optimize_memory_layout(
    const AllocationProblem& p, const Assignment& a,
    const energy::Quantizer& quantizer = {},
    netflow::SolverKind solver =
        netflow::SolverKind::kSuccessiveShortestPaths);

}  // namespace lera::alloc
