#include "alloc/incremental.hpp"

#include <string>
#include <unordered_map>
#include <utility>

#include "netflow/validate.hpp"

namespace lera::alloc {

namespace {

/// Semantic key of one arc: kind + endpoint segments (in the OLD
/// problem's segment numbering), packed for hashing. Segment ids fit in
/// 24 bits for any instance the footprint estimator admits.
std::uint64_t arc_key(ArcKind kind, int from_seg, int to_seg) {
  return (static_cast<std::uint64_t>(kind) << 50) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from_seg + 1))
          << 25) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(to_seg + 1));
}

}  // namespace

std::vector<int> match_variables(const AllocationProblem& old_p,
                                 const AllocationProblem& new_p) {
  const std::size_t n_old = old_p.lifetimes.size();
  const std::size_t n_new = new_p.lifetimes.size();

  // Name-based matching: requires every name nonempty and unique on
  // both sides, so an edit can add/remove/shift variables anywhere.
  bool names_ok = true;
  std::unordered_map<std::string, int> by_name;
  by_name.reserve(n_old);
  for (std::size_t v = 0; v < n_old && names_ok; ++v) {
    const std::string& name = old_p.lifetimes[v].name;
    if (name.empty() || !by_name.emplace(name, static_cast<int>(v)).second) {
      names_ok = false;
    }
  }
  if (names_ok) {
    std::vector<int> map(n_new, -1);
    std::vector<bool> used(n_old, false);
    for (std::size_t v = 0; v < n_new; ++v) {
      const std::string& name = new_p.lifetimes[v].name;
      if (name.empty()) {
        names_ok = false;
        break;
      }
      const auto it = by_name.find(name);
      if (it == by_name.end()) continue;  // Added variable: no counterpart.
      if (used[static_cast<std::size_t>(it->second)]) {
        names_ok = false;  // Duplicate name on the new side.
        break;
      }
      used[static_cast<std::size_t>(it->second)] = true;
      map[v] = it->second;
    }
    if (names_ok) return map;
  }

  // Positional fallback: only meaningful when nothing was added or
  // removed.
  if (n_old == n_new) {
    std::vector<int> map(n_new);
    for (std::size_t v = 0; v < n_new; ++v) map[v] = static_cast<int>(v);
    return map;
  }
  return {};
}

netflow::WarmCorrespondence derive_correspondence(
    const AllocationProblem& old_p, const FlowGraphSpec& old_spec,
    const AllocationProblem& new_p, const FlowGraphSpec& new_spec,
    const std::vector<int>& var_new_to_old) {
  netflow::WarmCorrespondence map;
  if (var_new_to_old.size() != new_p.lifetimes.size()) return map;

  // Segment correspondence: a matched variable's segments pair up by
  // index (both sides are sorted (var, index), so a variable's segments
  // are contiguous). Index overruns — a shift changed the segment count
  // — leave the extra segments unmatched, which the repair tolerates.
  const std::vector<int> old_first = old_p.first_segment_of_var();
  const std::vector<int> old_counts =
      lifetime::segments_per_var(old_p.segments, old_p.lifetimes.size());
  std::vector<int> seg_new_to_old(new_p.segments.size(), -1);
  for (std::size_t s = 0; s < new_p.segments.size(); ++s) {
    const lifetime::Segment& seg = new_p.segments[s];
    const int ov = var_new_to_old[static_cast<std::size_t>(seg.var)];
    if (ov < 0) continue;
    if (seg.index >= old_counts[static_cast<std::size_t>(ov)] ||
        old_first[static_cast<std::size_t>(ov)] < 0) {
      continue;
    }
    seg_new_to_old[s] = old_first[static_cast<std::size_t>(ov)] + seg.index;
  }

  // Arc correspondence via semantic keys over the OLD numbering.
  std::unordered_map<std::uint64_t, int> old_arcs;
  old_arcs.reserve(old_spec.arc_info.size());
  for (std::size_t a = 0; a < old_spec.arc_info.size(); ++a) {
    const FlowGraphSpec::ArcInfo& info = old_spec.arc_info[a];
    old_arcs.emplace(arc_key(info.kind, info.from_seg, info.to_seg),
                     static_cast<int>(a));
  }
  map.arc_from.assign(new_spec.arc_info.size(), -1);
  for (std::size_t a = 0; a < new_spec.arc_info.size(); ++a) {
    const FlowGraphSpec::ArcInfo& info = new_spec.arc_info[a];
    int from = info.from_seg;
    int to = info.to_seg;
    if (from >= 0) {
      from = seg_new_to_old[static_cast<std::size_t>(from)];
      if (from < 0) continue;
    }
    if (to >= 0) {
      to = seg_new_to_old[static_cast<std::size_t>(to)];
      if (to < 0) continue;
    }
    const auto it = old_arcs.find(arc_key(info.kind, from, to));
    if (it != old_arcs.end()) {
      map.arc_from[a] = it->second;
    }
  }

  // Node correspondence: s, t, then the matched segments' w/r pairs.
  map.node_from.assign(
      static_cast<std::size_t>(new_spec.graph.num_nodes()), -1);
  map.node_from[static_cast<std::size_t>(new_spec.s)] = old_spec.s;
  map.node_from[static_cast<std::size_t>(new_spec.t)] = old_spec.t;
  for (std::size_t s = 0; s < seg_new_to_old.size(); ++s) {
    const int os = seg_new_to_old[s];
    if (os < 0) continue;
    map.node_from[static_cast<std::size_t>(new_spec.w_node[s])] =
        old_spec.w_node[static_cast<std::size_t>(os)];
    map.node_from[static_cast<std::size_t>(new_spec.r_node[s])] =
        old_spec.r_node[static_cast<std::size_t>(os)];
  }
  return map;
}

IncrementalAllocator::IncrementalAllocator(AllocatorOptions options,
                                           double min_mapped_fraction)
    : options_(std::move(options)),
      min_mapped_fraction_(min_mapped_fraction) {}

void IncrementalAllocator::reset() {
  has_baseline_ = false;
  warm_.clear();
}

void IncrementalAllocator::adopt_baseline(
    const AllocationProblem& p, FlowGraphSpec spec,
    const std::vector<netflow::Flow>& arc_flow) {
  // The flow was solved on the supply-adjusted copy; store against the
  // same shape so the potentials are label-corrected once, here.
  netflow::Graph st = spec.graph;
  st.set_supply(spec.s, p.num_registers);
  st.set_supply(spec.t, -p.num_registers);
  if (warm_.store(st, arc_flow) != netflow::WarmStoreOutcome::kStored) {
    return;  // Keep the previous baseline (if any).
  }
  base_problem_ = p;
  base_spec_ = std::move(spec);
  has_baseline_ = true;
}

bool IncrementalAllocator::try_repair(const AllocationProblem& p,
                                      const FlowGraphSpec& spec,
                                      AllocationResult& out,
                                      std::vector<netflow::Flow>& flow_out) {
  if (!has_baseline_ || !warm_.has_entry() ||
      spec.graph.has_lower_bounds() ||
      p.num_registers != base_problem_.num_registers) {
    return false;
  }
  const std::vector<int> var_map = match_variables(base_problem_, p);
  if (var_map.empty() && !p.lifetimes.empty()) return false;
  const netflow::WarmCorrespondence map =
      derive_correspondence(base_problem_, base_spec_, p, spec, var_map);
  if (map.arc_from.empty()) return false;
  const double mapped =
      static_cast<double>(map.mapped_arcs()) /
      static_cast<double>(map.arc_from.empty() ? 1 : map.arc_from.size());
  if (mapped < min_mapped_fraction_) return false;

  ++stats_.repairs_attempted;
  netflow::Graph st = spec.graph;
  st.set_supply(spec.s, p.num_registers);
  st.set_supply(spec.t, -p.num_registers);

  netflow::SolveGuard guard;
  guard.max_iterations = options_.solve.max_iterations_per_solver;
  guard.max_seconds = options_.solve.max_seconds_total;
  guard.cancel = options_.solve.cancel;
  guard.start();
  const netflow::FlowSolution sol =
      netflow::resolve_warm_mapped(st, warm_, map, &guard, &workspace_);
  if (!sol.optimal()) return false;

  // Always certified: feasibility, exact cost, and the residual
  // negative-cycle optimality certificate — a repair that cannot prove
  // itself falls back to cold instead of being served.
  const netflow::CheckResult feasible = netflow::check_feasible(st, sol.arc_flow);
  netflow::Cost cost = 0;
  if (!feasible.ok || !netflow::checked_flow_cost(st, sol.arc_flow, cost) ||
      cost != sol.cost || !netflow::certify_optimal(st, sol.arc_flow)) {
    return false;
  }

  AllocationResult result;
  result.assignment = assignment_from_flow(p, spec, sol.arc_flow);
  if (!validate_assignment(p, result.assignment).empty()) return false;
  result.feasible = true;
  result.flow_cost = sol.cost;
  result.model_energy =
      spec.base_energy + options_.quantizer.dequantize(sol.cost);
  finish_result(p, result);
  result.solve_diagnostics.solver_used =
      netflow::SolverKind::kSuccessiveShortestPaths;
  result.solve_diagnostics.warm_start_attempted = true;
  result.solve_diagnostics.warm_start_hit = true;
  result.solve_diagnostics.certification =
      netflow::CertificationVerdict::kPassed;
  result.solve_diagnostics.iterations = guard.iterations;
  result.solve_diagnostics.message = "optimal via incremental repair";
  out = std::move(result);
  flow_out = sol.arc_flow;
  return true;
}

AllocationResult IncrementalAllocator::solve(const AllocationProblem& p) {
  AllocationResult result;
  const std::string issues = p.verify();
  if (!issues.empty()) {
    result.message = "invalid problem: " + issues;
    return result;
  }
  FlowGraphSpec spec =
      build_flow_graph(p, options_.style, options_.quantizer);

  std::vector<netflow::Flow> repaired_flow;
  if (try_repair(p, spec, result, repaired_flow)) {
    ++stats_.repairs_succeeded;
    adopt_baseline(p, std::move(spec), repaired_flow);
    return result;
  }
  if (has_baseline_) ++stats_.repair_fallbacks;

  ++stats_.cold_solves;
  std::vector<netflow::Flow> arc_flow;
  result = allocate_with_spec(p, spec, options_, &arc_flow);
  if (result.feasible && !result.degraded && !arc_flow.empty()) {
    adopt_baseline(p, std::move(spec), arc_flow);
  }
  return result;
}

}  // namespace lera::alloc
