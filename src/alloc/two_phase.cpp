#include "alloc/two_phase.hpp"

#include <algorithm>
#include <numeric>

namespace lera::alloc {

namespace {

/// Phase-1 register binding: every *variable* (whole lifetime, no
/// splitting — [8] binds variables, not segments) lives in a register;
/// chains minimise total switching. Implemented by reusing the flow
/// machinery with memory energies zeroed out (so only the register
/// activity terms remain) and every lifetime arc forced.
AllocationResult bind_all_to_registers(const AllocationProblem& p,
                                       const TwoPhaseOptions& options) {
  AllocationProblem phase1;
  phase1.lifetimes = p.lifetimes;
  phase1.num_steps = p.num_steps;
  phase1.num_registers = p.max_density();
  phase1.params = p.params;
  phase1.params.mem_read = 0;
  phase1.params.mem_write = 0;
  // Chain quality is judged by switching activity, as in [8].
  phase1.params.register_model = energy::RegisterModel::kActivity;
  phase1.activity = p.activity;
  for (std::size_t v = 0; v < p.lifetimes.size(); ++v) {
    lifetime::Segment seg;
    seg.var = static_cast<int>(v);
    seg.index = 0;
    seg.start = p.lifetimes[v].write_time;
    seg.end = p.lifetimes[v].last_read();
    seg.start_kind = lifetime::CutKind::kDef;
    seg.end_kind = lifetime::CutKind::kDeath;
    seg.forced_register = true;
    phase1.segments.push_back(seg);
  }
  phase1.refresh_density();
  AllocatorOptions alloc_options;
  alloc_options.style = options.style;
  alloc_options.solver = options.solver;
  alloc_options.quantizer = options.quantizer;
  return allocate(phase1, alloc_options);
}

}  // namespace

AllocationResult two_phase_allocate(const AllocationProblem& p,
                                    const TwoPhaseOptions& options) {
  AllocationResult result;
  const AllocationResult phase1 = bind_all_to_registers(p, options);
  if (!phase1.feasible) {
    result.message = "phase 1 binding failed: " + phase1.message;
    return result;
  }

  // Gather each symbolic register's variables (phase 1 binds one
  // lifetime-long segment per variable) and its switching activity
  // (initial write plus every occupant transition).
  const int num_chains = phase1.registers_used;
  std::vector<std::vector<int>> chain_vars(
      static_cast<std::size_t>(num_chains));
  for (std::size_t v = 0; v < p.lifetimes.size(); ++v) {
    const int reg = phase1.assignment.location(v);
    assert(reg >= 0);
    chain_vars[static_cast<std::size_t>(reg)].push_back(
        static_cast<int>(v));
  }

  std::vector<double> chain_activity(static_cast<std::size_t>(num_chains), 0);
  for (int c = 0; c < num_chains; ++c) {
    auto& vars = chain_vars[static_cast<std::size_t>(c)];
    std::sort(vars.begin(), vars.end(), [&](int a, int b) {
      return p.lifetimes[static_cast<std::size_t>(a)].write_time <
             p.lifetimes[static_cast<std::size_t>(b)].write_time;
    });
    int prev_var = -1;
    for (int var : vars) {
      chain_activity[static_cast<std::size_t>(c)] +=
          prev_var < 0
              ? p.activity.initial(static_cast<std::size_t>(var))
              : p.activity.hamming(static_cast<std::size_t>(prev_var),
                                   static_cast<std::size_t>(var));
      prev_var = var;
    }
  }

  // Phase 2: keep the R highest-activity chains in the register file.
  std::vector<int> order(static_cast<std::size_t>(num_chains));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return chain_activity[static_cast<std::size_t>(a)] >
           chain_activity[static_cast<std::size_t>(b)];
  });

  result.assignment = Assignment(p.segments.size());
  std::vector<int> var_register(p.lifetimes.size(), Assignment::kMemory);
  const int keep = std::min(p.num_registers, num_chains);
  for (int rank = 0; rank < keep; ++rank) {
    for (int var : chain_vars[static_cast<std::size_t>(
             order[static_cast<std::size_t>(rank)])]) {
      var_register[static_cast<std::size_t>(var)] = rank;
    }
  }
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const int reg = var_register[static_cast<std::size_t>(p.segments[s].var)];
    if (reg >= 0) result.assignment.assign_register(s, reg);
  }

  const std::string issues = validate_assignment(p, result.assignment);
  if (!issues.empty()) {
    // Forced segments may have landed in a demoted chain; promote is not
    // part of the historical baseline, so report the failure honestly.
    result.message = "two-phase baseline produced invalid assignment: " +
                     issues;
    return result;
  }

  result.feasible = true;
  result.model_energy = 0;  // Not flow-derived for the baseline.
  finish_result(p, result);
  return result;
}

}  // namespace lera::alloc
