#include "alloc/allocator.hpp"

#include <algorithm>
#include <new>

#include "alloc/two_phase.hpp"
#include "netflow/validate.hpp"

namespace lera::alloc {

void finish_result(const AllocationProblem& p, AllocationResult& result) {
  result.stats = count_accesses(p, result.assignment);
  result.static_energy =
      evaluate_energy(p, result.assignment, energy::RegisterModel::kStatic);
  result.activity_energy =
      evaluate_energy(p, result.assignment, energy::RegisterModel::kActivity);
  result.registers_used = result.assignment.registers_used();
}

namespace {

/// Maps AllocatorOptions onto the robust solve layer: the configured
/// primary solver leads the fallback chain, and `certify` selects the
/// optimality certificate on top of the always-on feasibility checks.
netflow::SolveOptions robust_options(const AllocatorOptions& options) {
  netflow::SolveOptions solve = options.solve;
  if (solve.chain.empty()) {
    solve.chain = {options.solver, netflow::SolverKind::kNetworkSimplex,
                   netflow::SolverKind::kSuccessiveShortestPaths,
                   netflow::SolverKind::kCycleCanceling};
  }
  solve.certify = options.certify ? netflow::CertifyLevel::kOptimal
                                  : netflow::CertifyLevel::kFeasible;
  return solve;
}

}  // namespace

Assignment assignment_from_flow(const AllocationProblem& p,
                                const FlowGraphSpec& spec,
                                const std::vector<netflow::Flow>& arc_flow) {
  Assignment assignment(p.segments.size());
  int next_register = 0;
  for (netflow::ArcId a : spec.graph.out_arcs(spec.s)) {
    const FlowGraphSpec::ArcInfo& info =
        spec.arc_info[static_cast<std::size_t>(a)];
    if (info.kind == ArcKind::kBypass ||
        arc_flow[static_cast<std::size_t>(a)] == 0) {
      continue;
    }
    const int reg = next_register++;
    int seg = info.to_seg;
    for (;;) {
      assignment.assign_register(static_cast<std::size_t>(seg), reg);
      // Exactly one unit leaves this segment's r-node.
      netflow::ArcId out = netflow::kInvalidArc;
      for (netflow::ArcId cand :
           spec.graph.out_arcs(spec.r_node[static_cast<std::size_t>(seg)])) {
        if (arc_flow[static_cast<std::size_t>(cand)] > 0) {
          out = cand;
          break;
        }
      }
      assert(out != netflow::kInvalidArc && "register chain broke mid-walk");
      const FlowGraphSpec::ArcInfo& step =
          spec.arc_info[static_cast<std::size_t>(out)];
      if (step.kind == ArcKind::kToSink) break;
      seg = step.to_seg;
    }
  }
  return assignment;
}

AllocationResult allocate_with_spec(const AllocationProblem& p,
                                    const FlowGraphSpec& spec,
                                    const AllocatorOptions& options,
                                    std::vector<netflow::Flow>* arc_flow_out) {
  AllocationResult result;
  const netflow::FlowSolution sol = netflow::solve_st_flow_robust(
      spec.graph, spec.s, spec.t, p.num_registers, robust_options(options),
      &result.solve_diagnostics);
  if (!sol.optimal()) {
    switch (sol.status) {
      case netflow::SolveStatus::kInfeasible:
        result.message =
            "no feasible flow: the forced (register-only) segments cannot "
            "be covered by R=" +
            std::to_string(p.num_registers) + " registers";
        break;
      case netflow::SolveStatus::kBadInstance:
        result.message = "bad flow instance: " + sol.message;
        break;
      case netflow::SolveStatus::kBudgetExceeded:
        result.timed_out = result.solve_diagnostics.deadline_hit;
        result.message = "solve budget exhausted: " + sol.message;
        break;
      case netflow::SolveStatus::kUncertified:
        result.message =
            "solver chain failed certification: " + sol.message;
        break;
      case netflow::SolveStatus::kCancelled:
        result.cancelled = true;
        result.message = "solve cancelled: " + sol.message;
        break;
      case netflow::SolveStatus::kMemoryExceeded:
        result.memory_exceeded = true;
        result.message = "solve memory budget exhausted: " + sol.message;
        break;
      case netflow::SolveStatus::kOptimal:
        break;  // Unreachable.
    }
    return result;
  }

  // Each unit of flow out of s traces one register's occupancy chain.
  result.assignment = assignment_from_flow(p, spec, sol.arc_flow);

  const std::string assignment_issues =
      validate_assignment(p, result.assignment);
  if (!assignment_issues.empty()) {
    result.message = "internal error, invalid assignment: " +
                     assignment_issues;
    return result;
  }

  result.feasible = true;
  result.flow_cost = sol.cost;
  result.model_energy =
      spec.base_energy + options.quantizer.dequantize(sol.cost);
  if (arc_flow_out != nullptr) *arc_flow_out = sol.arc_flow;
  finish_result(p, result);
  return result;
}

namespace {

/// allocate_with_spec plus the graceful-degradation contract: when the flow
/// path fails and the caller opted in, fall back to the two-phase
/// baseline and record the downgrade instead of failing outright.
AllocationResult solve_or_degrade(const AllocationProblem& p,
                                  const FlowGraphSpec& spec,
                                  const AllocatorOptions& options) {
  AllocationResult result = allocate_with_spec(p, spec, options);
  // A cancelled request is never degraded: the caller withdrew it, so
  // spending baseline time on an answer nobody wants would be waste.
  if (result.feasible || result.cancelled || !options.fallback_to_baseline) {
    return result;
  }

  TwoPhaseOptions baseline;
  baseline.solver = options.solver;
  baseline.quantizer = options.quantizer;
  AllocationResult fallback = two_phase_allocate(p, baseline);
  if (!fallback.feasible) {
    result.message +=
        "; two-phase fallback also failed: " + fallback.message;
    return result;
  }
  fallback.degraded = true;
  fallback.timed_out = result.timed_out;
  fallback.memory_exceeded = result.memory_exceeded;
  fallback.solve_diagnostics = std::move(result.solve_diagnostics);
  fallback.message =
      "degraded to two-phase baseline (" + result.message + ")";
  return fallback;
}

}  // namespace

AllocationResult allocate(const AllocationProblem& p,
                          const AllocatorOptions& options) {
  AllocationResult result;
  const std::string problem_issues = p.verify();
  if (!problem_issues.empty()) {
    result.message = "invalid problem: " + problem_issues;
    return result;
  }
  // The graph build is the one large allocation outside the solve
  // boundary's bad_alloc net; catch it here so an OOM building the spec
  // degrades (or reports) exactly like one inside the solvers.
  try {
    const FlowGraphSpec spec =
        build_flow_graph(p, options.style, options.quantizer);
    return solve_or_degrade(p, spec, options);
  } catch (const std::bad_alloc&) {
    result.memory_exceeded = true;
    result.message = "allocation failed building the flow graph (out of memory)";
  }
  if (options.fallback_to_baseline) {
    TwoPhaseOptions baseline;
    baseline.solver = options.solver;
    baseline.quantizer = options.quantizer;
    AllocationResult fallback = two_phase_allocate(p, baseline);
    if (fallback.feasible) {
      fallback.degraded = true;
      fallback.memory_exceeded = true;
      fallback.message =
          "degraded to two-phase baseline (" + result.message + ")";
      return fallback;
    }
    result.message += "; two-phase fallback also failed: " + fallback.message;
  }
  return result;
}

std::vector<AllocationResult> allocate_sweep(
    const AllocationProblem& p, const std::vector<int>& register_counts,
    const AllocatorOptions& options) {
  std::vector<AllocationResult> results;
  results.reserve(register_counts.size());
  AllocationProblem working = p;
  const std::string problem_issues = working.verify();
  if (!problem_issues.empty() || register_counts.empty()) {
    results.resize(register_counts.size());
    for (auto& r : results) {
      r.message = "invalid problem: " + problem_issues;
    }
    return results;
  }
  working.num_registers =
      *std::max_element(register_counts.begin(), register_counts.end());
  FlowGraphSpec spec;
  try {
    spec = build_flow_graph(working, options.style, options.quantizer);
  } catch (const std::bad_alloc&) {
    for (std::size_t i = 0; i < register_counts.size(); ++i) {
      AllocationResult r;
      r.memory_exceeded = true;
      r.message =
          "allocation failed building the flow graph (out of memory)";
      results.push_back(std::move(r));
    }
    return results;
  }
  for (int registers : register_counts) {
    working.num_registers = registers;
    results.push_back(solve_or_degrade(working, spec, options));
  }
  return results;
}

}  // namespace lera::alloc
