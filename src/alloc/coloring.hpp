#pragma once

#include "alloc/allocator.hpp"

/// \file coloring.hpp
/// Priority-based coloring baseline (the paper's refs [6, 7]: Chaitin,
/// Chow/Hennessy). Classic compilers allocate registers for
/// *performance*: variables are ranked by access count (spill cost) and
/// greedily bound to registers whole — energy never enters the
/// objective. The paper's §2 points out these techniques "concentrated
/// on fast compile times and performance"; this baseline quantifies
/// what that costs in storage energy.

namespace lera::alloc {

struct ColoringOptions {
  /// Rank by accesses weighted by 1/lifetime-length (Chow's priority
  /// function) instead of raw access counts.
  bool priority_per_step = false;
};

/// Greedy whole-variable binding: highest-priority variables get
/// registers (left-edge over their full lifetimes) until R is
/// exhausted; the rest live in memory. Forced segments (restricted
/// access times) are honoured by promoting their variables first.
AllocationResult coloring_allocate(const AllocationProblem& p,
                                   const ColoringOptions& options = {});

}  // namespace lera::alloc
