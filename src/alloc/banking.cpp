#include "alloc/banking.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "alloc/evaluate.hpp"

namespace lera::alloc {

namespace {

/// Per-step sets of touched locations.
std::map<int, std::vector<int>> accesses_by_step(
    const AllocationProblem& p, const Assignment& a,
    const std::vector<int>& address) {
  std::map<int, std::vector<int>> by_step;
  for (const StorageEvent& ev : enumerate_events(p, a)) {
    if (ev.type != EventType::kMemRead && ev.type != EventType::kMemWrite) {
      continue;
    }
    if (ev.seg < 0) continue;
    const int loc = address[static_cast<std::size_t>(ev.seg)];
    if (loc >= 0) by_step[ev.step].push_back(loc);
  }
  return by_step;
}

int count_conflicts(const std::map<int, std::vector<int>>& by_step,
                    const std::vector<int>& bank, int* parallel_pairs) {
  int conflicts = 0;
  if (parallel_pairs) *parallel_pairs = 0;
  for (const auto& [step, locs] : by_step) {
    for (std::size_t i = 0; i < locs.size(); ++i) {
      for (std::size_t j = i + 1; j < locs.size(); ++j) {
        if (bank[static_cast<std::size_t>(locs[i])] ==
            bank[static_cast<std::size_t>(locs[j])]) {
          ++conflicts;
        } else if (parallel_pairs) {
          ++*parallel_pairs;
        }
      }
    }
  }
  return conflicts;
}

}  // namespace

BankAssignment assign_banks(const AllocationProblem& p, const Assignment& a,
                            const std::vector<int>& address, int num_banks) {
  BankAssignment out;
  if (num_banks <= 0 || address.size() != p.segments.size()) return out;
  out.feasible = true;

  int num_locations = 0;
  for (int addr : address) num_locations = std::max(num_locations, addr + 1);
  out.idle_steps.assign(static_cast<std::size_t>(num_banks), 0);
  if (num_locations == 0) return out;

  const auto by_step = accesses_by_step(p, a, address);

  // Pairwise same-step weights.
  std::map<std::pair<int, int>, int> weight;
  std::vector<int> total_weight(static_cast<std::size_t>(num_locations), 0);
  for (const auto& [step, locs] : by_step) {
    for (std::size_t i = 0; i < locs.size(); ++i) {
      for (std::size_t j = i + 1; j < locs.size(); ++j) {
        if (locs[i] == locs[j]) continue;  // Same cell: unsplittable.
        const int u = std::min(locs[i], locs[j]);
        const int v = std::max(locs[i], locs[j]);
        ++weight[{u, v}];
        ++total_weight[static_cast<std::size_t>(u)];
        ++total_weight[static_cast<std::size_t>(v)];
      }
    }
  }

  // Greedy: heaviest locations first, each into the bank that adds the
  // least conflict weight (ties: emptiest bank).
  std::vector<int> order(static_cast<std::size_t>(num_locations));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return total_weight[static_cast<std::size_t>(x)] >
           total_weight[static_cast<std::size_t>(y)];
  });

  out.bank.assign(static_cast<std::size_t>(num_locations), -1);
  std::vector<int> bank_size(static_cast<std::size_t>(num_banks), 0);
  for (int loc : order) {
    int best_bank = 0;
    long best_cost = -1;
    for (int b = 0; b < num_banks; ++b) {
      long cost = 0;
      for (const auto& [uv, w] : weight) {
        const int other = uv.first == loc   ? uv.second
                          : uv.second == loc ? uv.first
                                             : -1;
        if (other >= 0 && out.bank[static_cast<std::size_t>(other)] == b) {
          cost += w;
        }
      }
      // Secondary objective: balance bank sizes.
      cost = cost * 1024 + bank_size[static_cast<std::size_t>(b)];
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_bank = b;
      }
    }
    out.bank[static_cast<std::size_t>(loc)] = best_bank;
    ++bank_size[static_cast<std::size_t>(best_bank)];
  }

  // Local improvement: move single locations to cheaper banks until a
  // fixed point (bounded passes; conflicts strictly decrease).
  auto bank_cost = [&](int loc, int b) {
    long cost = 0;
    for (const auto& [uv, w] : weight) {
      const int other = uv.first == loc   ? uv.second
                        : uv.second == loc ? uv.first
                                           : -1;
      if (other >= 0 && out.bank[static_cast<std::size_t>(other)] == b) {
        cost += w;
      }
    }
    return cost;
  };
  for (int pass = 0; pass < 8; ++pass) {
    bool moved = false;
    for (int loc = 0; loc < num_locations; ++loc) {
      const int cur = out.bank[static_cast<std::size_t>(loc)];
      long best = bank_cost(loc, cur);
      int target = cur;
      for (int b = 0; b < num_banks; ++b) {
        if (b == cur) continue;
        const long cost = bank_cost(loc, b);
        if (cost < best) {
          best = cost;
          target = b;
        }
      }
      if (target != cur) {
        out.bank[static_cast<std::size_t>(loc)] = target;
        moved = true;
      }
    }
    if (!moved) break;
  }

  std::vector<int> interleaved(static_cast<std::size_t>(num_locations));
  for (int loc = 0; loc < num_locations; ++loc) {
    interleaved[static_cast<std::size_t>(loc)] = loc % num_banks;
  }
  out.naive_conflicts = count_conflicts(by_step, interleaved, nullptr);
  out.conflicts = count_conflicts(by_step, out.bank, &out.parallel_pairs);
  if (out.conflicts > out.naive_conflicts) {
    // The heuristic should not lose to plain interleaving; keep the
    // better of the two.
    out.bank = interleaved;
    out.conflicts = count_conflicts(by_step, out.bank, &out.parallel_pairs);
  }

  // Sleep opportunity: steps 1..x+1 in which a bank sees no access.
  for (int b = 0; b < num_banks; ++b) {
    int idle = 0;
    for (int step = 1; step <= p.num_steps + 1; ++step) {
      const auto it = by_step.find(step);
      bool touched = false;
      if (it != by_step.end()) {
        for (int loc : it->second) {
          touched |= out.bank[static_cast<std::size_t>(loc)] == b;
        }
      }
      idle += touched ? 0 : 1;
    }
    out.idle_steps[static_cast<std::size_t>(b)] = idle;
  }
  return out;
}

}  // namespace lera::alloc
