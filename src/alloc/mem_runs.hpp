#pragma once

#include <vector>

#include "alloc/assignment.hpp"

/// \file mem_runs.hpp
/// Memory runs: the maximal spans a variable spends in memory under an
/// assignment. A run occupies one memory word for its whole interval,
/// so runs are the allocation unit for both the second-stage address
/// re-layout (memory_layout.hpp) and the on-/off-chip split
/// (hierarchy.hpp).

namespace lera::alloc {

struct MemRun {
  int var = -1;
  int start = 0;
  int end = 0;
  std::size_t first_seg = 0;
  std::size_t last_seg = 0;
};

/// Maximal runs of consecutive memory segments per variable, sorted by
/// start time.
std::vector<MemRun> memory_runs(const AllocationProblem& p,
                                const Assignment& a);

/// run_of[seg] = index into the run vector, or -1 for register segments.
std::vector<int> run_index_by_segment(const AllocationProblem& p,
                                      const std::vector<MemRun>& runs);

}  // namespace lera::alloc
