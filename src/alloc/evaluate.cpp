#include "alloc/evaluate.hpp"

#include <algorithm>
#include <array>
#include <map>

namespace lera::alloc {

namespace {

using lifetime::CutKind;
using lifetime::Segment;

}  // namespace

std::vector<StorageEvent> enumerate_events(const AllocationProblem& p,
                                           const Assignment& a) {
  assert(a.size() == p.segments.size());
  std::vector<StorageEvent> events;

  // Segments are contiguous per variable; walk each variable's run.
  std::size_t i = 0;
  while (i < p.segments.size()) {
    const int var = p.segments[i].var;
    std::size_t last = i;
    while (last + 1 < p.segments.size() &&
           p.segments[last + 1].var == var) {
      ++last;
    }

    // Definition.
    const Segment& first = p.segments[i];
    if (a.in_register(i)) {
      events.push_back({first.start, EventType::kRegWrite, var,
                        a.location(i), static_cast<int>(i)});
    } else {
      events.push_back({first.start, EventType::kMemWrite, var,
                        Assignment::kMemory, static_cast<int>(i)});
    }

    // Interior cuts.
    for (std::size_t s = i; s < last; ++s) {
      const Segment& cur = p.segments[s];
      const int cut = cur.end;
      const CutKind kind = cur.end_kind;
      const int loc_cur = a.location(s);
      const int loc_next = a.location(s + 1);

      if (kind == CutKind::kRead) {
        // The consumer fetches the value from wherever it lives now.
        if (loc_cur >= 0) {
          events.push_back({cut, EventType::kRegRead, var, loc_cur,
                            static_cast<int>(s)});
        } else {
          events.push_back({cut, EventType::kMemRead, var,
                            Assignment::kMemory, static_cast<int>(s)});
        }
      }
      const bool leaving = loc_cur >= 0 && loc_next != loc_cur;
      const bool entering = loc_next >= 0 && loc_cur != loc_next;
      if (leaving) {
        // Write-back: the value stays reachable for its later reads.
        // Forcing the *next* segment into a register (ideally chaining)
        // is what removes this traffic.
        events.push_back({cut, EventType::kMemWrite, var,
                          Assignment::kMemory, static_cast<int>(s + 1)});
      }
      if (entering) {
        if (kind == CutKind::kBoundary) {
          // Explicit load (after a write-back if the value came from
          // another register); at a read cut the consumer's fetch
          // doubles as the load and register-to-register moves carry no
          // memory traffic.
          events.push_back({cut, EventType::kMemRead, var,
                            Assignment::kMemory, static_cast<int>(s)});
        }
        events.push_back({cut, EventType::kRegWrite, var, loc_next,
                          static_cast<int>(s + 1)});
      }
    }

    // Death: the final read.
    const Segment& end_seg = p.segments[last];
    assert(end_seg.end_kind == CutKind::kDeath);
    if (a.in_register(last)) {
      events.push_back({end_seg.end, EventType::kRegRead, var,
                        a.location(last), static_cast<int>(last)});
    } else {
      events.push_back({end_seg.end, EventType::kMemRead, var,
                        Assignment::kMemory, static_cast<int>(last)});
    }

    i = last + 1;
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const StorageEvent& x, const StorageEvent& y) {
                     return x.step < y.step;
                   });
  return events;
}

AccessStats count_accesses(const AllocationProblem& p, const Assignment& a) {
  const std::vector<StorageEvent> events = enumerate_events(p, a);
  AccessStats stats;
  std::map<int, std::array<int, 4>> per_step;
  for (const StorageEvent& ev : events) {
    auto& bucket = per_step[ev.step];
    switch (ev.type) {
      case EventType::kMemRead:
        ++stats.mem_reads;
        ++bucket[0];
        break;
      case EventType::kMemWrite:
        ++stats.mem_writes;
        ++bucket[1];
        break;
      case EventType::kRegRead:
        ++stats.reg_reads;
        ++bucket[2];
        break;
      case EventType::kRegWrite:
        ++stats.reg_writes;
        ++bucket[3];
        break;
    }
  }
  for (const auto& [step, bucket] : per_step) {
    stats.mem_read_ports = std::max(stats.mem_read_ports, bucket[0]);
    stats.mem_write_ports = std::max(stats.mem_write_ports, bucket[1]);
    stats.reg_read_ports = std::max(stats.reg_read_ports, bucket[2]);
    stats.reg_write_ports = std::max(stats.reg_write_ports, bucket[3]);
  }
  stats.mem_locations = memory_locations(p, a);
  return stats;
}

EnergyBreakdown evaluate_energy(const AllocationProblem& p,
                                const Assignment& a,
                                energy::RegisterModel model) {
  const energy::EnergyParams& e = p.params;
  const std::vector<StorageEvent> events = enumerate_events(p, a);

  EnergyBreakdown out;
  // Register-occupant tracking for the activity model. Events are sorted
  // by step; at most one write per register per step (exclusivity).
  std::map<int, int> occupant;  // register -> variable currently held
  for (const StorageEvent& ev : events) {
    switch (ev.type) {
      case EventType::kMemRead:
        out.memory += e.e_mem_read();
        break;
      case EventType::kMemWrite:
        out.memory += e.e_mem_write();
        break;
      case EventType::kRegRead:
        if (model == energy::RegisterModel::kStatic) {
          out.register_file += e.e_reg_read();
        }
        break;
      case EventType::kRegWrite:
        if (model == energy::RegisterModel::kStatic) {
          out.register_file += e.e_reg_write();
        } else {
          const auto it = occupant.find(ev.reg);
          const double h =
              it == occupant.end()
                  ? p.activity.initial(static_cast<std::size_t>(ev.var))
                  : p.activity.hamming(
                        static_cast<std::size_t>(it->second),
                        static_cast<std::size_t>(ev.var));
          out.register_file += e.e_reg_transition(h);
        }
        occupant[ev.reg] = ev.var;
        break;
    }
  }
  return out;
}

int memory_locations(const AllocationProblem& p, const Assignment& a) {
  int peak = 0;
  for (int b = 0; b <= p.num_steps; ++b) {
    int resident = 0;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (a.in_register(s)) continue;
      const Segment& seg = p.segments[s];
      if (seg.start <= b && b < seg.end) ++resident;
    }
    peak = std::max(peak, resident);
  }
  return peak;
}

}  // namespace lera::alloc
