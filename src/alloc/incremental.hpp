#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/fingerprint.hpp"
#include "netflow/warm.hpp"

/// \file incremental.hpp
/// Incremental-edit repair: re-solve an edited problem from the previous
/// optimal flow instead of cold. The editing client pattern — add or
/// remove a variable, shift a lifetime segment, change a pin — changes a
/// handful of the flow graph's arcs, so the previous optimum is a few
/// augmentations away from the new one. The repair:
///
///  1. builds the new flow graph and derives an arc/node correspondence
///     to the baseline's graph from *semantic* keys (ArcKind + endpoint
///     segments, with variables matched by name), never raw indices;
///  2. imposes the baseline's flow over the corresponding arcs (removed
///     arcs are simply not imposed; added arcs start empty) and repairs
///     the imbalance with the warm-start saturate-and-drain machinery
///     (netflow::resolve_warm_mapped);
///  3. certifies the repaired flow against the independent optimality
///     checks (validate.hpp) — ALWAYS, regardless of options: a repair
///     that cannot prove optimality falls back to a cold solve, so an
///     incremental answer is never worse than a cold one, only faster.
///
/// The test suite's 100-seed differential sweep asserts the repaired
/// objective is bit-equal to the cold solve's on every edit.

namespace lera::alloc {

/// Counters of one IncrementalAllocator's lifetime.
struct IncrementalStats {
  std::int64_t cold_solves = 0;        ///< Full solves (first + fallbacks).
  std::int64_t repairs_attempted = 0;  ///< Warm-mapped resolves started.
  std::int64_t repairs_succeeded = 0;  ///< Certified-optimal repairs served.
  std::int64_t repair_fallbacks = 0;   ///< Attempts that fell back to cold.
};

/// A sequential incremental solver: keeps the last certified-optimal
/// flow as the baseline and repairs each subsequent (edited) instance
/// from it. Not thread-safe — one editing stream per instance, like a
/// SolverWorkspace.
class IncrementalAllocator {
 public:
  /// \p min_mapped_fraction gates the repair: when fewer than this
  /// fraction of the new graph's arcs have a baseline counterpart the
  /// edit is too large for a repair to beat a cold solve.
  explicit IncrementalAllocator(AllocatorOptions options = {},
                                double min_mapped_fraction = 0.5);

  /// Solves \p p — incrementally when a usable baseline exists, cold
  /// otherwise — and promotes the answer to the new baseline.
  AllocationResult solve(const AllocationProblem& p);

  const IncrementalStats& stats() const { return stats_; }

  /// Drops the baseline (the next solve is cold).
  void reset();

 private:
  bool try_repair(const AllocationProblem& p, const FlowGraphSpec& spec,
                  AllocationResult& out,
                  std::vector<netflow::Flow>& flow_out);
  void adopt_baseline(const AllocationProblem& p, FlowGraphSpec spec,
                      const std::vector<netflow::Flow>& arc_flow);

  AllocatorOptions options_;
  double min_mapped_fraction_;
  IncrementalStats stats_;

  bool has_baseline_ = false;
  AllocationProblem base_problem_;
  FlowGraphSpec base_spec_;
  /// Baseline flow + optimality potentials, stored against the
  /// supply-adjusted (F = R at s/t) copy of base_spec_.graph.
  netflow::WarmStartCache warm_;
  netflow::SolverWorkspace workspace_;
};

/// Derives the variable correspondence new -> old between two problems:
/// by unique nonempty name when both sides have them, positionally when
/// the counts match, empty (no correspondence) otherwise. new_to_old[v]
/// is the old variable index or -1. Exposed for tests.
std::vector<int> match_variables(const AllocationProblem& old_p,
                                 const AllocationProblem& new_p);

/// Builds the arc/node correspondence between \p new_spec and
/// \p old_spec from semantic arc keys, given the variable match.
/// Exposed for tests.
netflow::WarmCorrespondence derive_correspondence(
    const AllocationProblem& old_p, const FlowGraphSpec& old_spec,
    const AllocationProblem& new_p, const FlowGraphSpec& new_spec,
    const std::vector<int>& var_new_to_old);

}  // namespace lera::alloc
