#pragma once

#include <vector>

#include "alloc/assignment.hpp"

/// \file offset_assignment.hpp
/// Simple offset assignment (SOA). The paper closes §7 with: "This
/// approach has recently been extended to solve the multiple offset
/// assignment problem in software synthesis for DSP processors" — DSP
/// address generators step an address register by ±1 for free, while
/// arbitrary jumps cost an extra instruction (and its energy). Given
/// the temporal sequence of memory accesses an allocation produces,
/// choosing *where in memory* each location lives decides how many
/// accesses are reachable by free ±1 steps.
///
/// Classic SOA (Liao et al.): build the access-transition graph (nodes =
/// memory locations, edge weights = #adjacent access pairs), pick a
/// maximum-weight Hamiltonian-path-like edge set greedily (Kruskal with
/// degree <= 2 and no cycles), and lay locations out along the resulting
/// paths. Covered transitions are free; the rest cost an address-
/// register reload.

namespace lera::alloc {

struct OffsetAssignment {
  bool feasible = false;
  /// Memory offset per location id (as produced by MemoryLayout /
  /// left-edge addressing); offset[i] is location i's position.
  std::vector<int> offset;
  int total_transitions = 0;  ///< Adjacent access pairs observed.
  int free_transitions = 0;   ///< Served by the ±1 auto-increment.
  int reloads = 0;            ///< Address-register reloads needed.
  /// Reloads a naive identity layout (offset[i] = i) would need.
  int naive_reloads = 0;
};

/// Computes an offset assignment for the memory access sequence implied
/// by \p a with locations given by \p address (per segment, -1 for
/// register segments — e.g. MemoryLayout::address).
OffsetAssignment assign_offsets(const AllocationProblem& p,
                                const Assignment& a,
                                const std::vector<int>& address);

}  // namespace lera::alloc
