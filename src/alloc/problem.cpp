#include "alloc/problem.hpp"

#include <sstream>

#include "ir/eval.hpp"

namespace lera::alloc {

int AllocationProblem::max_density() const {
  return lifetime::max_density(density);
}

std::vector<int> AllocationProblem::first_segment_of_var() const {
  std::vector<int> first(lifetimes.size(), -1);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const int var = segments[s].var;
    if (first[static_cast<std::size_t>(var)] < 0) {
      first[static_cast<std::size_t>(var)] = static_cast<int>(s);
    }
  }
  return first;
}

void AllocationProblem::refresh_density() {
  density = lifetime::density_profile(lifetimes, num_steps);
  is_max_density = lifetime::max_density_boundaries(density);
}

std::string AllocationProblem::verify() const {
  std::ostringstream os;
  if (activity.size() != lifetimes.size()) {
    os << "activity matrix size " << activity.size() << " != #lifetimes "
       << lifetimes.size() << "; ";
  }
  if (num_registers < 0) os << "negative register count; ";
  int prev_var = -1;
  int prev_index = -1;
  int prev_end = 0;
  for (const lifetime::Segment& s : segments) {
    if (s.var < 0 || static_cast<std::size_t>(s.var) >= lifetimes.size()) {
      os << "segment references unknown variable " << s.var << "; ";
      continue;
    }
    if (s.var == prev_var) {
      if (s.index != prev_index + 1) {
        os << "segments of var " << s.var << " not consecutive; ";
      }
      if (s.start != prev_end) {
        os << "segments of var " << s.var << " not contiguous; ";
      }
    } else if (s.var < prev_var) {
      os << "segments not sorted by variable; ";
    } else if (s.index != 0) {
      os << "first segment of var " << s.var << " has index " << s.index
         << "; ";
    }
    prev_var = s.var;
    prev_index = s.index;
    prev_end = s.end;
  }
  return os.str();
}

AllocationProblem make_problem(std::vector<lifetime::Lifetime> lifetimes,
                               int num_steps, int num_registers,
                               const energy::EnergyParams& params,
                               energy::ActivityMatrix activity,
                               const lifetime::SplitOptions& split) {
  AllocationProblem p;
  p.lifetimes = std::move(lifetimes);
  p.num_steps = num_steps;
  p.num_registers = num_registers;
  p.params = params;
  p.activity = std::move(activity);
  p.access = split.access;
  p.segments = lifetime::build_segments(p.lifetimes, num_steps, split);
  p.refresh_density();
  assert(p.verify().empty());
  return p;
}

AllocationProblem make_problem_from_block(
    const ir::BasicBlock& bb, const sched::Schedule& sched,
    int num_registers, const energy::EnergyParams& params,
    const std::vector<std::vector<std::int64_t>>& trace_inputs,
    const lifetime::SplitOptions& split,
    const lifetime::LifetimeOptions& lifetime_opts) {
  std::vector<lifetime::Lifetime> lifetimes =
      lifetime::analyze(bb, sched, lifetime_opts);

  energy::ActivityMatrix activity(lifetimes.size());
  if (!trace_inputs.empty()) {
    const auto full_trace = ir::evaluate_trace(bb, trace_inputs);
    // Project the per-ValueId trace onto the allocation variables.
    std::vector<std::vector<std::int64_t>> var_trace(full_trace.size());
    std::vector<int> widths;
    widths.reserve(lifetimes.size());
    for (const lifetime::Lifetime& lt : lifetimes) {
      widths.push_back(lt.width);
    }
    for (std::size_t s = 0; s < full_trace.size(); ++s) {
      var_trace[s].reserve(lifetimes.size());
      for (const lifetime::Lifetime& lt : lifetimes) {
        var_trace[s].push_back(
            full_trace[s][static_cast<std::size_t>(lt.value)]);
      }
    }
    activity = energy::ActivityMatrix::from_trace(var_trace, widths);
  }

  return make_problem(std::move(lifetimes), sched.length(bb), num_registers,
                      params, std::move(activity), split);
}

}  // namespace lera::alloc
