#pragma once

#include <string>
#include <vector>

#include "alloc/problem.hpp"

/// \file assignment.hpp
/// The output of an allocator: where every lifetime segment lives, plus
/// the structural checks that make an assignment *valid* (register
/// capacity respected at every boundary, forced segments honoured,
/// registers exclusive).

namespace lera::alloc {

/// Per-segment placement: register index in [0, R) or kMemory.
class Assignment {
 public:
  static constexpr int kMemory = -1;

  Assignment() = default;
  explicit Assignment(std::size_t num_segments)
      : location_(num_segments, kMemory) {}

  int location(std::size_t seg) const { return location_[seg]; }
  void assign_register(std::size_t seg, int reg) {
    assert(reg >= 0);
    location_[seg] = reg;
  }
  void assign_memory(std::size_t seg) { location_[seg] = kMemory; }

  bool in_register(std::size_t seg) const { return location_[seg] >= 0; }
  std::size_t size() const { return location_.size(); }

  /// Number of distinct registers actually used.
  int registers_used() const;

 private:
  std::vector<int> location_;
};

/// Validates \p a against \p p:
///  * every forced segment is in a register;
///  * no register holds two segments that overlap in time;
///  * at every boundary, at most R registers are occupied;
///  * register indices are within [0, R).
/// Returns an empty string when valid.
std::string validate_assignment(const AllocationProblem& p,
                                const Assignment& a);

}  // namespace lera::alloc
