#pragma once

#include <vector>

#include "alloc/assignment.hpp"
#include "alloc/problem.hpp"

/// \file evaluate.hpp
/// Replays an assignment as a sequence of storage events and prices it.
/// This is deliberately independent of the flow formulation: the tests
/// assert that base_energy + flow cost equals the replayed energy, which
/// certifies the arc-cost algebra of flow_graph.cpp end to end.
///
/// Semantics (matching the flow model; see DESIGN.md):
///  * a value leaving a register before its death is written back to
///    memory (memory addresses are reused aggressively, so no stale copy
///    can be relied upon);
///  * at an interior read the consumer's memory read doubles as the
///    register load; register-to-register moves are free of memory
///    traffic;
///  * at a pure access-boundary cut, entering a register costs an
///    explicit memory read.

namespace lera::alloc {

enum class EventType { kMemRead, kMemWrite, kRegRead, kRegWrite };

struct StorageEvent {
  int step = 0;
  EventType type = EventType::kMemRead;
  int var = -1;
  int reg = Assignment::kMemory;  ///< Register involved (reg events only).
  /// Segment whose placement caused the event. For cut events this is
  /// the segment whose *forcing into a register* would remove the
  /// memory traffic (used by the port-constraint loop of §7).
  int seg = -1;
};

/// All storage events implied by \p a, sorted by step.
std::vector<StorageEvent> enumerate_events(const AllocationProblem& p,
                                           const Assignment& a);

struct AccessStats {
  int mem_reads = 0;
  int mem_writes = 0;
  int reg_reads = 0;
  int reg_writes = 0;

  // Peak same-step traffic -> required port counts (paper §7 determines
  // port counts from the flow solution).
  int mem_read_ports = 0;
  int mem_write_ports = 0;
  int reg_read_ports = 0;
  int reg_write_ports = 0;

  /// Minimum number of memory storage locations (peak simultaneous
  /// memory residency; the paper's graph provably minimises this).
  int mem_locations = 0;

  int mem_accesses() const { return mem_reads + mem_writes; }
  int reg_accesses() const { return reg_reads + reg_writes; }
};

AccessStats count_accesses(const AllocationProblem& p, const Assignment& a);

struct EnergyBreakdown {
  double memory = 0;
  double register_file = 0;
  double total() const { return memory + register_file; }
};

/// Prices the events of \p a under \p model (the problem's voltage-scaled
/// parameters are used; \p model picks eq. (1) or eq. (2) for the
/// register file).
EnergyBreakdown evaluate_energy(const AllocationProblem& p,
                                const Assignment& a,
                                energy::RegisterModel model);

/// Peak number of simultaneously memory-resident variables.
int memory_locations(const AllocationProblem& p, const Assignment& a);

}  // namespace lera::alloc
