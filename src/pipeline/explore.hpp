#pragma once

#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"

/// \file explore.hpp
/// Schedule/allocation co-exploration. The methodology (§5) schedules
/// first and allocates second, but the schedule decides the lifetime
/// density the allocator must cover — so the natural design loop tries
/// several schedules and keeps the one whose *allocation* is cheapest.
/// Candidates: resource-constrained list schedules over a small
/// resource sweep plus force-directed schedules at increasing latency
/// slack.
///
/// Like pipeline.hpp, this is now a compatibility layer over
/// engine/engine.hpp: explore_schedules is a deprecated-but-working
/// wrapper around engine::Engine::explore, which evaluates the
/// candidates in parallel with identical results.

namespace lera::pipeline {

using ScheduleCandidate = engine::ScheduleCandidate;
using ExploreResult = engine::ExploreResult;

/// Deprecated alias of engine::EngineOptions; the exploration knobs
/// (deadline, resource_options, slack_options) live there now with
/// unchanged names and defaults.
using ExploreOptions = engine::EngineOptions;

/// Deprecated: equivalent to engine::Engine(options).explore(bb).
ExploreResult explore_schedules(const ir::BasicBlock& bb,
                                const ExploreOptions& options = {});

struct RegisterFileSizing {
  int registers = 0;      ///< Chosen register-file size.
  double energy = 0;      ///< Storage energy at that size.
  double asymptote = 0;   ///< Energy with registers = peak density.
};

/// Sizes the register file: the smallest R whose optimal allocation is
/// within \p tolerance (fractional) of the all-registers asymptote.
/// Registers are area; this finds the knee of the energy/R curve.
RegisterFileSizing size_register_file(const alloc::AllocationProblem& base,
                                      double tolerance = 0.05);

}  // namespace lera::pipeline
