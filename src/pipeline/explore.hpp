#pragma once

#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"

/// \file explore.hpp
/// Schedule/allocation co-exploration. The methodology (§5) schedules
/// first and allocates second, but the schedule decides the lifetime
/// density the allocator must cover — so the natural design loop tries
/// several schedules and keeps the one whose *allocation* is cheapest.
/// Candidates: resource-constrained list schedules over a small
/// resource sweep plus force-directed schedules at increasing latency
/// slack.

namespace lera::pipeline {

struct ScheduleCandidate {
  std::string label;
  sched::Schedule schedule;
  int length = 0;
  int max_density = 0;
  double energy = 0;       ///< Storage energy of the optimal allocation.
  bool feasible = false;
};

struct ExploreOptions {
  int num_registers = 4;
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  alloc::AllocatorOptions alloc;
  /// Latest acceptable schedule length (0 = no deadline).
  int deadline = 0;
  /// Resource sweeps for the list scheduler.
  std::vector<sched::Resources> resource_options{{1, 1}, {2, 1}, {2, 2}};
  /// Extra latency slack levels for force-directed schedules.
  std::vector<int> slack_options{0, 2, 4};
};

struct ExploreResult {
  std::vector<ScheduleCandidate> candidates;  ///< All evaluated.
  int best = -1;  ///< Index of the cheapest feasible candidate (or -1).
};

/// Evaluates every candidate schedule of \p bb and returns them with the
/// cheapest-energy feasible one marked.
ExploreResult explore_schedules(const ir::BasicBlock& bb,
                                const ExploreOptions& options = {});

struct RegisterFileSizing {
  int registers = 0;      ///< Chosen register-file size.
  double energy = 0;      ///< Storage energy at that size.
  double asymptote = 0;   ///< Energy with registers = peak density.
};

/// Sizes the register file: the smallest R whose optimal allocation is
/// within \p tolerance (fractional) of the all-registers asymptote.
/// Registers are area; this finds the knee of the energy/R curve.
RegisterFileSizing size_register_file(const alloc::AllocationProblem& base,
                                      double tolerance = 0.05);

}  // namespace lera::pipeline
