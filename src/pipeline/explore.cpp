#include "pipeline/explore.hpp"

namespace lera::pipeline {

ExploreResult explore_schedules(const ir::BasicBlock& bb,
                                const ExploreOptions& options) {
  return engine::Engine(options).explore(bb);
}

RegisterFileSizing size_register_file(const alloc::AllocationProblem& base,
                                      double tolerance) {
  RegisterFileSizing out;
  alloc::AllocationProblem p = base;
  p.num_registers = p.max_density();
  const alloc::AllocationResult full = alloc::allocate(p);
  if (!full.feasible) return out;
  out.asymptote = full.energy(p);
  out.registers = p.num_registers;
  out.energy = out.asymptote;

  // Energy is monotone in R (more registers never hurt): binary search
  // for the knee.
  int lo = 0;
  int hi = p.max_density();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    p.num_registers = mid;
    const alloc::AllocationResult r = alloc::allocate(p);
    if (r.feasible &&
        r.energy(p) <= out.asymptote * (1.0 + tolerance) + 1e-12) {
      hi = mid;
      out.registers = mid;
      out.energy = r.energy(p);
    } else {
      lo = mid + 1;
    }
  }
  return out;
}

}  // namespace lera::pipeline
