#include "pipeline/explore.hpp"

#include <string>

#include "sched/force_directed.hpp"

namespace lera::pipeline {

namespace {

ScheduleCandidate evaluate(const ir::BasicBlock& bb, std::string label,
                           sched::Schedule schedule,
                           const ExploreOptions& options) {
  ScheduleCandidate c;
  c.label = std::move(label);
  c.length = schedule.length(bb);
  c.schedule = std::move(schedule);
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, c.schedule, options.num_registers, options.params, {},
      options.split);
  c.max_density = p.max_density();
  const alloc::AllocationResult r = alloc::allocate(p, options.alloc);
  if (r.feasible && (options.deadline == 0 || c.length <= options.deadline)) {
    c.feasible = true;
    c.energy = r.energy(p);
  }
  return c;
}

}  // namespace

ExploreResult explore_schedules(const ir::BasicBlock& bb,
                                const ExploreOptions& options) {
  ExploreResult out;

  for (const sched::Resources& res : options.resource_options) {
    out.candidates.push_back(evaluate(
        bb,
        "list " + std::to_string(res.alus) + "alu/" +
            std::to_string(res.muls) + "mul",
        sched::list_schedule(bb, res), options));
  }
  const int critical_path = sched::asap(bb).length(bb);
  for (int slack : options.slack_options) {
    out.candidates.push_back(evaluate(
        bb, "force-directed +" + std::to_string(slack),
        sched::force_directed_schedule(bb, critical_path + slack),
        options));
  }

  for (std::size_t i = 0; i < out.candidates.size(); ++i) {
    const ScheduleCandidate& c = out.candidates[i];
    if (!c.feasible) continue;
    if (out.best < 0 ||
        c.energy <
            out.candidates[static_cast<std::size_t>(out.best)].energy) {
      out.best = static_cast<int>(i);
    }
  }
  return out;
}

RegisterFileSizing size_register_file(const alloc::AllocationProblem& base,
                                      double tolerance) {
  RegisterFileSizing out;
  alloc::AllocationProblem p = base;
  p.num_registers = p.max_density();
  const alloc::AllocationResult full = alloc::allocate(p);
  if (!full.feasible) return out;
  out.asymptote = full.energy(p);
  out.registers = p.num_registers;
  out.energy = out.asymptote;

  // Energy is monotone in R (more registers never hurt): binary search
  // for the knee.
  int lo = 0;
  int hi = p.max_density();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    p.num_registers = mid;
    const alloc::AllocationResult r = alloc::allocate(p);
    if (r.feasible &&
        r.energy(p) <= out.asymptote * (1.0 + tolerance) + 1e-12) {
      hi = mid;
      out.registers = mid;
      out.energy = r.energy(p);
    } else {
      lo = mid + 1;
    }
  }
  return out;
}

}  // namespace lera::pipeline
