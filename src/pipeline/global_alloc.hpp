#pragma once

#include "pipeline/pipeline.hpp"

/// \file global_alloc.hpp
/// Allocation beyond basic blocks — the future direction §7 singles out
/// ("extending this problem to very large basic blocks or beyond basic
/// blocks should be a viable future research direction", enabled by the
/// polynomial-time flow).
///
/// Every task is scheduled and laid on one global timeline; a task
/// input named after an earlier task's live-out value *continues* that
/// value's lifetime instead of starting a new one. A single min-cost
/// flow then allocates the merged problem, so an intermediate result
/// can ride a register across the task boundary instead of being parked
/// in memory between blocks (which is what per-block allocation charges
/// for every live-out/live-in pair).

namespace lera::pipeline {

struct GlobalReport {
  bool feasible = false;
  std::string message;

  /// The merged cross-task problem (inspect lifetimes/segments freely).
  alloc::AllocationProblem problem;
  alloc::AllocationResult result;

  int total_steps = 0;      ///< Global timeline length.
  int stitched_values = 0;  ///< Lifetimes continued across a boundary.
};

/// Schedules the tasks back to back and solves one allocation over the
/// merged lifetimes. Cross-task switching activities default to 0.5
/// (per-task traces cannot price pairs that never coexist in one block).
GlobalReport global_allocate(const ir::TaskGraph& graph,
                             const PipelineOptions& options = {});

}  // namespace lera::pipeline
