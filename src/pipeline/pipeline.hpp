#pragma once

#include "engine/engine.hpp"

/// \file pipeline.hpp
/// The paper's complete methodology (§5) as one driver: "Each task is
/// placed in an ordered list, and detailed scheduling of computations
/// within each task is performed. Finally the minimum cost network flow
/// approach is applied to each basic block in each task ... The
/// lifetimes of data variables assigned to memory are then used to form
/// another network flow graph [for] an activity based energy model."
///
/// run_pipeline schedules every task, measures switching activities by
/// interpreting the block on random input traces, runs the simultaneous
/// allocator per basic block, re-packs the memory image, and aggregates
/// the storage-energy picture of the whole application.
///
/// This header is now a thin compatibility layer: the implementation
/// (and the option/report types) moved into engine/engine.hpp, where
/// the same solves run batched and in parallel. New code should
/// construct an engine::Engine once and call engine.run(graph);
/// run_pipeline stays as a deprecated-but-working alias for one
/// release. The two are bit-for-bit identical (see docs/API.md,
/// "Determinism").

namespace lera::pipeline {

/// Deprecated alias of engine::EngineOptions (the unified option core).
/// Every field PipelineOptions used to declare — resources,
/// num_registers, params, split, alloc, trace_samples, trace_seed,
/// relayout_memory, degrade_on_solver_failure — lives there now with
/// unchanged names and defaults. New engine capabilities (such as
/// audit_level / audit_ports, the independent per-solve auditor) are
/// available through this alias too.
using PipelineOptions = engine::EngineOptions;

using TaskReport = engine::TaskReport;
using PipelineReport = engine::PipelineReport;

/// Deprecated: equivalent to engine::Engine(options).run(graph).
PipelineReport run_pipeline(const ir::TaskGraph& graph,
                            const PipelineOptions& options = {});

}  // namespace lera::pipeline
