#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "ir/task_graph.hpp"
#include "sched/schedule.hpp"

/// \file pipeline.hpp
/// The paper's complete methodology (§5) as one driver: "Each task is
/// placed in an ordered list, and detailed scheduling of computations
/// within each task is performed. Finally the minimum cost network flow
/// approach is applied to each basic block in each task ... The
/// lifetimes of data variables assigned to memory are then used to form
/// another network flow graph [for] an activity based energy model."
///
/// run_pipeline schedules every task, measures switching activities by
/// interpreting the block on random input traces, runs the simultaneous
/// allocator per basic block, re-packs the memory image, and aggregates
/// the storage-energy picture of the whole application.

namespace lera::pipeline {

struct PipelineOptions {
  sched::Resources resources{2, 1};
  int num_registers = 4;
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  alloc::AllocatorOptions alloc;
  /// Input samples used to measure Hamming activities (0 = use the
  /// default 0.5 activities instead of simulating).
  int trace_samples = 32;
  std::uint64_t trace_seed = 1;
  /// Run the second-stage memory reallocation flow per task.
  bool relayout_memory = true;
  /// Degrade a task to the two-phase baseline when its flow solve fails
  /// (bad instance, budget, certification), instead of marking the whole
  /// run infeasible. Downgrades are counted in PipelineReport and
  /// flagged per task; heavy-traffic runs fail loud, not wrong.
  bool degrade_on_solver_failure = true;
};

struct TaskReport {
  ir::TaskId task = -1;
  std::string name;
  int schedule_length = 0;
  int max_density = 0;
  alloc::AllocationResult result;
  alloc::MemoryLayout layout;
  /// One-line robust-solve story for this task's allocation (solver
  /// used, fallbacks, certification verdict); see also
  /// result.solve_diagnostics for the full structure.
  std::string solve_summary;
};

struct PipelineReport {
  std::vector<TaskReport> tasks;
  bool all_feasible = true;

  /// Solver-robustness accounting across the run: tasks that fell back
  /// to the two-phase baseline, and solver fallbacks taken inside the
  /// flow solves that did succeed.
  int tasks_degraded = 0;
  int total_solver_fallbacks = 0;

  double total_static_energy = 0;
  double total_activity_energy = 0;
  int total_mem_accesses = 0;
  int total_reg_accesses = 0;
  /// Largest per-task memory image: the memory must be sized for the
  /// worst task (tasks execute in sequence, addresses are reused).
  int peak_mem_locations = 0;
  /// Largest port requirement over all tasks.
  int peak_mem_read_ports = 0;
  int peak_mem_write_ports = 0;
};

PipelineReport run_pipeline(const ir::TaskGraph& graph,
                            const PipelineOptions& options = {});

}  // namespace lera::pipeline
