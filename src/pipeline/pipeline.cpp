#include "pipeline/pipeline.hpp"

namespace lera::pipeline {

PipelineReport run_pipeline(const ir::TaskGraph& graph,
                            const PipelineOptions& options) {
  return engine::Engine(options).run(graph);
}

}  // namespace lera::pipeline
