#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <random>

namespace lera::pipeline {

namespace {

/// Uniform random 16-bit input rows for activity measurement (local
/// helper so the pipeline library does not depend on workloads).
std::vector<std::vector<std::int64_t>> make_trace(const ir::BasicBlock& bb,
                                                  int samples,
                                                  std::uint64_t seed) {
  int inputs = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == ir::Opcode::kInput) ++inputs;
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(-32768, 32767);
  std::vector<std::vector<std::int64_t>> rows(
      static_cast<std::size_t>(samples));
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(inputs));
    for (auto& v : row) v = dist(rng);
  }
  return rows;
}

}  // namespace

PipelineReport run_pipeline(const ir::TaskGraph& graph,
                            const PipelineOptions& options) {
  PipelineReport report;
  for (ir::TaskId t : graph.topological_order()) {
    const ir::Task& task = graph.task(t);

    TaskReport tr;
    tr.task = t;
    tr.name = task.name;

    const sched::Schedule schedule =
        sched::list_schedule(task.block, options.resources);
    tr.schedule_length = schedule.length(task.block);

    const auto trace =
        options.trace_samples > 0
            ? make_trace(task.block, options.trace_samples,
                         options.trace_seed + static_cast<std::uint64_t>(t))
            : std::vector<std::vector<std::int64_t>>{};
    const alloc::AllocationProblem p = alloc::make_problem_from_block(
        task.block, schedule, options.num_registers, options.params, trace,
        options.split);
    tr.max_density = p.max_density();

    alloc::AllocatorOptions alloc_options = options.alloc;
    alloc_options.fallback_to_baseline =
        alloc_options.fallback_to_baseline ||
        options.degrade_on_solver_failure;
    tr.result = alloc::allocate(p, alloc_options);
    tr.solve_summary = tr.result.solve_diagnostics.summary();
    if (tr.result.degraded) {
      ++report.tasks_degraded;
      tr.solve_summary += " [degraded to two-phase baseline]";
    }
    report.total_solver_fallbacks +=
        tr.result.solve_diagnostics.fallbacks_taken;
    if (!tr.result.feasible) {
      report.all_feasible = false;
      report.tasks.push_back(std::move(tr));
      continue;
    }

    if (options.relayout_memory) {
      tr.layout = alloc::optimize_memory_layout(p, tr.result.assignment,
                                                options.alloc.quantizer,
                                                options.alloc.solver);
    }

    report.total_static_energy += tr.result.static_energy.total();
    report.total_activity_energy += tr.result.activity_energy.total();
    report.total_mem_accesses += tr.result.stats.mem_accesses();
    report.total_reg_accesses += tr.result.stats.reg_accesses();
    report.peak_mem_locations =
        std::max(report.peak_mem_locations, tr.result.stats.mem_locations);
    report.peak_mem_read_ports = std::max(report.peak_mem_read_ports,
                                          tr.result.stats.mem_read_ports);
    report.peak_mem_write_ports = std::max(
        report.peak_mem_write_ports, tr.result.stats.mem_write_ports);
    report.tasks.push_back(std::move(tr));
  }
  return report;
}

}  // namespace lera::pipeline
