#include "pipeline/global_alloc.hpp"

#include <algorithm>
#include <map>

namespace lera::pipeline {

namespace {

/// Bookkeeping for a value that is live past the end of its task and
/// may be consumed (by name) in a later one.
struct Forward {
  std::size_t lifetime_index;
  int placeholder_read;  ///< The provisional "read after the block" time.
};

}  // namespace

GlobalReport global_allocate(const ir::TaskGraph& graph,
                             const PipelineOptions& options) {
  GlobalReport report;
  std::vector<lifetime::Lifetime> merged;
  std::map<std::string, Forward> live_forward;
  int offset = 0;
  int stitched = 0;

  for (ir::TaskId t : graph.topological_order()) {
    const ir::Task& task = graph.task(t);
    const sched::Schedule schedule =
        sched::list_schedule(task.block, options.resources);
    const int steps = schedule.length(task.block);
    const std::vector<lifetime::Lifetime> local =
        lifetime::analyze(task.block, schedule);

    for (const lifetime::Lifetime& lt : local) {
      const bool is_live_in = lt.write_time == 0;
      const auto forward = live_forward.find(lt.name);
      if (is_live_in && forward != live_forward.end()) {
        // Continue the earlier lifetime: its provisional end-of-block
        // read becomes this task's real reads.
        lifetime::Lifetime& producer = merged[forward->second.lifetime_index];
        producer.read_times.erase(
            std::remove(producer.read_times.begin(),
                        producer.read_times.end(),
                        forward->second.placeholder_read),
            producer.read_times.end());
        for (int r : lt.read_times) {
          producer.read_times.push_back(r + offset);
        }
        std::sort(producer.read_times.begin(), producer.read_times.end());
        producer.read_times.erase(
            std::unique(producer.read_times.begin(),
                        producer.read_times.end()),
            producer.read_times.end());
        ++stitched;
        if (lt.live_out) {
          producer.live_out = true;
          live_forward[lt.name] =
              Forward{forward->second.lifetime_index,
                      offset + steps + 1};
        } else {
          producer.live_out = false;
          live_forward.erase(forward);
        }
        continue;
      }

      lifetime::Lifetime shifted = lt;
      shifted.write_time += offset;
      for (int& r : shifted.read_times) r += offset;
      merged.push_back(std::move(shifted));
      if (lt.live_out) {
        live_forward[lt.name] = Forward{merged.size() - 1,
                                        offset + steps + 1};
      }
    }
    offset += steps;
  }
  report.total_steps = offset;
  report.stitched_values = stitched;

  // Values still live at the end are read "after the application" —
  // clamp their provisional reads to the global end.
  for (auto& [name, fwd] : live_forward) {
    lifetime::Lifetime& producer = merged[fwd.lifetime_index];
    for (int& r : producer.read_times) {
      if (r == fwd.placeholder_read) r = offset + 1;
    }
    std::sort(producer.read_times.begin(), producer.read_times.end());
    producer.read_times.erase(std::unique(producer.read_times.begin(),
                                          producer.read_times.end()),
                              producer.read_times.end());
  }

  energy::ActivityMatrix activity(merged.size());
  report.problem =
      alloc::make_problem(std::move(merged), offset, options.num_registers,
                          options.params, std::move(activity),
                          options.split);

  report.result = alloc::allocate(report.problem, options.alloc);
  report.feasible = report.result.feasible;
  report.message = report.result.message;
  return report;
}

}  // namespace lera::pipeline
