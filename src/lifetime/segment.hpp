#pragma once

#include <vector>

#include "lifetime/lifetime.hpp"

/// \file segment.hpp
/// Split lifetimes (paper §5.2). A lifetime is cut at every interior
/// read time and — when the memory module runs slower than the datapath —
/// at every allowed memory-access time inside it. Each piece becomes a
/// *segment* w_i(v) -> r_i(v) of the network flow graph.

namespace lera::lifetime {

/// Restricted memory access times: access to the memory module is only
/// legal at steps t with (t - phase) mod period == 0. Boundary times
/// t <= 0 (live-in values already reside in memory) and t > num_steps
/// (live-out values are read later by another task) are always legal.
struct AccessModel {
  int period = 1;
  int phase = 0;

  bool allowed(int t, int num_steps) const {
    if (t <= 0 || t > num_steps) return true;
    return (t - phase) % period == 0;
  }
};

/// Why a segment starts or ends at a given time.
enum class CutKind {
  kDef,       ///< Segment starts where the variable is defined.
  kRead,      ///< Interior read: the variable lives on afterwards.
  kDeath,     ///< The variable's final read.
  kBoundary,  ///< Cut introduced at an allowed memory-access time.
};

/// One piece of a (possibly split) lifetime.
struct Segment {
  int var = -1;        ///< Index into the lifetime vector.
  int index = 0;       ///< Position among the variable's segments.
  int start = 0;       ///< w_i(v): step where the segment begins.
  int end = 0;         ///< r_i(v): step where the segment ends.
  CutKind start_kind = CutKind::kDef;
  CutKind end_kind = CutKind::kDeath;
  /// Paper §5.2: a segment that begins and/or ends between allowed
  /// memory-access times cannot be parked in memory, so its flow arc
  /// carries a lower bound of 1 (it must occupy a register).
  bool forced_register = false;
  /// Dual mechanism (§7 port constraints): a segment barred from the
  /// register file — its flow arc gets capacity 0, pinning it to
  /// memory. Mutually exclusive with forced_register.
  bool forbidden_register = false;
};

struct SplitOptions {
  AccessModel access;
  /// Additionally cut lifetimes at every allowed access time they span
  /// (the paper notes variables "could have also" been split there; more
  /// cuts only widen the solution space). Implied when period > 1.
  bool split_at_access_times = false;
  /// Explicit (var index, step) cuts, e.g. the paper's Figure 4c splits
  /// variable f by hand to trade a memory access for a storage location.
  std::vector<std::pair<int, int>> manual_cuts;
};

/// Builds the segments of every lifetime, ordered by (var, index).
std::vector<Segment> build_segments(const std::vector<Lifetime>& lifetimes,
                                    int num_steps,
                                    const SplitOptions& opts = {});

/// Segment count per variable (index aligned with \p lifetimes).
std::vector<int> segments_per_var(const std::vector<Segment>& segments,
                                  std::size_t num_vars);

}  // namespace lera::lifetime
