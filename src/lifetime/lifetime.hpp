#pragma once

#include <string>
#include <vector>

#include "ir/basic_block.hpp"
#include "sched/schedule.hpp"

/// \file lifetime.hpp
/// Data-variable lifetimes (Problem 1 of the paper): each value becomes
/// an interval from its write time to its last read time, possibly with
/// interior reads. Time is measured in control steps; *boundaries* sit
/// between steps: boundary b separates step b from step b+1, so a
/// variable written at step w and last read at step r occupies storage
/// at exactly the boundaries b with w <= b < r.

namespace lera::lifetime {

/// One data variable's lifetime.
struct Lifetime {
  ir::ValueId value = ir::kNoValue;
  std::string name;
  int width = 16;
  int write_time = 0;           ///< Step at which the value is produced.
  std::vector<int> read_times;  ///< Sorted, deduplicated, all > write_time.
  bool live_out = false;        ///< Last "read" is by a later task (x+1).

  int last_read() const { return read_times.back(); }
  /// True if the variable occupies storage at boundary \p b.
  bool crosses(int b) const { return write_time <= b && b < last_read(); }
};

struct LifetimeOptions {
  /// Constants are usually immediates; include them only when they are
  /// materialised like ordinary data.
  bool include_constants = false;
};

/// Extracts lifetimes from a scheduled block. Values without uses are
/// dead code and excluded. Reads by kOutput are recorded at step x+1.
std::vector<Lifetime> analyze(const ir::BasicBlock& bb,
                              const sched::Schedule& sched,
                              const LifetimeOptions& opts = {});

/// Density (number of lifetimes crossing) at each boundary 0..x.
std::vector<int> density_profile(const std::vector<Lifetime>& lifetimes,
                                 int num_steps);

/// Largest entry of the density profile (0 for an empty block).
int max_density(const std::vector<int>& profile);

/// profile[b] == max density?  (The paper's "regions of maximum lifetime
/// density" are the maximal runs of true entries.)
std::vector<bool> max_density_boundaries(const std::vector<int>& profile);

}  // namespace lera::lifetime
