#include "lifetime/lifetime.hpp"

#include <algorithm>

namespace lera::lifetime {

std::vector<Lifetime> analyze(const ir::BasicBlock& bb,
                              const sched::Schedule& sched,
                              const LifetimeOptions& opts) {
  const int x = sched.length(bb);
  std::vector<Lifetime> out;
  for (const ir::Value& v : bb.values()) {
    if (v.uses.empty()) continue;  // Dead value: never stored.
    const ir::Opcode def_opcode = bb.op(v.def).opcode;
    if (def_opcode == ir::Opcode::kConst && !opts.include_constants) continue;

    Lifetime lt;
    lt.value = v.id;
    lt.name = v.name;
    lt.width = v.width;
    lt.write_time =
        ir::is_source(def_opcode) ? 0 : sched.finish(bb, v.def);
    for (ir::OpId use : v.uses) {
      if (bb.op(use).opcode == ir::Opcode::kOutput) {
        lt.live_out = true;
        lt.read_times.push_back(x + 1);
      } else {
        lt.read_times.push_back(sched.start(use));
      }
    }
    std::sort(lt.read_times.begin(), lt.read_times.end());
    lt.read_times.erase(
        std::unique(lt.read_times.begin(), lt.read_times.end()),
        lt.read_times.end());
    assert(lt.read_times.front() > lt.write_time &&
           "value read no later than it is written");
    out.push_back(std::move(lt));
  }
  return out;
}

std::vector<int> density_profile(const std::vector<Lifetime>& lifetimes,
                                 int num_steps) {
  std::vector<int> profile(static_cast<std::size_t>(num_steps) + 1, 0);
  for (const Lifetime& lt : lifetimes) {
    const int from = std::max(0, lt.write_time);
    const int to = std::min(num_steps, lt.last_read() - 1);
    for (int b = from; b <= to; ++b) {
      ++profile[static_cast<std::size_t>(b)];
    }
  }
  return profile;
}

int max_density(const std::vector<int>& profile) {
  if (profile.empty()) return 0;
  return *std::max_element(profile.begin(), profile.end());
}

std::vector<bool> max_density_boundaries(const std::vector<int>& profile) {
  const int peak = max_density(profile);
  std::vector<bool> is_max(profile.size());
  for (std::size_t b = 0; b < profile.size(); ++b) {
    is_max[b] = profile[b] == peak && peak > 0;
  }
  return is_max;
}

}  // namespace lera::lifetime
