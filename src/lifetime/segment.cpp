#include "lifetime/segment.hpp"

#include <algorithm>

namespace lera::lifetime {

std::vector<Segment> build_segments(const std::vector<Lifetime>& lifetimes,
                                    int num_steps, const SplitOptions& opts) {
  std::vector<Segment> segments;
  const bool cut_at_access =
      opts.split_at_access_times || opts.access.period > 1;

  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const Lifetime& lt = lifetimes[i];
    const int death = lt.last_read();

    // Collect interior cut times: reads first (they win over boundary
    // cuts at the same step), then allowed-access-time cuts.
    struct Cut {
      int time;
      CutKind kind;
    };
    std::vector<Cut> cuts;
    cuts.push_back({lt.write_time, CutKind::kDef});
    for (std::size_t r = 0; r + 1 < lt.read_times.size(); ++r) {
      cuts.push_back({lt.read_times[r], CutKind::kRead});
    }
    auto has_cut_at = [&](int t) {
      return std::any_of(cuts.begin(), cuts.end(),
                         [t](const Cut& c) { return c.time == t; });
    };
    if (cut_at_access && opts.access.period > 0) {
      for (int t = lt.write_time + 1; t < death; ++t) {
        if (opts.access.allowed(t, num_steps) && !has_cut_at(t)) {
          cuts.push_back({t, CutKind::kBoundary});
        }
      }
    }
    for (const auto& [var, t] : opts.manual_cuts) {
      if (var == static_cast<int>(i) && t > lt.write_time && t < death &&
          !has_cut_at(t)) {
        cuts.push_back({t, CutKind::kBoundary});
      }
    }
    std::sort(cuts.begin(), cuts.end(),
              [](const Cut& a, const Cut& b) { return a.time < b.time; });

    for (std::size_t c = 0; c < cuts.size(); ++c) {
      Segment seg;
      seg.var = static_cast<int>(i);
      seg.index = static_cast<int>(c);
      seg.start = cuts[c].time;
      seg.start_kind = cuts[c].kind;
      if (c + 1 < cuts.size()) {
        seg.end = cuts[c + 1].time;
        seg.end_kind = cuts[c + 1].kind;
      } else {
        seg.end = death;
        seg.end_kind = CutKind::kDeath;
      }
      seg.forced_register =
          !opts.access.allowed(seg.start, num_steps) ||
          !opts.access.allowed(seg.end, num_steps);
      assert(seg.start < seg.end && "degenerate lifetime segment");
      segments.push_back(seg);
    }
  }
  return segments;
}

std::vector<int> segments_per_var(const std::vector<Segment>& segments,
                                  std::size_t num_vars) {
  std::vector<int> count(num_vars, 0);
  for (const Segment& s : segments) {
    ++count[static_cast<std::size_t>(s.var)];
  }
  return count;
}

}  // namespace lera::lifetime
