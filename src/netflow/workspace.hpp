#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netflow/membudget.hpp"
#include "netflow/residual.hpp"
#include "netflow/types.hpp"

/// \file workspace.hpp
/// Reusable scratch arena for the minimum-cost flow solvers.
///
/// A SolverWorkspace owns every allocation the hot solve path needs —
/// the residual network, the SSP distance/potential/parent arrays and
/// Dijkstra heap, and the network-simplex tree scratch — so a caller
/// that solves many instances (Engine batch loops, explore sweeps,
/// warm-start resolves) pays for vector growth once instead of per
/// solve. Passing a workspace never changes results, only allocation
/// behavior.
///
/// Ownership rules: a workspace may be reused across any number of
/// sequential solves but must never be shared by two solves running
/// concurrently — it is scratch memory, not shared state. The Engine
/// keeps a bank of workspaces and leases one per in-flight solve.

namespace lera::netflow {

namespace detail {

/// Capacity (not size) of a vector in bytes — what the arena actually
/// holds onto between solves.
template <typename T>
std::int64_t vec_bytes(const std::vector<T>& v) {
  return static_cast<std::int64_t>(v.capacity() * sizeof(T));
}

}  // namespace detail

/// Monotonic performance counters accumulated by the solvers that run
/// through a workspace. Aggregatable: add() folds one counter set into
/// another (Engine-wide totals), delta_since() isolates a single solve.
struct PerfCounters {
  std::int64_t solves = 0;            ///< Solver runs through this arena.
  std::int64_t augmentations = 0;     ///< SSP augmenting paths applied.
  std::int64_t dijkstra_settles = 0;  ///< Nodes permanently labeled.
  std::int64_t heap_pushes = 0;       ///< Dijkstra heap insertions.
  std::int64_t heap_pops = 0;         ///< Dijkstra heap pop-mins.
  std::int64_t simplex_pivots = 0;    ///< Network-simplex basis changes.
  std::int64_t cs_phases = 0;         ///< Cost-scaling epsilon phases run.
  std::int64_t cs_pushes = 0;         ///< Cost-scaling push operations.
  std::int64_t cs_relabels = 0;       ///< Cost-scaling relabel operations.
  std::int64_t price_refinements = 0;  ///< Phases settled by price
                                       ///< refinement (no refine() needed).
  std::int64_t auto_selections = 0;  ///< SolverKind::kAuto resolutions.
  std::int64_t workspace_reuse_hits = 0;  ///< Solves on a pre-warmed arena.
  std::int64_t warm_start_hits = 0;    ///< Resolves served from a prior flow.
  std::int64_t warm_start_misses = 0;  ///< Warm attempts that fell to cold.
  std::int64_t warm_store_rejects = 0;  ///< Optimal answers the warm cache
                                        ///< refused to record (see
                                        ///< WarmStoreOutcome).
  std::int64_t cache_hits = 0;       ///< Allocation-cache serves (engine).
  std::int64_t cache_misses = 0;     ///< Allocation-cache lookups that solved.
  std::int64_t cache_evictions = 0;  ///< Allocation-cache entries evicted.
  std::int64_t cache_audit_samples = 0;  ///< Sampled hit re-audits run.
  std::int64_t cache_bytes = 0;  ///< Bytes the allocation cache holds
                                 ///< (snapshot, merged with max like a
                                 ///< high-water mark on add()).
  std::int64_t validate_ns = 0;  ///< Instance validation wall time.
  std::int64_t solve_ns = 0;     ///< Solver-proper wall time.
  std::int64_t certify_ns = 0;   ///< Certification wall time.
  std::int64_t mem_charged_bytes = 0;  ///< Bytes charged to memory budgets
                                       ///< (cumulative across solves).
  std::int64_t mem_denials = 0;  ///< Solve attempts refused by a budget.
  std::int64_t mem_peak_bytes = 0;  ///< High-water budget bytes observed
                                    ///< (merged with max, not summed).

  void reset() { *this = PerfCounters{}; }

  void add(const PerfCounters& o) {
    solves += o.solves;
    augmentations += o.augmentations;
    dijkstra_settles += o.dijkstra_settles;
    heap_pushes += o.heap_pushes;
    heap_pops += o.heap_pops;
    simplex_pivots += o.simplex_pivots;
    cs_phases += o.cs_phases;
    cs_pushes += o.cs_pushes;
    cs_relabels += o.cs_relabels;
    price_refinements += o.price_refinements;
    auto_selections += o.auto_selections;
    workspace_reuse_hits += o.workspace_reuse_hits;
    warm_start_hits += o.warm_start_hits;
    warm_start_misses += o.warm_start_misses;
    warm_store_rejects += o.warm_store_rejects;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    cache_audit_samples += o.cache_audit_samples;
    cache_bytes = cache_bytes > o.cache_bytes ? cache_bytes : o.cache_bytes;
    validate_ns += o.validate_ns;
    solve_ns += o.solve_ns;
    certify_ns += o.certify_ns;
    mem_charged_bytes += o.mem_charged_bytes;
    mem_denials += o.mem_denials;
    mem_peak_bytes = mem_peak_bytes > o.mem_peak_bytes ? mem_peak_bytes
                                                       : o.mem_peak_bytes;
  }

  /// Counter values accumulated since \p base (field-wise this - base).
  PerfCounters delta_since(const PerfCounters& base) const {
    PerfCounters d;
    d.solves = solves - base.solves;
    d.augmentations = augmentations - base.augmentations;
    d.dijkstra_settles = dijkstra_settles - base.dijkstra_settles;
    d.heap_pushes = heap_pushes - base.heap_pushes;
    d.heap_pops = heap_pops - base.heap_pops;
    d.simplex_pivots = simplex_pivots - base.simplex_pivots;
    d.cs_phases = cs_phases - base.cs_phases;
    d.cs_pushes = cs_pushes - base.cs_pushes;
    d.cs_relabels = cs_relabels - base.cs_relabels;
    d.price_refinements = price_refinements - base.price_refinements;
    d.auto_selections = auto_selections - base.auto_selections;
    d.workspace_reuse_hits = workspace_reuse_hits - base.workspace_reuse_hits;
    d.warm_start_hits = warm_start_hits - base.warm_start_hits;
    d.warm_start_misses = warm_start_misses - base.warm_start_misses;
    d.warm_store_rejects = warm_store_rejects - base.warm_store_rejects;
    d.cache_hits = cache_hits - base.cache_hits;
    d.cache_misses = cache_misses - base.cache_misses;
    d.cache_evictions = cache_evictions - base.cache_evictions;
    d.cache_audit_samples = cache_audit_samples - base.cache_audit_samples;
    // Like mem_peak_bytes, a snapshot: carry the current value.
    d.cache_bytes = cache_bytes;
    d.validate_ns = validate_ns - base.validate_ns;
    d.solve_ns = solve_ns - base.solve_ns;
    d.certify_ns = certify_ns - base.certify_ns;
    d.mem_charged_bytes = mem_charged_bytes - base.mem_charged_bytes;
    d.mem_denials = mem_denials - base.mem_denials;
    // A high-water mark has no meaningful delta; carry the current one.
    d.mem_peak_bytes = mem_peak_bytes;
    return d;
  }

  /// One-line key=value rendering for logs and --perf output.
  std::string summary() const {
    std::string out;
    const auto field = [&out](const char* key, std::int64_t value) {
      if (!out.empty()) out += ' ';
      out += key;
      out += '=';
      out += std::to_string(value);
    };
    field("solves", solves);
    field("augmentations", augmentations);
    field("settles", dijkstra_settles);
    field("heap_pushes", heap_pushes);
    field("heap_pops", heap_pops);
    field("pivots", simplex_pivots);
    field("cs_phases", cs_phases);
    field("cs_pushes", cs_pushes);
    field("cs_relabels", cs_relabels);
    field("price_refinements", price_refinements);
    field("auto_selections", auto_selections);
    field("workspace_reuse", workspace_reuse_hits);
    field("warm_hits", warm_start_hits);
    field("warm_misses", warm_start_misses);
    field("warm_store_rejects", warm_store_rejects);
    field("cache_hits", cache_hits);
    field("cache_misses", cache_misses);
    field("cache_evictions", cache_evictions);
    field("cache_audit_samples", cache_audit_samples);
    field("cache_bytes", cache_bytes);
    field("validate_ns", validate_ns);
    field("solve_ns", solve_ns);
    field("certify_ns", certify_ns);
    field("mem_charged_bytes", mem_charged_bytes);
    field("mem_denials", mem_denials);
    field("mem_peak_bytes", mem_peak_bytes);
    return out;
  }
};

/// SSP scratch: distance/parent/potential arrays plus the lazy 4-ary
/// Dijkstra heap. Per-round state (dist, parent, heap membership) is
/// validity-stamped with a round counter, so starting a new Dijkstra is
/// one integer increment instead of three O(n) fills.
struct SspScratch {
  static constexpr std::int32_t kNotInHeap = -1;
  static constexpr std::int32_t kSettled = -2;

  /// Per-node Dijkstra state packed into one array so an edge
  /// relaxation touches a single cache line instead of four parallel
  /// vectors. Entry v is valid iff its round == current_round.
  /// heap_pos only distinguishes kSettled from kNotInHeap — the heap is
  /// lazy, so exact positions are never tracked.
  struct NodeState {
    Cost dist;
    std::int32_t parent_edge;
    std::int32_t heap_pos;
    std::uint32_t round;
  };
  std::vector<NodeState> node;
  std::vector<Cost> pi;
  std::vector<Flow> excess;
  /// The key is embedded in the entry so sift comparisons stay inside
  /// the heap array instead of chasing dist[] cache lines.
  struct HeapEntry {
    Cost dist;
    NodeId node;
  };
  std::vector<HeapEntry> heap;
  /// Deficit nodes settled by the current Dijkstra round, in settle
  /// order; the drain augments to each of them from one forest.
  std::vector<NodeId> sinks;
  std::uint32_t current_round = 0;
  // initial_potentials() scratch.
  std::vector<int> indegree;
  std::vector<NodeId> order;

  /// Sizes the stamped arrays for an n-node instance.
  void prepare(NodeId n) {
    const auto un = static_cast<std::size_t>(n);
    detail::alloc_tick(static_cast<std::int64_t>(un * sizeof(NodeState)));
    if (node.size() < un) {
      node.resize(un, NodeState{0, -1, kNotInHeap, 0});
    }
    heap.clear();
  }

  /// Bytes this scratch currently retains.
  std::int64_t footprint_bytes() const {
    return detail::vec_bytes(node) + detail::vec_bytes(pi) +
           detail::vec_bytes(excess) + detail::vec_bytes(heap) +
           detail::vec_bytes(sinks) + detail::vec_bytes(indegree) +
           detail::vec_bytes(order);
  }

  /// Starts a fresh Dijkstra round, invalidating all stamped entries.
  void new_round() {
    if (++current_round == 0) {
      // Counter wrapped (after 2^32 rounds): hard-reset the stamps once.
      for (NodeState& st : node) st.round = 0;
      current_round = 1;
    }
    heap.clear();
  }

  bool stamped(NodeId v) const {
    return node[static_cast<std::size_t>(v)].round == current_round;
  }
  void stamp(NodeId v) {
    node[static_cast<std::size_t>(v)].round = current_round;
  }
};

/// Network-simplex scratch: SoA arc arrays, spanning-tree arrays, and
/// the pivot-cycle / child-list buffers that used to be allocated per
/// pivot. The child lists are doubly linked (child_prev enables O(1)
/// unlink) because they are maintained incrementally across pivots: a
/// basis exchange re-parents only the nodes on the reversed path, and
/// the potential update then walks just the re-hung subtree.
struct SimplexScratch {
  std::vector<NodeId> tail;
  std::vector<NodeId> head;
  std::vector<Flow> cap;
  std::vector<Cost> cost;
  std::vector<Flow> flow;
  std::vector<signed char> state;
  std::vector<NodeId> parent;
  std::vector<ArcId> pred_arc;
  std::vector<NodeId> depth;
  std::vector<Cost> pi;
  // Incrementally maintained intrusive child lists + DFS stack.
  std::vector<NodeId> child_first;
  std::vector<NodeId> child_next;
  std::vector<NodeId> child_prev;
  std::vector<NodeId> stack;
  // pivot(): cycle steps (arc id, direction flag, subtree-side node).
  std::vector<ArcId> cycle_arc;
  std::vector<signed char> cycle_dir;
  std::vector<NodeId> cycle_below;
  // Candidate-list pivot rule: violating arcs collected by the major
  // block scan, consumed by minor iterations.
  std::vector<ArcId> candidates;

  /// Bytes this scratch currently retains.
  std::int64_t footprint_bytes() const {
    return detail::vec_bytes(tail) + detail::vec_bytes(head) +
           detail::vec_bytes(cap) + detail::vec_bytes(cost) +
           detail::vec_bytes(flow) + detail::vec_bytes(state) +
           detail::vec_bytes(parent) + detail::vec_bytes(pred_arc) +
           detail::vec_bytes(depth) + detail::vec_bytes(pi) +
           detail::vec_bytes(child_first) + detail::vec_bytes(child_next) +
           detail::vec_bytes(child_prev) + detail::vec_bytes(stack) +
           detail::vec_bytes(cycle_arc) + detail::vec_bytes(cycle_dir) +
           detail::vec_bytes(cycle_below) + detail::vec_bytes(candidates);
  }
};

/// Cost-scaling scratch: scaled costs, potentials, excesses, the FIFO
/// active queue, the partial-augment path, and the price-refinement
/// label array. All sized lazily by prepare(); reuse across solves keeps
/// the refine loops allocation-free.
struct CostScalingScratch {
  std::vector<Cost> scaled_cost;   ///< Per residual edge: cost * alpha.
  std::vector<Cost> pi;            ///< Node potentials (scaled units).
  std::vector<Flow> excess;        ///< Node imbalances during refine.
  std::vector<std::int32_t> current;  ///< Current-arc cursor per node.
  std::vector<NodeId> active;      ///< FIFO queue of excess nodes.
  std::vector<char> in_queue;      ///< Queue membership flags.
  std::vector<std::int32_t> path;  ///< Partial-augment edge stack.
  std::vector<Cost> refine_dist;   ///< Price-refinement labels.

  void prepare(NodeId n, std::int64_t num_edges) {
    const auto un = static_cast<std::size_t>(n);
    detail::alloc_tick(
        static_cast<std::int64_t>(num_edges) *
            static_cast<std::int64_t>(sizeof(Cost)) +
        static_cast<std::int64_t>(un) * (2 * sizeof(Cost) + sizeof(Flow) +
                                         sizeof(std::int32_t) + 1));
    scaled_cost.resize(static_cast<std::size_t>(num_edges));
    pi.assign(un, 0);
    excess.assign(un, 0);
    current.assign(un, 0);
    in_queue.assign(un, 0);
    refine_dist.assign(un, 0);
    active.clear();
    path.clear();
  }

  /// Bytes this scratch currently retains.
  std::int64_t footprint_bytes() const {
    return detail::vec_bytes(scaled_cost) + detail::vec_bytes(pi) +
           detail::vec_bytes(excess) + detail::vec_bytes(current) +
           detail::vec_bytes(active) + detail::vec_bytes(in_queue) +
           detail::vec_bytes(path) + detail::vec_bytes(refine_dist);
  }
};

/// Cycle-canceling scratch: the Bellman-Ford distance/parent arrays and
/// the cycle buffer that used to be allocated per negative-cycle search.
struct CycleCancelScratch {
  std::vector<Cost> dist;
  std::vector<std::int32_t> parent;
  std::vector<std::int32_t> cycle;

  /// Bytes this scratch currently retains.
  std::int64_t footprint_bytes() const {
    return detail::vec_bytes(dist) + detail::vec_bytes(parent) +
           detail::vec_bytes(cycle);
  }
};

/// One arena per sequential solve stream. See file comment for the
/// ownership rules; treat the members as solver-internal.
struct SolverWorkspace {
  Residual residual;
  SspScratch ssp;
  SimplexScratch simplex;
  CostScalingScratch cost_scaling;
  CycleCancelScratch cycle_cancel;
  PerfCounters counters;
  /// True once any solve has run through this arena (used to count
  /// workspace_reuse_hits).
  bool used = false;

  /// Total bytes the arena currently retains across the residual and
  /// every backend's scratch — the measured side of the footprint
  /// estimator (membudget.hpp) and what the Engine's ContextBank
  /// charges for a pooled workspace.
  std::int64_t footprint_bytes() const {
    return residual.footprint_bytes() + ssp.footprint_bytes() +
           simplex.footprint_bytes() + cost_scaling.footprint_bytes() +
           cycle_cancel.footprint_bytes();
  }
};

}  // namespace lera::netflow
