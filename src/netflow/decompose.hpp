#pragma once

#include <vector>

#include "netflow/graph.hpp"

/// \file decompose.hpp
/// Flow decomposition: any feasible b-flow splits into at most m
/// source-to-sink paths and cycles, each carrying a positive amount.
/// The allocator reads its register chains straight off capacity-1
/// arcs, but general clients (and the tests that audit solver output)
/// use this decomposition.

namespace lera::netflow {

struct FlowComponent {
  std::vector<ArcId> arcs;  ///< In traversal order.
  Flow amount = 0;
  bool is_cycle = false;    ///< Cycle (returns to its first node) or a
                            ///< supply-to-demand path.
};

/// Decomposes \p flow (a feasible flow on \p g). The sum of components
/// reproduces the arc flows exactly; at most num_arcs components are
/// produced.
std::vector<FlowComponent> decompose_flow(const Graph& g,
                                          const std::vector<Flow>& flow);

}  // namespace lera::netflow
