#include <algorithm>
#include <queue>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/residual.hpp"

/// Successive-shortest-path minimum-cost flow.
///
/// Negative costs are handled in one of two ways. If the arc set has no
/// negative-cost directed cycle (always true for the DAG-shaped
/// allocation graphs), Bellman-Ford potentials make all reduced costs
/// non-negative up front, so only |b|/2-ish augmentations are needed.
/// Otherwise every negative arc is saturated first (turning its reverse
/// edge into a positive-cost one) at the price of one augmentation per
/// saturated unit. Each augmentation is a multi-source Dijkstra from the
/// excess nodes to the nearest deficit node, followed by the standard
/// potential update. With integral data every augmentation moves at
/// least one unit, guaranteeing termination and an integral optimum.

namespace lera::netflow::internal {

namespace {

struct QueueItem {
  Cost dist;
  NodeId node;
  bool operator>(const QueueItem& other) const { return dist > other.dist; }
};

/// Computes valid starting potentials (shortest distances from a virtual
/// source at distance 0 everywhere) so that all reduced costs start
/// non-negative. On a DAG this is a single topological-order pass; on a
/// cyclic graph it falls back to Bellman-Ford. Returns false if a
/// negative-cost cycle exists (no valid potentials).
bool initial_potentials(const Graph& g, std::vector<Cost>& pi) {
  const NodeId n = g.num_nodes();
  pi.assign(static_cast<std::size_t>(n), 0);

  // Kahn topological sort over arcs with positive capacity.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.arc(a).upper > 0) {
      ++indegree[static_cast<std::size_t>(g.arc(a).head)];
    }
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) order.push_back(v);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (ArcId a : g.out_arcs(order[i])) {
      if (g.arc(a).upper <= 0) continue;
      if (--indegree[static_cast<std::size_t>(g.arc(a).head)] == 0) {
        order.push_back(g.arc(a).head);
      }
    }
  }

  if (order.size() == static_cast<std::size_t>(n)) {
    // DAG: one relaxation pass in topological order is exact.
    for (NodeId v : order) {
      for (ArcId a : g.out_arcs(v)) {
        const Arc& arc = g.arc(a);
        if (arc.upper <= 0) continue;
        pi[static_cast<std::size_t>(arc.head)] =
            std::min(pi[static_cast<std::size_t>(arc.head)],
                     pi[static_cast<std::size_t>(v)] + arc.cost);
      }
    }
    return true;
  }

  // Cyclic graph: Bellman-Ford with negative-cycle detection.
  for (NodeId round = 0; round <= n; ++round) {
    bool changed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      if (arc.upper <= 0) continue;
      if (pi[static_cast<std::size_t>(arc.tail)] + arc.cost <
          pi[static_cast<std::size_t>(arc.head)]) {
        if (round == n) return false;
        pi[static_cast<std::size_t>(arc.head)] =
            pi[static_cast<std::size_t>(arc.tail)] + arc.cost;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return true;
}

}  // namespace

FlowSolution solve_ssp(const Graph& g, SolveGuard* guard) {
  if (g.total_supply() != 0) return {};

  Residual res(g);
  const NodeId n = g.num_nodes();
  std::vector<Flow> excess(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    excess[static_cast<std::size_t>(v)] = g.supply(v);
  }

  std::vector<Cost> pi(static_cast<std::size_t>(n), 0);
  if (g.has_negative_costs() && !initial_potentials(g, pi)) {
    // Negative cycle: saturate negative arcs instead; the resulting
    // imbalance joins the excesses and the reverse edges (now the only
    // residual direction of those arcs) have positive cost.
    std::fill(pi.begin(), pi.end(), 0);
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      if (arc.cost < 0 && arc.upper > 0) {
        res.push(2 * a, arc.upper);
        excess[static_cast<std::size_t>(arc.tail)] -= arc.upper;
        excess[static_cast<std::size_t>(arc.head)] += arc.upper;
      }
    }
  }
  std::vector<Cost> dist(static_cast<std::size_t>(n));
  std::vector<int> parent_edge(static_cast<std::size_t>(n));
  std::vector<char> settled(static_cast<std::size_t>(n));

  for (;;) {
    if (guard != nullptr && !guard->tick()) {
      return budget_exceeded(SolverKind::kSuccessiveShortestPaths);
    }
    // Collect remaining excess nodes.
    bool any_excess = false;
    for (NodeId v = 0; v < n; ++v) {
      if (excess[static_cast<std::size_t>(v)] > 0) {
        any_excess = true;
        break;
      }
    }
    if (!any_excess) break;

    // Multi-source Dijkstra over reduced costs.
    std::fill(dist.begin(), dist.end(), kInfCost);
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    std::fill(settled.begin(), settled.end(), 0);
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
    for (NodeId v = 0; v < n; ++v) {
      if (excess[static_cast<std::size_t>(v)] > 0) {
        dist[static_cast<std::size_t>(v)] = 0;
        pq.push({0, v});
      }
    }

    NodeId sink = kInvalidNode;
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (settled[static_cast<std::size_t>(u)]) continue;
      settled[static_cast<std::size_t>(u)] = 1;
      if (excess[static_cast<std::size_t>(u)] < 0) {
        sink = u;
        break;
      }
      for (int e : res.out(u)) {
        const auto& edge = res.edge(e);
        if (edge.cap <= 0) continue;
        const Cost rc = edge.cost + pi[static_cast<std::size_t>(u)] -
                        pi[static_cast<std::size_t>(edge.head)];
        assert(rc >= 0 && "reduced-cost invariant violated");
        const Cost nd = d + rc;
        if (nd < dist[static_cast<std::size_t>(edge.head)]) {
          dist[static_cast<std::size_t>(edge.head)] = nd;
          parent_edge[static_cast<std::size_t>(edge.head)] = e;
          pq.push({nd, edge.head});
        }
      }
    }

    if (sink == kInvalidNode) return {};  // Excess cannot reach a deficit.

    // Potential update keeps all residual reduced costs non-negative.
    const Cost dt = dist[static_cast<std::size_t>(sink)];
    for (NodeId v = 0; v < n; ++v) {
      pi[static_cast<std::size_t>(v)] +=
          std::min(dist[static_cast<std::size_t>(v)], dt);
    }

    // Trace the augmenting path and find the bottleneck.
    Flow delta = -excess[static_cast<std::size_t>(sink)];
    NodeId v = sink;
    while (parent_edge[static_cast<std::size_t>(v)] >= 0) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      delta = std::min(delta, res.edge(e).cap);
      v = res.tail(e);
    }
    delta = std::min(delta, excess[static_cast<std::size_t>(v)]);
    assert(delta > 0);

    excess[static_cast<std::size_t>(v)] -= delta;
    excess[static_cast<std::size_t>(sink)] += delta;
    v = sink;
    while (parent_edge[static_cast<std::size_t>(v)] >= 0) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      res.push(e, delta);
      v = res.tail(e);
    }
  }

  // All excesses are zero; with total supply zero all deficits are too.
  FlowSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.arc_flow = res.arc_flows();
  sol.cost = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
  }
  return sol;
}

}  // namespace lera::netflow::internal
