#include <algorithm>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/residual.hpp"
#include "netflow/workspace.hpp"

/// Successive-shortest-path minimum-cost flow.
///
/// Negative costs are handled in one of two ways. If the arc set has no
/// negative-cost directed cycle (always true for the DAG-shaped
/// allocation graphs), Bellman-Ford potentials make all reduced costs
/// non-negative up front, so only |b|/2-ish augmentations are needed.
/// Otherwise every negative arc is saturated first (turning its reverse
/// edge into a positive-cost one) at the price of one augmentation per
/// saturated unit. Each augmentation is a multi-source Dijkstra from the
/// excess nodes to the nearest deficit node, followed by the standard
/// potential update. With integral data every augmentation moves at
/// least one unit, guaranteeing termination and an integral optimum.
///
/// The Dijkstra runs on a 4-ary heap keyed by (distance, node id) so
/// the settle order — and therefore the solution picked among
/// equal-cost optima — is a deterministic function of the instance
/// alone: the key is a total order, so the pop sequence does not depend
/// on heap layout, and superseded entries are recognized and skipped at
/// pop time. Per-round node state is packed into one round-stamped
/// array in the workspace instead of refilled, and edges with no
/// residual capacity never reach the heap.

namespace lera::netflow::internal {

namespace {

using HeapEntry = SspScratch::HeapEntry;

/// (dist, node id) lexicographic order; the id tie-break pins the settle
/// order among equal distances. A total order means the pop sequence is
/// a function of the entry set alone, independent of heap layout. Ties
/// prefer the HIGHER node id: either direction is deterministic, but
/// deficit nodes sit late in the node numbering for the
/// allocation-shaped and generated instances, so breaking ties downward
/// reaches them measurably sooner (~15% fewer settles across seeds).
/// The reference solver in tests/test_netflow_csr.cpp mirrors this
/// order; changing one side alone breaks the equivalence suite.
inline bool heap_less(const HeapEntry& a, const HeapEntry& b) {
  return a.dist < b.dist || (a.dist == b.dist && a.node > b.node);
}

/// The heap is deliberately *lazy*: an improved node is re-pushed and
/// the outdated entry skipped at pop time (its dist no longer matches
/// the node state). Decrease-key was measured slower here — maintaining
/// heap positions costs a scattered write into the node-state array per
/// entry move, and with early termination most superseded entries are
/// never popped at all, so their cost is never paid.
inline void heap_sift_up(SspScratch& s, std::size_t i) {
  const HeapEntry v = s.heap[i];
  while (i > 0) {
    const std::size_t p = (i - 1) / 4;
    if (!heap_less(v, s.heap[p])) break;
    s.heap[i] = s.heap[p];
    i = p;
  }
  s.heap[i] = v;
}

inline void heap_sift_down(SspScratch& s, std::size_t i) {
  const HeapEntry v = s.heap[i];
  const std::size_t n = s.heap.size();
  for (;;) {
    std::size_t best = 4 * i + 1;
    if (best >= n) break;
    const std::size_t last = std::min(4 * i + 4, n - 1);
    for (std::size_t c = best + 1; c <= last; ++c) {
      if (heap_less(s.heap[c], s.heap[best])) best = c;
    }
    if (!heap_less(s.heap[best], v)) break;
    s.heap[i] = s.heap[best];
    i = best;
  }
  s.heap[i] = v;
}

inline void heap_push(SspScratch& s, Cost dist, NodeId v) {
  s.heap.push_back({dist, v});
  heap_sift_up(s, s.heap.size() - 1);
}

inline HeapEntry heap_pop_min(SspScratch& s) {
  const HeapEntry top = s.heap[0];
  const HeapEntry last = s.heap.back();
  s.heap.pop_back();
  if (!s.heap.empty()) {
    s.heap[0] = last;
    heap_sift_down(s, 0);
  }
  return top;
}

/// Computes valid starting potentials (shortest distances from a virtual
/// source at distance 0 everywhere) so that all reduced costs start
/// non-negative. On a DAG this is a single topological-order pass; on a
/// cyclic graph it falls back to Bellman-Ford. Returns false if a
/// negative-cost cycle exists (no valid potentials), or if the guard's
/// budget trips mid-pass — the caller's saturate-negative-arcs fallback
/// is cheap and the drain loop's first tick then reports the overrun,
/// so the cap holds even when Bellman-Ford (O(n*m)) dominates the run.
bool initial_potentials(const Graph& g, SolveGuard* guard, SspScratch& s) {
  const NodeId n = g.num_nodes();
  std::vector<Cost>& pi = s.pi;
  pi.assign(static_cast<std::size_t>(n), 0);

  // Kahn topological sort over arcs with positive capacity.
  s.indegree.assign(static_cast<std::size_t>(n), 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.arc(a).upper > 0) {
      ++s.indegree[static_cast<std::size_t>(g.arc(a).head)];
    }
  }
  std::vector<NodeId>& order = s.order;
  order.clear();
  order.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    if (s.indegree[static_cast<std::size_t>(v)] == 0) order.push_back(v);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (ArcId a : g.out_arcs(order[i])) {
      if (g.arc(a).upper <= 0) continue;
      if (--s.indegree[static_cast<std::size_t>(g.arc(a).head)] == 0) {
        order.push_back(g.arc(a).head);
      }
    }
  }

  if (order.size() == static_cast<std::size_t>(n)) {
    // DAG: one relaxation pass in topological order is exact.
    for (NodeId v : order) {
      for (ArcId a : g.out_arcs(v)) {
        const Arc& arc = g.arc(a);
        if (arc.upper <= 0) continue;
        pi[static_cast<std::size_t>(arc.head)] =
            std::min(pi[static_cast<std::size_t>(arc.head)],
                     pi[static_cast<std::size_t>(v)] + arc.cost);
      }
    }
    return true;
  }

  // Cyclic graph: Bellman-Ford with negative-cycle detection. Each
  // round is a full O(m) arc scan, so the budget is polled per round.
  for (NodeId round = 0; round <= n; ++round) {
    if (guard != nullptr && !guard->tick()) return false;
    bool changed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      if (arc.upper <= 0) continue;
      if (pi[static_cast<std::size_t>(arc.tail)] + arc.cost <
          pi[static_cast<std::size_t>(arc.head)]) {
        if (round == n) return false;
        pi[static_cast<std::size_t>(arc.head)] =
            pi[static_cast<std::size_t>(arc.tail)] + arc.cost;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return true;
}

}  // namespace

SolveStatus ssp_drain(Residual& res, SolveGuard* guard, SolverWorkspace& ws,
                      int max_sinks_per_round) {
  SspScratch& s = ws.ssp;
  PerfCounters& pc = ws.counters;
  const NodeId n = res.num_nodes();
  assert(max_sinks_per_round >= 1);

  for (;;) {
    if (guard != nullptr && !guard->tick()) {
      return SolveStatus::kBudgetExceeded;
    }
    bool any_excess = false;
    for (NodeId v = 0; v < n; ++v) {
      if (s.excess[static_cast<std::size_t>(v)] > 0) {
        any_excess = true;
        break;
      }
    }
    if (!any_excess) break;

    // Multi-source Dijkstra over reduced costs, sourced at every excess
    // node, stopping once the nearest max_sinks_per_round deficit nodes
    // are permanently labeled.
    s.new_round();
    for (NodeId v = 0; v < n; ++v) {
      if (s.excess[static_cast<std::size_t>(v)] > 0) {
        SspScratch::NodeState& nv = s.node[static_cast<std::size_t>(v)];
        nv.round = s.current_round;
        nv.dist = 0;
        nv.parent_edge = -1;
        nv.heap_pos = SspScratch::kNotInHeap;
        heap_push(s, 0, v);
        ++pc.heap_pushes;
      }
    }

    s.sinks.clear();
    Cost dt = 0;  // Distance of the last node settled this round.
    while (!s.heap.empty()) {
      const HeapEntry top = heap_pop_min(s);
      ++pc.heap_pops;
      const NodeId u = top.node;
      SspScratch::NodeState& nu = s.node[static_cast<std::size_t>(u)];
      if (nu.heap_pos == SspScratch::kSettled || top.dist != nu.dist) {
        continue;  // Superseded by a later improvement, or already done.
      }
      nu.heap_pos = SspScratch::kSettled;
      ++pc.dijkstra_settles;
      dt = nu.dist;
      if (s.excess[static_cast<std::size_t>(u)] < 0) {
        s.sinks.push_back(u);
        if (static_cast<int>(s.sinks.size()) >= max_sinks_per_round) break;
        // Fall through: a shortest path may run *through* this deficit,
        // so its edges must relax or later settles would be mislabeled.
      }
      const Cost du = nu.dist;
      const Cost pu = s.pi[static_cast<std::size_t>(u)];
      for (int e : res.out(u)) {
        const auto& edge = res.edge(e);
        if (edge.cap <= 0) continue;
        const Cost rc =
            edge.cost + pu - s.pi[static_cast<std::size_t>(edge.head)];
        assert(rc >= 0 && "reduced-cost invariant violated");
        const Cost nd = du + rc;
        SspScratch::NodeState& nh =
            s.node[static_cast<std::size_t>(edge.head)];
        if (nh.round != s.current_round) {
          nh.round = s.current_round;
          nh.dist = nd;
          nh.parent_edge = e;
          nh.heap_pos = SspScratch::kNotInHeap;
          heap_push(s, nd, edge.head);
          ++pc.heap_pushes;
        } else if (nd < nh.dist && nh.heap_pos != SspScratch::kSettled) {
          nh.dist = nd;
          nh.parent_edge = e;
          heap_push(s, nd, edge.head);
          ++pc.heap_pushes;
        }
      }
    }

    if (s.sinks.empty()) {
      return SolveStatus::kInfeasible;  // Excess cannot reach a deficit.
    }

    // Potential update keeps all residual reduced costs non-negative.
    // Settled nodes carry exact dist <= dt, unsettled stamped nodes a
    // tentative dist >= dt, and unreached nodes move by the full dt, so
    // every residual edge's reduced cost stays >= 0 after the shift.
    for (NodeId v = 0; v < n; ++v) {
      const SspScratch::NodeState& nv = s.node[static_cast<std::size_t>(v)];
      s.pi[static_cast<std::size_t>(v)] +=
          nv.round == s.current_round ? std::min(nv.dist, dt) : dt;
    }

    // Drain each settled deficit from the shortest-path forest, in
    // settle order — at most one augmentation per sink, since the
    // parent path is fixed for the round and augmenting it zeroes one of
    // its limits. After the update every forest edge is tight (zero
    // reduced cost) and stays tight as flow moves, so each augmentation
    // is along a shortest path; a segment saturated (or a source
    // drained) by an earlier augmentation simply skips that sink. The
    // first sink always absorbs at least one unit, so every round
    // progresses.
    for (const NodeId sink : s.sinks) {
      Flow delta = -s.excess[static_cast<std::size_t>(sink)];
      if (delta <= 0) continue;
      NodeId v = sink;
      while (s.node[static_cast<std::size_t>(v)].parent_edge >= 0) {
        const int e = s.node[static_cast<std::size_t>(v)].parent_edge;
        delta = std::min(delta, res.edge(e).cap);
        v = res.tail(e);
      }
      delta = std::min(delta, s.excess[static_cast<std::size_t>(v)]);
      if (delta <= 0) continue;

      s.excess[static_cast<std::size_t>(v)] -= delta;
      s.excess[static_cast<std::size_t>(sink)] += delta;
      v = sink;
      while (s.node[static_cast<std::size_t>(v)].parent_edge >= 0) {
        const int e = s.node[static_cast<std::size_t>(v)].parent_edge;
        res.push(e, delta);
        v = res.tail(e);
      }
      ++pc.augmentations;
    }
  }

  return SolveStatus::kOptimal;
}

FlowSolution run_ssp(const Graph& g, SolveGuard* guard, SolverWorkspace& w) {
  if (g.total_supply() != 0) return {};

  ++w.counters.solves;

  Residual& res = w.residual;
  res.assign(g);
  const NodeId n = g.num_nodes();
  SspScratch& s = w.ssp;
  s.prepare(n);
  s.excess.assign(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    s.excess[static_cast<std::size_t>(v)] = g.supply(v);
  }

  s.pi.assign(static_cast<std::size_t>(n), 0);
  if (g.has_negative_costs() && !initial_potentials(g, guard, s)) {
    // Negative cycle: saturate negative arcs instead; the resulting
    // imbalance joins the excesses and the reverse edges (now the only
    // residual direction of those arcs) have positive cost.
    std::fill(s.pi.begin(), s.pi.end(), 0);
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      if (arc.cost < 0 && arc.upper > 0) {
        res.push(2 * a, arc.upper);
        s.excess[static_cast<std::size_t>(arc.tail)] -= arc.upper;
        s.excess[static_cast<std::size_t>(arc.head)] += arc.upper;
      }
    }
  }

  const SolveStatus status = ssp_drain(res, guard, w);
  if (status == SolveStatus::kBudgetExceeded) {
    return budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  if (status != SolveStatus::kOptimal) return {};

  // All excesses are zero; with total supply zero all deficits are too.
  FlowSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.arc_flow = res.arc_flows();
  sol.cost = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
  }
  return sol;
}

}  // namespace lera::netflow::internal
