#include "netflow/validate.hpp"

#include <sstream>
#include <vector>

namespace lera::netflow {

CheckResult check_feasible(const Graph& g, const std::vector<Flow>& flow) {
  if (flow.size() != static_cast<std::size_t>(g.num_arcs())) {
    return {false, "flow vector size mismatch"};
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const Flow x = flow[static_cast<std::size_t>(a)];
    if (x < arc.lower || x > arc.upper) {
      std::ostringstream os;
      os << "arc " << a << " flow " << x << " outside [" << arc.lower << ","
         << arc.upper << "]";
      return {false, os.str()};
    }
  }
  std::vector<Flow> balance(static_cast<std::size_t>(g.num_nodes()), 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    balance[static_cast<std::size_t>(arc.tail)] +=
        flow[static_cast<std::size_t>(a)];
    balance[static_cast<std::size_t>(arc.head)] -=
        flow[static_cast<std::size_t>(a)];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (balance[static_cast<std::size_t>(v)] != g.supply(v)) {
      std::ostringstream os;
      os << "node " << v << " (" << g.node_name(v) << ") imbalance: outflow-"
         << "inflow=" << balance[static_cast<std::size_t>(v)] << " supply="
         << g.supply(v);
      return {false, os.str()};
    }
  }
  return {};
}

Cost flow_cost(const Graph& g, const std::vector<Flow>& flow) {
  if (flow.size() != static_cast<std::size_t>(g.num_arcs())) return 0;
  Cost total = 0;
  if (checked_flow_cost(g, flow, total)) return total;
  // Saturate towards the sign of the first overflowing partial sum.
  Cost running = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    Cost term = 0;
    if (!checked_mul(g.arc(a).cost, flow[static_cast<std::size_t>(a)],
                     term) ||
        !checked_add(running, term, running)) {
      const bool negative =
          (g.arc(a).cost < 0) != (flow[static_cast<std::size_t>(a)] < 0);
      return negative ? -kInfCost : kInfCost;
    }
  }
  return saturate_cost(running);
}

bool checked_flow_cost(const Graph& g, const std::vector<Flow>& flow,
                       Cost& total) {
  if (flow.size() != static_cast<std::size_t>(g.num_arcs())) return false;
  Cost running = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    Cost term = 0;
    if (!checked_mul(g.arc(a).cost, flow[static_cast<std::size_t>(a)],
                     term) ||
        !checked_add(running, term, running)) {
      return false;
    }
  }
  total = running;
  return true;
}

bool certify_optimal(const Graph& g, const std::vector<Flow>& flow) {
  // Residual edges: forward where flow < upper, backward where flow > lower.
  struct REdge {
    NodeId tail;
    NodeId head;
    Cost cost;
  };
  std::vector<REdge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_arcs()) * 2);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const Flow x = flow[static_cast<std::size_t>(a)];
    if (x < arc.upper) edges.push_back({arc.tail, arc.head, arc.cost});
    if (x > arc.lower) edges.push_back({arc.head, arc.tail, -arc.cost});
  }

  // Bellman-Ford from a virtual source (dist 0 everywhere): a relaxation
  // in round n proves a negative residual cycle, i.e. non-optimality.
  const NodeId n = g.num_nodes();
  std::vector<Cost> dist(static_cast<std::size_t>(n), 0);
  for (NodeId round = 0; round <= n; ++round) {
    bool changed = false;
    for (const REdge& e : edges) {
      if (dist[static_cast<std::size_t>(e.tail)] + e.cost <
          dist[static_cast<std::size_t>(e.head)]) {
        dist[static_cast<std::size_t>(e.head)] =
            dist[static_cast<std::size_t>(e.tail)] + e.cost;
        changed = true;
        if (round == n) return false;
      }
    }
    if (!changed) return true;
  }
  return true;
}

}  // namespace lera::netflow
