#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netflow/robust.hpp"

/// \file fault_injection.hpp
/// Deterministic fault injector for the robust solve path. Plugged into
/// SolveOptions::post_solve_hook, it perturbs solver outputs (flip an
/// arc flow, corrupt the reported cost, truncate an augmenting path,
/// drop an arc's flow) so tests can prove that the certification layer
/// catches every such fault: a corrupted answer is either rejected and
/// corrected by a fallback solver, or surfaced as kUncertified — never
/// silently returned as optimal.

namespace lera::netflow {

/// The ways a solver output can be corrupted.
enum class FaultKind {
  kFlipArcFlow,           ///< Add a nonzero delta to one arc's flow.
  kDropArcFlow,           ///< Reset one flowing arc to its lower bound.
  kCorruptCost,           ///< Shift the reported total cost.
  kTruncateAugmentation,  ///< Remove one unit along a decomposed path.
};

std::string to_string(FaultKind kind);

struct FaultInjectorOptions {
  /// Corrupt at most this many solver attempts (the first N that claim
  /// optimality); later attempts pass through untouched, which lets the
  /// fallback chain recover. Use a large value to corrupt every attempt
  /// and force the kUncertified surfacing path.
  int max_faulty_attempts = 1;
};

/// Seed-deterministic corruption of FlowSolutions. One injector instance
/// is good for one solve_robust call (it counts the attempts it saw).
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed,
                         FaultInjectorOptions options = {});

  /// Adapter for SolveOptions::post_solve_hook. The injector must
  /// outlive the solve_robust call using the hook.
  SolveOptions::SolutionHook hook();

  /// Perturbs \p sol in place (only solutions claiming optimality, and
  /// only while under the max_faulty_attempts allowance).
  void perturb(const Graph& g, FlowSolution& sol);

  /// Number of faults actually applied.
  int faults_injected() const { return faults_injected_; }

  /// Human-readable description of each applied fault.
  const std::vector<std::string>& log() const { return log_; }

 private:
  std::uint64_t next();  ///< splitmix64 step; seed-deterministic.

  std::uint64_t state_;
  FaultInjectorOptions options_;
  int attempts_seen_ = 0;
  int faults_injected_ = 0;
  std::vector<std::string> log_;
};

/// Seeded out-of-memory failpoint. While an instance is alive it owns
/// the calling thread's allocation-tick seam (membudget.hpp): every
/// coarse solver allocation site (Residual::assign, scratch prepare(),
/// CSR builds, flow-graph construction) reports its upcoming allocation
/// here, and the failpoint throws std::bad_alloc at an exact, seeded
/// site — either the nth site reached or the first site that pushes the
/// cumulative announced bytes over a threshold. Tests sweep the site
/// index to prove every allocation-failure path unwinds into a typed
/// kMemoryExceeded verdict, leak-free and with budgets balanced.
///
/// Thread-local by construction: only the installing thread ever fails,
/// so a failpoint in one test cannot perturb concurrent solves.
/// Instances must not be nested on one thread.
class OomFailpoint {
 public:
  struct Options {
    /// Fail the nth alloc_tick site reached (1-based). 0 = off.
    std::int64_t fail_at_site = 0;
    /// Fail the first site that pushes cumulative announced bytes over
    /// this threshold. 0 = off.
    std::int64_t fail_above_bytes = 0;
    /// Fire at most this many times (sites past the quota pass).
    int max_failures = 1;
  };

  explicit OomFailpoint(Options options);
  ~OomFailpoint();

  OomFailpoint(const OomFailpoint&) = delete;
  OomFailpoint& operator=(const OomFailpoint&) = delete;

  /// Allocation sites observed so far (a dry run with both triggers off
  /// counts the sites a given solve visits; a sweep then targets each).
  std::int64_t sites_seen() const { return sites_seen_; }
  /// Cumulative bytes announced by the observed sites.
  std::int64_t bytes_seen() const { return bytes_seen_; }
  /// Number of std::bad_alloc throws delivered.
  int failures_injected() const { return failures_injected_; }

 private:
  static void tick(void* self, std::int64_t bytes);

  Options options_;
  std::int64_t sites_seen_ = 0;
  std::int64_t bytes_seen_ = 0;
  int failures_injected_ = 0;
};

}  // namespace lera::netflow
