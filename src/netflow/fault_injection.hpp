#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netflow/robust.hpp"

/// \file fault_injection.hpp
/// Deterministic fault injector for the robust solve path. Plugged into
/// SolveOptions::post_solve_hook, it perturbs solver outputs (flip an
/// arc flow, corrupt the reported cost, truncate an augmenting path,
/// drop an arc's flow) so tests can prove that the certification layer
/// catches every such fault: a corrupted answer is either rejected and
/// corrected by a fallback solver, or surfaced as kUncertified — never
/// silently returned as optimal.

namespace lera::netflow {

/// The ways a solver output can be corrupted.
enum class FaultKind {
  kFlipArcFlow,           ///< Add a nonzero delta to one arc's flow.
  kDropArcFlow,           ///< Reset one flowing arc to its lower bound.
  kCorruptCost,           ///< Shift the reported total cost.
  kTruncateAugmentation,  ///< Remove one unit along a decomposed path.
};

std::string to_string(FaultKind kind);

struct FaultInjectorOptions {
  /// Corrupt at most this many solver attempts (the first N that claim
  /// optimality); later attempts pass through untouched, which lets the
  /// fallback chain recover. Use a large value to corrupt every attempt
  /// and force the kUncertified surfacing path.
  int max_faulty_attempts = 1;
};

/// Seed-deterministic corruption of FlowSolutions. One injector instance
/// is good for one solve_robust call (it counts the attempts it saw).
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed,
                         FaultInjectorOptions options = {});

  /// Adapter for SolveOptions::post_solve_hook. The injector must
  /// outlive the solve_robust call using the hook.
  SolveOptions::SolutionHook hook();

  /// Perturbs \p sol in place (only solutions claiming optimality, and
  /// only while under the max_faulty_attempts allowance).
  void perturb(const Graph& g, FlowSolution& sol);

  /// Number of faults actually applied.
  int faults_injected() const { return faults_injected_; }

  /// Human-readable description of each applied fault.
  const std::vector<std::string>& log() const { return log_; }

 private:
  std::uint64_t next();  ///< splitmix64 step; seed-deterministic.

  std::uint64_t state_;
  FaultInjectorOptions options_;
  int attempts_seen_ = 0;
  int faults_injected_ = 0;
  std::vector<std::string> log_;
};

/// Seeded out-of-memory failpoint. While an instance is alive it owns
/// the calling thread's allocation-tick seam (membudget.hpp): every
/// coarse solver allocation site (Residual::assign, scratch prepare(),
/// CSR builds, flow-graph construction) reports its upcoming allocation
/// here, and the failpoint throws std::bad_alloc at an exact, seeded
/// site — either the nth site reached or the first site that pushes the
/// cumulative announced bytes over a threshold. Tests sweep the site
/// index to prove every allocation-failure path unwinds into a typed
/// kMemoryExceeded verdict, leak-free and with budgets balanced.
///
/// Thread-local by construction: only the installing thread ever fails,
/// so a failpoint in one test cannot perturb concurrent solves.
/// Instances must not be nested on one thread.
class OomFailpoint {
 public:
  struct Options {
    /// Fail the nth alloc_tick site reached (1-based). 0 = off.
    std::int64_t fail_at_site = 0;
    /// Fail the first site that pushes cumulative announced bytes over
    /// this threshold. 0 = off.
    std::int64_t fail_above_bytes = 0;
    /// Fire at most this many times (sites past the quota pass).
    int max_failures = 1;
  };

  explicit OomFailpoint(Options options);
  ~OomFailpoint();

  OomFailpoint(const OomFailpoint&) = delete;
  OomFailpoint& operator=(const OomFailpoint&) = delete;

  /// Allocation sites observed so far (a dry run with both triggers off
  /// counts the sites a given solve visits; a sweep then targets each).
  std::int64_t sites_seen() const { return sites_seen_; }
  /// Cumulative bytes announced by the observed sites.
  std::int64_t bytes_seen() const { return bytes_seen_; }
  /// Number of std::bad_alloc throws delivered.
  int failures_injected() const { return failures_injected_; }

 private:
  static void tick(void* self, std::int64_t bytes);

  Options options_;
  std::int64_t sites_seen_ = 0;
  std::int64_t bytes_seen_ = 0;
  int failures_injected_ = 0;
};

/// Seeded process-crash failpoint for the isolated-worker serving mode
/// (src/server/supervisor.hpp). Unlike FaultInjector and OomFailpoint,
/// which corrupt *answers* so the certification/budget layers can catch
/// them, this one kills the *process* — SIGSEGV, SIGKILL, abort(),
/// plain nonzero _exit(), or a hard hang — to prove the supervisor
/// contains the blast radius of one request to one worker: the daemon
/// survives, the request gets a typed worker_crashed verdict, and the
/// crashing payload lands in the crash corpus as a reproducer.
///
/// Two triggers, composable:
///  - crash_one_in: seeded (splitmix64) — roughly one in N requests
///    dies, with a seeded crash mode. Drives the chaos sweeps.
///  - marker: deterministic — every payload containing the marker
///    substring dies, always in the same mode for the same payload
///    bytes. Drives the poison-quarantine proofs (a byte-identical
///    resubmission must crash byte-identically).
class CrashFailpoint {
 public:
  /// How the process dies. kHang does not die at all — it spins until
  /// killed, exercising the supervisor's hang watchdog.
  enum class Mode { kSegv, kKill, kAbort, kExit, kHang };

  struct Options {
    std::uint64_t seed = 0;
    /// Seeded trigger: crash roughly one request in N (0 = off).
    int crash_one_in = 0;
    /// Deterministic trigger: crash every payload containing this
    /// substring (empty = off).
    std::string marker;
    /// Force this mode for marker hits instead of deriving one from
    /// the payload bytes (lets tests pin e.g. kHang).
    std::optional<Mode> marker_mode;
    /// Exit status used by Mode::kExit.
    int exit_code = 3;
  };

  CrashFailpoint() : CrashFailpoint(Options{}) {}
  explicit CrashFailpoint(Options options);

  bool armed() const {
    return options_.crash_one_in > 0 || !options_.marker.empty();
  }

  /// Decides the fate of one request. Advances the seeded state; the
  /// marker trigger is checked first and is stateless (deterministic
  /// per payload).
  std::optional<Mode> should_crash(std::string_view payload);

  /// Dies by \p mode (kHang spins forever). Restores default signal
  /// dispositions first so the death is the raw kernel-visible kind a
  /// real bug would produce. Never returns.
  [[noreturn]] static void crash(Mode mode, int exit_code = 3);

  static std::string to_string(Mode mode);

 private:
  std::uint64_t next();

  Options options_;
  std::uint64_t state_;
};

}  // namespace lera::netflow
