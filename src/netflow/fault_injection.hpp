#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netflow/robust.hpp"

/// \file fault_injection.hpp
/// Deterministic fault injector for the robust solve path. Plugged into
/// SolveOptions::post_solve_hook, it perturbs solver outputs (flip an
/// arc flow, corrupt the reported cost, truncate an augmenting path,
/// drop an arc's flow) so tests can prove that the certification layer
/// catches every such fault: a corrupted answer is either rejected and
/// corrected by a fallback solver, or surfaced as kUncertified — never
/// silently returned as optimal.

namespace lera::netflow {

/// The ways a solver output can be corrupted.
enum class FaultKind {
  kFlipArcFlow,           ///< Add a nonzero delta to one arc's flow.
  kDropArcFlow,           ///< Reset one flowing arc to its lower bound.
  kCorruptCost,           ///< Shift the reported total cost.
  kTruncateAugmentation,  ///< Remove one unit along a decomposed path.
};

std::string to_string(FaultKind kind);

struct FaultInjectorOptions {
  /// Corrupt at most this many solver attempts (the first N that claim
  /// optimality); later attempts pass through untouched, which lets the
  /// fallback chain recover. Use a large value to corrupt every attempt
  /// and force the kUncertified surfacing path.
  int max_faulty_attempts = 1;
};

/// Seed-deterministic corruption of FlowSolutions. One injector instance
/// is good for one solve_robust call (it counts the attempts it saw).
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed,
                         FaultInjectorOptions options = {});

  /// Adapter for SolveOptions::post_solve_hook. The injector must
  /// outlive the solve_robust call using the hook.
  SolveOptions::SolutionHook hook();

  /// Perturbs \p sol in place (only solutions claiming optimality, and
  /// only while under the max_faulty_attempts allowance).
  void perturb(const Graph& g, FlowSolution& sol);

  /// Number of faults actually applied.
  int faults_injected() const { return faults_injected_; }

  /// Human-readable description of each applied fault.
  const std::vector<std::string>& log() const { return log_; }

 private:
  std::uint64_t next();  ///< splitmix64 step; seed-deterministic.

  std::uint64_t state_;
  FaultInjectorOptions options_;
  int attempts_seen_ = 0;
  int faults_injected_ = 0;
  std::vector<std::string> log_;
};

}  // namespace lera::netflow
