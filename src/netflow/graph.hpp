#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "netflow/types.hpp"

/// \file graph.hpp
/// Directed graph with per-arc lower bound, capacity and cost, plus
/// per-node supply, describing a *b-flow* (transshipment) instance:
///
///   minimise   sum_a cost(a) * x(a)
///   subject to sum_{a out of v} x(a) - sum_{a into v} x(a) = supply(v)
///              lower(a) <= x(a) <= upper(a)
///
/// The classic s-t fixed-flow problem of the paper (flow value F = number
/// of registers R) is expressed by supply(s) = +F, supply(t) = -F.

namespace lera::netflow {

/// One directed arc. Plain data; invariants are enforced by Graph.
struct Arc {
  NodeId tail = kInvalidNode;  ///< Arc leaves this node.
  NodeId head = kInvalidNode;  ///< Arc enters this node.
  Flow lower = 0;              ///< Minimum flow on the arc.
  Flow upper = 0;              ///< Maximum flow on the arc.
  Cost cost = 0;               ///< Cost per unit of flow.
};

/// Mutable builder + storage for a b-flow instance.
///
/// Nodes are created with add_node() and optionally carry a debug name.
/// Arcs keep insertion order, so solution vectors index by ArcId.
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with \p n unnamed nodes.
  explicit Graph(NodeId n) { add_nodes(n); }

  /// Adds one node and returns its id.
  NodeId add_node(std::string name = {});

  /// Adds \p n unnamed nodes; returns the id of the first.
  NodeId add_nodes(NodeId n);

  /// Adds an arc tail->head with bounds [lower, upper] and unit cost.
  /// Requires 0 <= lower <= upper and valid endpoint ids.
  ArcId add_arc(NodeId tail, NodeId head, Flow upper, Cost cost,
                Flow lower = 0);

  NodeId num_nodes() const { return static_cast<NodeId>(supply_.size()); }
  ArcId num_arcs() const { return static_cast<ArcId>(arcs_.size()); }

  const Arc& arc(ArcId a) const {
    assert(a >= 0 && a < num_arcs());
    return arcs_[static_cast<std::size_t>(a)];
  }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Node supply: positive = source of flow, negative = sink.
  Flow supply(NodeId v) const {
    assert(v >= 0 && v < num_nodes());
    return supply_[static_cast<std::size_t>(v)];
  }
  void set_supply(NodeId v, Flow b) {
    assert(v >= 0 && v < num_nodes());
    supply_[static_cast<std::size_t>(v)] = b;
  }
  void add_supply(NodeId v, Flow b) {
    assert(v >= 0 && v < num_nodes());
    supply_[static_cast<std::size_t>(v)] += b;
  }

  /// Sum of all node supplies. A feasible instance requires 0.
  Flow total_supply() const;

  /// True if any arc has a nonzero lower bound.
  bool has_lower_bounds() const { return has_lower_bounds_; }

  /// True if any arc has a negative cost.
  bool has_negative_costs() const { return has_negative_costs_; }

  /// Debug name of a node ("" if unnamed).
  const std::string& node_name(NodeId v) const {
    assert(v >= 0 && v < num_nodes());
    return names_[static_cast<std::size_t>(v)];
  }
  void set_node_name(NodeId v, std::string name) {
    assert(v >= 0 && v < num_nodes());
    names_[static_cast<std::size_t>(v)] = std::move(name);
  }

  /// Outgoing arc ids of \p v (built lazily, invalidated by add_arc).
  const std::vector<ArcId>& out_arcs(NodeId v) const;
  /// Incoming arc ids of \p v (built lazily, invalidated by add_arc).
  const std::vector<ArcId>& in_arcs(NodeId v) const;

 private:
  void ensure_adjacency() const;

  std::vector<Arc> arcs_;
  std::vector<Flow> supply_;
  std::vector<std::string> names_;
  bool has_lower_bounds_ = false;
  bool has_negative_costs_ = false;

  // Lazily built adjacency; mutable because it is a cache.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<ArcId>> out_;
  mutable std::vector<std::vector<ArcId>> in_;
};

}  // namespace lera::netflow
