#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "netflow/types.hpp"

/// \file graph.hpp
/// Directed graph with per-arc lower bound, capacity and cost, plus
/// per-node supply, describing a *b-flow* (transshipment) instance:
///
///   minimise   sum_a cost(a) * x(a)
///   subject to sum_{a out of v} x(a) - sum_{a into v} x(a) = supply(v)
///              lower(a) <= x(a) <= upper(a)
///
/// The classic s-t fixed-flow problem of the paper (flow value F = number
/// of registers R) is expressed by supply(s) = +F, supply(t) = -F.

namespace lera::netflow {

/// One directed arc. Plain data; invariants are enforced by Graph.
struct Arc {
  NodeId tail = kInvalidNode;  ///< Arc leaves this node.
  NodeId head = kInvalidNode;  ///< Arc enters this node.
  Flow lower = 0;              ///< Minimum flow on the arc.
  Flow upper = 0;              ///< Maximum flow on the arc.
  Cost cost = 0;               ///< Cost per unit of flow.
};

/// Mutable builder + storage for a b-flow instance.
///
/// Nodes are created with add_node() and optionally carry a debug name;
/// names live in a lazily grown side table so graphs built on the hot
/// path (unnamed nodes) never touch string storage. Arcs keep insertion
/// order, so solution vectors index by ArcId.
///
/// Adjacency is a flat CSR (compressed sparse row) cache built lazily on
/// first query: `out_ids_[first_out_[v] .. first_out_[v+1])` holds the
/// outgoing arc ids of `v` in insertion order (same for `in_`). Arcs
/// added after a build land in small per-node overflow lists, so
/// interleaved build/query/mutate stays O(degree) per operation instead
/// of re-running the full O(V+E) rebuild; once enough arcs accumulate in
/// overflow the next query folds them back into the flat arrays.
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with \p n unnamed nodes.
  explicit Graph(NodeId n) { add_nodes(n); }

  /// Pre-sizes node storage for \p n total nodes.
  void reserve_nodes(NodeId n);
  /// Pre-sizes arc storage for \p m total arcs.
  void reserve_arcs(ArcId m);

  /// Adds one node and returns its id.
  NodeId add_node(std::string name = {});

  /// Adds \p n unnamed nodes; returns the id of the first.
  NodeId add_nodes(NodeId n);

  /// Adds an arc tail->head with bounds [lower, upper] and unit cost.
  /// Requires 0 <= lower <= upper and valid endpoint ids.
  ArcId add_arc(NodeId tail, NodeId head, Flow upper, Cost cost,
                Flow lower = 0);

  NodeId num_nodes() const { return static_cast<NodeId>(supply_.size()); }
  ArcId num_arcs() const { return static_cast<ArcId>(arcs_.size()); }

  const Arc& arc(ArcId a) const {
    assert(a >= 0 && a < num_arcs());
    return arcs_[static_cast<std::size_t>(a)];
  }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Re-prices an existing arc. Topology (and therefore the adjacency
  /// cache and any WarmStartCache match) is untouched. The
  /// has_negative_costs() flag only ever widens — it may stay
  /// conservatively true after the last negative arc is re-priced
  /// positive, which costs one potentials pass, never correctness.
  void set_arc_cost(ArcId a, Cost cost) {
    assert(a >= 0 && a < num_arcs());
    arcs_[static_cast<std::size_t>(a)].cost = cost;
    if (cost < 0) has_negative_costs_ = true;
  }

  /// Re-sizes an existing arc's capacity. Requires upper >= lower.
  void set_arc_capacity(ArcId a, Flow upper) {
    assert(a >= 0 && a < num_arcs());
    assert(upper >= arcs_[static_cast<std::size_t>(a)].lower);
    arcs_[static_cast<std::size_t>(a)].upper = upper;
  }

  /// Node supply: positive = source of flow, negative = sink.
  Flow supply(NodeId v) const {
    assert(v >= 0 && v < num_nodes());
    return supply_[static_cast<std::size_t>(v)];
  }
  void set_supply(NodeId v, Flow b) {
    assert(v >= 0 && v < num_nodes());
    supply_[static_cast<std::size_t>(v)] = b;
  }
  void add_supply(NodeId v, Flow b) {
    assert(v >= 0 && v < num_nodes());
    supply_[static_cast<std::size_t>(v)] += b;
  }

  /// Sum of all node supplies. A feasible instance requires 0.
  Flow total_supply() const;

  /// True if any arc has a nonzero lower bound.
  bool has_lower_bounds() const { return has_lower_bounds_; }

  /// True if any arc has a negative cost.
  bool has_negative_costs() const { return has_negative_costs_; }

  /// Debug name of a node ("" if unnamed).
  const std::string& node_name(NodeId v) const;
  void set_node_name(NodeId v, std::string name);

  /// Read-only view over a node's adjacency: the CSR segment plus any
  /// arcs appended since the last rebuild. Indexable and iterable; ids
  /// appear in arc insertion order.
  class ArcRange {
   public:
    ArcRange(const ArcId* seg, std::size_t seg_size,
             const std::vector<ArcId>* extra)
        : seg_(seg),
          seg_size_(seg_size),
          extra_(extra && !extra->empty() ? extra : nullptr) {}

    std::size_t size() const {
      return seg_size_ + (extra_ ? extra_->size() : 0);
    }
    bool empty() const { return size() == 0; }
    ArcId operator[](std::size_t i) const {
      assert(i < size());
      return i < seg_size_ ? seg_[i] : (*extra_)[i - seg_size_];
    }

    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = ArcId;
      using difference_type = std::ptrdiff_t;
      using pointer = const ArcId*;
      using reference = ArcId;

      iterator(const ArcRange* r, std::size_t i) : r_(r), i_(i) {}
      ArcId operator*() const { return (*r_)[i_]; }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++i_;
        return copy;
      }
      bool operator==(const iterator& o) const { return i_ == o.i_; }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const ArcRange* r_;
      std::size_t i_;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, size()); }

    std::vector<ArcId> to_vector() const {
      return std::vector<ArcId>(begin(), end());
    }

   private:
    const ArcId* seg_;
    std::size_t seg_size_;
    const std::vector<ArcId>* extra_;
  };

  /// Outgoing arc ids of \p v in insertion order (CSR cache, built
  /// lazily; stays valid across add_arc via per-node overflow lists).
  ArcRange out_arcs(NodeId v) const;
  /// Incoming arc ids of \p v in insertion order (see out_arcs).
  ArcRange in_arcs(NodeId v) const;

  /// Bytes the instance currently retains: arc/supply storage plus the
  /// CSR adjacency cache (overflow lists counted by capacity).
  std::int64_t footprint_bytes() const;

 private:
  void ensure_adjacency() const;
  void note_arc_added(ArcId a);

  std::vector<Arc> arcs_;
  std::vector<Flow> supply_;
  /// Debug-name side table, grown only when a node is actually named;
  /// shorter than num_nodes() when trailing nodes are unnamed.
  std::vector<std::string> names_;
  bool has_lower_bounds_ = false;
  bool has_negative_costs_ = false;

  // Lazily built CSR adjacency; mutable because it is a cache. Covers
  // arcs [0, csr_arcs_) over csr_nodes_ nodes; later arcs sit in the
  // overflow lists until the next fold-in.
  mutable bool adjacency_valid_ = false;
  mutable NodeId csr_nodes_ = 0;
  mutable ArcId csr_arcs_ = 0;
  mutable std::vector<ArcId> first_out_;
  mutable std::vector<ArcId> out_ids_;
  mutable std::vector<ArcId> first_in_;
  mutable std::vector<ArcId> in_ids_;
  mutable std::vector<std::vector<ArcId>> overflow_out_;
  mutable std::vector<std::vector<ArcId>> overflow_in_;
  mutable ArcId overflow_arcs_ = 0;
};

}  // namespace lera::netflow
