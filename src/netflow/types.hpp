#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental scalar types for the minimum-cost network-flow library.
///
/// Costs and capacities are 64-bit signed integers. The optimal-flow
/// integrality theorem (Nemhauser & Wolsey [17] in the paper) only holds
/// for integral data, so callers quantise real-valued energies with
/// lera::energy::quantize() before building a flow problem.

namespace lera::netflow {

/// Index of a node in a Graph. Dense, 0-based.
using NodeId = std::int32_t;

/// Index of an arc in a Graph. Dense, 0-based, in insertion order.
using ArcId = std::int32_t;

/// Arc cost per unit of flow (quantised energy).
using Cost = std::int64_t;

/// Arc capacity / flow amount.
using Flow = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel for "no arc".
inline constexpr ArcId kInvalidArc = -1;

/// A cost value safely summable a few times without overflow.
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

/// A capacity that behaves as "unbounded" for all practical instances.
inline constexpr Flow kInfFlow = std::numeric_limits<Flow>::max() / 4;

/// Overflow-checked a + b. Writes the sum into \p out and returns true,
/// or leaves \p out untouched and returns false when the exact result
/// does not fit in Cost. Used by the validators and the robust solve
/// path so that a pathological instance surfaces as a diagnostic rather
/// than as signed-overflow UB.
inline bool checked_add(Cost a, Cost b, Cost& out) {
  Cost r = 0;
  if (__builtin_add_overflow(a, b, &r)) return false;
  out = r;
  return true;
}

/// Overflow-checked a * b; same contract as checked_add.
inline bool checked_mul(Cost a, Cost b, Cost& out) {
  Cost r = 0;
  if (__builtin_mul_overflow(a, b, &r)) return false;
  out = r;
  return true;
}

/// Clamps \p v into the safely-summable range [-kInfCost, kInfCost].
inline Cost saturate_cost(Cost v) {
  if (v > kInfCost) return kInfCost;
  if (v < -kInfCost) return -kInfCost;
  return v;
}

}  // namespace lera::netflow
