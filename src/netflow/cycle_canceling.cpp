#include <algorithm>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/maxflow.hpp"
#include "netflow/membudget.hpp"
#include "netflow/residual.hpp"

/// Klein's cycle-canceling algorithm.
///
/// A feasible flow is established by Dinic max-flow from a super source
/// to a super sink (one arc per supply/deficit node); then Bellman-Ford
/// repeatedly locates a negative-cost residual cycle and saturates it.
/// With integral data every cancellation strictly decreases the cost, so
/// the method terminates at an optimum. Asymptotically slow, but that is
/// the point: it is an independent oracle for the faster solvers. The
/// Bellman-Ford distance/parent arrays and the cycle buffer live in the
/// workspace's CycleCancelScratch, so reuse makes the search loop
/// allocation-free.

namespace lera::netflow::internal {

namespace {

/// Finds any negative-cost cycle in the residual; fills \p s.cycle with
/// the edge ids of the cycle (in traversal order), or leaves it empty if
/// none exists.
void find_negative_cycle(const Residual& res, CycleCancelScratch& s) {
  const NodeId n = res.num_nodes();
  s.dist.assign(static_cast<std::size_t>(n), 0);
  s.parent.assign(static_cast<std::size_t>(n), -1);
  s.cycle.clear();

  NodeId updated = kInvalidNode;
  for (NodeId round = 0; round < n; ++round) {
    updated = kInvalidNode;
    for (int e = 0; e < res.num_edges(); ++e) {
      const auto& edge = res.edge(e);
      if (edge.cap <= 0) continue;
      const NodeId u = res.tail(e);
      if (s.dist[static_cast<std::size_t>(u)] + edge.cost <
          s.dist[static_cast<std::size_t>(edge.head)]) {
        s.dist[static_cast<std::size_t>(edge.head)] =
            s.dist[static_cast<std::size_t>(u)] + edge.cost;
        s.parent[static_cast<std::size_t>(edge.head)] = e;
        updated = edge.head;
      }
    }
    if (updated == kInvalidNode) return;
  }

  // A relaxation happened in round n: walk back n steps to reach a node
  // that is certainly on a negative cycle, then peel the cycle off.
  NodeId v = updated;
  for (NodeId i = 0; i < n; ++i) {
    v = res.tail(s.parent[static_cast<std::size_t>(v)]);
  }
  NodeId u = v;
  do {
    const int e = s.parent[static_cast<std::size_t>(u)];
    s.cycle.push_back(e);
    u = res.tail(e);
  } while (u != v);
  std::reverse(s.cycle.begin(), s.cycle.end());
}

}  // namespace

FlowSolution run_cycle_canceling(const Graph& g, SolveGuard* guard,
                                 SolverWorkspace& w) {
  if (g.total_supply() != 0) return {};

  ++w.counters.solves;

  // Announce the augmented instance's arc storage plus the Bellman-Ford
  // scratch to the budget/failpoint seam (the residual build and CSR
  // adjacency announce themselves at their own sites).
  detail::alloc_tick(
      static_cast<std::int64_t>(g.num_arcs() + g.num_nodes()) *
          static_cast<std::int64_t>(sizeof(Arc)) +
      static_cast<std::int64_t>(g.num_nodes() + 2) *
          static_cast<std::int64_t>(sizeof(Cost) + sizeof(std::int32_t)));

  // Augmented instance with a super source/sink absorbing the supplies.
  Graph aug;
  aug.add_nodes(g.num_nodes());
  aug.reserve_arcs(g.num_arcs() + g.num_nodes());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    aug.add_arc(arc.tail, arc.head, arc.upper, arc.cost);
  }
  const NodeId super_s = aug.add_node("super_s");
  const NodeId super_t = aug.add_node("super_t");
  Flow need = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Flow b = g.supply(v);
    if (b > 0) {
      aug.add_arc(super_s, v, b, 0);
      need += b;
    } else if (b < 0) {
      aug.add_arc(v, super_t, -b, 0);
    }
  }

  Residual& res = w.residual;
  res.assign(aug);
  if (dinic_max_flow(res, super_s, super_t) < need) return {};

  // All super arcs are saturated, so no residual cycle can pass through
  // the super nodes; canceling preserves feasibility of the b-flow.
  CycleCancelScratch& s = w.cycle_cancel;
  for (;;) {
    if (guard != nullptr && !guard->tick()) {
      return budget_exceeded(SolverKind::kCycleCanceling);
    }
    find_negative_cycle(res, s);
    if (s.cycle.empty()) break;
    Flow delta = kInfFlow;
    for (int e : s.cycle) delta = std::min(delta, res.edge(e).cap);
    assert(delta > 0);
    for (int e : s.cycle) res.push(e, delta);
  }

  FlowSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.arc_flow.resize(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sol.arc_flow[static_cast<std::size_t>(a)] = res.flow_of(a);
    sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
  }
  return sol;
}

}  // namespace lera::netflow::internal
