#pragma once

#include <cstdint>
#include <string>

#include "netflow/solution.hpp"
#include "netflow/types.hpp"

/// \file select.hpp
/// Shape-based backend selection for SolverKind::kAuto.
///
/// No single min-cost-flow algorithm dominates (Kiraly & Kovacs 2012
/// measure crossovers spanning orders of magnitude), so kAuto measures a
/// handful of cheap instance features and dispatches to the backend the
/// bench calibration says wins in that region. The thresholds below are
/// calibrated by `bench_solvers --smoke` (BENCH_pr7.json), which also
/// gates that the policy is never far from the best fixed backend on the
/// benched classes. Selection is deterministic: the same instance always
/// maps to the same backend.

namespace lera::netflow {

class Graph;

/// The features kAuto considers. Cheap to measure: one O(n) pass over
/// the supplies plus O(1) counts.
struct InstanceShape {
  NodeId nodes = 0;
  std::int64_t arcs = 0;
  /// Density proxy: arcs per node (0 for the empty graph).
  double arcs_per_node = 0;
  /// Total positive supply — SSP's augmentation count is bounded by it,
  /// which makes SSP output-sensitive where the others are not.
  Flow supply_volume = 0;
  /// Nodes with nonzero supply (spread-out vs concentrated imbalance).
  NodeId supply_nodes = 0;
  bool negative_costs = false;
  /// A warm-start cache entry matches this topology (solve_robust sets
  /// this; the warm resolve shares SSP's drain machinery, so a warm
  /// context biases selection toward SSP).
  bool warm_cache_match = false;

  /// Compact "nodes=... arcs=..." rendering for diagnostics and logs.
  std::string summary() const;
};

/// Measures \p g. warm_cache_match is left false; callers with a cache
/// set it themselves.
InstanceShape measure_shape(const Graph& g);

/// The calibrated policy: maps a shape to a concrete backend, never
/// kAuto. See select.cpp for the measured crossover points behind each
/// threshold.
SolverKind select_solver(const InstanceShape& shape);

}  // namespace lera::netflow
