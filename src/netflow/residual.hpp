#pragma once

#include <cassert>
#include <vector>

#include "netflow/graph.hpp"
#include "netflow/types.hpp"

/// \file residual.hpp
/// Residual-network representation shared by the augmenting solvers.
///
/// Every original arc a becomes a forward edge 2a and a backward twin
/// 2a+1. Pushing flow on one edge frees capacity on its twin. Lower
/// bounds must already have been removed (see lower_bounds.hpp); the
/// constructor asserts this.

namespace lera::netflow {

class Residual {
 public:
  /// One directed residual edge.
  struct Edge {
    NodeId head = kInvalidNode;  ///< Edge points at this node.
    Flow cap = 0;                ///< Remaining residual capacity.
    Cost cost = 0;               ///< Cost per unit (negated on twins).
  };

  explicit Residual(const Graph& g);

  NodeId num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(int e) const {
    assert(e >= 0 && e < num_edges());
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Edge ids leaving \p v (both forward edges and backward twins).
  const std::vector<int>& out(NodeId v) const {
    assert(v >= 0 && v < num_nodes_);
    return out_[static_cast<std::size_t>(v)];
  }

  /// Tail of edge \p e (the head of its twin).
  NodeId tail(int e) const { return edges_[static_cast<std::size_t>(twin(e))].head; }

  /// The paired reverse edge.
  static int twin(int e) { return e ^ 1; }

  /// True for edges that correspond to an original arc direction.
  static bool is_forward(int e) { return (e & 1) == 0; }

  /// Original arc id of edge \p e.
  static ArcId arc_of(int e) { return static_cast<ArcId>(e >> 1); }

  /// Moves \p amount units along edge \p e (reduces its capacity, grows
  /// the twin's). Requires 0 <= amount <= cap(e).
  void push(int e, Flow amount);

  /// Flow currently assigned to original arc \p a.
  Flow flow_of(ArcId a) const {
    return edges_[static_cast<std::size_t>(2 * a + 1)].cap;
  }

  /// Extracts per-arc flows for a FlowSolution.
  std::vector<Flow> arc_flows() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
};

}  // namespace lera::netflow
