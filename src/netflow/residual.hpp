#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "netflow/graph.hpp"
#include "netflow/types.hpp"

/// \file residual.hpp
/// Residual-network representation shared by the augmenting solvers.
///
/// Every original arc a becomes a forward edge 2a and a backward twin
/// 2a+1. Pushing flow on one edge frees capacity on its twin. Lower
/// bounds must already have been removed (see lower_bounds.hpp); the
/// constructor asserts this.
///
/// Adjacency is flat CSR: `out_ids_[first_out_[v] .. first_out_[v+1])`
/// lists the edge ids leaving v, both forward edges and backward twins,
/// in arc insertion order (identical to the historical per-node
/// push_back order, so solver iteration order — and therefore the exact
/// solution picked among cost ties — is unchanged). assign() rebuilds in
/// place so a workspace-owned Residual reuses its allocations across
/// solves.

namespace lera::netflow {

class Residual {
 public:
  /// One directed residual edge.
  struct Edge {
    NodeId head = kInvalidNode;  ///< Edge points at this node.
    Flow cap = 0;                ///< Remaining residual capacity.
    Cost cost = 0;               ///< Cost per unit (negated on twins).
  };

  /// Lightweight view over the edge ids leaving one node.
  class EdgeSpan {
   public:
    EdgeSpan(const int* first, const int* last) : first_(first), last_(last) {}
    std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
    bool empty() const { return first_ == last_; }
    int operator[](std::size_t i) const {
      assert(i < size());
      return first_[i];
    }
    const int* begin() const { return first_; }
    const int* end() const { return last_; }

   private:
    const int* first_;
    const int* last_;
  };

  Residual() = default;
  explicit Residual(const Graph& g) { assign(g); }

  /// (Re)builds the residual network of \p g, reusing existing storage.
  void assign(const Graph& g);

  NodeId num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(int e) const {
    assert(e >= 0 && e < num_edges());
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Edge ids leaving \p v (both forward edges and backward twins).
  EdgeSpan out(NodeId v) const {
    assert(v >= 0 && v < num_nodes_);
    const auto i = static_cast<std::size_t>(v);
    return EdgeSpan(out_ids_.data() + first_out_[i],
                    out_ids_.data() + first_out_[i + 1]);
  }

  /// Tail of edge \p e (the head of its twin).
  NodeId tail(int e) const { return edges_[static_cast<std::size_t>(twin(e))].head; }

  /// The paired reverse edge.
  static int twin(int e) { return e ^ 1; }

  /// True for edges that correspond to an original arc direction.
  static bool is_forward(int e) { return (e & 1) == 0; }

  /// Original arc id of edge \p e.
  static ArcId arc_of(int e) { return static_cast<ArcId>(e >> 1); }

  /// Moves \p amount units along edge \p e (reduces its capacity, grows
  /// the twin's). Requires 0 <= amount <= cap(e).
  void push(int e, Flow amount);

  /// Flow currently assigned to original arc \p a.
  Flow flow_of(ArcId a) const {
    return edges_[static_cast<std::size_t>(2 * a + 1)].cap;
  }

  /// Extracts per-arc flows for a FlowSolution.
  std::vector<Flow> arc_flows() const;

  /// Bytes the residual currently retains (capacities, not sizes).
  std::int64_t footprint_bytes() const {
    return static_cast<std::int64_t>(edges_.capacity() * sizeof(Edge) +
                                     (first_out_.capacity() +
                                      out_ids_.capacity() +
                                      cursor_.capacity()) *
                                         sizeof(int));
  }

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<int> first_out_;
  std::vector<int> out_ids_;
  std::vector<int> cursor_;  ///< Fill-pass scratch, kept for reuse.
};

}  // namespace lera::netflow
