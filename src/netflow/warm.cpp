#include "netflow/warm.hpp"

#include <algorithm>

#include "netflow/internal_solvers.hpp"
#include "netflow/residual.hpp"
#include "netflow/workspace.hpp"

namespace lera::netflow {

namespace {

/// Label-corrects potentials over the residual edges of (\p g, \p flow):
/// forward where flow < upper (cost c), backward where flow > 0
/// (cost -c). Returns false if a negative residual cycle exists, i.e.
/// \p flow is not optimal.
bool residual_potentials(const Graph& g, const std::vector<Flow>& flow,
                         std::vector<Cost>& pi) {
  const NodeId n = g.num_nodes();
  pi.assign(static_cast<std::size_t>(n), 0);
  for (NodeId round = 0; round <= n; ++round) {
    bool changed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      const Flow f = flow[static_cast<std::size_t>(a)];
      const auto tail = static_cast<std::size_t>(arc.tail);
      const auto head = static_cast<std::size_t>(arc.head);
      if (f < arc.upper && pi[tail] + arc.cost < pi[head]) {
        if (round == n) return false;
        pi[head] = pi[tail] + arc.cost;
        changed = true;
      }
      if (f > 0 && pi[head] - arc.cost < pi[tail]) {
        if (round == n) return false;
        pi[tail] = pi[head] - arc.cost;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return true;
}

}  // namespace

bool WarmStartCache::matches(const Graph& g) const {
  if (!valid_ || g.has_lower_bounds()) return false;
  if (static_cast<std::size_t>(g.num_nodes()) != supplies_.size()) return false;
  if (static_cast<std::size_t>(g.num_arcs()) != tails_.size()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.supply(v) != supplies_[static_cast<std::size_t>(v)]) return false;
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    if (arc.tail != tails_[static_cast<std::size_t>(a)] ||
        arc.head != heads_[static_cast<std::size_t>(a)]) {
      return false;
    }
  }
  return true;
}

std::string to_string(WarmStoreOutcome outcome) {
  switch (outcome) {
    case WarmStoreOutcome::kStored: return "stored";
    case WarmStoreOutcome::kLowerBounds: return "lower-bounds";
    case WarmStoreOutcome::kSizeMismatch: return "size-mismatch";
    case WarmStoreOutcome::kNotOptimal: return "not-optimal";
  }
  return "unknown";
}

WarmStoreOutcome WarmStartCache::store(const Graph& g,
                                       const std::vector<Flow>& flow) {
  if (g.has_lower_bounds()) return WarmStoreOutcome::kLowerBounds;
  if (flow.size() != static_cast<std::size_t>(g.num_arcs())) {
    return WarmStoreOutcome::kSizeMismatch;
  }
  // Label-correct into a scratch vector so a rejected store leaves any
  // previously recorded entry (including its potentials) untouched.
  std::vector<Cost> pi;
  if (!residual_potentials(g, flow, pi)) {
    return WarmStoreOutcome::kNotOptimal;  // Keep the previous entry.
  }
  pi_ = std::move(pi);
  tails_.resize(static_cast<std::size_t>(g.num_arcs()));
  heads_.resize(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    tails_[static_cast<std::size_t>(a)] = g.arc(a).tail;
    heads_[static_cast<std::size_t>(a)] = g.arc(a).head;
  }
  supplies_.resize(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    supplies_[static_cast<std::size_t>(v)] = g.supply(v);
  }
  flow_ = flow;
  valid_ = true;
  return WarmStoreOutcome::kStored;
}

void WarmStartCache::clear() {
  valid_ = false;
  tails_.clear();
  heads_.clear();
  supplies_.clear();
  flow_.clear();
  pi_.clear();
}

FlowSolution resolve_warm(const Graph& g, const WarmStartCache& cache,
                          SolveGuard* guard, SolverWorkspace* ws) {
  assert(cache.matches(g));
  if (g.total_supply() != 0) return {};

  SolverWorkspace local;
  SolverWorkspace& w = ws != nullptr ? *ws : local;
  ++w.counters.solves;

  Residual& res = w.residual;
  res.assign(g);
  const NodeId n = g.num_nodes();
  const auto un = static_cast<std::size_t>(n);
  SspScratch& s = w.ssp;
  s.prepare(n);

  // Impose the cached flow clamped to the new capacities. Where capacity
  // shrank the clamp strands excess at tails / deficit at heads; the SSP
  // drain below moves it. Conservation bookkeeping starts from the
  // node supplies exactly as a cold solve would.
  s.excess.assign(un, 0);
  for (NodeId v = 0; v < n; ++v) {
    s.excess[static_cast<std::size_t>(v)] = g.supply(v);
  }
  const std::vector<Flow>& prior = cache.flow();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const Flow f = std::min(prior[static_cast<std::size_t>(a)], arc.upper);
    if (f <= 0) continue;
    res.push(2 * a, f);
    s.excess[static_cast<std::size_t>(arc.tail)] -= f;
    s.excess[static_cast<std::size_t>(arc.head)] += f;
  }

  // The cached potentials proved the prior flow optimal under the old
  // costs; under the new ones a few residual edges may have slipped to
  // negative reduced cost (and capacity growth may have re-opened a
  // saturated negative edge). Saturating exactly those restores the
  // invariant — their twins carry the positive reduced cost — at the
  // price of extra excess the drain pays off with short Dijkstra runs.
  // (Repricing the potentials first instead was measured useless here:
  // with negative-cost arcs in play, even small perturbations put a
  // negative cycle in the prior flow's residual graph, so the
  // label-correcting passes never converge.)
  s.pi = cache.potentials();
  if (guard != nullptr && !guard->tick()) {
    return internal::budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  for (int e = 0; e < res.num_edges(); ++e) {
    const auto& edge = res.edge(e);
    if (edge.cap <= 0) continue;
    const NodeId u = res.tail(e);
    const Cost rc = edge.cost + s.pi[static_cast<std::size_t>(u)] -
                    s.pi[static_cast<std::size_t>(edge.head)];
    if (rc >= 0) continue;
    const Flow cap = edge.cap;
    res.push(e, cap);
    s.excess[static_cast<std::size_t>(u)] -= cap;
    s.excess[static_cast<std::size_t>(edge.head)] += cap;
  }

  // The saturation repair scatters many small excesses whose deficits
  // cluster inside one Dijkstra radius, so draining several per round
  // amortizes the search. Cold solves keep the canonical nearest-first
  // order (max_sinks_per_round = 1); warm results may land on a
  // different equal-cost optimum, which certification tolerates.
  constexpr int kWarmSinksPerRound = 16;
  const SolveStatus status =
      internal::ssp_drain(res, guard, w, kWarmSinksPerRound);
  if (status == SolveStatus::kBudgetExceeded) {
    return internal::budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  if (status != SolveStatus::kOptimal) return {};

  FlowSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.arc_flow = res.arc_flows();
  sol.cost = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
  }
  return sol;
}

std::size_t WarmCorrespondence::mapped_arcs() const {
  std::size_t n = 0;
  for (const int a : arc_from) n += a >= 0 ? 1 : 0;
  return n;
}

FlowSolution resolve_warm_mapped(const Graph& g, const WarmStartCache& cache,
                                 const WarmCorrespondence& map,
                                 SolveGuard* guard, SolverWorkspace* ws) {
  if (!cache.has_entry() || g.has_lower_bounds() ||
      g.total_supply() != 0 ||
      map.arc_from.size() != static_cast<std::size_t>(g.num_arcs()) ||
      map.node_from.size() != static_cast<std::size_t>(g.num_nodes())) {
    return {};
  }

  SolverWorkspace local;
  SolverWorkspace& w = ws != nullptr ? *ws : local;
  ++w.counters.solves;

  Residual& res = w.residual;
  res.assign(g);
  const NodeId n = g.num_nodes();
  const auto un = static_cast<std::size_t>(n);
  SspScratch& s = w.ssp;
  s.prepare(n);

  // Impose the cached flow wherever the correspondence carries it over,
  // clamped to the new capacities. Arcs the edit removed are simply not
  // imposed (their endpoints pick up excess/deficit the drain repairs);
  // arcs the edit added start at zero flow.
  s.excess.assign(un, 0);
  for (NodeId v = 0; v < n; ++v) {
    s.excess[static_cast<std::size_t>(v)] = g.supply(v);
  }
  const std::vector<Flow>& prior = cache.flow();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const int from = map.arc_from[static_cast<std::size_t>(a)];
    if (from < 0 || static_cast<std::size_t>(from) >= prior.size()) continue;
    const Arc& arc = g.arc(a);
    const Flow f = std::min(prior[static_cast<std::size_t>(from)], arc.upper);
    if (f <= 0) continue;
    res.push(2 * a, f);
    s.excess[static_cast<std::size_t>(arc.tail)] -= f;
    s.excess[static_cast<std::size_t>(arc.head)] += f;
  }

  // Carry the cached potentials over the mapped nodes; new nodes start
  // at 0. The invariant-restoring saturation below is exactly
  // resolve_warm's: any residual edge whose reduced cost is negative
  // under the carried potentials (a re-costed arc, or any arc touching
  // a new node) is saturated, after which the potentials are valid and
  // the SSP drain repairs the remaining imbalance optimally.
  const std::vector<Cost>& prior_pi = cache.potentials();
  s.pi.assign(un, 0);
  for (NodeId v = 0; v < n; ++v) {
    const int from = map.node_from[static_cast<std::size_t>(v)];
    if (from >= 0 && static_cast<std::size_t>(from) < prior_pi.size()) {
      s.pi[static_cast<std::size_t>(v)] =
          prior_pi[static_cast<std::size_t>(from)];
    }
  }
  if (guard != nullptr && !guard->tick()) {
    return internal::budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  for (int e = 0; e < res.num_edges(); ++e) {
    const auto& edge = res.edge(e);
    if (edge.cap <= 0) continue;
    const NodeId u = res.tail(e);
    const Cost rc = edge.cost + s.pi[static_cast<std::size_t>(u)] -
                    s.pi[static_cast<std::size_t>(edge.head)];
    if (rc >= 0) continue;
    const Flow cap = edge.cap;
    res.push(e, cap);
    s.excess[static_cast<std::size_t>(u)] -= cap;
    s.excess[static_cast<std::size_t>(edge.head)] += cap;
  }

  constexpr int kWarmSinksPerRound = 16;
  const SolveStatus status =
      internal::ssp_drain(res, guard, w, kWarmSinksPerRound);
  if (status == SolveStatus::kBudgetExceeded) {
    return internal::budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  if (status != SolveStatus::kOptimal) return {};

  FlowSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.arc_flow = res.arc_flows();
  sol.cost = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
  }
  return sol;
}

WarmStartCache* WarmStartPool::find(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // Touch: move to front.
  return &it->second->cache;
}

WarmStartCache* WarmStartPool::acquire(std::uint64_t key) {
  if (WarmStartCache* hit = find(key)) return hit;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, WarmStartCache{}});
  entries_.emplace(key, lru_.begin());
  return &lru_.front().cache;
}

void WarmStartPool::clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace lera::netflow
