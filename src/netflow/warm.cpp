#include "netflow/warm.hpp"

#include <algorithm>

#include "netflow/internal_solvers.hpp"
#include "netflow/residual.hpp"
#include "netflow/workspace.hpp"

namespace lera::netflow {

namespace {

/// Label-corrects potentials over the residual edges of (\p g, \p flow):
/// forward where flow < upper (cost c), backward where flow > 0
/// (cost -c). Returns false if a negative residual cycle exists, i.e.
/// \p flow is not optimal.
bool residual_potentials(const Graph& g, const std::vector<Flow>& flow,
                         std::vector<Cost>& pi) {
  const NodeId n = g.num_nodes();
  pi.assign(static_cast<std::size_t>(n), 0);
  for (NodeId round = 0; round <= n; ++round) {
    bool changed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      const Flow f = flow[static_cast<std::size_t>(a)];
      const auto tail = static_cast<std::size_t>(arc.tail);
      const auto head = static_cast<std::size_t>(arc.head);
      if (f < arc.upper && pi[tail] + arc.cost < pi[head]) {
        if (round == n) return false;
        pi[head] = pi[tail] + arc.cost;
        changed = true;
      }
      if (f > 0 && pi[head] - arc.cost < pi[tail]) {
        if (round == n) return false;
        pi[tail] = pi[head] - arc.cost;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return true;
}

}  // namespace

bool WarmStartCache::matches(const Graph& g) const {
  if (!valid_ || g.has_lower_bounds()) return false;
  if (static_cast<std::size_t>(g.num_nodes()) != supplies_.size()) return false;
  if (static_cast<std::size_t>(g.num_arcs()) != tails_.size()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.supply(v) != supplies_[static_cast<std::size_t>(v)]) return false;
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    if (arc.tail != tails_[static_cast<std::size_t>(a)] ||
        arc.head != heads_[static_cast<std::size_t>(a)]) {
      return false;
    }
  }
  return true;
}

void WarmStartCache::store(const Graph& g, const std::vector<Flow>& flow) {
  if (g.has_lower_bounds() ||
      flow.size() != static_cast<std::size_t>(g.num_arcs())) {
    return;
  }
  if (!residual_potentials(g, flow, pi_)) return;  // Not optimal: keep out.
  tails_.resize(static_cast<std::size_t>(g.num_arcs()));
  heads_.resize(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    tails_[static_cast<std::size_t>(a)] = g.arc(a).tail;
    heads_[static_cast<std::size_t>(a)] = g.arc(a).head;
  }
  supplies_.resize(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    supplies_[static_cast<std::size_t>(v)] = g.supply(v);
  }
  flow_ = flow;
  valid_ = true;
}

void WarmStartCache::clear() {
  valid_ = false;
  tails_.clear();
  heads_.clear();
  supplies_.clear();
  flow_.clear();
  pi_.clear();
}

FlowSolution resolve_warm(const Graph& g, const WarmStartCache& cache,
                          SolveGuard* guard, SolverWorkspace* ws) {
  assert(cache.matches(g));
  if (g.total_supply() != 0) return {};

  SolverWorkspace local;
  SolverWorkspace& w = ws != nullptr ? *ws : local;
  ++w.counters.solves;

  Residual& res = w.residual;
  res.assign(g);
  const NodeId n = g.num_nodes();
  const auto un = static_cast<std::size_t>(n);
  SspScratch& s = w.ssp;
  s.prepare(n);

  // Impose the cached flow clamped to the new capacities. Where capacity
  // shrank the clamp strands excess at tails / deficit at heads; the SSP
  // drain below moves it. Conservation bookkeeping starts from the
  // node supplies exactly as a cold solve would.
  s.excess.assign(un, 0);
  for (NodeId v = 0; v < n; ++v) {
    s.excess[static_cast<std::size_t>(v)] = g.supply(v);
  }
  const std::vector<Flow>& prior = cache.flow();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const Flow f = std::min(prior[static_cast<std::size_t>(a)], arc.upper);
    if (f <= 0) continue;
    res.push(2 * a, f);
    s.excess[static_cast<std::size_t>(arc.tail)] -= f;
    s.excess[static_cast<std::size_t>(arc.head)] += f;
  }

  // The cached potentials proved the prior flow optimal under the old
  // costs; under the new ones a few residual edges may have slipped to
  // negative reduced cost (and capacity growth may have re-opened a
  // saturated negative edge). Saturating exactly those restores the
  // invariant — their twins carry the positive reduced cost — at the
  // price of extra excess the drain pays off with short Dijkstra runs.
  // (Repricing the potentials first instead was measured useless here:
  // with negative-cost arcs in play, even small perturbations put a
  // negative cycle in the prior flow's residual graph, so the
  // label-correcting passes never converge.)
  s.pi = cache.potentials();
  if (guard != nullptr && !guard->tick()) {
    return internal::budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  for (int e = 0; e < res.num_edges(); ++e) {
    const auto& edge = res.edge(e);
    if (edge.cap <= 0) continue;
    const NodeId u = res.tail(e);
    const Cost rc = edge.cost + s.pi[static_cast<std::size_t>(u)] -
                    s.pi[static_cast<std::size_t>(edge.head)];
    if (rc >= 0) continue;
    const Flow cap = edge.cap;
    res.push(e, cap);
    s.excess[static_cast<std::size_t>(u)] -= cap;
    s.excess[static_cast<std::size_t>(edge.head)] += cap;
  }

  // The saturation repair scatters many small excesses whose deficits
  // cluster inside one Dijkstra radius, so draining several per round
  // amortizes the search. Cold solves keep the canonical nearest-first
  // order (max_sinks_per_round = 1); warm results may land on a
  // different equal-cost optimum, which certification tolerates.
  constexpr int kWarmSinksPerRound = 16;
  const SolveStatus status =
      internal::ssp_drain(res, guard, w, kWarmSinksPerRound);
  if (status == SolveStatus::kBudgetExceeded) {
    return internal::budget_exceeded(SolverKind::kSuccessiveShortestPaths);
  }
  if (status != SolveStatus::kOptimal) return {};

  FlowSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.arc_flow = res.arc_flows();
  sol.cost = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
  }
  return sol;
}

}  // namespace lera::netflow
