#include "netflow/maxflow.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace lera::netflow {

namespace {

/// BFS level graph; returns true if t is reachable.
bool build_levels(const Residual& res, NodeId s, NodeId t,
                  std::vector<int>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::queue<NodeId> queue;
  level[static_cast<std::size_t>(s)] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (int e : res.out(u)) {
      const auto& edge = res.edge(e);
      if (edge.cap <= 0) continue;
      if (level[static_cast<std::size_t>(edge.head)] >= 0) continue;
      level[static_cast<std::size_t>(edge.head)] =
          level[static_cast<std::size_t>(u)] + 1;
      queue.push(edge.head);
    }
  }
  return level[static_cast<std::size_t>(t)] >= 0;
}

/// DFS blocking-flow augmentation with the current-edge optimisation.
Flow augment(Residual& res, const std::vector<int>& level,
             std::vector<std::size_t>& next, NodeId u, NodeId t,
             Flow limit) {
  if (u == t) return limit;
  const auto& edges = res.out(u);
  for (std::size_t& i = next[static_cast<std::size_t>(u)]; i < edges.size();
       ++i) {
    const int e = edges[i];
    const auto& edge = res.edge(e);
    if (edge.cap <= 0) continue;
    if (level[static_cast<std::size_t>(edge.head)] !=
        level[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const Flow pushed =
        augment(res, level, next, edge.head, t, std::min(limit, edge.cap));
    if (pushed > 0) {
      res.push(e, pushed);
      return pushed;
    }
  }
  return 0;
}

}  // namespace

Flow dinic_max_flow(Residual& res, NodeId s, NodeId t) {
  assert(s != t);
  std::vector<int> level(static_cast<std::size_t>(res.num_nodes()));
  std::vector<std::size_t> next(static_cast<std::size_t>(res.num_nodes()));
  Flow total = 0;
  while (build_levels(res, s, t, level)) {
    std::fill(next.begin(), next.end(), 0);
    for (;;) {
      const Flow pushed = augment(res, level, next, s, t, kInfFlow);
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::vector<bool> min_cut_side(const Residual& res, NodeId s) {
  std::vector<bool> side(static_cast<std::size_t>(res.num_nodes()), false);
  std::queue<NodeId> queue;
  side[static_cast<std::size_t>(s)] = true;
  queue.push(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (int e : res.out(u)) {
      const auto& edge = res.edge(e);
      if (edge.cap <= 0 || side[static_cast<std::size_t>(edge.head)]) {
        continue;
      }
      side[static_cast<std::size_t>(edge.head)] = true;
      queue.push(edge.head);
    }
  }
  return side;
}

}  // namespace lera::netflow
