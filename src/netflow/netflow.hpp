#pragma once

/// \file netflow.hpp
/// Umbrella header for the minimum-cost network-flow library.

#include "netflow/decompose.hpp"  // IWYU pragma: export
#include "netflow/fault_injection.hpp"  // IWYU pragma: export
#include "netflow/graph.hpp"      // IWYU pragma: export
#include "netflow/lower_bounds.hpp"  // IWYU pragma: export
#include "netflow/maxflow.hpp"    // IWYU pragma: export
#include "netflow/residual.hpp"   // IWYU pragma: export
#include "netflow/robust.hpp"     // IWYU pragma: export
#include "netflow/select.hpp"     // IWYU pragma: export
#include "netflow/solution.hpp"   // IWYU pragma: export
#include "netflow/types.hpp"      // IWYU pragma: export
#include "netflow/validate.hpp"   // IWYU pragma: export
#include "netflow/warm.hpp"       // IWYU pragma: export
#include "netflow/workspace.hpp"  // IWYU pragma: export
