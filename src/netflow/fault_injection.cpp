#include "netflow/fault_injection.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <new>
#include <thread>

#include "netflow/decompose.hpp"
#include "netflow/membudget.hpp"

namespace lera::netflow {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFlipArcFlow:
      return "flip-arc-flow";
    case FaultKind::kDropArcFlow:
      return "drop-arc-flow";
    case FaultKind::kCorruptCost:
      return "corrupt-cost";
    case FaultKind::kTruncateAugmentation:
      return "truncate-augmentation";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed,
                             FaultInjectorOptions options)
    : state_(seed + 0x9e3779b97f4a7c15ULL), options_(options) {}

std::uint64_t FaultInjector::next() {
  // splitmix64: tiny, seed-stable across platforms and libstdc++
  // versions (std::mt19937_64 would be too, but distributions are not).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SolveOptions::SolutionHook FaultInjector::hook() {
  return [this](const Graph& g, FlowSolution& sol) { perturb(g, sol); };
}

void FaultInjector::perturb(const Graph& g, FlowSolution& sol) {
  if (sol.status != SolveStatus::kOptimal) return;
  if (attempts_seen_++ >= options_.max_faulty_attempts) return;

  // Every fault below breaks flow conservation or the cost equality, so
  // CertifyLevel::kFeasible certification already detects all of them.
  FaultKind kind = static_cast<FaultKind>(next() % 4);
  const ArcId m = g.num_arcs();

  // Degenerate solutions cannot host some flow faults; fall back to the
  // always-applicable cost corruption.
  if (m == 0) kind = FaultKind::kCorruptCost;

  switch (kind) {
    case FaultKind::kFlipArcFlow: {
      // Self-loops conserve flow at their endpoint; skip them so the
      // corruption is guaranteed detectable.
      std::vector<ArcId> candidates;
      for (ArcId a = 0; a < m; ++a) {
        if (g.arc(a).tail != g.arc(a).head) candidates.push_back(a);
      }
      if (candidates.empty()) {
        kind = FaultKind::kCorruptCost;
        break;
      }
      const ArcId a = candidates[next() % candidates.size()];
      const Flow delta =
          (next() % 2 == 0 ? 1 : -1) * static_cast<Flow>(1 + next() % 3);
      sol.arc_flow[static_cast<std::size_t>(a)] += delta;
      ++faults_injected_;
      log_.push_back("flip-arc-flow: arc " + std::to_string(a) + " by " +
                     std::to_string(delta));
      return;
    }
    case FaultKind::kDropArcFlow: {
      std::vector<ArcId> flowing;
      for (ArcId a = 0; a < m; ++a) {
        if (g.arc(a).tail != g.arc(a).head &&
            sol.arc_flow[static_cast<std::size_t>(a)] > g.arc(a).lower) {
          flowing.push_back(a);
        }
      }
      if (flowing.empty()) {
        kind = FaultKind::kCorruptCost;
        break;
      }
      const ArcId a = flowing[next() % flowing.size()];
      sol.arc_flow[static_cast<std::size_t>(a)] = g.arc(a).lower;
      ++faults_injected_;
      log_.push_back("drop-arc-flow: arc " + std::to_string(a) +
                     " reset to lower bound");
      return;
    }
    case FaultKind::kTruncateAugmentation: {
      // Removing one unit along a whole source->sink path keeps interior
      // conservation but breaks the balance at both endpoints.
      const std::vector<FlowComponent> components =
          decompose_flow(g, sol.arc_flow);
      std::vector<const FlowComponent*> paths;
      for (const FlowComponent& c : components) {
        if (!c.is_cycle && !c.arcs.empty()) paths.push_back(&c);
      }
      if (paths.empty()) {
        kind = FaultKind::kCorruptCost;
        break;
      }
      const FlowComponent& path = *paths[next() % paths.size()];
      for (ArcId a : path.arcs) {
        sol.arc_flow[static_cast<std::size_t>(a)] -= 1;
      }
      ++faults_injected_;
      log_.push_back("truncate-augmentation: path of " +
                     std::to_string(path.arcs.size()) +
                     " arc(s) reduced by one unit");
      return;
    }
    case FaultKind::kCorruptCost:
      break;
  }

  const Cost delta =
      (next() % 2 == 0 ? 1 : -1) * static_cast<Cost>(1 + next() % 1000);
  const Cost original = sol.cost;
  Cost corrupted = original;
  if (!checked_add(original, delta, corrupted) || corrupted == original) {
    corrupted = original - 1;  // Guarantee a visible, in-range change.
  }
  sol.cost = corrupted;
  ++faults_injected_;
  log_.push_back("corrupt-cost: shifted by " + std::to_string(delta));
}

OomFailpoint::OomFailpoint(Options options) : options_(options) {
  assert(detail::t_alloc_tick_hook.fn == nullptr &&
         "OomFailpoint instances must not nest on one thread");
  detail::t_alloc_tick_hook.fn = &OomFailpoint::tick;
  detail::t_alloc_tick_hook.ctx = this;
}

OomFailpoint::~OomFailpoint() {
  detail::t_alloc_tick_hook = detail::AllocTickHook{};
}

void OomFailpoint::tick(void* self, std::int64_t bytes) {
  OomFailpoint& fp = *static_cast<OomFailpoint*>(self);
  ++fp.sites_seen_;
  fp.bytes_seen_ += bytes;
  if (fp.failures_injected_ >= fp.options_.max_failures) return;
  const bool site_hit = fp.options_.fail_at_site > 0 &&
                        fp.sites_seen_ == fp.options_.fail_at_site;
  const bool bytes_hit = fp.options_.fail_above_bytes > 0 &&
                         fp.bytes_seen_ > fp.options_.fail_above_bytes;
  if (site_hit || bytes_hit) {
    ++fp.failures_injected_;
    throw std::bad_alloc();
  }
}

// --- CrashFailpoint -----------------------------------------------------

std::string CrashFailpoint::to_string(Mode mode) {
  switch (mode) {
    case Mode::kSegv:
      return "segv";
    case Mode::kKill:
      return "kill";
    case Mode::kAbort:
      return "abort";
    case Mode::kExit:
      return "exit";
    case Mode::kHang:
      return "hang";
  }
  return "unknown";
}

CrashFailpoint::CrashFailpoint(Options options)
    : options_(std::move(options)),
      state_(options_.seed + 0x9e3779b97f4a7c15ULL) {}

std::uint64_t CrashFailpoint::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::optional<CrashFailpoint::Mode> CrashFailpoint::should_crash(
    std::string_view payload) {
  if (!options_.marker.empty() &&
      payload.find(options_.marker) != std::string_view::npos) {
    if (options_.marker_mode.has_value()) return *options_.marker_mode;
    // Derive the mode from the payload bytes alone (FNV-1a), so a
    // byte-identical resubmission dies byte-identically — the property
    // the poison-quarantine layer keys on.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : payload) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    return static_cast<Mode>(h % 4);  // kHang only via marker_mode.
  }
  if (options_.crash_one_in > 0 &&
      next() % static_cast<std::uint64_t>(options_.crash_one_in) == 0) {
    return static_cast<Mode>(next() % 4);
  }
  return std::nullopt;
}

void CrashFailpoint::crash(Mode mode, int exit_code) {
  switch (mode) {
    case Mode::kSegv:
      std::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      break;
    case Mode::kKill:
      ::kill(::getpid(), SIGKILL);
      break;
    case Mode::kAbort:
      std::signal(SIGABRT, SIG_DFL);
      std::abort();
    case Mode::kExit:
      ::_exit(exit_code);
    case Mode::kHang:
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
  }
  // A raised signal can be blocked/ignored in exotic harnesses; never
  // fall back into the caller as if nothing happened.
  ::_exit(exit_code == 0 ? 101 : exit_code);
}

}  // namespace lera::netflow
