#pragma once

#include <vector>

#include "netflow/graph.hpp"

/// \file lower_bounds.hpp
/// Standard reduction of arc lower bounds to node supplies.
///
/// The paper's restricted-memory-access-time extension (§5.2) forces
/// certain lifetime segments into registers by putting a lower bound of 1
/// on their arcs. Solvers here work on lower-bound-free instances, so we
/// pre-send lower(a) units along every arc a (shifting x' = x - lower),
/// which turns bounds into supply adjustments:
///   supply'(tail) -= lower,  supply'(head) += lower,
///   upper' = upper - lower,  fixed cost += lower * cost.

namespace lera::netflow {

/// Result of remove_lower_bounds(); keeps what is needed to undo it.
struct LowerBoundReduction {
  Graph reduced;            ///< Equivalent instance with all lower bounds 0.
  Cost fixed_cost = 0;      ///< Cost contributed by the mandatory flow.
  std::vector<Flow> lower;  ///< Original lower bound per arc.
};

/// Builds the equivalent lower-bound-free instance.
LowerBoundReduction remove_lower_bounds(const Graph& g);

/// Maps a solution of the reduced instance back to the original arcs
/// (adds the lower bound back onto each arc's flow).
std::vector<Flow> restore_lower_bounds(const LowerBoundReduction& red,
                                       const std::vector<Flow>& reduced_flow);

}  // namespace lera::netflow
