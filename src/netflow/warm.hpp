#pragma once

#include <vector>

#include "netflow/graph.hpp"
#include "netflow/solution.hpp"

/// \file warm.hpp
/// Warm-start resolve: reuse the optimal flow of a previous solve when a
/// re-submitted instance shares its topology (same nodes, arcs and
/// supplies) and differs only in arc costs and/or capacities — the
/// explore-schedules and voltage-sweep pattern.
///
/// The cache stores the prior optimal flow *and* a set of potentials
/// valid for it (computed once at store() time). The warm path clamps
/// the cached flow to the new capacities (creating excesses where
/// capacity shrank), then saturates every residual edge whose reduced
/// cost went negative under the new costs — after which the cached
/// potentials are valid again — and repairs the accumulated imbalance
/// with ordinary SSP augmentations. Small perturbations violate few
/// edges, so the repair is a handful of short Dijkstra runs instead of
/// a full solve. The result satisfies the same optimality invariant as
/// a cold SSP solve; callers are expected to certify it regardless
/// (solve_robust always does), so a wrong warm start fails loudly,
/// never silently.

namespace lera::netflow {

struct SolverWorkspace;

/// Topology-keyed snapshot of the last certified-optimal solve. Not
/// thread-safe: like a SolverWorkspace, a cache belongs to one
/// sequential solve stream at a time.
class WarmStartCache {
 public:
  /// True once store() has recorded a solve.
  bool has_entry() const { return valid_; }

  /// True when \p g has the cached topology: identical node/arc counts,
  /// arc endpoints and supplies. Costs and capacities may differ.
  /// Instances with lower bounds never match (the reduction would
  /// change the topology underneath the cache).
  bool matches(const Graph& g) const;

  /// Records \p flow (an optimal feasible flow of \p g) as the seed for
  /// future warm resolves, together with potentials proving its
  /// optimality (label-corrected here, once, so every later resolve can
  /// skip that work). No-op for graphs with lower bounds or if \p flow
  /// is not actually optimal (its residual graph has a negative cycle).
  void store(const Graph& g, const std::vector<Flow>& flow);

  void clear();

  const std::vector<Flow>& flow() const { return flow_; }
  const std::vector<Cost>& potentials() const { return pi_; }

 private:
  bool valid_ = false;
  std::vector<NodeId> tails_;
  std::vector<NodeId> heads_;
  std::vector<Flow> supplies_;
  std::vector<Flow> flow_;
  std::vector<Cost> pi_;
};

/// Re-solves \p g starting from the cached flow. Requires
/// cache.matches(g). Returns kOptimal with the repaired flow on
/// success; any other status (kInfeasible, kBudgetExceeded, or an
/// internal bail-out) means the caller must fall back to a cold solve.
FlowSolution resolve_warm(const Graph& g, const WarmStartCache& cache,
                          SolveGuard* guard = nullptr,
                          SolverWorkspace* ws = nullptr);

}  // namespace lera::netflow
