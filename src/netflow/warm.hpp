#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netflow/graph.hpp"
#include "netflow/solution.hpp"

/// \file warm.hpp
/// Warm-start resolve: reuse the optimal flow of a previous solve when a
/// re-submitted instance shares its topology (same nodes, arcs and
/// supplies) and differs only in arc costs and/or capacities — the
/// explore-schedules and voltage-sweep pattern.
///
/// The cache stores the prior optimal flow *and* a set of potentials
/// valid for it (computed once at store() time). The warm path clamps
/// the cached flow to the new capacities (creating excesses where
/// capacity shrank), then saturates every residual edge whose reduced
/// cost went negative under the new costs — after which the cached
/// potentials are valid again — and repairs the accumulated imbalance
/// with ordinary SSP augmentations. Small perturbations violate few
/// edges, so the repair is a handful of short Dijkstra runs instead of
/// a full solve. The result satisfies the same optimality invariant as
/// a cold SSP solve; callers are expected to certify it regardless
/// (solve_robust always does), so a wrong warm start fails loudly,
/// never silently.

namespace lera::netflow {

struct SolverWorkspace;

/// Why a WarmStartCache::store() call did or did not record its flow.
/// A rejection is not an error — the cache simply stays on its previous
/// entry — but it used to be *invisible*, which made an ineffective
/// cache indistinguishable from a healthy one. Callers (solve_robust)
/// now count rejections (PerfCounters::warm_store_rejects) and note the
/// outcome in SolveDiagnostics.
enum class WarmStoreOutcome {
  kStored,        ///< The flow and its potentials were recorded.
  kLowerBounds,   ///< Graph has lower bounds; the reduction would change
                  ///< the topology underneath the cache.
  kSizeMismatch,  ///< flow.size() != num_arcs: not a flow of this graph.
  kNotOptimal,    ///< The flow's residual graph has a negative cycle, so
                  ///< potentials proving optimality do not exist.
};

std::string to_string(WarmStoreOutcome outcome);

/// Topology-keyed snapshot of the last certified-optimal solve. Not
/// thread-safe: like a SolverWorkspace, a cache belongs to one
/// sequential solve stream at a time.
class WarmStartCache {
 public:
  /// True once store() has recorded a solve.
  bool has_entry() const { return valid_; }

  /// True when \p g has the cached topology: identical node/arc counts,
  /// arc endpoints and supplies. Costs and capacities may differ.
  /// Instances with lower bounds never match (the reduction would
  /// change the topology underneath the cache).
  bool matches(const Graph& g) const;

  /// Records \p flow (an optimal feasible flow of \p g) as the seed for
  /// future warm resolves, together with potentials proving its
  /// optimality (label-corrected here, once, so every later resolve can
  /// skip that work). Returns the typed outcome: anything but kStored
  /// means the cache kept its previous entry (graphs with lower bounds,
  /// size mismatches, and flows whose residual graph has a negative
  /// cycle are all refused).
  WarmStoreOutcome store(const Graph& g, const std::vector<Flow>& flow);

  void clear();

  const std::vector<Flow>& flow() const { return flow_; }
  const std::vector<Cost>& potentials() const { return pi_; }

 private:
  bool valid_ = false;
  std::vector<NodeId> tails_;
  std::vector<NodeId> heads_;
  std::vector<Flow> supplies_;
  std::vector<Flow> flow_;
  std::vector<Cost> pi_;
};

/// Re-solves \p g starting from the cached flow. Requires
/// cache.matches(g). Returns kOptimal with the repaired flow on
/// success; any other status (kInfeasible, kBudgetExceeded, or an
/// internal bail-out) means the caller must fall back to a cold solve.
FlowSolution resolve_warm(const Graph& g, const WarmStartCache& cache,
                          SolveGuard* guard = nullptr,
                          SolverWorkspace* ws = nullptr);

/// Arc/node correspondence between a *new* graph and the graph a
/// WarmStartCache was stored against, for incremental-edit repair: the
/// new graph may have arcs and nodes the cached one lacks (an added
/// variable's segment arcs) and lack arcs the cached one has (a removed
/// variable's — their cached flow is simply not imposed, and the drain
/// repairs the imbalance). Built by the caller from semantic arc keys
/// (alloc::FlowGraphSpec::arc_info), never from raw indices.
struct WarmCorrespondence {
  /// arc_from[a] = arc id in the cached graph that new arc \p a
  /// corresponds to, or -1 for a genuinely new arc (starts at 0 flow).
  std::vector<int> arc_from;
  /// node_from[v] = node id in the cached graph that new node \p v
  /// corresponds to, or -1 for a new node (falls back to potential 0;
  /// the saturation pass restores the optimality invariant around it).
  std::vector<int> node_from;

  /// Arcs of the new graph with a cached counterpart — the warm mass
  /// actually carried over. Callers skip the warm path when this is too
  /// small a fraction to beat a cold solve.
  std::size_t mapped_arcs() const;
};

/// resolve_warm generalised across an edit: re-solves \p g starting
/// from the cached flow of a *different but overlapping* graph, imposed
/// through \p map (clamped to the new capacities), with the cached
/// potentials carried over the mapped nodes. Exactly like resolve_warm,
/// every residual edge with negative reduced cost is saturated and the
/// accumulated imbalance is drained with SSP augmentations — small
/// edits violate few edges, so the repair is a handful of short
/// Dijkstra runs instead of a cold solve. Requires cache.has_entry(),
/// no lower bounds on \p g, and g.total_supply() == 0; the caller must
/// certify the answer (the alloc::IncrementalAllocator always does).
FlowSolution resolve_warm_mapped(const Graph& g, const WarmStartCache& cache,
                                 const WarmCorrespondence& map,
                                 SolveGuard* guard = nullptr,
                                 SolverWorkspace* ws = nullptr);

/// Bounded keyed pool of WarmStartCaches: the single-entry cache
/// generalised to a working set of kernels. Keyed by the caller's
/// similarity hash (alloc::FingerprintResult::structural — instances
/// that build the same flow topology share an entry, so cost-jittered
/// resubmissions of one kernel warm-start each other), LRU-evicted at
/// `capacity` entries. Not thread-safe: like a SolverWorkspace, a pool
/// belongs to one sequential solve stream at a time (the Engine leases
/// one per solve context).
class WarmStartPool {
 public:
  explicit WarmStartPool(std::size_t capacity = 8)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The entry for \p key, created (evicting the least recently used
  /// entry if full) when absent. The pointer stays valid until the
  /// entry is evicted — use it for one solve, not across solves.
  WarmStartCache* acquire(std::uint64_t key);

  /// The entry for \p key or nullptr; touches LRU order on hit.
  WarmStartCache* find(std::uint64_t key);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t evictions() const { return evictions_; }

  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    WarmStartCache cache;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;
  std::int64_t evictions_ = 0;
};

}  // namespace lera::netflow
