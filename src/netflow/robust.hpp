#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netflow/cancel.hpp"
#include "netflow/graph.hpp"
#include "netflow/membudget.hpp"
#include "netflow/solution.hpp"
#include "netflow/warm.hpp"
#include "netflow/workspace.hpp"

/// \file robust.hpp
/// The guarded solve path: validate the instance, run the primary solver
/// under an iteration/time budget, fall back through a configurable
/// solver chain on failure, and certify every accepted answer against
/// the independent checks in validate.hpp. Real min-cost-flow codes are
/// known to diverge on degenerate instances (Kiraly & Kovacs 2012), so
/// production callers (the allocator, the pipeline) go through
/// solve_robust instead of trusting any single algorithm.

namespace lera::netflow {

/// How much of validate.hpp to run on every accepted answer.
enum class CertifyLevel {
  kNone,      ///< Trust the solver (fastest; test/bench only).
  kFeasible,  ///< check_feasible + exact cost recomputation.
  kOptimal,   ///< kFeasible plus the residual negative-cycle certificate.
};

std::string to_string(CertifyLevel level);

/// Per-SolverKind circuit breaker, shared by many solve_robust calls
/// (one lives in engine::Engine). A solver whose answers keep flunking
/// certification is producing garbage — transient faults are healed by
/// retry, but after `threshold` *consecutive* certification failures the
/// breaker opens and the solver is skipped on subsequent solves instead
/// of burning a full solve per request to rediscover the fault. A
/// certified answer resets the count. Thread-safe; opening is sticky
/// until reset().
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold = 3) : threshold_(threshold) {}

  /// False once the breaker for \p kind is open (solver must be skipped).
  bool allow(SolverKind kind) const { return !open(kind); }

  bool open(SolverKind kind) const {
    return threshold_ > 0 && failures(kind) >= threshold_;
  }

  void record_failure(SolverKind kind) {
    slot(kind).fetch_add(1, std::memory_order_acq_rel);
  }

  void record_success(SolverKind kind) {
    slot(kind).store(0, std::memory_order_release);
  }

  int failures(SolverKind kind) const {
    return slot(kind).load(std::memory_order_acquire);
  }

  int threshold() const { return threshold_; }

  /// Closes every breaker (new run, new luck).
  void reset() {
    for (auto& f : failures_) f.store(0, std::memory_order_release);
  }

  /// Solver kinds whose breaker is currently open, as display names.
  std::vector<std::string> open_solvers() const;

 private:
  // One slot per SolverKind enumerator (kAuto included, so a kAuto key
  // can never alias a concrete solver's failure count).
  static constexpr int kNumKinds = 5;

  std::atomic<int>& slot(SolverKind kind) {
    return failures_[static_cast<std::size_t>(kind) % kNumKinds];
  }
  const std::atomic<int>& slot(SolverKind kind) const {
    return failures_[static_cast<std::size_t>(kind) % kNumKinds];
  }

  int threshold_;
  std::array<std::atomic<int>, kNumKinds> failures_{};
};

/// Options for solve_robust.
struct SolveOptions {
  /// Solvers to try, in order. Empty selects the default chain
  /// network simplex -> successive shortest paths -> cycle canceling.
  /// A SolverKind::kAuto entry is expanded in place by the shape-based
  /// selector (select.hpp) before any attempt runs; the chosen backend
  /// and the driving instance features land in SolveDiagnostics.
  std::vector<SolverKind> chain;
  /// Per-attempt iteration budget (0 = unlimited); see SolveGuard.
  std::int64_t max_iterations_per_solver = 0;
  /// Wall-time budget shared by all attempts (0 = unlimited).
  double max_seconds_total = 0;
  /// Certification applied to every optimal answer before accepting it.
  CertifyLevel certify = CertifyLevel::kOptimal;
  /// Require a second solver to confirm an infeasible verdict (when the
  /// chain has one and certification is enabled): a buggy solver can
  /// report infeasible just as it can report a wrong optimum.
  bool cross_check_infeasible = true;

  /// Cooperative cancellation: observed between attempts and, through
  /// SolveGuard, inside every solver iteration. A fired token returns
  /// kCancelled (and is never retried or degraded — the caller withdrew
  /// the request).
  CancelToken cancel;
  /// Absolute wall-clock deadline for the whole robust solve, combined
  /// with max_seconds_total by taking whichever is tighter. Expiry
  /// surfaces as kBudgetExceeded with SolveDiagnostics::deadline_hit.
  Deadline deadline;
  /// Re-run a solver whose optimality claim flunked certification up to
  /// this many times before falling through the chain. Deterministic
  /// solvers cannot change an infeasible or budget verdict, so only
  /// certification failures — the transient-fault signature — retry.
  int max_retries_per_solver = 0;
  /// Base of the seeded, jittered exponential backoff slept between
  /// retries: sleep = base * 2^retry * U[0.5, 1), capped by the
  /// remaining time budget. 0 (default) retries immediately.
  double retry_backoff_seconds = 0;
  /// Seed of the backoff jitter (splitmix64; deterministic per solve).
  std::uint64_t retry_seed = 1;
  /// Optional memory budget (membudget.hpp). Before each solver attempt
  /// the predicted footprint of that backend on this instance
  /// (estimate_solver_bytes) is charged against the budget; a refusal
  /// skips the attempt with a kMemoryExceeded verdict and falls through
  /// the chain exactly like a budget trip, so a cheaper backend can
  /// still answer. The charge is released when the attempt ends — the
  /// budget's used() returns to its pre-solve value on every path. A
  /// default-constructed (invalid) budget is inert. An std::bad_alloc
  /// escaping a solver is also mapped to kMemoryExceeded here.
  MemoryBudget memory_budget;
  /// Optional shared circuit breaker consulted per chain entry; open
  /// solvers are skipped (recorded in SolveDiagnostics::breaker_skips)
  /// and certification outcomes are reported back to it. The breaker
  /// must outlive the solve; solve_robust never takes ownership.
  CircuitBreaker* breaker = nullptr;

  /// Optional reusable scratch arena (workspace.hpp) lent to every
  /// solver attempt; also accumulates the perf counters reported in
  /// SolveDiagnostics::perf. Never owned; must not be shared with a
  /// concurrently running solve. Results are identical with or without.
  SolverWorkspace* workspace = nullptr;
  /// Optional warm-start cache (warm.hpp). When the cache holds a prior
  /// optimal flow for this topology, a warm resolve is attempted before
  /// the solver chain; its answer is ALWAYS certified (at least
  /// kFeasible, even under CertifyLevel::kNone), and any failure falls
  /// back to the cold chain. Certified optimal answers — warm or cold —
  /// refresh the cache. Never owned; single solve stream at a time.
  WarmStartCache* warm_cache = nullptr;

  /// Test-only seam: invoked on every solver answer that claims
  /// optimality, before certification. The fault-injection harness uses
  /// it to prove the certification layer catches corrupted solutions.
  using SolutionHook = std::function<void(const Graph&, FlowSolution&)>;
  SolutionHook post_solve_hook;
};

/// Outcome of validate_instance: errors reject the instance outright,
/// warnings flag numerically suspicious (but solvable) data.
struct InstanceReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  bool ok() const { return errors.empty(); }
};

/// Pre-solve sanity checks: supply balance, bound sanity
/// (0 <= lower <= upper <= kInfFlow), cost magnitudes within kInfCost,
/// and an overflow-checked worst-case |cost|*capacity sum.
InstanceReport validate_instance(const Graph& g);

/// One solver attempt inside solve_robust, for diagnostics.
struct SolveAttempt {
  SolverKind solver = SolverKind::kSuccessiveShortestPaths;
  SolveStatus status = SolveStatus::kInfeasible;
  std::int64_t iterations = 0;  ///< Guard ticks consumed.
  double seconds = 0;           ///< Wall time of this attempt.
  bool certified = false;       ///< Passed the configured certification.
  int retry = 0;                ///< 0 = first run of this solver; N = Nth
                                ///< transient-failure re-run.
  std::string note;             ///< Why the attempt was rejected, if it was.
};

/// Verdict of the certification layer over the whole robust solve.
enum class CertificationVerdict {
  kNotRun,  ///< CertifyLevel::kNone, or no optimal answer to certify.
  kPassed,  ///< The returned answer passed every configured check.
  kFailed,  ///< Every solver's answer failed certification.
};

std::string to_string(CertificationVerdict verdict);

/// Everything solve_robust observed, for logs, reports and tests.
struct SolveDiagnostics {
  std::vector<std::string> instance_errors;
  std::vector<std::string> instance_warnings;
  std::vector<SolveAttempt> attempts;
  /// Solver whose answer was returned (valid when the returned status is
  /// kOptimal).
  SolverKind solver_used = SolverKind::kSuccessiveShortestPaths;
  /// Attempts beyond the first, certification re-solves included.
  int fallbacks_taken = 0;
  /// Transient-failure re-runs taken (see SolveOptions::max_retries_per_solver).
  int retries = 0;
  /// The cancel token stopped the solve (status kCancelled).
  bool cancelled = false;
  /// The wall clock — max_seconds_total or the deadline, not the
  /// iteration cap — ended the solve.
  bool deadline_hit = false;
  /// A MemoryBudget denial or a caught std::bad_alloc ended at least one
  /// attempt (see SolveOptions::memory_budget).
  bool memory_hit = false;
  /// Predicted peak footprint charged per attempt, in bytes (largest
  /// over the attempts; 0 when no budget was configured).
  std::int64_t memory_estimated_bytes = 0;
  /// Solvers skipped because their circuit breaker was open, as display
  /// names, in chain order.
  std::vector<std::string> breaker_skips;
  CertificationVerdict certification = CertificationVerdict::kNotRun;
  /// A warm-start resolve actually ran (the cache matched the topology).
  bool warm_start_attempted = false;
  /// The returned answer came from the warm-start path.
  bool warm_start_hit = false;
  /// A certified optimal answer was offered to the warm-start cache
  /// (only when SolveOptions::warm_cache was configured).
  bool warm_store_attempted = false;
  /// Typed outcome of that store: anything but kStored means the cache
  /// kept its previous entry and stayed cold for this topology — the
  /// ineffectiveness used to be silent; now it is counted
  /// (PerfCounters::warm_store_rejects) and noted here.
  WarmStoreOutcome warm_store = WarmStoreOutcome::kStored;
  /// Human-readable note when the store was rejected ("" when stored).
  std::string warm_store_note;
  /// The chain contained SolverKind::kAuto and the shape-based selector
  /// expanded it.
  bool auto_selected = false;
  /// Backend the selector picked (valid when auto_selected).
  SolverKind auto_choice = SolverKind::kSuccessiveShortestPaths;
  /// Instance features that drove the choice (InstanceShape::summary()).
  std::string auto_features;
  /// Solver performance counters for THIS solve (heap traffic,
  /// augmentations, per-phase nanoseconds; see workspace.hpp glossary).
  PerfCounters perf;
  double wall_seconds = 0;        ///< Whole robust solve, validation included.
  std::int64_t iterations = 0;    ///< Guard ticks summed over all attempts.
  std::string message;            ///< One-line human-readable outcome.

  /// Compact "status solver=... fallbacks=N cert=..." line for reports.
  std::string summary() const;
};

/// Validated + budgeted + certified min-cost flow solve. Never throws
/// and never trips solver-internal asserts on malformed instances:
/// those come back as kBadInstance, budget exhaustion as
/// kBudgetExceeded, and a chain whose every answer flunks certification
/// as kUncertified. \p diagnostics (optional) receives the full story.
FlowSolution solve_robust(const Graph& g, const SolveOptions& options = {},
                          SolveDiagnostics* diagnostics = nullptr);

/// solve_st_flow through the robust path: adds +/-value at s/t on a
/// copy of \p g and calls solve_robust.
FlowSolution solve_st_flow_robust(const Graph& g, NodeId s, NodeId t,
                                  Flow value,
                                  const SolveOptions& options = {},
                                  SolveDiagnostics* diagnostics = nullptr);

}  // namespace lera::netflow
