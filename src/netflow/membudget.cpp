#include "netflow/membudget.hpp"

#include "netflow/residual.hpp"
#include "netflow/workspace.hpp"

namespace lera::netflow {

namespace detail {

thread_local AllocTickHook t_alloc_tick_hook;

}  // namespace detail

namespace {

/// The estimator mirrors the real data structures byte for byte, so it
/// stays calibrated when a container changes size (the footprint test
/// checks it against measured capacities on the bench_solvers family).
/// Per-structure breakdown for an n-node / m-arc instance:
///
///   Residual      2m edges + 2m out ids + (n+1) offsets + cursor
///   Graph CSR     m out ids + m in ids + 2(n+1) offsets
///   SSP           NodeState/pi/excess per node, heap bounded by 2m
///   simplex       SoA arrays over m+n arcs (artificial root arcs
///                 included) + 8 per-node tree arrays
///   cost scaling  scaled costs per residual edge + 6 node arrays
///   cycle cancel  its own augmented residual (m+n arcs) + BF arrays
constexpr std::int64_t kSlack = 4096;  ///< vectors round up; keep a floor

std::int64_t residual_bytes(std::int64_t n, std::int64_t m) {
  return 2 * m * static_cast<std::int64_t>(sizeof(Residual::Edge)) +
         2 * m * static_cast<std::int64_t>(sizeof(int)) +
         2 * (n + 1) * static_cast<std::int64_t>(sizeof(int));
}

std::int64_t graph_csr_bytes(std::int64_t n, std::int64_t m) {
  return 2 * m * static_cast<std::int64_t>(sizeof(ArcId)) +
         2 * (n + 1) * static_cast<std::int64_t>(sizeof(ArcId));
}

std::int64_t ssp_bytes(std::int64_t n, std::int64_t m) {
  return n * static_cast<std::int64_t>(sizeof(SspScratch::NodeState)) +
         n * static_cast<std::int64_t>(sizeof(Cost)) +   // pi
         n * static_cast<std::int64_t>(sizeof(Flow)) +   // excess
         2 * m * static_cast<std::int64_t>(sizeof(SspScratch::HeapEntry)) +
         n * static_cast<std::int64_t>(sizeof(NodeId)) +  // sinks
         n * static_cast<std::int64_t>(sizeof(int)) +     // indegree
         n * static_cast<std::int64_t>(sizeof(NodeId));   // order
}

std::int64_t simplex_bytes(std::int64_t n, std::int64_t m) {
  // The simplex adds one artificial arc per node to its arc arrays.
  const std::int64_t ma = m + n;
  const std::int64_t per_arc =
      2 * static_cast<std::int64_t>(sizeof(NodeId)) +        // tail, head
      2 * static_cast<std::int64_t>(sizeof(Flow)) +          // cap, flow
      static_cast<std::int64_t>(sizeof(Cost)) +              // cost
      static_cast<std::int64_t>(sizeof(signed char));        // state
  const std::int64_t per_node =
      6 * static_cast<std::int64_t>(sizeof(NodeId)) +  // parent, depth,
                                                       // child x3, stack
      static_cast<std::int64_t>(sizeof(ArcId)) +       // pred_arc
      static_cast<std::int64_t>(sizeof(Cost));         // pi
  // Pivot-cycle buffers are bounded by the tree diameter (<= n) and the
  // candidate list by sqrt(m); both are inside the per-node slack below.
  return ma * per_arc + (n + 1) * per_node +
         n * (static_cast<std::int64_t>(sizeof(ArcId)) +
              static_cast<std::int64_t>(sizeof(signed char)) +
              static_cast<std::int64_t>(sizeof(NodeId)));
}

std::int64_t cost_scaling_bytes(std::int64_t n, std::int64_t m) {
  return 2 * m * static_cast<std::int64_t>(sizeof(Cost)) +  // scaled_cost
         n * (2 * static_cast<std::int64_t>(sizeof(Cost)) +  // pi, refine
              static_cast<std::int64_t>(sizeof(Flow)) +      // excess
              static_cast<std::int64_t>(sizeof(std::int32_t)) +  // current
              static_cast<std::int64_t>(sizeof(NodeId)) +        // active
              static_cast<std::int64_t>(sizeof(char)) +          // in_queue
              static_cast<std::int64_t>(sizeof(std::int32_t)));  // path
}

std::int64_t cycle_cancel_bytes(std::int64_t n, std::int64_t m) {
  // Builds an augmented graph (one extra node, m+n arcs) plus its own
  // residual and the Bellman-Ford arrays.
  const std::int64_t na = n + 1;
  const std::int64_t ma = m + n;
  return residual_bytes(na, ma) + graph_csr_bytes(na, ma) +
         na * (static_cast<std::int64_t>(sizeof(Cost)) +
               2 * static_cast<std::int64_t>(sizeof(std::int32_t)));
}

}  // namespace

std::int64_t estimate_solver_bytes(const InstanceShape& shape,
                                   SolverKind kind) {
  const std::int64_t n = shape.nodes;
  const std::int64_t m = shape.arcs;
  if (kind == SolverKind::kAuto) kind = select_solver(shape);
  std::int64_t scratch = 0;
  switch (kind) {
    case SolverKind::kSuccessiveShortestPaths:
      scratch = ssp_bytes(n, m);
      break;
    case SolverKind::kNetworkSimplex:
      scratch = simplex_bytes(n, m);
      break;
    case SolverKind::kCostScaling:
      // Cost scaling discharges over the residual and seeds potentials
      // through the SSP machinery's arrays.
      scratch = cost_scaling_bytes(n, m) + ssp_bytes(n, m);
      break;
    case SolverKind::kCycleCanceling:
      scratch = cycle_cancel_bytes(n, m);
      break;
    case SolverKind::kAuto:
      break;  // unreachable: expanded above
  }
  return residual_bytes(n, m) + graph_csr_bytes(n, m) + scratch + kSlack;
}

std::int64_t estimate_footprint(const InstanceShape& shape) {
  std::int64_t worst = 0;
  for (const SolverKind kind :
       {SolverKind::kSuccessiveShortestPaths, SolverKind::kNetworkSimplex,
        SolverKind::kCostScaling, SolverKind::kCycleCanceling}) {
    worst = std::max(worst, estimate_solver_bytes(shape, kind));
  }
  return worst;
}

}  // namespace lera::netflow
