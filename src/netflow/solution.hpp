#pragma once

#include <string>
#include <vector>

#include "netflow/types.hpp"

/// \file solution.hpp
/// Result types shared by all minimum-cost flow solvers.

namespace lera::netflow {

class Graph;

/// Outcome of a solve attempt.
enum class SolveStatus {
  kOptimal,     ///< An optimal feasible flow was found.
  kInfeasible,  ///< No flow satisfies the supplies / lower bounds.
};

/// Human-readable name of a status, for logs and test messages.
std::string to_string(SolveStatus status);

/// A (candidate) solution to a b-flow instance.
struct FlowSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Flow on every arc, indexed by ArcId of the input Graph. Empty when
  /// the instance is infeasible.
  std::vector<Flow> arc_flow;
  /// Total cost sum_a cost(a)*flow(a) of the returned flow.
  Cost cost = 0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Available algorithms. All produce identical (optimal) objective values;
/// they differ only in running time characteristics.
enum class SolverKind {
  kSuccessiveShortestPaths,  ///< Dijkstra-with-potentials augmentation.
  kCycleCanceling,           ///< Feasible flow + Bellman-Ford cycle cancel.
  kNetworkSimplex,           ///< Primal network simplex.
  kCostScaling,              ///< Goldberg-Tarjan epsilon-scaling.
};

std::string to_string(SolverKind kind);

/// Solves the b-flow instance described by \p g (supplies, lower bounds,
/// capacities, costs) to optimality.
///
/// Preconditions: g.total_supply() == 0 for feasibility; arcs may carry
/// negative costs and nonzero lower bounds.
FlowSolution solve(const Graph& g,
                   SolverKind kind = SolverKind::kSuccessiveShortestPaths);

/// Convenience wrapper for the classic fixed-value s-t flow problem used
/// by the paper (flow value F = number of registers R): sets
/// supply(s)=+F, supply(t)=-F on a copy of \p g and solves it.
FlowSolution solve_st_flow(const Graph& g, NodeId s, NodeId t, Flow value,
                           SolverKind kind = SolverKind::kSuccessiveShortestPaths);

}  // namespace lera::netflow
