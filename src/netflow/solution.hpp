#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "netflow/types.hpp"

/// \file solution.hpp
/// Result types shared by all minimum-cost flow solvers.

namespace lera::netflow {

class Graph;

/// Outcome of a solve attempt.
enum class SolveStatus {
  kOptimal,         ///< An optimal feasible flow was found.
  kInfeasible,      ///< No flow satisfies the supplies / lower bounds.
  kBadInstance,     ///< The instance violates a precondition (for example
                    ///< unbalanced supplies); nothing was solved.
  kBudgetExceeded,  ///< An iteration or wall-time budget ran out first.
  kUncertified,     ///< Every solver in a robust fallback chain produced
                    ///< an answer that failed independent certification;
                    ///< the returned flow must not be trusted.
};

/// Human-readable name of a status, for logs and test messages.
std::string to_string(SolveStatus status);

/// A (candidate) solution to a b-flow instance.
struct FlowSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Flow on every arc, indexed by ArcId of the input Graph. Empty when
  /// the instance is infeasible / rejected / out of budget.
  std::vector<Flow> arc_flow;
  /// Total cost sum_a cost(a)*flow(a) of the returned flow.
  Cost cost = 0;
  /// Diagnostic for kBadInstance / kBudgetExceeded outcomes ("" for the
  /// ordinary optimal and infeasible verdicts).
  std::string message;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Cooperative budget for one solver run. Solvers call tick() once per
/// major iteration (SSP augmentation, simplex pivot, cycle cancellation,
/// push-relabel discharge) and abandon the run with kBudgetExceeded when
/// it returns false. Zero limits mean "unlimited"; the wall clock is
/// polled only every 256 ticks to keep the guard off the hot path.
struct SolveGuard {
  std::int64_t max_iterations = 0;  ///< 0 = unlimited.
  double max_seconds = 0;           ///< 0 = unlimited (wall clock).

  std::int64_t iterations = 0;  ///< Out: iterations consumed so far.
  bool exceeded = false;        ///< Out: true once a limit tripped.

  /// Stamps the reference point for max_seconds. Called by solve().
  void start() { start_time_ = std::chrono::steady_clock::now(); }

  /// Accounts one iteration; false once any budget is exhausted.
  bool tick() {
    if (exceeded) return false;
    ++iterations;
    if (max_iterations > 0 && iterations > max_iterations) {
      exceeded = true;
      return false;
    }
    if (max_seconds > 0 && iterations % 256 == 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
                .count() > max_seconds) {
      exceeded = true;
      return false;
    }
    return true;
  }

 private:
  std::chrono::steady_clock::time_point start_time_{
      std::chrono::steady_clock::now()};
};

/// Available algorithms. All produce identical (optimal) objective values;
/// they differ only in running time characteristics.
enum class SolverKind {
  kSuccessiveShortestPaths,  ///< Dijkstra-with-potentials augmentation.
  kCycleCanceling,           ///< Feasible flow + Bellman-Ford cycle cancel.
  kNetworkSimplex,           ///< Primal network simplex.
  kCostScaling,              ///< Goldberg-Tarjan epsilon-scaling.
};

std::string to_string(SolverKind kind);

/// Solves the b-flow instance described by \p g (supplies, lower bounds,
/// capacities, costs) to optimality.
///
/// Unbalanced instances (g.total_supply() != 0) are rejected with
/// kBadInstance; arcs may carry negative costs and nonzero lower bounds.
/// An optional \p guard imposes iteration / wall-time budgets on the run
/// (kBudgetExceeded when they run out).
FlowSolution solve(const Graph& g,
                   SolverKind kind = SolverKind::kSuccessiveShortestPaths,
                   SolveGuard* guard = nullptr);

/// Convenience wrapper for the classic fixed-value s-t flow problem used
/// by the paper (flow value F = number of registers R): sets
/// supply(s)=+F, supply(t)=-F on a copy of \p g and solves it.
FlowSolution solve_st_flow(const Graph& g, NodeId s, NodeId t, Flow value,
                           SolverKind kind = SolverKind::kSuccessiveShortestPaths,
                           SolveGuard* guard = nullptr);

}  // namespace lera::netflow
