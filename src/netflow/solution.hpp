#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "netflow/cancel.hpp"
#include "netflow/types.hpp"

/// \file solution.hpp
/// Result types shared by all minimum-cost flow solvers.

namespace lera::netflow {

class Graph;
struct SolverWorkspace;

/// Outcome of a solve attempt.
enum class SolveStatus {
  kOptimal,         ///< An optimal feasible flow was found.
  kInfeasible,      ///< No flow satisfies the supplies / lower bounds.
  kBadInstance,     ///< The instance violates a precondition (for example
                    ///< unbalanced supplies); nothing was solved.
  kBudgetExceeded,  ///< An iteration or wall-time budget ran out first.
  kUncertified,     ///< Every solver in a robust fallback chain produced
                    ///< an answer that failed independent certification;
                    ///< the returned flow must not be trusted.
  kCancelled,       ///< A CancelToken fired: the caller withdrew the
                    ///< request (session cancel, engine shutdown); the
                    ///< run wound down cooperatively, nothing is wrong
                    ///< with the instance or the solver.
  kMemoryExceeded,  ///< A MemoryBudget refused the solve's predicted
                    ///< footprint, or an allocation actually failed
                    ///< (std::bad_alloc caught at the solve boundary);
                    ///< either way a typed verdict, never a crash.
};

/// Human-readable name of a status, for logs and test messages.
std::string to_string(SolveStatus status);

/// A (candidate) solution to a b-flow instance.
struct FlowSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Flow on every arc, indexed by ArcId of the input Graph. Empty when
  /// the instance is infeasible / rejected / out of budget.
  std::vector<Flow> arc_flow;
  /// Total cost sum_a cost(a)*flow(a) of the returned flow.
  Cost cost = 0;
  /// Diagnostic for kBadInstance / kBudgetExceeded outcomes ("" for the
  /// ordinary optimal and infeasible verdicts).
  std::string message;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Cooperative budget for one solver run. Solvers call tick() once per
/// major iteration (SSP augmentation, simplex pivot, cycle cancellation,
/// push-relabel discharge) and abandon the run with kBudgetExceeded when
/// it returns false. Zero limits mean "unlimited".
///
/// The wall clock (and the cancel token) is polled adaptively: the poll
/// stride starts at one iteration and doubles up to 256, and each poll
/// re-plans the next one from the measured per-iteration cost so that at
/// most ~half the remaining budget can elapse between polls. Fast
/// iterations therefore pay one clock read per 256 ticks in steady
/// state, while slow iterations (milliseconds each) get per-tick polling
/// near the budget — a 10 ms budget stops within a small multiple of
/// 10 ms either way, which the old fixed every-256-ticks poll could not
/// guarantee.
struct SolveGuard {
  std::int64_t max_iterations = 0;  ///< 0 = unlimited.
  double max_seconds = 0;           ///< 0 = unlimited (wall clock).
  /// Optional cooperative cancellation: when the token fires, tick()
  /// returns false at the next poll and `cancelled` is set, so every
  /// solver in the system is cancellable mid-run.
  CancelToken cancel;

  std::int64_t iterations = 0;  ///< Out: iterations consumed so far.
  bool exceeded = false;        ///< Out: true once a limit tripped.
  bool cancelled = false;       ///< Out: the cancel token (not a budget)
                                ///< stopped the run.
  bool time_exceeded = false;   ///< Out: the wall clock (not iterations)
                                ///< tripped the budget.

  /// Stamps the reference point for max_seconds. Called by solve().
  void start() {
    start_time_ = std::chrono::steady_clock::now();
    next_poll_ = 1;
    stride_ = 1;
  }

  /// Accounts one iteration; false once any budget is exhausted or the
  /// cancel token fired.
  bool tick() {
    if (exceeded) return false;
    ++iterations;
    if (max_iterations > 0 && iterations > max_iterations) {
      exceeded = true;
      return false;
    }
    if (iterations >= next_poll_) return poll();
    return true;
  }

 private:
  static constexpr std::int64_t kMaxStride = 256;

  /// Slow path of tick(): checks the token and the clock, then plans the
  /// next poll.
  bool poll() {
    if (cancel.cancelled()) {
      cancelled = true;
      exceeded = true;
      return false;
    }
    if (max_seconds <= 0) {
      // Nothing time-based to watch; keep a fixed stride for the token
      // (or stop polling entirely when there is no token either).
      next_poll_ = cancel.valid()
                       ? iterations + kMaxStride
                       : std::numeric_limits<std::int64_t>::max();
      return true;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count();
    const double remaining = max_seconds - elapsed;
    if (remaining <= 0) {
      time_exceeded = true;
      exceeded = true;
      return false;
    }
    // Exponential ramp bounded by the time-based estimate: never let
    // more than ~half the remaining budget pass before the next poll.
    stride_ = std::min(stride_ * 2, kMaxStride);
    if (elapsed > 0 && iterations > 0) {
      const double per_tick = elapsed / static_cast<double>(iterations);
      const double bound = remaining / (2.0 * per_tick);
      if (bound < static_cast<double>(stride_)) {
        stride_ = bound < 1.0 ? 1 : static_cast<std::int64_t>(bound);
      }
    }
    next_poll_ = iterations + stride_;
    return true;
  }

  std::chrono::steady_clock::time_point start_time_{
      std::chrono::steady_clock::now()};
  std::int64_t next_poll_ = 1;
  std::int64_t stride_ = 1;
};

/// Available algorithms. All produce identical (optimal) objective values;
/// they differ only in running time characteristics.
enum class SolverKind {
  kSuccessiveShortestPaths,  ///< Dijkstra-with-potentials augmentation.
  kCycleCanceling,           ///< Feasible flow + Bellman-Ford cycle cancel.
  kNetworkSimplex,           ///< Primal network simplex.
  kCostScaling,              ///< Goldberg-Tarjan epsilon-scaling.
  kAuto,                     ///< Shape-based selection among the above:
                             ///< measures node/arc counts, density and
                             ///< supply volume, then dispatches to the
                             ///< backend the calibration says wins there
                             ///< (see select_solver in robust.hpp).
};

std::string to_string(SolverKind kind);

/// Solves the b-flow instance described by \p g (supplies, lower bounds,
/// capacities, costs) to optimality.
///
/// Unbalanced instances (g.total_supply() != 0) are rejected with
/// kBadInstance; arcs may carry negative costs and nonzero lower bounds.
/// An optional \p guard imposes iteration / wall-time budgets on the run
/// (kBudgetExceeded when they run out). An optional \p ws lends the
/// solver reusable scratch storage (see workspace.hpp); passing one
/// never changes the result, only allocation behavior.
FlowSolution solve(const Graph& g,
                   SolverKind kind = SolverKind::kSuccessiveShortestPaths,
                   SolveGuard* guard = nullptr, SolverWorkspace* ws = nullptr);

/// Convenience wrapper for the classic fixed-value s-t flow problem used
/// by the paper (flow value F = number of registers R): sets
/// supply(s)=+F, supply(t)=-F on a copy of \p g and solves it.
FlowSolution solve_st_flow(const Graph& g, NodeId s, NodeId t, Flow value,
                           SolverKind kind = SolverKind::kSuccessiveShortestPaths,
                           SolveGuard* guard = nullptr,
                           SolverWorkspace* ws = nullptr);

}  // namespace lera::netflow
