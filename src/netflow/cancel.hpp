#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

/// \file cancel.hpp
/// Cooperative cancellation and wall-clock deadlines, shared by every
/// layer of the solve stack. A CancelToken is a copyable handle to a
/// shared flag: the owner calls request_cancel(), and anything polling
/// the token (SolveGuard::tick(), the engine's task loops, queued
/// Session jobs) winds down at its next check instead of blocking to
/// completion. Tokens chain: a child token reports cancelled when any
/// ancestor is, which is how one Engine-wide shutdown token fans out to
/// per-session and per-ticket tokens without bookkeeping.
///
/// A Deadline is an absolute point on the steady clock (never the wall
/// clock of the calendar, which can jump). Layers combine deadlines by
/// taking the earlier one and convert to "remaining seconds" right
/// before arming a SolveGuard.

namespace lera::netflow {

/// Copyable, thread-safe cancellation handle. A default-constructed
/// token is inert: it never reports cancelled and request_cancel() on it
/// is a no-op. Use CancelToken::make() for a live token and child() to
/// derive tokens that inherit an ancestor's cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  /// Fresh, independently cancellable token.
  static CancelToken make() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// Token that is cancelled when either it or this (or any ancestor of
  /// this) is cancelled. Calling child() on an inert token returns a
  /// fresh independent token.
  CancelToken child() const {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    t.state_->parent = state_;
    return t;
  }

  /// Requests cancellation; sticky and idempotent. Safe from any thread.
  void request_cancel() {
    if (state_ != nullptr) {
      state_->flag.store(true, std::memory_order_release);
    }
  }

  /// True once this token or any ancestor was cancelled.
  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// False for the inert default token (which can never fire).
  bool valid() const { return state_ != nullptr; }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<const State> parent;
  };
  std::shared_ptr<State> state_;
};

/// Absolute steady-clock deadline. Default-constructed = unlimited.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline \p seconds from now. Non-positive seconds produce an
  /// already-expired deadline, not an unlimited one — callers encode
  /// "no deadline" by not constructing one.
  static Deadline after(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = when;
    return d;
  }

  /// The earlier of two deadlines (unlimited acts as +infinity).
  static Deadline earlier(const Deadline& a, const Deadline& b) {
    if (a.unlimited_) return b;
    if (b.unlimited_) return a;
    return a.at_ < b.at_ ? a : b;
  }

  bool unlimited() const { return unlimited_; }

  bool expired() const { return !unlimited_ && Clock::now() >= at_; }

  /// Seconds until expiry: +infinity when unlimited, <= 0 once expired.
  double remaining_seconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  bool unlimited_ = true;
  Clock::time_point at_{};
};

}  // namespace lera::netflow
