#pragma once

#include "netflow/graph.hpp"
#include "netflow/solution.hpp"

/// \file internal_solvers.hpp
/// Entry points of the individual algorithms. All require an instance
/// with zero lower bounds (use remove_lower_bounds() first); the public
/// solve() wrapper in solution.hpp takes care of that, and of rejecting
/// unbalanced instances. Each solver honours an optional SolveGuard by
/// ticking it once per major iteration and returning kBudgetExceeded
/// when it trips.

namespace lera::netflow::internal {

/// Returns the canonical budget-exhausted verdict.
FlowSolution budget_exceeded(SolverKind kind);

/// Successive shortest paths with node potentials. Negative-cost arcs
/// are pre-saturated so Dijkstra applies throughout.
FlowSolution solve_ssp(const Graph& g, SolveGuard* guard = nullptr);

/// Establishes any feasible flow with Dinic, then cancels Bellman-Ford
/// negative cycles until optimal. Slow; used as a cross-check.
FlowSolution solve_cycle_canceling(const Graph& g,
                                   SolveGuard* guard = nullptr);

/// Primal network simplex with an artificial root and strongly feasible
/// pivoting.
FlowSolution solve_network_simplex(const Graph& g,
                                   SolveGuard* guard = nullptr);

/// Goldberg-Tarjan cost-scaling push-relabel.
FlowSolution solve_cost_scaling(const Graph& g, SolveGuard* guard = nullptr);

}  // namespace lera::netflow::internal
