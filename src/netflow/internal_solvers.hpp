#pragma once

#include "netflow/graph.hpp"
#include "netflow/solution.hpp"

/// \file internal_solvers.hpp
/// Entry points of the individual algorithms. All require an instance
/// with zero lower bounds (use remove_lower_bounds() first); the public
/// solve() wrapper in solution.hpp takes care of that.

namespace lera::netflow::internal {

/// Successive shortest paths with node potentials. Negative-cost arcs
/// are pre-saturated so Dijkstra applies throughout.
FlowSolution solve_ssp(const Graph& g);

/// Establishes any feasible flow with Dinic, then cancels Bellman-Ford
/// negative cycles until optimal. Slow; used as a cross-check.
FlowSolution solve_cycle_canceling(const Graph& g);

/// Primal network simplex with an artificial root and strongly feasible
/// pivoting.
FlowSolution solve_network_simplex(const Graph& g);

/// Goldberg-Tarjan cost-scaling push-relabel.
FlowSolution solve_cost_scaling(const Graph& g);

}  // namespace lera::netflow::internal
