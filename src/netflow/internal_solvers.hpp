#pragma once

#include "netflow/graph.hpp"
#include "netflow/solution.hpp"
#include "netflow/workspace.hpp"

/// \file internal_solvers.hpp
/// Entry points of the individual algorithms. All require an instance
/// with zero lower bounds (use remove_lower_bounds() first); the public
/// solve() wrapper in solution.hpp takes care of that, and of rejecting
/// unbalanced instances. Each solver honours an optional SolveGuard by
/// ticking it once per major iteration and returning kBudgetExceeded
/// when it trips, and an optional SolverWorkspace whose scratch arrays
/// it reuses instead of allocating (results are identical either way).

namespace lera::netflow::internal {

/// Returns the canonical budget-exhausted verdict.
FlowSolution budget_exceeded(SolverKind kind);

/// Successive shortest paths with node potentials. Negative-cost arcs
/// are pre-saturated so Dijkstra applies throughout.
FlowSolution solve_ssp(const Graph& g, SolveGuard* guard = nullptr,
                       SolverWorkspace* ws = nullptr);

/// Drains every positive excess in \p res to a deficit node via
/// successive shortest augmenting paths over reduced costs. Shared by
/// solve_ssp and the warm-start resolve. On entry ws.ssp.excess holds
/// the node imbalances and ws.ssp.pi valid potentials (all residual
/// reduced costs non-negative); ws.ssp.prepare() must have run for
/// res.num_nodes(). Returns kOptimal once balanced, kInfeasible when an
/// excess cannot reach a deficit, or kBudgetExceeded.
///
/// \p max_sinks_per_round caps how many settled deficit nodes a single
/// Dijkstra round augments to (from one shortest-path forest, potentials
/// stay valid throughout). 1 is the canonical early-exit-at-nearest
/// order the differential tests pin down; the warm-start resolve passes
/// more because its saturation repair scatters many small excesses whose
/// deficits cluster inside one search radius. Values > 1 may legally
/// pick a different equal-cost optimum.
SolveStatus ssp_drain(Residual& res, SolveGuard* guard, SolverWorkspace& ws,
                      int max_sinks_per_round = 1);

/// Establishes any feasible flow with Dinic, then cancels Bellman-Ford
/// negative cycles until optimal. Slow; used as a cross-check.
FlowSolution solve_cycle_canceling(const Graph& g, SolveGuard* guard = nullptr,
                                   SolverWorkspace* ws = nullptr);

/// Primal network simplex with an artificial root and strongly feasible
/// pivoting.
FlowSolution solve_network_simplex(const Graph& g, SolveGuard* guard = nullptr,
                                   SolverWorkspace* ws = nullptr);

/// Goldberg-Tarjan cost-scaling push-relabel.
FlowSolution solve_cost_scaling(const Graph& g, SolveGuard* guard = nullptr,
                                SolverWorkspace* ws = nullptr);

}  // namespace lera::netflow::internal
