#pragma once

#include <span>

#include "netflow/graph.hpp"
#include "netflow/solution.hpp"
#include "netflow/workspace.hpp"

/// \file internal_solvers.hpp
/// The solver-backend registry and the entry points of the individual
/// algorithms. All require an instance with zero lower bounds (use
/// remove_lower_bounds() first); the public solve() wrapper in
/// solution.hpp takes care of that, and of rejecting unbalanced
/// instances. Each backend honours an optional SolveGuard by ticking it
/// once per major iteration and returning kBudgetExceeded when it
/// trips, and reuses the scratch arrays of the SolverWorkspace it is
/// handed instead of allocating (results are identical either way).

namespace lera::netflow::internal {

/// Returns the canonical budget-exhausted verdict.
FlowSolution budget_exceeded(SolverKind kind);

/// One registered algorithm. The workspace reference is mandatory at
/// this layer: "no workspace" has already been resolved to a throwaway
/// local arena by the public wrappers, so backends never carry their own
/// fallback plumbing. Everything that runs a solver — solve()'s
/// dispatch, solve_robust's fallback chain, the circuit breaker's kind
/// enumeration, and the kAuto selector — routes through this table.
struct SolverBackend {
  SolverKind kind;
  /// Stable short name for flags and logs ("ssp", "simplex", ...).
  const char* name;
  FlowSolution (*fn)(const Graph& g, SolveGuard* guard, SolverWorkspace& ws);
};

/// Every concrete backend, in SolverKind declaration order. kAuto is a
/// selection policy, not an algorithm, and never appears here.
std::span<const SolverBackend> solver_backends();

/// Registry lookup; nullptr for kAuto (resolve it first via
/// select_solver) and for out-of-range kinds.
const SolverBackend* find_backend(SolverKind kind);

/// Successive shortest paths with node potentials. Negative-cost arcs
/// are pre-saturated so Dijkstra applies throughout.
FlowSolution run_ssp(const Graph& g, SolveGuard* guard, SolverWorkspace& ws);

/// Establishes any feasible flow with Dinic, then cancels Bellman-Ford
/// negative cycles until optimal. Slow; used as a cross-check.
FlowSolution run_cycle_canceling(const Graph& g, SolveGuard* guard,
                                 SolverWorkspace& ws);

/// Primal network simplex with an artificial root, strongly feasible
/// pivoting, and a candidate-list block-search pivot rule.
FlowSolution run_network_simplex(const Graph& g, SolveGuard* guard,
                                 SolverWorkspace& ws);

/// Cost-scaling push-relabel with partial augment-relabel and a price
/// refinement pass between scaling phases.
FlowSolution run_cost_scaling(const Graph& g, SolveGuard* guard,
                              SolverWorkspace& ws);

/// Drains every positive excess in \p res to a deficit node via
/// successive shortest augmenting paths over reduced costs. Shared by
/// run_ssp and the warm-start resolve. On entry ws.ssp.excess holds
/// the node imbalances and ws.ssp.pi valid potentials (all residual
/// reduced costs non-negative); ws.ssp.prepare() must have run for
/// res.num_nodes(). Returns kOptimal once balanced, kInfeasible when an
/// excess cannot reach a deficit, or kBudgetExceeded.
///
/// \p max_sinks_per_round caps how many settled deficit nodes a single
/// Dijkstra round augments to (from one shortest-path forest, potentials
/// stay valid throughout). 1 is the canonical early-exit-at-nearest
/// order the differential tests pin down; the warm-start resolve passes
/// more because its saturation repair scatters many small excesses whose
/// deficits cluster inside one search radius. Values > 1 may legally
/// pick a different equal-cost optimum.
SolveStatus ssp_drain(Residual& res, SolveGuard* guard, SolverWorkspace& ws,
                      int max_sinks_per_round = 1);

/// Thin pointer-taking wrappers around the registry entries, kept for
/// one release for callers predating SolverBackend. A null workspace is
/// resolved to a throwaway local arena.
FlowSolution solve_ssp(const Graph& g, SolveGuard* guard = nullptr,
                       SolverWorkspace* ws = nullptr);
FlowSolution solve_cycle_canceling(const Graph& g, SolveGuard* guard = nullptr,
                                   SolverWorkspace* ws = nullptr);
FlowSolution solve_network_simplex(const Graph& g, SolveGuard* guard = nullptr,
                                   SolverWorkspace* ws = nullptr);
FlowSolution solve_cost_scaling(const Graph& g, SolveGuard* guard = nullptr,
                                SolverWorkspace* ws = nullptr);

}  // namespace lera::netflow::internal
