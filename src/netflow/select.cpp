#include "netflow/select.hpp"

#include "netflow/graph.hpp"

namespace lera::netflow {

namespace {

/// Calibrated crossover points (bench_solvers --smoke, BENCH_pr7.json,
/// single-core Release; see DESIGN.md for the measured curves).
///
/// The measured picture is simpler than the classical "SSP for small
/// supply" folklore: with negative costs present, SSP pays an O(n*m)
/// Bellman-Ford (or a saturation wave) before its first augmentation,
/// which buried it on every benched class (6.5 s vs simplex's 0.2 s on
/// 32k arcs even at supply 16). Simplex's candidate-list pivoting won
/// everywhere except the large sparse negative-cost classes with small
/// supply, where cost scaling's phase structure took over (2.2 s vs
/// 3.5 s at 128k arcs / supply 32). SSP earns its slot only when a warm
/// cache primes its drain path — which the allocator's inner loops hit
/// constantly.

/// Below this arc count the simplex's per-pivot costs are tiny and its
/// scratch arrays stay cache-resident; nothing else was ever close on
/// the 12..4k-arc allocation shapes.
constexpr std::int64_t kSmallInstanceArcs = 4096;

/// Cost scaling only overtakes simplex on genuinely large graphs: at
/// 32k arcs simplex still won every supply level benched, at 128k arcs
/// cost scaling won the small-supply classes.
constexpr std::int64_t kCostScalingMinArcs = 65536;

/// ...and only while the supply stays below ~one unit per sixteen
/// nodes: at 128k arcs cost scaling won supply 32 and 512 (2.2 s and
/// 3.9 s vs simplex's 3.5 s and 5.2 s) but lost supply 2048 (14.6 s vs
/// 11.9 s), i.e. the crossover sits between n/64 and n/16.
constexpr Flow kCostScalingSupplyPerNodeNum = 1;
constexpr Flow kCostScalingSupplyPerNodeDen = 16;

}  // namespace

std::string InstanceShape::summary() const {
  std::string out = "nodes=" + std::to_string(nodes);
  out += " arcs=" + std::to_string(arcs);
  out += " arcs_per_node=" + std::to_string(arcs_per_node);
  out += " supply_volume=" + std::to_string(supply_volume);
  out += " supply_nodes=" + std::to_string(supply_nodes);
  out += negative_costs ? " negative_costs=1" : " negative_costs=0";
  out += warm_cache_match ? " warm_cache_match=1" : " warm_cache_match=0";
  return out;
}

InstanceShape measure_shape(const Graph& g) {
  InstanceShape shape;
  shape.nodes = g.num_nodes();
  shape.arcs = g.num_arcs();
  shape.arcs_per_node =
      shape.nodes > 0
          ? static_cast<double>(shape.arcs) / static_cast<double>(shape.nodes)
          : 0.0;
  for (NodeId v = 0; v < shape.nodes; ++v) {
    const Flow b = g.supply(v);
    if (b != 0) ++shape.supply_nodes;
    if (b > 0) shape.supply_volume += b;
  }
  shape.negative_costs = g.has_negative_costs();
  return shape;
}

SolverKind select_solver(const InstanceShape& shape) {
  // A matching warm-cache entry means the resolve path (SSP's drain on
  // repaired potentials) is primed; keep the cold fallback on the same
  // machinery so its scratch and its equal-cost tie-breaks line up.
  if (shape.warm_cache_match) return SolverKind::kSuccessiveShortestPaths;

  // Small instances: simplex constants win and nothing else matters.
  if (shape.arcs <= kSmallInstanceArcs) return SolverKind::kNetworkSimplex;

  // Large sparse negative-cost instances with little supply to route:
  // cost scaling's eps-phases beat the simplex's pivot stream, and SSP
  // is out of the running entirely (its Bellman-Ford prologue alone
  // outweighs a full cost-scaling run).
  const Flow cs_limit =
      (static_cast<Flow>(shape.nodes) * kCostScalingSupplyPerNodeNum) /
      kCostScalingSupplyPerNodeDen;
  if (shape.negative_costs && shape.arcs >= kCostScalingMinArcs &&
      shape.supply_volume < cs_limit) {
    return SolverKind::kCostScaling;
  }

  // Everything else: block-search simplex is the measured all-rounder.
  return SolverKind::kNetworkSimplex;
}

}  // namespace lera::netflow
