#include "netflow/graph.hpp"

#include <numeric>

#include "netflow/membudget.hpp"

namespace lera::netflow {

namespace {
// Fold the overflow lists back into flat CSR once they hold more than
// this share of all arcs (plus a small absolute slack so tiny graphs
// never thrash). Keeps interleaved build/query/mutate amortized O(1)
// per added arc.
constexpr ArcId kOverflowSlack = 64;
}  // namespace

void Graph::reserve_nodes(NodeId n) {
  assert(n >= 0);
  supply_.reserve(static_cast<std::size_t>(n));
}

void Graph::reserve_arcs(ArcId m) {
  assert(m >= 0);
  arcs_.reserve(static_cast<std::size_t>(m));
}

NodeId Graph::add_node(std::string name) {
  supply_.push_back(0);
  const NodeId id = num_nodes() - 1;
  if (!name.empty()) set_node_name(id, std::move(name));
  return id;
}

NodeId Graph::add_nodes(NodeId n) {
  assert(n >= 0);
  const NodeId first = num_nodes();
  supply_.resize(supply_.size() + static_cast<std::size_t>(n), 0);
  return first;
}

ArcId Graph::add_arc(NodeId tail, NodeId head, Flow upper, Cost cost,
                     Flow lower) {
  assert(tail >= 0 && tail < num_nodes());
  assert(head >= 0 && head < num_nodes());
  assert(lower >= 0 && lower <= upper);
  arcs_.push_back(Arc{tail, head, lower, upper, cost});
  has_lower_bounds_ = has_lower_bounds_ || lower > 0;
  has_negative_costs_ = has_negative_costs_ || cost < 0;
  const ArcId a = num_arcs() - 1;
  if (adjacency_valid_) note_arc_added(a);
  return a;
}

const std::string& Graph::node_name(NodeId v) const {
  assert(v >= 0 && v < num_nodes());
  static const std::string kUnnamed;
  const auto i = static_cast<std::size_t>(v);
  return i < names_.size() ? names_[i] : kUnnamed;
}

void Graph::set_node_name(NodeId v, std::string name) {
  assert(v >= 0 && v < num_nodes());
  const auto i = static_cast<std::size_t>(v);
  if (i >= names_.size()) {
    if (name.empty()) return;
    names_.resize(i + 1);
  }
  names_[i] = std::move(name);
}

Flow Graph::total_supply() const {
  return std::accumulate(supply_.begin(), supply_.end(), Flow{0});
}

void Graph::note_arc_added(ArcId a) {
  ++overflow_arcs_;
  if (overflow_arcs_ > kOverflowSlack && overflow_arcs_ > num_arcs() / 4) {
    // Overflow got big; drop the cache and let the next query rebuild.
    adjacency_valid_ = false;
    overflow_out_.clear();
    overflow_in_.clear();
    overflow_arcs_ = 0;
    return;
  }
  const auto n = static_cast<std::size_t>(num_nodes());
  if (overflow_out_.size() < n) {
    overflow_out_.resize(n);
    overflow_in_.resize(n);
  }
  const Arc& arc = arcs_[static_cast<std::size_t>(a)];
  overflow_out_[static_cast<std::size_t>(arc.tail)].push_back(a);
  overflow_in_[static_cast<std::size_t>(arc.head)].push_back(a);
}

void Graph::ensure_adjacency() const {
  if (adjacency_valid_) return;
  const auto n = static_cast<std::size_t>(num_nodes());
  const auto m = static_cast<std::size_t>(num_arcs());
  detail::alloc_tick(
      static_cast<std::int64_t>((2 * (n + 1) + 4 * m) * sizeof(ArcId)));
  // Two-pass counting build: degree histogram, prefix sums, then a fill
  // pass in arc order so each node's ids keep insertion order.
  first_out_.assign(n + 1, 0);
  first_in_.assign(n + 1, 0);
  for (const Arc& arc : arcs_) {
    ++first_out_[static_cast<std::size_t>(arc.tail) + 1];
    ++first_in_[static_cast<std::size_t>(arc.head) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    first_out_[v + 1] += first_out_[v];
    first_in_[v + 1] += first_in_[v];
  }
  out_ids_.resize(m);
  in_ids_.resize(m);
  std::vector<ArcId> out_cursor(first_out_.begin(), first_out_.end() - 1);
  std::vector<ArcId> in_cursor(first_in_.begin(), first_in_.end() - 1);
  for (ArcId a = 0; a < num_arcs(); ++a) {
    const Arc& arc = arcs_[static_cast<std::size_t>(a)];
    out_ids_[static_cast<std::size_t>(
        out_cursor[static_cast<std::size_t>(arc.tail)]++)] = a;
    in_ids_[static_cast<std::size_t>(
        in_cursor[static_cast<std::size_t>(arc.head)]++)] = a;
  }
  csr_nodes_ = num_nodes();
  csr_arcs_ = num_arcs();
  overflow_out_.clear();
  overflow_in_.clear();
  overflow_arcs_ = 0;
  adjacency_valid_ = true;
}

std::int64_t Graph::footprint_bytes() const {
  std::int64_t bytes = static_cast<std::int64_t>(
      arcs_.capacity() * sizeof(Arc) + supply_.capacity() * sizeof(Flow) +
      (first_out_.capacity() + out_ids_.capacity() + first_in_.capacity() +
       in_ids_.capacity()) *
          sizeof(ArcId));
  for (const std::vector<ArcId>& v : overflow_out_) {
    bytes += static_cast<std::int64_t>(v.capacity() * sizeof(ArcId));
  }
  for (const std::vector<ArcId>& v : overflow_in_) {
    bytes += static_cast<std::int64_t>(v.capacity() * sizeof(ArcId));
  }
  return bytes;
}

Graph::ArcRange Graph::out_arcs(NodeId v) const {
  assert(v >= 0 && v < num_nodes());
  ensure_adjacency();
  const auto i = static_cast<std::size_t>(v);
  const ArcId* seg = nullptr;
  std::size_t seg_size = 0;
  if (v < csr_nodes_) {
    seg = out_ids_.data() + first_out_[i];
    seg_size = static_cast<std::size_t>(first_out_[i + 1] - first_out_[i]);
  }
  const std::vector<ArcId>* extra =
      i < overflow_out_.size() ? &overflow_out_[i] : nullptr;
  return ArcRange(seg, seg_size, extra);
}

Graph::ArcRange Graph::in_arcs(NodeId v) const {
  assert(v >= 0 && v < num_nodes());
  ensure_adjacency();
  const auto i = static_cast<std::size_t>(v);
  const ArcId* seg = nullptr;
  std::size_t seg_size = 0;
  if (v < csr_nodes_) {
    seg = in_ids_.data() + first_in_[i];
    seg_size = static_cast<std::size_t>(first_in_[i + 1] - first_in_[i]);
  }
  const std::vector<ArcId>* extra =
      i < overflow_in_.size() ? &overflow_in_[i] : nullptr;
  return ArcRange(seg, seg_size, extra);
}

}  // namespace lera::netflow
