#include "netflow/graph.hpp"

#include <numeric>

namespace lera::netflow {

NodeId Graph::add_node(std::string name) {
  supply_.push_back(0);
  names_.push_back(std::move(name));
  adjacency_valid_ = false;
  return num_nodes() - 1;
}

NodeId Graph::add_nodes(NodeId n) {
  assert(n >= 0);
  const NodeId first = num_nodes();
  supply_.resize(supply_.size() + static_cast<std::size_t>(n), 0);
  names_.resize(names_.size() + static_cast<std::size_t>(n));
  adjacency_valid_ = false;
  return first;
}

ArcId Graph::add_arc(NodeId tail, NodeId head, Flow upper, Cost cost,
                     Flow lower) {
  assert(tail >= 0 && tail < num_nodes());
  assert(head >= 0 && head < num_nodes());
  assert(lower >= 0 && lower <= upper);
  arcs_.push_back(Arc{tail, head, lower, upper, cost});
  has_lower_bounds_ = has_lower_bounds_ || lower > 0;
  has_negative_costs_ = has_negative_costs_ || cost < 0;
  adjacency_valid_ = false;
  return num_arcs() - 1;
}

Flow Graph::total_supply() const {
  return std::accumulate(supply_.begin(), supply_.end(), Flow{0});
}

void Graph::ensure_adjacency() const {
  if (adjacency_valid_) return;
  out_.assign(supply_.size(), {});
  in_.assign(supply_.size(), {});
  for (ArcId a = 0; a < num_arcs(); ++a) {
    const Arc& arc = arcs_[static_cast<std::size_t>(a)];
    out_[static_cast<std::size_t>(arc.tail)].push_back(a);
    in_[static_cast<std::size_t>(arc.head)].push_back(a);
  }
  adjacency_valid_ = true;
}

const std::vector<ArcId>& Graph::out_arcs(NodeId v) const {
  assert(v >= 0 && v < num_nodes());
  ensure_adjacency();
  return out_[static_cast<std::size_t>(v)];
}

const std::vector<ArcId>& Graph::in_arcs(NodeId v) const {
  assert(v >= 0 && v < num_nodes());
  ensure_adjacency();
  return in_[static_cast<std::size_t>(v)];
}

}  // namespace lera::netflow
