#include "netflow/residual.hpp"

namespace lera::netflow {

Residual::Residual(const Graph& g) : num_nodes_(g.num_nodes()) {
  assert(!g.has_lower_bounds() &&
         "remove lower bounds before building a residual network");
  edges_.reserve(static_cast<std::size_t>(g.num_arcs()) * 2);
  out_.assign(static_cast<std::size_t>(num_nodes_), {});
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    edges_.push_back(Edge{arc.head, arc.upper, arc.cost});
    edges_.push_back(Edge{arc.tail, 0, -arc.cost});
    out_[static_cast<std::size_t>(arc.tail)].push_back(2 * a);
    out_[static_cast<std::size_t>(arc.head)].push_back(2 * a + 1);
  }
}

void Residual::push(int e, Flow amount) {
  assert(e >= 0 && e < num_edges());
  assert(amount >= 0);
  Edge& fwd = edges_[static_cast<std::size_t>(e)];
  Edge& bwd = edges_[static_cast<std::size_t>(twin(e))];
  assert(amount <= fwd.cap);
  fwd.cap -= amount;
  bwd.cap += amount;
}

std::vector<Flow> Residual::arc_flows() const {
  std::vector<Flow> flows(edges_.size() / 2);
  for (std::size_t a = 0; a < flows.size(); ++a) {
    flows[a] = edges_[2 * a + 1].cap;
  }
  return flows;
}

}  // namespace lera::netflow
