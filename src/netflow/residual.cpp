#include "netflow/residual.hpp"

#include "netflow/membudget.hpp"

namespace lera::netflow {

void Residual::assign(const Graph& g) {
  assert(!g.has_lower_bounds() &&
         "remove lower bounds before building a residual network");
  num_nodes_ = g.num_nodes();
  const auto n = static_cast<std::size_t>(num_nodes_);
  const auto m = static_cast<std::size_t>(g.num_arcs());

  // The residual is the largest single allocation on the solve path;
  // announce it to the failpoint seam before committing.
  detail::alloc_tick(static_cast<std::int64_t>(
      m * 2 * sizeof(Edge) + (n + 1 + m * 2 + n) * sizeof(int)));
  edges_.clear();
  edges_.reserve(m * 2);
  // Degree histogram -> prefix sums -> fill pass in arc order. Each
  // arc contributes its forward edge to the tail's list and its twin to
  // the head's list, in that order, matching the historical build.
  first_out_.assign(n + 1, 0);
  for (const Arc& arc : g.arcs()) {
    ++first_out_[static_cast<std::size_t>(arc.tail) + 1];
    ++first_out_[static_cast<std::size_t>(arc.head) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) first_out_[v + 1] += first_out_[v];
  out_ids_.resize(m * 2);
  cursor_.assign(first_out_.begin(), first_out_.end() - 1);
  std::vector<int>& cursor = cursor_;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    edges_.push_back(Edge{arc.head, arc.upper, arc.cost});
    edges_.push_back(Edge{arc.tail, 0, -arc.cost});
    out_ids_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(arc.tail)]++)] = 2 * a;
    out_ids_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(arc.head)]++)] = 2 * a + 1;
  }
}

void Residual::push(int e, Flow amount) {
  assert(e >= 0 && e < num_edges());
  assert(amount >= 0);
  Edge& fwd = edges_[static_cast<std::size_t>(e)];
  Edge& bwd = edges_[static_cast<std::size_t>(twin(e))];
  assert(amount <= fwd.cap);
  fwd.cap -= amount;
  bwd.cap += amount;
}

std::vector<Flow> Residual::arc_flows() const {
  std::vector<Flow> flows(edges_.size() / 2);
  for (std::size_t a = 0; a < flows.size(); ++a) {
    flows[a] = edges_[2 * a + 1].cap;
  }
  return flows;
}

}  // namespace lera::netflow
