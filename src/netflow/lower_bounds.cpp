#include "netflow/lower_bounds.hpp"

#include <cassert>

namespace lera::netflow {

LowerBoundReduction remove_lower_bounds(const Graph& g) {
  LowerBoundReduction red;
  red.lower.reserve(static_cast<std::size_t>(g.num_arcs()));
  Graph& out = red.reduced;
  out.add_nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.set_supply(v, g.supply(v));
    out.set_node_name(v, g.node_name(v));
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    out.add_arc(arc.tail, arc.head, arc.upper - arc.lower, arc.cost);
    red.lower.push_back(arc.lower);
    if (arc.lower > 0) {
      out.add_supply(arc.tail, -arc.lower);
      out.add_supply(arc.head, arc.lower);
      red.fixed_cost += arc.lower * arc.cost;
    }
  }
  return red;
}

std::vector<Flow> restore_lower_bounds(const LowerBoundReduction& red,
                                       const std::vector<Flow>& reduced_flow) {
  assert(reduced_flow.size() == red.lower.size());
  std::vector<Flow> flow(reduced_flow.size());
  for (std::size_t a = 0; a < flow.size(); ++a) {
    flow[a] = reduced_flow[a] + red.lower[a];
  }
  return flow;
}

}  // namespace lera::netflow
