#pragma once

#include "netflow/residual.hpp"
#include "netflow/types.hpp"

/// \file maxflow.hpp
/// Dinic's maximum-flow algorithm, operating directly on a Residual
/// network so it can (a) find a feasible b-flow for the cycle-canceling
/// solver and (b) answer standalone feasibility questions such as
/// "can R registers cover all forced segments?".

namespace lera::netflow {

/// Augments \p res until no s->t path remains; returns the amount pushed.
/// The residual is modified in place (the flow stays in it).
Flow dinic_max_flow(Residual& res, NodeId s, NodeId t);

/// After a max flow saturates the network, the nodes still reachable
/// from \p s in the residual form the s-side of a minimum cut
/// (max-flow/min-cut theorem). Returns one flag per node.
std::vector<bool> min_cut_side(const Residual& res, NodeId s);

}  // namespace lera::netflow
