#pragma once

#include <string>
#include <vector>

#include "netflow/graph.hpp"

/// \file validate.hpp
/// Independent checks on candidate flows. Used by tests and by the
/// allocator's debug paths to certify that a solver's answer is (a) a
/// feasible b-flow and (b) optimal, without trusting the solver itself.

namespace lera::netflow {

/// Result of a validity check; `ok` plus a diagnostic on failure.
struct CheckResult {
  bool ok = true;
  std::string message;
};

/// Verifies bounds and per-node conservation of \p flow against \p g.
CheckResult check_feasible(const Graph& g, const std::vector<Flow>& flow);

/// Total cost of a flow vector under \p g's arc costs. Accumulates with
/// overflow-checked arithmetic and saturates at +/-kInfCost when the
/// exact total would not fit (see checked_flow_cost for the detecting
/// variant).
Cost flow_cost(const Graph& g, const std::vector<Flow>& flow);

/// Overflow-detecting total cost: writes the exact total into \p total
/// and returns true, or returns false when any term or partial sum
/// overflows Cost (\p total is left untouched).
bool checked_flow_cost(const Graph& g, const std::vector<Flow>& flow,
                       Cost& total);

/// Certifies optimality of a *feasible* flow by proving the residual
/// network contains no negative-cost directed cycle (Bellman-Ford).
/// This is the textbook optimality condition for min-cost b-flows.
bool certify_optimal(const Graph& g, const std::vector<Flow>& flow);

}  // namespace lera::netflow
