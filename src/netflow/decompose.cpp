#include "netflow/decompose.hpp"

#include <algorithm>
#include <cassert>

namespace lera::netflow {

namespace {

/// Walks arcs with remaining flow from \p start until a node with
/// negative residual supply (a sink) is reached or a node repeats.
/// Extracts the path/cycle found and subtracts its bottleneck.
FlowComponent extract_component(const Graph& g, std::vector<Flow>& rem,
                                std::vector<Flow>& sup,
                                std::vector<std::size_t>& cursor,
                                NodeId start) {
  std::vector<ArcId> trail;
  std::vector<NodeId> nodes{start};
  std::vector<int> position(static_cast<std::size_t>(g.num_nodes()), -1);
  position[static_cast<std::size_t>(start)] = 0;

  NodeId v = start;
  for (;;) {
    if (sup[static_cast<std::size_t>(v)] < 0 && !trail.empty()) {
      // Reached a demand node: source-to-sink path.
      FlowComponent comp;
      comp.arcs = trail;
      comp.amount = std::min(sup[static_cast<std::size_t>(start)],
                             -sup[static_cast<std::size_t>(v)]);
      for (ArcId a : trail) {
        comp.amount = std::min(comp.amount,
                               rem[static_cast<std::size_t>(a)]);
      }
      assert(comp.amount > 0);
      for (ArcId a : trail) rem[static_cast<std::size_t>(a)] -= comp.amount;
      sup[static_cast<std::size_t>(start)] -= comp.amount;
      sup[static_cast<std::size_t>(v)] += comp.amount;
      return comp;
    }

    // Advance along any arc still carrying flow.
    const auto& out = g.out_arcs(v);
    std::size_t& cur = cursor[static_cast<std::size_t>(v)];
    while (cur < out.size() &&
           rem[static_cast<std::size_t>(out[cur])] == 0) {
      ++cur;
    }
    assert(cur < out.size() &&
           "conservation guarantees an outgoing arc with flow");
    const ArcId a = out[cur];
    trail.push_back(a);
    v = g.arc(a).head;

    const int seen = position[static_cast<std::size_t>(v)];
    if (seen >= 0) {
      // Closed a cycle: peel off the arcs from the repeat point on.
      FlowComponent comp;
      comp.is_cycle = true;
      comp.arcs.assign(trail.begin() + seen, trail.end());
      comp.amount = kInfFlow;
      for (ArcId arc : comp.arcs) {
        comp.amount = std::min(comp.amount,
                               rem[static_cast<std::size_t>(arc)]);
      }
      assert(comp.amount > 0);
      for (ArcId arc : comp.arcs) {
        rem[static_cast<std::size_t>(arc)] -= comp.amount;
      }
      return comp;
    }
    position[static_cast<std::size_t>(v)] =
        static_cast<int>(nodes.size());
    nodes.push_back(v);
  }
}

}  // namespace

std::vector<FlowComponent> decompose_flow(const Graph& g,
                                          const std::vector<Flow>& flow) {
  assert(flow.size() == static_cast<std::size_t>(g.num_arcs()));
  std::vector<Flow> rem = flow;
  // Residual supply implied by the flow itself (out - in per node); for
  // a feasible flow this matches g.supply but we derive it so arbitrary
  // feasible flows decompose too.
  std::vector<Flow> sup(static_cast<std::size_t>(g.num_nodes()), 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sup[static_cast<std::size_t>(g.arc(a).tail)] +=
        flow[static_cast<std::size_t>(a)];
    sup[static_cast<std::size_t>(g.arc(a).head)] -=
        flow[static_cast<std::size_t>(a)];
  }

  std::vector<std::size_t> cursor(static_cast<std::size_t>(g.num_nodes()),
                                  0);
  std::vector<FlowComponent> components;

  // Paths first: drain every supply node.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    while (sup[static_cast<std::size_t>(v)] > 0) {
      // Cursors may need rewinding when cycles were peeled mid-walk.
      std::fill(cursor.begin(), cursor.end(), 0);
      components.push_back(extract_component(g, rem, sup, cursor, v));
    }
  }
  // Remaining flow is a circulation: peel cycles.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    while (rem[static_cast<std::size_t>(a)] > 0) {
      std::fill(cursor.begin(), cursor.end(), 0);
      components.push_back(
          extract_component(g, rem, sup, cursor, g.arc(a).tail));
    }
  }
  return components;
}

}  // namespace lera::netflow
