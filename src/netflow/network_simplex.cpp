#include <algorithm>
#include <cmath>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/workspace.hpp"

/// Primal network simplex (Ahuja/Magnanti/Orlin ch. 11 formulation).
///
/// An artificial root is connected to every node by a big-M arc carrying
/// the node's initial imbalance, giving a strongly feasible starting
/// basis. Entering arcs are found by cyclic block search on reduced
/// costs; the leaving arc is the *last* blocking arc met when traversing
/// the pivot cycle along its orientation starting at the apex, which
/// preserves strong feasibility and rules out cycling. Potentials and
/// depths are recomputed from the parent array after every tree change;
/// this is O(n) per pivot and perfectly adequate at allocation-problem
/// scale while keeping the code auditable.
///
/// All state lives in SoA arrays borrowed from a SimplexScratch, so a
/// reused workspace makes repeated solves allocation-free; the pivot
/// cycle and the child lists used by the potential refresh are likewise
/// scratch-owned instead of being rebuilt on the heap every pivot.

namespace lera::netflow::internal {

namespace {

constexpr signed char kTree = 0;
constexpr signed char kLower = 1;
constexpr signed char kUpper = 2;

class NetworkSimplex {
 public:
  NetworkSimplex(const Graph& g, SimplexScratch& s)
      : s_(s), orig_arcs_(g.num_arcs()) {
    const NodeId n = g.num_nodes();
    root_ = n;
    num_nodes_ = n + 1;
    const auto total_arcs =
        static_cast<std::size_t>(orig_arcs_) + static_cast<std::size_t>(n);

    s_.tail.clear();
    s_.head.clear();
    s_.cap.clear();
    s_.cost.clear();
    s_.flow.clear();
    s_.state.clear();
    s_.tail.reserve(total_arcs);
    s_.head.reserve(total_arcs);
    s_.cap.reserve(total_arcs);
    s_.cost.reserve(total_arcs);
    s_.flow.reserve(total_arcs);
    s_.state.reserve(total_arcs);

    Cost max_abs_cost = 1;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      push_arc(arc.tail, arc.head, arc.upper, arc.cost, 0, kLower);
      max_abs_cost = std::max(max_abs_cost, std::abs(arc.cost));
    }
    const Cost big_m = max_abs_cost * static_cast<Cost>(num_nodes_ + 1) + 1;

    s_.parent.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    s_.pred_arc.assign(static_cast<std::size_t>(num_nodes_), kInvalidArc);
    s_.depth.assign(static_cast<std::size_t>(num_nodes_), 0);
    s_.pi.assign(static_cast<std::size_t>(num_nodes_), 0);

    // Artificial big-M arcs form the initial spanning-tree basis.
    for (NodeId v = 0; v < n; ++v) {
      const Flow b = g.supply(v);
      const ArcId a = static_cast<ArcId>(s_.tail.size());
      if (b >= 0) {
        push_arc(v, root_, kInfFlow, big_m, b, kTree);
      } else {
        push_arc(root_, v, kInfFlow, big_m, -b, kTree);
      }
      s_.parent[static_cast<std::size_t>(v)] = root_;
      s_.pred_arc[static_cast<std::size_t>(v)] = a;
      s_.depth[static_cast<std::size_t>(v)] = 1;
    }
    refresh_potentials();
  }

  FlowSolution run(const Graph& g, SolveGuard* guard, PerfCounters& pc) {
    const std::size_t num_arcs = s_.tail.size();
    const std::size_t block =
        std::max<std::size_t>(8, static_cast<std::size_t>(std::sqrt(
                                     static_cast<double>(num_arcs))));
    std::size_t scan_start = 0;
    for (;;) {
      if (guard != nullptr && !guard->tick()) {
        return budget_exceeded(SolverKind::kNetworkSimplex);
      }
      const ArcId entering = select_entering(block, &scan_start);
      if (entering == kInvalidArc) break;
      pivot(entering);
      ++pc.simplex_pivots;
    }

    // Positive flow left on an artificial arc means no feasible b-flow.
    for (std::size_t a = static_cast<std::size_t>(orig_arcs_); a < num_arcs;
         ++a) {
      if (s_.flow[a] > 0) return {};
    }

    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    sol.arc_flow.assign(
        s_.flow.begin(),
        s_.flow.begin() + static_cast<std::ptrdiff_t>(orig_arcs_));
    for (ArcId a = 0; a < orig_arcs_; ++a) {
      sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
    }
    return sol;
  }

 private:
  void push_arc(NodeId tail, NodeId head, Flow cap, Cost cost, Flow flow,
                signed char state) {
    s_.tail.push_back(tail);
    s_.head.push_back(head);
    s_.cap.push_back(cap);
    s_.cost.push_back(cost);
    s_.flow.push_back(flow);
    s_.state.push_back(state);
  }

  Cost reduced_cost(ArcId a) const {
    const auto i = static_cast<std::size_t>(a);
    return s_.cost[i] + s_.pi[static_cast<std::size_t>(s_.tail[i])] -
           s_.pi[static_cast<std::size_t>(s_.head[i])];
  }

  /// Cyclic block search: returns the most violating arc of the first
  /// block that contains any violation, or kInvalidArc at optimality.
  ArcId select_entering(std::size_t block, std::size_t* scan_start) {
    const std::size_t num_arcs = s_.tail.size();
    std::size_t scanned = 0;
    std::size_t i = *scan_start;
    ArcId best = kInvalidArc;
    Cost best_violation = 0;
    while (scanned < num_arcs) {
      for (std::size_t in_block = 0; in_block < block && scanned < num_arcs;
           ++in_block, ++scanned, i = (i + 1) % num_arcs) {
        const ArcId a = static_cast<ArcId>(i);
        Cost violation = 0;
        if (s_.state[i] == kLower) {
          violation = -reduced_cost(a);
        } else if (s_.state[i] == kUpper) {
          violation = reduced_cost(a);
        }
        if (violation > best_violation) {
          best_violation = violation;
          best = a;
        }
      }
      if (best != kInvalidArc) {
        *scan_start = i;
        return best;
      }
    }
    return kInvalidArc;
  }

  void pivot(ArcId entering) {
    const auto ei = static_cast<std::size_t>(entering);
    const bool increasing = s_.state[ei] == kLower;
    // Push direction p -> q through the entering arc.
    const NodeId p = increasing ? s_.tail[ei] : s_.head[ei];
    const NodeId q = increasing ? s_.head[ei] : s_.tail[ei];

    const NodeId join = find_join(p, q);

    // Cycle traversal along the orientation starting at the apex:
    //   join --(tree, downward)--> p --(entering)--> q --(tree, up)--> join.
    // Collect (arc, forward?) in that order; forward means the push goes
    // with the arc's own direction. Steps live in scratch-owned parallel
    // arrays (cycle_arc / cycle_dir / cycle_below).
    s_.cycle_arc.clear();
    s_.cycle_dir.clear();
    s_.cycle_below.clear();

    // p-side: path p..join collected bottom-up, then reversed so the
    // traversal runs join -> p. Walking down from join towards p, the
    // push direction at tree arc (w, parent(w)) is parent(w) -> w.
    for (NodeId w = p; w != join; w = s_.parent[static_cast<std::size_t>(w)]) {
      const ArcId t = s_.pred_arc[static_cast<std::size_t>(w)];
      const bool with_dir = s_.tail[static_cast<std::size_t>(t)] ==
                            s_.parent[static_cast<std::size_t>(w)];
      s_.cycle_arc.push_back(t);
      s_.cycle_dir.push_back(with_dir ? 1 : 0);
      s_.cycle_below.push_back(w);
    }
    std::reverse(s_.cycle_arc.begin(), s_.cycle_arc.end());
    std::reverse(s_.cycle_dir.begin(), s_.cycle_dir.end());
    std::reverse(s_.cycle_below.begin(), s_.cycle_below.end());

    s_.cycle_arc.push_back(entering);
    s_.cycle_dir.push_back(increasing ? 1 : 0);
    s_.cycle_below.push_back(kInvalidNode);

    // q-side: walking up from q to join; push direction w -> parent(w).
    for (NodeId w = q; w != join; w = s_.parent[static_cast<std::size_t>(w)]) {
      const ArcId t = s_.pred_arc[static_cast<std::size_t>(w)];
      const bool with_dir = s_.tail[static_cast<std::size_t>(t)] == w;
      s_.cycle_arc.push_back(t);
      s_.cycle_dir.push_back(with_dir ? 1 : 0);
      s_.cycle_below.push_back(w);
    }

    // Bottleneck and leaving arc: the LAST blocking arc along the
    // traversal preserves strong feasibility (AMO §11.13).
    const std::size_t num_steps = s_.cycle_arc.size();
    Flow delta = kInfFlow;
    std::size_t leave_index = num_steps;
    for (std::size_t idx = 0; idx < num_steps; ++idx) {
      const auto ai = static_cast<std::size_t>(s_.cycle_arc[idx]);
      const Flow slack =
          s_.cycle_dir[idx] != 0 ? s_.cap[ai] - s_.flow[ai] : s_.flow[ai];
      if (slack < delta) {
        delta = slack;
        leave_index = idx;
      } else if (slack == delta) {
        leave_index = idx;
      }
    }
    assert(leave_index < num_steps);
    assert(delta < kInfFlow && "unbounded pivot; use finite capacities");

    if (delta > 0) {
      for (std::size_t idx = 0; idx < num_steps; ++idx) {
        const auto ai = static_cast<std::size_t>(s_.cycle_arc[idx]);
        s_.flow[ai] += s_.cycle_dir[idx] != 0 ? delta : -delta;
      }
    }

    const ArcId leaving_arc = s_.cycle_arc[leave_index];
    const NodeId leaving_below = s_.cycle_below[leave_index];
    if (leaving_arc == entering) {
      // Degenerate-in-structure pivot: the entering arc saturates without
      // changing the basis; it flips to the other bound.
      s_.state[ei] = increasing ? kUpper : kLower;
      return;
    }

    // The leaving tree arc drops to whichever bound it hit.
    s_.state[static_cast<std::size_t>(leaving_arc)] =
        s_.flow[static_cast<std::size_t>(leaving_arc)] == 0 ? kLower : kUpper;
    s_.state[ei] = kTree;

    // Removing the leaving arc detaches the subtree rooted at
    // leaving_below; exactly one endpoint of the entering arc lies in it.
    const NodeId detached_root = leaving_below;
    const NodeId in_subtree =
        in_detached_subtree(s_.tail[ei], detached_root) ? s_.tail[ei]
                                                        : s_.head[ei];
    assert(in_detached_subtree(in_subtree, detached_root));
    const NodeId outside =
        in_subtree == s_.tail[ei] ? s_.head[ei] : s_.tail[ei];

    // Re-root the detached subtree at in_subtree by reversing the parent
    // chain in_subtree -> ... -> detached_root, then hang it on outside.
    NodeId child = in_subtree;
    NodeId child_parent = s_.parent[static_cast<std::size_t>(child)];
    ArcId child_arc = s_.pred_arc[static_cast<std::size_t>(child)];
    s_.parent[static_cast<std::size_t>(in_subtree)] = outside;
    s_.pred_arc[static_cast<std::size_t>(in_subtree)] = entering;
    while (child != detached_root) {
      const NodeId next_parent =
          s_.parent[static_cast<std::size_t>(child_parent)];
      const ArcId next_arc = s_.pred_arc[static_cast<std::size_t>(child_parent)];
      s_.parent[static_cast<std::size_t>(child_parent)] = child;
      s_.pred_arc[static_cast<std::size_t>(child_parent)] = child_arc;
      child = child_parent;
      child_parent = next_parent;
      child_arc = next_arc;
    }

    refresh_potentials();
  }

  /// Lowest common ancestor of u and v in the current tree.
  NodeId find_join(NodeId u, NodeId v) const {
    while (u != v) {
      if (s_.depth[static_cast<std::size_t>(u)] >=
          s_.depth[static_cast<std::size_t>(v)]) {
        u = s_.parent[static_cast<std::size_t>(u)];
      } else {
        v = s_.parent[static_cast<std::size_t>(v)];
      }
    }
    return u;
  }

  /// True if \p v lies in the subtree rooted at \p subtree_root (walk up;
  /// note depths are still those from before the tree update).
  bool in_detached_subtree(NodeId v, NodeId subtree_root) const {
    while (v != kInvalidNode &&
           s_.depth[static_cast<std::size_t>(v)] >=
               s_.depth[static_cast<std::size_t>(subtree_root)]) {
      if (v == subtree_root) return true;
      v = s_.parent[static_cast<std::size_t>(v)];
    }
    return false;
  }

  /// Rebuilds depth_ and pi_ from parent/pred_arc by DFS from the root.
  /// Children are threaded through scratch-owned intrusive lists
  /// (child_first/child_next), so no per-pivot allocation; traversal
  /// order does not affect the computed values (the tree fixes them).
  void refresh_potentials() {
    s_.child_first.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    s_.child_next.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      if (v == root_) continue;
      const auto p = static_cast<std::size_t>(
          s_.parent[static_cast<std::size_t>(v)]);
      s_.child_next[static_cast<std::size_t>(v)] = s_.child_first[p];
      s_.child_first[p] = v;
    }
    s_.depth[static_cast<std::size_t>(root_)] = 0;
    s_.pi[static_cast<std::size_t>(root_)] = 0;
    s_.stack.clear();
    s_.stack.push_back(root_);
    while (!s_.stack.empty()) {
      const NodeId u = s_.stack.back();
      s_.stack.pop_back();
      for (NodeId c = s_.child_first[static_cast<std::size_t>(u)];
           c != kInvalidNode;
           c = s_.child_next[static_cast<std::size_t>(c)]) {
        s_.depth[static_cast<std::size_t>(c)] =
            s_.depth[static_cast<std::size_t>(u)] + 1;
        const auto ai = static_cast<std::size_t>(
            s_.pred_arc[static_cast<std::size_t>(c)]);
        // Tree arcs have zero reduced cost: cost + pi[tail] - pi[head] = 0.
        s_.pi[static_cast<std::size_t>(c)] =
            s_.tail[ai] == u
                ? s_.pi[static_cast<std::size_t>(u)] + s_.cost[ai]
                : s_.pi[static_cast<std::size_t>(u)] - s_.cost[ai];
        s_.stack.push_back(c);
      }
    }
  }

  SimplexScratch& s_;
  ArcId orig_arcs_;
  NodeId root_ = kInvalidNode;
  NodeId num_nodes_ = 0;
};

}  // namespace

FlowSolution solve_network_simplex(const Graph& g, SolveGuard* guard,
                                   SolverWorkspace* ws) {
  if (g.total_supply() != 0) return {};
  SolverWorkspace local;
  SolverWorkspace& w = ws != nullptr ? *ws : local;
  ++w.counters.solves;
  NetworkSimplex simplex(g, w.simplex);
  return simplex.run(g, guard, w.counters);
}

}  // namespace lera::netflow::internal
