#include <algorithm>
#include <cmath>
#include <vector>

#include "netflow/internal_solvers.hpp"

/// Primal network simplex (Ahuja/Magnanti/Orlin ch. 11 formulation).
///
/// An artificial root is connected to every node by a big-M arc carrying
/// the node's initial imbalance, giving a strongly feasible starting
/// basis. Entering arcs are found by cyclic block search on reduced
/// costs; the leaving arc is the *last* blocking arc met when traversing
/// the pivot cycle along its orientation starting at the apex, which
/// preserves strong feasibility and rules out cycling. Potentials and
/// depths are recomputed from the parent array after every tree change;
/// this is O(n) per pivot and perfectly adequate at allocation-problem
/// scale while keeping the code auditable.

namespace lera::netflow::internal {

namespace {

enum class ArcState : char { kTree, kLower, kUpper };

struct SimplexArc {
  NodeId tail;
  NodeId head;
  Flow cap;
  Cost cost;
};

class NetworkSimplex {
 public:
  explicit NetworkSimplex(const Graph& g) : orig_arcs_(g.num_arcs()) {
    const NodeId n = g.num_nodes();
    root_ = n;
    num_nodes_ = n + 1;

    Cost max_abs_cost = 1;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      arcs_.push_back(SimplexArc{arc.tail, arc.head, arc.upper, arc.cost});
      max_abs_cost = std::max(max_abs_cost, std::abs(arc.cost));
    }
    const Cost big_m = max_abs_cost * static_cast<Cost>(num_nodes_ + 1) + 1;

    flow_.assign(arcs_.size(), 0);
    state_.assign(arcs_.size(), ArcState::kLower);

    parent_.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    pred_arc_.assign(static_cast<std::size_t>(num_nodes_), kInvalidArc);
    depth_.assign(static_cast<std::size_t>(num_nodes_), 0);
    pi_.assign(static_cast<std::size_t>(num_nodes_), 0);

    // Artificial big-M arcs form the initial spanning-tree basis.
    for (NodeId v = 0; v < n; ++v) {
      const Flow b = g.supply(v);
      const ArcId a = static_cast<ArcId>(arcs_.size());
      if (b >= 0) {
        arcs_.push_back(SimplexArc{v, root_, kInfFlow, big_m});
        flow_.push_back(b);
      } else {
        arcs_.push_back(SimplexArc{root_, v, kInfFlow, big_m});
        flow_.push_back(-b);
      }
      state_.push_back(ArcState::kTree);
      parent_[static_cast<std::size_t>(v)] = root_;
      pred_arc_[static_cast<std::size_t>(v)] = a;
      depth_[static_cast<std::size_t>(v)] = 1;
    }
    refresh_potentials();
  }

  FlowSolution run(const Graph& g, SolveGuard* guard) {
    const std::size_t block =
        std::max<std::size_t>(8, static_cast<std::size_t>(
                                     std::sqrt(static_cast<double>(
                                         arcs_.size()))));
    std::size_t scan_start = 0;
    for (;;) {
      if (guard != nullptr && !guard->tick()) {
        return budget_exceeded(SolverKind::kNetworkSimplex);
      }
      const ArcId entering = select_entering(block, &scan_start);
      if (entering == kInvalidArc) break;
      pivot(entering);
    }

    // Positive flow left on an artificial arc means no feasible b-flow.
    for (std::size_t a = static_cast<std::size_t>(orig_arcs_);
         a < arcs_.size(); ++a) {
      if (flow_[a] > 0) return {};
    }

    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    sol.arc_flow.assign(flow_.begin(),
                        flow_.begin() + static_cast<std::ptrdiff_t>(orig_arcs_));
    for (ArcId a = 0; a < orig_arcs_; ++a) {
      sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
    }
    return sol;
  }

 private:
  Cost reduced_cost(ArcId a) const {
    const SimplexArc& arc = arcs_[static_cast<std::size_t>(a)];
    return arc.cost + pi_[static_cast<std::size_t>(arc.tail)] -
           pi_[static_cast<std::size_t>(arc.head)];
  }

  /// Cyclic block search: returns the most violating arc of the first
  /// block that contains any violation, or kInvalidArc at optimality.
  ArcId select_entering(std::size_t block, std::size_t* scan_start) {
    std::size_t scanned = 0;
    std::size_t i = *scan_start;
    ArcId best = kInvalidArc;
    Cost best_violation = 0;
    while (scanned < arcs_.size()) {
      for (std::size_t in_block = 0;
           in_block < block && scanned < arcs_.size();
           ++in_block, ++scanned, i = (i + 1) % arcs_.size()) {
        const ArcId a = static_cast<ArcId>(i);
        Cost violation = 0;
        if (state_[i] == ArcState::kLower) {
          violation = -reduced_cost(a);
        } else if (state_[i] == ArcState::kUpper) {
          violation = reduced_cost(a);
        }
        if (violation > best_violation) {
          best_violation = violation;
          best = a;
        }
      }
      if (best != kInvalidArc) {
        *scan_start = i;
        return best;
      }
    }
    return kInvalidArc;
  }

  void pivot(ArcId entering) {
    const SimplexArc& earc = arcs_[static_cast<std::size_t>(entering)];
    const bool increasing = state_[static_cast<std::size_t>(entering)] ==
                            ArcState::kLower;
    // Push direction p -> q through the entering arc.
    const NodeId p = increasing ? earc.tail : earc.head;
    const NodeId q = increasing ? earc.head : earc.tail;

    const NodeId join = find_join(p, q);

    // Cycle traversal along the orientation starting at the apex:
    //   join --(tree, downward)--> p --(entering)--> q --(tree, up)--> join.
    // Collect (arc, forward?) in that order; forward means the push goes
    // with the arc's own direction.
    struct CycleStep {
      ArcId arc;
      bool with_arc_direction;
      NodeId below;  ///< Subtree-side endpoint (kInvalidNode for entering).
    };
    std::vector<CycleStep> steps;

    // p-side: path p..join collected bottom-up, then reversed so the
    // traversal runs join -> p. Walking down from join towards p, the
    // push direction at tree arc (w, parent(w)) is parent(w) -> w.
    std::vector<CycleStep> p_side;
    for (NodeId w = p; w != join; w = parent_[static_cast<std::size_t>(w)]) {
      const ArcId t = pred_arc_[static_cast<std::size_t>(w)];
      const bool with_dir =
          arcs_[static_cast<std::size_t>(t)].tail ==
          parent_[static_cast<std::size_t>(w)];
      p_side.push_back(CycleStep{t, with_dir, w});
    }
    std::reverse(p_side.begin(), p_side.end());
    steps.insert(steps.end(), p_side.begin(), p_side.end());

    steps.push_back(CycleStep{entering, increasing, kInvalidNode});

    // q-side: walking up from q to join; push direction w -> parent(w).
    for (NodeId w = q; w != join; w = parent_[static_cast<std::size_t>(w)]) {
      const ArcId t = pred_arc_[static_cast<std::size_t>(w)];
      const bool with_dir =
          arcs_[static_cast<std::size_t>(t)].tail == w;
      steps.push_back(CycleStep{t, with_dir, w});
    }

    // Bottleneck and leaving arc: the LAST blocking arc along the
    // traversal preserves strong feasibility (AMO §11.13).
    Flow delta = kInfFlow;
    std::size_t leave_index = steps.size();
    for (std::size_t idx = 0; idx < steps.size(); ++idx) {
      const CycleStep& s = steps[idx];
      const SimplexArc& arc = arcs_[static_cast<std::size_t>(s.arc)];
      const Flow slack = s.with_arc_direction
                             ? arc.cap - flow_[static_cast<std::size_t>(s.arc)]
                             : flow_[static_cast<std::size_t>(s.arc)];
      if (slack < delta) {
        delta = slack;
        leave_index = idx;
      } else if (slack == delta) {
        leave_index = idx;
      }
    }
    assert(leave_index < steps.size());
    assert(delta < kInfFlow && "unbounded pivot; use finite capacities");

    if (delta > 0) {
      for (const CycleStep& s : steps) {
        flow_[static_cast<std::size_t>(s.arc)] +=
            s.with_arc_direction ? delta : -delta;
      }
    }

    const CycleStep leaving = steps[leave_index];
    if (leaving.arc == entering) {
      // Degenerate-in-structure pivot: the entering arc saturates without
      // changing the basis; it flips to the other bound.
      state_[static_cast<std::size_t>(entering)] =
          increasing ? ArcState::kUpper : ArcState::kLower;
      return;
    }

    // The leaving tree arc drops to whichever bound it hit.
    state_[static_cast<std::size_t>(leaving.arc)] =
        flow_[static_cast<std::size_t>(leaving.arc)] == 0 ? ArcState::kLower
                                                          : ArcState::kUpper;
    state_[static_cast<std::size_t>(entering)] = ArcState::kTree;

    // Removing the leaving arc detaches the subtree rooted at
    // leaving.below; exactly one endpoint of the entering arc lies in it.
    const NodeId detached_root = leaving.below;
    const NodeId in_subtree = in_detached_subtree(earc.tail, detached_root)
                                  ? earc.tail
                                  : earc.head;
    assert(in_detached_subtree(in_subtree, detached_root));
    const NodeId outside =
        in_subtree == earc.tail ? earc.head : earc.tail;

    // Re-root the detached subtree at in_subtree by reversing the parent
    // chain in_subtree -> ... -> detached_root, then hang it on outside.
    NodeId child = in_subtree;
    NodeId child_parent = parent_[static_cast<std::size_t>(child)];
    ArcId child_arc = pred_arc_[static_cast<std::size_t>(child)];
    parent_[static_cast<std::size_t>(in_subtree)] = outside;
    pred_arc_[static_cast<std::size_t>(in_subtree)] = entering;
    while (child != detached_root) {
      const NodeId next_parent =
          parent_[static_cast<std::size_t>(child_parent)];
      const ArcId next_arc = pred_arc_[static_cast<std::size_t>(child_parent)];
      parent_[static_cast<std::size_t>(child_parent)] = child;
      pred_arc_[static_cast<std::size_t>(child_parent)] = child_arc;
      child = child_parent;
      child_parent = next_parent;
      child_arc = next_arc;
    }

    refresh_potentials();
  }

  /// Lowest common ancestor of u and v in the current tree.
  NodeId find_join(NodeId u, NodeId v) const {
    while (u != v) {
      if (depth_[static_cast<std::size_t>(u)] >=
          depth_[static_cast<std::size_t>(v)]) {
        u = parent_[static_cast<std::size_t>(u)];
      } else {
        v = parent_[static_cast<std::size_t>(v)];
      }
    }
    return u;
  }

  /// True if \p v lies in the subtree rooted at \p subtree_root (walk up;
  /// note depths are still those from before the tree update).
  bool in_detached_subtree(NodeId v, NodeId subtree_root) const {
    while (v != kInvalidNode &&
           depth_[static_cast<std::size_t>(v)] >=
               depth_[static_cast<std::size_t>(subtree_root)]) {
      if (v == subtree_root) return true;
      v = parent_[static_cast<std::size_t>(v)];
    }
    return false;
  }

  /// Rebuilds depth_ and pi_ from parent_/pred_arc_ by DFS from the root.
  void refresh_potentials() {
    std::vector<std::vector<NodeId>> children(
        static_cast<std::size_t>(num_nodes_));
    for (NodeId v = 0; v < num_nodes_; ++v) {
      if (v == root_) continue;
      children[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
    depth_[static_cast<std::size_t>(root_)] = 0;
    pi_[static_cast<std::size_t>(root_)] = 0;
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId c : children[static_cast<std::size_t>(u)]) {
        depth_[static_cast<std::size_t>(c)] =
            depth_[static_cast<std::size_t>(u)] + 1;
        const SimplexArc& arc =
            arcs_[static_cast<std::size_t>(pred_arc_[static_cast<std::size_t>(c)])];
        // Tree arcs have zero reduced cost: cost + pi[tail] - pi[head] = 0.
        pi_[static_cast<std::size_t>(c)] =
            arc.tail == u ? pi_[static_cast<std::size_t>(u)] + arc.cost
                          : pi_[static_cast<std::size_t>(u)] - arc.cost;
        stack.push_back(c);
      }
    }
  }

  ArcId orig_arcs_;
  NodeId root_ = kInvalidNode;
  NodeId num_nodes_ = 0;
  std::vector<SimplexArc> arcs_;
  std::vector<Flow> flow_;
  std::vector<ArcState> state_;
  std::vector<NodeId> parent_;
  std::vector<ArcId> pred_arc_;
  std::vector<NodeId> depth_;
  std::vector<Cost> pi_;
};

}  // namespace

FlowSolution solve_network_simplex(const Graph& g, SolveGuard* guard) {
  if (g.total_supply() != 0) return {};
  NetworkSimplex simplex(g);
  return simplex.run(g, guard);
}

}  // namespace lera::netflow::internal
